//===- tests/ir/ParserTest.cpp - Textual format round trips ----------------===//

#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

std::unique_ptr<Module> parseOrDie(std::string_view Text) {
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(Text, Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return M;
}

int64_t runMain(const Module &M) {
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R.ReturnValue.asInt();
}

TEST(ParserTest, MinimalProgram) {
  auto M = parseOrDie(R"(
func main() regs 3 {
bb0:
  r0 = iconst 40
  r1 = iconst 2
  r2 = add r0, r1
  ret r2
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 42);
}

TEST(ParserTest, ClassesFieldsAndMethods) {
  auto M = parseOrDie(R"(
# A linked node summing its values.
class Node {
  val: int;
  next: Node;
}

method Node.get(r0) regs 2 {
bb0:
  r1 = r0.Node::val
  ret r1
}

func main() regs 8 {
bb0:
  r0 = new Node
  r1 = new Node
  r2 = iconst 5
  r0.Node::val = r2
  r3 = iconst 7
  r1.val = r3          # unqualified: unique field name
  r0.Node::next = r1
  r4 = vcall get(r0)
  r5 = r0.Node::next
  r6 = vcall get(r5)
  r7 = add r4, r6
  ret r7
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 12);
}

TEST(ParserTest, ControlFlowLoops) {
  auto M = parseOrDie(R"(
func main() regs 4 {
bb0:
  r0 = iconst 0
  r1 = iconst 0
  r2 = iconst 10
  r3 = iconst 1
  goto bb1
bb1:
  if r1 < r2 goto bb2 else bb3
bb2:
  r0 = add r0, r1
  r1 = add r1, r3
  goto bb1
bb3:
  ret r0
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 45);
}

TEST(ParserTest, ArraysGlobalsNatives) {
  auto M = parseOrDie(R"(
global counter: int

func main() regs 8 {
bb0:
  r0 = iconst 3
  r1 = newarray int, r0
  r2 = iconst 1
  r3 = iconst 99
  r1[r2] = r3
  r4 = r1[r2]
  r5 = len r1
  @counter = r5
  r6 = @counter
  r7 = add r4, r6
  ncall sink(r7)
  ret r7
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 102);
}

TEST(ParserTest, FloatsAndUnaryOps) {
  auto M = parseOrDie(R"(
func main() regs 4 {
bb0:
  r0 = fconst 2.5
  r1 = fbits r0
  r2 = bitsf r1
  r3 = f2i r2
  ret r3
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 2);
}

TEST(ParserTest, InheritanceAndOverride) {
  auto M = parseOrDie(R"(
class Base { x: int; }
class Derived extends Base { y: int; }

method Base.id(r0) regs 1 {
bb0:
  r0 = iconst 1
  ret r0
}
method Derived.id(r0) regs 1 {
bb0:
  r0 = iconst 2
  ret r0
}

func main() regs 4 {
bb0:
  r0 = new Base
  r1 = new Derived
  r2 = vcall id(r0)
  r3 = vcall id(r1)
  r2 = add r2, r3
  ret r2
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 3);
}

TEST(ParserTest, ForwardFunctionReferences) {
  // Callee declared after the caller in the file.
  auto M = parseOrDie(R"(
func main() regs 2 {
bb0:
  r0 = iconst 20
  r1 = call dbl(r0)
  ret r1
}
func dbl(r0) regs 2 {
bb0:
  r1 = add r0, r0
  ret r1
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(runMain(*M), 40);
}

TEST(ParserTest, PrintParseRoundTrip) {
  // Build a representative module programmatically, print it, parse the
  // text, print again: the two texts must be identical and the programs
  // behave identically.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("r", Type::makeRef(A->getId()));
  M.addGlobal("g", Type::makeFloat());
  IRBuilder B(M);
  B.beginMethod(A->getId(), "bump", 1);
  Reg V = B.loadField(0, A->getId(), "f");
  Reg One = B.iconst(1);
  Reg S = B.add(V, One);
  B.storeField(0, A->getId(), "f", S);
  B.ret(S);
  B.endFunction();
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(4);
  B.storeField(O, A->getId(), "f", C);
  Reg R1 = B.vcall("bump", {O});
  Reg R2 = B.vcall("bump", {O});
  Reg Sum = B.add(R1, R2);
  B.ncallVoid("sink", {Sum});
  B.ret(Sum);
  B.endFunction();
  M.finalize();

  StringOutStream Text1;
  printModule(M, Text1);
  auto M2 = parseOrDie(Text1.str());
  ASSERT_TRUE(M2);
  StringOutStream Text2;
  printModule(*M2, Text2);
  EXPECT_EQ(Text1.str(), Text2.str());
  EXPECT_EQ(runMain(M), runMain(*M2));
}

TEST(ParserTest, ErrorsAreReported) {
  struct Case {
    const char *Text;
    const char *ExpectSubstr;
  };
  const Case Cases[] = {
      {"func main() regs 1 {\nbb0:\n  r0 = bogus r0\n  ret\n}\n",
       "unknown statement head"},
      {"func main() regs 1 {\nbb0:\n  r0 = new Missing\n  ret\n}\n",
       "unknown class"},
      {"func main() regs 1 {\nbb0:\n  r0 = call nope()\n  ret\n}\n",
       "unknown function"},
      {"class B extends Missing { }\nfunc main() regs 1 {\nbb0:\n  ret\n}\n",
       "not declared"},
      {"func main() regs 1 {\nbb0:\n  r0 = @missing\n  ret\n}\n",
       "unknown global"},
      {"func main() regs 1 {\n  r0 = iconst 1\n}\n",
       "statement before first block label"},
  };
  for (const Case &C : Cases) {
    std::vector<std::string> Errors;
    std::unique_ptr<Module> M = parseModule(C.Text, Errors);
    EXPECT_EQ(M, nullptr) << C.Text;
    ASSERT_FALSE(Errors.empty()) << C.Text;
    EXPECT_NE(Errors[0].find(C.ExpectSubstr), std::string::npos)
        << "got: " << Errors[0];
  }
}

TEST(ParserTest, VerifierRejectsBadRegisters) {
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(
      "func main() regs 1 {\nbb0:\n  r0 = add r5, r6\n  ret\n}\n", Errors);
  EXPECT_EQ(M, nullptr);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("out of range"), std::string::npos);
}

} // namespace
