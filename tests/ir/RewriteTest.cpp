//===- tests/ir/RewriteTest.cpp - ModuleRewriter surgery -------------------===//

#include "ir/Rewrite.h"

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

RunResult plainRun(const Module &M) {
  ComposedProfiler<> P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R;
}

void expectVerifies(const Module &M) {
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors));
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
}

/// main: a=5, c=7, u=a+c (unused), s=a*c, sink(s), ret s — the unused add
/// gives drop() something observable-free to remove.
std::unique_ptr<Module> buildArith(Reg *AOut = nullptr, Reg *SOut = nullptr) {
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(5);
  Reg C = B.iconst(7);
  B.add(A, C); // dead
  Reg S = B.mul(A, C);
  B.ncallVoid("sink", {S});
  B.ret(S);
  B.endFunction();
  M->finalize();
  if (AOut)
    *AOut = A;
  if (SOut)
    *SOut = S;
  return M;
}

Instruction *findFirst(Module &M, Instruction::Kind K) {
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        if (I->getKind() == K)
          return I.get();
  return nullptr;
}

TEST(RewriteTest, NoEditsReproducesModule) {
  std::unique_ptr<Module> M = buildArith();
  ModuleRewriter RW(*M);
  EXPECT_FALSE(RW.changed());
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_EQ(Out->getNumInstrs(), M->getNumInstrs());
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
  EXPECT_EQ(Before.ExecutedInstrs, After.ExecutedInstrs);
  EXPECT_EQ(Before.ReturnValue.asInt(), After.ReturnValue.asInt());
}

TEST(RewriteTest, DropRemovesInstruction) {
  std::unique_ptr<Module> M = buildArith();
  Instruction *Dead = findFirst(*M, Instruction::Kind::Bin); // the add
  ASSERT_NE(Dead, nullptr);
  ModuleRewriter RW(*M);
  RW.drop(Dead->getId());
  EXPECT_TRUE(RW.changed());
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_EQ(Out->getNumInstrs(), M->getNumInstrs() - 1);
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
  EXPECT_EQ(After.ExecutedInstrs, Before.ExecutedInstrs - 1);
}

TEST(RewriteTest, ReplaceWithSequence) {
  Reg A = kNoReg, S = kNoReg;
  std::unique_ptr<Module> M = buildArith(&A, &S);
  // Replace s = a*c with t = a+a; s = t+t+t+... no — keep it simple and
  // exact: s = 35 via a fresh intermediate (t = 34; s = t + 1-const? two
  // instructions suffice: t = 35 into a fresh reg, s = t).
  Instruction *Mul = nullptr;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        if (auto *BI = dyn_cast<BinInst>(I.get()))
          if (BI->Op == BinOp::Mul)
            Mul = I.get();
  ASSERT_NE(Mul, nullptr);
  FuncId Main = M->findFunction("main");
  ModuleRewriter RW(*M);
  Reg T = RW.newReg(Main);
  RW.replaceWith(Mul->getId(),
                 {ConstInst::makeInt(T, 35), new AssignInst(S, T)});
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_EQ(Out->getNumInstrs(), M->getNumInstrs() + 1);
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
  EXPECT_EQ(Before.ReturnValue.asInt(), After.ReturnValue.asInt());
}

TEST(RewriteTest, InsertBeforeComposesWithDrop) {
  Reg A = kNoReg, S = kNoReg;
  std::unique_ptr<Module> M = buildArith(&A, &S);
  Instruction *Dead = findFirst(*M, Instruction::Kind::Bin);
  ASSERT_NE(Dead, nullptr);
  ModuleRewriter RW(*M);
  // Drop the dead add but insert a replacement computation at the same
  // position; net instruction count is unchanged, behavior too.
  FuncId Main = M->findFunction("main");
  Reg T = RW.newReg(Main);
  RW.insertBefore(Dead->getId(), {ConstInst::makeInt(T, 99)});
  RW.drop(Dead->getId());
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_EQ(Out->getNumInstrs(), M->getNumInstrs());
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
  EXPECT_EQ(Before.ExecutedInstrs, After.ExecutedInstrs);
}

TEST(RewriteTest, ReplaceTerminatorKeepsShape) {
  Reg A = kNoReg, S = kNoReg;
  std::unique_ptr<Module> M = buildArith(&A, &S);
  Instruction *Ret = findFirst(*M, Instruction::Kind::Return);
  ASSERT_NE(Ret, nullptr);
  ModuleRewriter RW(*M);
  RW.replaceWith(Ret->getId(), {new ReturnInst(A)});
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  RunResult After = plainRun(*Out);
  EXPECT_EQ(After.ReturnValue.asInt(), 5);
}

TEST(RewriteTest, AddFunctionAndRedirectCall) {
  Reg A = kNoReg, S = kNoReg;
  std::unique_ptr<Module> M = buildArith(&A, &S);
  Instruction *Mul = nullptr;
  Reg MulLhs = kNoReg, MulRhs = kNoReg;
  for (const auto &F : M->functions())
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->insts())
        if (auto *BI = dyn_cast<BinInst>(I.get()))
          if (BI->Op == BinOp::Mul) {
            Mul = I.get();
            MulLhs = BI->Lhs;
            MulRhs = BI->Rhs;
          }
  ASSERT_NE(Mul, nullptr);
  ModuleRewriter RW(*M);
  FuncId Helper = RW.addFunction([](Module &Out) {
    Function *F = Out.addFunction("helper.mul", 2, 3);
    BasicBlock *B = F->addBlock();
    B->append(new BinInst(BinOp::Mul, 2, 0, 1));
    B->append(new ReturnInst(2));
  });
  EXPECT_EQ(Helper, RW.nextFuncId() - 1);
  RW.replaceWith(Mul->getId(),
                 {CallInst::makeDirect(S, Helper, {MulLhs, MulRhs})});
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_NE(Out->findFunction("helper.mul"), kNoFunc);
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
  EXPECT_EQ(Before.ReturnValue.asInt(), After.ReturnValue.asInt());
}

TEST(RewriteTest, AddGlobalRoundTrip) {
  Reg A = kNoReg, S = kNoReg;
  std::unique_ptr<Module> M = buildArith(&A, &S);
  Instruction *Ret = findFirst(*M, Instruction::Kind::Return);
  ASSERT_NE(Ret, nullptr);
  size_t Globals = M->globals().size();
  FuncId Main = M->findFunction("main");
  ModuleRewriter RW(*M);
  GlobalId G = RW.addGlobal("rewrite.test.g", Type::makeInt());
  Reg T = RW.newReg(Main);
  // Route the return value through the synthesized static.
  RW.replaceWith(Ret->getId(), {new StoreStaticInst(G, S),
                                new LoadStaticInst(T, G),
                                new ReturnInst(T)});
  std::unique_ptr<Module> Out = RW.apply();
  expectVerifies(*Out);
  EXPECT_EQ(Out->globals().size(), Globals + 1);
  RunResult Before = plainRun(*M), After = plainRun(*Out);
  EXPECT_EQ(Before.ReturnValue.asInt(), After.ReturnValue.asInt());
  EXPECT_EQ(Before.SinkHash, After.SinkHash);
}

} // namespace
