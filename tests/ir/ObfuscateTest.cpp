//===- tests/ir/ObfuscateTest.cpp - Obfuscation pass layer -----------------===//

#include "ir/Obfuscate.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/Interpreter.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

std::string printToString(const Module &M) {
  StringOutStream OS;
  printModule(M, OS);
  return OS.str();
}

void expectVerifies(const Module &M) {
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(M, Errors));
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
}

RunResult run(const Module &M) {
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  return R;
}

/// A small two-function program with a loop, branches, and observable
/// output — enough control flow for every transform to find a home.
std::unique_ptr<Module> buildSubject() {
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);

  B.beginFunction("work", 1);
  Reg Acc = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(6);
  Reg One = B.iconst(1);
  BasicBlock *Head = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(Head);
  B.setBlock(Head);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.binInto(Acc, BinOp::Add, Acc, I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Head);
  B.setBlock(Exit);
  Reg P0 = B.add(Acc, Reg(0));
  B.ret(P0);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg A = B.iconst(3);
  Reg V = B.call("work", {A});
  B.ncallVoid("sink", {V});
  B.ret(V);
  B.endFunction();

  M->finalize();
  return M;
}

ObfuscateOptions allPasses(uint64_t Seed) {
  ObfuscateOptions O;
  O.Seed = Seed;
  O.Junk = O.Opaque = O.Strings = true;
  return O;
}

TEST(ObfuscateParseTest, AcceptsEveryPassName) {
  const struct {
    const char *Spec;
    bool Junk, Opaque, Strings;
  } Cases[] = {
      {"junk", true, false, false},
      {"opaque", false, true, false},
      {"strings", false, false, true},
      {"junk,opaque", true, true, false},
      {"opaque,strings,junk", true, true, true},
      {"all", true, true, true},
  };
  for (const auto &C : Cases) {
    ObfuscateOptions O;
    std::string Err;
    EXPECT_TRUE(parseObfuscatePasses(C.Spec, O, Err)) << C.Spec << ": " << Err;
    EXPECT_EQ(O.Junk, C.Junk) << C.Spec;
    EXPECT_EQ(O.Opaque, C.Opaque) << C.Spec;
    EXPECT_EQ(O.Strings, C.Strings) << C.Spec;
  }
}

TEST(ObfuscateParseTest, RejectsUnknownAndEmpty) {
  ObfuscateOptions O;
  std::string Err;
  EXPECT_FALSE(parseObfuscatePasses("bogus", O, Err));
  EXPECT_NE(Err.find("unknown obfuscation pass 'bogus'"), std::string::npos)
      << Err;
  Err.clear();
  EXPECT_FALSE(parseObfuscatePasses("junk,frobnicate", O, Err));
  EXPECT_NE(Err.find("frobnicate"), std::string::npos) << Err;
  Err.clear();
  EXPECT_FALSE(parseObfuscatePasses("", O, Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;
  Err.clear();
  EXPECT_FALSE(parseObfuscatePasses(",,", O, Err));
  EXPECT_NE(Err.find("empty"), std::string::npos) << Err;
}

TEST(ObfuscateTest, DeterministicForAFixedSeed) {
  auto M = buildSubject();
  ObfuscationResult A = obfuscateModule(*M, allPasses(42));
  ObfuscationResult B = obfuscateModule(*M, allPasses(42));
  EXPECT_EQ(printToString(*A.M), printToString(*B.M));
  ASSERT_EQ(A.Manifest.size(), B.Manifest.size());
  for (size_t I = 0; I != A.Manifest.size(); ++I) {
    EXPECT_EQ(A.Manifest[I].Kind, B.Manifest[I].Kind);
    EXPECT_EQ(A.Manifest[I].Description, B.Manifest[I].Description);
  }
  EXPECT_EQ(A.InjectedInstrs, B.InjectedInstrs);
}

TEST(ObfuscateTest, VerifiesRunsAndPreservesObservables) {
  auto M = buildSubject();
  RunResult Orig = run(*M);
  for (uint64_t Seed : {1u, 7u, 99u}) {
    ObfuscationResult R = obfuscateModule(*M, allPasses(Seed));
    expectVerifies(*R.M);
    EXPECT_GT(R.InjectedInstrs, 0u) << "seed " << Seed;
    RunResult Obf = run(*R.M);
    EXPECT_EQ(Obf.ReturnValue.asInt(), Orig.ReturnValue.asInt())
        << "seed " << Seed;
    EXPECT_EQ(Obf.SinkHash, Orig.SinkHash) << "seed " << Seed;
    // Injection is not free: the payloads execute.
    EXPECT_GT(Obf.ExecutedInstrs, Orig.ExecutedInstrs) << "seed " << Seed;
  }
}

TEST(ObfuscateTest, PrintParseRoundTrip) {
  auto M = buildSubject();
  ObfuscationResult R = obfuscateModule(*M, allPasses(5));
  std::string Text1 = printToString(*R.M);
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M2 = parseModule(Text1, Errors);
  ASSERT_TRUE(M2) << (Errors.empty() ? "" : Errors.front());
  EXPECT_EQ(Text1, printToString(*M2));
  RunResult A = run(*R.M);
  RunResult B = run(*M2);
  EXPECT_EQ(A.ReturnValue.asInt(), B.ReturnValue.asInt());
  EXPECT_EQ(A.SinkHash, B.SinkHash);
}

TEST(ObfuscateTest, ManifestKindsFollowEnabledPasses) {
  auto M = buildSubject();

  ObfuscateOptions JunkOnly;
  JunkOnly.Seed = 3;
  JunkOnly.Junk = true;
  ObfuscationResult J = obfuscateModule(*M, JunkOnly);
  // All junk aggregates into the one module-wide accumulator site.
  ASSERT_EQ(J.Manifest.size(), 1u);
  EXPECT_EQ(J.Manifest[0].Kind, ObfKind::Junk);
  EXPECT_NE(J.Manifest[0].Description.find("ObfJunk"), std::string::npos);

  ObfuscateOptions OpaqueOnly;
  OpaqueOnly.Seed = 3;
  OpaqueOnly.Opaque = true;
  ObfuscationResult O = obfuscateModule(*M, OpaqueOnly);
  EXPECT_FALSE(O.Manifest.empty());
  for (const ObfSiteTag &T : O.Manifest) {
    EXPECT_EQ(T.Kind, ObfKind::Opaque);
    EXPECT_NE(T.Description.find("opaque predicate"), std::string::npos);
  }

  ObfuscateOptions StringsOnly;
  StringsOnly.Seed = 3;
  StringsOnly.Strings = true;
  StringsOnly.StringChance = 100; // force a table into every function
  ObfuscationResult S = obfuscateModule(*M, StringsOnly);
  EXPECT_EQ(S.Manifest.size(), 2u); // one table per function
  for (const ObfSiteTag &T : S.Manifest)
    EXPECT_EQ(T.Kind, ObfKind::StringTable);
}

TEST(ObfuscateTest, IncludeAndExcludeScopeTheTransforms) {
  auto M = buildSubject();

  ObfuscateOptions OnlyWork = allPasses(9);
  OnlyWork.Include = {"work"};
  ObfuscationResult R = obfuscateModule(*M, OnlyWork);
  for (const ObfSiteTag &T : R.Manifest) {
    if (T.Kind != ObfKind::Junk) { // the accumulator lives in the entry
      EXPECT_EQ(T.Function, "work") << T.Description;
    }
  }

  // Exclude wins over include. Junk and opaque would still install their
  // module-level scaffolding in the entry; strings is purely per-function,
  // so excluding every function injects nothing at all.
  ObfuscateOptions Nothing;
  Nothing.Seed = 9;
  Nothing.Strings = true;
  Nothing.StringChance = 100;
  Nothing.Include = {"work"};
  Nothing.Exclude = {"work"};
  ObfuscationResult N = obfuscateModule(*M, Nothing);
  EXPECT_TRUE(N.Manifest.empty());
  RunResult A = run(*M);
  RunResult B = run(*N.M);
  EXPECT_EQ(A.ExecutedInstrs, B.ExecutedInstrs);
}

TEST(ObfuscateTest, InjectedNamesAvoidCollisions) {
  // A program that already owns the injected names: uniquification must
  // keep the module verifier-clean and behavior intact.
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);
  ClassDecl *C = M->addClass("ObfJunk");
  C->addField("x", Type::makeInt());
  M->addGlobal("obf_sink", Type::makeRef(C->getId()));
  M->addGlobal("obf_opaque", Type::makeInt());
  B.beginFunction("main", 0);
  Reg O = B.alloc(C->getId());
  Reg V = B.iconst(11);
  B.storeField(O, C->getId(), "x", V);
  Reg L = B.loadField(O, C->getId(), "x");
  B.ncallVoid("sink", {L});
  B.ret(L);
  B.endFunction();
  M->finalize();

  RunResult Orig = run(*M);
  ObfuscationResult R = obfuscateModule(*M, allPasses(4));
  expectVerifies(*R.M);
  RunResult Obf = run(*R.M);
  EXPECT_EQ(Obf.ReturnValue.asInt(), Orig.ReturnValue.asInt());
  EXPECT_EQ(Obf.SinkHash, Orig.SinkHash);
}

} // namespace
