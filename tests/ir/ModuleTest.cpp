//===- tests/ir/ModuleTest.cpp - Module, classes, layouts ------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

TEST(ModuleTest, ClassLayoutSingleClass) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeFloat());
  FieldSlot Slot;
  ASSERT_TRUE(M.resolveField(A->getId(), "f", Slot));
  EXPECT_EQ(Slot, 0u);
  ASSERT_TRUE(M.resolveField(A->getId(), "g", Slot));
  EXPECT_EQ(Slot, 1u);
  EXPECT_FALSE(M.resolveField(A->getId(), "nope", Slot));
}

TEST(ModuleTest, ClassLayoutInheritance) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  ClassDecl *B = M.addClass("B", A->getId());
  B->addField("h", Type::makeInt());
  FieldSlot Slot;
  // Inherited fields resolve through the subclass at superclass slots.
  ASSERT_TRUE(M.resolveField(B->getId(), "f", Slot));
  EXPECT_EQ(Slot, 0u);
  ASSERT_TRUE(M.resolveField(B->getId(), "h", Slot));
  EXPECT_EQ(Slot, 2u);
  M.finalize();
  EXPECT_EQ(M.getClass(A->getId())->NumSlots, 2u);
  EXPECT_EQ(M.getClass(B->getId())->NumSlots, 3u);
}

TEST(ModuleTest, FieldNamesRoundTrip) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  ClassDecl *B = M.addClass("B", A->getId());
  B->addField("h", Type::makeRef(A->getId()));
  EXPECT_EQ(M.fieldName(B->getId(), 0), "f");
  EXPECT_EQ(M.fieldName(B->getId(), 1), "h");
  EXPECT_EQ(M.fieldName(B->getId(), kElemSlot), "ELM");
  EXPECT_EQ(M.fieldName(B->getId(), kLenSlot), "length");
}

TEST(ModuleTest, UnqualifiedFieldResolution) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("unique", Type::makeInt());
  A->addField("dup", Type::makeInt());
  ClassDecl *B = M.addClass("B");
  B->addField("dup", Type::makeInt());
  ClassId C;
  FieldSlot Slot;
  EXPECT_TRUE(M.resolveFieldUnqualified("unique", C, Slot));
  EXPECT_EQ(C, A->getId());
  // Ambiguous across classes.
  EXPECT_FALSE(M.resolveFieldUnqualified("dup", C, Slot));
  EXPECT_FALSE(M.resolveFieldUnqualified("absent", C, Slot));
}

TEST(ModuleTest, VtableInheritanceAndOverride) {
  Module M;
  IRBuilder B(M);
  ClassDecl *A = M.addClass("A");
  ClassDecl *Sub = M.addClass("Sub", A->getId());

  B.beginMethod(A->getId(), "m", 1);
  B.ret(B.iconst(1));
  B.endFunction();
  FuncId AM = M.findFunction("A.m");

  B.beginMethod(A->getId(), "n", 1);
  B.ret(B.iconst(2));
  B.endFunction();
  FuncId AN = M.findFunction("A.n");

  B.beginMethod(Sub->getId(), "m", 1);
  B.ret(B.iconst(3));
  B.endFunction();
  FuncId SubM = M.findFunction("Sub.m");

  B.beginFunction("main", 0);
  B.ret();
  B.endFunction();
  M.finalize();

  MethodNameId MName = M.findMethodName("m");
  MethodNameId NName = M.findMethodName("n");
  EXPECT_EQ(M.lookupMethod(A->getId(), MName), AM);
  EXPECT_EQ(M.lookupMethod(Sub->getId(), MName), SubM); // override
  EXPECT_EQ(M.lookupMethod(Sub->getId(), NName), AN);   // inherited
  EXPECT_EQ(M.lookupMethod(A->getId(), M.internMethodName("zzz")), kNoFunc);
}

TEST(ModuleTest, InstructionNumberingIsDense) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(1);
  Reg C = B.iconst(2);
  B.add(A, C);
  B.ret();
  B.endFunction();
  M.finalize();
  ASSERT_EQ(M.getNumInstrs(), 4u);
  for (InstrId I = 0; I != 4; ++I) {
    EXPECT_EQ(M.getInstr(I)->getId(), I);
    EXPECT_EQ(M.getInstrFunction(I)->getName(), "main");
  }
}

TEST(ModuleTest, AllocSiteNumbering) {
  Module M;
  IRBuilder B(M);
  M.addClass("A");
  B.beginFunction("main", 0);
  B.alloc(0);
  Reg Len = B.iconst(4);
  B.allocArray(TypeKind::Int, Len);
  B.alloc(0);
  B.ret();
  B.endFunction();
  M.finalize();
  ASSERT_EQ(M.getNumAllocSites(), 3u);
  EXPECT_TRUE(isa<AllocInst>(M.getAllocSite(0)));
  EXPECT_TRUE(isa<AllocArrayInst>(M.getAllocSite(1)));
  EXPECT_EQ(M.describeAllocSite(0), "new A @ main #0");
  EXPECT_EQ(M.describeAllocSite(1), "new int[] @ main #1");
}

TEST(ModuleTest, EntryDefaultsToMain) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("helper", 0);
  B.ret();
  B.endFunction();
  B.beginFunction("main", 0);
  B.ret();
  B.endFunction();
  M.finalize();
  EXPECT_EQ(M.getEntry(), M.findFunction("main"));
  M.setEntry(M.findFunction("helper"));
  EXPECT_EQ(M.getEntry(), M.findFunction("helper"));
}

} // namespace
