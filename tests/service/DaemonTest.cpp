//===- tests/service/DaemonTest.cpp - End-to-end daemon tests -------------===//
//
// The lud-serve daemon over real sockets: streamed ingest sessions whose
// folded GET /report is byte-identical to the offline renderer over the
// same traces (the ISSUE's acceptance diff, at 1 and 4 worker threads,
// with interleaved frames), per-session failure isolation with verbatim
// diagnostics on the wire, the telemetry endpoints, and clean shutdown.
//
//===----------------------------------------------------------------------===//

#include "profiling/FrozenGraph.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Render.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"

#include <gtest/gtest.h>

#include <string>
#include <unistd.h>
#include <vector>

using namespace lud;
using namespace lud::serve;

namespace {

SessionConfig allClientsConfig() {
  SessionConfig Cfg;
  Cfg.Clients = ClientSet::all();
  return Cfg;
}

std::string recordTrace(const Module &M, unsigned Runs = 1) {
  StringOutStream Sink;
  SessionConfig Cfg = allClientsConfig();
  Cfg.RecordSink = &Sink;
  ProfileSession S(Cfg);
  for (unsigned I = 0; I != Runs; ++I)
    S.run(M);
  return Sink.str();
}

/// A unique-per-test unix socket path under /tmp.
std::string socketPath(const char *Tag) {
  return "/tmp/lud-daemon-test-" + std::to_string(::getpid()) + "-" + Tag +
         ".sock";
}

ReportSpec fullSpec() {
  ReportSpec Spec;
  Spec.Report = true;
  Spec.Dead = true;
  Spec.Caches = true;
  return Spec;
}

/// What GET /report must serve: the sequential replay of \p Traces
/// rendered through the shared renderer — lud-replay's output.
std::string offlineReport(const Module &M,
                          const std::vector<std::string> &Traces,
                          const ReportSpec &Spec) {
  ProfileSession S(allClientsConfig());
  uint64_t Events = 0;
  for (const std::string &T : Traces) {
    ReplayRun R = S.replay(M, T);
    EXPECT_TRUE(R.Ok) << R.Error;
    Events += R.Events;
  }
  FrozenGraph FG(S.slicing()->graph());
  if (S.stats())
    FG.accountStats(*S.stats());
  StringOutStream OS;
  renderReplayReport(M, S, FG, Events, Traces.size(), Spec, OS);
  return OS.str();
}

DaemonConfig daemonConfig(const std::string &Socket, unsigned Workers) {
  DaemonConfig Cfg;
  Cfg.SocketPath = Socket;
  Cfg.HttpPort = 0; // Pick a free port.
  Cfg.Workers = Workers;
  Cfg.Base = allClientsConfig();
  Cfg.Spec = fullSpec();
  return Cfg;
}

// The ISSUE's end-to-end acceptance bar: N interleaved streamed sessions,
// fetched over HTTP, byte-identical to the offline sequential replay — at
// worker counts 1 and 4.
TEST(DaemonTest, InterleavedSessionsReportMatchesOfflineReplay) {
  Workload W = buildWorkload("fop", 50);
  std::vector<std::string> Traces = {recordTrace(*W.M, 3),
                                     recordTrace(*W.M, 2),
                                     recordTrace(*W.M, 1)};
  std::string Want = offlineReport(*W.M, Traces, fullSpec());

  for (unsigned Workers : {1u, 4u}) {
    std::string Socket =
        socketPath(Workers == 1 ? "interleave1" : "interleave4");
    Daemon D(*W.M, daemonConfig(Socket, Workers));
    std::string Err;
    ASSERT_TRUE(D.start(Err)) << Err;

    // One connection per trace; whole-segment frames round-robin across
    // the connections so the daemon sees them interleaved.
    std::vector<ServeClient> Clients(Traces.size());
    std::vector<std::vector<std::string>> Frames(Traces.size());
    for (size_t I = 0; I != Traces.size(); ++I) {
      ASSERT_TRUE(splitSegments(Traces[I], Frames[I], Err)) << Err;
      ASSERT_TRUE(Clients[I].connect(Socket, Err)) << Err;
      ASSERT_TRUE(Clients[I].open(Err)) << Err;
      EXPECT_EQ(Clients[I].id(), I + 1);
    }
    for (size_t Round = 0, More = 1; More; ++Round) {
      More = 0;
      for (size_t I = 0; I != Clients.size(); ++I) {
        if (Round >= Frames[I].size())
          continue;
        More = 1;
        ASSERT_TRUE(Clients[I].feed(Frames[I][Round], Err)) << Err;
      }
    }
    for (size_t I = 0; I != Clients.size(); ++I) {
      ASSERT_TRUE(Clients[I].done(Err)) << Err;
      EXPECT_EQ(Clients[I].segments(), Frames[I].size());
      Clients[I].close();
    }

    std::string Body;
    ASSERT_TRUE(httpGet(D.httpPort(), "/report", Body, Err)) << Err;
    EXPECT_EQ(Body, Want) << "workers=" << Workers;

    // Serving the report is non-destructive: fetch it again.
    ASSERT_TRUE(httpGet(D.httpPort(), "/report", Body, Err)) << Err;
    EXPECT_EQ(Body, Want);
    D.stop();
  }
}

// A corrupt stream terminates only its own session; the ERR line carries
// the TraceIO diagnostic verbatim, and the sibling session still serves
// the exact single-trace report.
TEST(DaemonTest, CorruptSessionIsIsolatedWithVerbatimDiagnostic) {
  Workload W = buildWorkload("chart", 60);
  std::string Good = recordTrace(*W.M);
  std::string Bad = "not a lud.trace.v1 stream";

  std::string WantDiag;
  {
    ProfileSession Direct(allClientsConfig());
    ReplayRun R = Direct.replay(*W.M, Bad);
    ASSERT_FALSE(R.Ok);
    WantDiag = R.Error;
  }

  std::string Socket = socketPath("corrupt");
  Daemon D(*W.M, daemonConfig(Socket, 2));
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  ServeClient CBad, CGood;
  ASSERT_TRUE(CBad.connect(Socket, Err)) << Err;
  ASSERT_TRUE(CBad.open(Err)) << Err;
  ASSERT_TRUE(CGood.connect(Socket, Err)) << Err;
  ASSERT_TRUE(CGood.open(Err)) << Err;

  ASSERT_TRUE(CBad.feed(Bad, Err)) << Err; // Queued; fails on replay.
  EXPECT_FALSE(CBad.done(Err));
  EXPECT_EQ(Err, WantDiag); // Verbatim over the wire.

  ASSERT_TRUE(CGood.feed(Good, Err)) << Err;
  ASSERT_TRUE(CGood.done(Err)) << Err;
  CBad.close();
  CGood.close();

  std::string Body;
  ASSERT_TRUE(httpGet(D.httpPort(), "/report", Body, Err)) << Err;
  EXPECT_EQ(Body, offlineReport(*W.M, {Good}, fullSpec()));

  // The roster shows the failed session with its diagnostic.
  ASSERT_TRUE(httpGet(D.httpPort(), "/sessions", Body, Err)) << Err;
  EXPECT_NE(Body.find("\"failed\""), std::string::npos) << Body;
  EXPECT_NE(Body.find("\"closed\""), std::string::npos) << Body;
  D.stop();
}

TEST(DaemonTest, SessionsCanPickTheirOwnClientSet) {
  Workload W = buildWorkload("chart", 50);
  std::string Trace = recordTrace(*W.M);

  std::string Socket = socketPath("clients");
  Daemon D(*W.M, daemonConfig(Socket, 2));
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  ServeClient C;
  ASSERT_TRUE(C.connect(Socket, Err)) << Err;
  ASSERT_TRUE(C.open(ClientSet::nullness(), Err)) << Err;
  SessionHandle *H = D.sessions().find(C.id());
  ASSERT_TRUE(H);
  EXPECT_EQ(H->clients(), ClientSet::nullness());
  ASSERT_TRUE(C.feed(Trace, Err)) << Err;
  ASSERT_TRUE(C.done(Err)) << Err;
  C.close();
  D.stop();
}

TEST(DaemonTest, TelemetryAndHealthEndpoints) {
  Workload W = buildWorkload("chart", 40);
  std::string Socket = socketPath("telemetry");
  Daemon D(*W.M, daemonConfig(Socket, 1));
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;

  std::string Body;
  ASSERT_TRUE(httpGet(D.httpPort(), "/healthz", Body, Err)) << Err;
  EXPECT_EQ(Body, "ok\n");

  // No completed sessions yet: /report is a 404, not an empty report.
  EXPECT_FALSE(httpGet(D.httpPort(), "/report", Body, Err));

  std::string Trace = recordTrace(*W.M);
  ServeClient C;
  ASSERT_TRUE(C.connect(Socket, Err)) << Err;
  ASSERT_TRUE(C.open(Err)) << Err;
  ASSERT_TRUE(C.feed(Trace, Err)) << Err;
  ASSERT_TRUE(C.done(Err)) << Err;
  C.close();

  ASSERT_TRUE(httpGet(D.httpPort(), "/stats", Body, Err)) << Err;
  EXPECT_NE(Body.find("lud.stats.v1"), std::string::npos);
  EXPECT_NE(Body.find("serve.sessions_closed"), std::string::npos);
  EXPECT_NE(Body.find("serve.http_requests"), std::string::npos);

  ASSERT_TRUE(httpGet(D.httpPort(), "/sessions", Body, Err)) << Err;
  EXPECT_NE(Body.find("\"id\": 1"), std::string::npos) << Body;
  D.stop();
}

TEST(DaemonTest, StopShutsListenersDownCleanly) {
  Workload W = buildWorkload("chart", 40);
  std::string Socket = socketPath("stop");
  Daemon D(*W.M, daemonConfig(Socket, 1));
  std::string Err;
  ASSERT_TRUE(D.start(Err)) << Err;
  EXPECT_TRUE(D.running());
  uint16_t Port = D.httpPort();
  EXPECT_NE(Port, 0);

  D.stop();
  EXPECT_FALSE(D.running());
  std::string Body;
  EXPECT_FALSE(httpGet(Port, "/healthz", Body, Err));
  ServeClient C;
  EXPECT_FALSE(C.connect(Socket, Err));
  D.stop(); // Idempotent.
}

} // namespace
