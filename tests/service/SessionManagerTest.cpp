//===- tests/service/SessionManagerTest.cpp - Session lifecycle -----------===//
//
// The serve::SessionManager contract: the open -> feed -> fold -> seal ->
// report lifecycle over concurrent streamed sessions, with the ISSUE's
// acceptance properties — interleaved streams fold byte-identically to a
// sequential replay at every worker count, and one corrupt stream kills
// only its own session, carrying the TraceIO diagnostic verbatim.
//
//===----------------------------------------------------------------------===//

#include "profiling/GraphIO.h"
#include "service/Client.h"
#include "service/SessionManager.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace lud;
using namespace lud::serve;

namespace {

SessionConfig allClientsConfig() {
  SessionConfig Cfg;
  Cfg.Clients = ClientSet::all();
  return Cfg;
}

/// Records \p Runs live passes of \p M into one in-memory `lud.trace.v1`
/// stream (one segment per pass).
std::string recordTrace(const Module &M, unsigned Runs = 1,
                        ClientSet Clients = ClientSet::all()) {
  StringOutStream Sink;
  SessionConfig Cfg = allClientsConfig();
  Cfg.Clients = Clients;
  Cfg.RecordSink = &Sink;
  ProfileSession S(Cfg);
  for (unsigned I = 0; I != Runs; ++I)
    S.run(M);
  return Sink.str();
}

std::string graphBytes(const ProfileSession &S) {
  StringOutStream OS;
  writeGraph(S.slicing()->graph(), OS);
  return OS.str();
}

/// The sequential-replay reference: every trace, in order, into one
/// session — what `lud-replay` does.
std::string sequentialGraph(const Module &M,
                            const std::vector<std::string> &Traces) {
  ProfileSession S(allClientsConfig());
  for (const std::string &T : Traces) {
    ReplayRun R = S.replay(M, T);
    EXPECT_TRUE(R.Ok) << R.Error;
  }
  return graphBytes(S);
}

TEST(SessionManagerTest, LifecycleOpenFeedFinishFold) {
  Workload W = buildWorkload("chart", 60);
  std::string Trace = recordTrace(*W.M);

  SessionManager Mgr(*W.M, allClientsConfig());
  SessionHandle &S = Mgr.open();
  EXPECT_EQ(S.state(), SessionState::Open);
  EXPECT_EQ(S.clients(), ClientSet::all());

  std::string Err;
  ASSERT_TRUE(S.feed(Trace, Err)) << Err;
  ASSERT_TRUE(S.finish(Err)) << Err;
  EXPECT_EQ(S.state(), SessionState::Closed);
  EXPECT_GT(S.events(), 0u);
  EXPECT_EQ(S.segments(), 1u);
  EXPECT_EQ(S.bytesFed(), Trace.size());

  uint64_t Events = 0, Folded = 0;
  std::unique_ptr<ProfileSession> Report = Mgr.foldClosed(Events, Folded);
  ASSERT_TRUE(Report);
  EXPECT_EQ(Events, S.events());
  EXPECT_EQ(Folded, 1u);
  EXPECT_EQ(graphBytes(*Report), sequentialGraph(*W.M, {Trace}));

  // The fold is non-destructive and repeatable: sessions stay Closed.
  EXPECT_EQ(S.state(), SessionState::Closed);
  std::unique_ptr<ProfileSession> Again = Mgr.foldClosed(Events, Folded);
  ASSERT_TRUE(Again);
  EXPECT_EQ(graphBytes(*Again), graphBytes(*Report));
}

TEST(SessionManagerTest, FoldWithNoClosedSessionsReturnsNull) {
  Workload W = buildWorkload("chart", 40);
  SessionManager Mgr(*W.M, allClientsConfig());
  Mgr.open(); // Open, never finished: not foldable.
  uint64_t Events = 0, Folded = 0;
  EXPECT_EQ(Mgr.foldClosed(Events, Folded), nullptr);
  EXPECT_EQ(Folded, 0u);
}

// The ISSUE's determinism acceptance bar, at the manager level: N
// interleaved streamed sessions fold byte-identically to the sequential
// replay of the same traces, whatever the worker count.
TEST(SessionManagerTest, InterleavedStreamsMatchSequentialReplay) {
  Workload W = buildWorkload("fop", 50);
  std::vector<std::string> Traces = {recordTrace(*W.M, 3),
                                     recordTrace(*W.M, 2),
                                     recordTrace(*W.M, 1)};
  std::string Want = sequentialGraph(*W.M, Traces);

  for (unsigned Workers : {1u, 4u}) {
    SessionManager Mgr(*W.M, allClientsConfig(), SessionLimits{}, Workers);
    std::vector<SessionHandle *> Handles;
    std::vector<std::vector<std::string>> Frames(Traces.size());
    for (size_t I = 0; I != Traces.size(); ++I) {
      Handles.push_back(&Mgr.open());
      std::string Err;
      ASSERT_TRUE(splitSegments(Traces[I], Frames[I], Err)) << Err;
      ASSERT_GT(Frames[I].size(), 0u);
    }
    // Round-robin across the sessions, one whole-segment frame at a time.
    for (size_t Round = 0, More = 1; More;) {
      More = 0;
      for (size_t I = 0; I != Handles.size(); ++I) {
        if (Round >= Frames[I].size())
          continue;
        More = 1;
        std::string Err;
        ASSERT_TRUE(Handles[I]->feed(Frames[I][Round], Err)) << Err;
      }
      ++Round;
    }
    for (size_t I = 0; I != Handles.size(); ++I) {
      std::string Err;
      ASSERT_TRUE(Handles[I]->finish(Err)) << Err;
      EXPECT_EQ(Handles[I]->segments(), Frames[I].size());
    }
    uint64_t Events = 0, Folded = 0;
    std::unique_ptr<ProfileSession> Report = Mgr.foldClosed(Events, Folded);
    ASSERT_TRUE(Report);
    EXPECT_EQ(Folded, Traces.size());
    EXPECT_EQ(graphBytes(*Report), Want) << "workers=" << Workers;
  }
}

// The ISSUE's isolation acceptance bar: a corrupt stream fails only the
// offending session, and its diagnostic is the TraceIO offset-stamped
// message verbatim — byte-equal to what a direct ProfileSession::replay
// of the same bytes reports.
TEST(SessionManagerTest, CorruptStreamFailsOnlyThatSession) {
  Workload W = buildWorkload("chart", 60);
  std::string Good = recordTrace(*W.M);
  std::string Bad = "not a lud.trace.v1 stream";

  std::string WantDiag;
  {
    ProfileSession Direct(allClientsConfig());
    ReplayRun R = Direct.replay(*W.M, Bad);
    ASSERT_FALSE(R.Ok);
    WantDiag = R.Error;
    ASSERT_FALSE(WantDiag.empty());
  }

  SessionManager Mgr(*W.M, allClientsConfig());
  SessionHandle &SBad = Mgr.open();
  SessionHandle &SGood = Mgr.open();

  std::string Err;
  ASSERT_TRUE(SBad.feed(Bad, Err)) << Err; // Queued; fails asynchronously.
  EXPECT_FALSE(SBad.finish(Err));
  EXPECT_EQ(SBad.state(), SessionState::Failed);
  EXPECT_EQ(Err, WantDiag);
  EXPECT_EQ(SBad.error(), WantDiag);

  // Feeding a failed session reports the same diagnostic.
  EXPECT_FALSE(SBad.feed(Good, Err));
  EXPECT_EQ(Err, WantDiag);

  // The sibling session is untouched and still folds.
  ASSERT_TRUE(SGood.feed(Good, Err)) << Err;
  ASSERT_TRUE(SGood.finish(Err)) << Err;
  uint64_t Events = 0, Folded = 0;
  std::unique_ptr<ProfileSession> Report = Mgr.foldClosed(Events, Folded);
  ASSERT_TRUE(Report);
  EXPECT_EQ(Folded, 1u);
  EXPECT_EQ(graphBytes(*Report), sequentialGraph(*W.M, {Good}));
}

TEST(SessionManagerTest, QuotaFailsTheSessionWithADiagnostic) {
  Workload W = buildWorkload("chart", 40);
  std::string Trace = recordTrace(*W.M);

  SessionLimits Limits;
  Limits.MaxSessionBytes = Trace.size() - 1;
  SessionManager Mgr(*W.M, allClientsConfig(), Limits);
  SessionHandle &S = Mgr.open();

  std::string Err;
  EXPECT_FALSE(S.feed(Trace, Err));
  EXPECT_EQ(S.state(), SessionState::Failed);
  EXPECT_NE(Err.find("session quota exceeded"), std::string::npos) << Err;

  // Quota is per session: a sibling under the same manager still works.
  SessionHandle &S2 = Mgr.open();
  std::string Half = Trace.substr(0, Trace.size() / 2);
  ASSERT_TRUE(S2.feed(Half, Err)) << Err; // Under quota (garbage is fine
  EXPECT_FALSE(S2.finish(Err));           // to queue; it fails on replay,
  EXPECT_EQ(S2.state(), SessionState::Failed); // not on quota).
  EXPECT_EQ(Err.find("session quota exceeded"), std::string::npos);
}

// High-watermark backpressure must slow oversized streams down, never
// wedge them: chunks larger than the watermark still drain.
TEST(SessionManagerTest, BackpressureWatermarkDoesNotWedgeOversizedChunks) {
  Workload W = buildWorkload("chart", 50);
  std::string Trace = recordTrace(*W.M, 3);
  std::vector<std::string> Frames;
  std::string Err;
  ASSERT_TRUE(splitSegments(Trace, Frames, Err));
  ASSERT_GE(Frames.size(), 3u);

  SessionLimits Limits;
  Limits.MaxPendingBytes = 1; // Every frame is over the watermark.
  SessionManager Mgr(*W.M, allClientsConfig(), Limits, /*Workers=*/1);
  SessionHandle &S = Mgr.open();
  for (const std::string &F : Frames)
    ASSERT_TRUE(S.feed(F, Err)) << Err;
  ASSERT_TRUE(S.finish(Err)) << Err;
  EXPECT_EQ(S.state(), SessionState::Closed);
  EXPECT_EQ(S.segments(), Frames.size());
}

TEST(SessionManagerTest, IdleSessionsAreEvicted) {
  Workload W = buildWorkload("chart", 40);
  SessionLimits Limits;
  Limits.IdleEvictSeconds = 0.01;
  SessionManager Mgr(*W.M, allClientsConfig(), Limits);
  SessionHandle &S = Mgr.open();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(Mgr.evictIdle(), 1u);
  EXPECT_EQ(S.state(), SessionState::Evicted);
  std::string Err;
  EXPECT_FALSE(S.feed("x", Err));
  EXPECT_FALSE(S.finish(Err));
}

TEST(SessionManagerTest, AbortCarriesTheCallersDiagnostic) {
  Workload W = buildWorkload("chart", 40);
  SessionManager Mgr(*W.M, allClientsConfig());
  SessionHandle &S = Mgr.open();
  Mgr.abort(S, "connection closed before DONE");
  EXPECT_EQ(S.state(), SessionState::Failed);
  EXPECT_EQ(S.error(), "connection closed before DONE");
  // Aborting a terminal session is a no-op.
  Mgr.abort(S, "something else");
  EXPECT_EQ(S.error(), "connection closed before DONE");
}

TEST(SessionManagerTest, ServeCountersAccumulate) {
  Workload W = buildWorkload("chart", 40);
  std::string Trace = recordTrace(*W.M);
  SessionManager Mgr(*W.M, allClientsConfig());
  SessionHandle &S = Mgr.open();
  std::string Err;
  ASSERT_TRUE(S.feed(Trace, Err)) << Err;
  ASSERT_TRUE(S.finish(Err)) << Err;
  StringOutStream OS;
  Mgr.statsJson(OS);
  const std::string &J = OS.str();
  EXPECT_NE(J.find("lud.stats.v1"), std::string::npos);
  EXPECT_NE(J.find("serve.sessions_opened"), std::string::npos);
  EXPECT_NE(J.find("serve.sessions_closed"), std::string::npos);
  EXPECT_NE(J.find("serve.bytes_replayed"), std::string::npos);
}

// replayShardedSession is the batch frontend over the same lifecycle; an
// unreadable shard file aborts with the exact replayFile diagnostic,
// prefixed by the path, and yields no folded session.
TEST(SessionManagerTest, ReplayShardedSessionReportsUnreadableFiles) {
  Workload W = buildWorkload("chart", 40);
  ShardedSession R = replayShardedSession(
      *W.M, {"/nonexistent/lud-test.trace"}, allClientsConfig());
  EXPECT_FALSE(R.Session);
  EXPECT_NE(R.Error.find("/nonexistent/lud-test.trace: cannot read"),
            std::string::npos)
      << R.Error;
}

} // namespace
