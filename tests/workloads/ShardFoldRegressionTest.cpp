//===- tests/workloads/ShardFoldRegressionTest.cpp - Shard fold pins ------===//
//
// Fuzz-derived regression pins for the parallel driver's fold invariant:
// runShardedSession(M, S, Cfg, T) must land in exactly the state of one
// session that ran the module S times sequentially — same Gcost bytes,
// same client reports, for every thread count. MergeEquivalenceTest
// proves this for the built-in workloads; these seeds pin it for the
// random-program shapes the differential fuzzer sweeps (recursion,
// aliasing, null flows, globals), where a fold that depends on shard
// arrival order is most likely to slip.
//
//===----------------------------------------------------------------------===//

#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"
#include "workloads/ParallelDriver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace lud;

namespace {

constexpr ClientSet kAllClients = ClientSet::all();

SessionConfig sessionConfig() {
  SessionConfig Cfg;
  Cfg.Instrument = true;
  Cfg.Clients = kAllClients;
  return Cfg;
}

std::string graphBytes(const ProfileSession &S) {
  StringOutStream OS;
  if (S.slicing())
    writeGraph(S.slicing()->graph(), OS);
  return OS.str();
}

std::string reportBytes(const ProfileSession &S, const Module &M) {
  StringOutStream OS;
  S.printClientReports(M, OS);
  return OS.str();
}

std::unique_ptr<Module> fuzzShape(uint64_t Seed) {
  RandomProgramOptions P;
  P.Seed = Seed;
  P.NumFunctions = 5;
  P.OpsPerFunction = 40;
  P.NumGlobals = 2;
  P.Recursion = true;
  P.Aliasing = true;
  P.NullFlows = true;
  return generateRandomProgram(P);
}

TEST(ShardFoldRegressionTest, FoldMatchesSequentialReuse) {
  for (uint64_t Seed : {5u, 28u, 63u}) {
    std::unique_ptr<Module> M = fuzzShape(Seed);
    for (unsigned Shards : {2u, 4u, 8u}) {
      // Reference: one session, run() S times.
      ProfileSession Seq(sessionConfig());
      RunResult SeqRun;
      for (unsigned I = 0; I != Shards; ++I)
        SeqRun = Seq.run(*M).Run;
      const std::string SeqGraph = graphBytes(Seq);
      const std::string SeqReports = reportBytes(Seq, *M);

      for (unsigned Threads : {1u, 4u}) {
        ShardedSession Sh =
            runShardedSession(*M, Shards, sessionConfig(), Threads);
        ASSERT_TRUE(Sh.Error.empty())
            << "seed " << Seed << " shards " << Shards << ": " << Sh.Error;
        ASSERT_NE(Sh.Session, nullptr);
        EXPECT_EQ(Sh.Run.Status, SeqRun.Status);
        EXPECT_EQ(Sh.TotalInstrs, uint64_t(Shards) * SeqRun.ExecutedInstrs)
            << "seed " << Seed << " shards " << Shards;
        EXPECT_EQ(graphBytes(*Sh.Session), SeqGraph)
            << "seed " << Seed << " shards " << Shards << " threads "
            << Threads << ": fold is not order-invariant";
        EXPECT_EQ(reportBytes(*Sh.Session, *M), SeqReports)
            << "seed " << Seed << " shards " << Shards << " threads "
            << Threads;
      }
    }
  }
}

} // namespace
