//===- tests/workloads/WorkloadTest.cpp - DaCapo-style generators ----------===//

#include "analysis/Clients.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, BuildsVerifiesAndRuns) {
  Workload W = buildWorkload(GetParam(), 100);
  ASSERT_TRUE(W.M);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*W.M, Errors));
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;

  TimedRun R = baselineRun(*W.M);
  EXPECT_EQ(R.Run.Status, RunStatus::Finished)
      << "trap: " << trapKindName(R.Run.Trap);
  EXPECT_GT(R.Run.ExecutedInstrs, 1000u);
  EXPECT_NE(R.Run.SinkHash, 0u);
}

TEST_P(WorkloadParamTest, DeterministicAcrossRuns) {
  Workload W = buildWorkload(GetParam(), 64);
  TimedRun R1 = baselineRun(*W.M);
  TimedRun R2 = baselineRun(*W.M);
  EXPECT_EQ(R1.Run.ExecutedInstrs, R2.Run.ExecutedInstrs);
  EXPECT_EQ(R1.Run.SinkHash, R2.Run.SinkHash);
  EXPECT_EQ(R1.Run.ReturnValue.asInt(), R2.Run.ReturnValue.asInt());
}

TEST_P(WorkloadParamTest, ProfiledRunMatchesBaselineSemantics) {
  Workload W = buildWorkload(GetParam(), 64);
  TimedRun Base = baselineRun(*W.M);
  ProfiledRun Prof = profiledRun(*W.M);
  EXPECT_EQ(Prof.Run.Status, RunStatus::Finished);
  EXPECT_EQ(Prof.Run.ExecutedInstrs, Base.Run.ExecutedInstrs);
  EXPECT_EQ(Prof.Run.SinkHash, Base.Run.SinkHash);
}

TEST_P(WorkloadParamTest, GraphSizeIsAbstractionBounded) {
  // Scaling the run up must not scale the graph with it: the node count is
  // bounded by static instructions x context slots.
  Workload Small = buildWorkload(GetParam(), 64);
  Workload Large = buildWorkload(GetParam(), 256);
  ProfiledRun PS = profiledRun(*Small.M);
  ProfiledRun PL = profiledRun(*Large.M);
  EXPECT_GT(PL.Run.ExecutedInstrs, PS.Run.ExecutedInstrs);
  const size_t Bound =
      size_t(Large.M->getNumInstrs()) * (PL.Prof->config().ContextSlots + 1);
  EXPECT_LE(PL.Prof->graph().numNodes(), Bound);
  // Graph growth is far slower than execution growth.
  double InstrRatio = double(PL.Run.ExecutedInstrs) /
                      double(std::max<uint64_t>(PS.Run.ExecutedInstrs, 1));
  double NodeRatio = double(PL.Prof->graph().numNodes()) /
                     double(std::max<size_t>(PS.Prof->graph().numNodes(), 1));
  EXPECT_LT(NodeRatio, InstrRatio / 1.5);
}

INSTANTIATE_TEST_SUITE_P(AllDaCapo, WorkloadParamTest,
                         ::testing::ValuesIn(dacapoNames()),
                         [](const auto &Info) { return Info.param; });

class CaseStudyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CaseStudyTest, OptimizedVariantDoesLessWork) {
  Workload Orig = buildWorkload(GetParam(), 200, /*Optimized=*/false);
  Workload Opt = buildWorkload(GetParam(), 200, /*Optimized=*/true);
  TimedRun RO = baselineRun(*Orig.M);
  TimedRun RF = baselineRun(*Opt.M);
  ASSERT_EQ(RO.Run.Status, RunStatus::Finished);
  ASSERT_EQ(RF.Run.Status, RunStatus::Finished);
  EXPECT_LT(RF.Run.ExecutedInstrs, RO.Run.ExecutedInstrs)
      << "the fix must reduce executed instructions";
}

TEST_P(CaseStudyTest, PlantedStructuresRankHigh) {
  Workload W = buildWorkload(GetParam(), 200);
  ASSERT_FALSE(W.PlantedSites.empty());
  ProfiledRun P = profiledRun(*W.M);
  CostModel CM(P.Prof->graph());
  LowUtilityReport Report(CM, *W.M);
  ASSERT_FALSE(Report.sites().empty());
  // The tool surfaces each kind of bloat through the matching client: the
  // cost-benefit ranking for low-utility structures, the overwrite ranking
  // for derby-style written-more-than-read locations (Section 3.2).
  int BestRank = -1;
  for (AllocSiteId Site : W.PlantedSites) {
    int R = Report.rankOf(Site);
    if (R >= 0 && (BestRank < 0 || R < BestRank))
      BestRank = R;
  }
  std::vector<OverwriteRow> OW = rankOverwrites(*P.Prof, *W.M);
  int BestOW = -1;
  for (AllocSiteId Site : W.PlantedSites) {
    int R = overwriteRankOf(OW, Site);
    if (R >= 0 && (BestOW < 0 || R < BestOW))
      BestOW = R;
  }
  ASSERT_TRUE(BestRank >= 0 || BestOW >= 0)
      << "no planted site surfaced in any client";
  bool Surfaced = (BestRank >= 0 && BestRank < 10) ||
                  (BestOW >= 0 && BestOW < 5);
  EXPECT_TRUE(Surfaced) << "planted structure buried: report rank "
                        << BestRank << ", overwrite rank " << BestOW;
}

INSTANTIATE_TEST_SUITE_P(
    SixFixes, CaseStudyTest,
    ::testing::Values("bloat", "eclipse", "sunflow", "derby", "tomcat",
                      "tradebeans"),
    [](const auto &Info) { return Info.param; });

TEST(WorkloadTest, UnoptimizedOutranksOptimizedInDeadWork) {
  // The fixes reduce IPD: the fraction of instruction instances producing
  // ultimately-dead values drops in every optimized variant.
  for (const char *Name : {"bloat", "derby", "tomcat"}) {
    Workload Orig = buildWorkload(Name, 150, false);
    Workload Opt = buildWorkload(Name, 150, true);
    ProfiledRun PO = profiledRun(*Orig.M);
    ProfiledRun PF = profiledRun(*Opt.M);
    BloatMetrics MO =
        computeDeadValues(PO.Prof->graph(), PO.Run.ExecutedInstrs).Metrics;
    BloatMetrics MF =
        computeDeadValues(PF.Prof->graph(), PF.Run.ExecutedInstrs).Metrics;
    EXPECT_GT(MO.ipd(), MF.ipd()) << Name;
  }
}

TEST(WorkloadTest, PhaseMaskingShrinksTracking) {
  Workload W = buildWorkload("tradebeans", 200);
  SlicingConfig Full;
  SlicingConfig LoadOnly;
  LoadOnly.TrackedPhaseMask = 1ull << 1; // Track only the load phase.
  ProfiledRun PF = profiledRun(*W.M, Full);
  ProfiledRun PL = profiledRun(*W.M, LoadOnly);
  EXPECT_LT(PL.Prof->graph().totalFreq(), PF.Prof->graph().totalFreq());
  EXPECT_LT(PL.Prof->graph().numNodes(), PF.Prof->graph().numNodes());
  // Identical program behaviour regardless of tracking.
  EXPECT_EQ(PL.Run.SinkHash, PF.Run.SinkHash);
}

TEST(WorkloadTest, OptimizedVariantsOnlyForCaseStudies) {
  int Count = 0;
  for (const std::string &Name : dacapoNames())
    if (hasOptimizedVariant(Name))
      ++Count;
  EXPECT_EQ(Count, 6);
  EXPECT_FALSE(hasOptimizedVariant("chart"));
}

TEST(WorkloadTest, TextRoundTripPreservesBehaviour) {
  // Every generated workload survives print -> parse -> print unchanged
  // and behaves identically — a heavy stress of the textual frontend.
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, 32);
    StringOutStream Text1;
    printModule(*W.M, Text1);
    std::vector<std::string> Errors;
    std::unique_ptr<Module> M2 = parseModule(Text1.str(), Errors);
    for (const std::string &E : Errors)
      ADD_FAILURE() << Name << ": " << E;
    ASSERT_TRUE(M2) << Name;
    StringOutStream Text2;
    printModule(*M2, Text2);
    EXPECT_EQ(Text1.str(), Text2.str()) << Name;
    TimedRun R1 = baselineRun(*W.M);
    TimedRun R2 = baselineRun(*M2);
    EXPECT_EQ(R1.Run.ExecutedInstrs, R2.Run.ExecutedInstrs) << Name;
    EXPECT_EQ(R1.Run.SinkHash, R2.Run.SinkHash) << Name;
  }
}

TEST(WorkloadTest, CollectionRankingClientFiltersContainers) {
  // Section 3.2's "problematic collections" client: restrict the ranking
  // to the stdlib container classes and check every row is a container
  // and the order is preserved.
  Workload W = buildWorkload("eclipse", 150);
  ProfiledRun P = profiledRun(*W.M);
  CostModel CM(P.Prof->graph());
  LowUtilityReport Report(CM, *W.M);
  std::vector<ClassId> Containers = {W.M->findClass("IntVec"),
                                     W.M->findClass("RefVec"),
                                     W.M->findClass("StrMap")};
  std::vector<SiteScore> Rows = Report.filterByClass(*W.M, Containers);
  ASSERT_FALSE(Rows.empty());
  double Prev = 1e300;
  for (const SiteScore &S : Rows) {
    const auto *A = dyn_cast<AllocInst>(W.M->getAllocSite(S.Site));
    ASSERT_NE(A, nullptr);
    bool IsContainer = false;
    for (ClassId C : Containers)
      IsContainer |= A->Class == C;
    EXPECT_TRUE(IsContainer);
    EXPECT_LE(S.Ratio, Prev);
    Prev = S.Ratio;
  }
  // The Figure 6 pattern's RefVec (built only to be null-checked) must be
  // among the ranked containers.
  bool SawRefVec = false;
  for (const SiteScore &S : Rows) {
    const auto *A = cast<AllocInst>(W.M->getAllocSite(S.Site));
    SawRefVec |= A->Class == W.M->findClass("RefVec");
  }
  EXPECT_TRUE(SawRefVec);
}

TEST(WorkloadTest, EighteenDistinctWorkloads) {
  EXPECT_EQ(dacapoNames().size(), 18u);
  std::vector<std::string> Names = dacapoNames();
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(std::unique(Names.begin(), Names.end()), Names.end());
}

} // namespace
