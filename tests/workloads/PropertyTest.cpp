//===- tests/workloads/PropertyTest.cpp - Randomized invariant sweeps ------===//
//
// Property-based tests: seeded random programs (workloads/RandomProgram.h)
// are swept through the whole pipeline and analysis invariants are checked
// on each. TEST_P over seeds gives a corpus of program shapes nobody wrote
// by hand.
//
//===----------------------------------------------------------------------===//

#include "analysis/CacheCost.h"
#include "analysis/CostModel.h"
#include "analysis/DeadValues.h"
#include "analysis/MultiHop.h"
#include "analysis/Report.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {
protected:
  std::unique_ptr<Module> makeProgram() {
    RandomProgramOptions Opts;
    Opts.Seed = GetParam();
    Opts.NumClasses = 2 + unsigned(GetParam() % 3);
    Opts.NumFunctions = 3 + unsigned(GetParam() % 4);
    Opts.OpsPerFunction = 24 + unsigned(GetParam() % 17);
    return generateRandomProgram(Opts);
  }
};

TEST_P(RandomProgramTest, RunsToCompletionDeterministically) {
  auto M = makeProgram();
  TimedRun R1 = baselineRun(*M);
  TimedRun R2 = baselineRun(*M);
  ASSERT_EQ(R1.Run.Status, RunStatus::Finished)
      << "trap: " << trapKindName(R1.Run.Trap);
  EXPECT_EQ(R1.Run.ExecutedInstrs, R2.Run.ExecutedInstrs);
  EXPECT_EQ(R1.Run.SinkHash, R2.Run.SinkHash);
  EXPECT_EQ(R1.Run.ReturnValue.asInt(), R2.Run.ReturnValue.asInt());
}

TEST_P(RandomProgramTest, ProfilingIsSemanticallyTransparent) {
  auto M = makeProgram();
  TimedRun Base = baselineRun(*M);
  ProfiledRun Prof = profiledRun(*M);
  ASSERT_EQ(Prof.Run.Status, Base.Run.Status);
  EXPECT_EQ(Prof.Run.ExecutedInstrs, Base.Run.ExecutedInstrs);
  EXPECT_EQ(Prof.Run.SinkHash, Base.Run.SinkHash);
  EXPECT_EQ(Prof.Run.ReturnValue.asInt(), Base.Run.ReturnValue.asInt());
}

TEST_P(RandomProgramTest, GraphStructuralInvariants) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  const DepGraph &G = P.Prof->graph();

  // Node count bounded by |I| x (|D| + 1) (the +1 covers the context-free
  // consumer nodes).
  EXPECT_LE(G.numNodes(),
            size_t(M->getNumInstrs()) * (P.Prof->config().ContextSlots + 1));

  // In/Out adjacency is symmetric and references valid nodes.
  size_t OutTotal = 0, InTotal = 0;
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    for (NodeId S : G.node(N).Out) {
      ASSERT_LT(S, G.numNodes());
      bool Back = false;
      for (NodeId Pred : G.node(S).In)
        Back |= Pred == N;
      EXPECT_TRUE(Back) << "missing back edge";
    }
    OutTotal += G.node(N).Out.size();
    InTotal += G.node(N).In.size();
    // Frequencies are positive: nodes only exist if they executed.
    EXPECT_GT(G.freq(N), 0u);
  }
  EXPECT_EQ(OutTotal, InTotal);
  EXPECT_EQ(OutTotal, G.numEdges());

  // Covered instances cannot exceed executed instructions.
  EXPECT_LE(G.totalFreq(), P.Run.ExecutedInstrs);
}

TEST_P(RandomProgramTest, CostModelMonotonicity) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  const DepGraph &G = P.Prof->graph();
  CostModel CM(G);
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    // Single-hop cost never exceeds the full abstract cost, and both
    // include the node's own frequency.
    uint64_t Hrac = CM.hrac(N);
    uint64_t Abs = CM.abstractCost(N);
    EXPECT_LE(Hrac, Abs);
    EXPECT_GE(Hrac, G.freq(N));
    EXPECT_GE(CM.hrab(N).Benefit, G.freq(N));
  }
}

TEST_P(RandomProgramTest, DeadValueMetricsAreFractions) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  DeadValueAnalysis DV =
      computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
  EXPECT_GE(DV.Metrics.ipd(), 0.0);
  EXPECT_LE(DV.Metrics.ipd(), 1.0);
  EXPECT_GE(DV.Metrics.ipp(), 0.0);
  EXPECT_LE(DV.Metrics.ipp(), 1.0);
  EXPECT_GE(DV.Metrics.nld(), 0.0);
  EXPECT_LE(DV.Metrics.nld(), 1.0);
  // D* and P* are disjoint.
  for (size_t N = 0; N != DV.Dead.size(); ++N)
    EXPECT_FALSE(DV.Dead[N] && DV.PredicateOnly[N]);
}

TEST_P(RandomProgramTest, ThinSlicingNeverAddsEdges) {
  auto M = makeProgram();
  SlicingConfig Thin;
  SlicingConfig Trad;
  Trad.ThinSlicing = false;
  ProfiledRun PThin = profiledRun(*M, Thin);
  ProfiledRun PTrad = profiledRun(*M, Trad);
  EXPECT_LE(PThin.Prof->graph().numEdges(), PTrad.Prof->graph().numEdges());
  EXPECT_EQ(PThin.Prof->graph().numNodes(), PTrad.Prof->graph().numNodes());
}

TEST_P(RandomProgramTest, ContextInsensitivityNeverAddsNodes) {
  auto M = makeProgram();
  SlicingConfig Sens;
  SlicingConfig Insens;
  Insens.ContextSensitive = false;
  ProfiledRun PS = profiledRun(*M, Sens);
  ProfiledRun PI = profiledRun(*M, Insens);
  EXPECT_GE(PS.Prof->graph().numNodes(), PI.Prof->graph().numNodes());
  EXPECT_GE(PS.Prof->averageCR(), 0.0);
  EXPECT_LE(PS.Prof->averageCR(), 1.0);
}

TEST_P(RandomProgramTest, PrinterParserRoundTrip) {
  auto M = makeProgram();
  StringOutStream Text1;
  printModule(*M, Text1);
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M2 = parseModule(Text1.str(), Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  ASSERT_TRUE(M2);
  StringOutStream Text2;
  printModule(*M2, Text2);
  EXPECT_EQ(Text1.str(), Text2.str());
  // And the reparsed program behaves identically.
  TimedRun R1 = baselineRun(*M);
  TimedRun R2 = baselineRun(*M2);
  EXPECT_EQ(R1.Run.ExecutedInstrs, R2.Run.ExecutedInstrs);
  EXPECT_EQ(R1.Run.SinkHash, R2.Run.SinkHash);
}

TEST_P(RandomProgramTest, ReportIsWellFormed) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  CostModel CM(P.Prof->graph());
  LowUtilityReport Report(CM, *M);
  double PrevRatio = -1;
  for (size_t I = 0; I != Report.sites().size(); ++I) {
    const SiteScore &S = Report.sites()[I];
    EXPECT_GE(S.NRac, 0.0);
    EXPECT_GE(S.NRab, 0.0);
    EXPECT_GE(S.Ratio, 0.0);
    if (I > 0) {
      EXPECT_LE(S.Ratio, PrevRatio); // Sorted descending.
    }
    PrevRatio = S.Ratio;
    EXPECT_LT(S.Site, M->getNumAllocSites());
  }
}

TEST_P(RandomProgramTest, MultiHopIsMonotoneAndAnchoredAtDefinition5) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  FrozenGraph G(P.Prof->graph());
  CostModel CM(G);
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    EXPECT_EQ(multiHopCost(G, N, 1), CM.hrac(N));
    uint64_t Prev = 0;
    for (unsigned K = 1; K <= 3; ++K) {
      uint64_t Cost = multiHopCost(G, N, K);
      EXPECT_GE(Cost, Prev);
      // Never exceeds the unbounded backward slice (Definition 4).
      EXPECT_LE(Cost, CM.abstractCost(N));
      Prev = Cost;
    }
  }
}

TEST_P(RandomProgramTest, CacheScoresAreWellFormed) {
  auto M = makeProgram();
  ProfiledRun P = profiledRun(*M);
  CostModel CM(P.Prof->graph());
  CacheOptions Opts;
  Opts.MinWrites = 1;
  for (const CacheScore &S : rankCacheEffectiveness(CM, *M, Opts)) {
    EXPECT_GE(S.SpineCost, 0.0);
    EXPECT_GE(S.SavedWork, 0.0);
    EXPECT_GE(S.Effectiveness, 0.0);
    EXPECT_LT(S.Site, M->getNumAllocSites());
    EXPECT_FALSE(S.Description.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t(1), uint64_t(25)));

} // namespace
