//===- tests/workloads/StdLibTest.cpp - The IR-level class library ---------===//
//
// Behavioural tests of the IR stdlib (vectors, strings, matrices, hash
// map) by building small driver programs and interpreting them — the same
// way the DaCapo analogues consume the library.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "runtime/Interpreter.h"
#include "workloads/EmitUtil.h"
#include "workloads/StdLib.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

/// Builds a module with the stdlib and one `main` emitted by \p Body;
/// returns main's integer result.
int64_t runStdLib(const std::function<void(StdLib &, IRBuilder &)> &Body,
                  StdLibOptions Opts = {}) {
  Module M;
  StdLib L(M, Opts);
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Body(L, B);
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished)
      << "trap: " << trapKindName(R.Trap);
  return R.ReturnValue.asInt();
}

TEST(StdLibTest, IntVecGrowsAndReadsBack) {
  // Push 0..99, sum them back: 4950. Growth doubles from capacity 4.
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg V = B.alloc(L.IntVec);
    Reg C4 = B.iconst(4);
    B.callVoid("IntVec.init", {V, C4});
    Reg N = B.iconst(100);
    emitCountedLoop(B, N, [&](Reg I) { B.callVoid("IntVec.add", {V, I}); });
    Reg Acc = B.iconst(0);
    Reg Sz = B.call(L.IntVecSize, {V});
    emitCountedLoop(B, Sz, [&](Reg J) {
      Reg E = B.call(L.IntVecGet, {V, J});
      B.binInto(Acc, BinOp::Add, Acc, E);
    });
    B.ret(Acc);
  });
  EXPECT_EQ(Got, 4950);
}

TEST(StdLibTest, IntVecSetOverwrites) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg V = B.alloc(L.IntVec);
    Reg C4 = B.iconst(4);
    B.callVoid("IntVec.init", {V, C4});
    Reg X = B.iconst(5);
    B.callVoid("IntVec.add", {V, X});
    Reg Zero = B.iconst(0);
    Reg Y = B.iconst(42);
    B.callVoid("IntVec.set", {V, Zero, Y});
    Reg E = B.call(L.IntVecGet, {V, Zero});
    B.ret(E);
  });
  EXPECT_EQ(Got, 42);
}

TEST(StdLibTest, RefVecStoresObjects) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    // Store 10 IntVecs, each seeded with its index; read the 7th back.
    Reg RV = B.alloc(L.RefVec);
    Reg C2 = B.iconst(2);
    B.callVoid("RefVec.init", {RV, C2});
    Reg N = B.iconst(10);
    emitCountedLoop(B, N, [&](Reg I) {
      Reg Inner = B.alloc(L.IntVec);
      Reg C4 = B.iconst(4);
      B.callVoid("IntVec.init", {Inner, C4});
      B.callVoid("IntVec.add", {Inner, I});
      B.callVoid("RefVec.add", {RV, Inner});
    });
    Reg C7 = B.iconst(7);
    Reg Got7 = B.call(L.RefVecGet, {RV, C7});
    Reg Zero = B.iconst(0);
    Reg E = B.call(L.IntVecGet, {Got7, Zero});
    Reg Sz = B.call(L.RefVecSize, {RV});
    Reg Out = B.mul(E, Sz); // 7 * 10
    B.ret(Out);
  });
  EXPECT_EQ(Got, 70);
}

TEST(StdLibTest, StringsEqualityAndHash) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg C8 = B.iconst(8);
    Reg S1 = B.iconst(3);
    Reg A = B.call(L.StrMake, {C8, S1});
    Reg A2 = B.call(L.StrMake, {C8, S1}); // Same content, fresh object.
    Reg S2 = B.iconst(4);
    Reg C = B.call(L.StrMake, {C8, S2});
    Reg EqSame = B.call(L.StrEquals, {A, A2}); // 1
    Reg EqDiff = B.call(L.StrEquals, {A, C});  // 0
    Reg HA = B.call(L.StrHash, {A});
    Reg HA2 = B.call(L.StrHash, {A2});
    Reg HashEq = B.bin(BinOp::CmpEq, HA, HA2); // 1
    Reg T1 = B.mul(EqSame, B.iconst(100));
    Reg T2 = B.mul(EqDiff, B.iconst(10));
    Reg T3 = B.add(T1, T2);
    Reg Out = B.add(T3, HashEq); // 100 + 0 + 1
    B.ret(Out);
  });
  EXPECT_EQ(Got, 101);
}

TEST(StdLibTest, StringConcatCombines) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg C5 = B.iconst(5);
    Reg C3 = B.iconst(3);
    Reg S1 = B.iconst(1);
    Reg A = B.call(L.StrMake, {C5, S1});
    Reg C = B.call(L.StrMake, {C3, S1});
    Reg AB = B.call(L.StrConcat, {A, C});
    Reg Len = B.loadField(AB, L.Str, "len");
    B.ret(Len);
  });
  EXPECT_EQ(Got, 8);
}

TEST(StdLibTest, CachedHashMatchesRecomputed) {
  // The eclipse fix must not change hash values, only where they come
  // from.
  auto HashOf = [](bool Cached) {
    StdLibOptions Opts;
    Opts.CachedStrHash = Cached;
    return runStdLib(
        [](StdLib &L, IRBuilder &B) {
          Reg C12 = B.iconst(12);
          Reg S1 = B.iconst(9);
          Reg A = B.call(L.StrMake, {C12, S1});
          Reg H = B.call(L.StrHash, {A});
          B.ret(H);
        },
        Opts);
  };
  EXPECT_EQ(HashOf(false), HashOf(true));
}

TEST(StdLibTest, StrMapPutGetAndGrowth) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg Map = B.alloc(L.StrMap);
    Reg C4 = B.iconst(4); // Tiny: forces several rehashes for 20 keys.
    B.callVoid("StrMap.init", {Map, C4});
    Reg N = B.iconst(20);
    Reg C10 = B.iconst(10);
    emitCountedLoop(B, N, [&](Reg I) {
      Reg Key = B.call(L.StrMake, {C10, I});
      Reg Val = B.mul(I, I);
      B.callVoid("StrMap.put", {Map, Key, Val});
    });
    // Every key must come back with its value (fresh key objects).
    Reg Acc = B.iconst(0);
    emitCountedLoop(B, N, [&](Reg I) {
      Reg Key = B.call(L.StrMake, {C10, I});
      Reg V = B.call(L.StrMapGet, {Map, Key});
      B.binInto(Acc, BinOp::Add, Acc, V);
    });
    B.ret(Acc); // sum i^2, i<20 = 2470
  });
  EXPECT_EQ(Got, 2470);
}

TEST(StdLibTest, StrMapMissReturnsZero) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg Map = B.alloc(L.StrMap);
    Reg C8 = B.iconst(8);
    B.callVoid("StrMap.init", {Map, C8});
    Reg S1 = B.iconst(1);
    Reg K1 = B.call(L.StrMake, {C8, S1});
    Reg C7 = B.iconst(7);
    B.callVoid("StrMap.put", {Map, K1, C7});
    Reg S2 = B.iconst(2);
    Reg K2 = B.call(L.StrMake, {C8, S2});
    Reg Miss = B.call(L.StrMapGet, {Map, K2});
    Reg Hit = B.call(L.StrMapGet, {Map, K1});
    Reg Out = B.sub(Hit, Miss);
    B.ret(Out);
  });
  EXPECT_EQ(Got, 7);
}

TEST(StdLibTest, StrMapOverwritesExistingKey) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg Map = B.alloc(L.StrMap);
    Reg C8 = B.iconst(8);
    B.callVoid("StrMap.init", {Map, C8});
    Reg S1 = B.iconst(5);
    Reg K = B.call(L.StrMake, {C8, S1});
    Reg V1 = B.iconst(100);
    B.callVoid("StrMap.put", {Map, K, V1});
    Reg V2 = B.iconst(200);
    B.callVoid("StrMap.put", {Map, K, V2});
    Reg Out = B.call(L.StrMapGet, {Map, K});
    B.ret(Out);
  });
  EXPECT_EQ(Got, 200);
}

TEST(StdLibTest, MatrixSumAndClone) {
  int64_t Got = runStdLib([](StdLib &L, IRBuilder &B) {
    Reg N = B.iconst(4);
    Reg Seed = B.iconst(2);
    Reg Mx = B.call(L.MatrixMake, {N, Seed});
    Reg Cl = B.call(L.MatrixClone, {Mx});
    Reg S1 = B.call(L.MatrixSum, {Mx});
    Reg S2 = B.call(L.MatrixSum, {Cl});
    Reg Same = B.bin(BinOp::CmpEq, S1, S2);
    B.ret(Same);
  });
  EXPECT_EQ(Got, 1);
}

TEST(StdLibTest, MatrixTransposePreservesSum) {
  for (bool InPlace : {false, true}) {
    StdLibOptions Opts;
    Opts.InPlaceMatrixOps = InPlace;
    int64_t Got = runStdLib(
        [](StdLib &L, IRBuilder &B) {
          Reg N = B.iconst(5);
          Reg Seed = B.iconst(3);
          Reg Mx = B.call(L.MatrixMake, {N, Seed});
          Reg Before = B.call(L.MatrixSum, {Mx});
          Reg T = B.call(L.MatrixTranspose, {Mx});
          Reg After = B.call(L.MatrixSum, {T});
          Reg FB = B.un(UnOp::FBits, Before);
          Reg FA = B.un(UnOp::FBits, After);
          Reg Same = B.bin(BinOp::CmpEq, FB, FA);
          B.ret(Same);
        },
        Opts);
    EXPECT_EQ(Got, 1) << "InPlace=" << InPlace;
  }
}

TEST(StdLibTest, MatrixScaleScales) {
  for (bool InPlace : {false, true}) {
    StdLibOptions Opts;
    Opts.InPlaceMatrixOps = InPlace;
    int64_t Got = runStdLib(
        [](StdLib &L, IRBuilder &B) {
          Reg N = B.iconst(3);
          Reg Seed = B.iconst(1);
          Reg Mx = B.call(L.MatrixMake, {N, Seed});
          Reg Before = B.call(L.MatrixSum, {Mx});
          Reg Two = B.fconst(2.0);
          Reg Scaled = B.call(L.MatrixScale, {Mx, Two});
          Reg After = B.call(L.MatrixSum, {Scaled});
          Reg Double = B.mul(Before, Two);
          Reg Diff = B.sub(After, Double);
          Reg Eps = B.fconst(1e-9);
          Reg Ok = B.bin(BinOp::CmpLt, Diff, Eps);
          B.ret(Ok);
        },
        Opts);
    EXPECT_EQ(Got, 1) << "InPlace=" << InPlace;
  }
}

} // namespace
