//===- tests/runtime/RuntimeUnitTest.cpp - Heap, values, natives -----------===//

#include "ir/IRBuilder.h"
#include "runtime/Heap.h"
#include "runtime/Interpreter.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

TEST(ValueTest, KindsAndViews) {
  Value I = Value::makeInt(-7);
  EXPECT_EQ(I.asInt(), -7);
  EXPECT_DOUBLE_EQ(I.asFloat(), -7.0);
  EXPECT_FALSE(I.isRef());

  Value F = Value::makeFloat(2.5);
  EXPECT_EQ(F.asInt(), 2);
  EXPECT_DOUBLE_EQ(F.asFloat(), 2.5);

  Value R = Value::makeRef(12);
  EXPECT_TRUE(R.isRef());
  EXPECT_FALSE(R.isNullRef());
  EXPECT_TRUE(Value::null().isNullRef());

  Value Default;
  EXPECT_EQ(Default.Kind, ValueKind::Int);
  EXPECT_EQ(Default.asInt(), 0);
}

TEST(HeapTest, ObjectsAndArrays) {
  Heap H;
  EXPECT_EQ(H.numObjects(), 0u);
  ObjId O = H.allocObject(3, 4);
  EXPECT_NE(O, kNullObj);
  EXPECT_EQ(H.obj(O).Class, 3u);
  EXPECT_EQ(H.obj(O).Slots.size(), 4u);
  EXPECT_FALSE(H.obj(O).IsArray);
  EXPECT_EQ(H.obj(O).Tag, kNoTag);

  ObjId A = H.allocArray(TypeKind::Ref, 5);
  EXPECT_TRUE(H.obj(A).IsArray);
  EXPECT_EQ(H.obj(A).Slots.size(), 5u);
  // Ref arrays start with null elements; others with int zero.
  EXPECT_TRUE(H.obj(A).Slots[0].isNullRef());
  EXPECT_EQ(H.numObjects(), 2u);

  H.reset();
  EXPECT_EQ(H.numObjects(), 0u);
}

TEST(NativeRegistryTest, StandardNativesExist) {
  const NativeRegistry &R = NativeRegistry::standard();
  for (const char *Name : {"print", "sink", "input", "timestamp"}) {
    const NativeDecl *D = R.find(Name);
    ASSERT_NE(D, nullptr) << Name;
    EXPECT_EQ(D->Name, Name);
  }
  EXPECT_EQ(R.find("no.such"), nullptr);
  const NativeDecl *Sink = R.find("sink");
  EXPECT_TRUE(Sink->IsConsumer);
  EXPECT_FALSE(Sink->HasResult);
  const NativeDecl *Input = R.find("input");
  EXPECT_FALSE(Input->IsConsumer);
  EXPECT_TRUE(Input->HasResult);
}

TEST(NativeRegistryTest, CustomRegistryOverrides) {
  NativeRegistry R;
  R.add({"answer",
         [](NativeContext &, const Value *, size_t) {
           return Value::makeInt(42);
         },
         /*IsConsumer=*/false, /*HasResult=*/true});

  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg V = B.ncall("answer", {});
  B.ret(V);
  B.endFunction();
  M.finalize();

  NoopProfiler P;
  RunConfig Cfg;
  Cfg.Natives = &R;
  RunResult Res = runModule(M, P, Cfg);
  EXPECT_EQ(Res.Status, RunStatus::Finished);
  EXPECT_EQ(Res.ReturnValue.asInt(), 42);
}

TEST(InterpreterTrapTest, VirtualCallOnArrayTraps) {
  Module M;
  ClassDecl *A = M.addClass("A");
  IRBuilder B(M);
  B.beginMethod(A->getId(), "m", 1);
  B.ret();
  B.endFunction();
  B.beginFunction("main", 0);
  Reg Len = B.iconst(2);
  Reg Arr = B.allocArray(TypeKind::Int, Len);
  B.vcallVoid("m", {Arr});
  B.ret();
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::BadVirtualCall);
}

TEST(InterpreterTrapTest, MissingMethodTraps) {
  Module M;
  ClassDecl *A = M.addClass("A");
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  B.vcallVoid("nothere", {O});
  B.ret();
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::BadVirtualCall);
}

TEST(InterpreterTrapTest, NegativeArrayLengthTraps) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Len = B.iconst(-3);
  B.allocArray(TypeKind::Int, Len);
  B.ret();
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);
}

TEST(InterpreterSemanticsTest, ShiftMasksAndBitwise) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(1);
  Reg S65 = B.iconst(65); // Shift counts are masked mod 64.
  Reg L = B.bin(BinOp::Shl, A, S65);
  Reg X = B.iconst(0b1100);
  Reg Y = B.iconst(0b1010);
  Reg And = B.bin(BinOp::And, X, Y);
  Reg Or = B.bin(BinOp::Or, X, Y);
  Reg Xor = B.bin(BinOp::Xor, X, Y);
  Reg T1 = B.add(L, And);
  Reg T2 = B.add(Or, Xor);
  Reg T3 = B.mul(T1, T2);
  B.ret(T3);
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  // L = 1<<1 = 2, And = 8, Or = 14, Xor = 6 => (2+8)*(14+6) = 200.
  EXPECT_EQ(R.ReturnValue.asInt(), 200);
}

TEST(InterpreterSemanticsTest, FloatRemainder) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.fconst(7.5);
  Reg C = B.fconst(2.0);
  Reg R = B.bin(BinOp::Rem, A, C);
  B.ret(R);
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult Res = runModule(M, P);
  EXPECT_DOUBLE_EQ(Res.ReturnValue.asFloat(), 1.5);
}

TEST(InterpreterSemanticsTest, PrintWritesToConfiguredStream) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg V = B.iconst(123);
  B.ncallVoid("print", {V});
  Reg F = B.fconst(1.5);
  B.ncallVoid("print", {F});
  B.ret();
  B.endFunction();
  M.finalize();
  StringOutStream OS;
  RunConfig Cfg;
  Cfg.PrintStream = &OS;
  NoopProfiler P;
  RunResult R = runModule(M, P, Cfg);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(OS.str(), "123\n1.5\n");
  EXPECT_NE(R.SinkHash, 0u);
}

TEST(InterpreterSemanticsTest, RefEqualityComparesIdentity) {
  Module M;
  ClassDecl *A = M.addClass("A");
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O1 = B.alloc(A->getId());
  Reg O2 = B.alloc(A->getId());
  Reg O3 = B.move(O1);
  Reg E12 = B.bin(BinOp::CmpEq, O1, O2); // 0: different objects
  Reg E13 = B.bin(BinOp::CmpEq, O1, O3); // 1: same object
  Reg N = B.nullconst();
  Reg EN = B.bin(BinOp::CmpNe, O1, N); // 1: non-null
  Reg S1 = B.add(E12, E13);
  Reg S2 = B.add(S1, EN);
  B.ret(S2);
  B.endFunction();
  M.finalize();
  NoopProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.ReturnValue.asInt(), 2);
}

} // namespace
