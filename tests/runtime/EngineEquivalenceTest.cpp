//===- tests/runtime/EngineEquivalenceTest.cpp - interp vs threaded -------===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
// The threaded engine's contract (runtime/ThreadedEngine.h): byte-identical
// observable behavior to the reference interpreter — same profiler hook
// stream, same trap and budget ordering, same run facts — under every
// pipeline the drivers compose. These tests hold both backends to it across
// all DaCapo analogues with every client enabled, through record -> replay,
// across the sharded driver's thread/shard matrix, and on the trap/budget
// edge cases where an off-by-one in the dispatch loop would first show.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "profiling/GraphIO.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/ParallelDriver.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace lud;

namespace {

uint64_t valueBits(const Value &V) {
  uint64_t Bits = 0;
  if (V.Kind == ValueKind::Float)
    std::memcpy(&Bits, &V.F, sizeof(Bits));
  else
    Bits = uint64_t(V.Kind == ValueKind::Ref ? V.R : uint64_t(V.I));
  return Bits;
}

void expectSameRun(const RunResult &A, const RunResult &B,
                   const std::string &What) {
  EXPECT_EQ(int(A.Status), int(B.Status)) << What;
  EXPECT_EQ(int(A.Trap), int(B.Trap)) << What;
  EXPECT_EQ(A.TrapInstr, B.TrapInstr) << What;
  EXPECT_EQ(A.TrapReg, B.TrapReg) << What;
  EXPECT_EQ(A.ExecutedInstrs, B.ExecutedInstrs) << What;
  EXPECT_EQ(A.Calls, B.Calls) << What;
  EXPECT_EQ(A.PeakFrameDepth, B.PeakFrameDepth) << What;
  EXPECT_EQ(A.SinkHash, B.SinkHash) << What;
  EXPECT_EQ(A.ObjectsAllocated, B.ObjectsAllocated) << What;
  EXPECT_EQ(int(A.ReturnValue.Kind), int(B.ReturnValue.Kind)) << What;
  EXPECT_EQ(valueBits(A.ReturnValue), valueBits(B.ReturnValue)) << What;
}

/// Everything a full-client session produces that the other engine must
/// reproduce byte for byte.
struct Snap {
  RunResult Run;
  std::string Graph;
  std::string Reports;
};

Snap snapshot(const ProfileSession &S, const Module &M, const RunResult &R) {
  Snap Out;
  Out.Run = R;
  StringOutStream G;
  if (S.slicing())
    writeGraph(S.slicing()->graph(), G);
  Out.Graph = G.str();
  StringOutStream Rep;
  S.printClientReports(M, Rep);
  Out.Reports = Rep.str();
  return Out;
}

SessionConfig fullClientConfig(EngineKind E) {
  SessionConfig SC;
  SC.Engine = E;
  SC.Clients = ClientSet::all();
  return SC;
}

Snap liveSnap(const Module &M, EngineKind E) {
  ProfileSession S(fullClientConfig(E));
  TimedRun R = S.run(M);
  return snapshot(S, M, R.Run);
}

void expectSameSnap(const Snap &A, const Snap &B, const std::string &What) {
  expectSameRun(A.Run, B.Run, What);
  EXPECT_EQ(A.Graph, B.Graph) << What << ": Gcost serialization differs";
  EXPECT_EQ(A.Reports, B.Reports) << What << ": client reports differ";
}

/// Uninstrumented run on one engine; returns the raw RunResult.
RunResult bareRun(const Module &M, EngineKind E, RunConfig Cfg = {}) {
  ComposedProfiler<> P;
  Heap H;
  return runWithEngine(E, M, H, P, Cfg);
}

// Every DaCapo analogue, every client enabled: Gcost bytes, client report
// bytes and all run facts must agree between the engines.
TEST(EngineEquivalence, DaCapoWorkloadsByteIdentical) {
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, 80);
    Snap I = liveSnap(*W.M, EngineKind::Interp);
    Snap T = liveSnap(*W.M, EngineKind::Threaded);
    EXPECT_FALSE(I.Graph.empty()) << Name;
    expectSameSnap(I, T, Name);
  }
}

// A trace recorded on the threaded engine replays into the same profiler
// state as a live interpreted run (and vice versa): the hook streams are
// interchangeable, not merely equivalent in aggregate.
TEST(EngineEquivalence, RecordOnOneEngineReplayMatchesOther) {
  Workload W = buildWorkload("chart", 120);
  for (EngineKind RecordOn : {EngineKind::Interp, EngineKind::Threaded}) {
    EngineKind Other = RecordOn == EngineKind::Interp ? EngineKind::Threaded
                                                      : EngineKind::Interp;
    StringOutStream Sink;
    SessionConfig RC = fullClientConfig(RecordOn);
    RC.RecordSink = &Sink;
    ProfileSession Rec(RC);
    TimedRun Live = Rec.run(*W.M);
    ASSERT_TRUE(Rec.recordError().empty());
    Snap LiveSnap = snapshot(Rec, *W.M, Live.Run);

    ProfileSession Rep(fullClientConfig(Other));
    ReplayRun RR = Rep.replay(*W.M, Sink.str());
    ASSERT_TRUE(RR.Ok) << RR.Error;
    Snap Replayed = snapshot(Rep, *W.M, Live.Run);
    EXPECT_EQ(LiveSnap.Graph, Replayed.Graph)
        << "recorded on " << engineKindName(RecordOn);
    EXPECT_EQ(LiveSnap.Reports, Replayed.Reports)
        << "recorded on " << engineKindName(RecordOn);
  }
}

// The sharded driver's fold invariant holds on the threaded engine at every
// thread/shard combination, against a sequential interpreted reference.
TEST(EngineEquivalence, ShardedMatrixMatchesSequentialInterp) {
  Workload W = buildWorkload("fop", 100);
  for (unsigned Shards : {1u, 8u}) {
    ProfileSession Seq(fullClientConfig(EngineKind::Interp));
    TimedRun Last{};
    for (unsigned I = 0; I != Shards; ++I)
      Last = Seq.run(*W.M);
    Snap Ref = snapshot(Seq, *W.M, Last.Run);
    for (unsigned Threads : {1u, 4u}) {
      ShardedSession Sh = runShardedSession(
          *W.M, Shards, fullClientConfig(EngineKind::Threaded), Threads);
      ASSERT_TRUE(Sh.Error.empty()) << Sh.Error;
      ASSERT_NE(Sh.Session, nullptr);
      std::string What = "shards=" + std::to_string(Shards) +
                         " threads=" + std::to_string(Threads);
      EXPECT_EQ(Sh.TotalInstrs, uint64_t(Shards) * Ref.Run.ExecutedInstrs)
          << What;
      Snap Got = snapshot(*Sh.Session, *W.M, Sh.Run);
      expectSameSnap(Ref, Got, What);
    }
  }
}

// Trap parity: the trapping instruction is counted, the trap identity and
// faulting register match, and everything executed before it agrees.
TEST(EngineEquivalence, TrapFactsMatch) {
  struct Case {
    const char *Name;
    void (*Build)(IRBuilder &B);
  };
  const Case Cases[] = {
      {"div-by-zero",
       [](IRBuilder &B) {
         Reg L = B.iconst(7), Z = B.iconst(0);
         B.ret(B.bin(BinOp::Div, L, Z));
       }},
      {"rem-by-zero",
       [](IRBuilder &B) {
         Reg L = B.iconst(7), Z = B.iconst(0);
         B.ret(B.bin(BinOp::Rem, L, Z));
       }},
      {"null-load",
       [](IRBuilder &B) {
         Reg N = B.nullconst();
         B.ret(B.loadField(N, ClassId(0), "v"));
       }},
      {"oob-elem",
       [](IRBuilder &B) {
         Reg Len = B.iconst(2), Idx = B.iconst(5);
         Reg A = B.allocArray(TypeKind::Int, Len);
         B.ret(B.loadElem(A, Idx));
       }},
      {"neg-array-len",
       [](IRBuilder &B) {
         Reg Len = B.iconst(-3);
         Reg A = B.allocArray(TypeKind::Int, Len);
         B.ret(B.arrayLen(A));
       }},
      {"stack-overflow",
       [](IRBuilder &B) {
         // main calls itself forever.
         B.callVoid("main", {});
         B.ret();
       }},
  };
  for (const Case &C : Cases) {
    Module M;
    IRBuilder B(M);
    ClassDecl *Box = M.addClass("Box");
    Box->addField("v", Type::makeInt());
    B.beginFunction("main", 0);
    C.Build(B);
    B.endFunction();
    M.finalize();
    RunResult I = bareRun(M, EngineKind::Interp);
    RunResult T = bareRun(M, EngineKind::Threaded);
    EXPECT_EQ(int(I.Status), int(RunStatus::Trapped)) << C.Name;
    expectSameRun(I, T, C.Name);
  }
}

// Budget parity at every boundary around a loop's instruction count:
// BudgetExceeded fires before instruction N+1 on both engines, with
// identical executed counts.
TEST(EngineEquivalence, BudgetBoundariesMatch) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg I = B.iconst(0), One = B.iconst(1), Lim = B.iconst(10);
  BasicBlock *Head = B.newBlock(), *Body = B.newBlock(),
             *Exit = B.newBlock();
  B.br(Head);
  B.setBlock(Head);
  B.condBr(CmpOp::Lt, I, Lim, Body, Exit);
  B.setBlock(Body);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Head);
  B.setBlock(Exit);
  B.ret(I);
  B.endFunction();
  M.finalize();

  RunResult Full = bareRun(M, EngineKind::Interp);
  ASSERT_EQ(int(Full.Status), int(RunStatus::Finished));
  for (uint64_t Budget :
       {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(7),
        Full.ExecutedInstrs - 1, Full.ExecutedInstrs,
        Full.ExecutedInstrs + 1}) {
    RunConfig Cfg;
    Cfg.MaxInstructions = Budget;
    RunResult I = bareRun(M, EngineKind::Interp, Cfg);
    RunResult T = bareRun(M, EngineKind::Threaded, Cfg);
    expectSameRun(I, T, "budget=" + std::to_string(Budget));
    if (Budget < Full.ExecutedInstrs) {
      EXPECT_EQ(int(T.Status), int(RunStatus::BudgetExceeded));
      EXPECT_EQ(T.ExecutedInstrs, Budget);
    }
  }
}

// Float semantics ride the same promotion rules: mixed int/float
// arithmetic, comparisons and conversions produce bit-identical results.
TEST(EngineEquivalence, FloatPromotionMatches) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg F = B.fconst(2.5), I = B.iconst(3);
  Reg S = B.bin(BinOp::Add, F, I);        // float + int -> float
  Reg P = B.bin(BinOp::Mul, S, F);        // float * float
  Reg C = B.bin(BinOp::CmpLt, I, P);      // int < float -> promoted cmp
  Reg D = B.bin(BinOp::Div, P, F);        // float division
  Reg R1 = B.bin(BinOp::Rem, P, F);       // fmod path
  Reg Conv = B.un(UnOp::F2I, D);          // back to int
  Reg Bits = B.un(UnOp::FBits, R1);       // raw bits
  Reg Acc = B.bin(BinOp::Add, Conv, Bits);
  Reg Acc2 = B.bin(BinOp::Add, Acc, C);
  B.ret(Acc2);
  B.endFunction();
  M.finalize();
  RunResult I1 = bareRun(M, EngineKind::Interp);
  RunResult T1 = bareRun(M, EngineKind::Threaded);
  EXPECT_EQ(int(I1.Status), int(RunStatus::Finished));
  expectSameRun(I1, T1, "float-promotion");
}

// Repeated run() calls on one engine instance accumulate counters exactly
// like the interpreter's (the sequential-reuse semantics the sharded fold
// depends on).
TEST(EngineEquivalence, RepeatedRunsAccumulate) {
  Workload W = buildWorkload("batik", 60);
  ComposedProfiler<> PI, PT;
  Heap HI, HT;
  Interpreter<ComposedProfiler<>> Interp(*W.M, HI, PI);
  ThreadedEngine<ComposedProfiler<>> Threaded(*W.M, HT, PT);
  for (int K = 0; K != 3; ++K) {
    RunResult A = Interp.run();
    RunResult B = Threaded.run();
    expectSameRun(A, B, "iteration " + std::to_string(K));
  }
}

} // namespace
