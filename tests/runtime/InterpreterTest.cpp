//===- tests/runtime/InterpreterTest.cpp - Execution semantics -------------===//

#include "runtime/Interpreter.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

/// Runs the module with a NoopProfiler and returns the result.
RunResult exec(const Module &M, RunConfig Cfg = {}) {
  NoopProfiler P;
  return runModule(M, P, Cfg);
}

TEST(InterpreterTest, ArithmeticAndReturn) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(40);
  Reg C = B.iconst(2);
  Reg S = B.add(A, C);
  B.ret(S);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.ReturnValue.asInt(), 42);
  EXPECT_EQ(R.ExecutedInstrs, 4u);
}

TEST(InterpreterTest, FloatPromotion) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(3);
  Reg C = B.fconst(0.5);
  Reg S = B.mul(A, C);
  B.ret(S);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.Kind, ValueKind::Float);
  EXPECT_DOUBLE_EQ(R.ReturnValue.F, 1.5);
}

TEST(InterpreterTest, FloatBitsRoundTrip) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg F = B.fconst(3.25);
  Reg Bits = B.un(UnOp::FBits, F);
  Reg Back = B.un(UnOp::BitsF, Bits);
  B.ret(Back);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.Kind, ValueKind::Float);
  EXPECT_DOUBLE_EQ(R.ReturnValue.F, 3.25);
}

TEST(InterpreterTest, LoopComputesSum) {
  // sum = 0; for (i = 0; i < 10; i++) sum += i;  => 45
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Sum = B.iconst(0);
  Reg I = B.iconst(0);
  Reg Ten = B.iconst(10);
  Reg One = B.iconst(1);
  BasicBlock *Header = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(Header);
  B.setBlock(Header);
  B.condBr(CmpOp::Lt, I, Ten, Body, Exit);
  B.setBlock(Body);
  B.binInto(Sum, BinOp::Add, Sum, I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Header);
  B.setBlock(Exit);
  B.ret(Sum);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_EQ(R.ReturnValue.asInt(), 45);
}

TEST(InterpreterTest, FieldsAndObjects) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("next", Type::makeRef(A->getId()));
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O1 = B.alloc(A->getId());
  Reg O2 = B.alloc(A->getId());
  Reg V = B.iconst(7);
  B.storeField(O1, A->getId(), "f", V);
  B.storeField(O1, A->getId(), "next", O2);
  Reg N = B.loadField(O1, A->getId(), "next");
  Reg W = B.loadField(O1, A->getId(), "f");
  B.storeField(N, A->getId(), "f", W);
  Reg Out = B.loadField(O2, A->getId(), "f");
  B.ret(Out);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.asInt(), 7);
  EXPECT_EQ(R.ObjectsAllocated, 2u);
}

TEST(InterpreterTest, ArraysAndLength) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Len = B.iconst(5);
  Reg Arr = B.allocArray(TypeKind::Int, Len);
  Reg Idx = B.iconst(3);
  Reg V = B.iconst(99);
  B.storeElem(Arr, Idx, V);
  Reg L = B.arrayLen(Arr);
  Reg E = B.loadElem(Arr, Idx);
  Reg S = B.add(L, E);
  B.ret(S);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.asInt(), 104);
}

TEST(InterpreterTest, CallsAndVirtualDispatch) {
  Module M;
  IRBuilder B(M);
  ClassDecl *Base = M.addClass("Base");
  ClassDecl *Derived = M.addClass("Derived", Base->getId());

  B.beginMethod(Base->getId(), "value", 1);
  B.ret(B.iconst(10));
  B.endFunction();

  B.beginMethod(Derived->getId(), "value", 1);
  B.ret(B.iconst(20));
  B.endFunction();

  B.beginFunction("main", 0);
  Reg O1 = B.alloc(Base->getId());
  Reg O2 = B.alloc(Derived->getId());
  Reg V1 = B.vcall("value", {O1});
  Reg V2 = B.vcall("value", {O2});
  Reg S = B.add(V1, V2);
  B.ret(S);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.asInt(), 30);
}

TEST(InterpreterTest, RecursionComputesFactorial) {
  Module M;
  IRBuilder B(M);
  // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
  Function *F = B.beginFunction("fact", 1);
  (void)F;
  Reg One = B.iconst(1);
  BasicBlock *BaseCase = B.newBlock();
  BasicBlock *Recurse = B.newBlock();
  B.condBr(CmpOp::Le, 0, One, BaseCase, Recurse);
  B.setBlock(BaseCase);
  B.ret(One);
  B.setBlock(Recurse);
  Reg OneB = B.iconst(1);
  Reg NM1 = B.sub(0, OneB);
  Reg Sub = B.call("fact", {NM1});
  Reg Prod = B.mul(0, Sub);
  B.ret(Prod);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg N = B.iconst(6);
  Reg R = B.call("fact", {N});
  B.ret(R);
  B.endFunction();
  M.finalize();
  RunResult Res = exec(M);
  EXPECT_EQ(Res.ReturnValue.asInt(), 720);
}

TEST(InterpreterTest, NullDerefTraps) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg N = B.nullconst();
  Reg V = B.loadField(N, A->getId(), "f");
  B.ret(V);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::NullDeref);
  EXPECT_EQ(R.TrapReg, 0);
  // The faulting instruction is the load (instruction id 1).
  EXPECT_EQ(R.TrapInstr, 1u);
}

TEST(InterpreterTest, OutOfBoundsTraps) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Len = B.iconst(2);
  Reg Arr = B.allocArray(TypeKind::Int, Len);
  Reg Idx = B.iconst(5);
  Reg V = B.loadElem(Arr, Idx);
  B.ret(V);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::OutOfBounds);
}

TEST(InterpreterTest, DivByZeroTraps) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(1);
  Reg Z = B.iconst(0);
  Reg D = B.bin(BinOp::Div, A, Z);
  B.ret(D);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::DivByZero);
}

TEST(InterpreterTest, BudgetStopsRunaways) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  BasicBlock *Loop = B.newBlock();
  B.br(Loop);
  B.setBlock(Loop);
  B.append(new BrInst(Loop->getId()));
  B.endFunction();
  M.finalize();
  RunConfig Cfg;
  Cfg.MaxInstructions = 1000;
  RunResult R = exec(M, Cfg);
  EXPECT_EQ(R.Status, RunStatus::BudgetExceeded);
  EXPECT_EQ(R.ExecutedInstrs, 1000u);
}

TEST(InterpreterTest, StackOverflowTraps) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("spin", 0);
  B.callVoid("spin", {});
  B.ret();
  B.endFunction();
  B.beginFunction("main", 0);
  B.callVoid("spin", {});
  B.ret();
  B.endFunction();
  M.finalize();
  RunConfig Cfg;
  Cfg.MaxFrames = 64;
  RunResult R = exec(M, Cfg);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::StackOverflow);
}

TEST(InterpreterTest, GlobalsStoreAndLoad) {
  Module M;
  GlobalId G = M.addGlobal("counter", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg V = B.iconst(11);
  B.storeStatic(G, V);
  Reg W = B.loadStatic(G);
  Reg S = B.add(W, W);
  B.ret(S);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.ReturnValue.asInt(), 22);
}

TEST(InterpreterTest, NativeSinkAffectsHash) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg V = B.iconst(123);
  B.ncallVoid("sink", {V});
  B.ret();
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_NE(R.SinkHash, 0u);
}

TEST(InterpreterTest, NativeInputReadsTape) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.ncall("input", {});
  Reg C = B.ncall("input", {});
  Reg S = B.add(A, C);
  B.ret(S);
  B.endFunction();
  M.finalize();
  std::vector<int64_t> Tape = {5, 7};
  RunConfig Cfg;
  Cfg.Input = &Tape;
  RunResult R = exec(M, Cfg);
  EXPECT_EQ(R.ReturnValue.asInt(), 12);
}

TEST(InterpreterTest, UnknownNativeTraps) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  B.ncallVoid("no.such.native", {});
  B.ret();
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  EXPECT_EQ(R.Trap, TrapKind::UnknownNative);
}

TEST(InterpreterTest, PhaseMarkerIsExecutable) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg P = B.iconst(1);
  B.ncallVoid("phase", {P});
  B.ret(P);
  B.endFunction();
  M.finalize();
  RunResult R = exec(M);
  EXPECT_EQ(R.Status, RunStatus::Finished);
}

TEST(InterpreterTest, MethodDirectCallPassesReceiver) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginMethod(A->getId(), "get", 1);
  Reg V = B.loadField(0, A->getId(), "f");
  B.ret(V);
  B.endFunction();
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(9);
  B.storeField(O, A->getId(), "f", C);
  Reg R = B.call("A.get", {O});
  B.ret(R);
  B.endFunction();
  M.finalize();
  RunResult Res = exec(M);
  EXPECT_EQ(Res.ReturnValue.asInt(), 9);
}

} // namespace
