//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//

#ifndef LUD_TESTS_TESTUTIL_H
#define LUD_TESTS_TESTUTIL_H

#include "profiling/FrozenGraph.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/Interpreter.h"
#include "workloads/Driver.h"

#include <vector>

namespace lud {
namespace test {

/// Uninstrumented run through the session lifecycle — the spelling of the
/// retired runBaseline() free function.
inline TimedRun baselineRun(const Module &M, RunConfig RC = {}) {
  ProfileSession S(SessionConfig::baseline(RC));
  return S.run(M);
}

/// Substrate-only profiled run through the session lifecycle — the
/// spelling of the retired runProfiled() free function.
inline ProfiledRun profiledRun(const Module &M, SlicingConfig SCfg = {},
                               RunConfig RC = {}) {
  ProfileSession S(SessionConfig::profiled(SCfg, RC));
  TimedRun T = S.run(M);
  ProfiledRun Out;
  Out.Run = T.Run;
  Out.Seconds = T.Seconds;
  Out.Prof = S.takeSlicing();
  return Out;
}

/// Runs \p M under a SlicingProfiler and returns the profiler (plus the run
/// result through \p ResOut when non-null).
inline SlicingProfiler profileRun(const Module &M, SlicingConfig Cfg = {},
                                  RunResult *ResOut = nullptr,
                                  RunConfig RCfg = {}) {
  SlicingProfiler P(Cfg);
  RunResult R = runModule(M, P, RCfg);
  if (ResOut)
    *ResOut = R;
  return P;
}

/// All graph nodes whose instruction is \p I.
inline std::vector<NodeId> nodesFor(const DepGraph &G, InstrId I) {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N)
    if (G.node(N).Instr == I)
      Out.push_back(N);
  return Out;
}

inline std::vector<NodeId> nodesFor(const FrozenGraph &G, InstrId I) {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N)
    if (G.instr(N) == I)
      Out.push_back(N);
  return Out;
}

/// The unique node for instruction \p I; fails the test context if the
/// instruction has zero or multiple nodes.
inline NodeId soleNodeFor(const DepGraph &G, InstrId I) {
  std::vector<NodeId> All = nodesFor(G, I);
  return All.size() == 1 ? All[0] : kNoNode;
}

inline NodeId soleNodeFor(const FrozenGraph &G, InstrId I) {
  std::vector<NodeId> All = nodesFor(G, I);
  return All.size() == 1 ? All[0] : kNoNode;
}

/// True if the graph has a def-use edge From -> To.
inline bool hasEdge(const DepGraph &G, NodeId From, NodeId To) {
  for (NodeId N : G.node(From).Out)
    if (N == To)
      return true;
  return false;
}

} // namespace test
} // namespace lud

#endif // LUD_TESTS_TESTUTIL_H
