//===- tests/analysis/PassPipelineTest.cpp - Rewrite-pass pipeline ---------===//

#include "analysis/PassManager.h"

#include "analysis/Optimizer.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "obs/Metrics.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

RunResult engineRun(const Module &M, EngineKind E) {
  SessionConfig SC = SessionConfig::baseline();
  SC.Engine = E;
  ProfileSession S(SC);
  return S.run(M).Run;
}

opt::PipelineResult runPipeline(const Module &M,
                                std::vector<std::string> Passes = {}) {
  opt::PipelineOptions PO;
  PO.Engine = EngineKind::Interp;
  PO.Passes = std::move(Passes);
  opt::PassManager PM(std::move(PO));
  return PM.run(M);
}

const opt::PassStats *statsFor(const opt::PipelineResult &R,
                               const std::string &Pass) {
  for (const auto &[Name, S] : R.PerPass)
    if (Name == Pass)
      return &S;
  return nullptr;
}

/// Expects the rewritten module to reproduce the original's observables on
/// both engines — the contract every committed rewrite promises.
void expectPreserved(const Module &Orig, const opt::PipelineResult &R,
                     const std::string &Ctx) {
  if (!R.Changed)
    return;
  ASSERT_NE(R.M, nullptr) << Ctx;
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*R.M, Errors)) << Ctx;
  for (const std::string &E : Errors)
    ADD_FAILURE() << Ctx << ": " << E;
  for (EngineKind E : {EngineKind::Interp, EngineKind::Threaded}) {
    RunResult A = engineRun(Orig, E);
    RunResult B = engineRun(*R.M, E);
    EXPECT_EQ(A.Status, B.Status) << Ctx;
    EXPECT_EQ(A.SinkHash, B.SinkHash) << Ctx;
    EXPECT_EQ(A.ReturnValue.asInt(), B.ReturnValue.asInt()) << Ctx;
  }
}

/// A lookup kernel in the exact shape map-to-array matches: an array built
/// once in the entry block, then an outer loop of linear lower-bound scans.
/// \p Sorted selects sorted (rewrite-safe) or shuffled (rewrite-unsafe)
/// contents.
std::unique_ptr<Module> buildScanKernel(bool Sorted) {
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);
  B.beginFunction("main", 0);
  Reg Sz = B.iconst(32);
  Reg A = B.allocArray(TypeKind::Int, Sz);
  Reg One = B.iconst(1);
  Reg N = B.iconst(64);
  Reg Mask = B.iconst(63);
  Reg Step = B.iconst(7);
  for (int J = 0; J != 32; ++J) {
    Reg Jr = B.iconst(J);
    Reg Vr = B.iconst(Sorted ? 2 * J : (11 * J) & 63);
    B.storeElem(A, Jr, Vr);
  }
  Reg I = B.iconst(0);
  BasicBlock *OH = B.newBlock(); // outer header
  BasicBlock *PRE = B.newBlock(); // scan preheader
  BasicBlock *SH = B.newBlock(); // scan header
  BasicBlock *SB = B.newBlock(); // probe
  BasicBlock *ST = B.newBlock(); // step
  BasicBlock *SX = B.newBlock(); // scan exit
  BasicBlock *OX = B.newBlock(); // outer exit
  B.br(OH);
  B.setBlock(OH);
  B.condBr(CmpOp::Lt, I, N, PRE, OX);
  B.setBlock(PRE);
  Reg T = B.mul(I, Step);
  Reg Key = B.bin(BinOp::And, T, Mask);
  Reg Pos = B.iconst(0);
  B.br(SH);
  B.setBlock(SH);
  B.condBr(CmpOp::Lt, Pos, Sz, SB, SX);
  B.setBlock(SB);
  Reg At = B.loadElem(A, Pos);
  B.condBr(CmpOp::Lt, At, Key, ST, SX);
  B.setBlock(ST);
  B.binInto(Pos, BinOp::Add, Pos, One);
  B.br(SH);
  B.setBlock(SX);
  B.ncallVoid("sink", {Pos});
  B.binInto(I, BinOp::Add, I, One);
  B.br(OH);
  B.setBlock(OX);
  B.ret(I);
  B.endFunction();
  M->finalize();
  return M;
}

TEST(PassPipelineTest, DeadStorePassMatchesLegacyOptimizer) {
  Workload W = buildWorkload("chart", 100);
  ProfiledRun P = profiledRun(*W.M);
  DeadValueAnalysis DV =
      computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
  OptimizeResult Legacy = removeProfiledDeadCode(*W.M, P.Prof->graph(), DV);

  opt::PipelineResult R = runPipeline(*W.M, {"dead-stores"});
  ASSERT_TRUE(R.Changed);
  EXPECT_EQ(R.Stats.RemovedStores, Legacy.Stats.RemovedStores);
  EXPECT_EQ(R.Stats.RemovedPure, Legacy.Stats.RemovedPure);
  expectPreserved(*W.M, R, "chart/dead-stores");
  EXPECT_LT(R.InstrsAfter, R.InstrsBefore);
}

TEST(PassPipelineTest, MapToArrayRewritesSortedScan) {
  std::unique_ptr<Module> M = buildScanKernel(/*Sorted=*/true);
  opt::PipelineResult R = runPipeline(*M, {"map-to-array"});
  const opt::PassStats *S = statsFor(R, "map-to-array");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Applied, 1u);
  EXPECT_EQ(S->RolledBack, 0u);
  ASSERT_TRUE(R.Changed);
  EXPECT_NE(R.M->findFunction("lud.lowerBound"), kNoFunc);
  expectPreserved(*M, R, "sorted-scan/map-to-array");
  // Binary search beats the linear scan on the profiled input.
  EXPECT_LT(R.InstrsAfter, R.InstrsBefore);
  ASSERT_FALSE(R.Outcomes.empty());
  EXPECT_NE(R.Outcomes.front().Rationale.find("build-once-read-many"),
            std::string::npos);
}

TEST(PassPipelineTest, MapToArrayRollsBackUnsortedScan) {
  // Same shape, shuffled contents: the evidence gate still fires (the
  // counters cannot see sortedness), but differential validation catches
  // the changed sink stream and rolls the candidate back.
  std::unique_ptr<Module> M = buildScanKernel(/*Sorted=*/false);
  opt::PipelineResult R = runPipeline(*M, {"map-to-array"});
  const opt::PassStats *S = statsFor(R, "map-to-array");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Applied, 0u);
  EXPECT_EQ(S->RolledBack, 1u);
  EXPECT_FALSE(R.Changed);
  ASSERT_FALSE(R.Outcomes.empty());
  EXPECT_FALSE(R.Outcomes.front().Applied);
  EXPECT_FALSE(R.Outcomes.front().Reason.empty());
}

TEST(PassPipelineTest, ClonePerOpHoistsThenUpdatesInPlace) {
  Workload W = buildWorkload("sunflow", 200);
  opt::PipelineResult R = runPipeline(*W.M, {"clone-per-op"});
  const opt::PassStats *S = statsFor(R, "clone-per-op");
  ASSERT_NE(S, nullptr);
  // The designed cascade: hoist the loop-invariant matrix chain first,
  // then specialize the clone-then-update callee for the cooled-down site.
  EXPECT_EQ(S->Applied, 2u);
  bool SawHoist = false, SawInPlace = false;
  for (const opt::PassOutcome &O : R.Outcomes) {
    if (O.Applied && O.Target.find("hoist su_render") != std::string::npos)
      SawHoist = true;
    if (O.Applied && O.Target.find("inplace") != std::string::npos &&
        O.Target.find("Matrix.scale") != std::string::npos)
      SawInPlace = true;
  }
  EXPECT_TRUE(SawHoist);
  EXPECT_TRUE(SawInPlace);
  ASSERT_TRUE(R.Changed);
  EXPECT_NE(R.M->findFunction("Matrix.scale_inplace"), kNoFunc);
  expectPreserved(*W.M, R, "sunflow/clone-per-op");
  EXPECT_LT(R.AllocsAfter, R.AllocsBefore);
  EXPECT_LT(R.InstrsAfter, R.InstrsBefore);
}

TEST(PassPipelineTest, OnceReadMemoRemovalFeedsFinalSweep) {
  Workload W = buildWorkload("sunflow", 200);
  opt::PipelineResult R =
      runPipeline(*W.M, {"once-read-memo", "dead-stores-final"});
  const opt::PassStats *Memo = statsFor(R, "once-read-memo");
  const opt::PassStats *Sweep = statsFor(R, "dead-stores-final");
  ASSERT_NE(Memo, nullptr);
  ASSERT_NE(Sweep, nullptr);
  EXPECT_EQ(Memo->Applied, 1u);
  // The stranded memo table is the final sweep's food.
  EXPECT_GE(Sweep->Applied, 1u);
  EXPECT_GT(Sweep->RemovedStores, 0u);
  expectPreserved(*W.M, R, "sunflow/once-read-memo");
  EXPECT_LT(R.InstrsAfter, R.InstrsBefore);
}

TEST(PassPipelineTest, ReportRendersPassStatsAndRationales) {
  Workload W = buildWorkload("sunflow", 200);
  opt::PipelineResult R = runPipeline(*W.M);
  StringOutStream OS;
  opt::renderOptimizeReport(R, OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("=== Optimizer ==="), std::string::npos);
  EXPECT_NE(Text.find("pass clone-per-op"), std::string::npos);
  EXPECT_NE(Text.find("[applied]"), std::string::npos);
  EXPECT_NE(Text.find("evidence"), std::string::npos);
}

TEST(PassPipelineTest, StatsPublishedAsLudStatsV1) {
  Workload W = buildWorkload("sunflow", 200);
  opt::PipelineResult R = runPipeline(*W.M);
  ASSERT_TRUE(R.Changed);
  obs::MetricsRegistry Reg;
  opt::PassManager::accountStats(R, Reg);
  StringOutStream OS;
  Reg.writeJson(OS);
  std::string Json = OS.str();
  EXPECT_NE(Json.find("opt.removed_stores"), std::string::npos);
  EXPECT_NE(Json.find("opt.rewrites.clone_per_op"), std::string::npos);
  EXPECT_NE(Json.find("opt.passes_applied"), std::string::npos);
  EXPECT_NE(Json.find("opt.executed_after"), std::string::npos);
}

TEST(PassPipelineTest, UnknownPassNamesAreRejectedByLookup) {
  EXPECT_TRUE(opt::isKnownPassName("dead-stores"));
  EXPECT_TRUE(opt::isKnownPassName("map-to-array"));
  EXPECT_TRUE(opt::isKnownPassName("clone-per-op"));
  EXPECT_TRUE(opt::isKnownPassName("once-read-memo"));
  EXPECT_TRUE(opt::isKnownPassName("dead-stores-final"));
  EXPECT_FALSE(opt::isKnownPassName("loop-unroll"));
  EXPECT_FALSE(opt::isKnownPassName(""));
}

TEST(PassPipelineTest, AllRecipesPreservedOnBothEngines) {
  // The acceptance contract: whatever the pipeline commits on any of the
  // 18 analogues, the rewritten module reproduces the original's
  // observables on both engines.
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, 48);
    opt::PipelineResult R = runPipeline(*W.M);
    EXPECT_EQ(R.ReferenceStatus, RunStatus::Finished) << Name;
    expectPreserved(*W.M, R, Name);
    if (R.Changed)
      EXPECT_LE(R.InstrsAfter, R.InstrsBefore) << Name;
  }
}

} // namespace
