//===- tests/analysis/ClientsTest.cpp - Section 3.2 client analyses --------===//

#include "../TestUtil.h"

#include "analysis/Clients.h"
#include "analysis/Report.h"
#include "ir/IRBuilder.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

TEST(OverwriteClientTest, RanksRewrittenBeforeReadLocations) {
  // derby pattern: field "hot" written 50x, read once; "cold" written once.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("hot", Type::makeInt());
  A->addField("cold", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Instruction *Alloc = B.block()->insts().back().get();
  Reg I = B.iconst(0);
  Reg N = B.iconst(50);
  Reg One = B.iconst(1);
  B.storeField(O, A->getId(), "cold", One);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.storeField(O, A->getId(), "hot", I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  Reg V = B.loadField(O, A->getId(), "hot");
  Reg W = B.loadField(O, A->getId(), "cold");
  Reg S = B.add(V, W);
  B.ncallVoid("sink", {S});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  std::vector<OverwriteRow> Rows = rankOverwrites(P, M);
  ASSERT_FALSE(Rows.empty());
  // "hot" tops the ranking: 50 writes, 1 read, 49 overwrites.
  EXPECT_EQ(Rows[0].Site, cast<AllocInst>(Alloc)->Site);
  EXPECT_EQ(Rows[0].Writes, 50u);
  EXPECT_EQ(Rows[0].Reads, 1u);
  EXPECT_EQ(Rows[0].Overwrites, 49u);
  EXPECT_NEAR(Rows[0].WasteRatio, 49.0 / 50.0, 1e-9);
  EXPECT_NE(Rows[0].Description.find("hot"), std::string::npos);

  StringOutStream OS;
  printOverwrites(Rows, OS);
  EXPECT_NE(OS.str().find("hot"), std::string::npos);
}

TEST(OverwriteClientTest, StaticsAreRankedToo) {
  Module M;
  GlobalId G = M.addGlobal("cache", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg C1 = B.iconst(1);
  B.storeStatic(G, C1);
  B.storeStatic(G, C1);
  B.storeStatic(G, C1);
  Reg V = B.loadStatic(G);
  B.ncallVoid("sink", {V});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  std::vector<OverwriteRow> Rows = rankOverwrites(P, M);
  ASSERT_FALSE(Rows.empty());
  EXPECT_EQ(Rows[0].Global, G);
  EXPECT_EQ(Rows[0].Overwrites, 2u);
  EXPECT_NE(Rows[0].Description.find("cache"), std::string::npos);
}

TEST(MethodCostClientTest, ExpensiveReturnRanksFirst) {
  Module M;
  IRBuilder B(M);
  // cheap(): returns a constant. pricey(): loops 100x for its result.
  B.beginFunction("cheap", 0);
  Reg C = B.iconst(1);
  B.ret(C);
  B.endFunction();

  B.beginFunction("pricey", 0);
  Reg Acc = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(100);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.binInto(Acc, BinOp::Add, Acc, I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ret(Acc);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg A = B.call("cheap", {});
  Reg Bv = B.call("pricey", {});
  Reg S = B.add(A, Bv);
  B.ncallVoid("sink", {S});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  std::vector<MethodCostRow> Rows = computeMethodCosts(CM, M);
  ASSERT_GE(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Name, "pricey");
  EXPECT_GT(Rows[0].ReturnCost, 100.0);
  // cheap's return costs exactly ret + const = 2.
  for (const MethodCostRow &R : Rows) {
    if (R.Name == "cheap") {
      EXPECT_DOUBLE_EQ(R.ReturnCost, 2.0);
    }
  }
}

TEST(PredicateConstancyClientTest, FindsAlwaysTrueGuards) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(60);
  Reg One = B.iconst(1);
  Reg Zero = B.iconst(0);
  Reg Acc = B.iconst(0);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  // Always-true guard: i >= 0 for a loop counter.
  BasicBlock *Guarded = B.newBlock();
  BasicBlock *Cont = B.newBlock();
  B.condBr(CmpOp::Ge, I, Zero, Guarded, Cont);
  Instruction *Guard = B.block()->terminator();
  B.setBlock(Guarded);
  B.binInto(Acc, BinOp::Add, Acc, I);
  B.br(Cont);
  B.setBlock(Cont);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  std::vector<ConstantPredicateRow> Rows = findConstantPredicates(P, CM, M);
  ASSERT_FALSE(Rows.empty());
  bool FoundGuard = false;
  for (const ConstantPredicateRow &R : Rows) {
    if (R.Instr == Guard->getId()) {
      FoundGuard = true;
      EXPECT_TRUE(R.AlwaysTrue);
      EXPECT_EQ(R.Executions, 60u);
      EXPECT_NE(R.Text.find(">="), std::string::npos);
    }
    // The loop header predicate took both directions: never reported.
    EXPECT_TRUE(R.AlwaysTrue || R.Executions > 0);
  }
  EXPECT_TRUE(FoundGuard);
  // The loop-exit condition must NOT be reported (it went both ways).
  for (const ConstantPredicateRow &R : Rows)
    EXPECT_NE(R.Executions, 61u);
}

TEST(PredicateConstancyClientTest, MinCountFiltersOneShots) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(1);
  Reg Bv = B.iconst(2);
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Lt, A, Bv, T, E);
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  ClientOptions AtLeastTwo;
  AtLeastTwo.MinCount = 2;
  ClientOptions AtLeastOne;
  AtLeastOne.MinCount = 1;
  EXPECT_TRUE(findConstantPredicates(P, CM, M, AtLeastTwo).empty());
  EXPECT_EQ(findConstantPredicates(P, CM, M, AtLeastOne).size(), 1u);
}

} // namespace
