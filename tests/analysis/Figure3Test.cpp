//===- tests/analysis/Figure3Test.cpp - Figure 3 reconstruction ------------===//
//
// Reconstructs the shape of the paper's Figure 3: a method computes an
// expensive value inside a loop, stores it into a field t of a freshly
// allocated object, and the caller immediately copies that value into
// another structure. The paper's observations, checked here with exact
// hand-computed numbers for our reconstruction:
//   - the RAC of O.t equals the loop's stack work (4005 in the paper);
//   - the RAB of O.t is tiny (2 in the paper: the load and one add);
//   - a predicate reading the field directly has HRAC 1;
//   - the carrier object therefore has a huge cost-benefit imbalance and
//     tops the report.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "analysis/Report.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

struct Figure3Program {
  std::unique_ptr<Module> M;
  AllocSiteId CarrierSite = kNoAllocSite;
  InstrId StoreT = kNoInstr;
  InstrId LoadT = kNoInstr;
  FieldSlot SlotT = 0;
};

// Instruction ids are assigned by Module::finalize(), so builders must
// capture Instruction pointers and read ids afterwards.

/// computeB(): B b = new B; acc = sum_{i<1000} i; b.t = acc; return b.
/// main(): b = computeB(); u = b.t + 0; list[0] = u; sink(len(list)).
Figure3Program build() {
  Figure3Program Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;
  ClassDecl *BCls = M.addClass("B");
  BCls->addField("t", Type::makeInt());
  bool Resolved = M.resolveField(BCls->getId(), "t", Out.SlotT);
  EXPECT_TRUE(Resolved);

  IRBuilder B(M);
  B.beginFunction("computeB", 0);
  Reg Obj = B.alloc(BCls->getId());
  Instruction *Alloc = B.block()->insts().back().get();
  Reg Acc = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(1000);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.binInto(Acc, BinOp::Add, Acc, I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.storeField(Obj, BCls->getId(), "t", Acc);
  Instruction *StoreInst = B.block()->insts().back().get();
  B.ret(Obj);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg Carrier = B.call("computeB", {});
  Reg T = B.loadField(Carrier, BCls->getId(), "t");
  Instruction *LoadInst = B.block()->insts().back().get();
  Reg Zero = B.iconst(0);
  Reg U = B.add(T, Zero);
  Reg LenR = B.iconst(1);
  Reg List = B.allocArray(TypeKind::Int, LenR);
  Reg Idx = B.iconst(0);
  B.storeElem(List, Idx, U);
  Reg Len = B.arrayLen(List);
  B.ncallVoid("sink", {Len});
  B.ret();
  B.endFunction();
  M.finalize();
  Out.CarrierSite = cast<AllocInst>(Alloc)->Site;
  Out.StoreT = StoreInst->getId();
  Out.LoadT = LoadInst->getId();
  return Out;
}

TEST(Figure3Test, RelativeCostMatchesHandComputation) {
  Figure3Program Prog = build();
  RunResult R;
  SlicingProfiler P = profileRun(*Prog.M, {}, &R);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  CostModel CM(P.graph());

  const DepGraph &G = P.graph();
  NodeId Store = soleNodeFor(G, Prog.StoreT);
  ASSERT_NE(Store, kNoNode);
  uint64_t Tag = G.node(Store).EffectLoc.Tag;
  LocCostBenefit CB = CM.locCostBenefit(HeapLoc{Tag, Prog.SlotT});

  // RAC of B.t: store(1) + acc-add(1000) + acc0(1) + i-add(1000) + i0(1)
  // + one(1) = 2004. (The loop bound constant feeds only the predicate.)
  EXPECT_DOUBLE_EQ(CB.Rac, 2004.0);
  // RAB of B.t: load(1) + add(1) = 2, exactly the paper's value — the
  // expensively computed value is merely parked in the carrier.
  EXPECT_DOUBLE_EQ(CB.Rab, 2.0);
  EXPECT_EQ(CB.NumWriters, 1u);
  EXPECT_EQ(CB.NumReaders, 1u);
  EXPECT_FALSE(CB.ReachesNative);
}

TEST(Figure3Test, LoopNodeFrequenciesMatch) {
  Figure3Program Prog = build();
  SlicingProfiler P = profileRun(*Prog.M);
  const DepGraph &G = P.graph();
  // The abstract cost of the store covers the whole loop history.
  CostModel CM(P.graph());
  NodeId Store = soleNodeFor(G, Prog.StoreT);
  // Abstract cost adds the alloc? No: thin slicing, the base pointer is
  // not a use. Store's backward slice == its HRAC slice here because the
  // function reads no heap.
  EXPECT_EQ(CM.abstractCost(Store), CM.hrac(Store));
}

TEST(Figure3Test, CarrierTopsTheReport) {
  Figure3Program Prog = build();
  SlicingProfiler P = profileRun(*Prog.M);
  CostModel CM(P.graph());
  LowUtilityReport Report(CM, *Prog.M);
  ASSERT_FALSE(Report.sites().empty());
  EXPECT_EQ(Report.sites()[0].Site, Prog.CarrierSite);
  // Cost ~2004 against benefit ~2: a three-orders-of-magnitude imbalance.
  EXPECT_GT(Report.sites()[0].Ratio, 100.0);
}

} // namespace
