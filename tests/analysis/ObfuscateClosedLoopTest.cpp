//===- tests/analysis/ObfuscateClosedLoopTest.cpp - Obfuscate/strip loop ---===//
//
// The adversarial closed loop of the obfuscation layer: inject junk the
// report must rank above every genuine structure, opaque predicates the
// constancy client must prove, and string tables the optimizer must strip
// — then verify the strip restores the original observables on both
// engines.
//
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "analysis/CostModel.h"
#include "analysis/Optimizer.h"
#include "analysis/Report.h"
#include "ir/Obfuscate.h"
#include "ir/Verifier.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

ObfuscateOptions junkAndOpaque(uint64_t Seed) {
  ObfuscateOptions O;
  O.Seed = Seed;
  O.Junk = O.Opaque = true;
  return O;
}

TimedRun engineRun(const Module &M, EngineKind E) {
  SessionConfig C = SessionConfig::baseline();
  C.Engine = E;
  ProfileSession S(C);
  return S.run(M);
}

/// The junk accumulator site of \p Manifest (exactly one when junk is on).
AllocSiteId junkSite(const std::vector<ObfSiteTag> &Manifest) {
  AllocSiteId Site = kNoAllocSite;
  for (const ObfSiteTag &T : Manifest)
    if (T.Kind == ObfKind::Junk) {
      EXPECT_EQ(Site, kNoAllocSite) << "more than one junk site";
      Site = T.Site;
    }
  return Site;
}

TEST(ObfuscateClosedLoopTest, JunkOutranksEveryGenuineStructure) {
  // The paper-facing acceptance sweep: on every analogue, the injected
  // junk site must rank above all genuine structures, and the evidence-
  // driven strip must restore the un-obfuscated observables on both
  // engines.
  for (const std::string &Name : dacapoNames()) {
    SCOPED_TRACE(Name);
    Workload W = buildWorkload(Name, 100);
    TimedRun Orig = baselineRun(*W.M);
    ASSERT_EQ(Orig.Run.Status, RunStatus::Finished);

    ObfuscationResult Obf = obfuscateModule(*W.M, junkAndOpaque(7));
    std::vector<std::string> Errors;
    ASSERT_TRUE(verifyModule(*Obf.M, Errors))
        << (Errors.empty() ? "" : Errors.front());

    // Obfuscation must not change what the program computes.
    TimedRun ObfRun = baselineRun(*Obf.M);
    ASSERT_EQ(ObfRun.Run.Status, RunStatus::Finished);
    EXPECT_EQ(ObfRun.Run.ReturnValue.asInt(), Orig.Run.ReturnValue.asInt());
    EXPECT_EQ(ObfRun.Run.SinkHash, Orig.Run.SinkHash);

    // The report must put the junk accumulator above every genuine site.
    ProfiledRun P = profiledRun(*Obf.M);
    ASSERT_EQ(P.Run.Status, RunStatus::Finished);
    CostModel CM(P.Prof->graph());
    LowUtilityReport Report(CM, *Obf.M);
    AllocSiteId Junk = junkSite(Obf.Manifest);
    ASSERT_NE(Junk, kNoAllocSite);
    EXPECT_EQ(Report.rankOf(Junk), 0)
        << "junk must be the top-ranked site; top row is "
        << (Report.sites().empty() ? "(empty)"
                                   : Report.sites().front().Description);

    // The strip must remove the junk payloads and restore the original
    // observables, on the interpreter and the threaded engine alike.
    DeadValueAnalysis DV =
        computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
    OptimizeResult Opt = removeProfiledDeadCode(*Obf.M, P.Prof->graph(), DV);
    EXPECT_GT(Opt.Stats.RemovedStores, 0u);
    for (EngineKind E : {EngineKind::Interp, EngineKind::Threaded}) {
      TimedRun R = engineRun(*Opt.M, E);
      ASSERT_EQ(R.Run.Status, RunStatus::Finished);
      EXPECT_EQ(R.Run.ReturnValue.asInt(), Orig.Run.ReturnValue.asInt());
      EXPECT_EQ(R.Run.SinkHash, Orig.Run.SinkHash);
      EXPECT_LT(R.Run.ExecutedInstrs, ObfRun.Run.ExecutedInstrs);
    }

    // After the strip, the junk site no longer appears in the report.
    ProfiledRun P2 = profiledRun(*Opt.M);
    CostModel CM2(P2.Prof->graph());
    LowUtilityReport Clean(CM2, *Opt.M);
    for (const SiteScore &S : Clean.sites())
      EXPECT_EQ(S.Description.find("ObfJunk"), std::string::npos)
          << S.Description;
  }
}

TEST(ObfuscateClosedLoopTest, OpaquePredicatesProvedConstant) {
  Workload W = buildWorkload("chart", 150);
  ObfuscationResult Obf = obfuscateModule(*W.M, junkAndOpaque(7));
  std::set<InstrId> Tagged;
  for (const ObfSiteTag &T : Obf.Manifest)
    if (T.Kind == ObfKind::Opaque)
      Tagged.insert(T.Instr);
  ASSERT_FALSE(Tagged.empty());

  ProfiledRun P = profiledRun(*Obf.M);
  ASSERT_EQ(P.Run.Status, RunStatus::Finished);
  CostModel CM(P.Prof->graph());
  std::vector<ConstantPredicateRow> Rows =
      findConstantPredicates(*P.Prof, CM, *Obf.M);

  // Every guard that ran often enough to clear the client's MinCount must
  // be proved constant; at least one always does at this scale.
  size_t Proved = 0;
  for (const ConstantPredicateRow &R : Rows)
    if (Tagged.count(R.Instr))
      ++Proved;
  EXPECT_GT(Proved, 0u);
}

TEST(ObfuscateClosedLoopTest, StringTablesStripCompletely) {
  Workload W = buildWorkload("derby", 100);
  TimedRun Orig = baselineRun(*W.M);

  ObfuscateOptions O;
  O.Seed = 11;
  O.Strings = true;
  O.StringChance = 100;
  ObfuscationResult Obf = obfuscateModule(*W.M, O);
  ASSERT_FALSE(Obf.Manifest.empty());
  TimedRun ObfRun = baselineRun(*Obf.M);
  EXPECT_EQ(ObfRun.Run.SinkHash, Orig.Run.SinkHash);
  EXPECT_GT(ObfRun.Run.ExecutedInstrs, Orig.Run.ExecutedInstrs);

  // The decode subgraph feeds no consumer: the sweep removes the table
  // fill, the rewrites, and the tables themselves.
  ProfiledRun P = profiledRun(*Obf.M);
  DeadValueAnalysis DV =
      computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
  OptimizeResult Opt = removeProfiledDeadCode(*Obf.M, P.Prof->graph(), DV);
  EXPECT_GT(Opt.Stats.RemovedStores, 0u);
  EXPECT_GT(Opt.Stats.RemovedPure, 0u);
  TimedRun After = baselineRun(*Opt.M);
  EXPECT_EQ(After.Run.ReturnValue.asInt(), Orig.Run.ReturnValue.asInt());
  EXPECT_EQ(After.Run.SinkHash, Orig.Run.SinkHash);
  EXPECT_LT(After.Run.ExecutedInstrs, ObfRun.Run.ExecutedInstrs);
}

TEST(ObfuscateClosedLoopTest, RandomProgramsSurviveObfuscation) {
  // The fuzzer's obfuscated shapes: generation with the knobs on must be
  // observably identical to generation with them off (same program seed).
  for (uint64_t Seed : {3u, 17u, 101u}) {
    SCOPED_TRACE(Seed);
    RandomProgramOptions Plain;
    Plain.Seed = Seed;
    std::unique_ptr<Module> M0 = generateRandomProgram(Plain);
    TimedRun R0 = baselineRun(*M0);

    RandomProgramOptions Obf = Plain;
    Obf.ObfJunk = Obf.ObfOpaque = Obf.ObfStrings = true;
    std::unique_ptr<Module> M1 = generateRandomProgram(Obf);
    TimedRun R1 = baselineRun(*M1);
    ASSERT_EQ(R1.Run.Status, RunStatus::Finished);
    EXPECT_EQ(R1.Run.ReturnValue.asInt(), R0.Run.ReturnValue.asInt());
    EXPECT_EQ(R1.Run.SinkHash, R0.Run.SinkHash);
  }
}

} // namespace
