//===- tests/analysis/CostModelTest.cpp - Definitions 3-7 ------------------===//

#include "../TestUtil.h"

#include "analysis/CostModel.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

TEST(CostModelTest, Figure1NoDoubleCounting) {
  // Figure 1: a = 0; c = f(a); d = c * 3; b = c + d; where f(e) = e >> 2.
  // Taint-style accumulation counts c's cost twice (through c and d); the
  // dependence-graph cost counts every contributing instruction once.
  Module M;
  IRBuilder B(M);
  B.beginFunction("f", 1);
  Reg Two = B.iconst(2);
  Reg Sh = B.bin(BinOp::Shr, 0, Two);
  B.ret(Sh);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg A = B.iconst(0);
  Reg C = B.call("f", {A});
  Reg Three = B.iconst(3);
  Reg D = B.mul(C, Three);
  Reg Bv = B.add(C, D);
  B.ncallVoid("sink", {Bv});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  InstrId AddId = 7;
  NodeId NAdd = soleNodeFor(P.graph(), AddId);
  ASSERT_NE(NAdd, kNoNode);
  // Contributors: iconst0, iconst2, shr, ret, iconst3, mul, add = 7 nodes,
  // freq 1 each. (Taint-style double counting would give 11.)
  EXPECT_EQ(CM.abstractCost(NAdd), 7u);
}

TEST(CostModelTest, AbstractCostAccumulatesLoopFrequencies) {
  // acc = 0; for (i = 0; i < 50; i++) acc = acc + i; sink(acc).
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Acc = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(50);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.binInto(Acc, BinOp::Add, Acc, I);
  Instruction *AccAdd = B.block()->insts().back().get();
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId NAcc = soleNodeFor(P.graph(), AccAdd->getId());
  ASSERT_NE(NAcc, kNoNode);
  // acc-add(50) + i-add(50) + iconst acc0/i0/one (3x1) = 103.
  // (iconst 50 feeds only the predicate, not acc.)
  EXPECT_EQ(CM.abstractCost(NAcc), 103u);
}

TEST(CostModelTest, HracStopsAtHeapReads) {
  // x = o.f; y = x + 1; p.g = y;  => HRAC(store) = store + add = 2 (the
  // load and everything before it are excluded: Definition 5).
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg Pr = B.alloc(A->getId());
  Reg Seed = B.iconst(5);
  B.storeField(O, A->getId(), "f", Seed);
  Reg X = B.loadField(O, A->getId(), "f");
  Reg OneR = B.iconst(1);
  Reg Y = B.add(X, OneR);
  B.storeField(Pr, A->getId(), "g", Y);
  Instruction *StoreG = B.block()->insts().back().get();
  Reg Z = B.loadField(Pr, A->getId(), "g");
  B.ncallVoid("sink", {Z});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId NStore = soleNodeFor(P.graph(), StoreG->getId());
  ASSERT_NE(NStore, kNoNode);
  // store(1) + add(1) + iconst1(1) = 3; the load of o.f is not entered.
  EXPECT_EQ(CM.hrac(NStore), 3u);
  // Whereas the full abstract cost also covers the first hop.
  EXPECT_GT(CM.abstractCost(NStore), 3u);
}

TEST(CostModelTest, HrabStopsAtHeapWrites) {
  // x = o.f; y = x + 1; p.g = y; HRAB(load o.f) = load + add = 2; the store
  // and anything after it are excluded (Definition 6).
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg Pr = B.alloc(A->getId());
  Reg Seed = B.iconst(5);
  B.storeField(O, A->getId(), "f", Seed);
  Reg X = B.loadField(O, A->getId(), "f");
  Instruction *LoadF = B.block()->insts().back().get();
  Reg OneR = B.iconst(1);
  Reg Y = B.add(X, OneR);
  B.storeField(Pr, A->getId(), "g", Y);
  Reg Z = B.loadField(Pr, A->getId(), "g");
  B.ncallVoid("sink", {Z});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId NLoad = soleNodeFor(P.graph(), LoadF->getId());
  ASSERT_NE(NLoad, kNoNode);
  const BenefitInfo &BI = CM.hrab(NLoad);
  // load(1) + add(1) = 2; store not entered.
  EXPECT_EQ(BI.Benefit, 2u);
  EXPECT_FALSE(BI.ReachesPredicate);
  EXPECT_FALSE(BI.ReachesNative);
}

TEST(CostModelTest, BenefitFlagsReportConsumers) {
  // u = o.f used in a predicate; v = o.g sunk to a native.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C1 = B.iconst(1);
  B.storeField(O, A->getId(), "f", C1);
  B.storeField(O, A->getId(), "g", C1);
  Reg U = B.loadField(O, A->getId(), "f");
  Instruction *LoadF = B.block()->insts().back().get();
  Reg V = B.loadField(O, A->getId(), "g");
  Instruction *LoadG = B.block()->insts().back().get();
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, U, C1, T, E);
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ncallVoid("sink", {V});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  const BenefitInfo &BF = CM.hrab(soleNodeFor(P.graph(), LoadF->getId()));
  EXPECT_TRUE(BF.ReachesPredicate);
  EXPECT_FALSE(BF.ReachesNative);
  const BenefitInfo &BG = CM.hrab(soleNodeFor(P.graph(), LoadG->getId()));
  EXPECT_FALSE(BG.ReachesPredicate);
  EXPECT_TRUE(BG.ReachesNative);
}

TEST(CostModelTest, LocCostBenefitAveragesOverNodes) {
  // Two different stores write o.f (one cheap, one expensive); RAC is the
  // average of their HRACs.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C1 = B.iconst(1);
  B.storeField(O, A->getId(), "f", C1); // HRAC = store+const = 2
  Reg C2 = B.iconst(2);
  Reg C3 = B.iconst(3);
  Reg S = B.add(C2, C3);
  Reg S2 = B.mul(S, C2);
  B.storeField(O, A->getId(), "f", S2); // HRAC = store+mul+add+2consts = 5
  Reg L = B.loadField(O, A->getId(), "f");
  B.ncallVoid("sink", {L});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  FieldSlot Slot;
  ASSERT_TRUE(M.resolveField(A->getId(), "f", Slot));
  NodeId NAlloc = soleNodeFor(P.graph(), 0);
  uint64_t Tag = P.graph().node(NAlloc).EffectLoc.Tag;
  LocCostBenefit CB = CM.locCostBenefit(HeapLoc{Tag, Slot});
  EXPECT_EQ(CB.NumWriters, 2u);
  EXPECT_DOUBLE_EQ(CB.Rac, (2.0 + 5.0) / 2.0);
  EXPECT_EQ(CB.NumReaders, 1u);
}

TEST(CostModelTest, ObjectCostBenefitAggregatesOverTree) {
  // root.child = inner; inner.v = <expensive>; 1-RAC of root counts only
  // root's own fields; 2-RAC also counts inner.v.
  Module M;
  ClassDecl *Inner = M.addClass("Inner");
  Inner->addField("v", Type::makeInt());
  ClassDecl *Root = M.addClass("Root");
  Root->addField("child", Type::makeRef(Inner->getId()));
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg RInner = B.alloc(Inner->getId());
  Reg C1 = B.iconst(10);
  Reg C2 = B.iconst(20);
  Reg Sum = B.add(C1, C2);
  B.storeField(RInner, Inner->getId(), "v", Sum); // HRAC 4
  Reg RRoot = B.alloc(Root->getId());
  B.storeField(RRoot, Root->getId(), "child", RInner); // HRAC 2 (store+alloc)
  Reg L = B.loadField(RRoot, Root->getId(), "child");
  Reg V = B.loadField(L, Inner->getId(), "v");
  B.ncallVoid("sink", {V});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId RootAlloc = soleNodeFor(P.graph(), 5);
  uint64_t RootTag = P.graph().node(RootAlloc).EffectLoc.Tag;

  ObjectCostBenefit CB1 = CM.objectCostBenefit(RootTag, 1);
  ObjectCostBenefit CB2 = CM.objectCostBenefit(RootTag, 2);
  // Depth 1: only root.child (HRAC = store + alloc = 2).
  EXPECT_DOUBLE_EQ(CB1.NRac, 2.0);
  EXPECT_EQ(CB1.FieldsCounted, 1u);
  EXPECT_EQ(CB1.TreeObjects, 2u);
  // Depth 2: + inner.v (HRAC = store + add + 2 consts = 4).
  EXPECT_DOUBLE_EQ(CB2.NRac, 6.0);
  EXPECT_EQ(CB2.FieldsCounted, 2u);
}

TEST(CostModelTest, ReferenceCyclesAreCut) {
  // a.next = b; b.next = a; depth-10 aggregation terminates and counts
  // each field once.
  Module M;
  ClassDecl *N = M.addClass("N");
  N->addField("next", Type::makeRef(N->getId()));
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg RA = B.alloc(N->getId());
  Reg RB = B.alloc(N->getId());
  B.storeField(RA, N->getId(), "next", RB);
  B.storeField(RB, N->getId(), "next", RA);
  Reg L = B.loadField(RA, N->getId(), "next");
  B.ncallVoid("sink", {L});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId AAlloc = soleNodeFor(P.graph(), 0);
  uint64_t ATag = P.graph().node(AAlloc).EffectLoc.Tag;
  ObjectCostBenefit CB = CM.objectCostBenefit(ATag, 10);
  EXPECT_EQ(CB.TreeObjects, 2u);
  EXPECT_EQ(CB.FieldsCounted, 2u);
}

TEST(CostModelTest, HracOfPredicateDirectlyAfterLoadIsItsFrequency) {
  // Figure 3's observation: a predicate that depends directly on a heap
  // read has HRAC equal to just its own frequency.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("t", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(100);
  B.storeField(O, A->getId(), "t", C);
  Reg L = B.loadField(O, A->getId(), "t");
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, L, L, T, E);
  Instruction *Pred = B.block()->terminator();
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  NodeId NPred = soleNodeFor(P.graph(), Pred->getId());
  ASSERT_NE(NPred, kNoNode);
  EXPECT_EQ(CM.hrac(NPred), 1u);
}

TEST(CostModelTest, ClosureFrequenciesSaturateInsteadOfWrapping) {
  // A fuzzed program can pile near-2^64 executions onto one closure. A
  // wrapped accumulator would rank the hottest structure as nearly free;
  // saturation pins the cost at "at least UINT64_MAX".
  DepGraph G;
  NodeId A = G.getOrCreate(1, 0);
  NodeId B = G.getOrCreate(2, 0);
  G.addEdge(A, B);
  G.freq(A) = ~uint64_t(0);
  G.freq(B) = 12345;
  CostModel CM(G);
  // Wrapping would report 12344 here.
  EXPECT_EQ(CM.abstractCost(B), ~uint64_t(0));
  EXPECT_EQ(CM.abstractCost(A), ~uint64_t(0));
}

TEST(CostModelTest, LocCostsSaturateAcrossWriterSums) {
  DepGraph G;
  NodeId W1 = G.getOrCreate(1, 0);
  NodeId W2 = G.getOrCreate(2, 0);
  G.freq(W1) = uint64_t(1) << 63;
  G.freq(W2) = (uint64_t(1) << 63) + 9;
  HeapLoc L{42, 3};
  G.noteWriter(L, W1);
  G.noteWriter(L, W2);
  CostModel CM(G);
  LocCostBenefit CB = CM.locCostBenefit(L);
  EXPECT_EQ(CB.NumWriters, 2u);
  // The per-writer hrac sum wraps to 9 without saturation; the average
  // must instead sit at the ceiling.
  EXPECT_EQ(CB.Rac, double(~uint64_t(0)) / 2.0);
}

} // namespace
