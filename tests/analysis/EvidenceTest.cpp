//===- tests/analysis/EvidenceTest.cpp - UsageSummary classification -------===//

#include "analysis/Evidence.h"

#include "analysis/DeadValues.h"
#include "profiling/FrozenGraph.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

struct EvidenceRun {
  Workload W;
  UsageEvidence E;
  RunResult Run;
};

/// Profiles the named recipe and folds the evidence layer, exactly as the
/// pass pipeline does before proposing rewrites.
EvidenceRun buildEvidence(const std::string &Name, int64_t Scale) {
  EvidenceRun Out{buildWorkload(Name, Scale), {}, {}};
  ProfiledRun P = profiledRun(*Out.W.M);
  EXPECT_EQ(P.Run.Status, RunStatus::Finished) << Name;
  Out.Run = P.Run;
  FrozenGraph G(P.Prof->graph());
  DeadValueAnalysis DV = computeDeadValues(G, P.Run.ExecutedInstrs);
  Out.E = summarizeUsage(*Out.W.M, G, P.Prof->locationActivity(), &DV);
  return Out;
}

/// The unique site summary whose description contains \p Needle.
const UsageSummary *findSite(const UsageEvidence &E, const std::string &Needle) {
  const UsageSummary *Found = nullptr;
  for (const UsageSummary &S : E.Sites) {
    if (S.Description.find(Needle) == std::string::npos)
      continue;
    EXPECT_EQ(Found, nullptr) << "ambiguous needle " << Needle << ": "
                              << Found->Description << " vs " << S.Description;
    Found = &S;
  }
  return Found;
}

TEST(EvidenceTest, SunflowMemoTableIsOnceRead) {
  // The paper's sunflow case study: a bits-cache whose every value is read
  // exactly once never pays for itself (EXPERIMENTS.md Section 1).
  EvidenceRun R = buildEvidence("sunflow", 200);
  const UsageSummary *S = findSite(R.E, "su_bits");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, UsageKind::OnceRead) << usageKindName(S->Kind);
  EXPECT_EQ(S->Writes, 200u);
  EXPECT_EQ(S->Reads, 200u);
  EXPECT_EQ(S->ReadsAfterLastWrite, 200u);
  EXPECT_EQ(S->Overwrites, 0u);
}

TEST(EvidenceTest, SunflowMatrixCloneIsClonePerOp) {
  // Matrix ops clone the receiver on every operation: many short-lived
  // instances with paired write/read volumes.
  EvidenceRun R = buildEvidence("sunflow", 200);
  const UsageSummary *S = findSite(R.E, "new Matrix @ Matrix.clone");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, UsageKind::ClonePerOp) << usageKindName(S->Kind);
  EXPECT_EQ(S->Instances, 50u);
  EXPECT_EQ(S->Writes, 100u);
  EXPECT_EQ(S->Reads, 175u);
}

TEST(EvidenceTest, DerbyMetadataIsOverwriteDominated) {
  // Section 3.2's rewritten-before-read shape: the container metadata
  // array is refreshed on every page write but read once at the end.
  EvidenceRun R = buildEvidence("derby", 200);
  const UsageSummary *S = findSite(R.E, "new int[] @ de_meta");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, UsageKind::OverwriteDominated) << usageKindName(S->Kind);
  EXPECT_GE(2 * S->Overwrites, S->Writes);
  EXPECT_LT(S->Reads, S->Writes);
}

TEST(EvidenceTest, DerbyPageIndexIsBuildOnceReadMany) {
  // The page index fills its 128 sorted slots early, then every op only
  // probes: the build phase is bounded while reads grow with scale.
  EvidenceRun R = buildEvidence("derby", 400);
  const UsageSummary *S = findSite(R.E, "de_pages");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Kind, UsageKind::BuildOnceReadMany) << usageKindName(S->Kind);
  EXPECT_GE(S->Reads, 4 * S->Writes);
  EXPECT_GT(S->ReadsAfterLastWrite, 0u);
}

TEST(EvidenceTest, ClassificationIsScaleSensitive) {
  // At small scale the page index is still mid-build: the classifier must
  // not call a pattern it has no evidence for.
  EvidenceRun R = buildEvidence("derby", 200);
  const UsageSummary *S = findSite(R.E, "de_pages");
  ASSERT_NE(S, nullptr);
  EXPECT_NE(S->Kind, UsageKind::BuildOnceReadMany);
}

TEST(EvidenceTest, AllRecipesProduceCoherentSummaries) {
  for (const std::string &Name : dacapoNames()) {
    EvidenceRun R = buildEvidence(Name, 48);
    ASSERT_EQ(R.E.Sites.size(), R.W.M->getNumAllocSites()) << Name;
    uint64_t ActiveSites = 0;
    for (const UsageSummary &S : R.E.Sites) {
      EXPECT_FALSE(S.IsStatic) << Name;
      // Internal consistency of the folded counters.
      EXPECT_LE(S.Overwrites, S.Writes) << Name << ": " << S.Description;
      EXPECT_LE(S.ReadsAfterLastWrite, S.Reads) << Name << ": "
                                                << S.Description;
      if (S.Writes + S.Reads > 0) {
        ++ActiveSites;
        EXPECT_GT(S.Locs, 0u) << Name << ": " << S.Description;
        EXPECT_FALSE(S.Description.empty()) << Name;
      }
      // Too little evidence must never classify as a pattern.
      if (S.Writes + S.Reads < 16)
        EXPECT_EQ(S.Kind, UsageKind::Balanced) << Name << ": "
                                               << S.Description;
    }
    EXPECT_GT(ActiveSites, 0u) << Name;
    for (const UsageSummary &S : R.E.Statics) {
      EXPECT_TRUE(S.IsStatic) << Name;
      EXPECT_LE(S.Overwrites, S.Writes) << Name << ": " << S.Description;
      EXPECT_LE(S.ReadsAfterLastWrite, S.Reads) << Name << ": "
                                                << S.Description;
    }
  }
}

} // namespace
