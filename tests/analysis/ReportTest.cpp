//===- tests/analysis/ReportTest.cpp - Low-utility site ranking ------------===//

#include "../TestUtil.h"

#include "analysis/Report.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

/// Builds the paper's motivating pattern (the DaCapo chart example from the
/// introduction): a list is populated with expensively computed entries,
/// but only its size is ever inspected. A second, genuinely useful object
/// is the control. Returns (bloat site, useful site).
struct ChartLike {
  std::unique_ptr<Module> M;
  AllocSiteId BloatSite;
  AllocSiteId UsefulSite;
};

ChartLike buildChartLike(int64_t Entries) {
  ChartLike Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;
  ClassDecl *List = M.addClass("List");
  List->addField("arr", Type::makeRef());
  List->addField("size", Type::makeInt());
  ClassDecl *Entry = M.addClass("Entry");
  Entry->addField("v", Type::makeInt());
  ClassDecl *Acc = M.addClass("Acc");
  Acc->addField("total", Type::makeInt());

  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg N = B.iconst(Entries);
  Reg ListR = B.alloc(List->getId());
  Instruction *ListAlloc = M.getFunction(0)->entry()->insts().back().get();
  Reg Arr = B.allocArray(TypeKind::Ref, N);
  B.storeField(ListR, List->getId(), "arr", Arr);
  Reg AccR = B.alloc(Acc->getId());
  Instruction *AccAlloc = B.block()->insts().back().get();
  Reg Zero = B.iconst(0);
  B.storeField(AccR, Acc->getId(), "total", Zero);

  Reg I = B.iconst(0);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  // Expensively compute a value, box it into an Entry, append to the list.
  Reg V = B.mul(I, I);
  Reg V2 = B.add(V, One);
  Reg V3 = B.mul(V2, V2);
  Reg E = B.alloc(Entry->getId());
  B.storeField(E, Entry->getId(), "v", V3);
  B.storeElem(Arr, I, E);
  // Also maintain the genuinely useful accumulator.
  Reg T = B.loadField(AccR, Acc->getId(), "total");
  Reg T2 = B.add(T, I);
  B.storeField(AccR, Acc->getId(), "total", T2);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  // Only the list's size is checked; entry values are never read.
  Reg Size = B.loadField(ListR, List->getId(), "arr");
  Reg Len = B.arrayLen(Size);
  Reg Total = B.loadField(AccR, Acc->getId(), "total");
  B.ncallVoid("sink", {Len});
  B.ncallVoid("sink", {Total});
  B.ret();
  B.endFunction();
  M.finalize();

  Out.BloatSite = cast<AllocInst>(ListAlloc)->Site;
  Out.UsefulSite = cast<AllocInst>(AccAlloc)->Site;
  return Out;
}

TEST(ReportTest, ChartPatternRanksListFirst) {
  ChartLike C = buildChartLike(200);
  SlicingProfiler P = profileRun(*C.M);
  CostModel CM(P.graph());
  LowUtilityReport Report(CM, *C.M);
  ASSERT_FALSE(Report.sites().empty());

  // The Entry allocation site (whose values are never read) must outrank
  // the accumulator, whose values flow to the native sink.
  int BloatRank = -1, UsefulRank = -1;
  for (size_t I = 0; I != Report.sites().size(); ++I) {
    const SiteScore &S = Report.sites()[I];
    const Instruction *Site = C.M->getAllocSite(S.Site);
    if (const auto *A = dyn_cast<AllocInst>(Site)) {
      if (C.M->getClass(A->Class)->getName() == "Entry")
        BloatRank = int(I);
      if (S.Site == C.UsefulSite)
        UsefulRank = int(I);
    }
  }
  ASSERT_GE(BloatRank, 0);
  // The useful accumulator reaches a native: infinite benefit, ratio 0.
  if (UsefulRank >= 0) {
    EXPECT_LT(BloatRank, UsefulRank);
  }
  EXPECT_EQ(BloatRank, 0);

  const SiteScore &Top = Report.sites()[0];
  EXPECT_FALSE(Top.ReachesNative);
  EXPECT_GT(Top.Ratio, 100.0);
}

TEST(ReportTest, NativeWeightPolicies) {
  ChartLike C = buildChartLike(50);
  SlicingProfiler P = profileRun(*C.M);
  CostModel CM(P.graph());
  // Strict Section 1 weighting: output-reaching => infinite benefit.
  ReportOptions Strict;
  Strict.NativeWeight = ConsumerWeight::Infinite;
  LowUtilityReport RStrict(CM, *C.M, Strict);
  int Rank = RStrict.rankOf(C.UsefulSite);
  ASSERT_GE(Rank, 0);
  EXPECT_DOUBLE_EQ(RStrict.sites()[Rank].Ratio, 0.0);
  EXPECT_TRUE(RStrict.sites()[Rank].ReachesNative);
  // Default (Large): tiny but nonzero ratio, still far below the bloat.
  LowUtilityReport RLarge(CM, *C.M);
  int RankL = RLarge.rankOf(C.UsefulSite);
  ASSERT_GE(RankL, 0);
  EXPECT_GT(RLarge.sites()[RankL].Ratio, 0.0);
  EXPECT_LT(RLarge.sites()[RankL].Ratio, 1.0);
}

TEST(ReportTest, PredicateWeightPolicyChangesRanking) {
  // A structure whose only use is a predicate: with PredicateWeight=Zero it
  // looks maximally suspicious; with Large it drops.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C1 = B.iconst(3);
  Reg C2 = B.iconst(4);
  Reg V = B.mul(C1, C2);
  B.storeField(O, A->getId(), "f", V);
  Reg L = B.loadField(O, A->getId(), "f");
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, L, C1, T, E);
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());

  ReportOptions Zero;
  Zero.PredicateWeight = ConsumerWeight::Zero;
  LowUtilityReport RZero(CM, M, Zero);
  ReportOptions Large;
  Large.PredicateWeight = ConsumerWeight::Large;
  LowUtilityReport RLarge(CM, M, Large);

  int RankZ = RZero.rankOf(0);
  int RankL = RLarge.rankOf(0);
  ASSERT_GE(RankZ, 0);
  ASSERT_GE(RankL, 0);
  EXPECT_GT(RZero.sites()[RankZ].Ratio, RLarge.sites()[RankL].Ratio);
}

TEST(ReportTest, MinCostFiltersNoise) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(1);
  B.storeField(O, A->getId(), "f", C);
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  CostModel CM(P.graph());
  ReportOptions Opts;
  Opts.MinCost = 1e6; // Everything is below the floor.
  LowUtilityReport Report(CM, M, Opts);
  EXPECT_TRUE(Report.sites().empty());
}

TEST(ReportTest, PrintProducesTable) {
  ChartLike C = buildChartLike(20);
  SlicingProfiler P = profileRun(*C.M);
  CostModel CM(P.graph());
  LowUtilityReport Report(CM, *C.M);
  StringOutStream OS;
  Report.print(OS, 5);
  EXPECT_NE(OS.str().find("rank"), std::string::npos);
  EXPECT_NE(OS.str().find("new Entry @ main"), std::string::npos);
}

TEST(ReportTest, FilterByClassRestrictsRows) {
  ChartLike C = buildChartLike(20);
  SlicingProfiler P = profileRun(*C.M);
  CostModel CM(P.graph());
  LowUtilityReport Report(CM, *C.M);
  ClassId ListClass = C.M->findClass("List");
  std::vector<SiteScore> Rows = Report.filterByClass(*C.M, {ListClass});
  for (const SiteScore &S : Rows) {
    const auto *A = cast<AllocInst>(C.M->getAllocSite(S.Site));
    EXPECT_EQ(A->Class, ListClass);
  }
}

TEST(ReportTest, ContextsAggregatePerSite) {
  // One allocation site reached through two distinct receiver contexts:
  // the report aggregates them into a single row with NumContexts == 2.
  Module M;
  ClassDecl *Box = M.addClass("Box");
  Box->addField("v", Type::makeInt());
  ClassDecl *Maker = M.addClass("Maker");
  IRBuilder B(M);
  B.beginMethod(Maker->getId(), "make", 2);
  Reg O = B.alloc(Box->getId());
  Instruction *BoxAlloc = B.block()->insts().back().get();
  B.storeField(O, Box->getId(), "v", 1);
  B.ret(O);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg M1 = B.alloc(Maker->getId());
  Reg M2 = B.alloc(Maker->getId());
  Reg C = B.iconst(5);
  Reg B1 = B.vcall("make", {M1, C});
  Reg B2 = B.vcall("make", {M2, C});
  Reg V1 = B.loadField(B1, Box->getId(), "v");
  Reg V2 = B.loadField(B2, Box->getId(), "v");
  Reg S = B.add(V1, V2);
  B.ncallVoid("sink", {S});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingConfig Cfg;
  Cfg.ContextSlots = 64;
  SlicingProfiler P = profileRun(M, Cfg);
  CostModel CM(P.graph());
  ReportOptions Opts;
  Opts.MinCost = 0.5;
  LowUtilityReport Report(CM, M, Opts);
  AllocSiteId Site = cast<AllocInst>(BoxAlloc)->Site;
  int Rank = Report.rankOf(Site);
  ASSERT_GE(Rank, 0);
  EXPECT_EQ(Report.sites()[Rank].NumContexts, 2u);
}

} // namespace
