//===- tests/analysis/OptimizerTest.cpp - Profile-guided bloat removal -----===//

#include "analysis/Optimizer.h"
#include "ir/Clone.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

/// Profiles M, optimizes, validates observability, returns the result.
OptimizeResult optimizeChecked(const Module &M) {
  ProfiledRun P = profiledRun(M);
  EXPECT_EQ(P.Run.Status, RunStatus::Finished);
  DeadValueAnalysis DV =
      computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
  OptimizeResult R = removeProfiledDeadCode(M, P.Prof->graph(), DV);
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*R.M, Errors));
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return R;
}

TEST(CloneModuleTest, IdentityCloneBehavesIdentically) {
  Workload W = buildWorkload("eclipse", 48);
  std::unique_ptr<Module> C = cloneModule(*W.M);
  TimedRun R1 = baselineRun(*W.M);
  TimedRun R2 = baselineRun(*C);
  EXPECT_EQ(R1.Run.ExecutedInstrs, R2.Run.ExecutedInstrs);
  EXPECT_EQ(R1.Run.SinkHash, R2.Run.SinkHash);
  EXPECT_EQ(C->getNumInstrs(), W.M->getNumInstrs());
}

TEST(OptimizerTest, RemovesChartEntryConstruction) {
  // The intro example: entries boxed into a list that is only size-checked
  // — the optimizer should delete the boxing and the value computation.
  Workload W = buildWorkload("chart", 100);
  TimedRun Before = baselineRun(*W.M);
  OptimizeResult R = optimizeChecked(*W.M);
  EXPECT_GT(R.Stats.RemovedStores, 0u);
  EXPECT_GT(R.Stats.RemovedPure, 0u);
  TimedRun After = baselineRun(*R.M);
  ASSERT_EQ(After.Run.Status, RunStatus::Finished);
  // Observable output preserved, work reduced.
  EXPECT_EQ(After.Run.SinkHash, Before.Run.SinkHash);
  EXPECT_LT(After.Run.ExecutedInstrs, Before.Run.ExecutedInstrs);
  // The chart pattern is a sizable fraction of this workload (the entry
  // spine itself stays: reference stores are outside thin value flow).
  double Reduction = 1.0 - double(After.Run.ExecutedInstrs) /
                               double(Before.Run.ExecutedInstrs);
  EXPECT_GT(Reduction, 0.05);
}

TEST(OptimizerTest, PreservesFullyLiveProgram) {
  // Every value reaches the sink: nothing to remove.
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(5);
  Reg C = B.iconst(7);
  Reg S = B.mul(A, C);
  B.ncallVoid("sink", {S});
  B.ret(S);
  B.endFunction();
  M.finalize();
  OptimizeResult R = optimizeChecked(M);
  EXPECT_EQ(R.Stats.removedTotal(), 0u);
  EXPECT_EQ(R.M->getNumInstrs(), M.getNumInstrs());
}

TEST(OptimizerTest, DeadChainCascades) {
  // v -> box.f, box never read: store, field computation, and the alloc
  // itself should all disappear.
  Module M;
  ClassDecl *Box = M.addClass("Box");
  Box->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Keep = B.iconst(11);
  Reg O = B.alloc(Box->getId());
  Reg T1 = B.mul(Keep, Keep);
  Reg T2 = B.add(T1, Keep);
  B.storeField(O, Box->getId(), "f", T2);
  B.ncallVoid("sink", {Keep});
  B.ret();
  B.endFunction();
  M.finalize();
  OptimizeResult R = optimizeChecked(M);
  EXPECT_EQ(R.Stats.RemovedStores, 1u);
  // mul, add, alloc all cascade away.
  EXPECT_EQ(R.Stats.RemovedPure, 3u);
  TimedRun After = baselineRun(*R.M);
  EXPECT_EQ(After.Run.Status, RunStatus::Finished);
  // Remaining: iconst, ncall, ret.
  EXPECT_EQ(After.Run.ExecutedInstrs, 3u);
}

TEST(OptimizerTest, KeepsPredicateFeeders) {
  // A value consumed only by a branch is NOT dead (control decisions are
  // consumers); the optimizer must not touch it.
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg A = B.iconst(3);
  Reg C = B.iconst(9);
  Reg V = B.mul(A, C);
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, V, A, T, E);
  B.setBlock(T);
  Reg One = B.iconst(1);
  B.ncallVoid("sink", {One});
  B.br(E);
  B.setBlock(E);
  B.ret();
  B.endFunction();
  M.finalize();
  TimedRun Before = baselineRun(M);
  OptimizeResult R = optimizeChecked(M);
  TimedRun After = baselineRun(*R.M);
  EXPECT_EQ(After.Run.SinkHash, Before.Run.SinkHash);
  EXPECT_EQ(After.Run.ExecutedInstrs, Before.Run.ExecutedInstrs);
}

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, ObservableBehaviourPreserved) {
  RandomProgramOptions Opts;
  Opts.Seed = GetParam();
  Opts.OpsPerFunction = 28;
  std::unique_ptr<Module> M = generateRandomProgram(Opts);
  TimedRun Before = baselineRun(*M);
  ASSERT_EQ(Before.Run.Status, RunStatus::Finished);
  OptimizeResult R = optimizeChecked(*M);
  TimedRun After = baselineRun(*R.M);
  ASSERT_EQ(After.Run.Status, RunStatus::Finished);
  EXPECT_EQ(After.Run.SinkHash, Before.Run.SinkHash);
  EXPECT_EQ(After.Run.ReturnValue.asInt(), Before.Run.ReturnValue.asInt());
  EXPECT_LE(After.Run.ExecutedInstrs, Before.Run.ExecutedInstrs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Range(uint64_t(1), uint64_t(21)));

TEST(OptimizerTest, WorksAcrossAllWorkloads) {
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, 48);
    TimedRun Before = baselineRun(*W.M);
    OptimizeResult R = optimizeChecked(*W.M);
    TimedRun After = baselineRun(*R.M);
    ASSERT_EQ(After.Run.Status, RunStatus::Finished) << Name;
    EXPECT_EQ(After.Run.SinkHash, Before.Run.SinkHash) << Name;
    EXPECT_LE(After.Run.ExecutedInstrs, Before.Run.ExecutedInstrs) << Name;
  }
}

} // namespace
