//===- tests/analysis/ExtensionsTest.cpp - Multi-hop & cache analyses ------===//
//
// Tests for the paper's proposed extensions (Sections 3.2 and 6): k-hop
// relative cost/benefit and the cache-effectiveness redefinition.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "analysis/CacheCost.h"
#include "analysis/MultiHop.h"
#include "ir/IRBuilder.h"
#include "support/OutStream.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

/// x = <5 ops>; a.f = x; y = a.f; z = y + 1; b.g = z; w = b.g; sink(w)
struct TwoHopProgram {
  std::unique_ptr<Module> M;
  InstrId StoreG = kNoInstr;
  InstrId LoadG = kNoInstr;
  uint64_t TagB = 0;
  FieldSlot SlotG = 0;
};

TwoHopProgram buildTwoHop(SlicingProfiler &P) {
  TwoHopProgram Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  ClassDecl *Bc = M.addClass("Bc");
  Bc->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg OA = B.alloc(A->getId());
  Reg OB = B.alloc(Bc->getId());
  // First hop: five instructions of stack work into a.f.
  Reg C1 = B.iconst(3);
  Reg C2 = B.iconst(4);
  Reg T1 = B.mul(C1, C2);
  Reg T2 = B.add(T1, C1);
  Reg X = B.mul(T2, T2);
  B.storeField(OA, A->getId(), "f", X);
  // Second hop: a.f -> +1 -> b.g.
  Reg Y = B.loadField(OA, A->getId(), "f");
  Reg One = B.iconst(1);
  Reg Z = B.add(Y, One);
  B.storeField(OB, Bc->getId(), "g", Z);
  Instruction *StoreG = B.block()->insts().back().get();
  Reg W = B.loadField(OB, Bc->getId(), "g");
  Instruction *LoadG = B.block()->insts().back().get();
  B.ncallVoid("sink", {W});
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  Out.StoreG = StoreG->getId();
  Out.LoadG = LoadG->getId();
  bool OK = M.resolveField(Bc->getId(), "g", Out.SlotG);
  EXPECT_TRUE(OK);
  NodeId NStore = soleNodeFor(P.graph(), Out.StoreG);
  Out.TagB = P.graph().node(NStore).EffectLoc.Tag;
  return Out;
}

TEST(MultiHopTest, OneHopEqualsDefinition5and6) {
  SlicingProfiler P;
  TwoHopProgram Prog = buildTwoHop(P);
  FrozenGraph G(P.graph());
  CostModel CM(G);
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    EXPECT_EQ(multiHopCost(G, N, 1), CM.hrac(N));
    EXPECT_EQ(multiHopBenefit(G, N, 1).Benefit, CM.hrab(N).Benefit);
  }
}

TEST(MultiHopTest, SecondHopIncludesUpstreamWork) {
  SlicingProfiler P;
  TwoHopProgram Prog = buildTwoHop(P);
  FrozenGraph G(P.graph());
  NodeId NStore = soleNodeFor(G, Prog.StoreG);
  ASSERT_NE(NStore, kNoNode);
  // 1-hop: store + add + one = 3.
  EXPECT_EQ(multiHopCost(G, NStore, 1), 3u);
  // 2-hop: + load a.f + store a.f + 5 first-hop instructions = 10.
  EXPECT_EQ(multiHopCost(G, NStore, 2), 10u);
  // 3 hops: nothing further to cross.
  EXPECT_EQ(multiHopCost(G, NStore, 3), multiHopCost(G, NStore, 2));
}

TEST(MultiHopTest, ForwardHopsReachTheConsumer) {
  SlicingProfiler P;
  TwoHopProgram Prog = buildTwoHop(P);
  FrozenGraph G(P.graph());
  // From the first hop's store (a.f), one hop sees nothing past the
  // write; the reader side: a.f's load reaches b.g's store at hop 1 but
  // the final sink only at hop 2.
  CostModel CM(G);
  NodeId NLoadG = soleNodeFor(G, Prog.LoadG);
  ASSERT_NE(NLoadG, kNoNode);
  EXPECT_TRUE(CM.hrab(NLoadG).ReachesNative);

  // The *first* hop's load (of a.f) does not reach the native within one
  // hop, but does within two.
  HeapLoc LocG{Prog.TagB, Prog.SlotG};
  LocCostBenefit OneHop = multiHopLocCostBenefit(G, LocG, 1);
  EXPECT_TRUE(OneHop.ReachesNative); // b.g's reader reaches sink directly.

  // Find a.f's location through the graph: it's the other non-static tag.
  for (uint64_t Tag : CostModel(G).allTags()) {
    if (Tag == Prog.TagB || DepGraph::isStaticTag(Tag))
      continue;
    for (FieldSlot Slot : CM.fieldsOf(Tag)) {
      LocCostBenefit H1 = multiHopLocCostBenefit(G, HeapLoc{Tag, Slot}, 1);
      LocCostBenefit H2 = multiHopLocCostBenefit(G, HeapLoc{Tag, Slot}, 2);
      EXPECT_FALSE(H1.ReachesNative);
      EXPECT_TRUE(H2.ReachesNative);
      EXPECT_GE(H2.Rab, H1.Rab);
    }
  }
}

TEST(MultiHopTest, MonotoneInHops) {
  // On a generated workload: k-hop costs/benefits never decrease with k.
  SlicingProfiler P;
  TwoHopProgram Prog = buildTwoHop(P);
  FrozenGraph G(P.graph());
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    uint64_t Prev = 0;
    for (unsigned K = 1; K <= 4; ++K) {
      uint64_t C = multiHopCost(G, N, K);
      EXPECT_GE(C, Prev);
      Prev = C;
    }
  }
}

//===----------------------------------------------------------------------===
// Cache effectiveness.
//===----------------------------------------------------------------------===

/// Two memo tables filled with expensive values: one is read back many
/// times (a good cache), the other exactly once per entry (pointless).
struct CacheProgram {
  std::unique_ptr<Module> M;
  AllocSiteId GoodSite = kNoAllocSite;
  AllocSiteId BadSite = kNoAllocSite;
};

CacheProgram buildCaches() {
  CacheProgram Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg N = B.iconst(32);
  Reg Good = B.allocArray(TypeKind::Int, N);
  Instruction *GoodAlloc = B.block()->insts().back().get();
  Reg Bad = B.allocArray(TypeKind::Int, N);
  Instruction *BadAlloc = B.block()->insts().back().get();
  Reg I = B.iconst(0);
  Reg One = B.iconst(1);
  Reg C7 = B.iconst(7);
  Reg Acc = B.iconst(0);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  // Expensive value, cached in both tables.
  Reg V1 = B.mul(I, C7);
  Reg V2 = B.mul(V1, V1);
  Reg V3 = B.add(V2, I);
  B.storeElem(Good, I, V3);
  B.storeElem(Bad, I, V3);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  // The good cache is consulted 8x per entry; the bad one once.
  Reg R = B.iconst(0);
  Reg Rounds = B.iconst(8);
  BasicBlock *RH = B.newBlock();
  BasicBlock *RB = B.newBlock();
  BasicBlock *RX = B.newBlock();
  B.br(RH);
  B.setBlock(RH);
  B.condBr(CmpOp::Lt, R, Rounds, RB, RX);
  B.setBlock(RB);
  Reg J = B.iconst(0);
  BasicBlock *JH = B.newBlock();
  BasicBlock *JB = B.newBlock();
  BasicBlock *JX = B.newBlock();
  B.br(JH);
  B.setBlock(JH);
  B.condBr(CmpOp::Lt, J, N, JB, JX);
  B.setBlock(JB);
  Reg GV = B.loadElem(Good, J);
  B.binInto(Acc, BinOp::Add, Acc, GV);
  B.binInto(J, BinOp::Add, J, One);
  B.br(JH);
  B.setBlock(JX);
  B.binInto(R, BinOp::Add, R, One);
  B.br(RH);
  B.setBlock(RX);
  Reg K = B.iconst(0);
  BasicBlock *KH = B.newBlock();
  BasicBlock *KB = B.newBlock();
  BasicBlock *KX = B.newBlock();
  B.br(KH);
  B.setBlock(KH);
  B.condBr(CmpOp::Lt, K, N, KB, KX);
  B.setBlock(KB);
  Reg BV = B.loadElem(Bad, K);
  B.binInto(Acc, BinOp::Add, Acc, BV);
  B.binInto(K, BinOp::Add, K, One);
  B.br(KH);
  B.setBlock(KX);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();
  Out.GoodSite = cast<AllocArrayInst>(GoodAlloc)->Site;
  Out.BadSite = cast<AllocArrayInst>(BadAlloc)->Site;
  return Out;
}

TEST(CacheCostTest, IneffectiveCacheRanksWorst) {
  CacheProgram Prog = buildCaches();
  SlicingProfiler P = profileRun(*Prog.M);
  CostModel CM(P.graph());
  std::vector<CacheScore> Rows = rankCacheEffectiveness(CM, *Prog.M);
  ASSERT_EQ(Rows.size(), 2u);
  // Least effective first: the once-read table.
  EXPECT_EQ(Rows[0].Site, Prog.BadSite);
  EXPECT_EQ(Rows[1].Site, Prog.GoodSite);
  // The once-read cache saves nothing (reads == writes).
  EXPECT_DOUBLE_EQ(Rows[0].SavedWork, 0.0);
  EXPECT_LT(Rows[0].Effectiveness, 1.0);
  // The reused cache saves 7 recomputations per entry.
  EXPECT_GT(Rows[1].SavedWork, 0.0);
  EXPECT_GT(Rows[1].Effectiveness, 1.0);
  StringOutStream OS;
  printCacheScores(Rows, OS);
  EXPECT_NE(OS.str().find("new int[]"), std::string::npos);
}

TEST(CacheCostTest, MinWritesFiltersTinyStructures) {
  CacheProgram Prog = buildCaches();
  SlicingProfiler P = profileRun(*Prog.M);
  CostModel CM(P.graph());
  CacheOptions Opts;
  Opts.MinWrites = 1000; // Above both tables' 32 writes.
  EXPECT_TRUE(rankCacheEffectiveness(CM, *Prog.M, Opts).empty());
}

} // namespace
