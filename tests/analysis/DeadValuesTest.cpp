//===- tests/analysis/DeadValuesTest.cpp - Table 1(c) metrics --------------===//

#include "../TestUtil.h"

#include "analysis/DeadValues.h"
#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

TEST(DeadValuesTest, StoreNeverReadIsDead) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C1 = B.iconst(1);
  Reg C2 = B.iconst(2);
  Reg DeadV = B.add(C1, C2);
  B.storeField(O, A->getId(), "f", DeadV); // Never read: dead sink.
  Instruction *DeadStore = B.block()->insts().back().get();
  Reg LiveV = B.mul(C1, C2);
  B.storeField(O, A->getId(), "g", LiveV);
  Reg L = B.loadField(O, A->getId(), "g");
  B.ncallVoid("sink", {L});
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R;
  SlicingProfiler P = profileRun(M, {}, &R);
  DeadValueAnalysis DV = computeDeadValues(P.graph(), R.ExecutedInstrs);

  NodeId NDeadStore = soleNodeFor(P.graph(), DeadStore->getId());
  ASSERT_NE(NDeadStore, kNoNode);
  EXPECT_TRUE(DV.Dead[NDeadStore]);
  // The add that feeds only the dead store is dead too (it is in D*)...
  NodeId NAdd = soleNodeFor(P.graph(), 3);
  EXPECT_TRUE(DV.Dead[NAdd]);
  // ...but the shared constants also feed the live mul, so they are live.
  NodeId NC1 = soleNodeFor(P.graph(), 1);
  EXPECT_FALSE(DV.Dead[NC1]);
  EXPECT_GT(DV.Metrics.ipd(), 0.0);
  EXPECT_GT(DV.Metrics.nld(), 0.0);
  EXPECT_LT(DV.Metrics.ipd(), 1.0);
}

TEST(DeadValuesTest, PredicateOnlyValues) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg C1 = B.iconst(1);
  Reg C2 = B.iconst(2);
  Reg Cond = B.add(C1, C2); // Used only in the predicate.
  Instruction *CondAdd = B.block()->insts().back().get();
  Reg Out = B.mul(C2, C2); // Reaches the native sink.
  Instruction *OutMul = B.block()->insts().back().get();
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, Cond, C2, T, E);
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ncallVoid("sink", {Out});
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R;
  SlicingProfiler P = profileRun(M, {}, &R);
  DeadValueAnalysis DV = computeDeadValues(P.graph(), R.ExecutedInstrs);

  NodeId NCond = soleNodeFor(P.graph(), CondAdd->getId());
  NodeId NOut = soleNodeFor(P.graph(), OutMul->getId());
  EXPECT_TRUE(DV.PredicateOnly[NCond]);
  EXPECT_FALSE(DV.Dead[NCond]);
  EXPECT_FALSE(DV.PredicateOnly[NOut]);
  EXPECT_FALSE(DV.Dead[NOut]);
  EXPECT_GT(DV.Metrics.ipp(), 0.0);
}

TEST(DeadValuesTest, ValueFeedingBothPredicateAndDeadSinkIsNotPredOnly) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C1 = B.iconst(1);
  Reg V = B.add(C1, C1); // Feeds the predicate AND a never-read store.
  Instruction *VAdd = B.block()->insts().back().get();
  B.storeField(O, A->getId(), "f", V);
  BasicBlock *T = B.newBlock();
  BasicBlock *E = B.newBlock();
  B.condBr(CmpOp::Gt, V, C1, T, E);
  B.setBlock(T);
  B.br(E);
  B.setBlock(E);
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R;
  SlicingProfiler P = profileRun(M, {}, &R);
  DeadValueAnalysis DV = computeDeadValues(P.graph(), R.ExecutedInstrs);
  NodeId NV = soleNodeFor(P.graph(), VAdd->getId());
  EXPECT_FALSE(DV.Dead[NV]);          // It does reach a consumer.
  EXPECT_FALSE(DV.PredicateOnly[NV]); // But not *only* predicates.
}

TEST(DeadValuesTest, WhollyDeadProgramApproachesFullIPD) {
  // Every produced value is stored and never read; nothing is consumed.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(7);
  Reg V = B.mul(C, C);
  B.storeField(O, A->getId(), "f", V);
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R;
  SlicingProfiler P = profileRun(M, {}, &R);
  DeadValueAnalysis DV = computeDeadValues(P.graph(), R.ExecutedInstrs);
  EXPECT_EQ(DV.Metrics.DeadNodes, DV.Metrics.TotalNodes);
  EXPECT_DOUBLE_EQ(DV.Metrics.nld(), 1.0);
  // IPD counts graph-covered instances over all executed instances (the
  // void ret has no node), so it is high but below 1.
  EXPECT_GT(DV.Metrics.ipd(), 0.5);
}

TEST(DeadValuesTest, EmptyGraphYieldsZeroMetrics) {
  DepGraph G;
  DeadValueAnalysis DV = computeDeadValues(G, 0);
  EXPECT_DOUBLE_EQ(DV.Metrics.ipd(), 0.0);
  EXPECT_DOUBLE_EQ(DV.Metrics.ipp(), 0.0);
  EXPECT_DOUBLE_EQ(DV.Metrics.nld(), 0.0);
}

} // namespace
