//===- tests/obs/MetricsTest.cpp - Telemetry registry ----------------------===//

#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/ParallelDriver.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::obs;

namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry R;
  MetricId C = R.counter("run.instructions");
  EXPECT_EQ(R.value(C), 0u);
  R.add(C, 5);
  R.add(C, 7);
  EXPECT_EQ(R.value(C), 12u);
  EXPECT_EQ(R.kind(C), MetricKind::Counter);
  EXPECT_EQ(R.name(C), "run.instructions");
}

TEST(MetricsRegistryTest, ReRegistrationReturnsSameId) {
  MetricsRegistry R;
  MetricId A = R.counter("x");
  MetricId B = R.counter("x");
  EXPECT_EQ(A, B);
  EXPECT_EQ(R.numMetrics(), 1u);
  EXPECT_EQ(R.find("x"), A);
  EXPECT_EQ(R.find("missing"), kNoMetric);
}

TEST(MetricsRegistryTest, GaugesSetAndTrackPeaks) {
  MetricsRegistry R;
  MetricId G = R.gauge("gcost.nodes");
  R.set(G, 10);
  R.set(G, 4);
  EXPECT_EQ(R.value(G), 4u);
  MetricId P = R.gauge("run.peak_frame_depth", Unit::Count, Merge::Max);
  R.setMax(P, 3);
  R.setMax(P, 9);
  R.setMax(P, 5);
  EXPECT_EQ(R.value(P), 9u);
}

TEST(MetricsRegistryTest, HistogramBucketsArePowersOfTwo) {
  MetricsRegistry R;
  MetricId H = R.histogram("shadow.object_slots");
  // Bucket i holds [2^(i-1), 2^i): 0 -> bucket 0, 1 -> 1, 2..3 -> 2,
  // 1024 -> 11.
  R.observe(H, 0);
  R.observe(H, 1);
  R.observe(H, 2);
  R.observe(H, 3);
  R.observe(H, 1024);
  EXPECT_EQ(R.histCount(H), 5u);
  EXPECT_EQ(R.histSum(H), 1030u);

  StringOutStream OS;
  R.writeJson(OS);
  // Sparse [bucket, count] pairs.
  EXPECT_NE(OS.str().find("[0, 1]"), std::string::npos);
  EXPECT_NE(OS.str().find("[1, 1]"), std::string::npos);
  EXPECT_NE(OS.str().find("[2, 2]"), std::string::npos);
  EXPECT_NE(OS.str().find("[11, 1]"), std::string::npos);
}

TEST(MetricsRegistryTest, ClearSupportsIdempotentRecomputation) {
  MetricsRegistry R;
  MetricId G = R.gauge("g");
  MetricId H = R.histogram("h");
  for (int Pass = 0; Pass != 3; ++Pass) {
    R.clear(G);
    R.clear(H);
    R.set(G, 42);
    R.observe(H, 8);
    R.observe(H, 16);
  }
  EXPECT_EQ(R.value(G), 42u);
  EXPECT_EQ(R.histCount(H), 2u);
  EXPECT_EQ(R.histSum(H), 24u);
}

TEST(MetricsRegistryTest, MergeAppliesDeclaredPolicies) {
  MetricsRegistry A, B;
  MetricId C = A.counter("c");
  MetricId GS = A.gauge("sum", Unit::Count, Merge::Sum);
  MetricId GM = A.gauge("max", Unit::Count, Merge::Max);
  MetricId GL = A.gauge("last", Unit::Count, Merge::Last);
  MetricId H = A.histogram("h");
  A.add(C, 10);
  A.set(GS, 3);
  A.set(GM, 7);
  A.set(GL, 1);
  A.observe(H, 4);
  B.counter("c");
  B.gauge("sum", Unit::Count, Merge::Sum);
  B.gauge("max", Unit::Count, Merge::Max);
  B.gauge("last", Unit::Count, Merge::Last);
  B.histogram("h");
  B.counter("only_in_b");
  B.add(B.find("c"), 5);
  B.set(B.find("sum"), 4);
  B.set(B.find("max"), 2);
  B.set(B.find("last"), 99);
  B.observe(B.find("h"), 4);
  B.add(B.find("only_in_b"), 8);

  A.mergeFrom(B);
  EXPECT_EQ(A.value(C), 15u);
  EXPECT_EQ(A.value(GS), 7u);
  EXPECT_EQ(A.value(GM), 7u);
  EXPECT_EQ(A.value(GL), 99u);
  EXPECT_EQ(A.histCount(H), 2u);
  EXPECT_EQ(A.histSum(H), 8u);
  // Metrics absent in the destination are appended.
  ASSERT_NE(A.find("only_in_b"), kNoMetric);
  EXPECT_EQ(A.value(A.find("only_in_b")), 8u);
}

TEST(MetricsRegistryTest, JsonExportFiltersWallTime) {
  MetricsRegistry R;
  R.add(R.counter("phase.interpret.nanos", Unit::Nanos), 1234);
  R.add(R.counter("run.count"), 1);

  StringOutStream Full, Det;
  R.writeJson(Full);
  R.writeJson(Det, /*IncludeTiming=*/false);
  EXPECT_NE(Full.str().find("lud.stats.v1"), std::string::npos);
  EXPECT_NE(Full.str().find("phase.interpret.nanos"), std::string::npos);
  EXPECT_NE(Det.str().find("lud.stats.v1"), std::string::npos);
  EXPECT_EQ(Det.str().find("phase.interpret.nanos"), std::string::npos);
  EXPECT_NE(Det.str().find("run.count"), std::string::npos);

  StringOutStream Csv;
  R.writeCsv(Csv, /*IncludeTiming=*/false);
  EXPECT_EQ(Csv.str().find("nanos"), std::string::npos);
}

TEST(PhaseTimerTest, RecordsSpansAndToleratesNullRegistry) {
  MetricsRegistry R;
  {
    PhaseTimer T(&R, "collect");
    (void)T;
  }
  {
    PhaseTimer T(&R, "collect");
    T.stop();
    T.stop(); // idempotent
  }
  EXPECT_EQ(R.value(R.find("phase.collect.spans")), 2u);
  EXPECT_NE(R.find("phase.collect.nanos"), kNoMetric);

  PhaseTimer Null(nullptr, "ignored"); // must be a no-op
  Null.stop();
}

// The acceptance bar for the telemetry fold: the registry a sharded
// session produces is byte-identical (wall time excluded) whatever the
// thread count, because shards fold in shard-index order and every merge
// policy is order-insensitive.
TEST(StatsDeterminismTest, ShardFoldIndependentOfThreadCount) {
  Workload W = buildWorkload("eclipse", 60);
  SessionConfig Cfg;
  Cfg.Clients = ClientSet::all();
  Cfg.CollectStats = true;

  std::string Ref;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ShardedSession S = runShardedSession(*W.M, 8, Cfg, Threads);
    ASSERT_TRUE(S.Session);
    ASSERT_TRUE(S.Session->stats());
    StringOutStream OS;
    S.Session->stats()->writeJson(OS, /*IncludeTiming=*/false);
    if (Ref.empty())
      Ref = OS.str();
    else
      EXPECT_EQ(Ref, OS.str()) << "divergence at Threads=" << Threads;
  }
  // Sanity: the folded registry saw all 8 shards.
  EXPECT_NE(Ref.find("\"name\": \"run.count\", \"kind\": \"counter\", "
                     "\"unit\": \"count\", \"value\": 8"),
            std::string::npos)
      << Ref;
}

} // namespace
