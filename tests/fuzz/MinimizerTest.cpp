//===- tests/fuzz/MinimizerTest.cpp - ddmin program reduction -------------===//
//
// The acceptance scenario for the fuzzer's minimizer: a planted program
// whose "failure" needs only two instructions out of 60+, which ddmin
// must isolate. Plus the non-reproducing and budget-capped paths.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

unsigned countStoreStatics(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &IPtr : BB->insts())
        if (IPtr->getKind() == Instruction::Kind::StoreStatic)
          ++N;
  return N;
}

unsigned countDroppable(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &BB : F->blocks())
      for (const auto &IPtr : BB->insts())
        if (!IPtr->isTerminator())
          ++N;
  return N;
}

// main: a long chain of integer junk with two static stores buried in it.
// Only the stores matter to the predicate below, so the minimum failing
// program is two instructions.
std::unique_ptr<Module> plantedModule() {
  auto M = std::make_unique<Module>();
  GlobalId G = M->addGlobal("g0", Type::makeInt());
  IRBuilder B(*M);
  Function *F = B.beginFunction("main", 0);
  Reg Acc = B.iconst(0);
  for (int I = 0; I != 30; ++I) {
    Reg C = B.iconst(I);
    Acc = B.bin(BinOp::Add, Acc, C);
    if (I == 10 || I == 20)
      B.storeStatic(G, Acc);
  }
  B.ret();
  B.endFunction();
  M->setEntry(F->getId());
  M->finalize();
  return M;
}

// The failure being chased: the program still runs to completion and
// still performs at least two static stores. Cheap structural check
// first, execution only when it could matter.
bool plantedFailure(const Module &C) {
  if (countStoreStatics(C) < 2)
    return false;
  return baselineRun(C).Run.Status == RunStatus::Finished;
}

TEST(MinimizerTest, ReducesPlantedFailureToItsCore) {
  std::unique_ptr<Module> M = plantedModule();
  ASSERT_GE(countDroppable(*M), 60u);
  ASSERT_TRUE(plantedFailure(*M));

  fuzz::MinimizeResult Min = fuzz::minimizeModule(*M, plantedFailure);
  EXPECT_TRUE(Min.Reproduced);
  EXPECT_GE(Min.OriginalInstrs, 60u);
  EXPECT_LE(Min.FinalInstrs, 10u);
  EXPECT_GE(Min.FinalInstrs, 2u); // The two stores can never be dropped.
  ASSERT_NE(Min.M, nullptr);
  EXPECT_EQ(countDroppable(*Min.M), Min.FinalInstrs);

  // The shrunken program still exhibits the failure and is well-formed.
  EXPECT_TRUE(plantedFailure(*Min.M));
  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*Min.M, Errors))
      << (Errors.empty() ? "" : Errors[0]);
}

TEST(MinimizerTest, NonReproducingFailureIsReportedNotShrunk) {
  std::unique_ptr<Module> M = plantedModule();
  fuzz::MinimizeResult Min =
      fuzz::minimizeModule(*M, [](const Module &) { return false; });
  EXPECT_FALSE(Min.Reproduced);
  ASSERT_NE(Min.M, nullptr);
  EXPECT_EQ(Min.FinalInstrs, Min.OriginalInstrs);
  EXPECT_EQ(countDroppable(*Min.M), countDroppable(*M));
}

TEST(MinimizerTest, TrialBudgetIsRespected) {
  std::unique_ptr<Module> M = plantedModule();
  fuzz::MinimizerOptions Opts;
  Opts.MaxTrials = 5;
  fuzz::MinimizeResult Min = fuzz::minimizeModule(*M, plantedFailure, Opts);
  EXPECT_TRUE(Min.Reproduced);
  EXPECT_LE(Min.Trials, 5u);
  // Whatever the budget allowed, the candidate kept must still fail.
  ASSERT_NE(Min.M, nullptr);
  EXPECT_TRUE(plantedFailure(*Min.M));
}

} // namespace
