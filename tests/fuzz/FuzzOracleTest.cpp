//===- tests/fuzz/FuzzOracleTest.cpp - Differential oracle ----------------===//
//
// Deterministic slice of the lud-fuzz loop: a fixed batch of seeds swept
// through exactly the knob derivations the fuzzer uses, each candidate
// cross-checked by the full oracle (caches flip, record->replay, sharded
// folds, GraphIO round trip). Also pins the RNG split contract the
// per-run reproducibility story depends on, and the strict generated-code
// verifier the fuzzer gates candidates with.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "workloads/Driver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

// The acceptance sweep: 25 fixed seed streams, the same derivation chain
// runFuzz uses (split stream -> program shape -> oracle config), every
// execution mode in agreement. A regression in any mode, in the
// generator's guarantees, or in the verifier shows up here with the
// failing stream's index and the oracle's first-difference diagnostic.
TEST(FuzzOracleTest, FixedSeedsAgreeAcrossAllModes) {
  RNG Base(1);
  for (uint64_t Run = 0; Run != 25; ++Run) {
    RNG R = Base.split(Run);
    RandomProgramOptions P = fuzz::randomProgramOptions(R);
    fuzz::OracleConfig OC = fuzz::randomOracleConfig(R);
    std::unique_ptr<Module> M = generateRandomProgram(P);
    ASSERT_NE(M, nullptr) << "stream " << Run;

    std::vector<std::string> Errors;
    ASSERT_TRUE(verifyGeneratedModule(*M, Errors))
        << "stream " << Run << ": " << (Errors.empty() ? "" : Errors[0]);

    fuzz::OracleResult O = fuzz::runOracle(*M, OC);
    EXPECT_TRUE(O.Ok) << "stream " << Run << " diverged in mode '" << O.Mode
                      << "': " << O.Detail << "\n  config: "
                      << fuzz::configFlags(OC);
  }
}

// Run k must be derivable without replaying runs 0..k-1: split(k) depends
// only on the base state and k, and distinct streams decorrelate.
TEST(FuzzOracleTest, SplitStreamsAreReproducibleAndIndependent) {
  RNG Base(42);
  RNG A = Base.split(7);
  uint64_t First = A.next();
  (void)A.next();

  // Splitting again from the same base replays the stream from scratch.
  RNG B = Base.split(7);
  EXPECT_EQ(B.next(), First);

  // Sibling streams start differently.
  RNG C = Base.split(8);
  EXPECT_NE(C.next(), First);

  // split() is const: deriving streams does not perturb the base draw.
  RNG Fresh(42);
  EXPECT_EQ(Base.next(), Fresh.next());
}

// The generator's hard guarantees under every feature the fuzzer can
// enable: recursion, aliasing, null flows, dead stores, globals. Programs
// must verify and terminate on their own (no interpreter budget).
TEST(FuzzOracleTest, AggressiveGeneratorOptionsStillTerminate) {
  for (uint64_t Seed : {2u, 9u, 23u, 31u, 58u}) {
    RandomProgramOptions P;
    P.Seed = Seed;
    P.NumFunctions = 6;
    P.OpsPerFunction = 50;
    P.NumGlobals = 3;
    P.Recursion = true;
    P.Aliasing = true;
    P.NullFlows = true;
    P.DeadStores = true;
    std::unique_ptr<Module> M = generateRandomProgram(P);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyGeneratedModule(*M, Errors)) << "seed " << Seed;
    TimedRun T = baselineRun(*M);
    EXPECT_EQ(T.Run.Status, RunStatus::Finished) << "seed " << Seed;
  }
}

// verifyGeneratedModule is strictly stronger than verifyModule: a read of
// a register no instruction ever writes passes the structural checks (the
// register is in range) but must be rejected for generated programs.
TEST(FuzzOracleTest, GeneratedVerifierRejectsUndefinedRegisterReads) {
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);
  Function *F = B.beginFunction("main", 0);
  Reg One = B.iconst(1);
  Reg Hole = B.newReg(); // Allocated, never written.
  Reg Sum = B.bin(BinOp::Add, One, Hole);
  (void)Sum;
  B.ret();
  B.endFunction();
  M->setEntry(F->getId());
  M->finalize();

  std::vector<std::string> Errors;
  EXPECT_TRUE(verifyModule(*M, Errors)) << (Errors.empty() ? "" : Errors[0]);
  Errors.clear();
  EXPECT_FALSE(verifyGeneratedModule(*M, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("never written"), std::string::npos) << Errors[0];
}

// The repro command line renders every knob the oracle config carries.
TEST(FuzzOracleTest, ConfigFlagsSpellOutEveryKnob) {
  fuzz::OracleConfig OC;
  OC.Slicing.ContextSlots = 16;
  std::string Flags = fuzz::configFlags(OC);
  EXPECT_NE(Flags.find("--slots=16"), std::string::npos) << Flags;
  EXPECT_NE(Flags.find("--clients="), std::string::npos) << Flags;
  EXPECT_NE(Flags.find("--thin-slicing="), std::string::npos) << Flags;
  EXPECT_NE(Flags.find("--context-sensitive="), std::string::npos) << Flags;
  EXPECT_NE(Flags.find("--caches="), std::string::npos) << Flags;

  EXPECT_EQ(clientSetName(ClientSet::none()), "none");
  EXPECT_EQ(clientSetName(ClientSet::all()), "all");
  EXPECT_EQ(clientSetName(ClientSet::copy() | ClientSet::typestate()),
            "copy,typestate");
  // The typed set keeps the legacy bit layout, so recorded uint32_t
  // configurations keep their meaning through the bridge constructor.
  EXPECT_EQ(ClientSet(0x7u), ClientSet::all());
  EXPECT_EQ(ClientSet(uint32_t(1)), ClientSet::copy());
}

} // namespace
