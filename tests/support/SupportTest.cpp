//===- tests/support/SupportTest.cpp - Support utilities -------------------===//

#include "support/Casting.h"
#include "support/OutStream.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

TEST(OutStreamTest, FormatsScalars) {
  StringOutStream OS;
  OS << "x=" << int64_t(-42) << " y=" << uint64_t(7) << " b=" << true
     << " c=" << 'Z';
  EXPECT_EQ(OS.str(), "x=-42 y=7 b=true c=Z");
}

TEST(OutStreamTest, FixedAndPadded) {
  StringOutStream OS;
  OS.printFixed(3.14159, 2);
  OS << '|';
  OS.padded("ab", 5);
  EXPECT_EQ(OS.str(), "3.14|   ab");
}

TEST(OutStreamTest, ClearResets) {
  StringOutStream OS;
  OS << "hello";
  OS.clear();
  OS << "bye";
  EXPECT_EQ(OS.str(), "bye");
}

TEST(OutStreamTest, StringViewAndStdString) {
  StringOutStream OS;
  std::string S = "abc";
  OS << S << std::string_view("def");
  EXPECT_EQ(OS.str(), "abcdef");
}

TEST(RNGTest, DeterministicForSeed) {
  RNG A(123), B(123), C(124);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  RNG A2(123), C2(124);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(RNGTest, BoundsRespected) {
  RNG R(7);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(17);
    EXPECT_LT(V, 17u);
    int64_t W = R.nextInRange(-5, 5);
    EXPECT_GE(W, -5);
    EXPECT_LE(W, 5);
  }
}

TEST(RNGTest, RangeEndpointsReachable) {
  RNG R(99);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000 && !(SawLo && SawHi); ++I) {
    int64_t V = R.nextInRange(0, 3);
    SawLo |= V == 0;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

// A small classof hierarchy to exercise the casting templates.
struct Shape {
  enum class Kind { Circle, Square } K;
  explicit Shape(Kind K) : K(K) {}
  static bool classof(const Shape *) { return true; }
};
struct Circle : Shape {
  Circle() : Shape(Kind::Circle) {}
  static bool classof(const Shape *S) { return S->K == Kind::Circle; }
};
struct Square : Shape {
  Square() : Shape(Kind::Square) {}
  static bool classof(const Shape *S) { return S->K == Kind::Square; }
};

TEST(CastingTest, IsaCastDynCast) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_FALSE(isa<Square>(S));
  EXPECT_EQ(cast<Circle>(S), &C);
  EXPECT_EQ(dyn_cast<Square>(S), nullptr);
  EXPECT_EQ(dyn_cast<Circle>(S), &C);
  const Shape *CS = &C;
  EXPECT_EQ(cast<Circle>(CS), &C);
  EXPECT_EQ(dyn_cast<Square>(CS), nullptr);
}

} // namespace
