//===- tests/support/FlatContainerTest.cpp - FlatMap/FlatSet ---------------===//
//
// The open-addressing tables under the profiler hot path: interning
// semantics, growth across rehashes, the reserved-key side slot, the
// raw-slot memo API's generation contract, and DepGraph::mergeFrom
// reproducing a sequentially built graph.
//
//===----------------------------------------------------------------------===//

#include "profiling/DepGraph.h"
#include "support/FlatMap.h"
#include "support/FlatSet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

using namespace lud;

namespace {

TEST(FlatMapTest, InsertFindAndGrowth) {
  FlatMap<uint64_t, int> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.count(7), 0u);

  // Enough keys to force several rehashes past the initial 8 slots.
  constexpr uint64_t N = 5000;
  for (uint64_t K = 0; K != N; ++K) {
    auto [V, Fresh] = M.insert(K * 3, int(K));
    EXPECT_TRUE(Fresh);
    EXPECT_EQ(V, int(K));
  }
  EXPECT_EQ(M.size(), size_t(N));
  for (uint64_t K = 0; K != N; ++K) {
    EXPECT_EQ(M.count(K * 3), 1u);
    EXPECT_EQ(M.at(K * 3), int(K));
  }
  EXPECT_EQ(M.count(1), 0u);
  EXPECT_EQ(M.find(1), M.end());

  // Re-insert returns the existing mapping untouched.
  auto [V, Fresh] = M.insert(0, 999);
  EXPECT_FALSE(Fresh);
  EXPECT_EQ(V, 0);

  // operator[] default-constructs on first touch.
  FlatMap<uint64_t, int> D;
  D[5] += 2;
  D[5] += 3;
  EXPECT_EQ(D.at(5), 5);
}

TEST(FlatMapTest, IterationCoversEveryEntryOnce) {
  FlatMap<uint64_t, uint64_t> M;
  std::map<uint64_t, uint64_t> Ref;
  for (uint64_t K = 1; K <= 300; ++K) {
    M.insert(K * K, K);
    Ref[K * K] = K;
  }
  std::map<uint64_t, uint64_t> Seen;
  for (const auto &[K, V] : M)
    EXPECT_TRUE(Seen.emplace(K, V).second) << "duplicate key " << K;
  EXPECT_EQ(Seen, Ref);
}

TEST(FlatMapTest, ReservedEmptyKeyUsesSideSlot) {
  const uint64_t Sentinel = ~uint64_t(0);
  FlatMap<uint64_t, int> M;
  EXPECT_EQ(M.count(Sentinel), 0u);
  auto [V1, Fresh1] = M.insert(Sentinel, 42);
  EXPECT_TRUE(Fresh1);
  EXPECT_EQ(V1, 42);
  auto [V2, Fresh2] = M.insert(Sentinel, 7);
  EXPECT_FALSE(Fresh2);
  EXPECT_EQ(V2, 42);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_EQ(M.at(Sentinel), 42);

  // The side slot shows up exactly once in iteration, alongside normal
  // keys, and survives rehashes.
  for (uint64_t K = 0; K != 100; ++K)
    M.insert(K);
  size_t SentinelSeen = 0;
  size_t Total = 0;
  for (const auto &[K, V] : M) {
    ++Total;
    if (K == Sentinel) {
      ++SentinelSeen;
      EXPECT_EQ(V, 42);
    }
  }
  EXPECT_EQ(SentinelSeen, 1u);
  EXPECT_EQ(Total, 101u);
}

TEST(FlatMapTest, RawSlotMemoFollowsGenerations) {
  FlatMap<uint64_t, int> M;
  auto [Slot, Fresh] = M.insertSlot(11, 1);
  EXPECT_TRUE(Fresh);
  uint64_t Gen = M.generation();
  M.valueAt(Slot) += 5;
  EXPECT_EQ(M.at(11), 6);

  // Within one generation the slot index stays valid across other
  // inserts; a rehash bumps the generation, after which the memoized
  // index must be refreshed via insertSlot.
  size_t Inserted = 0;
  while (M.generation() == Gen) {
    M.insert(100 + Inserted);
    ++Inserted;
  }
  EXPECT_GT(M.generation(), Gen);
  auto [NewSlot, Fresh2] = M.insertSlot(11);
  EXPECT_FALSE(Fresh2);
  EXPECT_EQ(M.valueAt(NewSlot), 6);

  // clear() also bumps the generation and empties the table.
  uint64_t Gen2 = M.generation();
  M.clear();
  EXPECT_GT(M.generation(), Gen2);
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.count(11), 0u);
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<uint64_t, int> M;
  M.reserve(1000);
  uint64_t Gen = M.generation();
  for (uint64_t K = 0; K != 1000; ++K)
    M.insert(K);
  EXPECT_EQ(M.generation(), Gen);
  EXPECT_EQ(M.size(), 1000u);
}

TEST(FlatSetTest, InsertContainsAndGrowth) {
  FlatSet<uint64_t> S;
  EXPECT_TRUE(S.empty());
  constexpr uint64_t N = 5000;
  for (uint64_t K = 0; K != N; ++K)
    EXPECT_TRUE(S.insert(K * 7 + 1));
  for (uint64_t K = 0; K != N; ++K) {
    EXPECT_FALSE(S.insert(K * 7 + 1));
    EXPECT_TRUE(S.contains(K * 7 + 1));
  }
  EXPECT_EQ(S.size(), size_t(N));
  EXPECT_FALSE(S.contains(0));

  std::set<uint64_t> Seen;
  for (uint64_t K : S)
    EXPECT_TRUE(Seen.insert(K).second);
  EXPECT_EQ(Seen.size(), size_t(N));

  EXPECT_GT(S.memoryBytes(), 0u);
  S.clear();
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.contains(8));
}

TEST(FlatSetTest, ReservedEmptyKeyInsertable) {
  const uint64_t Sentinel = ~uint64_t(0);
  FlatSet<uint64_t> S;
  EXPECT_FALSE(S.contains(Sentinel));
  EXPECT_TRUE(S.insert(Sentinel));
  EXPECT_FALSE(S.insert(Sentinel));
  EXPECT_TRUE(S.contains(Sentinel));
  EXPECT_EQ(S.size(), 1u);
  S.insert(3);
  size_t SentinelSeen = 0;
  for (uint64_t K : S)
    SentinelSeen += (K == Sentinel);
  EXPECT_EQ(SentinelSeen, 1u);
}

/// Builds one of two fragments of a small graph; Which selects the halves
/// so the sequential reference interleaves both.
void buildFragment(DepGraph &G, int Which) {
  // Nodes keyed (Instr, Domain); edges and per-location maps exercise
  // every merged side table.
  if (Which == 0 || Which == 2) {
    NodeId A = G.getOrCreate(1, 0);
    NodeId B = G.getOrCreate(2, 0);
    G.freq(A) += 3;
    G.freq(B) += 1;
    G.node(A).WritesHeap = true;
    G.addEdge(A, B);
    G.noteAlloc(G.makeTag(5, 0), A);
    G.noteWriter(HeapLoc{G.makeTag(5, 0), 2}, A);
    G.addRefEdge(B, A);
  }
  if (Which == 1 || Which == 2) {
    NodeId B = G.getOrCreate(2, 0);
    NodeId C = G.getOrCreate(3, 1);
    G.freq(B) += 2;
    G.freq(C) += 5;
    G.node(C).ReadsHeap = true;
    G.addEdge(B, C);
    G.addEdge(G.getOrCreate(1, 0), C);
    G.noteReader(HeapLoc{G.makeTag(5, 0), 2}, C);
    G.noteRefChild(HeapLoc{G.makeTag(5, 0), 2}, G.makeTag(9, 1));
  }
}

TEST(DepGraphMergeTest, MergeEqualsSequentialBuild) {
  DepGraph Seq;
  Seq.setContextSlots(8);
  buildFragment(Seq, 2);

  DepGraph G1, G2;
  G1.setContextSlots(8);
  G2.setContextSlots(8);
  buildFragment(G1, 0);
  buildFragment(G2, 1);
  std::vector<NodeId> Remap = G1.mergeFrom(G2);

  ASSERT_EQ(G1.numNodes(), Seq.numNodes());
  ASSERT_EQ(G1.numEdges(), Seq.numEdges());
  ASSERT_EQ(G1.numRefEdges(), Seq.numRefEdges());
  for (NodeId N = 0; N != NodeId(Seq.numNodes()); ++N) {
    const DepGraph::Node &A = G1.node(N);
    const DepGraph::Node &B = Seq.node(N);
    EXPECT_EQ(A.Instr, B.Instr);
    EXPECT_EQ(A.Domain, B.Domain);
    EXPECT_EQ(G1.freq(N), Seq.freq(N));
    EXPECT_EQ(A.ReadsHeap, B.ReadsHeap);
    EXPECT_EQ(A.WritesHeap, B.WritesHeap);
    std::vector<NodeId> AOut(A.Out), BOut(B.Out);
    std::sort(AOut.begin(), AOut.end());
    std::sort(BOut.begin(), BOut.end());
    EXPECT_EQ(AOut, BOut);
  }
  // Remap sends G2's ids to the merged graph's interning of the same
  // (Instr, Domain) keys.
  for (NodeId N = 0; N != NodeId(G2.numNodes()); ++N) {
    const DepGraph::Node &Src = G2.node(N);
    EXPECT_EQ(Remap[N], G1.lookup(Src.Instr, Src.Domain));
  }
  EXPECT_EQ(G1.totalFreq(), Seq.totalFreq());

  // Merging into an empty graph reproduces the source's numbering.
  DepGraph Fresh;
  Fresh.mergeFrom(Seq);
  ASSERT_EQ(Fresh.numNodes(), Seq.numNodes());
  for (NodeId N = 0; N != NodeId(Seq.numNodes()); ++N) {
    EXPECT_EQ(Fresh.node(N).Instr, Seq.node(N).Instr);
    EXPECT_EQ(Fresh.node(N).Domain, Seq.node(N).Domain);
    EXPECT_EQ(Fresh.freq(N), Seq.freq(N));
  }
}

TEST(FlatMapTest, CapacityForHoldsLoadFactorWithoutOverflow) {
  using M = FlatMap<uint64_t, int>;
  // 3/4 load: 8 slots hold 6 keys, 16 hold 12, 32 hold 24.
  EXPECT_EQ(M::capacityFor(0), 8u);
  EXPECT_EQ(M::capacityFor(6), 8u);
  EXPECT_EQ(M::capacityFor(7), 16u);
  EXPECT_EQ(M::capacityFor(12), 16u);
  EXPECT_EQ(M::capacityFor(13), 32u);

  // The old `Cap * 3 < N * 4` phrasing wrapped for N > SIZE_MAX / 4 and
  // reported the minimum capacity, silently under-reserving. The
  // overflow-free form keeps growing to the largest power of two.
  size_t Huge = SIZE_MAX / 4 + 1;
  size_t Cap = M::capacityFor(Huge);
  EXPECT_EQ(Cap, size_t(1) << (sizeof(size_t) * 8 - 1));
  EXPECT_GE(Cap - Cap / 4, Huge);
  // And it terminates even when no capacity can satisfy the request.
  EXPECT_EQ(M::capacityFor(SIZE_MAX), size_t(1) << (sizeof(size_t) * 8 - 1));
}

TEST(FlatMapTest, ReserveAvoidsRehashUpToTheReservedCount) {
  FlatMap<uint64_t, int> M;
  M.reserve(100);
  uint64_t Gen = M.generation();
  for (uint64_t K = 0; K != 100; ++K)
    M.insert(K + 1, int(K));
  EXPECT_EQ(M.generation(), Gen) << "reserve(100) did not pre-size for 100";
  EXPECT_EQ(M.size(), 100u);
}

TEST(FlatSetTest, GrowthAcrossLoadFactorBoundariesKeepsAllKeys) {
  // Walk insert counts across several grow boundaries (6, 12, 24, ...)
  // and verify membership stays exact through each rehash.
  FlatSet<uint64_t> S;
  S.reserve(5);
  for (uint64_t K = 0; K != 200; ++K) {
    EXPECT_TRUE(S.insert(K * 11 + 1));
    EXPECT_FALSE(S.insert(K * 11 + 1));
    for (uint64_t J = 0; J <= K; ++J)
      ASSERT_TRUE(S.contains(J * 11 + 1)) << "lost key after insert " << K;
    EXPECT_FALSE(S.contains(K * 11 + 2));
  }
  EXPECT_EQ(S.size(), 200u);
}

} // namespace
