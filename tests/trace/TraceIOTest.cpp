//===- tests/trace/TraceIOTest.cpp - lud.trace.v1 wire format --------------===//

#include "support/OutStream.h"
#include "trace/TraceIO.h"
#include "trace/TraceReplayer.h"
#include "runtime/ComposedProfiler.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace lud;
using namespace lud::trace;

namespace {

TEST(TraceIOTest, VarintRoundTrips) {
  const uint64_t Cases[] = {0,
                            1,
                            127,
                            128,
                            300,
                            (uint64_t(1) << 32) - 1,
                            uint64_t(1) << 32,
                            std::numeric_limits<uint64_t>::max()};
  StringOutStream OS;
  TraceWriter W(OS);
  for (uint64_t V : Cases)
    W.varint(V);
  W.flush();
  EXPECT_EQ(W.bytes(), OS.str().size());
  TraceReader R(OS.str());
  for (uint64_t V : Cases) {
    uint64_t Got = 1;
    ASSERT_TRUE(R.varint(Got));
    EXPECT_EQ(Got, V);
  }
  EXPECT_TRUE(R.atEnd());
}

TEST(TraceIOTest, SignedVarintRoundTrips) {
  const int64_t Cases[] = {0,
                           1,
                           -1,
                           63,
                           -64,
                           64,
                           -65,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min()};
  StringOutStream OS;
  TraceWriter W(OS);
  for (int64_t V : Cases)
    W.svarint(V);
  W.flush();
  TraceReader R(OS.str());
  for (int64_t V : Cases) {
    int64_t Got = 1;
    ASSERT_TRUE(R.svarint(Got));
    EXPECT_EQ(Got, V);
  }
}

TEST(TraceIOTest, FloatAndValueRoundTrip) {
  StringOutStream OS;
  TraceWriter W(OS);
  W.f64(3.141592653589793);
  W.f64(-0.0);
  W.value(Value::makeInt(-42));
  W.value(Value::makeFloat(2.5));
  W.value(Value::makeRef(7));
  W.value(Value::null());
  W.flush();

  TraceReader R(OS.str());
  double D;
  ASSERT_TRUE(R.f64(D));
  EXPECT_EQ(D, 3.141592653589793);
  ASSERT_TRUE(R.f64(D));
  EXPECT_EQ(D, -0.0);
  Value V;
  ASSERT_TRUE(R.value(V));
  EXPECT_EQ(V.Kind, ValueKind::Int);
  EXPECT_EQ(V.I, -42);
  ASSERT_TRUE(R.value(V));
  EXPECT_EQ(V.Kind, ValueKind::Float);
  EXPECT_EQ(V.F, 2.5);
  ASSERT_TRUE(R.value(V));
  EXPECT_EQ(V.Kind, ValueKind::Ref);
  EXPECT_EQ(V.R, 7u);
  ASSERT_TRUE(R.value(V));
  EXPECT_TRUE(V.isNullRef());
  EXPECT_TRUE(R.atEnd());
}

TEST(TraceIOTest, ReaderDiagnosesBadPrimitives) {
  {
    // Truncated varint: continuation bit set on the last byte.
    std::string Bytes = "\xff\xff";
    TraceReader R(Bytes);
    uint64_t V;
    EXPECT_FALSE(R.varint(V));
    EXPECT_NE(R.error().find("truncated varint"), std::string::npos);
  }
  {
    // Over-long varint: a continuation bit on the 10th byte. The payload
    // bytes are zero so this trips the length check, not the 64-bit
    // overflow check (which fires first for 0xff padding).
    std::string Bytes(10, '\x80');
    Bytes.push_back('\0');
    TraceReader R(Bytes);
    uint64_t V;
    EXPECT_FALSE(R.varint(V));
    EXPECT_NE(R.error().find("varint longer"), std::string::npos);
  }
  {
    // Truncated float.
    std::string Bytes = "\x01\x02\x03";
    TraceReader R(Bytes);
    double D;
    EXPECT_FALSE(R.f64(D));
    EXPECT_NE(R.error().find("truncated float"), std::string::npos);
  }
  {
    // Unknown value kind byte.
    std::string Bytes = "\x09";
    TraceReader R(Bytes);
    Value V;
    EXPECT_FALSE(R.value(V));
    EXPECT_NE(R.error().find("bad value kind"), std::string::npos);
  }
  {
    // First error latches; later reads keep failing without overwriting it.
    std::string Bytes = "";
    TraceReader R(Bytes);
    uint8_t B;
    EXPECT_FALSE(R.u8(B));
    std::string First = R.error();
    EXPECT_FALSE(R.u8(B));
    EXPECT_EQ(R.error(), First);
  }
}

/// Records a baseline (uninstrumented) run of \p M into a string.
std::string recordTrace(const Module &M) {
  StringOutStream Sink;
  SessionConfig Cfg;
  Cfg.Instrument = false;
  Cfg.RecordSink = &Sink;
  ProfileSession S(std::move(Cfg));
  S.run(M);
  return Sink.str();
}

/// Replays \p Bytes against \p M through an empty pipeline.
bool replayBytes(const Module &M, std::string_view Bytes, std::string &Err) {
  SessionConfig Cfg;
  Cfg.Instrument = false;
  ProfileSession S(std::move(Cfg));
  ReplayRun R = S.replay(M, Bytes);
  Err = R.Error;
  return R.Ok;
}

TEST(TraceIOTest, HeaderMismatchesAreDiagnosed) {
  Workload W = buildWorkload("fop", 16);
  std::string Bytes = recordTrace(*W.M);
  ASSERT_GT(Bytes.size(), kTraceMagicLen);

  std::string Err;
  // The genuine trace replays.
  EXPECT_TRUE(replayBytes(*W.M, Bytes, Err)) << Err;

  // Empty input.
  EXPECT_FALSE(replayBytes(*W.M, "", Err));
  EXPECT_NE(Err.find("empty trace"), std::string::npos);

  // Wrong magic.
  std::string Bad = Bytes;
  Bad[0] = 'X';
  EXPECT_FALSE(replayBytes(*W.M, Bad, Err));
  EXPECT_NE(Err.find("header"), std::string::npos);

  // Recorded against a different program.
  Workload Other = buildWorkload("chart", 32);
  EXPECT_FALSE(replayBytes(*Other.M, Bytes, Err));
  EXPECT_NE(Err.find("does not match the module"), std::string::npos);
}

TEST(TraceIOTest, EveryTruncationFailsCleanly) {
  Workload W = buildWorkload("fop", 8);
  std::string Bytes = recordTrace(*W.M);
  ASSERT_GT(Bytes.size(), 64u);
  // A proper prefix can never be a valid trace: the End event of the last
  // segment is either cut (truncated segment) or, if the cut lands exactly
  // after a segment... there is only one segment here, so every proper
  // prefix must fail — with a diagnostic, never a crash.
  size_t Step = Bytes.size() > 4096 ? 7 : 1;
  for (size_t Len = 0; Len < Bytes.size(); Len += Step) {
    std::string Err;
    EXPECT_FALSE(
        replayBytes(*W.M, std::string_view(Bytes).substr(0, Len), Err))
        << "prefix " << Len;
    EXPECT_FALSE(Err.empty()) << "prefix " << Len;
  }
}

TEST(TraceIOTest, BitFlipsNeverCrashTheReplayer) {
  Workload W = buildWorkload("fop", 8);
  std::string Bytes = recordTrace(*W.M);
  // Flip one bit at a sweep of positions; replay must return (true or
  // false), never assert or fault. Payload flips that decode to in-range
  // events may legitimately succeed.
  for (size_t I = 0; I < Bytes.size(); I += 13) {
    for (uint8_t Bit : {0x01, 0x40}) {
      std::string Mutated = Bytes;
      Mutated[I] = char(uint8_t(Mutated[I]) ^ Bit);
      std::string Err;
      if (!replayBytes(*W.M, Mutated, Err))
        EXPECT_FALSE(Err.empty()) << "flip at " << I;
    }
  }
}

TEST(TraceIOTest, BadEventKindByteIsDiagnosed) {
  Workload W = buildWorkload("fop", 8);
  std::string Bytes = recordTrace(*W.M);
  // Find the first event byte (right after the header varints) and replace
  // it with an out-of-range kind.
  TraceReader Probe(Bytes);
  ASSERT_TRUE(Probe.readHeader(*W.M));
  size_t EventStart = Probe.offset();
  std::string Bad = Bytes;
  Bad[EventStart] = char(200);
  std::string Err;
  EXPECT_FALSE(replayBytes(*W.M, Bad, Err));
  EXPECT_NE(Err.find("bad event kind byte 200"), std::string::npos) << Err;
  // Kind 0 is reserved-invalid.
  Bad[EventStart] = char(0);
  EXPECT_FALSE(replayBytes(*W.M, Bad, Err));
  EXPECT_NE(Err.find("bad event kind byte 0"), std::string::npos) << Err;
}

TEST(TraceIOTest, NominalBytesAndNamesCoverAllKinds) {
  for (unsigned K = 0; K != kNumEventKinds; ++K) {
    EXPECT_STRNE(eventKindName(EventKind(K)), "unknown");
    EXPECT_GE(nominalEventBytes(EventKind(K)), 1u);
  }
}

TEST(TraceIOTest, VarintRejectsPayloadBeyond64Bits) {
  // Nine 0xFF bytes carry bits 0..62; the 10th byte may only add bit 63.
  // Exactly that is UINT64_MAX and must decode.
  std::string Max(9, char(0xFF));
  Max += char(0x01);
  TraceReader Ok(Max);
  uint64_t V = 0;
  ASSERT_TRUE(Ok.varint(V));
  EXPECT_EQ(V, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(Ok.atEnd());

  // Any further payload bit in the 10th byte used to shift out silently,
  // decoding to the same value as a different byte sequence. Rejected now.
  for (uint8_t Tenth : {uint8_t(0x02), uint8_t(0x7E), uint8_t(0x7F)}) {
    std::string Over(9, char(0xFF));
    Over += char(Tenth);
    TraceReader R(Over);
    EXPECT_FALSE(R.varint(V)) << "tenth byte " << unsigned(Tenth);
    EXPECT_NE(R.error().find("overflows 64 bits"), std::string::npos)
        << R.error();
  }

  // A continuation bit on the 10th byte runs past the maximum length.
  std::string Long(10, char(0x81));
  TraceReader R(Long);
  EXPECT_FALSE(R.varint(V));
  EXPECT_NE(R.error().find("longer than 10 bytes"), std::string::npos)
      << R.error();
}

} // namespace
