//===- tests/trace/RecordReplayTest.cpp - Replay fidelity ------------------===//
//
// Pins the PR's central invariant: a replayed session is byte-identical to
// the live session it was recorded from — canonical Gcost serialization and
// client reports alike — at any shard and thread count, and the recorder
// stage itself is position-invariant in the pipeline.
//
//===----------------------------------------------------------------------===//

#include "profiling/GraphIO.h"
#include "profiling/NullnessProfiler.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/Interpreter.h"
#include "support/OutStream.h"
#include "trace/TraceRecorder.h"
#include "workloads/DaCapo.h"
#include "service/SessionManager.h"
#include "workloads/Driver.h"
#include "workloads/ParallelDriver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace lud;

namespace {

constexpr ClientSet kAllClients = ClientSet::all();

std::string graphBytes(const DepGraph &G) {
  StringOutStream OS;
  writeGraph(G, OS);
  return OS.str();
}

std::string clientReports(const ProfileSession &S, const Module &M) {
  StringOutStream OS;
  S.printClientReports(M, OS);
  return OS.str();
}

TEST(RecordReplayTest, ReplayedSessionIsByteIdenticalToLive) {
  Workload W = buildWorkload("chart", 96);
  StringOutStream Sink;
  SessionConfig RecCfg;
  RecCfg.Clients = kAllClients;
  RecCfg.RecordSink = &Sink;
  ProfileSession Live(RecCfg);
  Live.run(*W.M);
  ASSERT_TRUE(Live.recordError().empty()) << Live.recordError();
  ASSERT_NE(Live.recorder(), nullptr);
  EXPECT_GT(Live.recorder()->events(), 0u);
  EXPECT_EQ(Live.recorder()->bytes(), Sink.str().size());

  SessionConfig RepCfg;
  RepCfg.Clients = kAllClients;
  ProfileSession Replayed(RepCfg);
  ReplayRun R = Replayed.replay(*W.M, Sink.str());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Events, Live.recorder()->events());
  EXPECT_EQ(R.Segments, 1u);

  // The headline acceptance check: canonical Gcost serialization and the
  // client report sections match byte for byte.
  EXPECT_EQ(graphBytes(Replayed.slicing()->graph()),
            graphBytes(Live.slicing()->graph()));
  EXPECT_EQ(clientReports(Replayed, *W.M), clientReports(Live, *W.M));
}

TEST(RecordReplayTest, BaselineRecordingReplaysIntoFullAnalyses) {
  // Record an uninstrumented run — the recorder alone in the pipeline —
  // then attach every analysis at replay time. The result must match a
  // fully instrumented live run: the trace captures the hook stream, not
  // any profiler's view of it.
  Workload W = buildWorkload("fop", 64);
  StringOutStream Sink;
  SessionConfig RecCfg;
  RecCfg.Instrument = false;
  RecCfg.RecordSink = &Sink;
  ProfileSession Baseline(RecCfg);
  Baseline.run(*W.M);
  ASSERT_TRUE(Baseline.recordError().empty());
  EXPECT_EQ(Baseline.slicing(), nullptr);

  SessionConfig LiveCfg;
  LiveCfg.Clients = kAllClients;
  ProfileSession Live(LiveCfg);
  Live.run(*W.M);

  ProfileSession Replayed(LiveCfg);
  ReplayRun R = Replayed.replay(*W.M, Sink.str());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(graphBytes(Replayed.slicing()->graph()),
            graphBytes(Live.slicing()->graph()));
  EXPECT_EQ(clientReports(Replayed, *W.M), clientReports(Live, *W.M));
}

TEST(RecordReplayTest, RepeatedRunsAppendSegmentsThatReplayAsOneSession) {
  Workload W = buildWorkload("fop", 32);
  StringOutStream Sink;
  SessionConfig RecCfg;
  RecCfg.Clients = ClientSet::nullness();
  RecCfg.RecordSink = &Sink;
  ProfileSession Live(RecCfg);
  Live.run(*W.M);
  Live.run(*W.M);

  SessionConfig RepCfg;
  RepCfg.Clients = ClientSet::nullness();
  ProfileSession Replayed(RepCfg);
  ReplayRun R = Replayed.replay(*W.M, Sink.str());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Segments, 2u);
  EXPECT_EQ(graphBytes(Replayed.slicing()->graph()),
            graphBytes(Live.slicing()->graph()));
  EXPECT_EQ(clientReports(Replayed, *W.M), clientReports(Live, *W.M));
}

TEST(RecordReplayTest, RecorderPositionDoesNotChangeTraceOrClients) {
  // Hooks receive identical arguments at every pipeline position, so the
  // recorded bytes must not depend on where the recorder sits — and the
  // live stages must not notice it at all.
  Workload W = buildWorkload("fop", 64);
  const Module &M = *W.M;

  SlicingProfiler S0;
  NullnessProfiler N0;
  ComposedProfiler<SlicingProfiler, NullnessProfiler> P0(&S0, &N0);
  runModule(M, P0);
  const std::string RefGraph = graphBytes(S0.graph());
  const std::string RefNull = graphBytes(N0.graph());

  StringOutStream A, B, C;
  {
    SlicingProfiler S;
    NullnessProfiler N;
    trace::TraceRecorder R(A);
    ComposedProfiler<trace::TraceRecorder, SlicingProfiler, NullnessProfiler>
        P(&R, &S, &N);
    runModule(M, P);
    EXPECT_EQ(graphBytes(S.graph()), RefGraph);
    EXPECT_EQ(graphBytes(N.graph()), RefNull);
  }
  {
    SlicingProfiler S;
    NullnessProfiler N;
    trace::TraceRecorder R(B);
    ComposedProfiler<SlicingProfiler, trace::TraceRecorder, NullnessProfiler>
        P(&S, &R, &N);
    runModule(M, P);
    EXPECT_EQ(graphBytes(S.graph()), RefGraph);
    EXPECT_EQ(graphBytes(N.graph()), RefNull);
  }
  {
    SlicingProfiler S;
    NullnessProfiler N;
    trace::TraceRecorder R(C);
    ComposedProfiler<SlicingProfiler, NullnessProfiler, trace::TraceRecorder>
        P(&S, &N, &R);
    runModule(M, P);
    EXPECT_EQ(graphBytes(S.graph()), RefGraph);
    EXPECT_EQ(graphBytes(N.graph()), RefNull);
  }
  ASSERT_FALSE(A.str().empty());
  EXPECT_EQ(A.str(), B.str());
  EXPECT_EQ(A.str(), C.str());
}

TEST(RecordReplayTest, ShardedReplayMatchesLiveAtAnyThreadCount) {
  Workload W = buildWorkload("eclipse", 64);
  const std::string Base = ::testing::TempDir() + "lud_rr_trace";
  for (unsigned Shards : {1u, 8u}) {
    SessionConfig Cfg;
    Cfg.Clients = kAllClients;

    SessionConfig RecCfg = Cfg;
    RecCfg.RecordPath = Base;
    ShardedSession Live = runShardedSession(*W.M, Shards, RecCfg, 4);
    ASSERT_TRUE(Live.Error.empty()) << Live.Error;
    ASSERT_TRUE(Live.Session);
    EXPECT_GT(Live.Events, 0u);
    const std::string LiveGraph = graphBytes(Live.Session->slicing()->graph());
    const std::string LiveReports = clientReports(*Live.Session, *W.M);

    std::vector<std::string> Paths;
    for (unsigned S = 0; S != Shards; ++S)
      Paths.push_back(shardTracePath(Base, S, Shards));

    for (unsigned Threads : {1u, 4u}) {
      ShardedSession Rep = replayShardedSession(*W.M, Paths, Cfg, Threads);
      ASSERT_TRUE(Rep.Error.empty()) << Rep.Error;
      ASSERT_TRUE(Rep.Session);
      EXPECT_EQ(Rep.Events, Live.Events);
      EXPECT_EQ(graphBytes(Rep.Session->slicing()->graph()), LiveGraph)
          << Shards << " shards, " << Threads << " threads";
      EXPECT_EQ(clientReports(*Rep.Session, *W.M), LiveReports);
    }
    for (const std::string &P : Paths)
      std::remove(P.c_str());
  }
}

TEST(RecordReplayTest, TelemetryCoversRecordAndReplay) {
  Workload W = buildWorkload("fop", 32);
  StringOutStream Sink;
  SessionConfig RecCfg;
  RecCfg.CollectStats = true;
  RecCfg.RecordSink = &Sink;
  ProfileSession Live(RecCfg);
  Live.run(*W.M);
  ASSERT_NE(Live.stats(), nullptr);
  StringOutStream Text;
  Live.stats()->writeText(Text);
  EXPECT_NE(Text.str().find("trace.events"), std::string::npos);
  EXPECT_NE(Text.str().find("trace.bytes"), std::string::npos);
  EXPECT_NE(Text.str().find("trace.compression_ppm"), std::string::npos);

  SessionConfig RepCfg;
  RepCfg.CollectStats = true;
  ProfileSession Replayed(RepCfg);
  ReplayRun R = Replayed.replay(*W.M, Sink.str());
  ASSERT_TRUE(R.Ok) << R.Error;
  StringOutStream RText;
  Replayed.stats()->writeText(RText);
  EXPECT_NE(RText.str().find("replay.events"), std::string::npos);
  EXPECT_NE(RText.str().find("replay.segments"), std::string::npos);
}

TEST(RecordReplayTest, FileErrorsAreReported) {
  Workload W = buildWorkload("fop", 8);
  SessionConfig Cfg;
  ProfileSession S(Cfg);
  ReplayRun R = S.replayFile(*W.M, "/nonexistent/trace.bin");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot read"), std::string::npos);

  ShardedSession Sharded = replayShardedSession(
      *W.M, {std::string("/nonexistent/trace.bin")}, SessionConfig{}, 1);
  EXPECT_FALSE(Sharded.Error.empty());
  EXPECT_EQ(Sharded.Session, nullptr);
}

TEST(RecordReplayTest, UnwritableRecordPathIsSurfacedNotFatal) {
  Workload W = buildWorkload("fop", 8);
  SessionConfig Cfg;
  Cfg.RecordPath = "/nonexistent-dir/trace.bin";
  ProfileSession S(Cfg);
  TimedRun T = S.run(*W.M);
  // The run proceeds unrecorded; the error is available for the caller.
  EXPECT_GT(T.Run.ExecutedInstrs, 0u);
  EXPECT_NE(S.recordError().find("cannot write"), std::string::npos);
  EXPECT_EQ(S.recorder(), nullptr);
}

} // namespace
