//===- tests/profiling/QuotientTest.cpp - Definition 1 vs Definition 2 -----===//
//
// Soundness of abstract dynamic thin slicing: the abstract graph
// (Definition 2) must be the quotient of the concrete instance graph
// (Definition 1) under the abstraction function. Checked over the random
// program corpus and a DaCapo workload:
//
//   1. The distinct (instruction, domain) classes among concrete nodes are
//      exactly the abstract nodes, with matching frequencies.
//   2. Every concrete def-use edge maps to an abstract edge (or collapses
//      onto one node).
//   3. Abstract cost (Definition 4) over-approximates the absolute cost
//      (Definition 3) of every instance of the node — the imprecision
//      direction the paper states.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"
#include "ir/IRBuilder.h"
#include "profiling/ConcreteProfiler.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/Interpreter.h"
#include "workloads/DaCapo.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <map>

using namespace lud;

namespace {

struct BothRuns {
  SlicingProfiler Abstract;
  ConcreteProfiler Concrete;

  explicit BothRuns(const Module &M, uint32_t Slots = 16)
      : Abstract(SlicingConfig{Slots, ~uint64_t(0), true, true, true}),
        Concrete(Slots) {
    {
      Heap H;
      Interpreter<SlicingProfiler> I(M, H, Abstract);
      RunResult R = I.run();
      EXPECT_EQ(R.Status, RunStatus::Finished);
    }
    {
      Heap H;
      Interpreter<ConcreteProfiler> I(M, H, Concrete);
      RunResult R = I.run();
      EXPECT_EQ(R.Status, RunStatus::Finished);
    }
    EXPECT_FALSE(Concrete.overflowed());
  }
};

void checkQuotient(const Module &M, const BothRuns &B) {
  (void)M;
  const DepGraph &G = B.Abstract.graph();
  const auto &CNodes = B.Concrete.nodes();

  // (1) Classes <-> abstract nodes, frequencies match.
  std::map<std::pair<InstrId, uint32_t>, uint64_t> ClassFreq;
  for (const auto &CN : CNodes)
    ++ClassFreq[{CN.Instr, CN.AbsDomain}];
  ASSERT_EQ(ClassFreq.size(), G.numNodes());
  for (const auto &[Key, Freq] : ClassFreq) {
    NodeId N = G.lookup(Key.first, Key.second);
    ASSERT_NE(N, kNoNode) << "missing abstract node for class";
    EXPECT_EQ(G.freq(N), Freq) << "frequency mismatch";
  }

  // (2) Every concrete edge maps to an abstract edge.
  for (CNodeId CN = 0; CN != CNodeId(CNodes.size()); ++CN) {
    NodeId From = G.lookup(CNodes[CN].Instr, CNodes[CN].AbsDomain);
    ASSERT_NE(From, kNoNode);
    for (CNodeId Succ : CNodes[CN].Out) {
      NodeId To = G.lookup(CNodes[Succ].Instr, CNodes[Succ].AbsDomain);
      ASSERT_NE(To, kNoNode);
      if (From == To)
        continue; // Collapsed self-dependence.
      bool Found = false;
      for (NodeId S : G.node(From).Out)
        Found |= S == To;
      EXPECT_TRUE(Found) << "concrete edge missing in abstract graph";
    }
  }

  // (3) Abstract cost >= absolute cost of every instance.
  CostModel CM(G);
  for (CNodeId CN = 0; CN != CNodeId(CNodes.size()); ++CN) {
    NodeId N = G.lookup(CNodes[CN].Instr, CNodes[CN].AbsDomain);
    EXPECT_GE(CM.abstractCost(N), B.Concrete.absoluteCost(CN));
  }
}

class QuotientTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuotientTest, AbstractIsQuotientOfConcrete) {
  RandomProgramOptions Opts;
  Opts.Seed = GetParam();
  Opts.OpsPerFunction = 20;
  Opts.NumFunctions = 4;
  std::unique_ptr<Module> M = generateRandomProgram(Opts);
  BothRuns B(*M);
  checkQuotient(*M, B);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotientTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(QuotientTest, HoldsOnDaCapoWorkload) {
  Workload W = buildWorkload("chart", 24);
  BothRuns B(*W.M);
  checkQuotient(*W.M, B);
}

TEST(QuotientTest, AbsoluteCostMatchesFigure1) {
  // On the straight-line Figure 1 program the absolute and abstract costs
  // coincide (one instance per instruction).
  Module M;
  IRBuilder Bl(M);
  Bl.beginFunction("f", 1);
  Reg Two = Bl.iconst(2);
  Reg Sh = Bl.bin(BinOp::Shr, 0, Two);
  Bl.ret(Sh);
  Bl.endFunction();
  Bl.beginFunction("main", 0);
  Reg A = Bl.iconst(0);
  Reg C = Bl.call("f", {A});
  Reg Three = Bl.iconst(3);
  Reg D = Bl.mul(C, Three);
  Reg Bv = Bl.add(C, D);
  Bl.ncallVoid("sink", {Bv});
  Bl.ret();
  Bl.endFunction();
  M.finalize();

  BothRuns B(M);
  InstrId AddId = 7;
  std::vector<CNodeId> Instances = B.Concrete.instancesOf(AddId);
  ASSERT_EQ(Instances.size(), 1u);
  EXPECT_EQ(B.Concrete.absoluteCost(Instances[0]), 7u);
  CostModel CM(B.Abstract.graph());
  EXPECT_EQ(CM.abstractCost(B.Abstract.graph().lookup(AddId, 0)), 7u);
}

TEST(QuotientTest, AbstractCostOverApproximatesInLoops) {
  // acc-independent values merged into one node make the abstract cost
  // exceed the absolute cost of early instances.
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Acc = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(20);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.binInto(Acc, BinOp::Add, Acc, I);
  Instruction *AccAdd = B.block()->insts().back().get();
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();

  BothRuns Runs(M);
  std::vector<CNodeId> Instances = Runs.Concrete.instancesOf(AccAdd->getId());
  ASSERT_EQ(Instances.size(), 20u);
  CostModel CM(Runs.Abstract.graph());
  NodeId Abs = Runs.Abstract.graph().lookup(AccAdd->getId(), 0);
  ASSERT_NE(Abs, kNoNode);
  uint64_t AbstractCost = CM.abstractCost(Abs);
  // First instance: tiny absolute cost; abstract cost covers the whole
  // loop history — strict over-approximation.
  EXPECT_LT(Runs.Concrete.absoluteCost(Instances.front()), AbstractCost);
  // Last instance: still bounded by the abstract cost.
  EXPECT_LE(Runs.Concrete.absoluteCost(Instances.back()), AbstractCost);
}

} // namespace
