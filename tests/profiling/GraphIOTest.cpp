//===- tests/profiling/GraphIOTest.cpp - Gcost serialization ---------------===//

#include "../TestUtil.h"

#include "analysis/CostModel.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/IRBuilder.h"
#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

std::unique_ptr<DepGraph> roundTrip(const DepGraph &G) {
  StringOutStream OS;
  writeGraph(G, OS);
  std::vector<std::string> Errors;
  std::unique_ptr<DepGraph> G2 = readGraph(OS.str(), Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  return G2;
}

TEST(GraphIOTest, RoundTripPreservesStructure) {
  Workload W = buildWorkload("eclipse", 64);
  ProfiledRun P = profiledRun(*W.M);
  const DepGraph &G = P.Prof->graph();
  std::unique_ptr<DepGraph> G2 = roundTrip(G);
  ASSERT_TRUE(G2);

  ASSERT_EQ(G2->numNodes(), G.numNodes());
  EXPECT_EQ(G2->numEdges(), G.numEdges());
  EXPECT_EQ(G2->numRefEdges(), G.numRefEdges());
  EXPECT_EQ(G2->contextSlots(), G.contextSlots());
  EXPECT_EQ(G2->totalFreq(), G.totalFreq());
  EXPECT_EQ(G2->writers().size(), G.writers().size());
  EXPECT_EQ(G2->readers().size(), G.readers().size());
  EXPECT_EQ(G2->refChildren().size(), G.refChildren().size());
  EXPECT_EQ(G2->allocNodes().size(), G.allocNodes().size());
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    const DepGraph::Node &A = G.node(N);
    const DepGraph::Node &B = G2->node(N);
    ASSERT_EQ(A.Instr, B.Instr);
    ASSERT_EQ(A.Domain, B.Domain);
    ASSERT_EQ(G.freq(N), G2->freq(N));
    ASSERT_EQ(A.Consumer, B.Consumer);
    ASSERT_EQ(A.ReadsHeap, B.ReadsHeap);
    ASSERT_EQ(A.WritesHeap, B.WritesHeap);
    ASSERT_EQ(A.In.size(), B.In.size());
    ASSERT_EQ(A.Out.size(), B.Out.size());
  }
}

TEST(GraphIOTest, OfflineAnalysesMatchOnline) {
  // The Section 3.2 workflow: serialize Gcost, reload it "offline", and
  // get identical analysis results.
  Workload W = buildWorkload("chart", 100);
  ProfiledRun P = profiledRun(*W.M);
  std::unique_ptr<DepGraph> G2 = roundTrip(P.Prof->graph());
  ASSERT_TRUE(G2);

  CostModel OnCM(P.Prof->graph());
  CostModel OffCM(*G2);
  LowUtilityReport OnReport(OnCM, *W.M);
  LowUtilityReport OffReport(OffCM, *W.M);
  ASSERT_EQ(OnReport.sites().size(), OffReport.sites().size());
  for (size_t I = 0; I != OnReport.sites().size(); ++I) {
    EXPECT_EQ(OnReport.sites()[I].Site, OffReport.sites()[I].Site);
    EXPECT_DOUBLE_EQ(OnReport.sites()[I].NRac, OffReport.sites()[I].NRac);
    EXPECT_DOUBLE_EQ(OnReport.sites()[I].NRab, OffReport.sites()[I].NRab);
  }

  BloatMetrics On =
      computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs).Metrics;
  BloatMetrics Off = computeDeadValues(*G2, P.Run.ExecutedInstrs).Metrics;
  EXPECT_EQ(On.DeadFreq, Off.DeadFreq);
  EXPECT_EQ(On.PredOnlyFreq, Off.PredOnlyFreq);
  EXPECT_EQ(On.DeadNodes, Off.DeadNodes);
}

TEST(GraphIOTest, MergedGraphRoundTripsByteIdentical) {
  // The parallel driver serializes graphs that went through mergeFrom;
  // the merged form must survive a serialize -> parse -> serialize cycle
  // byte for byte, or offline analyses of sharded runs drift.
  Workload W = buildWorkload("eclipse", 48);
  ProfiledRun A = profiledRun(*W.M);
  ProfiledRun B = profiledRun(*W.M);
  A.Prof->mergeFrom(*B.Prof);

  StringOutStream First;
  writeGraph(A.Prof->graph(), First);
  std::vector<std::string> Errors;
  std::unique_ptr<DepGraph> G2 = readGraph(First.str(), Errors);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
  ASSERT_TRUE(G2);
  StringOutStream Second;
  writeGraph(*G2, Second);
  EXPECT_EQ(First.str(), Second.str());
}

TEST(GraphIOTest, RejectsMalformedInput) {
  struct Case {
    const char *Text;
    const char *Expect;
  };
  const Case Cases[] = {
      {"", "header"},
      {"ludgraph 2\nend\n", "header"},
      {"ludgraph 1\nnode 0 0\nend\n", "malformed node"},
      {"ludgraph 1\nedge 0 1\nend\n", "malformed edge"},
      {"ludgraph 1\nbogus\nend\n", "unknown record"},
      {"ludgraph 1\nslots 4\n", "missing 'end'"},
  };
  for (const Case &C : Cases) {
    std::vector<std::string> Errors;
    std::unique_ptr<DepGraph> G = readGraph(C.Text, Errors);
    EXPECT_EQ(G, nullptr) << C.Text;
    ASSERT_FALSE(Errors.empty()) << C.Text;
    EXPECT_NE(Errors[0].find(C.Expect), std::string::npos)
        << "got: " << Errors[0];
  }
}

TEST(GraphIOTest, RejectsOutOfRangeFields) {
  // A valid two-node prefix every case builds on.
  const std::string Head = "ludgraph 1\nslots 4\n"
                           "node 0 1 0 5 0 0 0 0 0 0 0 0\n"
                           "node 1 2 0 5 0 0 0 0 0 0 0 0\n";
  struct Case {
    const char *Line;
    const char *Expect;
  };
  const Case Cases[] = {
      // Enum discriminants past the last enumerator.
      {"node 2 3 0 5 3 0 0 0 0 0 0 0", "bad consumer kind"},
      {"node 2 3 0 5 0 4 0 0 0 0 0 0", "bad effect kind"},
      // 32-bit fields fed 2^32.
      {"node 2 4294967296 0 5 0 0 0 0 0 0 0 0", "out of 32-bit range"},
      {"node 2 3 4294967296 5 0 0 0 0 0 0 0 0", "out of 32-bit range"},
      {"node 2 3 0 5 0 0 0 4294967296 0 0 0 0", "out of 32-bit range"},
      // Flags must be 0/1.
      {"node 2 3 0 5 0 0 0 0 2 0 0 0", "node flag out of range"},
      {"node 2 3 0 5 0 0 0 0 0 0 0 7", "node flag out of range"},
      // Trailing junk on fixed-arity records.
      {"node 2 3 0 5 0 0 0 0 0 0 0 0 junk", "malformed node"},
      {"edge 0 1 junk", "malformed edge"},
      {"refedge 0 1 2", "malformed edge"},
      {"allocnode 7 0 junk", "malformed allocnode"},
      {"slots 4 junk", "bad slot count"},
      {"end junk", "junk after 'end'"},
      // Junk tokens inside var-arity location maps.
      {"writer 7 0 1 junk", "junk token in location map"},
      {"reader 7 0 junk", "junk token in location map"},
      {"refchild 7 0 1 junk", "junk token in refchild"},
  };
  for (const Case &C : Cases) {
    std::vector<std::string> Errors;
    std::string Text = Head + C.Line + "\nend\n";
    std::unique_ptr<DepGraph> G = readGraph(Text, Errors);
    EXPECT_EQ(G, nullptr) << C.Line;
    ASSERT_FALSE(Errors.empty()) << C.Line;
    EXPECT_NE(Errors[0].find(C.Expect), std::string::npos)
        << "for '" << C.Line << "' got: " << Errors[0];
  }
}

TEST(GraphIOTest, ClippedDumpFailsWithDiagnostic) {
  // Truncating a real dump at any line boundary must produce an error (a
  // diagnostic, never a crash or a silently smaller graph).
  Workload W = buildWorkload("chart", 64);
  ProfiledRun P = profiledRun(*W.M);
  StringOutStream OS;
  writeGraph(P.Prof->graph(), OS);
  const std::string &Full = OS.str();
  for (size_t Frac = 1; Frac != 8; ++Frac) {
    size_t Cut = Full.find('\n', Full.size() * Frac / 8);
    if (Cut == std::string::npos || Cut + 1 == Full.size())
      continue;
    std::vector<std::string> Errors;
    std::unique_ptr<DepGraph> G =
        readGraph(std::string_view(Full).substr(0, Cut + 1), Errors);
    EXPECT_EQ(G, nullptr) << "cut at " << Cut;
    EXPECT_FALSE(Errors.empty()) << "cut at " << Cut;
  }
}

TEST(GraphIOTest, BitFlippedDumpNeverCrashes) {
  // Deterministically corrupt single characters across the dump: parsing
  // must either succeed (the flip hit a don't-care byte) or fail cleanly.
  Workload W = buildWorkload("fop", 48);
  ProfiledRun P = profiledRun(*W.M);
  StringOutStream OS;
  writeGraph(P.Prof->graph(), OS);
  std::string Text = OS.str();
  for (size_t I = 0; I < Text.size(); I += 97) {
    std::string Mutated = Text;
    Mutated[I] = char(Mutated[I] ^ 0x15);
    std::vector<std::string> Errors;
    std::unique_ptr<DepGraph> G = readGraph(Mutated, Errors);
    if (!G)
      EXPECT_FALSE(Errors.empty()) << "flip at " << I;
  }
}

TEST(GraphIOTest, EmptyGraphRoundTrips) {
  DepGraph G;
  G.setContextSlots(8);
  std::unique_ptr<DepGraph> G2 = roundTrip(G);
  ASSERT_TRUE(G2);
  EXPECT_EQ(G2->numNodes(), 0u);
  EXPECT_EQ(G2->contextSlots(), 8u);
}

} // namespace
