//===- tests/profiling/MergeEquivalenceTest.cpp - Merge + cache paths ------===//
//
// The two equivalence contracts the hot-path overhaul rests on:
//
//  * Merging: one profiler observing runs back to back, a fold of
//    single-run profilers via SlicingProfiler::mergeFrom, and the sharded
//    parallel driver at any thread count all produce the same profile.
//
//  * Caching: SlicingConfig::HotPathCaches toggles the memo caches only —
//    the graph, frequencies, predicate outcomes and CR are identical with
//    the caches on and off.
//
//===----------------------------------------------------------------------===//

#include "../TestUtil.h"

#include "workloads/DaCapo.h"
#include "workloads/ParallelDriver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

using namespace lud;
using namespace lud::test;

namespace {

/// Structural equality of two dependence graphs, node ids included (the
/// merge contract is numbering-exact, not just isomorphism).
void expectGraphsEqual(const DepGraph &A, const DepGraph &B) {
  ASSERT_EQ(A.numNodes(), B.numNodes());
  ASSERT_EQ(A.numEdges(), B.numEdges());
  ASSERT_EQ(A.numRefEdges(), B.numRefEdges());
  EXPECT_EQ(A.totalFreq(), B.totalFreq());
  for (NodeId N = 0; N != NodeId(A.numNodes()); ++N) {
    const DepGraph::Node &X = A.node(N);
    const DepGraph::Node &Y = B.node(N);
    ASSERT_EQ(X.Instr, Y.Instr) << "node " << N;
    ASSERT_EQ(X.Domain, Y.Domain) << "node " << N;
    EXPECT_EQ(A.freq(N), B.freq(N)) << "node " << N;
    EXPECT_EQ(X.ReadsHeap, Y.ReadsHeap);
    EXPECT_EQ(X.WritesHeap, Y.WritesHeap);
    EXPECT_EQ(X.IsAlloc, Y.IsAlloc);
    EXPECT_EQ(X.StoredRef, Y.StoredRef);
    EXPECT_EQ(X.Consumer, Y.Consumer);
    EXPECT_EQ(X.Effect, Y.Effect);
    std::vector<NodeId> XOut(X.Out), YOut(Y.Out);
    std::sort(XOut.begin(), XOut.end());
    std::sort(YOut.begin(), YOut.end());
    EXPECT_EQ(XOut, YOut) << "out-edges of node " << N;
  }
}

/// Location-keyed node lists as a sorted ordinary map, for order-free
/// comparison across FlatMap iteration orders.
template <typename MapT>
std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>>
normalized(const MapT &M) {
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> Out;
  for (const auto &[Loc, Vals] : M) {
    std::vector<uint64_t> V(Vals.begin(), Vals.end());
    std::sort(V.begin(), V.end());
    Out[{Loc.Tag, Loc.Slot}] = std::move(V);
  }
  return Out;
}

std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>>
normalizedActivity(const SlicingProfiler &P) {
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> Out;
  for (const auto &[Loc, Act] : P.locationActivity())
    Out[{Loc.Tag, Loc.Slot}] = {Act.Writes, Act.Reads, Act.Overwrites};
  return Out;
}

void expectProfilesEqual(const SlicingProfiler &A, const SlicingProfiler &B) {
  expectGraphsEqual(A.graph(), B.graph());
  EXPECT_EQ(normalized(A.graph().writers()), normalized(B.graph().writers()));
  EXPECT_EQ(normalized(A.graph().readers()), normalized(B.graph().readers()));
  EXPECT_EQ(normalized(A.graph().refChildren()),
            normalized(B.graph().refChildren()));

  std::map<uint64_t, NodeId> AllocA, AllocB;
  for (const auto &[Tag, N] : A.graph().allocNodes())
    AllocA[Tag] = N;
  for (const auto &[Tag, N] : B.graph().allocNodes())
    AllocB[Tag] = N;
  EXPECT_EQ(AllocA, AllocB);

  std::map<NodeId, std::pair<uint64_t, uint64_t>> PredA, PredB;
  for (const auto &[N, O] : A.predicateOutcomes())
    PredA[N] = {O.TakenCount, O.NotTakenCount};
  for (const auto &[N, O] : B.predicateOutcomes())
    PredB[N] = {O.TakenCount, O.NotTakenCount};
  EXPECT_EQ(PredA, PredB);

  EXPECT_EQ(normalizedActivity(A), normalizedActivity(B));
  EXPECT_EQ(A.distinctContexts(), B.distinctContexts());
  EXPECT_DOUBLE_EQ(A.averageCR(), B.averageCR());
}

TEST(MergeEquivalenceTest, ProfilerMergeMatchesSequentialReuse) {
  Workload W = buildWorkload("eclipse", 60);

  // Reference: one profiler accumulating two back-to-back runs.
  SlicingProfiler Seq{SlicingConfig{}};
  runModule(*W.M, Seq);
  runModule(*W.M, Seq);

  // Fold of two single-run profilers.
  SlicingProfiler A{SlicingConfig{}};
  SlicingProfiler B{SlicingConfig{}};
  runModule(*W.M, A);
  runModule(*W.M, B);
  A.mergeFrom(B);

  expectProfilesEqual(A, Seq);
}

TEST(MergeEquivalenceTest, ShardedDriverMatchesAnyThreadCount) {
  Workload W = buildWorkload("derby", 60);
  const unsigned Shards = 5;

  ParallelConfig One;
  One.Threads = 1;
  ShardedRun Ref = runShardedProfiled(*W.M, Shards, One);

  ParallelConfig Pool;
  Pool.Threads = 3;
  ShardedRun Par = runShardedProfiled(*W.M, Shards, Pool);

  EXPECT_EQ(Ref.TotalInstrs, Par.TotalInstrs);
  EXPECT_EQ(Ref.Run.ExecutedInstrs, Par.Run.ExecutedInstrs);
  expectProfilesEqual(*Par.Prof, *Ref.Prof);

  // And the fold equals one profiler observing the shards sequentially.
  SlicingProfiler Seq{SlicingConfig{}};
  for (unsigned S = 0; S != Shards; ++S)
    runModule(*W.M, Seq);
  expectProfilesEqual(*Ref.Prof, Seq);
}

TEST(MergeEquivalenceTest, ParallelBatchMatchesSequential) {
  std::vector<Workload> Ws;
  std::vector<const Module *> Mods;
  for (const char *Name : {"antlr", "chart", "hsqldb", "xalan"}) {
    Ws.push_back(buildWorkload(Name, 60));
    Mods.push_back(Ws.back().M.get());
  }
  ParallelConfig One;
  One.Threads = 1;
  ParallelConfig Pool;
  Pool.Threads = 3;
  ParallelResult Ref = runParallel(Mods, One);
  ParallelResult Par = runParallel(Mods, Pool);
  ASSERT_EQ(Ref.Runs.size(), Par.Runs.size());
  for (size_t I = 0; I != Ref.Runs.size(); ++I) {
    EXPECT_EQ(Ref.Runs[I].Run.ExecutedInstrs, Par.Runs[I].Run.ExecutedInstrs);
    expectProfilesEqual(*Par.Runs[I].Prof, *Ref.Runs[I].Prof);
  }
}

TEST(MergeEquivalenceTest, HotPathCachesAreObservationFree) {
  // The regression guard for the memo caches: identical profiles with the
  // caches on (default) and off (reference path), on workloads covering
  // loads/stores, arrays, predicates and deep call chains.
  for (const char *Name : {"eclipse", "luindex", "pmd"}) {
    Workload W = buildWorkload(Name, 80);
    SlicingConfig On;
    On.HotPathCaches = true;
    SlicingConfig Off;
    Off.HotPathCaches = false;
    RunResult ROn, ROff;
    SlicingProfiler POn = profileRun(*W.M, On, &ROn);
    SlicingProfiler POff = profileRun(*W.M, Off, &ROff);
    EXPECT_EQ(ROn.ExecutedInstrs, ROff.ExecutedInstrs) << Name;
    EXPECT_EQ(POn.graph().numNodes(), POff.graph().numNodes()) << Name;
    EXPECT_EQ(POn.graph().numEdges(), POff.graph().numEdges()) << Name;
    EXPECT_EQ(POn.graph().totalFreq(), POff.graph().totalFreq()) << Name;
    EXPECT_DOUBLE_EQ(POn.averageCR(), POff.averageCR()) << Name;
    expectProfilesEqual(POn, POff);
  }
}

} // namespace

