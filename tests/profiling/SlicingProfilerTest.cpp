//===- tests/profiling/SlicingProfilerTest.cpp - Figure 4 rules ------------===//

#include "../TestUtil.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace lud;
using namespace lud::test;

namespace {

TEST(SlicingProfilerTest, StraightLineDependences) {
  // Figure 1: a = 0; c = f(a); d = c * 3; b = c + d; f(e) = e >> 2.
  Module M;
  IRBuilder B(M);
  B.beginFunction("f", 1);
  Reg Two = B.iconst(2);
  Reg Sh = B.bin(BinOp::Shr, 0, Two);
  B.ret(Sh);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg A = B.iconst(0);
  Reg C = B.call("f", {A});
  Reg Three = B.iconst(3);
  Reg D = B.mul(C, Three);
  Reg Bv = B.add(C, D);
  B.ncallVoid("sink", {Bv});
  B.ret();
  B.endFunction();
  M.finalize();

  RunResult R;
  SlicingProfiler P = profileRun(M, {}, &R);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  const DepGraph &G = P.graph();

  // One node per executed instruction (single context each); instructions:
  // f: iconst2, shr, ret ; main: iconst0, call(no node), iconst3, mul, add,
  // sink-native, ret(void, no node).
  InstrId ShrId = 1, RetId = 2, Const0 = 3, MulId = 6, AddId = 7;
  NodeId NShr = soleNodeFor(G, ShrId);
  NodeId NRet = soleNodeFor(G, RetId);
  NodeId NA = soleNodeFor(G, Const0);
  NodeId NMul = soleNodeFor(G, MulId);
  NodeId NAdd = soleNodeFor(G, AddId);
  ASSERT_NE(NShr, kNoNode);
  ASSERT_NE(NRet, kNoNode);
  ASSERT_NE(NA, kNoNode);
  ASSERT_NE(NMul, kNoNode);
  ASSERT_NE(NAdd, kNoNode);

  // a flows into f's shr via parameter passing (no node for the binding).
  EXPECT_TRUE(hasEdge(G, NA, NShr));
  // shr -> ret -> mul and -> add (c used twice).
  EXPECT_TRUE(hasEdge(G, NShr, NRet));
  EXPECT_TRUE(hasEdge(G, NRet, NMul));
  EXPECT_TRUE(hasEdge(G, NRet, NAdd));
  EXPECT_TRUE(hasEdge(G, NMul, NAdd));
  // No direct shr -> mul edge: the return value flows through the return.
  EXPECT_FALSE(hasEdge(G, NShr, NMul));
}

TEST(SlicingProfilerTest, ThinSlicingIgnoresBasePointers) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg V = B.iconst(5);
  B.storeField(O, A->getId(), "f", V);
  Reg L = B.loadField(O, A->getId(), "f");
  B.ncallVoid("sink", {L});
  B.ret();
  B.endFunction();
  M.finalize();

  InstrId AllocId = 0, ConstId = 1, StoreId = 2, LoadId = 3;

  // Thin: the load depends only on the store (which depends on the const).
  {
    SlicingProfiler P = profileRun(M);
    const DepGraph &G = P.graph();
    NodeId NLoad = soleNodeFor(G, LoadId);
    NodeId NStore = soleNodeFor(G, StoreId);
    NodeId NAlloc = soleNodeFor(G, AllocId);
    NodeId NConst = soleNodeFor(G, ConstId);
    ASSERT_NE(NLoad, kNoNode);
    EXPECT_TRUE(hasEdge(G, NStore, NLoad));
    EXPECT_TRUE(hasEdge(G, NConst, NStore));
    EXPECT_FALSE(hasEdge(G, NAlloc, NLoad));
    EXPECT_FALSE(hasEdge(G, NAlloc, NStore));
  }

  // Traditional (ablation): base-pointer values are uses too.
  {
    SlicingConfig Cfg;
    Cfg.ThinSlicing = false;
    SlicingProfiler P = profileRun(M, Cfg);
    const DepGraph &G = P.graph();
    NodeId NLoad = soleNodeFor(G, LoadId);
    NodeId NStore = soleNodeFor(G, StoreId);
    NodeId NAlloc = soleNodeFor(G, AllocId);
    EXPECT_TRUE(hasEdge(G, NAlloc, NLoad));
    EXPECT_TRUE(hasEdge(G, NAlloc, NStore));
    EXPECT_TRUE(hasEdge(G, NStore, NLoad));
  }
}

TEST(SlicingProfilerTest, LoopFrequenciesAccumulate) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Sum = B.iconst(0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(100);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  Instruction *Pred = nullptr;
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  Pred = B.block()->terminator();
  B.setBlock(Body);
  B.binInto(Sum, BinOp::Add, Sum, I);
  Instruction *AddI = B.block()->insts().back().get();
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Sum});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  const DepGraph &G = P.graph();
  NodeId NAdd = soleNodeFor(G, AddI->getId());
  ASSERT_NE(NAdd, kNoNode);
  EXPECT_EQ(G.freq(NAdd), 100u);
  NodeId NPred = soleNodeFor(G, Pred->getId());
  ASSERT_NE(NPred, kNoNode);
  EXPECT_EQ(G.freq(NPred), 101u);
  EXPECT_EQ(G.node(NPred).Consumer, ConsumerKind::Predicate);
  EXPECT_EQ(G.node(NPred).Domain, kNoDomain);
  // Loop-carried self-dependence collapses onto one abstract node; total
  // graph stays bounded by static code size regardless of trip count.
  EXPECT_LE(G.numNodes(), uint64_t(M.getNumInstrs()));
}

TEST(SlicingProfilerTest, ObjectContextsSplitNodes) {
  // helper method m reads this.f; called on objects from two different
  // allocation sites => two context slots => two abstract nodes.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginMethod(A->getId(), "get", 1);
  Reg V = B.loadField(0, A->getId(), "f");
  Instruction *Load = B.block()->insts().back().get();
  B.ret(V);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg O1 = B.alloc(A->getId());
  Reg O2 = B.alloc(A->getId());
  Reg C = B.iconst(3);
  B.storeField(O1, A->getId(), "f", C);
  B.storeField(O2, A->getId(), "f", C);
  Reg R1 = B.vcall("get", {O1});
  Reg R2 = B.vcall("get", {O2});
  Reg S = B.add(R1, R2);
  B.ncallVoid("sink", {S});
  B.ret();
  B.endFunction();
  M.finalize();

  {
    SlicingConfig Cfg;
    Cfg.ContextSlots = 64; // Plenty: no conflicts.
    SlicingProfiler P = profileRun(M, Cfg);
    EXPECT_EQ(nodesFor(P.graph(), Load->getId()).size(), 2u);
    EXPECT_DOUBLE_EQ(P.averageCR(), 0.0);
  }
  {
    SlicingConfig Cfg;
    Cfg.ContextSensitive = false;
    SlicingProfiler P = profileRun(M, Cfg);
    EXPECT_EQ(nodesFor(P.graph(), Load->getId()).size(), 1u);
  }
  {
    // One slot: both contexts collide; CR becomes 1 for the method.
    SlicingConfig Cfg;
    Cfg.ContextSlots = 1;
    SlicingProfiler P = profileRun(M, Cfg);
    EXPECT_EQ(nodesFor(P.graph(), Load->getId()).size(), 1u);
    EXPECT_GT(P.averageCR(), 0.0);
  }
}

TEST(SlicingProfilerTest, TagsAndReferenceEdges) {
  Module M;
  ClassDecl *L = M.addClass("List");
  L->addField("head", Type::makeRef());
  ClassDecl *N = M.addClass("Node");
  N->addField("v", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg List = B.alloc(L->getId());
  Reg Node = B.alloc(N->getId());
  Reg V = B.iconst(42);
  B.storeField(Node, N->getId(), "v", V);
  B.storeField(List, L->getId(), "head", Node);
  Reg H = B.loadField(List, L->getId(), "head");
  B.ncallVoid("sink", {H});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  const DepGraph &G = P.graph();
  InstrId AllocList = 0, AllocNode = 1, StoreV = 3, StoreHead = 4;
  NodeId NAllocList = soleNodeFor(G, AllocList);
  NodeId NAllocNode = soleNodeFor(G, AllocNode);
  NodeId NStoreV = soleNodeFor(G, StoreV);
  NodeId NStoreHead = soleNodeFor(G, StoreHead);

  // Reference edges: each store connects to the allocation of its base.
  bool SawVEdge = false, SawHeadEdge = false;
  for (auto [S, A] : G.refEdges()) {
    if (S == NStoreV && A == NAllocNode)
      SawVEdge = true;
    if (S == NStoreHead && A == NAllocList)
      SawHeadEdge = true;
  }
  EXPECT_TRUE(SawVEdge);
  EXPECT_TRUE(SawHeadEdge);

  // The head field records a reference-tree child: the Node's tag.
  uint64_t ListTag = G.node(NAllocList).EffectLoc.Tag;
  uint64_t NodeTag = G.node(NAllocNode).EffectLoc.Tag;
  FieldSlot HeadSlot;
  ASSERT_TRUE(M.resolveField(L->getId(), "head", HeadSlot));
  auto It = G.refChildren().find(HeapLoc{ListTag, HeadSlot});
  ASSERT_NE(It, G.refChildren().end());
  ASSERT_EQ(It->second.size(), 1u);
  EXPECT_EQ(It->second[0], NodeTag);

  // Writers/readers recorded per abstract location.
  FieldSlot VSlot;
  ASSERT_TRUE(M.resolveField(N->getId(), "v", VSlot));
  EXPECT_EQ(G.writers().count(HeapLoc{NodeTag, VSlot}), 1u);
  EXPECT_EQ(G.readers().count(HeapLoc{ListTag, HeadSlot}), 1u);
}

TEST(SlicingProfilerTest, PhaseGatingSuppressesTracking) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg Ph1 = B.iconst(1);
  B.ncallVoid("phase", {Ph1});
  Reg A = B.iconst(10); // Executed in phase 1 (untracked below).
  Reg Bv = B.add(A, A);
  Reg Ph2 = B.iconst(2);
  B.ncallVoid("phase", {Ph2});
  Reg C = B.iconst(20); // Phase 2 (tracked below).
  Reg D = B.add(C, C);
  B.ncallVoid("sink", {Bv});
  B.ncallVoid("sink", {D});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingConfig Cfg;
  Cfg.TrackedPhaseMask = (1ull << 0) | (1ull << 2); // Track phases 0 and 2.
  SlicingProfiler P = profileRun(M, Cfg);
  const DepGraph &G = P.graph();
  InstrId ConstA = 2, AddB = 3, ConstC = 6, AddD = 7;
  EXPECT_TRUE(nodesFor(G, ConstA).empty());
  EXPECT_TRUE(nodesFor(G, AddB).empty());
  EXPECT_EQ(nodesFor(G, ConstC).size(), 1u);
  EXPECT_EQ(nodesFor(G, AddD).size(), 1u);
}

TEST(SlicingProfilerTest, OverwriteDetection) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg V = B.iconst(1);
  B.storeField(O, A->getId(), "f", V); // write 1 (clobbered unread)
  B.storeField(O, A->getId(), "f", V); // write 2 (read below)
  Reg L = B.loadField(O, A->getId(), "f");
  B.storeField(O, A->getId(), "f", L); // write 3 (never read again)
  B.ncallVoid("sink", {L});
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  FieldSlot Slot;
  ASSERT_TRUE(M.resolveField(A->getId(), "f", Slot));
  const DepGraph &G = P.graph();
  NodeId NAlloc = soleNodeFor(G, 0);
  uint64_t Tag = G.node(NAlloc).EffectLoc.Tag;
  auto It = P.locationActivity().find(HeapLoc{Tag, Slot});
  ASSERT_NE(It, P.locationActivity().end());
  EXPECT_EQ(It->second.Writes, 3u);
  EXPECT_EQ(It->second.Reads, 1u);
  EXPECT_EQ(It->second.Overwrites, 1u);
}

TEST(SlicingProfilerTest, PredicateOutcomeCounts) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(10);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  Instruction *Pred = B.block()->terminator();
  B.setBlock(Body);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ret();
  B.endFunction();
  M.finalize();

  SlicingProfiler P = profileRun(M);
  NodeId NP = soleNodeFor(P.graph(), Pred->getId());
  ASSERT_NE(NP, kNoNode);
  auto It = P.predicateOutcomes().find(NP);
  ASSERT_NE(It, P.predicateOutcomes().end());
  EXPECT_EQ(It->second.TakenCount, 10u);
  EXPECT_EQ(It->second.NotTakenCount, 1u);
}

TEST(SlicingProfilerTest, GraphMemoryIsBoundedByAbstraction) {
  // Running the same loop 10x longer must not grow the graph.
  auto Build = [](int64_t Iters) {
    auto M = std::make_unique<Module>();
    IRBuilder B(*M);
    B.beginFunction("main", 0);
    Reg Sum = B.iconst(0);
    Reg I = B.iconst(0);
    Reg N = B.iconst(Iters);
    Reg One = B.iconst(1);
    BasicBlock *H = B.newBlock();
    BasicBlock *Body = B.newBlock();
    BasicBlock *Exit = B.newBlock();
    B.br(H);
    B.setBlock(H);
    B.condBr(CmpOp::Lt, I, N, Body, Exit);
    B.setBlock(Body);
    B.binInto(Sum, BinOp::Add, Sum, I);
    B.binInto(I, BinOp::Add, I, One);
    B.br(H);
    B.setBlock(Exit);
    B.ncallVoid("sink", {Sum});
    B.ret();
    B.endFunction();
    M->finalize();
    return M;
  };
  auto M1 = Build(100);
  auto M2 = Build(1000);
  SlicingProfiler P1 = profileRun(*M1);
  SlicingProfiler P2 = profileRun(*M2);
  EXPECT_EQ(P1.graph().numNodes(), P2.graph().numNodes());
  EXPECT_EQ(P1.graph().numEdges(), P2.graph().numEdges());
  EXPECT_GT(P2.graph().totalFreq(), P1.graph().totalFreq());
}

} // namespace
