//===- tests/profiling/DepGraphTest.cpp - Graph container + contexts -------===//

#include "profiling/Context.h"
#include "profiling/DepGraph.h"

#include <gtest/gtest.h>

using namespace lud;

namespace {

TEST(DepGraphTest, GetOrCreateIsIdempotent) {
  DepGraph G;
  NodeId A = G.getOrCreate(7, 3);
  NodeId B = G.getOrCreate(7, 3);
  NodeId C = G.getOrCreate(7, 4);
  NodeId D = G.getOrCreate(8, 3);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  EXPECT_NE(C, D);
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(G.lookup(7, 3), A);
  EXPECT_EQ(G.lookup(7, 99), kNoNode);
}

TEST(DepGraphTest, DomainSentinelsWork) {
  DepGraph G;
  NodeId P = G.getOrCreate(5, kNoDomain);
  EXPECT_EQ(G.lookup(5, kNoDomain), P);
  EXPECT_EQ(G.node(P).Domain, kNoDomain);
}

TEST(DepGraphTest, EdgesAreDeduplicated) {
  DepGraph G;
  NodeId A = G.getOrCreate(1, 0);
  NodeId B = G.getOrCreate(2, 0);
  G.addEdge(A, B);
  G.addEdge(A, B);
  G.addEdge(A, B);
  EXPECT_EQ(G.numEdges(), 1u);
  ASSERT_EQ(G.node(A).Out.size(), 1u);
  ASSERT_EQ(G.node(B).In.size(), 1u);
  // Self-edges are dropped (loop-carried dependences collapse).
  G.addEdge(A, A);
  EXPECT_EQ(G.numEdges(), 1u);
  // Reverse direction is a distinct edge.
  G.addEdge(B, A);
  EXPECT_EQ(G.numEdges(), 2u);
}

TEST(DepGraphTest, RefEdgesSeparateFromDataEdges) {
  DepGraph G;
  NodeId S = G.getOrCreate(1, 0);
  NodeId A = G.getOrCreate(2, 0);
  G.addRefEdge(S, A);
  G.addRefEdge(S, A);
  EXPECT_EQ(G.numRefEdges(), 1u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_TRUE(G.node(S).Out.empty());
}

TEST(DepGraphTest, LocationMapsDeduplicate) {
  DepGraph G;
  NodeId W = G.getOrCreate(1, 0);
  HeapLoc L{42, 3};
  G.noteWriter(L, W);
  G.noteWriter(L, W);
  ASSERT_EQ(G.writers().count(L), 1u);
  EXPECT_EQ(G.writers().at(L).size(), 1u);
  G.noteRefChild(L, 99);
  G.noteRefChild(L, 99);
  EXPECT_EQ(G.refChildren().at(L).size(), 1u);
}

TEST(DepGraphTest, TagCodecRoundTrips) {
  DepGraph G;
  G.setContextSlots(16);
  for (AllocSiteId Site : {0u, 1u, 17u, 9999u}) {
    for (uint32_t Slot : {0u, 7u, 15u}) {
      uint64_t Tag = G.makeTag(Site, Slot);
      EXPECT_EQ(G.tagSite(Tag), Site);
      EXPECT_EQ(G.tagSlot(Tag), Slot);
      EXPECT_FALSE(DepGraph::isStaticTag(Tag));
    }
  }
  uint64_t S = DepGraph::makeStaticTag(5);
  EXPECT_TRUE(DepGraph::isStaticTag(S));
}

TEST(DepGraphTest, MemoryFootprintGrowsWithContent) {
  DepGraph G;
  size_t Empty = G.memoryFootprint().total();
  for (InstrId I = 0; I != 100; ++I)
    G.getOrCreate(I, 0);
  for (NodeId N = 1; N != 100; ++N)
    G.addEdge(N - 1, N);
  size_t Full = G.memoryFootprint().total();
  EXPECT_GT(Full, Empty);
  DepGraph::MemoryFootprint F = G.memoryFootprint();
  EXPECT_EQ(F.total(), F.NodeBytes + F.EdgeBytes + F.LocMapBytes);
  EXPECT_GT(F.NodeBytes, 0u);
  EXPECT_GT(F.EdgeBytes, 0u);
}

TEST(ContextEncoderTest, ChainsEncodeIncrementally) {
  ContextEncoder C(16);
  C.reset();
  EXPECT_EQ(C.current(), 0u);
  EXPECT_EQ(C.depth(), 1u);
  C.pushCall(/*ExtendsChain=*/true, /*ReceiverSite=*/4);
  // g = 3*0 + (4+1) = 5.
  EXPECT_EQ(C.current(), 5u);
  C.pushCall(true, 2);
  // g = 3*5 + 3 = 18.
  EXPECT_EQ(C.current(), 18u);
  EXPECT_EQ(C.slot(), 18u % 16);
  C.popCall();
  EXPECT_EQ(C.current(), 5u);
  C.popCall();
  EXPECT_EQ(C.current(), 0u);
}

TEST(ContextEncoderTest, StaticCallsKeepChain) {
  ContextEncoder C(8);
  C.reset();
  C.pushCall(true, 1);
  uint64_t G1 = C.current();
  C.pushCall(/*ExtendsChain=*/false, 7);
  EXPECT_EQ(C.current(), G1);
  C.popCall();
  EXPECT_EQ(C.current(), G1);
}

TEST(ContextEncoderTest, EncodingIsProbabilistic) {
  // The Bond-McKinley recurrence g = 3g + o is *probabilistically* unique:
  // dense small site ids do collide (3a + b = 3a' + b'), which is exactly
  // what the CR metric measures. Check that a healthy majority of two-deep
  // chains stay distinct, and that every chain value is deterministic.
  ContextEncoder C(1 << 16);
  C.reset();
  std::vector<uint64_t> Values;
  for (AllocSiteId A = 0; A != 8; ++A) {
    C.pushCall(true, A);
    for (AllocSiteId B = 0; B != 8; ++B) {
      C.pushCall(true, B);
      Values.push_back(C.current());
      C.popCall();
    }
    C.popCall();
  }
  std::vector<uint64_t> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  size_t Distinct =
      std::unique(Sorted.begin(), Sorted.end()) - Sorted.begin();
  // 3a + b over a,b in [0,8) yields 29 distinct values of 64 chains.
  EXPECT_GE(Distinct, 25u);
  // Determinism: re-encoding yields the same sequence.
  ContextEncoder C2(1 << 16);
  C2.reset();
  size_t Idx = 0;
  for (AllocSiteId A = 0; A != 8; ++A) {
    C2.pushCall(true, A);
    for (AllocSiteId B = 0; B != 8; ++B) {
      C2.pushCall(true, B);
      EXPECT_EQ(C2.current(), Values[Idx++]);
      C2.popCall();
    }
    C2.popCall();
  }
}

TEST(ContextEncoderTest, SiteZeroDistinctFromEmptyChain) {
  // The +1 offset keeps chain [site 0] distinguishable from the empty
  // chain.
  ContextEncoder C(8);
  C.reset();
  uint64_t Empty = C.current();
  C.pushCall(true, 0);
  EXPECT_NE(C.current(), Empty);
}

} // namespace
