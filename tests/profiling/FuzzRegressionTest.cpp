//===- tests/profiling/FuzzRegressionTest.cpp - Caches-flip pins ----------===//
//
// Fuzz-derived regression pins for SlicingConfig::HotPathCaches. The
// caches document a hard promise: bit-identical results on and off. The
// differential fuzzer exercises this across random programs; these fixed
// seeds pin the promise in the tier-1 suite so a cache that starts
// observing its own presence fails here with a byte diff, not only in a
// nightly fuzz job. Seeds were picked from fuzz corpus sweeps to cover
// recursion, aliasing through ref fields, null flows, dead stores, and
// global traffic — the shapes most likely to disturb memoization.
//
//===----------------------------------------------------------------------===//

#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace lud;

namespace {

constexpr ClientSet kAllClients = ClientSet::all();

struct Artifacts {
  RunResult Run;
  std::string Graph;
  std::string Reports;
};

Artifacts runWithCaches(const Module &M, bool Caches, uint32_t Slots) {
  SessionConfig Cfg;
  Cfg.Instrument = true;
  Cfg.Clients = kAllClients;
  Cfg.Slicing.HotPathCaches = Caches;
  Cfg.Slicing.ContextSlots = Slots;
  ProfileSession S(Cfg);
  Artifacts A;
  A.Run = S.run(M).Run;
  StringOutStream GS;
  if (S.slicing())
    writeGraph(S.slicing()->graph(), GS);
  A.Graph = GS.str();
  StringOutStream RS;
  S.printClientReports(M, RS);
  A.Reports = RS.str();
  return A;
}

std::unique_ptr<Module> fuzzShape(uint64_t Seed) {
  RandomProgramOptions P;
  P.Seed = Seed;
  P.NumClasses = 3;
  P.NumFunctions = 6;
  P.OpsPerFunction = 45;
  P.NumGlobals = 3;
  P.Recursion = true;
  P.Aliasing = true;
  P.NullFlows = true;
  P.DeadStores = true;
  return generateRandomProgram(P);
}

TEST(FuzzRegressionTest, HotPathCachesAreObservationFree) {
  for (uint64_t Seed : {3u, 17u, 44u, 71u}) {
    for (uint32_t Slots : {1u, 16u}) {
      std::unique_ptr<Module> M = fuzzShape(Seed);
      Artifacts On = runWithCaches(*M, /*Caches=*/true, Slots);
      Artifacts Off = runWithCaches(*M, /*Caches=*/false, Slots);

      EXPECT_EQ(On.Run.Status, Off.Run.Status) << "seed " << Seed;
      EXPECT_EQ(On.Run.ExecutedInstrs, Off.Run.ExecutedInstrs)
          << "seed " << Seed;
      EXPECT_EQ(On.Run.SinkHash, Off.Run.SinkHash) << "seed " << Seed;
      EXPECT_EQ(On.Graph, Off.Graph)
          << "seed " << Seed << " slots " << Slots
          << ": Gcost depends on HotPathCaches";
      EXPECT_EQ(On.Reports, Off.Reports)
          << "seed " << Seed << " slots " << Slots
          << ": client reports depend on HotPathCaches";
    }
  }
}

} // namespace
