//===- tests/profiling/FrozenGraphTest.cpp - Sealed representation ---------===//
//
// Covers the build -> seal boundary: every FrozenGraph accessor must agree
// with the DepGraph it was sealed from, at unit size, at power-of-two
// boundary sizes (the Eytzinger tree pads to a full level), and at the
// paper-scale 100K+ node tier, including merged shards and an
// Eytzinger-lookup-vs-FlatMap-find equivalence sweep over every interned
// key plus deliberate miss probes.
//
//===----------------------------------------------------------------------===//

#include "profiling/DepGraph.h"
#include "profiling/FrozenGraph.h"
#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace lud;

namespace {

/// Builds a deterministic pseudo-random graph with \p NumNodes nodes and
/// the full attribute/edge/location surface exercised.
DepGraph buildSynthetic(size_t NumNodes, uint64_t Seed) {
  DepGraph G;
  G.setContextSlots(16);
  RNG R(Seed);
  std::vector<NodeId> Ids;
  Ids.reserve(NumNodes);
  for (size_t I = 0; I != NumNodes; ++I) {
    // Non-contiguous instr ids and varying domains: the sealed index must
    // not rely on density.
    InstrId Instr = InstrId(I * 3 + (I % 5));
    uint32_t Domain = uint32_t(R.nextBelow(16));
    NodeId N = G.getOrCreate(Instr, Domain);
    Ids.push_back(N);
    G.freq(N) += R.nextBelow(1000) + 1;
    DepGraph::Node &Node = G.node(N);
    Node.ReadsHeap = R.nextBelow(2) != 0;
    Node.WritesHeap = R.nextBelow(2) != 0;
    Node.StoredRef = R.nextBelow(8) == 0;
    Node.Consumer = ConsumerKind(R.nextBelow(3));
    if (R.nextBelow(4) == 0) {
      Node.Effect = EffectKind(1 + R.nextBelow(3));
      Node.EffectLoc = HeapLoc{R.nextBelow(5000), FieldSlot(R.nextBelow(8))};
    }
  }
  for (size_t I = 1; I < Ids.size(); ++I) {
    G.addEdge(Ids[R.nextBelow(I)], Ids[I]);
    if (R.nextBelow(4) == 0)
      G.addEdge(Ids[I], Ids[R.nextBelow(I)]);
  }
  // Allocation sites: every ~20th node is an allocation with a tag.
  for (size_t I = 0; I < Ids.size(); I += 20) {
    uint64_t Tag = G.makeTag(AllocSiteId(I / 20), uint32_t(I % 16));
    G.node(Ids[I]).IsAlloc = true;
    G.noteAlloc(Tag, Ids[I]);
    G.addRefEdge(Ids[R.nextBelow(Ids.size())], Ids[I]);
  }
  // Heap locations: ~NumNodes/4 distinct locs, each with a handful of
  // writers/readers and the occasional ref child.
  size_t NumLocs = NumNodes / 4 + 1;
  for (size_t L = 0; L != NumLocs; ++L) {
    HeapLoc Loc{R.nextBelow(1u << 20), FieldSlot(R.nextBelow(8))};
    for (size_t K = 0, E = 1 + R.nextBelow(4); K != E; ++K)
      G.noteWriter(Loc, Ids[R.nextBelow(Ids.size())]);
    for (size_t K = 0, E = R.nextBelow(4); K != E; ++K)
      G.noteReader(Loc, Ids[R.nextBelow(Ids.size())]);
    if (R.nextBelow(8) == 0)
      G.noteRefChild(Loc, R.nextBelow(1u << 20));
  }
  return G;
}

/// Full accessor-equivalence check between a build graph and its seal.
void expectEquivalent(const DepGraph &G, const FrozenGraph &F) {
  ASSERT_EQ(F.numNodes(), G.numNodes());
  ASSERT_EQ(F.numEdges(), G.numEdges());
  ASSERT_EQ(F.numRefEdges(), G.numRefEdges());
  ASSERT_EQ(F.contextSlots(), G.contextSlots());

  uint64_t Total = 0;
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    const DepGraph::Node &Src = G.node(N);
    ASSERT_EQ(F.instr(N), Src.Instr);
    ASSERT_EQ(F.domain(N), Src.Domain);
    ASSERT_EQ(F.freq(N), G.freq(N));
    ASSERT_EQ(F.consumer(N), Src.Consumer);
    ASSERT_EQ(F.effect(N), Src.Effect);
    if (Src.Effect != EffectKind::None) {
      ASSERT_EQ(F.effectLoc(N).Tag, Src.EffectLoc.Tag);
      ASSERT_EQ(F.effectLoc(N).Slot, Src.EffectLoc.Slot);
    }
    ASSERT_EQ(F.readsHeap(N), Src.ReadsHeap);
    ASSERT_EQ(F.writesHeap(N), Src.WritesHeap);
    ASSERT_EQ(F.isAlloc(N), Src.IsAlloc);
    ASSERT_EQ(F.storedRef(N), Src.StoredRef);
    // CSR adjacency preserves per-node insertion order.
    ASSERT_EQ(F.outDegree(N), Src.Out.size());
    ASSERT_EQ(F.inDegree(N), Src.In.size());
    ASSERT_TRUE(std::equal(F.out(N).begin(), F.out(N).end(),
                           Src.Out.begin(), Src.Out.end()));
    ASSERT_TRUE(std::equal(F.in(N).begin(), F.in(N).end(),
                           Src.In.begin(), Src.In.end()));
    Total += G.freq(N);
  }
  ASSERT_EQ(F.totalFreq(), Total);

  // Eytzinger vs FlatMap::find: every interned key must resolve to the
  // same node id through both representations...
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    InstrId Instr = G.node(N).Instr;
    uint32_t Domain = G.node(N).Domain;
    ASSERT_EQ(F.lookup(Instr, Domain), N);
    ASSERT_EQ(F.lookup(Instr, Domain), G.lookup(Instr, Domain));
  }
  // ... and perturbed keys must miss through both.
  for (NodeId N = 0; N < G.numNodes(); N += 3) {
    InstrId Instr = G.node(N).Instr;
    uint32_t Domain = G.node(N).Domain;
    ASSERT_EQ(F.lookup(Instr, Domain + 100), G.lookup(Instr, Domain + 100));
    ASSERT_EQ(F.lookup(Instr | 0x40000000u, Domain), kNoNode);
    ASSERT_EQ(F.lookup(Instr | 0x40000000u, Domain),
              G.lookup(Instr | 0x40000000u, Domain));
  }

  // Allocation tags, hits and misses.
  for (const auto &[Tag, N] : G.allocNodes()) {
    ASSERT_EQ(F.allocNodeFor(Tag), N);
    ASSERT_EQ(F.allocNodeFor(Tag + (1ull << 40)), kNoNode);
  }
  ASSERT_EQ(F.allocEntries().size(), G.allocNodes().size());

  // Heap-location maps: identical contents per key, empty spans on miss.
  auto checkMap = [&](const auto &Map, auto Spans) {
    for (const auto &[Loc, Vals] : Map) {
      auto Span = Spans(Loc);
      ASSERT_EQ(Span.size(), Vals.size());
      ASSERT_TRUE(std::equal(Span.begin(), Span.end(), Vals.begin()));
    }
  };
  checkMap(G.writers(), [&](const HeapLoc &L) { return F.writersOf(L); });
  checkMap(G.readers(), [&](const HeapLoc &L) { return F.readersOf(L); });
  checkMap(G.refChildren(),
           [&](const HeapLoc &L) { return F.refChildrenOf(L); });
  ASSERT_TRUE(F.writersOf(HeapLoc{0xDEADBEEFull << 21, 7}).empty());

  // The universe iteration view agrees with the keyed view.
  for (size_t LI = 0; LI != F.numLocs(); ++LI) {
    HeapLoc L = F.loc(LI);
    ASSERT_TRUE(std::equal(F.writersAt(LI).begin(), F.writersAt(LI).end(),
                           F.writersOf(L).begin(), F.writersOf(L).end()));
    ASSERT_TRUE(std::equal(F.readersAt(LI).begin(), F.readersAt(LI).end(),
                           F.readersOf(L).begin(), F.readersOf(L).end()));
  }
}

TEST(FrozenGraphTest, EmptyGraphSeals) {
  DepGraph G;
  FrozenGraph F(G);
  EXPECT_EQ(F.numNodes(), 0u);
  EXPECT_EQ(F.lookup(0, 0), kNoNode);
  EXPECT_EQ(F.allocNodeFor(42), kNoNode);
  EXPECT_TRUE(F.writersOf(HeapLoc{1, 2}).empty());
}

TEST(FrozenGraphTest, BoundarySizesSealExactly) {
  // Sizes straddling Eytzinger's power-of-two padding boundaries.
  for (size_t N : {1u, 2u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 1023u, 1024u,
                   1025u}) {
    DepGraph G = buildSynthetic(N, /*Seed=*/N);
    FrozenGraph F(G);
    expectEquivalent(G, F);
  }
}

TEST(FrozenGraphTest, SealMovesAndClearsTheBuildGraph) {
  DepGraph G = buildSynthetic(100, 7);
  DepGraph Copy = buildSynthetic(100, 7);
  FrozenGraph F = FrozenGraph::seal(std::move(G));
  expectEquivalent(Copy, F);
}

TEST(FrozenGraphTest, PaperScaleSealEquivalence) {
  DepGraph G = buildSynthetic(120000, 0xF00D);
  ASSERT_GE(G.numNodes(), 100000u);
  FrozenGraph F(G);
  expectEquivalent(G, F);
}

TEST(FrozenGraphTest, PaperScaleMergeThenSeal) {
  // Two overlapping shards folded build-side, then sealed once: the frozen
  // view must match the merged graph, and merging into an empty graph must
  // reproduce the source numbering (the shard-fold contract).
  DepGraph A = buildSynthetic(70000, 1);
  DepGraph B = buildSynthetic(80000, 2);
  DepGraph Merged;
  std::vector<NodeId> RemapA = Merged.mergeFrom(A);
  for (NodeId N = 0; N != A.numNodes(); ++N)
    ASSERT_EQ(RemapA[N], N);
  std::vector<NodeId> RemapB = Merged.mergeFrom(B);
  ASSERT_GE(Merged.numNodes(), 100000u);

  // Frequencies accumulate across shards.
  for (NodeId N = 0; N != B.numNodes(); ++N) {
    NodeId M = RemapB[N];
    NodeId InA = A.lookup(B.node(N).Instr, B.node(N).Domain);
    uint64_t Expect = B.freq(N) + (InA != kNoNode ? A.freq(InA) : 0);
    ASSERT_EQ(Merged.freq(M), Expect);
  }

  FrozenGraph F(Merged);
  expectEquivalent(Merged, F);
}

TEST(FrozenGraphTest, SealDeduplicatesBeyondTheInsertWindow) {
  // DepGraph::insertUnique only scans a bounded window, so a build-side
  // list can hold duplicates when more than kDedupWindow distinct nodes
  // interleave; the seal must still produce an exact first-occurrence
  // sequence.
  DepGraph G;
  G.setContextSlots(16);
  HeapLoc Loc{99, 1};
  std::vector<NodeId> Distinct;
  for (InstrId I = 0; I != 12; ++I)
    Distinct.push_back(G.getOrCreate(I, 0));
  for (int Round = 0; Round != 3; ++Round)
    for (NodeId N : Distinct)
      G.noteWriter(Loc, N);
  // The window (8) is smaller than the cycle (12): duplicates leak into
  // the build-side list.
  ASSERT_GT(G.writers().at(Loc).size(), Distinct.size());
  FrozenGraph F(G);
  auto Span = F.writersOf(Loc);
  ASSERT_EQ(Span.size(), Distinct.size());
  ASSERT_TRUE(std::equal(Span.begin(), Span.end(), Distinct.begin()));
}

TEST(FrozenGraphTest, LegacyWriterPathMatchesFrozenWriter) {
  // writeGraph(DepGraph) seals internally; both entry points must emit
  // byte-identical serializations.
  DepGraph G = buildSynthetic(5000, 0xCAFE);
  FrozenGraph F(G);
  StringOutStream A, B;
  writeGraph(G, A);
  writeGraph(F, B);
  EXPECT_EQ(A.str(), B.str());
}

TEST(FrozenGraphTest, FootprintCoversEveryColumn) {
  DepGraph G = buildSynthetic(10000, 3);
  FrozenGraph F(G);
  FrozenGraph::MemoryFootprint MF = F.memoryFootprint();
  EXPECT_GT(MF.NodeBytes, 0u);
  EXPECT_GT(MF.EdgeBytes, 0u);
  EXPECT_GT(MF.LocBytes, 0u);
  EXPECT_GT(MF.IndexBytes, 0u);
  EXPECT_EQ(MF.total(),
            MF.NodeBytes + MF.EdgeBytes + MF.LocBytes + MF.IndexBytes);
}

} // namespace
