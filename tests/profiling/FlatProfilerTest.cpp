//===- tests/profiling/FlatProfilerTest.cpp - First-stage profiler ---------===//

#include "ir/IRBuilder.h"
#include "profiling/FlatProfiler.h"
#include "runtime/Interpreter.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>

#include "../TestUtil.h"

using namespace lud;
using namespace lud::test;

namespace {

TEST(FlatProfilerTest, CountsInvocationsAndOwnInstructions) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("leaf", 1); // 3 own instructions per call
  Reg One = B.iconst(1);
  Reg S = B.add(0, One);
  B.ret(S);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(10);
  Reg One2 = B.iconst(1);
  Reg Acc = B.iconst(0);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg R = B.call("leaf", {I});
  B.binInto(Acc, BinOp::Add, Acc, R);
  B.binInto(I, BinOp::Add, I, One2);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();

  FlatProfiler P;
  RunResult Res = runModule(M, P);
  ASSERT_EQ(Res.Status, RunStatus::Finished);

  std::vector<FlatProfiler::MethodRow> Rows = P.hotMethods(M);
  ASSERT_EQ(Rows.size(), 2u);
  uint64_t Total = 0;
  for (const auto &Row : Rows) {
    Total += Row.OwnInstrs;
    if (Row.Name == "leaf") {
      EXPECT_EQ(Row.Invocations, 10u);
      EXPECT_EQ(Row.OwnInstrs, 30u); // iconst + add + ret per call
    } else {
      EXPECT_EQ(Row.Name, "main");
      EXPECT_EQ(Row.Invocations, 1u);
    }
  }
  // Every executed instruction is attributed to exactly one method,
  // except branches (br is not hooked; it moves no value).
  EXPECT_LE(Total, Res.ExecutedInstrs);
  EXPECT_GT(Total, Res.ExecutedInstrs / 2);
}

TEST(FlatProfilerTest, AllocationSitesCounted) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(25);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  B.alloc(A->getId());
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.alloc(A->getId()); // A second, cold site.
  B.ret();
  B.endFunction();
  M.finalize();

  FlatProfiler P;
  runModule(M, P);
  std::vector<FlatProfiler::AllocRow> Rows = P.hotAllocSites(M);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Objects, 25u);
  EXPECT_EQ(Rows[1].Objects, 1u);
}

TEST(FlatProfilerTest, PhaseAttribution) {
  Workload W = buildWorkload("tradebeans", 100);
  FlatProfiler P;
  Heap H;
  Interpreter<FlatProfiler> I(*W.M, H, P);
  RunResult R = I.run();
  ASSERT_EQ(R.Status, RunStatus::Finished);
  const std::vector<uint64_t> &Phases = P.phaseInstrs();
  // tradebeans: startup (0) and shutdown (2) dwarf the load phase (1) —
  // exactly what tells the Section 4.1 workflow to track only phase 1.
  EXPECT_GT(Phases[0], Phases[1]);
  EXPECT_GT(Phases[2], Phases[1]);
  EXPECT_GT(Phases[1], 0u);
}

TEST(FlatProfilerTest, IsMuchCheaperThanSlicing) {
  Workload W = buildWorkload("eclipse", 400);
  // Compare instrumented runtimes (min of 3 each).
  double Flat = 1e100, Slicing = 1e100;
  for (int It = 0; It != 3; ++It) {
    {
      FlatProfiler P;
      Heap H;
      Interpreter<FlatProfiler> I(*W.M, H, P);
      auto T0 = std::chrono::steady_clock::now();
      I.run();
      Flat = std::min(Flat, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - T0)
                                .count());
    }
    {
      ProfiledRun P = profiledRun(*W.M);
      Slicing = std::min(Slicing, P.Seconds);
    }
  }
  EXPECT_LT(Flat, Slicing);
}

TEST(FlatProfilerTest, HotMethodsPointAtTheLoadPhase) {
  Workload W = buildWorkload("bloat", 200);
  FlatProfiler P;
  Heap H;
  Interpreter<FlatProfiler> I(*W.M, H, P);
  I.run();
  std::vector<FlatProfiler::MethodRow> Rows = P.hotMethods(*W.M);
  ASSERT_FALSE(Rows.empty());
  // The hottest method belongs to the planted load-phase machinery, not
  // the startup/shutdown ballast.
  EXPECT_EQ(Rows[0].Name.find("bl_init"), std::string::npos);
  EXPECT_EQ(Rows[0].Name.find("bl_fini"), std::string::npos);
}

} // namespace
