//===- tests/profiling/ClientProfilersTest.cpp - Figure 2's clients --------===//

#include "../TestUtil.h"

#include "analysis/Report.h"
#include "ir/IRBuilder.h"
#include "profiling/CopyProfiler.h"
#include "profiling/NullnessProfiler.h"
#include "profiling/TypestateProfiler.h"
#include "runtime/ComposedProfiler.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"
#include "workloads/ParallelDriver.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace lud;
using namespace lud::test;

namespace {

/// Substrate + copy client composed into one pipeline, the way
/// ProfileSession wires them.
struct CopyPipeline {
  SlicingProfiler Sub;
  CopyProfiler P{Sub};
  RunResult run(const Module &M) {
    ComposedProfiler<SlicingProfiler, CopyProfiler> Pipe(&Sub, &P);
    return runModule(M, Pipe);
  }
};

/// Substrate + typestate client composed into one pipeline.
struct TypestatePipeline {
  SlicingProfiler Sub;
  TypestateProfiler P;
  explicit TypestatePipeline(TypestateSpec Spec) : P(std::move(Spec), Sub) {}
  RunResult run(const Module &M) {
    ComposedProfiler<SlicingProfiler, TypestateProfiler> Pipe(&Sub, &P);
    return runModule(M, Pipe);
  }
};

//===----------------------------------------------------------------------===
// Figure 2(a): null-value propagation.
//===----------------------------------------------------------------------===

TEST(NullnessProfilerTest, TracesNullOriginAndFlow) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("g", Type::makeRef());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg N = B.nullconst();
  Instruction *NullConst = B.block()->insts().back().get();
  B.storeField(O, A->getId(), "g", N);
  Reg X = B.loadField(O, A->getId(), "g");
  Reg Y = B.move(X);
  Instruction *Copy = B.block()->insts().back().get();
  Reg V = B.loadField(Y, A->getId(), "g"); // NPE here.
  Instruction *Deref = B.block()->insts().back().get();
  B.ret(V);
  B.endFunction();
  M.finalize();

  NullnessProfiler P;
  RunResult R = runModule(M, P);
  ASSERT_EQ(R.Status, RunStatus::Trapped);
  ASSERT_EQ(R.Trap, TrapKind::NullDeref);
  EXPECT_EQ(R.TrapInstr, Deref->getId());

  NullTrace T = traceNullOrigin(P);
  ASSERT_TRUE(T.found());
  EXPECT_EQ(T.Origin, NullConst->getId());
  // The flow ends at the copy whose value was dereferenced and passes
  // through the heap store/load hops.
  ASSERT_GE(T.Flow.size(), 4u);
  EXPECT_EQ(T.Flow.front(), NullConst->getId());
  EXPECT_EQ(T.Flow.back(), Copy->getId());
}

TEST(NullnessProfilerTest, NoTrapMeansNoTrace) {
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg C = B.iconst(1);
  B.ret(C);
  B.endFunction();
  M.finalize();
  NullnessProfiler P;
  RunResult R = runModule(M, P);
  EXPECT_EQ(R.Status, RunStatus::Finished);
  EXPECT_FALSE(traceNullOrigin(P).found());
}

TEST(NullnessProfilerTest, DomainSplitsNullAndNotNull) {
  // The same load instruction observes null and non-null values across a
  // loop: it gets two abstract nodes, one per domain element.
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("g", Type::makeRef());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg NullR = B.nullconst();
  B.storeField(O, A->getId(), "g", NullR);
  // Loop twice: the load sees null on the first trip, the object on the
  // second.
  Reg I = B.iconst(0);
  Reg Two = B.iconst(2);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, Two, Body, Exit);
  B.setBlock(Body);
  Reg X = B.loadField(O, A->getId(), "g");
  Instruction *Load = B.block()->insts().back().get();
  (void)X;
  B.storeField(O, A->getId(), "g", O);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ret();
  B.endFunction();
  M.finalize();

  NullnessProfiler P;
  RunResult R = runModule(M, P);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  // One static instruction, two abstract nodes: one per domain element.
  NodeId NullNode = P.graph().lookup(Load->getId(), kNullDom);
  NodeId NotNullNode = P.graph().lookup(Load->getId(), kNotNullDom);
  ASSERT_NE(NullNode, kNoNode);
  ASSERT_NE(NotNullNode, kNoNode);
  EXPECT_EQ(P.graph().freq(NullNode), 1u);
  EXPECT_EQ(P.graph().freq(NotNullNode), 1u);
}

//===----------------------------------------------------------------------===
// Figure 2(b): typestate history.
//===----------------------------------------------------------------------===

/// Builds the File protocol module: create/put/close/get on a File object,
/// with `get` called after `close` (the Figure 2(b) violation).
struct FileProgram {
  std::unique_ptr<Module> M;
  ClassId File;
  AllocSiteId Site;
  MethodNameId Create, Put, Close, Get;
};

FileProgram buildFileProgram(bool Violate) {
  FileProgram Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;
  ClassDecl *File = M.addClass("File");
  File->addField("pos", Type::makeInt());
  Out.File = File->getId();
  IRBuilder B(M);

  for (const char *Name : {"create", "put", "close", "get"}) {
    B.beginMethod(Out.File, Name, 1);
    Reg Pos = B.loadField(0, Out.File, "pos");
    Reg One = B.iconst(1);
    Reg NP = B.add(Pos, One);
    B.storeField(0, Out.File, "pos", NP);
    B.ret(NP);
    B.endFunction();
  }
  Out.Create = M.findMethodName("create");
  Out.Put = M.findMethodName("put");
  Out.Close = M.findMethodName("close");
  Out.Get = M.findMethodName("get");

  B.beginFunction("main", 0);
  Reg F = B.alloc(Out.File);
  Instruction *Alloc = B.block()->insts().back().get();
  B.vcallVoid("create", {F});
  B.vcallVoid("put", {F});
  B.vcallVoid("put", {F});
  if (!Violate) {
    Reg Ch = B.vcall("get", {F});
    B.ncallVoid("sink", {Ch});
  }
  B.vcallVoid("close", {F});
  if (Violate) {
    Reg Ch = B.vcall("get", {F}); // Read after close: violation.
    B.ncallVoid("sink", {Ch});
  }
  B.ret();
  B.endFunction();
  M.finalize();
  Out.Site = cast<AllocInst>(Alloc)->Site;
  return Out;
}

TypestateSpec fileSpec(const FileProgram &P) {
  // States: 0 = uninitialized, 1 = open-empty, 2 = open-nonempty,
  // 3 = closed.
  TypestateSpec Spec;
  Spec.TrackedClasses = {P.File};
  Spec.NumStates = 4;
  Spec.InitialState = 0;
  Spec.addTransition(0, P.Create, 1);
  Spec.addTransition(1, P.Put, 2);
  Spec.addTransition(2, P.Put, 2);
  Spec.addTransition(2, P.Get, 2);
  Spec.addTransition(1, P.Close, 3);
  Spec.addTransition(2, P.Close, 3);
  return Spec;
}

TEST(TypestateProfilerTest, DetectsReadAfterClose) {
  FileProgram Prog = buildFileProgram(/*Violate=*/true);
  TypestatePipeline TP(fileSpec(Prog));
  RunResult R = TP.run(*Prog.M);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  ASSERT_EQ(TP.P.violations().size(), 1u);
  const TypestateViolation &V = TP.P.violations()[0];
  EXPECT_EQ(V.Site, Prog.Site);
  EXPECT_EQ(V.StateBefore, 3u); // closed
  EXPECT_EQ(V.Method, Prog.Get);
}

TEST(TypestateProfilerTest, CleanRunHasNoViolations) {
  FileProgram Prog = buildFileProgram(/*Violate=*/false);
  TypestatePipeline TP(fileSpec(Prog));
  RunResult R = TP.run(*Prog.M);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  EXPECT_TRUE(TP.P.violations().empty());
}

TEST(TypestateProfilerTest, HistoryRecordsNextEventEdges) {
  FileProgram Prog = buildFileProgram(/*Violate=*/true);
  TypestatePipeline TP(fileSpec(Prog));
  TP.run(*Prog.M);
  // create -> put -> put(merged) -> close -> get: at least 3 distinct
  // next-event edges after merging.
  EXPECT_GE(TP.P.eventEdges().size(), 3u);
  std::string History = TP.P.describeHistory(*Prog.M);
  // Edges are labeled with the *target* event's method; the first event
  // (create) appears as a source node in state 0.
  EXPECT_NE(History.find("-put->"), std::string::npos);
  EXPECT_NE(History.find("-close->"), std::string::npos);
  EXPECT_NE(History.find("-get->"), std::string::npos);
  EXPECT_NE(History.find(":s3"), std::string::npos); // the closed state
}

TEST(TypestateProfilerTest, EventsMergeAcrossInstances) {
  // Many objects from one site traverse the protocol: the abstract graph
  // stays the same size as for a single object (bounded domain).
  Module M;
  ClassDecl *File = M.addClass("File");
  File->addField("pos", Type::makeInt());
  IRBuilder B(M);
  for (const char *Name : {"create", "close"}) {
    B.beginMethod(File->getId(), Name, 1);
    B.ret();
    B.endFunction();
  }
  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(50);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg F = B.alloc(File->getId());
  B.vcallVoid("create", {F});
  B.vcallVoid("close", {F});
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ret();
  B.endFunction();
  M.finalize();

  TypestateSpec Spec;
  Spec.TrackedClasses = {File->getId()};
  Spec.NumStates = 3;
  Spec.addTransition(0, M.findMethodName("create"), 1);
  Spec.addTransition(1, M.findMethodName("close"), 2);
  TypestatePipeline TP(Spec);
  TP.run(M);
  EXPECT_TRUE(TP.P.violations().empty());
  // Two abstract event nodes (create@s0, close@s1) despite 50 objects.
  EXPECT_EQ(TP.P.graph().numNodes(), 2u);
  EXPECT_EQ(TP.P.graph().freq(0) + TP.P.graph().freq(1), 100u);
}

//===----------------------------------------------------------------------===
// Figure 2(c): extended copy profiling.
//===----------------------------------------------------------------------===

TEST(CopyProfilerTest, RecordsChainWithStackHops) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O1 = B.alloc(A->getId());
  Instruction *Alloc1 = B.block()->insts().back().get();
  Reg O3 = B.alloc(A->getId());
  Instruction *Alloc3 = B.block()->insts().back().get();
  Reg C = B.iconst(7);
  B.storeField(O1, A->getId(), "f", C);
  Reg Bv = B.loadField(O1, A->getId(), "f");
  Instruction *Load = B.block()->insts().back().get();
  Reg C2 = B.move(Bv);
  Instruction *Copy = B.block()->insts().back().get();
  B.storeField(O3, A->getId(), "f", C2);
  Instruction *Store = B.block()->insts().back().get();
  B.ret();
  B.endFunction();
  M.finalize();

  CopyPipeline CP;
  RunResult R = CP.run(M);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  const CopyProfiler &P = CP.P;

  AllocSiteId S1 = cast<AllocInst>(Alloc1)->Site;
  AllocSiteId S3 = cast<AllocInst>(Alloc3)->Site;
  FieldSlot Slot;
  ASSERT_TRUE(M.resolveField(A->getId(), "f", Slot));

  ASSERT_EQ(P.chains().size(), 1u);
  const CopyProfiler::CopyChain &Chain = P.chains()[0];
  EXPECT_EQ(Chain.From.Tag, S1);
  EXPECT_EQ(Chain.From.Slot, Slot);
  EXPECT_EQ(Chain.To.Tag, S3);
  EXPECT_EQ(Chain.To.Slot, Slot);
  EXPECT_EQ(Chain.Count, 1u);

  // The intermediate stack hops: store <- copy <- load.
  std::vector<InstrId> Hops = P.stackHops(Chain);
  ASSERT_EQ(Hops.size(), 3u);
  EXPECT_EQ(Hops[0], Store->getId());
  EXPECT_EQ(Hops[1], Copy->getId());
  EXPECT_EQ(Hops[2], Load->getId());
}

TEST(CopyProfilerTest, ComputationBreaksChains) {
  Module M;
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  A->addField("g", Type::makeInt());
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg O = B.alloc(A->getId());
  Reg C = B.iconst(7);
  B.storeField(O, A->getId(), "f", C);
  Reg L = B.loadField(O, A->getId(), "f");
  Reg One = B.iconst(1);
  Reg Sum = B.add(L, One); // Computation: no longer a copy.
  B.storeField(O, A->getId(), "g", Sum);
  B.ret();
  B.endFunction();
  M.finalize();

  CopyPipeline CP;
  CP.run(M);
  EXPECT_TRUE(CP.P.chains().empty());
}

TEST(CopyProfilerTest, CountsAccumulateAcrossIterations) {
  // A loop copying elements between two arrays: one abstract chain with
  // the iteration count.
  Module M;
  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg N = B.iconst(40);
  Reg Src = B.allocArray(TypeKind::Int, N);
  Instruction *SrcAlloc = B.block()->insts().back().get();
  Reg Dst = B.allocArray(TypeKind::Int, N);
  Instruction *DstAlloc = B.block()->insts().back().get();
  Reg I = B.iconst(0);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg V = B.loadElem(Src, I);
  B.storeElem(Dst, I, V);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ret();
  B.endFunction();
  M.finalize();

  CopyPipeline CP;
  CP.run(M);
  const CopyProfiler &P = CP.P;
  ASSERT_EQ(P.chains().size(), 1u);
  EXPECT_EQ(P.chains()[0].Count, 40u);
  EXPECT_EQ(P.chains()[0].From.Tag, cast<AllocArrayInst>(SrcAlloc)->Site);
  EXPECT_EQ(P.chains()[0].To.Tag, cast<AllocArrayInst>(DstAlloc)->Site);
  EXPECT_EQ(P.chains()[0].From.Slot, kElemSlot);
}

//===----------------------------------------------------------------------===
// ComposedProfiler: hook fan-out.
//===----------------------------------------------------------------------===

/// Logs every hook it receives into a shared journal, prefixed by its name.
struct RecordingProfiler : NoopProfiler {
  std::vector<std::string> *Log = nullptr;
  std::string Name;
  RecordingProfiler(std::vector<std::string> *Log, std::string Name)
      : Log(Log), Name(std::move(Name)) {}
  void onRunStart(const Module &, Heap &) { Log->push_back(Name + ":start"); }
  void onRunEnd() { Log->push_back(Name + ":end"); }
  void onConst(const ConstInst &) { Log->push_back(Name + ":const"); }
  void onAlloc(const AllocInst &, ObjId) { Log->push_back(Name + ":alloc"); }
};

/// One const, one alloc, return.
std::unique_ptr<Module> buildTinyProgram() {
  auto M = std::make_unique<Module>();
  ClassDecl *A = M->addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(*M);
  B.beginFunction("main", 0);
  Reg C = B.iconst(3);
  B.alloc(A->getId());
  B.ret(C);
  B.endFunction();
  M->finalize();
  return M;
}

TEST(ComposedProfilerTest, FansHooksOutInDeclarationOrder) {
  std::unique_ptr<Module> M = buildTinyProgram();
  std::vector<std::string> Log;
  RecordingProfiler A(&Log, "A"), B(&Log, "B");
  ComposedProfiler<RecordingProfiler, RecordingProfiler> Pipe(&A, &B);
  RunResult R = runModule(*M, Pipe);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  // Every hook reaches every stage, stages in declaration order, events in
  // execution order.
  std::vector<std::string> Expected = {"A:start", "B:start", "A:const",
                                       "B:const", "A:alloc", "B:alloc",
                                       "A:end",   "B:end"};
  EXPECT_EQ(Log, Expected);
}

TEST(ComposedProfilerTest, NullStagesAreSkipped) {
  std::unique_ptr<Module> M = buildTinyProgram();
  std::vector<std::string> Log;
  RecordingProfiler B(&Log, "B");
  ComposedProfiler<RecordingProfiler, RecordingProfiler> Pipe(nullptr, &B);
  RunResult R = runModule(*M, Pipe);
  ASSERT_EQ(R.Status, RunStatus::Finished);
  std::vector<std::string> Expected = {"B:start", "B:const", "B:alloc",
                                       "B:end"};
  EXPECT_EQ(Log, Expected);
}

TEST(ComposedProfilerTest, EmptyCompositionMatchesNoopBaseline) {
  std::unique_ptr<Module> M = buildTinyProgram();
  NoopProfiler Noop;
  RunResult RN = runModule(*M, Noop);
  ComposedProfiler<> Empty;
  RunResult RE = runModule(*M, Empty);
  EXPECT_EQ(RE.Status, RN.Status);
  EXPECT_EQ(RE.ExecutedInstrs, RN.ExecutedInstrs);
  EXPECT_EQ(RE.ReturnValue.asInt(), RN.ReturnValue.asInt());
  EXPECT_EQ(RE.SinkHash, RN.SinkHash);
}

//===----------------------------------------------------------------------===
// ProfileSession: one pass, every client.
//===----------------------------------------------------------------------===

/// A program exercising all three clients: a heap-to-heap copy chain, a
/// typestate violation (get after close), and finally a null dereference.
struct TripleProgram {
  std::unique_ptr<Module> M;
  TypestateSpec Spec;
};

TripleProgram buildTripleProgram() {
  TripleProgram Out;
  Out.M = std::make_unique<Module>();
  Module &M = *Out.M;

  ClassDecl *FileC = M.addClass("File");
  FileC->addField("pos", Type::makeInt());
  ClassDecl *A = M.addClass("A");
  A->addField("f", Type::makeInt());
  IRBuilder B(M);
  for (const char *Name : {"create", "put", "close", "get"}) {
    B.beginMethod(FileC->getId(), Name, 1);
    Reg Pos = B.loadField(0, FileC->getId(), "pos");
    Reg One = B.iconst(1);
    Reg NP = B.add(Pos, One);
    B.storeField(0, FileC->getId(), "pos", NP);
    B.ret(NP);
    B.endFunction();
  }

  B.beginFunction("main", 0);
  // Copy chain: A.f -> A.f through a register move.
  Reg O1 = B.alloc(A->getId());
  Reg O2 = B.alloc(A->getId());
  Reg C = B.iconst(7);
  B.storeField(O1, A->getId(), "f", C);
  Reg L = B.loadField(O1, A->getId(), "f");
  Reg Mv = B.move(L);
  B.storeField(O2, A->getId(), "f", Mv);
  // Typestate violation: get after close.
  Reg F = B.alloc(FileC->getId());
  B.vcallVoid("create", {F});
  B.vcallVoid("put", {F});
  B.vcallVoid("close", {F});
  Reg Ch = B.vcall("get", {F});
  B.ncallVoid("sink", {Ch});
  // Null dereference: terminates the run in a trap.
  Reg Nl = B.nullconst();
  Reg X = B.loadField(Nl, A->getId(), "f");
  B.ret(X);
  B.endFunction();
  M.finalize();

  TypestateSpec Spec;
  Spec.TrackedClasses = {FileC->getId()};
  Spec.NumStates = 4;
  Spec.InitialState = 0;
  Spec.addTransition(0, M.findMethodName("create"), 1);
  Spec.addTransition(1, M.findMethodName("put"), 2);
  Spec.addTransition(2, M.findMethodName("put"), 2);
  Spec.addTransition(2, M.findMethodName("get"), 2);
  Spec.addTransition(1, M.findMethodName("close"), 3);
  Spec.addTransition(2, M.findMethodName("close"), 3);
  Out.Spec = Spec;
  return Out;
}

std::string renderClients(const ProfileSession &S, const Module &M) {
  StringOutStream OS;
  S.printClientReports(M, OS);
  return OS.str();
}

TEST(ProfileSessionTest, SinglePassMatchesSeparatePasses) {
  TripleProgram Prog = buildTripleProgram();

  SessionConfig All;
  All.Clients = ClientSet::all();
  All.Typestate = Prog.Spec;
  ProfileSession SAll(All);
  RunResult R = SAll.run(*Prog.M).Run;
  EXPECT_EQ(R.Status, RunStatus::Trapped);
  std::string OnePass = renderClients(SAll, *Prog.M);

  // Each client alone, three separate interpretation passes; sections
  // concatenate in the same copy/nullness/typestate order the session
  // prints them in.
  std::string Separate;
  for (ClientSet Client : {ClientSet::copy(), ClientSet::nullness(),
                           ClientSet::typestate()}) {
    SessionConfig One;
    One.Clients = Client;
    One.Typestate = Prog.Spec;
    ProfileSession S(One);
    S.run(*Prog.M);
    Separate += renderClients(S, *Prog.M);
  }

  // The acceptance bar: byte-identical per-client reports.
  EXPECT_EQ(OnePass, Separate);
  // And they actually found the planted defects.
  EXPECT_NE(OnePass.find("copy chains"), std::string::npos);
  EXPECT_NE(OnePass.find("propagation flow"), std::string::npos);
  EXPECT_NE(OnePass.find("VIOLATION"), std::string::npos);
}

TEST(ProfileSessionTest, ShardedFoldIsThreadCountInvariant) {
  TripleProgram Prog = buildTripleProgram();
  SessionConfig Cfg;
  Cfg.Clients = ClientSet::all();
  Cfg.Typestate = Prog.Spec;

  ShardedSession Seq = runShardedSession(*Prog.M, 4, Cfg, /*Threads=*/1);
  ShardedSession Par = runShardedSession(*Prog.M, 4, Cfg, /*Threads=*/4);
  ASSERT_TRUE(Seq.Session && Par.Session);

  // Substrate graphs agree...
  const DepGraph &GS = Seq.Session->slicing()->graph();
  const DepGraph &GP = Par.Session->slicing()->graph();
  EXPECT_EQ(GS.numNodes(), GP.numNodes());
  EXPECT_EQ(GS.numEdges(), GP.numEdges());
  // ...and so does every client's rendered report, byte for byte.
  EXPECT_EQ(renderClients(*Seq.Session, *Prog.M),
            renderClients(*Par.Session, *Prog.M));
  // Four shards, one violation each, appended in shard order.
  EXPECT_EQ(Seq.Session->typestate()->violations().size(), 4u);
  // Copy counts sum across shards into the single abstract chain.
  ASSERT_EQ(Seq.Session->copy()->chains().size(), 1u);
  EXPECT_EQ(Seq.Session->copy()->chains()[0].Count, 4u);
}

} // namespace
