//===- examples/two_stage_tuning.cpp - The Section 4.1 workflow ------------===//
//
// The paper's recommended tuning workflow (Section 4.1): first run a cheap
// flat profiler to find where the time goes and which phase matters; then
// enable the expensive cost-benefit tracking only there, and read the
// ranked reports. Demonstrated on the tradebeans analogue, whose server
// startup/shutdown dominate the run.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "profiling/FlatProfiler.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

using namespace lud;

int main() {
  OutStream &OS = outs();
  Workload W = buildWorkload("tradebeans", 800);

  // Stage 1: the lightweight profile.
  FlatProfiler Flat;
  Heap H;
  Interpreter<FlatProfiler> I(*W.M, H, Flat);
  RunResult R = I.run();
  OS << "=== stage 1: flat profile (" << R.ExecutedInstrs
     << " instructions) ===\n";
  OS << "phase instruction counts:";
  for (size_t Ph = 0; Ph != 3; ++Ph)
    OS << "  phase" << uint64_t(Ph) << "=" << Flat.phaseInstrs()[Ph];
  OS << "\nhottest methods:\n";
  std::vector<FlatProfiler::MethodRow> Hot = Flat.hotMethods(*W.M);
  for (size_t K = 0; K != Hot.size() && K != 5; ++K)
    OS << "  " << Hot[K].OwnInstrs << "  " << Hot[K].Name << " (x"
       << Hot[K].Invocations << ")\n";
  OS << "hottest allocation sites:\n";
  std::vector<FlatProfiler::AllocRow> Sites = Flat.hotAllocSites(*W.M);
  for (size_t K = 0; K != Sites.size() && K != 5; ++K)
    OS << "  " << Sites[K].Objects << "  " << Sites[K].Description << "\n";

  // The flat profile says: startup/shutdown are ballast; the interesting
  // transaction work is phase 1. Stage 2: track only that phase.
  OS << "\n=== stage 2: cost-benefit tracking of phase 1 only ===\n";
  SlicingConfig Cfg;
  Cfg.TrackedPhaseMask = 1ull << 1;
  ProfileSession Stage2(SessionConfig::profiled(Cfg));
  RunResult Run = Stage2.run(*W.M).Run;
  const DepGraph &G = Stage2.slicing()->graph();
  OS << "tracked " << G.totalFreq() << " of " << Run.ExecutedInstrs
     << " instruction instances ("
     << uint64_t(100 * G.totalFreq() / Run.ExecutedInstrs) << "%)\n\n";

  CostModel CM(G);
  LowUtilityReport Report(CM, *W.M);
  Report.print(OS, 5);
  OS << "\nThe KeyBlock/KeyIter wrappers surface immediately once the\n"
        "analysis looks only at the transaction phase.\n";

  int Best = -1;
  for (AllocSiteId S : W.PlantedSites) {
    int Rank = Report.rankOf(S);
    if (Rank >= 0 && (Best < 0 || Rank < Best))
      Best = Rank;
  }
  return Best >= 0 && Best < 5 ? 0 : 1;
}
