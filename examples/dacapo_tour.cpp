//===- examples/dacapo_tour.cpp - Full diagnosis of one workload -----------===//
//
// Runs one of the 18 DaCapo-style workloads under the profiler and prints
// every diagnosis the tool offers — the workflow of the paper's case
// studies (Section 4.2):
//
//   dacapo_tour [workload] [scale]     (default: eclipse 500)
//
//===----------------------------------------------------------------------===//

#include "analysis/CacheCost.h"
#include "analysis/Clients.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <cstdlib>
#include <cstring>

using namespace lud;

int main(int argc, char **argv) {
  OutStream &OS = outs();
  std::string Name = argc > 1 ? argv[1] : "eclipse";
  int64_t Scale = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 500;

  bool Known = false;
  for (const std::string &N : dacapoNames())
    Known |= N == Name;
  if (!Known) {
    errs() << "unknown workload '" << Name << "'; choose one of:\n ";
    for (const std::string &N : dacapoNames())
      errs() << " " << N;
    errs() << "\n";
    return 1;
  }

  Workload W = buildWorkload(Name, Scale);
  OS << "=== " << Name << " (scale " << Scale << ") ===\n";
  // Two sessions through the shared lifecycle: one uninstrumented for
  // the overhead denominator, one carrying the slicing substrate.
  ProfileSession BaseSession(SessionConfig::baseline());
  TimedRun Base = BaseSession.run(*W.M);
  ProfileSession Session(SessionConfig::profiled());
  TimedRun Prof = Session.run(*W.M);
  SlicingProfiler &SP = *Session.slicing();
  OS << "baseline: " << Base.Run.ExecutedInstrs << " instructions in ";
  OS.printFixed(Base.Seconds * 1e3, 2);
  OS << " ms;  profiled: ";
  OS.printFixed(Prof.Seconds * 1e3, 2);
  OS << " ms (";
  OS.printFixed(Prof.Seconds / Base.Seconds, 1);
  OS << "x overhead)\n";
  const DepGraph &G = SP.graph();
  OS << "Gcost: " << uint64_t(G.numNodes()) << " nodes, "
     << uint64_t(G.numEdges()) << " edges, ";
  OS.printFixed(double(G.memoryFootprint().total()) / 1024.0, 1);
  OS << " KB retained; CR = ";
  OS.printFixed(SP.averageCR(), 3);
  OS << "\n\n";

  CostModel CM(G);
  LowUtilityReport Report(CM, *W.M);
  OS << "--- low-utility data structures (n-RAC / n-RAB ranking) ---\n";
  Report.print(OS, 8);
  if (!W.PlantedSites.empty()) {
    OS << "planted structures rank:";
    for (AllocSiteId S : W.PlantedSites) {
      int R = Report.rankOf(S);
      OS << " " << (R < 0 ? std::string("-") : std::to_string(R + 1));
    }
    OS << "\n";
  }

  OS << "\n--- locations rewritten before being read ---\n";
  printOverwrites(rankOverwrites(SP, *W.M), OS, 5);

  OS << "\n--- always-constant predicates ---\n";
  ClientOptions Busy;
  Busy.MinCount = 16;
  printConstantPredicates(findConstantPredicates(SP, CM, *W.M, Busy),
                          OS, 5);

  OS << "\n--- costliest method return values ---\n";
  std::vector<MethodCostRow> Methods = computeMethodCosts(CM, *W.M);
  for (size_t I = 0; I != Methods.size() && I != 5; ++I) {
    OS << "  ";
    OS.printFixed(Methods[I].ReturnCost, 1);
    OS << "  " << Methods[I].Name << " (body instances: "
       << Methods[I].OwnFreq << ")\n";
  }

  OS << "\n--- cache effectiveness (least effective first) ---\n";
  printCacheScores(rankCacheEffectiveness(CM, *W.M), OS, 5);

  DeadValueAnalysis DV = computeDeadValues(G, Prof.Run.ExecutedInstrs);
  OS << "\n--- bloat metrics ---\nIPD ";
  OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
  OS << "%   IPP ";
  OS.printFixed(100.0 * DV.Metrics.ipp(), 1);
  OS << "%   NLD ";
  OS.printFixed(100.0 * DV.Metrics.nld(), 1);
  OS << "%\n";
  return 0;
}
