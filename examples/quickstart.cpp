//===- examples/quickstart.cpp - Build, profile, rank ----------------------===//
//
// The 60-second tour: construct a small program with the IRBuilder, run it
// under the cost-benefit profiler, and print the low-utility data structure
// report. The program is the paper's motivating example (Section 1 / the
// DaCapo chart anecdote): a list is filled with expensively computed
// entries, but the program only ever asks for its size.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/IRBuilder.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;

int main() {
  OutStream &OS = outs();

  // 1. Build the program.
  //
  //    main():
  //      list = new Entry[200]
  //      for i in 0..200:
  //        v = expensive(i)            # several instructions
  //        e = new Entry; e.v = v      # boxed...
  //        list[i] = e                 # ...and appended
  //      sink(len(list))               # only the size is ever used!
  Module M;
  ClassDecl *Entry = M.addClass("Entry");
  Entry->addField("v", Type::makeInt());

  IRBuilder B(M);
  B.beginFunction("main", 0);
  Reg N = B.iconst(200);
  Reg List = B.allocArray(TypeKind::Ref, N);
  Reg I = B.iconst(0);
  Reg One = B.iconst(1);
  Reg C17 = B.iconst(17);
  BasicBlock *Header = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(Header);
  B.setBlock(Header);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg V1 = B.mul(I, I);
  Reg V2 = B.add(V1, C17);
  Reg V3 = B.mul(V2, V2);
  Reg E = B.alloc(Entry->getId());
  B.storeField(E, Entry->getId(), "v", V3);
  B.storeElem(List, I, E);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Header);
  B.setBlock(Exit);
  Reg Len = B.arrayLen(List);
  B.ncallVoid("sink", {Len});
  B.ret();
  B.endFunction();
  M.finalize();

  // 2. Execute under the slicing profiler: this builds Gcost online,
  //    following the inference rules of the paper's Figure 4. A
  //    ProfileSession owns the whole lifecycle — prepare, run, report —
  //    the same arc lud-run, lud-replay, and the lud-serve daemon share.
  ProfileSession Session(SessionConfig::profiled());
  RunResult Run = Session.run(M).Run;
  const DepGraph &G = Session.slicing()->graph();
  OS << "executed " << Run.ExecutedInstrs << " instructions; Gcost has "
     << uint64_t(G.numNodes()) << " nodes and "
     << uint64_t(G.numEdges()) << " edges\n\n";

  // 3. Rank data structures by relative cost/benefit (Definitions 5-7).
  CostModel CM(G);
  LowUtilityReport Report(CM, M);
  OS << "=== Low-utility data structures (most suspicious first) ===\n";
  Report.print(OS, 5);

  // 4. The ultimately-dead value measurement (Table 1(c)).
  DeadValueAnalysis DV =
      computeDeadValues(G, Run.ExecutedInstrs);
  OS << "\nIPD (instances producing only dead values): ";
  OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
  OS << "%\nNLD (dead graph nodes):                     ";
  OS.printFixed(100.0 * DV.Metrics.nld(), 1);
  OS << "%\n\nThe Entry allocation tops the ranking: its field is written "
        "with\nexpensively computed values that no one ever reads.\n";
  return 0;
}
