//===- examples/find_low_utility.cpp - The eclipse Figure 6 scenario -------===//
//
// Reproduces the paper's real-world example (Figure 6): eclipse's
// ClasspathDirectory.isPackage() calls directoryList(), which builds a
// whole List of file entries — and then isPackage only null-checks the
// result. The entries' fields are never read, so the aggregated n-RAC /
// n-RAB imbalance exposes the List.
//
// This example also demonstrates the textual .lud frontend: the program is
// written as text and parsed, the way an external user would drive the
// library (see also tools/lud-run).
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "ir/Parser.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;

static const char *Program = R"(
# Figure 6, transliterated. A File entry carries (expensively computed)
# metadata; directoryList builds the full list; isPackage null-checks it.

class File {
  sz: int;
  flags: int;
}
class List {
  arr: File[];
  cnt: int;
}

# directoryList(seed) -> List or null
func directoryList(r0) regs 16 {
bb0:
  r1 = new List
  r2 = iconst 8
  r3 = newarray File, r2
  r1.List::arr = r3
  r4 = iconst 0
  r5 = iconst 1
  goto bb1
bb1:
  if r4 < r2 goto bb2 else bb3
bb2:
  r6 = new File
  r7 = iconst 13
  r8 = mul r4, r7
  r9 = add r8, r0
  r10 = mul r9, r9
  r6.File::sz = r10
  r11 = and r9, r2
  r6.File::flags = r11
  r3[r4] = r6
  r4 = add r4, r5
  goto bb1
bb3:
  r1.List::cnt = r2
  # "if nothing is found, set ret to null"
  r12 = iconst 3
  r13 = rem r0, r12
  r14 = iconst 0
  if r13 == r14 goto bb4 else bb5
bb4:
  ret r1
bb5:
  r15 = null
  ret r15
}

# isPackage(seed) -> 0/1: the bug — the list is built either way, only to
# be compared against null.
func isPackage(r0) regs 4 {
bb0:
  r1 = call directoryList(r0)
  r2 = null
  if r1 != r2 goto bb1 else bb2
bb1:
  r3 = iconst 1
  ret r3
bb2:
  r3 = iconst 0
  ret r3
}

func main() regs 8 {
bb0:
  r0 = iconst 0
  r1 = iconst 300
  r2 = iconst 1
  r3 = iconst 0
  goto bb1
bb1:
  if r0 < r1 goto bb2 else bb3
bb2:
  r4 = call isPackage(r0)
  r3 = add r3, r4
  r0 = add r0, r2
  goto bb1
bb3:
  ncall sink(r3)
  ret r3
}
)";

int main() {
  OutStream &OS = outs();
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(Program, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      errs() << "parse error: " << E << "\n";
    return 1;
  }

  // One profiled pass through the session lifecycle: the session
  // prepares the slicing substrate, runs the module, and hands the
  // finished Gcost to the cost model below.
  ProfileSession Session(SessionConfig::profiled());
  RunResult Run = Session.run(*M).Run;
  OS << "isPackage() answered " << Run.ReturnValue.asInt() << " of 300 "
     << "queries positively, executing " << Run.ExecutedInstrs
     << " instructions.\n\n";

  CostModel CM(Session.slicing()->graph());
  LowUtilityReport Report(CM, *M);
  OS << "=== Low-utility data structures ===\n";
  Report.print(OS, 5);
  OS << "\nThe File entries (and the List holding them) have large\n"
        "construction costs and zero field benefit: exactly the paper's\n"
        "eclipse finding. The fix specializes directoryList into a\n"
        "boolean-returning check.\n";
  return 0;
}
