//===- examples/typestate_history.cpp - Figure 2(b) client -----------------===//
//
// Demonstrates typestate-history recording (Section 2.1, Figure 2(b),
// after QVM): File objects move through the protocol
//
//   uninitialized --create--> open-empty --put--> open-nonempty
//   open-* --close--> closed
//
// and reading a closed file violates it. Because the profiler abstracts
// instruction instances into (allocation site, state) classes, the recorded
// history stays bounded no matter how many files the program opens, yet it
// still shows the event path that led to the violation.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "profiling/TypestateProfiler.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;

int main() {
  OutStream &OS = outs();

  Module M;
  ClassDecl *File = M.addClass("File");
  File->addField("pos", Type::makeInt());
  IRBuilder B(M);
  for (const char *Name : {"create", "put", "close", "get"}) {
    B.beginMethod(File->getId(), Name, 1);
    Reg Pos = B.loadField(0, File->getId(), "pos");
    Reg One = B.iconst(1);
    Reg NP = B.add(Pos, One);
    B.storeField(0, File->getId(), "pos", NP);
    B.ret(NP);
    B.endFunction();
  }

  // Open and use many files correctly; one code path reads after close.
  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(100);
  Reg One = B.iconst(1);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg F = B.alloc(File->getId());
  B.vcallVoid("create", {F});
  B.vcallVoid("put", {F});
  B.vcallVoid("close", {F});
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  Reg Bad = B.alloc(File->getId());
  B.vcallVoid("create", {Bad});
  B.vcallVoid("put", {Bad});
  B.vcallVoid("close", {Bad});
  Reg Ch = B.vcall("get", {Bad}); // Violation: read after close.
  B.ncallVoid("sink", {Ch});
  B.ret();
  B.endFunction();
  M.finalize();

  TypestateSpec Spec;
  Spec.TrackedClasses = {File->getId()};
  Spec.NumStates = 4; // 0=uninit 1=open-empty 2=open-nonempty 3=closed
  Spec.addTransition(0, M.findMethodName("create"), 1);
  Spec.addTransition(1, M.findMethodName("put"), 2);
  Spec.addTransition(2, M.findMethodName("put"), 2);
  Spec.addTransition(2, M.findMethodName("get"), 2);
  Spec.addTransition(1, M.findMethodName("close"), 3);
  Spec.addTransition(2, M.findMethodName("close"), 3);

  // The typestate client reads receiver sites from the substrate's heap
  // tags; ProfileSession runs both stages in one interpretation pass.
  SessionConfig SCfg;
  SCfg.Clients = ClientSet::typestate();
  SCfg.Typestate = Spec;
  ProfileSession Session(std::move(SCfg));
  RunResult R = Session.run(M).Run;
  TypestateProfiler &P = *Session.typestate();
  OS << "run finished (" << R.ExecutedInstrs << " instructions), "
     << uint64_t(P.graph().numNodes())
     << " abstract event nodes for 101 File objects\n\n";

  OS << "=== merged event history (site:state -method-> site:state) ===\n"
     << P.describeHistory(M) << "\n";

  for (const TypestateViolation &V : P.violations()) {
    OS << "VIOLATION: method '" << M.methodNames()[V.Method]
       << "' invoked in state s" << V.StateBefore << " on objects from "
       << M.describeAllocSite(V.Site) << "\n  at: "
       << instToString(M, *M.getInstr(V.Instr)) << " in "
       << M.getInstrFunction(V.Instr)->getName() << "\n";
  }
  return P.violations().empty() ? 1 : 0;
}
