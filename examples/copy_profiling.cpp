//===- examples/copy_profiling.cpp - Figure 2(c) client --------------------===//
//
// Demonstrates extended copy profiling (Section 2.1, Figure 2(c)): data
// moving from one heap location to another without any computation. The
// domain O x P (allocation site x field) annotates every copy instruction
// with the field its value originated from, so — unlike a flat copy graph —
// the intermediate stack hops (the methods the data tunneled through) are
// recoverable.
//
// The program is a miniature of the tradesoap finding: a bean's fields are
// copied into a transfer object and back out, field by field, per request.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "profiling/CopyProfiler.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;

int main() {
  OutStream &OS = outs();

  Module M;
  ClassDecl *Account = M.addClass("Account");
  Account->addField("balance", Type::makeInt());
  Account->addField("owner", Type::makeInt());
  ClassDecl *Soap = M.addClass("SoapBean");
  Soap->addField("balance", Type::makeInt());
  Soap->addField("owner", Type::makeInt());

  IRBuilder B(M);
  // convert(account) -> SoapBean: the pure copy layer.
  B.beginFunction("convert", 1);
  Reg Out = B.alloc(Soap->getId());
  Reg Bal = B.loadField(0, Account->getId(), "balance");
  B.storeField(Out, Soap->getId(), "balance", Bal);
  Reg Own = B.loadField(0, Account->getId(), "owner");
  B.storeField(Out, Soap->getId(), "owner", Own);
  B.ret(Out);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg I = B.iconst(0);
  Reg N = B.iconst(50);
  Reg One = B.iconst(1);
  Reg Acc = B.iconst(0);
  BasicBlock *H = B.newBlock();
  BasicBlock *Body = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(H);
  B.setBlock(H);
  B.condBr(CmpOp::Lt, I, N, Body, Exit);
  B.setBlock(Body);
  Reg A = B.alloc(Account->getId());
  Reg V = B.mul(I, I);
  B.storeField(A, Account->getId(), "balance", V);
  B.storeField(A, Account->getId(), "owner", I);
  Reg Bean = B.call("convert", {A});
  Reg Back = B.loadField(Bean, Soap->getId(), "balance");
  B.binInto(Acc, BinOp::Add, Acc, Back);
  B.binInto(I, BinOp::Add, I, One);
  B.br(H);
  B.setBlock(Exit);
  B.ncallVoid("sink", {Acc});
  B.ret();
  B.endFunction();
  M.finalize();

  // The copy client rides the slicing substrate (which provides the heap
  // tags); ProfileSession composes both into one interpretation pass.
  SessionConfig SCfg;
  SCfg.Clients = ClientSet::copy();
  ProfileSession Session(std::move(SCfg));
  RunResult R = Session.run(M).Run;
  CopyProfiler &P = *Session.copy();
  OS << "run finished; " << P.copyInstances()
     << " copy-instruction instances out of " << R.ExecutedInstrs
     << " executed ("
     << uint64_t(100 * P.copyInstances() / R.ExecutedInstrs) << "%)\n\n";

  auto locName = [&](const HeapLoc &L) {
    if (DepGraph::isStaticTag(L.Tag))
      return std::string("static");
    std::string Field =
        L.Slot == kElemSlot
            ? std::string("ELM")
            : M.fieldName(cast<AllocInst>(M.getAllocSite(AllocSiteId(L.Tag)))
                              ->Class,
                          L.Slot);
    return M.describeAllocSite(AllocSiteId(L.Tag)) + "." + Field;
  };

  OS << "=== heap-to-heap copy chains ===\n";
  for (const CopyProfiler::CopyChain &Chain : P.chains()) {
    OS << "  " << locName(Chain.From) << "  ->  " << locName(Chain.To)
       << "   x" << Chain.Count << "\n";
    OS << "    via stack hops:\n";
    for (InstrId Hop : P.stackHops(Chain))
      OS << "      " << M.getInstrFunction(Hop)->getName() << ": "
         << instToString(M, *M.getInstr(Hop)) << "\n";
  }
  OS << "\nEvery chain above moves data with zero computation: the paper's\n"
        "tradesoap finding (convertXBean copies between representations).\n";
  return 0;
}
