//===- examples/null_propagation.cpp - Figure 2(a) client ------------------===//
//
// Demonstrates abstract dynamic thin slicing over the {null, not-null}
// domain (Section 2.1, Figure 2(a)): when the program traps on a null
// dereference, the recorded graph yields not just the origin of the null
// value but the whole propagation flow — through fields, locals and calls —
// to the faulting instruction.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "profiling/NullnessProfiler.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

using namespace lud;

int main() {
  OutStream &OS = outs();

  // A null is produced in `makeWidget` (the "not found" path), stored into
  // a registry, fetched much later, passed through a helper, and finally
  // dereferenced in `render`.
  Module M;
  ClassDecl *Widget = M.addClass("Widget");
  Widget->addField("size", Type::makeInt());
  ClassDecl *Registry = M.addClass("Registry");
  Registry->addField("cached", Type::makeRef(Widget->getId()));

  IRBuilder B(M);

  B.beginFunction("makeWidget", 1); // (found) -> Widget or null
  Reg OneC = B.iconst(1);
  BasicBlock *Found = B.newBlock();
  BasicBlock *Missing = B.newBlock();
  B.condBr(CmpOp::Eq, 0, OneC, Found, Missing);
  B.setBlock(Found);
  Reg W = B.alloc(Widget->getId());
  B.ret(W);
  B.setBlock(Missing);
  Reg Null = B.nullconst();
  B.ret(Null);
  B.endFunction();

  B.beginFunction("fetch", 1); // (registry) -> Widget
  Reg Cached = B.loadField(0, Registry->getId(), "cached");
  B.ret(Cached);
  B.endFunction();

  B.beginFunction("render", 1); // (widget) -> int
  Reg Size = B.loadField(0, Widget->getId(), "size"); // NPE here.
  B.ret(Size);
  B.endFunction();

  B.beginFunction("main", 0);
  Reg Zero = B.iconst(0);
  Reg Wd = B.call("makeWidget", {Zero}); // "not found" -> null
  Reg Rg = B.alloc(Registry->getId());
  B.storeField(Rg, Registry->getId(), "cached", Wd);
  Reg Got = B.call("fetch", {Rg});
  Reg Res = B.call("render", {Got});
  B.ret(Res);
  B.endFunction();
  M.finalize();

  // Run the nullness client through the composed pipeline (one pass).
  SessionConfig SCfg;
  SCfg.Clients = ClientSet::nullness();
  ProfileSession Session(std::move(SCfg));
  RunResult R = Session.run(M).Run;
  NullnessProfiler &P = *Session.nullness();
  if (R.Status != RunStatus::Trapped) {
    OS << "expected a null-dereference trap\n";
    return 1;
  }
  OS << "trap: " << trapKindName(R.Trap) << " at instruction "
     << uint64_t(R.TrapInstr) << " ("
     << instToString(M, *M.getInstr(R.TrapInstr)) << " in "
     << M.getInstrFunction(R.TrapInstr)->getName() << ")\n\n";

  NullTrace T = traceNullOrigin(P);
  if (!T.found()) {
    OS << "no trace recorded\n";
    return 1;
  }
  OS << "the null value was created at: "
     << instToString(M, *M.getInstr(T.Origin)) << " in "
     << M.getInstrFunction(T.Origin)->getName() << "\n\n";
  OS << "propagation flow (origin -> dereference):\n";
  for (InstrId I : T.Flow)
    OS << "  " << M.getInstrFunction(I)->getName() << ": "
       << instToString(M, *M.getInstr(I)) << "\n";
  OS << "\nOrigin-only trackers stop at the first line; the flow shows the\n"
        "store into Registry.cached and the fetch that resurrected it.\n";
  return 0;
}
