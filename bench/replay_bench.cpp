//===- bench/replay_bench.cpp - Live vs record vs replay -------------------===//
//
// The trace layer's cost model, measured three ways per workload:
//
//   live        — the ordinary profiled run (all clients), recording off.
//                 With recording disabled the session instantiates exactly
//                 the pre-trace pipelines, so this is also the "<2% when
//                 off" reference: there is no recorder branch on the hot
//                 path to pay for.
//   record      — the same run with a TraceRecorder composed ahead of the
//                 clients, encoding every hook into an in-memory sink.
//   replay-only — re-driving the same analyses from the recorded bytes,
//                 with no interpreter: the marginal cost of the analyses
//                 themselves, and the speedup ceiling for re-running a
//                 different client mix offline.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/OutStream.h"
#include "trace/TraceRecorder.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

constexpr ClientSet kAllClients = ClientSet::all();

double liveSeconds(const Module &M, size_t *Nodes = nullptr,
                   size_t *Edges = nullptr) {
  SessionConfig Cfg;
  Cfg.Clients = kAllClients;
  ProfileSession S(Cfg);
  double Sec = S.run(M).Seconds;
  if (Nodes)
    *Nodes = S.slicing()->graph().numNodes();
  if (Edges)
    *Edges = S.slicing()->graph().numEdges();
  return Sec;
}

double recordSeconds(const Module &M, std::string *TraceOut) {
  StringOutStream Sink;
  SessionConfig Cfg;
  Cfg.Clients = kAllClients;
  Cfg.RecordSink = &Sink;
  ProfileSession S(Cfg);
  double Sec = S.run(M).Seconds;
  if (TraceOut)
    *TraceOut = Sink.str();
  return Sec;
}

double replaySeconds(const Module &M, const std::string &Trace) {
  SessionConfig Cfg;
  Cfg.Clients = kAllClients;
  ProfileSession S(Cfg);
  ReplayRun R = S.replay(M, Trace);
  if (!R.Ok) {
    std::fprintf(stderr, "replay failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R.Seconds;
}

void printTable() {
  const int64_t S = tableScale() / 2;
  std::printf("=== Trace layer: live vs record vs replay-only "
              "(scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %10s %10s %12s %10s %10s\n", "workload", "live",
              "record", "replay-only", "rec-cost", "trace-KB");
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    size_t Nodes = 0, Edges = 0;
    double Live = liveSeconds(*W.M, &Nodes, &Edges);
    std::string Trace;
    double Rec = recordSeconds(*W.M, &Trace);
    double Rep = replaySeconds(*W.M, Trace);
    std::printf("%-12s %9.3fs %9.3fs %11.3fs %9.2fx %9.1f\n", Name.c_str(),
                Live, Rec, Rep, Live > 0 ? Rec / Live : 0,
                double(Trace.size()) / 1024.0);
    emitJsonRow("replay/live/" + Name, S, Live, Nodes, Edges);
    emitJsonRow("replay/record/" + Name, S, Rec, Nodes, Edges);
    emitJsonRow("replay/replay_only/" + Name, S, Rep, Nodes, Edges);
  }
  std::printf("\n");

  // Telemetry export: a recording session's registry carries the trace.*
  // gauges (events, bytes, per-phase attribution, compression).
  if (statsEnabled()) {
    Workload W = buildWorkload("eclipse", S);
    StringOutStream Sink;
    SessionConfig Cfg;
    Cfg.Clients = kAllClients;
    Cfg.RecordSink = &Sink;
    Cfg.CollectStats = true;
    ProfileSession Sess(Cfg);
    Sess.run(*W.M);
    emitStats(Sess);
  }
}

/// Timing aspect: the live run, recording off (the overhead reference).
void BM_LiveAllClients(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  for (auto _ : State) {
    benchmark::DoNotOptimize(liveSeconds(*W.M));
  }
}

/// Timing aspect: the same run with the recorder composed in.
void BM_RecordAllClients(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  for (auto _ : State) {
    benchmark::DoNotOptimize(recordSeconds(*W.M, nullptr));
  }
}

/// Timing aspect: replaying the recorded hook stream, no interpreter.
void BM_ReplayAllClients(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  std::string Trace;
  recordSeconds(*W.M, &Trace);
  for (auto _ : State) {
    benchmark::DoNotOptimize(replaySeconds(*W.M, Trace));
  }
}

} // namespace

BENCHMARK(BM_LiveAllClients)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RecordAllClients)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplayAllClients)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  initStats(&argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
