//===- bench/table1_bloat_bench.cpp - Table 1 (c): bloat measurement -------===//
//
// Reproduces Table 1 part (c) at s = 16: total instruction instances I, the
// fraction of instances producing only ultimately-dead values (IPD), the
// fraction producing values that end up only in predicates (IPP), and the
// fraction of graph nodes that are ultimately dead (NLD). Shape to check
// against the paper: the case-study programs with the biggest wins (bloat,
// derby, sunflow analogues) have the highest IPD; fop's analogue has high
// IPP with near-zero IPD; NLD is substantial (paper average 25.5%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/DeadValues.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Table 1 (c): bloat measurement, s=16 (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %12s %8s %8s %8s\n", "program", "I", "IPD%", "IPP%",
              "NLD%");
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    ProfiledRun P = profiledRun(*W.M);
    DeadValueAnalysis DV =
        computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
    std::printf("%-12s %12llu %8.1f %8.1f %8.1f\n", Name.c_str(),
                (unsigned long long)DV.Metrics.TotalInstrInstances,
                100.0 * DV.Metrics.ipd(), 100.0 * DV.Metrics.ipp(),
                100.0 * DV.Metrics.nld());
  }
  std::printf("\n");
}

/// Timing aspect: the dead-value analysis itself.
void BM_DeadValueAnalysis(benchmark::State &State) {
  const std::string &Name = dacapoNames()[State.range(0)];
  Workload W = buildWorkload(Name, tableScale() / 4);
  ProfiledRun P = profiledRun(*W.M);
  for (auto _ : State) {
    DeadValueAnalysis DV =
        computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
    benchmark::DoNotOptimize(DV.Metrics.DeadFreq);
  }
  State.SetLabel(Name);
  State.counters["nodes"] = double(P.Prof->graph().numNodes());
}

} // namespace

BENCHMARK(BM_DeadValueAnalysis)->DenseRange(0, 17);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
