//===- bench/table1_gcost_bench.cpp - Table 1 (a)/(b): Gcost ---------------===//
//
// Reproduces Table 1 parts (a) and (b): per-benchmark Gcost characteristics
// for s = 8 and s = 16 context slots — node count N, edge count E, retained
// graph memory M, whole-program tracking overhead O (instrumented time over
// uninstrumented time on the same engine), and the context conflict ratio
// CR. The paper's absolute values belong to J9 + real DaCapo; the shape to
// check: N and E are bounded by code size (not run length), M is small, O
// is a large constant factor, CR is near zero and shrinks as s grows.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Table 1 (a)/(b): Gcost characteristics (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s | %8s %8s %9s %6s %6s | %8s %8s %9s %6s %6s\n",
              "program", "N(s=8)", "E(s=8)", "M(KB)", "O(x)", "CR",
              "N(s=16)", "E(s=16)", "M(KB)", "O(x)", "CR");
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    double Base = baselineSeconds(*W.M);
    std::printf("%-12s |", Name.c_str());
    for (uint32_t Slots : {8u, 16u}) {
      SlicingConfig Cfg;
      Cfg.ContextSlots = Slots;
      ProfiledRun P = profiledRun(*W.M, Cfg);
      const DepGraph &G = P.Prof->graph();
      double MemKB = double(G.memoryFootprint().total()) / 1024.0;
      double Overhead = Base > 0 ? P.Seconds / Base : 0;
      std::printf(" %8zu %8zu %9.1f %6.1f %6.3f %s", G.numNodes(),
                  G.numEdges(), MemKB, Overhead, P.Prof->averageCR(),
                  Slots == 8 ? "|" : "");
      if (Slots == 16)
        emitJsonRow("table1_gcost/" + Name, S, P.Seconds, G.numNodes(),
                    G.numEdges());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// Timing aspect: profiled execution per workload at s = 16.
void BM_ProfiledRun(benchmark::State &State) {
  const std::string &Name = dacapoNames()[State.range(0)];
  Workload W = buildWorkload(Name, tableScale() / 4);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M);
    Instrs = P.Run.ExecutedInstrs;
    benchmark::DoNotOptimize(P.Prof->graph().numNodes());
  }
  State.SetLabel(Name);
  State.counters["instrs"] = double(Instrs);
  State.SetItemsProcessed(State.iterations() * int64_t(Instrs));
}

void BM_BaselineRun(benchmark::State &State) {
  const std::string &Name = dacapoNames()[State.range(0)];
  Workload W = buildWorkload(Name, tableScale() / 4);
  for (auto _ : State) {
    TimedRun R = baselineRun(*W.M);
    benchmark::DoNotOptimize(R.Run.SinkHash);
  }
  State.SetLabel(Name);
}

} // namespace

BENCHMARK(BM_BaselineRun)->DenseRange(0, 17)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfiledRun)->DenseRange(0, 17)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
