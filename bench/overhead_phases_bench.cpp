//===- bench/overhead_phases_bench.cpp - Section 4.1 phase tracking --------===//
//
// Reproduces the selective-tracking experiment of Section 4.1: for the two
// transaction applications (tradebeans, tradesoap), whole-program tracking
// is compared against tracking only the load (steady-state) phase, skipping
// server startup and shutdown. The paper reports a 5-10x overhead
// reduction; the shape to check is that load-only tracking costs a small
// fraction of whole-program tracking while producing the same graph for the
// phase of interest.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"tradebeans", "tradesoap"};

/// Minimum-of-reps uninstrumented (Noop-profiled) wall time with the
/// execution backend pinned, plus the run's instruction count.
double engineSeconds(const Module &M, EngineKind E, uint64_t &Instrs,
                     int Reps = 3) {
  double Best = 1e100;
  for (int I = 0; I != Reps; ++I) {
    ComposedProfiler<> P;
    Heap H;
    auto T0 = std::chrono::steady_clock::now();
    RunResult R = runWithEngine(E, M, H, P, RunConfig{});
    double S =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    Instrs = R.ExecutedInstrs;
    if (S < Best)
      Best = S;
  }
  return Best;
}

/// The engine comparison the threaded backend exists for: every DaCapo
/// analogue's uninstrumented run on both backends. `--json` appends one
/// row per (program, engine) pair, so the speedup table in
/// docs/PERFORMANCE.md can be regenerated from the artifact.
void printEngineTable() {
  const int64_t S = tableScale();
  std::printf("=== execution engines: uninstrumented runs, interp vs "
              "threaded (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %12s %12s %12s %9s\n", "program", "instrs",
              "interp(ms)", "threaded(ms)", "speedup");
  double TotalI = 0, TotalT = 0;
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    uint64_t Instrs = 0;
    double TI = engineSeconds(*W.M, EngineKind::Interp, Instrs);
    double TT = engineSeconds(*W.M, EngineKind::Threaded, Instrs);
    TotalI += TI;
    TotalT += TT;
    std::printf("%-12s %12llu %12.2f %12.2f %8.2fx\n", Name.c_str(),
                (unsigned long long)Instrs, TI * 1e3, TT * 1e3, TI / TT);
    emitJsonRow("engine/" + Name, S, TI, 0, 0, EngineKind::Interp);
    emitJsonRow("engine/" + Name, S, TT, 0, 0, EngineKind::Threaded);
  }
  std::printf("%-12s %12s %12.2f %12.2f %8.2fx\n", "TOTAL", "", TotalI * 1e3,
              TotalT * 1e3, TotalI / TotalT);
  emitJsonRow("engine/TOTAL", S, TotalI, 0, 0, EngineKind::Interp);
  emitJsonRow("engine/TOTAL", S, TotalT, 0, 0, EngineKind::Threaded);
  std::printf("\n");
}

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Section 4.1: selective phase tracking (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %10s %10s %10s %10s %10s %12s\n", "program", "base(ms)",
              "full(ms)", "load(ms)", "full-O(x)", "load-O(x)", "reduction");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    double Base = baselineSeconds(*W.M, 5);

    SlicingConfig Full;
    SlicingConfig LoadOnly;
    LoadOnly.TrackedPhaseMask = 1ull << 1;

    // Min-of-3 for the instrumented runs too.
    double TFull = 1e100, TLoad = 1e100;
    uint64_t FullFreq = 0, LoadFreq = 0;
    for (int I = 0; I != 3; ++I) {
      ProfiledRun PF = profiledRun(*W.M, Full);
      ProfiledRun PL = profiledRun(*W.M, LoadOnly);
      TFull = std::min(TFull, PF.Seconds);
      TLoad = std::min(TLoad, PL.Seconds);
      FullFreq = PF.Prof->graph().totalFreq();
      LoadFreq = PL.Prof->graph().totalFreq();
    }
    double OFull = TFull / Base;
    double OLoad = TLoad / Base;
    std::printf("%-12s %10.2f %10.2f %10.2f %10.1f %10.1f %11.1fx\n", Name,
                Base * 1e3, TFull * 1e3, TLoad * 1e3, OFull, OLoad,
                (TFull - Base) / (TLoad - Base));
    std::printf("%-12s tracked instruction instances: full=%llu load-only=%llu"
                " (%.0f%% of run skipped)\n",
                "", (unsigned long long)FullFreq,
                (unsigned long long)LoadFreq,
                100.0 * (1.0 - double(LoadFreq) / double(FullFreq)));
  }
  std::printf("(paper: 5-10x overhead reduction tracking only the load "
              "runs)\n\n");
}

void BM_FullTracking(benchmark::State &State) {
  Workload W = buildWorkload(kApps[State.range(0)], tableScale() / 2);
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M);
    benchmark::DoNotOptimize(P.Prof->graph().totalFreq());
  }
  State.SetLabel(std::string(kApps[State.range(0)]) + "/full");
}

void BM_LoadOnlyTracking(benchmark::State &State) {
  Workload W = buildWorkload(kApps[State.range(0)], tableScale() / 2);
  SlicingConfig Cfg;
  Cfg.TrackedPhaseMask = 1ull << 1;
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M, Cfg);
    benchmark::DoNotOptimize(P.Prof->graph().totalFreq());
  }
  State.SetLabel(std::string(kApps[State.range(0)]) + "/load-only");
}

} // namespace

BENCHMARK(BM_FullTracking)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoadOnlyTracking)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  initStats(&argc, argv);
  printTable();
  printEngineTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
