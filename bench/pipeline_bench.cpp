//===- bench/pipeline_bench.cpp - Single-pass vs N-pass client runs --------===//
//
// The tentpole claim of the composed profiler pipeline, measured: running
// the slicing substrate plus all three client analyses (copy, nullness,
// typestate) in ONE interpretation pass versus one pass per client (each of
// which must also run the substrate the client reads heap tags from). The
// single pass should cost roughly one substrate run plus the marginal client
// hooks; the N-pass configuration pays the interpreter and substrate over
// and over.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

constexpr ClientSet kAllClients = ClientSet::all();

struct PassResult {
  double Seconds = 0;
  size_t Nodes = 0;
  size_t Edges = 0;
};

PassResult singlePassSeconds(const Module &M) {
  SessionConfig Cfg;
  Cfg.Clients = kAllClients;
  ProfileSession S(Cfg);
  PassResult R;
  R.Seconds = S.run(M).Seconds;
  R.Nodes = S.slicing()->graph().numNodes();
  R.Edges = S.slicing()->graph().numEdges();
  return R;
}

PassResult nPassSeconds(const Module &M) {
  PassResult R;
  for (ClientSet Client : {ClientSet::copy(), ClientSet::nullness(),
                           ClientSet::typestate()}) {
    SessionConfig Cfg;
    Cfg.Clients = Client;
    ProfileSession S(Cfg);
    R.Seconds += S.run(M).Seconds;
    R.Nodes = S.slicing()->graph().numNodes();
    R.Edges = S.slicing()->graph().numEdges();
  }
  return R;
}

void printTable() {
  const int64_t S = tableScale() / 2;
  std::printf("=== Profiler pipeline: 1 pass (all clients) vs 3 passes "
              "(scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %12s %12s %8s\n", "workload", "single-pass", "n-pass",
              "speedup");
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    PassResult One = singlePassSeconds(*W.M);
    PassResult N = nPassSeconds(*W.M);
    std::printf("%-12s %11.3fs %11.3fs %7.2fx\n", Name.c_str(), One.Seconds,
                N.Seconds, One.Seconds > 0 ? N.Seconds / One.Seconds : 0);
    emitJsonRow("pipeline/single_pass/" + Name, S, One.Seconds, One.Nodes,
                One.Edges);
    emitJsonRow("pipeline/n_pass/" + Name, S, N.Seconds, N.Nodes, N.Edges);
  }
  std::printf("\n");

  // Telemetry export: one representative composed session with the
  // registry on, dumped in the format --stats requested.
  if (statsEnabled()) {
    Workload W = buildWorkload("eclipse", S);
    SessionConfig Cfg;
    Cfg.Clients = kAllClients;
    Cfg.CollectStats = true;
    ProfileSession Sess(Cfg);
    Sess.run(*W.M);
    emitStats(Sess);
  }
}

/// Timing aspect: all clients in one composed pass.
void BM_SinglePassAllClients(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  for (auto _ : State) {
    SessionConfig Cfg;
    Cfg.Clients = kAllClients;
    ProfileSession S(Cfg);
    TimedRun R = S.run(*W.M);
    benchmark::DoNotOptimize(R.Run.ExecutedInstrs);
  }
}

/// Timing aspect: the same clients as three separate passes.
void BM_NPassPerClient(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  for (auto _ : State) {
    benchmark::DoNotOptimize(nPassSeconds(*W.M));
  }
}

} // namespace

BENCHMARK(BM_SinglePassAllClients)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NPassPerClient)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  initStats(&argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
