//===- bench/auto_optimize_bench.cpp - Automatic vs manual fixes -----------===//
//
// Section 1 notes the analysis findings "provide useful insights for
// automatic code optimization in compilers". This bench quantifies that:
// for each case-study workload, the profile-guided dead-code remover
// (analysis/Optimizer.h) is applied automatically and compared against the
// paper's manual fix (the Optimized workload variant). Expected shape: the
// automatic pass recovers a meaningful slice of the win on dead-value bloat
// (bloat's debug strings, chart's entries), and much less where the fix
// needs algorithmic insight (tomcat's array churn, eclipse's rehash) — the
// reason the paper targets a human-in-the-loop report rather than a
// transparent optimization.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Optimizer.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"bloat",  "chart",  "eclipse",   "sunflow",
                       "derby",  "tomcat", "tradebeans", "xalan"};

void printTable() {
  const int64_t S = tableScale() / 2;
  std::printf("=== Automatic dead-bloat removal vs the manual fixes "
              "(scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %12s %10s %10s %12s %12s\n", "program", "instrs",
              "auto-%", "manual-%", "removed-st", "removed-dce");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    TimedRun Before = baselineRun(*W.M);
    ProfiledRun P = profiledRun(*W.M);
    DeadValueAnalysis DV =
        computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
    OptimizeResult R = removeProfiledDeadCode(*W.M, P.Prof->graph(), DV);
    TimedRun After = baselineRun(*R.M);
    bool OutputOk = After.Run.SinkHash == Before.Run.SinkHash;
    double AutoPct = 100.0 *
                     (1.0 - double(After.Run.ExecutedInstrs) /
                                double(Before.Run.ExecutedInstrs));
    double ManualPct = 0;
    if (hasOptimizedVariant(Name)) {
      Workload Opt = buildWorkload(Name, S, /*Optimized=*/true);
      TimedRun Manual = baselineRun(*Opt.M);
      ManualPct = 100.0 * (1.0 - double(Manual.Run.ExecutedInstrs) /
                                     double(Before.Run.ExecutedInstrs));
    }
    std::printf("%-12s %12llu %9.1f%% %9.1f%% %12zu %12zu%s\n", Name,
                (unsigned long long)Before.Run.ExecutedInstrs, AutoPct,
                ManualPct, R.Stats.RemovedStores, R.Stats.RemovedPure,
                OutputOk ? "" : "  !! OUTPUT CHANGED");
  }
  std::printf("(manual-%% is 0 where the paper has no fix; shape: automatic "
              "removal captures dead-value bloat, manual fixes also capture "
              "algorithmic bloat)\n\n");
}

void BM_ProfileOptimizeCycle(benchmark::State &State) {
  Workload W = buildWorkload("chart", tableScale() / 4);
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M);
    DeadValueAnalysis DV =
        computeDeadValues(P.Prof->graph(), P.Run.ExecutedInstrs);
    OptimizeResult R = removeProfiledDeadCode(*W.M, P.Prof->graph(), DV);
    benchmark::DoNotOptimize(R.Stats.removedTotal());
  }
}

} // namespace

BENCHMARK(BM_ProfileOptimizeCycle)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
