//===- bench/fuzz_bench.cpp - Differential oracle throughput --------------===//
//
// What a fuzzing budget buys: the cost of one full oracle pass (every
// execution mode cross-checked) per candidate program, the share of that
// spent generating and verifying the candidate, and the ddmin minimizer's
// cost on a planted failure. Together these size the nightly job: runs
// per minute at the default knobs, and how much a divergence costs to
// shrink when one appears.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "workloads/RandomProgram.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

using namespace lud;
using namespace lud::bench;

namespace {

RandomProgramOptions benchShape(uint64_t Seed) {
  RandomProgramOptions P;
  P.Seed = Seed;
  P.NumFunctions = 6;
  P.OpsPerFunction = 45;
  P.NumGlobals = 3;
  return P;
}

void BM_GenerateAndVerify(benchmark::State &State) {
  uint64_t Seed = 1;
  for (auto _ : State) {
    std::unique_ptr<Module> M = generateRandomProgram(benchShape(Seed++));
    std::vector<std::string> Errors;
    bool Ok = verifyGeneratedModule(*M, Errors);
    benchmark::DoNotOptimize(Ok);
  }
}

void BM_OracleFullSweep(benchmark::State &State) {
  std::unique_ptr<Module> M = generateRandomProgram(benchShape(11));
  fuzz::OracleConfig Cfg;
  for (auto _ : State) {
    fuzz::OracleResult R = fuzz::runOracle(*M, Cfg);
    benchmark::DoNotOptimize(R.Ok);
  }
}

void BM_OracleSequentialModesOnly(benchmark::State &State) {
  // The sharded mode dominates the sweep; this is the floor without it.
  std::unique_ptr<Module> M = generateRandomProgram(benchShape(11));
  fuzz::OracleConfig Cfg;
  Cfg.CheckSharded = false;
  for (auto _ : State) {
    fuzz::OracleResult R = fuzz::runOracle(*M, Cfg);
    benchmark::DoNotOptimize(R.Ok);
  }
}

void BM_MinimizePlantedFailure(benchmark::State &State) {
  // A ~200-instruction candidate whose failure needs one specific
  // instruction kind to survive: the common shape of a real repro.
  RandomProgramOptions P = benchShape(29);
  P.OpsPerFunction = 60;
  std::unique_ptr<Module> M = generateRandomProgram(P);
  auto HasAlloc = [](const Module &C) {
    for (const auto &F : C.functions())
      for (const auto &BB : F->blocks())
        for (const auto &IPtr : BB->insts())
          if (IPtr->isAlloc())
            return true;
    return false;
  };
  for (auto _ : State) {
    fuzz::MinimizeResult R = fuzz::minimizeModule(*M, HasAlloc);
    benchmark::DoNotOptimize(R.FinalInstrs);
  }
}

} // namespace

BENCHMARK(BM_GenerateAndVerify)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleFullSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleSequentialModesOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinimizePlantedFailure)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
