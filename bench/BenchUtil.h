//===- bench/BenchUtil.h - Shared benchmark harness helpers ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: default scales, row
/// formatting, and repeated-run timing (minimum of K runs, to de-noise the
/// overhead factors).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_BENCH_BENCHUTIL_H
#define LUD_BENCH_BENCHUTIL_H

#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>

namespace lud {
namespace bench {

/// Workload scale for the table reproductions; override with LUD_SCALE.
inline int64_t tableScale() {
  if (const char *E = std::getenv("LUD_SCALE"))
    return std::strtoll(E, nullptr, 10);
  return 2000;
}

/// Minimum wall time over \p Reps baseline runs (de-noised).
inline double baselineSeconds(const Module &M, int Reps = 3) {
  double Best = 1e100;
  for (int I = 0; I != Reps; ++I) {
    TimedRun R = runBaseline(M);
    if (R.Seconds < Best)
      Best = R.Seconds;
  }
  return Best;
}

} // namespace bench
} // namespace lud

#endif // LUD_BENCH_BENCHUTIL_H
