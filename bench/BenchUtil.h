//===- bench/BenchUtil.h - Shared benchmark harness helpers ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: default scales, row
/// formatting, and repeated-run timing (minimum of K runs, to de-noise the
/// overhead factors).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_BENCH_BENCHUTIL_H
#define LUD_BENCH_BENCHUTIL_H

#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lud {
namespace bench {

/// Workload scale for the table reproductions; override with LUD_SCALE.
inline int64_t tableScale() {
  if (const char *E = std::getenv("LUD_SCALE"))
    return std::strtoll(E, nullptr, 10);
  return 2000;
}

/// Machine-readable table output: when `--json` is on the command line or
/// LUD_BENCH_JSON is set, each table row is also appended as a one-line
/// JSON object `{name, scale, seconds, nodes, edges}` to
/// BENCH_results.json (or to the file LUD_BENCH_JSON names, when its value
/// is a path rather than "1"). Appending lets a CI job accumulate rows
/// from several bench binaries into one file.
inline bool &jsonRowsEnabled() {
  static bool On = std::getenv("LUD_BENCH_JSON") != nullptr;
  return On;
}

inline const char *jsonRowsPath() {
  const char *E = std::getenv("LUD_BENCH_JSON");
  if (E && *E && std::strcmp(E, "1") != 0)
    return E;
  return "BENCH_results.json";
}

/// Enables row emission if `--json` is present, and strips it from argv so
/// benchmark::Initialize never sees the unknown flag.
inline void initJsonRows(int *Argc, char **Argv) {
  int W = 1;
  for (int I = 1; I < *Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      jsonRowsEnabled() = true;
      continue;
    }
    Argv[W++] = Argv[I];
  }
  *Argc = W;
}

inline void emitJsonRow(const std::string &Name, int64_t Scale,
                        double Seconds, size_t Nodes, size_t Edges) {
  if (!jsonRowsEnabled())
    return;
  if (FILE *F = std::fopen(jsonRowsPath(), "a")) {
    std::fprintf(F,
                 "{\"name\": \"%s\", \"scale\": %lld, \"seconds\": %.6f, "
                 "\"nodes\": %zu, \"edges\": %zu}\n",
                 Name.c_str(), (long long)Scale, Seconds, Nodes, Edges);
    std::fclose(F);
  }
}

/// Minimum wall time over \p Reps baseline runs (de-noised).
inline double baselineSeconds(const Module &M, int Reps = 3) {
  double Best = 1e100;
  for (int I = 0; I != Reps; ++I) {
    TimedRun R = runBaseline(M);
    if (R.Seconds < Best)
      Best = R.Seconds;
  }
  return Best;
}

} // namespace bench
} // namespace lud

#endif // LUD_BENCH_BENCHUTIL_H
