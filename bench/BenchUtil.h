//===- bench/BenchUtil.h - Shared benchmark harness helpers ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: default scales, row
/// formatting, and repeated-run timing (minimum of K runs, to de-noise the
/// overhead factors).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_BENCH_BENCHUTIL_H
#define LUD_BENCH_BENCHUTIL_H

#include "obs/Metrics.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace lud {
namespace bench {

/// Workload scale for the table reproductions; override with LUD_SCALE.
inline int64_t tableScale() {
  if (const char *E = std::getenv("LUD_SCALE"))
    return std::strtoll(E, nullptr, 10);
  return 2000;
}

/// Machine-readable table output: when `--json` is on the command line or
/// LUD_BENCH_JSON is set, each table row is also appended as a one-line
/// JSON object `{name, scale, engine, seconds, nodes, edges}` to
/// BENCH_results.json (or to the file LUD_BENCH_JSON names, when its value
/// is a path rather than "1"). Appending lets a CI job accumulate rows
/// from several bench binaries into one file. `engine` is the execution
/// backend the row measured — the session default (LUD_ENGINE) unless the
/// bench pinned one explicitly.
inline bool &jsonRowsEnabled() {
  static bool On = std::getenv("LUD_BENCH_JSON") != nullptr;
  return On;
}

inline const char *jsonRowsPath() {
  const char *E = std::getenv("LUD_BENCH_JSON");
  if (E && *E && std::strcmp(E, "1") != 0)
    return E;
  return "BENCH_results.json";
}

/// Enables row emission if `--json` is present, and strips it from argv so
/// benchmark::Initialize never sees the unknown flag.
inline void initJsonRows(int *Argc, char **Argv) {
  int W = 1;
  for (int I = 1; I < *Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0) {
      jsonRowsEnabled() = true;
      continue;
    }
    Argv[W++] = Argv[I];
  }
  *Argc = W;
}

inline void emitJsonRow(const std::string &Name, int64_t Scale,
                        double Seconds, size_t Nodes, size_t Edges,
                        EngineKind Engine = defaultEngineKind()) {
  if (!jsonRowsEnabled())
    return;
  if (FILE *F = std::fopen(jsonRowsPath(), "a")) {
    std::fprintf(F,
                 "{\"name\": \"%s\", \"scale\": %lld, \"engine\": \"%s\", "
                 "\"seconds\": %.6f, \"nodes\": %zu, \"edges\": %zu}\n",
                 Name.c_str(), (long long)Scale, engineKindName(Engine),
                 Seconds, Nodes, Edges);
    std::fclose(F);
  }
}

/// Telemetry export for the bench binaries. `--stats[=json|csv]` (or the
/// LUD_STATS env var, same values) makes the table passes run their
/// sessions with CollectStats on and dump the merged "lud.stats.v1"
/// registry; `--stats-out=FILE` (or LUD_STATS_OUT) appends to FILE instead
/// of stdout, so a CI job can collect registries from several binaries in
/// one artifact.
enum class StatsFormat { Off, Text, Json, Csv };

inline StatsFormat parseStatsFormat(const char *V) {
  if (!V || !*V)
    return StatsFormat::Text;
  if (std::strcmp(V, "json") == 0)
    return StatsFormat::Json;
  if (std::strcmp(V, "csv") == 0)
    return StatsFormat::Csv;
  return StatsFormat::Text;
}

inline StatsFormat &statsFormat() {
  static StatsFormat F = std::getenv("LUD_STATS")
                             ? parseStatsFormat(std::getenv("LUD_STATS"))
                             : StatsFormat::Off;
  return F;
}

inline std::string &statsOutPath() {
  static std::string Path =
      std::getenv("LUD_STATS_OUT") ? std::getenv("LUD_STATS_OUT") : "";
  return Path;
}

inline bool statsEnabled() { return statsFormat() != StatsFormat::Off; }

/// Parses and strips `--stats[=json|csv]` / `--stats-out=FILE` from argv so
/// benchmark::Initialize never sees them (mirrors initJsonRows).
inline void initStats(int *Argc, char **Argv) {
  int W = 1;
  for (int I = 1; I < *Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--stats") == 0) {
      statsFormat() = StatsFormat::Text;
      continue;
    }
    if (std::strncmp(A, "--stats=", 8) == 0) {
      statsFormat() = parseStatsFormat(A + 8);
      continue;
    }
    if (std::strncmp(A, "--stats-out=", 12) == 0) {
      statsOutPath() = A + 12;
      continue;
    }
    Argv[W++] = Argv[I];
  }
  *Argc = W;
}

/// Appends \p S's registry to --stats-out (or prints it to stdout) in the
/// requested format. No-op when stats are off or the session collected none.
inline void emitStats(const ProfileSession &S) {
  if (!statsEnabled() || !S.stats())
    return;
  std::FILE *F = stdout;
  if (!statsOutPath().empty())
    F = std::fopen(statsOutPath().c_str(), "a");
  if (!F)
    return;
  FileOutStream OS(F);
  switch (statsFormat()) {
  case StatsFormat::Json:
    S.stats()->writeJson(OS);
    break;
  case StatsFormat::Csv:
    S.stats()->writeCsv(OS);
    break;
  default:
    S.stats()->writeText(OS);
    break;
  }
  if (F != stdout)
    std::fclose(F);
}

/// Uninstrumented run through the session lifecycle — the spelling of the
/// retired runBaseline() free function, for the bench binaries.
inline TimedRun baselineRun(const Module &M, RunConfig RC = {}) {
  ProfileSession S(SessionConfig::baseline(RC));
  return S.run(M);
}

/// Substrate-only profiled run through the session lifecycle — the
/// spelling of the retired runProfiled() free function.
inline ProfiledRun profiledRun(const Module &M, SlicingConfig SCfg = {},
                               RunConfig RC = {}) {
  ProfileSession S(SessionConfig::profiled(SCfg, RC));
  TimedRun T = S.run(M);
  ProfiledRun Out;
  Out.Run = T.Run;
  Out.Seconds = T.Seconds;
  Out.Prof = S.takeSlicing();
  return Out;
}

/// Minimum wall time over \p Reps baseline runs (de-noised).
inline double baselineSeconds(const Module &M, int Reps = 3) {
  double Best = 1e100;
  for (int I = 0; I != Reps; ++I) {
    TimedRun R = baselineRun(M);
    if (R.Seconds < Best)
      Best = R.Seconds;
  }
  return Best;
}

} // namespace bench
} // namespace lud

#endif // LUD_BENCH_BENCHUTIL_H
