//===- bench/frozen_graph_bench.cpp - Sealed read-path latency -------------===//
//
// Measures what the FrozenGraph refactor buys on the paper-scale composed
// workload: per-lookup latency of the branchless Eytzinger node index
// against the build graph's FlatMap hash probe (hits over every interned
// key and deliberate misses), the per-location activity sweep that the
// analyses actually run (frozen offset-indexed spans vs a FlatMap::find
// per location), seal cost, and the end-to-end wall time of report + n-RAC
// generation over the sealed representation. The acceptance shape: the
// frozen read-path sweep beats FlatMap::find by an order of magnitude,
// Eytzinger wins the miss probes, and the full report pipeline stays under
// a second at 100K+ nodes. (On uniform-random hit probes the single-probe
// hash stays ahead of any comparison search — that number is reported too,
// not hidden.)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/CostModel.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "profiling/FrozenGraph.h"
#include "support/RNG.h"
#include "workloads/Composed.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

using namespace lud;
using namespace lud::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

struct SealedRun {
  Workload W;
  ProfiledRun Run;
  FrozenGraph Frozen;
  double SealSeconds;
};

/// Profiles the composed workload once and seals a copy of its graph; the
/// build graph stays alive in Run.Prof as the FlatMap baseline.
SealedRun profileComposed(int64_t Scale) {
  Workload W = buildComposedWorkload(Scale);
  ProfiledRun P = profiledRun(*W.M);
  auto T0 = std::chrono::steady_clock::now();
  FrozenGraph F(P.Prof->graph());
  double Seal = secondsSince(T0);
  return SealedRun{std::move(W), std::move(P), std::move(F), Seal};
}

/// Every interned (instruction, domain) key, shuffled so the probe order
/// does not replay graph construction order.
std::vector<std::pair<InstrId, uint32_t>> shuffledKeys(const FrozenGraph &G) {
  std::vector<std::pair<InstrId, uint32_t>> Keys;
  Keys.reserve(G.numNodes());
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Keys.emplace_back(G.instr(N), G.domain(N));
  RNG R(0x5EA1ED);
  for (size_t I = Keys.size(); I > 1; --I)
    std::swap(Keys[I - 1], Keys[R.nextBelow(I)]);
  return Keys;
}

/// Miss probes: instruction ids far above anything the module interns.
std::vector<std::pair<InstrId, uint32_t>>
missKeys(const std::vector<std::pair<InstrId, uint32_t>> &Hits) {
  std::vector<std::pair<InstrId, uint32_t>> Keys = Hits;
  for (auto &K : Keys)
    K.first |= 0x40000000u;
  return Keys;
}

template <typename LookupFn>
double nsPerLookup(const std::vector<std::pair<InstrId, uint32_t>> &Keys,
                   LookupFn &&Lookup) {
  auto T0 = std::chrono::steady_clock::now();
  uint64_t Sum = 0;
  for (const auto &K : Keys)
    Sum += Lookup(K.first, K.second);
  benchmark::DoNotOptimize(Sum);
  return secondsSince(T0) * 1e9 / double(Keys.empty() ? 1 : Keys.size());
}

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== FrozenGraph: sealed read path (composed scale %lld) ===\n",
              (long long)S);
  SealedRun R = profileComposed(S);
  const DepGraph &G = R.Run.Prof->graph();
  const FrozenGraph &F = R.Frozen;
  std::printf("graph: %zu nodes, %zu edges, seal %.1f ms\n", F.numNodes(),
              F.numEdges(), R.SealSeconds * 1e3);

  FrozenGraph::MemoryFootprint MF = F.memoryFootprint();
  std::printf("frozen bytes: nodes %zu, edges %zu, locs %zu, index %zu "
              "(total %.1f KB vs build graph %.1f KB)\n",
              MF.NodeBytes, MF.EdgeBytes, MF.LocBytes, MF.IndexBytes,
              double(MF.total()) / 1024.0,
              double(G.memoryFootprint().total()) / 1024.0);

  std::vector<std::pair<InstrId, uint32_t>> Hits = shuffledKeys(F);
  std::vector<std::pair<InstrId, uint32_t>> Misses = missKeys(Hits);
  // A few repetitions, keep the best: the arrays dwarf L2, so the first
  // pass is a cold-cache measurement and later ones steady-state.
  double EytHit = 1e99, EytMiss = 1e99, MapHit = 1e99, MapMiss = 1e99;
  for (int Rep = 0; Rep != 5; ++Rep) {
    EytHit = std::min(EytHit, nsPerLookup(Hits, [&](InstrId I, uint32_t D) {
                        return uint64_t(F.lookup(I, D));
                      }));
    MapHit = std::min(MapHit, nsPerLookup(Hits, [&](InstrId I, uint32_t D) {
                        return uint64_t(G.lookup(I, D));
                      }));
    EytMiss = std::min(EytMiss, nsPerLookup(Misses, [&](InstrId I, uint32_t D) {
                         return uint64_t(F.lookup(I, D));
                       }));
    MapMiss = std::min(MapMiss, nsPerLookup(Misses, [&](InstrId I, uint32_t D) {
                         return uint64_t(G.lookup(I, D));
                       }));
  }
  std::printf("%-24s | %10s %10s\n", "node lookup (ns/op)", "hit", "miss");
  std::printf("%-24s | %10.1f %10.1f\n", "FlatMap::find (build)", MapHit,
              MapMiss);
  std::printf("%-24s | %10.1f %10.1f\n", "Eytzinger (frozen)", EytHit,
              EytMiss);
  std::printf("%-24s | %9.2fx %9.2fx\n", "speedup",
              EytHit > 0 ? MapHit / EytHit : 0,
              EytMiss > 0 ? MapMiss / EytMiss : 0);

  // Heap-location activity: the lookup the read path actually replaced.
  // The old Report/CacheCost passes did a FlatMap::find per location per
  // map; the frozen universe makes the same sweep a direct offset index.
  const auto &WMap = G.writers();
  const auto &RMap = G.readers();
  double MapSweep = 1e99, FrzSweep = 1e99, KeySweep = 1e99;
  for (int Rep = 0; Rep != 5; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    uint64_t Sum = 0;
    for (size_t LI = 0; LI != F.numLocs(); ++LI) {
      HeapLoc L = F.loc(LI);
      auto WIt = WMap.find(L);
      if (WIt != WMap.end())
        for (NodeId N : WIt->second)
          Sum += G.freq(N);
      auto RIt = RMap.find(L);
      if (RIt != RMap.end())
        for (NodeId N : RIt->second)
          Sum += G.freq(N);
    }
    benchmark::DoNotOptimize(Sum);
    MapSweep = std::min(MapSweep,
                        secondsSince(T0) * 1e9 / double(F.numLocs()));
    T0 = std::chrono::steady_clock::now();
    Sum = 0;
    for (size_t LI = 0; LI != F.numLocs(); ++LI) {
      for (NodeId N : F.writersAt(LI))
        Sum += F.freq(N);
      for (NodeId N : F.readersAt(LI))
        Sum += F.freq(N);
    }
    benchmark::DoNotOptimize(Sum);
    FrzSweep = std::min(FrzSweep,
                        secondsSince(T0) * 1e9 / double(F.numLocs()));
    T0 = std::chrono::steady_clock::now();
    Sum = 0;
    for (size_t LI = 0; LI != F.numLocs(); ++LI) {
      HeapLoc L = F.loc(LI);
      for (NodeId N : F.writersOf(L))
        Sum += F.freq(N);
      for (NodeId N : F.readersOf(L))
        Sum += F.freq(N);
    }
    benchmark::DoNotOptimize(Sum);
    KeySweep = std::min(KeySweep,
                        secondsSince(T0) * 1e9 / double(F.numLocs()));
  }
  std::printf("%-24s | %10s\n", "loc activity (ns/loc)", "sweep");
  std::printf("%-24s | %10.1f\n", "FlatMap::find (build)", MapSweep);
  std::printf("%-24s | %10.1f\n", "frozen spans (indexed)", FrzSweep);
  std::printf("%-24s | %10.1f\n", "frozen spans (by key)", KeySweep);
  std::printf("%-24s | %9.2fx\n", "speedup (indexed)",
              FrzSweep > 0 ? MapSweep / FrzSweep : 0);

  // End-to-end analysis pass over the sealed graph: cost model, ranked
  // report with n-RAC aggregation, and the dead-value sweep.
  auto T0 = std::chrono::steady_clock::now();
  CostModel CM(F);
  ReportOptions Opts;
  LowUtilityReport Report(CM, *R.W.M, Opts);
  DeadValueAnalysis DV = computeDeadValues(F, F.totalFreq());
  benchmark::DoNotOptimize(DV.Metrics.ipd());
  double ReportSec = secondsSince(T0);
  std::printf("report + %u-RAC + dead-value generation: %.3f s\n",
              unsigned(Opts.Depth), ReportSec);

  emitJsonRow("frozen_graph/lookup_hit_eytzinger_ns", S, EytHit * 1e-9,
              F.numNodes(), F.numEdges());
  emitJsonRow("frozen_graph/lookup_hit_flatmap_ns", S, MapHit * 1e-9,
              F.numNodes(), F.numEdges());
  emitJsonRow("frozen_graph/report_nrac", S, ReportSec, F.numNodes(),
              F.numEdges());
  std::printf("\n");
}

/// Timing aspect: Eytzinger vs FlatMap lookups under the harness.
void BM_NodeLookup(benchmark::State &State) {
  static SealedRun R = profileComposed(tableScale() / 4);
  static std::vector<std::pair<InstrId, uint32_t>> Keys =
      shuffledKeys(R.Frozen);
  const bool UseFrozen = State.range(0) != 0;
  size_t I = 0;
  for (auto _ : State) {
    const auto &K = Keys[I];
    if (++I == Keys.size())
      I = 0;
    uint64_t N = UseFrozen ? uint64_t(R.Frozen.lookup(K.first, K.second))
                           : uint64_t(R.Run.Prof->graph().lookup(K.first,
                                                                 K.second));
    benchmark::DoNotOptimize(N);
  }
  State.SetLabel(UseFrozen ? "eytzinger" : "flatmap");
}
BENCHMARK(BM_NodeLookup)->Arg(0)->Arg(1);

/// Timing aspect: sealing the composed build graph.
void BM_Seal(benchmark::State &State) {
  static Workload W = buildComposedWorkload(tableScale() / 4);
  static ProfiledRun P = profiledRun(*W.M);
  for (auto _ : State) {
    FrozenGraph F(P.Prof->graph());
    benchmark::DoNotOptimize(F.numNodes());
  }
}
BENCHMARK(BM_Seal);

} // namespace

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
