//===- bench/case_studies_bench.cpp - Section 4.2's six case studies -------===//
//
// Reproduces the six case studies of Section 4.2: for bloat, eclipse,
// sunflow, derby, tomcat and tradebeans, runs the original program and the
// variant with the paper's fix applied, reporting the running-time and
// executed-instruction reductions plus the rank the cost-benefit report
// assigns to the planted structure. Paper reference points: bloat 37%,
// eclipse 14.5%, sunflow 9-15%, derby 6%, tradebeans 2.5%, tomcat ~2%; the
// ordering (bloat's analogue wins most, tomcat's least) is the shape to
// check, and every planted structure must surface near the top of the
// report.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Report.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kCaseStudies[] = {"bloat",  "eclipse", "sunflow",
                              "derby",  "tomcat",  "tradebeans"};

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Section 4.2 case studies (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %10s %10s %8s %12s %12s %8s %8s %10s\n", "program",
              "time(ms)", "fixed(ms)", "time-%", "instrs", "fixed", "instr-%",
              "objs-%", "best rank");
  for (const char *Name : kCaseStudies) {
    Workload Orig = buildWorkload(Name, S, /*Optimized=*/false);
    Workload Opt = buildWorkload(Name, S, /*Optimized=*/true);
    double TOrig = baselineSeconds(*Orig.M, 5);
    double TOpt = baselineSeconds(*Opt.M, 5);
    TimedRun RO = baselineRun(*Orig.M);
    TimedRun RF = baselineRun(*Opt.M);

    ProfiledRun P = profiledRun(*Orig.M);
    CostModel CM(P.Prof->graph());
    LowUtilityReport Report(CM, *Orig.M);
    int BestRank = -1;
    for (AllocSiteId Site : Orig.PlantedSites) {
      int R = Report.rankOf(Site);
      if (R >= 0 && (BestRank < 0 || R < BestRank))
        BestRank = R;
    }

    double TimePct = 100.0 * (TOrig - TOpt) / TOrig;
    double InstrPct =
        100.0 *
        (double(RO.Run.ExecutedInstrs) - double(RF.Run.ExecutedInstrs)) /
        double(RO.Run.ExecutedInstrs);
    // The paper also reports object-count reductions (e.g. bloat -68%,
    // eclipse -2%, derby -8.6%).
    double ObjPct =
        100.0 *
        (double(RO.Run.ObjectsAllocated) - double(RF.Run.ObjectsAllocated)) /
        double(RO.Run.ObjectsAllocated);
    std::printf(
        "%-12s %10.2f %10.2f %7.1f%% %12llu %12llu %7.1f%% %7.1f%% %10d\n",
        Name, TOrig * 1e3, TOpt * 1e3, TimePct,
        (unsigned long long)RO.Run.ExecutedInstrs,
        (unsigned long long)RF.Run.ExecutedInstrs, InstrPct, ObjPct,
        BestRank + 1);
  }
  std::printf("(paper: bloat 37%%, eclipse 14.5%%, sunflow 9-15%%, derby "
              "6%%, tradebeans 2.5%%, tomcat ~2%%)\n\n");
}

void BM_Original(benchmark::State &State) {
  Workload W = buildWorkload(kCaseStudies[State.range(0)], tableScale() / 2);
  for (auto _ : State) {
    TimedRun R = baselineRun(*W.M);
    benchmark::DoNotOptimize(R.Run.SinkHash);
  }
  State.SetLabel(std::string(kCaseStudies[State.range(0)]) + "/orig");
}

void BM_Optimized(benchmark::State &State) {
  Workload W = buildWorkload(kCaseStudies[State.range(0)], tableScale() / 2,
                             /*Optimized=*/true);
  for (auto _ : State) {
    TimedRun R = baselineRun(*W.M);
    benchmark::DoNotOptimize(R.Run.SinkHash);
  }
  State.SetLabel(std::string(kCaseStudies[State.range(0)]) + "/fixed");
}

} // namespace

BENCHMARK(BM_Original)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimized)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
