//===- bench/nrac_depth_bench.cpp - Definition 7 depth sweep ---------------===//
//
// Ablation over the reference-tree height n of Definition 7 (the paper
// fixes n = 4, the reference chain length of HashSet). For each case-study
// workload and n in {1..6}: the rank of the best planted structure and the
// time to build the full report. Shape to check: ranking quality is stable
// for n >= 2 and the paper's n = 4 is comfortably in the plateau; report
// cost grows with n.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Report.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"bloat",  "eclipse", "sunflow",
                       "derby",  "tomcat",  "tradebeans"};

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Ablation: n-RAC/n-RAB depth sweep (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s", "program");
  for (unsigned N = 1; N <= 6; ++N)
    std::printf("   n=%u rank (ms)", N);
  std::printf("\n");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    ProfiledRun P = profiledRun(*W.M);
    CostModel CM(P.Prof->graph());
    std::printf("%-12s", Name);
    for (unsigned N = 1; N <= 6; ++N) {
      ReportOptions Opts;
      Opts.Depth = N;
      auto T0 = std::chrono::steady_clock::now();
      LowUtilityReport Report(CM, *W.M, Opts);
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      int Best = -1;
      for (AllocSiteId Site : W.PlantedSites) {
        int R = Report.rankOf(Site);
        if (R >= 0 && (Best < 0 || R < Best))
          Best = R;
      }
      std::printf("   %4d (%6.2f)", Best + 1, Ms);
    }
    std::printf("\n");
  }
  std::printf("(rank 1 = planted structure on top; paper default n=4)\n\n");
}

void BM_ReportDepth(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 2);
  ProfiledRun P = profiledRun(*W.M);
  CostModel CM(P.Prof->graph());
  ReportOptions Opts;
  Opts.Depth = unsigned(State.range(0));
  for (auto _ : State) {
    LowUtilityReport Report(CM, *W.M, Opts);
    benchmark::DoNotOptimize(Report.sites().size());
  }
  State.SetLabel("n=" + std::to_string(State.range(0)));
}

} // namespace

BENCHMARK(BM_ReportDepth)->DenseRange(1, 6);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
