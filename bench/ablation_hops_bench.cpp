//===- bench/ablation_hops_bench.cpp - Multi-hop scope sweep ---------------===//
//
// The trade-off the paper proposes to study in Section 3.2: how does
// widening the inspected data-flow region (k heap-to-heap hops instead of
// the single hop of Definitions 5/6) change what the analysis sees and
// what it costs? For each case-study workload and k in {1, 2, 3}:
//   - mean k-hop RAC over all written locations (reach grows with k),
//   - locations whose readers see a native consumer within k hops
//     (attribution of "eventually useful" spreads backward), and
//   - analysis wall time (the price of the wider scope).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/MultiHop.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"bloat", "eclipse", "sunflow", "derby"};

void printTable() {
  const int64_t S = tableScale() / 2;
  std::printf("=== Ablation: k-hop cost/benefit scope (scale %lld) ===\n",
              (long long)S);
  std::printf("%-10s %3s %14s %18s %10s\n", "program", "k", "mean k-RAC",
              "native-reaching", "time(ms)");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    ProfiledRun P = profiledRun(*W.M);
    FrozenGraph G(P.Prof->graph());
    for (unsigned K = 1; K <= 3; ++K) {
      auto T0 = std::chrono::steady_clock::now();
      double RacSum = 0;
      uint64_t Locs = 0, NativeLocs = 0;
      for (size_t LI = 0; LI != G.numLocs(); ++LI) {
        if (G.writersAt(LI).empty())
          continue;
        LocCostBenefit CB = multiHopLocCostBenefit(G, G.loc(LI), K);
        RacSum += CB.Rac;
        ++Locs;
        NativeLocs += CB.ReachesNative ? 1 : 0;
      }
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
      std::printf("%-10s %3u %14.1f %11llu/%-6llu %10.2f\n", Name, K,
                  Locs ? RacSum / double(Locs) : 0,
                  (unsigned long long)NativeLocs, (unsigned long long)Locs,
                  Ms);
    }
  }
  std::printf("(shape: reach and native attribution grow with k, and so "
              "does analysis cost — the explainability/coverage trade-off "
              "of Section 3.2)\n\n");
}

void BM_MultiHopSweep(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 4);
  ProfiledRun P = profiledRun(*W.M);
  FrozenGraph G(P.Prof->graph());
  unsigned K = unsigned(State.range(0));
  for (auto _ : State) {
    double Sum = 0;
    for (size_t LI = 0; LI != G.numLocs(); ++LI) {
      if (G.writersAt(LI).empty())
        continue;
      Sum += multiHopLocCostBenefit(G, G.loc(LI), K).Rac;
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetLabel("k=" + std::to_string(K));
}

} // namespace

BENCHMARK(BM_MultiHopSweep)->DenseRange(1, 3);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
