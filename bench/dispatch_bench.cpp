//===- bench/dispatch_bench.cpp - Per-opcode engine dispatch cost ----------===//
//
// Measures the raw cost of executing one instruction — dispatch plus the
// operation itself — per opcode family, on both execution backends: the
// reference tree-walking interpreter and the direct-threaded engine
// (runtime/ThreadedEngine.h). Each micro-workload is a counted loop whose
// body is eight copies of one opcode shape, run under the empty profiler
// pipeline, so the numbers isolate what the engines add on top of the
// semantic work. The table reports ns/instruction per engine and the
// speedup; `--json` appends one row per (opcode, engine) pair with the
// engine field distinguishing them.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ir/IRBuilder.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

using namespace lud;
using namespace lud::bench;

namespace {

/// One instruction-family micro-workload: `main` runs Iters loop
/// iterations whose body holds eight payload instructions of one shape
/// (plus the shared loop scaffolding of one add, one compare-branch and
/// one back-edge, identical across workloads so differences between rows
/// are the payload's).
struct MicroShape {
  const char *Name;
  /// Emits the pre-loop setup; returns context registers for emitBody.
  void (*Setup)(IRBuilder &B, Reg Ctx[4]);
  /// Emits one payload instruction.
  void (*Payload)(IRBuilder &B, Reg Ctx[4]);
};

void setupInt(IRBuilder &B, Reg Ctx[4]) {
  Ctx[0] = B.iconst(7);
  Ctx[1] = B.iconst(9);
  Ctx[2] = B.newReg();
  B.iconstInto(Ctx[2], 0);
}

void setupObject(IRBuilder &B, Reg Ctx[4]) {
  setupInt(B, Ctx);
  Ctx[3] = B.alloc(ClassId(0));
  B.storeField(Ctx[3], ClassId(0), "v", Ctx[0]);
}

void setupArray(IRBuilder &B, Reg Ctx[4]) {
  setupInt(B, Ctx);
  Reg Len = B.iconst(8);
  Ctx[3] = B.allocArray(TypeKind::Int, Len);
  B.storeElem(Ctx[3], Ctx[0], Ctx[1]); // index 7 in range
}

const MicroShape kShapes[] = {
    {"const-int", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) { B.iconstInto(Ctx[2], 42); }},
    {"assign", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) { B.moveInto(Ctx[2], Ctx[0]); }},
    {"bin-add", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.binInto(Ctx[2], BinOp::Add, Ctx[0], Ctx[1]);
     }},
    {"bin-mul", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.binInto(Ctx[2], BinOp::Mul, Ctx[0], Ctx[1]);
     }},
    {"bin-xor", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.binInto(Ctx[2], BinOp::Xor, Ctx[0], Ctx[1]);
     }},
    {"bin-cmp", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.binInto(Ctx[2], BinOp::CmpLt, Ctx[0], Ctx[1]);
     }},
    {"load-field", setupObject,
     [](IRBuilder &B, Reg Ctx[4]) {
       (void)B.loadField(Ctx[3], ClassId(0), "v");
     }},
    {"store-field", setupObject,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.storeField(Ctx[3], ClassId(0), "v", Ctx[0]);
     }},
    {"load-elem", setupArray,
     [](IRBuilder &B, Reg Ctx[4]) { (void)B.loadElem(Ctx[3], Ctx[0]); }},
    {"store-elem", setupArray,
     [](IRBuilder &B, Reg Ctx[4]) {
       B.storeElem(Ctx[3], Ctx[0], Ctx[1]);
     }},
    {"load-static", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) {
       (void)Ctx;
       (void)B.loadStatic(GlobalId(0));
     }},
    {"store-static", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) { B.storeStatic(GlobalId(0), Ctx[0]); }},
    {"call-return", setupInt,
     [](IRBuilder &B, Reg Ctx[4]) { B.callVoid("id", {Ctx[0]}); }},
};

std::unique_ptr<Module> makeMicro(const MicroShape &Shape, int64_t Iters) {
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);
  ClassDecl *Box = M->addClass("Box");
  Box->addField("v", Type::makeInt());
  M->addGlobal("g", Type::makeInt());

  B.beginFunction("id", 1);
  B.ret(Reg(0));
  B.endFunction();

  B.beginFunction("main", 0);
  Reg Ctx[4] = {kNoReg, kNoReg, kNoReg, kNoReg};
  Shape.Setup(B, Ctx);
  Reg I = B.iconst(0), One = B.iconst(1), Lim = B.iconst(Iters);
  BasicBlock *Head = B.newBlock(), *Body = B.newBlock(), *Exit = B.newBlock();
  B.br(Head);
  B.setBlock(Head);
  B.condBr(CmpOp::Lt, I, Lim, Body, Exit);
  B.setBlock(Body);
  for (int K = 0; K != 8; ++K)
    Shape.Payload(B, Ctx);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Head);
  B.setBlock(Exit);
  B.ret(I);
  B.endFunction();
  M->finalize();
  return M;
}

struct Measured {
  double Seconds = 0;
  uint64_t Instrs = 0;
};

/// Minimum-of-reps wall time for an uninstrumented (empty-pipeline) run on
/// one engine; the moral equivalent of baselineSeconds with the backend
/// pinned.
Measured timeOn(const Module &M, EngineKind E, int Reps = 3) {
  Measured Out;
  Out.Seconds = 1e100;
  for (int I = 0; I != Reps; ++I) {
    ComposedProfiler<> P;
    Heap H;
    auto T0 = std::chrono::steady_clock::now();
    RunResult R = runWithEngine(E, M, H, P, RunConfig{});
    double S =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    Out.Instrs = R.ExecutedInstrs;
    if (S < Out.Seconds)
      Out.Seconds = S;
  }
  return Out;
}

void printTable() {
  // tableScale() iterations x 8 payload instructions keeps each row's
  // instruction count proportional to the shared LUD_SCALE convention while
  // staying micro (scale 2000 -> ~5M payload instances per row).
  const int64_t Iters = tableScale() * 300;
  std::printf("=== engine dispatch cost per opcode family (%lld iterations, "
              "8 payload instrs each) ===\n",
              (long long)Iters);
  std::printf("%-14s %12s %14s %14s %10s\n", "opcode", "instrs",
              "interp(ns/i)", "threaded(ns/i)", "speedup");
  for (const MicroShape &Shape : kShapes) {
    std::unique_ptr<Module> M = makeMicro(Shape, Iters);
    Measured In = timeOn(*M, EngineKind::Interp);
    Measured Th = timeOn(*M, EngineKind::Threaded);
    std::printf("%-14s %12llu %14.2f %14.2f %9.2fx\n", Shape.Name,
                (unsigned long long)In.Instrs,
                In.Seconds / double(In.Instrs) * 1e9,
                Th.Seconds / double(Th.Instrs) * 1e9,
                In.Seconds / Th.Seconds);
    emitJsonRow(std::string("dispatch/") + Shape.Name, Iters, In.Seconds, 0,
                0, EngineKind::Interp);
    emitJsonRow(std::string("dispatch/") + Shape.Name, Iters, Th.Seconds, 0,
                0, EngineKind::Threaded);
  }
  std::printf("(empty profiler pipeline; loop scaffolding of +1 add, "
              "1 cond-branch and 1 back-edge per 8 payloads is included "
              "in every row)\n\n");
}

void BM_Dispatch(benchmark::State &State) {
  const MicroShape &Shape = kShapes[State.range(0)];
  EngineKind E =
      State.range(1) ? EngineKind::Threaded : EngineKind::Interp;
  std::unique_ptr<Module> M = makeMicro(Shape, tableScale() * 30);
  uint64_t Instrs = 0;
  for (auto _ : State) {
    ComposedProfiler<> P;
    Heap H;
    RunResult R = runWithEngine(E, *M, H, P, RunConfig{});
    Instrs = R.ExecutedInstrs;
    benchmark::DoNotOptimize(R.SinkHash);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Instrs));
  State.SetLabel(std::string(Shape.Name) + "/" + engineKindName(E));
}

} // namespace

BENCHMARK(BM_Dispatch)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 12, 1), {0, 1}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  initStats(&argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
