//===- bench/optimizer_bench.cpp - Rewritten vs original modules -----------===//
//
// The evidence-driven rewrite pipeline (analysis/PassManager.h) claims its
// committed rewrites are pure wins: same observables, fewer executed
// instructions and allocations. This bench measures that end to end on the
// three case studies the passes target — sunflow (clone-per-op +
// once-read memo), derby (map-to-array) and tomcat (expected ~0%: its
// churn needs algorithmic insight the gates refuse to fake) — timing the
// original and the rewritten module on both execution engines and
// reporting the allocation deltas the evidence layer promised.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/PassManager.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"sunflow", "derby", "tomcat"};

/// Minimum wall time over \p Reps uninstrumented runs on \p E.
double engineSeconds(const Module &M, EngineKind E, RunResult *Out = nullptr,
                     int Reps = 3) {
  double Best = 1e100;
  for (int I = 0; I != Reps; ++I) {
    SessionConfig SC = SessionConfig::baseline();
    SC.Engine = E;
    ProfileSession S(SC);
    TimedRun R = S.run(M);
    if (R.Seconds < Best) {
      Best = R.Seconds;
      if (Out)
        *Out = R.Run;
    }
  }
  return Best;
}

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Profile-guided rewrite pipeline: original vs rewritten "
              "(scale %lld) ===\n",
              (long long)S);
  std::printf("%-10s %12s %12s %8s %10s %10s %8s %8s\n", "program", "instrs",
              "instrs'", "auto-%", "allocs", "allocs'", "applied", "rolled");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    // Graph size for the JSON rows: the profile the pipeline itself folds.
    ProfiledRun P = profiledRun(*W.M);
    size_t Nodes = P.Prof->graph().numNodes();
    size_t Edges = P.Prof->graph().numEdges();

    opt::PassManager PM;
    opt::PipelineResult R = PM.run(*W.M);
    const Module &After = R.Changed ? *R.M : *W.M;

    size_t RolledBack = 0;
    for (const auto &[PassName, PS] : R.PerPass)
      RolledBack += PS.RolledBack;
    double AutoPct =
        R.InstrsBefore
            ? 100.0 * (1.0 - double(R.InstrsAfter) / double(R.InstrsBefore))
            : 0.0;
    std::printf("%-10s %12llu %12llu %7.1f%% %10llu %10llu %8zu %8zu\n",
                Name, (unsigned long long)R.InstrsBefore,
                (unsigned long long)R.InstrsAfter, AutoPct,
                (unsigned long long)R.AllocsBefore,
                (unsigned long long)R.AllocsAfter, R.applied(), RolledBack);

    for (EngineKind E : {EngineKind::Interp, EngineKind::Threaded}) {
      RunResult Orig, Rewritten;
      double TOrig = engineSeconds(*W.M, E, &Orig);
      double TNew = engineSeconds(After, E, &Rewritten);
      const char *EN = engineKindName(E);
      std::printf("  %-8s %-9s orig %.4fs  rewritten %.4fs  (%+.1f%%)%s\n",
                  "", EN, TOrig, TNew,
                  TOrig > 0 ? 100.0 * (TNew / TOrig - 1.0) : 0.0,
                  Rewritten.SinkHash == Orig.SinkHash ? ""
                                                      : "  !! OUTPUT CHANGED");
      emitJsonRow(std::string("optimizer/") + Name + "/original", S, TOrig,
                  Nodes, Edges, E);
      emitJsonRow(std::string("optimizer/") + Name + "/rewritten", S, TNew,
                  Nodes, Edges, E);
    }
  }
  std::printf("(auto-%% counts executed instructions on the validation "
              "engine; allocs' reflects hoisted clones and removed memo "
              "tables; tomcat stays ~0%% by design — no gate fires)\n\n");
}

void BM_RewritePipeline(benchmark::State &State) {
  // Full profile → evidence → propose → validate → commit cycle.
  Workload W = buildWorkload("sunflow", tableScale() / 4);
  for (auto _ : State) {
    opt::PassManager PM;
    opt::PipelineResult R = PM.run(*W.M);
    benchmark::DoNotOptimize(R.applied());
  }
}

} // namespace

BENCHMARK(BM_RewritePipeline)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  benchmark::Initialize(&argc, argv);
  printTable();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
