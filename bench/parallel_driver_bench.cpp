//===- bench/parallel_driver_bench.cpp - Sharded driver throughput ---------===//
//
// Throughput of the parallel multi-workload driver against the sequential
// baseline: the whole DaCapo suite profiled back to back on one thread
// versus sharded over the pool, and one workload profiled in repeated
// shards with the per-shard graphs merged. The merged graph's node and
// edge counts are printed next to the sequential ones — they must match,
// whatever the thread count (the fold is in shard-index order).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/ParallelDriver.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace lud;
using namespace lud::bench;

namespace {

unsigned poolThreads() {
  if (const char *E = std::getenv("LUD_THREADS"))
    return unsigned(std::strtoul(E, nullptr, 10));
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 4;
}

void printTable() {
  const int64_t S = tableScale() / 4;
  const unsigned Threads = poolThreads();
  std::printf("=== Parallel driver: suite batch + sharded merge "
              "(scale %lld, %u threads) ===\n",
              (long long)S, Threads);

  // Whole-suite batch: every DaCapo workload once.
  std::vector<Workload> Ws;
  std::vector<const Module *> Mods;
  for (const std::string &Name : dacapoNames()) {
    Ws.push_back(buildWorkload(Name, S));
    Mods.push_back(Ws.back().M.get());
  }
  ParallelConfig Seq;
  Seq.Threads = 1;
  ParallelConfig Par;
  Par.Threads = Threads;
  ParallelResult RSeq = runParallel(Mods, Seq);
  ParallelResult RPar = runParallel(Mods, Par);
  std::printf("suite of %zu: sequential %.3fs, %u threads %.3fs (%.2fx)\n",
              Mods.size(), RSeq.Seconds, Threads, RPar.Seconds,
              RPar.Seconds > 0 ? RSeq.Seconds / RPar.Seconds : 0);
  size_t SuiteNodes = 0, SuiteEdges = 0;
  for (const ProfiledRun &R : RPar.Runs) {
    SuiteNodes += R.Prof->graph().numNodes();
    SuiteEdges += R.Prof->graph().numEdges();
  }
  emitJsonRow("parallel_driver/suite_seq", S, RSeq.Seconds, SuiteNodes,
              SuiteEdges);
  emitJsonRow("parallel_driver/suite_par", S, RPar.Seconds, SuiteNodes,
              SuiteEdges);

  // Sharded merge on one workload: graphs must agree with sequential.
  Workload W = buildWorkload("eclipse", S);
  const unsigned Shards = 8;
  ParallelConfig One = Seq;
  ShardedRun A = runShardedProfiled(*W.M, Shards, One);
  ShardedRun B = runShardedProfiled(*W.M, Shards, Par);
  const DepGraph &GA = A.Prof->graph();
  const DepGraph &GB = B.Prof->graph();
  std::printf("eclipse x%u shards: 1 thread %.3fs (N=%zu E=%zu), "
              "%u threads %.3fs (N=%zu E=%zu) %s\n\n",
              Shards, A.Seconds, GA.numNodes(), GA.numEdges(), Threads,
              B.Seconds, GB.numNodes(), GB.numEdges(),
              GA.numNodes() == GB.numNodes() && GA.numEdges() == GB.numEdges()
                  ? "[graphs match]"
                  : "[GRAPH MISMATCH]");
  emitJsonRow("parallel_driver/eclipse_shards", S, B.Seconds, GB.numNodes(),
              GB.numEdges());

  // Telemetry export: a sharded session with the registry on, folded over
  // the pool, dumped in the format --stats requested. The registry after
  // the fold is thread-count independent (wall-time metrics aside).
  if (statsEnabled()) {
    SessionConfig SCfg;
    SCfg.CollectStats = true;
    ShardedSession SS = runShardedSession(*W.M, Shards, SCfg, Threads);
    emitStats(*SS.Session);
  }
}

/// Timing aspect: the full suite batch at a given thread count.
void BM_SuiteBatch(benchmark::State &State) {
  const int64_t S = tableScale() / 8;
  std::vector<Workload> Ws;
  std::vector<const Module *> Mods;
  for (const std::string &Name : dacapoNames()) {
    Ws.push_back(buildWorkload(Name, S));
    Mods.push_back(Ws.back().M.get());
  }
  ParallelConfig Cfg;
  Cfg.Threads = unsigned(State.range(0));
  for (auto _ : State) {
    ParallelResult R = runParallel(Mods, Cfg);
    benchmark::DoNotOptimize(R.Runs.size());
  }
  State.counters["threads"] = double(Cfg.Threads);
}

} // namespace

BENCHMARK(BM_SuiteBatch)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  initJsonRows(&argc, argv);
  initStats(&argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
