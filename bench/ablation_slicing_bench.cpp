//===- bench/ablation_slicing_bench.cpp - Thin vs traditional slicing ------===//
//
// Ablation for the paper's two central design choices (Sections 1-2):
//
//  1. Thin slicing vs traditional slicing: with base-pointer uses included
//     (traditional), backward slices drag in the pointer-construction work
//     of every container on the path, so edges and slice sizes grow. The
//     paper's argument is that thin slices are smaller and attribute costs
//     to the right structures.
//  2. Abstract vs concrete slicing: the abstract dependence graph stays
//     bounded as the run grows; a concrete dynamic dependence graph (one
//     node per instruction *instance*) grows linearly. We report the
//     concrete node count (== executed, graph-covered instances) alongside
//     the abstract node count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/CostModel.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

/// Mean backward-slice size (node count) over all heap-store nodes.
double meanStoreSliceNodes(const DepGraph &G) {
  CostModel CM(G);
  uint64_t Total = 0, Count = 0;
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    if (!G.node(N).WritesHeap)
      continue;
    // Count visited nodes: reuse abstractCost with unit weights by walking
    // manually here (frequencies would conflate size with heat).
    std::vector<bool> Seen(G.numNodes(), false);
    std::vector<NodeId> Work{N};
    Seen[N] = true;
    uint64_t Size = 0;
    while (!Work.empty()) {
      NodeId X = Work.back();
      Work.pop_back();
      ++Size;
      for (NodeId P : G.node(X).In)
        if (!Seen[P]) {
          Seen[P] = true;
          Work.push_back(P);
        }
    }
    Total += Size;
    ++Count;
  }
  return Count ? double(Total) / double(Count) : 0;
}

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Ablation: thin vs traditional, abstract vs concrete "
              "(scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %10s %10s %12s %12s %12s %12s\n", "program",
              "thin-E", "trad-E", "thin-slice", "trad-slice", "abs-N",
              "concrete-N");
  for (const std::string &Name : dacapoNames()) {
    Workload W = buildWorkload(Name, S);
    SlicingConfig Thin;
    SlicingConfig Trad;
    Trad.ThinSlicing = false;
    ProfiledRun PThin = profiledRun(*W.M, Thin);
    ProfiledRun PTrad = profiledRun(*W.M, Trad);
    std::printf("%-12s %10zu %10zu %12.1f %12.1f %12zu %12llu\n",
                Name.c_str(), PThin.Prof->graph().numEdges(),
                PTrad.Prof->graph().numEdges(),
                meanStoreSliceNodes(PThin.Prof->graph()),
                meanStoreSliceNodes(PTrad.Prof->graph()),
                PThin.Prof->graph().numNodes(),
                (unsigned long long)PThin.Prof->graph().totalFreq());
  }
  std::printf("(shape: traditional slicing has more edges and strictly "
              "larger slices; the abstract graph is orders of magnitude "
              "smaller than the concrete instance count)\n\n");
}

void BM_ThinProfiled(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 2);
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M);
    benchmark::DoNotOptimize(P.Prof->graph().numEdges());
  }
}

void BM_TraditionalProfiled(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 2);
  SlicingConfig Cfg;
  Cfg.ThinSlicing = false;
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M, Cfg);
    benchmark::DoNotOptimize(P.Prof->graph().numEdges());
  }
}

} // namespace

BENCHMARK(BM_ThinProfiled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraditionalProfiled)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
