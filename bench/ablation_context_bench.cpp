//===- bench/ablation_context_bench.cpp - Context slots sweep --------------===//
//
// Ablation over the paper's s parameter (the bounded context domain of
// Section 2.2): sweeping s in {1, 2, 4, 8, 16, 32, 64} on representative
// workloads, reporting graph size, retained memory, and the conflict ratio
// CR. Shape to check (mirroring Table 1's s=8 vs s=16 columns): memory
// grows mildly with s while CR falls towards zero; s=1 is the fully
// context-insensitive collapse.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace lud;
using namespace lud::bench;

namespace {

const char *kApps[] = {"eclipse", "derby", "tradesoap"};

void printTable() {
  const int64_t S = tableScale();
  std::printf("=== Ablation: context slots s sweep (scale %lld) ===\n",
              (long long)S);
  std::printf("%-12s %4s %10s %10s %10s %8s %10s\n", "program", "s", "N", "E",
              "M(KB)", "CR", "contexts");
  for (const char *Name : kApps) {
    Workload W = buildWorkload(Name, S);
    for (uint32_t Slots : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      SlicingConfig Cfg;
      Cfg.ContextSlots = Slots;
      ProfiledRun P = profiledRun(*W.M, Cfg);
      const DepGraph &G = P.Prof->graph();
      std::printf("%-12s %4u %10zu %10zu %10.1f %8.3f %10llu\n", Name, Slots,
                  G.numNodes(), G.numEdges(),
                  double(G.memoryFootprint().total()) / 1024.0,
                  P.Prof->averageCR(),
                  (unsigned long long)P.Prof->distinctContexts());
    }
  }
  std::printf("(shape: CR falls as s grows; N/E/M grow mildly and saturate "
              "once every distinct context has its own slot)\n\n");
}

void BM_SlotsSweep(benchmark::State &State) {
  Workload W = buildWorkload("eclipse", tableScale() / 2);
  SlicingConfig Cfg;
  Cfg.ContextSlots = uint32_t(State.range(0));
  for (auto _ : State) {
    ProfiledRun P = profiledRun(*W.M, Cfg);
    benchmark::DoNotOptimize(P.Prof->graph().numNodes());
  }
  State.SetLabel("s=" + std::to_string(State.range(0)));
}

} // namespace

BENCHMARK(BM_SlotsSweep)->RangeMultiplier(4)->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
