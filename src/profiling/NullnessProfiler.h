//===- profiling/NullnessProfiler.h - Null propagation client --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The null-value propagation client of Section 2.1 / Figure 2(a): abstract
/// dynamic thin slicing over the two-element domain {null, not-null}. When
/// a NullPointerException-style trap fires, the recorded graph shows where
/// the null value was created and every hop it took to the dereference —
/// more than origin-only tracking gives.
///
/// A pipeline stage: shadow-location bookkeeping lives in the shared
/// ShadowMachine, and the client composes with the SlicingProfiler
/// substrate in one interpretation pass (see runtime/ComposedProfiler.h).
/// It stays runnable standalone — nullness needs no allocation-site tags.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_NULLNESSPROFILER_H
#define LUD_PROFILING_NULLNESSPROFILER_H

#include "profiling/DepGraph.h"
#include "profiling/ShadowMachine.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <vector>

namespace lud {

class Module;
namespace obs {
class MetricsRegistry;
}

/// Domain elements for the nullness abstraction.
inline constexpr uint32_t kNullDom = 0;
inline constexpr uint32_t kNotNullDom = 1;

class NullnessProfiler {
public:
  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }

  /// Node whose value was dereferenced when the trap fired (kNoNode if no
  /// trap happened or the value was untracked).
  NodeId faultNode() const { return Fault; }
  InstrId faultInstr() const { return FaultInstr; }

  /// Merges another profiler's results into this one, treating \p O as the
  /// later of two sequential runs: the graph is folded with
  /// DepGraph::mergeFrom, and \p O's fault (if any) supersedes this one's,
  /// exactly as a later run's trap would overwrite the recorded fault when
  /// one profiler observes the runs back to back.
  void mergeFrom(const NullnessProfiler &O);

  /// Writes this client's state-derived telemetry (`nullness.*` gauges)
  /// into \p R. Idempotent set()s; see SlicingProfiler::accountStats.
  void accountStats(obs::MetricsRegistry &R) const;

  // Profiler hooks.
  void onRunStart(const Module &Mod, Heap &H);
  void onRunEnd() {}
  void onEntryFrame(const Function &F);
  void onPhase(int64_t) {}
  void onConst(const ConstInst &I);
  void onAssign(const AssignInst &I);
  void onBin(const BinInst &I);
  void onUn(const UnInst &I);
  void onAlloc(const AllocInst &I, ObjId O);
  void onAllocArray(const AllocArrayInst &I, ObjId O);
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded);
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored);
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded);
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored);
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded);
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored);
  void onArrayLen(const ArrayLenInst &I, ObjId Base);
  void onPredicate(const CondBrInst &I, bool Taken);
  void onNativeCall(const NativeCallInst &I);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);
  void onReturn(const ReturnInst &I);
  void onReturnBound(Reg Dst);
  void onTrap(const Instruction &I, TrapKind K, Reg FaultReg);

private:
  NodeId *regs() { return Sh.regs(); }

  /// Creates/bumps the node for (I, null or not-null) and returns it.
  NodeId hit(const Instruction &I, bool IsNull);

  void edgeFrom(NodeId Src, NodeId To) {
    if (Src != kNoNode)
      G.addEdge(Src, To);
  }

  DepGraph G;
  ShadowMachine<NodeId> Sh{kNoNode};
  NodeId Fault = kNoNode;
  InstrId FaultInstr = kNoInstr;
};

/// Result of tracing a null dereference backwards (Figure 2(a)).
struct NullTrace {
  /// Instruction that created the null value originally.
  InstrId Origin = kNoInstr;
  /// The propagation flow, origin first, dereferenced value last (one
  /// instruction per hop the null value took).
  std::vector<InstrId> Flow;
  bool found() const { return Origin != kNoInstr; }
};

/// Walks backward from the profiler's fault node through null-annotated
/// nodes to the origin, reconstructing a shortest propagation path.
NullTrace traceNullOrigin(const NullnessProfiler &P);

} // namespace lud

#endif // LUD_PROFILING_NULLNESSPROFILER_H
