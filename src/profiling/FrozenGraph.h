//===- profiling/FrozenGraph.h - Sealed immutable Gcost --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-phase half of the graph lifecycle. A DepGraph is optimized
/// for interning: open-addressing tables resolve node/edge membership in
/// O(1) while profiling events stream in, and adjacency grows in per-node
/// vectors. Once profiling (and the sharded fold) is done, the graph never
/// mutates again — but the paper-scale read paths (CostModel closures,
/// DeadValues sweeps, report aggregation over every heap location) then
/// walk those pointer-chasing structures millions of times.
///
/// FrozenGraph::seal converts the finished graph into an immutable packed
/// form sized for 139K-860K-node Gcosts (the paper's Table 1):
///
///   - CSR adjacency: one offsets array + one dense targets array per
///     direction, preserving each node's insertion order, so BFS closures
///     stream contiguous memory instead of hopping between vectors;
///   - SoA node attributes: Instr/Domain/freq/flag columns in parallel
///     arrays, so a sweep touches only the bytes it reads (DeadValues
///     reads one meta byte + one freq word per node, not a ~100-byte
///     Node record);
///   - sorted key tables searched with a branchless Eytzinger layout
///     (`i = 2i + (keys[i] < target)` with per-level prefetch) for the
///     node-key, allocation-tag and HeapLoc lookups, replacing the
///     open-addressing probe sequences;
///   - writers/readers/refChildren flattened into offset-indexed spans
///     over one shared sorted HeapLoc universe.
///
/// Node ids are preserved exactly, and the per-location value sequences
/// dedup to the first-occurrence order the build phase's insertUnique
/// historically produced, so canonical serialization (GraphIO) and every
/// report stay byte-identical to the mutable representation's.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_FROZENGRAPH_H
#define LUD_PROFILING_FROZENGRAPH_H

#include "profiling/DepGraph.h"

#include <cassert>
#include <span>

namespace lud {

namespace obs {
class MetricsRegistry;
}

/// Branchless lookup table over a sorted key sequence, stored in Eytzinger
/// (BFS) order: element 1 is the root, element i's children are 2i and
/// 2i+1. The search loop is a data-independent multiply-free descent whose
/// next index depends only on one comparison, so it pipelines and
/// prefetches where a binary search over the sorted array stalls on every
/// level. Payloads are the keys' ranks in sorted order.
class EytzingerIndex {
public:
  EytzingerIndex() = default;

  /// Builds from \p SortedKeys (strictly ascending). The tree is padded to
  /// a full power of two with +inf sentinel keys so every real key sits in
  /// a complete tree: the descent then runs a fixed number of levels with
  /// no data-dependent exit (a half-full bottom level would otherwise cost
  /// a mispredicted branch on most lookups).
  explicit EytzingerIndex(const std::vector<uint64_t> &SortedKeys) {
    size_t Cap = 2;
    Levels = 1;
    while (Cap - 1 < SortedKeys.size()) {
      Cap <<= 1;
      ++Levels;
    }
    Keys.assign(Cap, ~uint64_t(0));
    Rank.assign(Cap, 0);
    size_t Next = 0;
    fill(SortedKeys, Next, 1);
  }

  /// Rank of \p X in the sorted key sequence, or npos when absent.
  static constexpr uint32_t npos = 0xFFFFFFFF;
  uint32_t find(uint64_t X) const {
    // All-ones is the padding sentinel; no interned key space reaches it.
    if (Keys.empty() || X == ~uint64_t(0))
      return npos;
    const uint64_t *K = Keys.data();
    const size_t Last = Keys.size() - 1;
    size_t I = 1;
    for (uint32_t L = 0; L != Levels; ++L) {
      // Pull the grandchildren's cache line while comparing: 4 levels of
      // the implicit tree (16 keys, two lines) ahead of the descent.
      __builtin_prefetch(&K[std::min(I * 16, Last)]);
      I = 2 * I + (K[I] < X);
    }
    // The descent ends on a virtual leaf; undoing the trailing right
    // turns (+1) recovers the lower bound. I == 0 means every key < X.
    I >>= __builtin_ffsll((long long)~I);
    if (I == 0 || K[I] != X)
      return npos;
    return Rank[I];
  }

  size_t memoryBytes() const {
    return Keys.capacity() * sizeof(uint64_t) +
           Rank.capacity() * sizeof(uint32_t);
  }

private:
  void fill(const std::vector<uint64_t> &Sorted, size_t &Next, size_t I) {
    if (I >= Keys.size() || Next >= Sorted.size())
      return;
    fill(Sorted, Next, 2 * I);
    if (Next < Sorted.size()) {
      Keys[I] = Sorted[Next];
      Rank[I] = uint32_t(Next);
      ++Next;
    }
    fill(Sorted, Next, 2 * I + 1);
  }

  /// 1-indexed; slot 0 unused. Power-of-two size, +inf padded.
  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Rank;
  uint32_t Levels = 0;
};

/// EytzingerIndex over (Tag, Slot) pairs — a HeapLoc key is 96 bits, so
/// the key lives in two parallel columns and each level compares
/// lexicographically. The descent stays branchless: the comparison result
/// is computed with integer ops, never a branch.
class LocEytzingerIndex {
public:
  LocEytzingerIndex() = default;

  /// Builds from parallel columns sorted ascending by (Tag, Slot). Padded
  /// to a full power of two with +inf sentinels, same as EytzingerIndex.
  LocEytzingerIndex(const std::vector<uint64_t> &SortedTags,
                    const std::vector<FieldSlot> &SortedSlots) {
    assert(SortedTags.size() == SortedSlots.size());
    size_t Cap = 2;
    Levels = 1;
    while (Cap - 1 < SortedTags.size()) {
      Cap <<= 1;
      ++Levels;
    }
    Tags.assign(Cap, ~uint64_t(0));
    Slots.assign(Cap, ~FieldSlot(0));
    Rank.assign(Cap, 0);
    size_t Next = 0;
    fill(SortedTags, SortedSlots, Next, 1);
  }

  static constexpr uint32_t npos = 0xFFFFFFFF;
  uint32_t find(const HeapLoc &L) const {
    // All-ones tags are the padding sentinel; real tags stay below 2^63.
    if (Tags.empty() || L.Tag == ~uint64_t(0))
      return npos;
    const uint64_t *T = Tags.data();
    const FieldSlot *S = Slots.data();
    const size_t Last = Tags.size() - 1;
    size_t I = 1;
    for (uint32_t Lv = 0; Lv != Levels; ++Lv) {
      __builtin_prefetch(&T[std::min(I * 16, Last)]);
      unsigned Less = unsigned(T[I] < L.Tag) |
                      (unsigned(T[I] == L.Tag) & unsigned(S[I] < L.Slot));
      I = 2 * I + Less;
    }
    I >>= __builtin_ffsll((long long)~I);
    if (I == 0 || T[I] != L.Tag || S[I] != L.Slot)
      return npos;
    return Rank[I];
  }

  size_t memoryBytes() const {
    return Tags.capacity() * sizeof(uint64_t) +
           Slots.capacity() * sizeof(FieldSlot) +
           Rank.capacity() * sizeof(uint32_t);
  }

private:
  void fill(const std::vector<uint64_t> &ST, const std::vector<FieldSlot> &SS,
            size_t &Next, size_t I) {
    if (I >= Tags.size() || Next >= ST.size())
      return;
    fill(ST, SS, Next, 2 * I);
    if (Next < ST.size()) {
      Tags[I] = ST[Next];
      Slots[I] = SS[Next];
      Rank[I] = uint32_t(Next);
      ++Next;
    }
    fill(ST, SS, Next, 2 * I + 1);
  }

  std::vector<uint64_t> Tags;
  std::vector<FieldSlot> Slots;
  std::vector<uint32_t> Rank;
  uint32_t Levels = 0;
};

/// Immutable, cache-packed view of a finished DepGraph. See the file
/// comment for the layout; accessors mirror DepGraph's read API.
class FrozenGraph {
public:
  FrozenGraph() = default;

  /// Packs \p G, leaving it intact (profilers keep their build graph for
  /// non-graph state such as location activity).
  explicit FrozenGraph(const DepGraph &G);

  /// Packs \p G and releases the build-phase storage: past this point only
  /// the frozen representation is resident.
  static FrozenGraph seal(DepGraph &&G) {
    FrozenGraph F(G);
    G = DepGraph();
    return F;
  }

  //===--------------------------------------------------------------------===
  // Node attributes (SoA columns).
  //===--------------------------------------------------------------------===

  size_t numNodes() const { return Instrs.size(); }
  size_t numEdges() const { return OutTargets.size(); }
  size_t numRefEdges() const { return RefEdges.size(); }

  InstrId instr(NodeId N) const { return Instrs[N]; }
  uint32_t domain(NodeId N) const { return Domains[N]; }
  uint64_t freq(NodeId N) const { return Freqs[N]; }
  ConsumerKind consumer(NodeId N) const {
    return ConsumerKind((Meta[N] >> kConsumerShift) & 3);
  }
  EffectKind effect(NodeId N) const {
    return EffectKind((Meta[N] >> kEffectShift) & 3);
  }
  HeapLoc effectLoc(NodeId N) const {
    return HeapLoc{EffectTags[N], EffectSlots[N]};
  }
  bool readsHeap(NodeId N) const { return Meta[N] & kReadsHeap; }
  bool writesHeap(NodeId N) const { return Meta[N] & kWritesHeap; }
  bool isAlloc(NodeId N) const { return Meta[N] & kIsAlloc; }
  bool storedRef(NodeId N) const { return Meta[N] & kStoredRef; }

  uint64_t totalFreq() const { return TotalFreq; }

  //===--------------------------------------------------------------------===
  // CSR adjacency. Spans preserve the build phase's per-node insertion
  // order (the canonical serialization contract).
  //===--------------------------------------------------------------------===

  std::span<const NodeId> out(NodeId N) const {
    return {OutTargets.data() + OutOffsets[N],
            OutTargets.data() + OutOffsets[N + 1]};
  }
  std::span<const NodeId> in(NodeId N) const {
    return {InTargets.data() + InOffsets[N],
            InTargets.data() + InOffsets[N + 1]};
  }
  size_t outDegree(NodeId N) const { return OutOffsets[N + 1] - OutOffsets[N]; }
  size_t inDegree(NodeId N) const { return InOffsets[N + 1] - InOffsets[N]; }

  const std::vector<std::pair<NodeId, NodeId>> &refEdges() const {
    return RefEdges;
  }

  //===--------------------------------------------------------------------===
  // Frozen interning tables.
  //===--------------------------------------------------------------------===

  /// Node for (Instr, Domain), or kNoNode.
  NodeId lookup(InstrId Instr, uint32_t Domain) const {
    uint32_t R = NodeIndex.find((uint64_t(Instr) << 32) | Domain);
    return R == EytzingerIndex::npos ? kNoNode : NodeByRank[R];
  }

  /// Allocation node for \p Tag, or kNoNode.
  NodeId allocNodeFor(uint64_t Tag) const {
    uint32_t R = AllocIndex.find(Tag);
    return R == EytzingerIndex::npos ? kNoNode : AllocEntries[R].second;
  }
  /// (tag, allocation node) pairs sorted by tag — the deterministic
  /// iteration CostModel::allTags and the serializer need.
  const std::vector<std::pair<uint64_t, NodeId>> &allocEntries() const {
    return AllocEntries;
  }

  //===--------------------------------------------------------------------===
  // Heap-location maps: one sorted universe of every location any of the
  // three maps mentions, with per-map spans. An absent entry is an empty
  // span (the build phase never stores empty vectors).
  //===--------------------------------------------------------------------===

  size_t numLocs() const { return LocTags.size(); }
  HeapLoc loc(size_t I) const { return HeapLoc{LocTags[I], LocSlots[I]}; }

  std::span<const NodeId> writersOf(const HeapLoc &L) const {
    uint32_t I = findLoc(L);
    return I == EytzingerIndex::npos ? std::span<const NodeId>()
                                     : writersAt(I);
  }
  std::span<const NodeId> readersOf(const HeapLoc &L) const {
    uint32_t I = findLoc(L);
    return I == EytzingerIndex::npos ? std::span<const NodeId>()
                                     : readersAt(I);
  }
  std::span<const uint64_t> refChildrenOf(const HeapLoc &L) const {
    uint32_t I = findLoc(L);
    return I == EytzingerIndex::npos ? std::span<const uint64_t>()
                                     : refChildrenAt(I);
  }

  /// Per-universe-index spans, for full-map sweeps in sorted-key order.
  std::span<const NodeId> writersAt(size_t I) const {
    return {WriterVals.data() + WriterOffsets[I],
            WriterVals.data() + WriterOffsets[I + 1]};
  }
  std::span<const NodeId> readersAt(size_t I) const {
    return {ReaderVals.data() + ReaderOffsets[I],
            ReaderVals.data() + ReaderOffsets[I + 1]};
  }
  std::span<const uint64_t> refChildrenAt(size_t I) const {
    return {RefChildVals.data() + RefChildOffsets[I],
            RefChildVals.data() + RefChildOffsets[I + 1]};
  }

  //===--------------------------------------------------------------------===
  // Tag codec (mirrors DepGraph's).
  //===--------------------------------------------------------------------===

  uint32_t contextSlots() const { return ContextSlots; }
  uint64_t makeTag(AllocSiteId Site, uint32_t Slot) const {
    return uint64_t(Site) * ContextSlots + Slot;
  }
  static uint64_t makeStaticTag(GlobalId G) {
    return DepGraph::makeStaticTag(G);
  }
  static bool isStaticTag(uint64_t Tag) { return DepGraph::isStaticTag(Tag); }
  AllocSiteId tagSite(uint64_t Tag) const {
    return AllocSiteId(Tag / ContextSlots);
  }
  uint32_t tagSlot(uint64_t Tag) const { return uint32_t(Tag % ContextSlots); }

  //===--------------------------------------------------------------------===
  // Memory accounting (the `mem.frozen.*` telemetry lines).
  //===--------------------------------------------------------------------===

  struct MemoryFootprint {
    /// SoA attribute columns (instr/domain/freq/meta/effect-loc).
    size_t NodeBytes = 0;
    /// CSR offsets + targets, both directions, plus ref edges.
    size_t EdgeBytes = 0;
    /// Location universe keys, per-map offsets and value arrays.
    size_t LocBytes = 0;
    /// Eytzinger lookup tables (node key, alloc tag, heap loc).
    size_t IndexBytes = 0;
    size_t total() const {
      return NodeBytes + EdgeBytes + LocBytes + IndexBytes;
    }
  };
  MemoryFootprint memoryFootprint() const;

  /// Publishes the footprint as mem.frozen.* gauges.
  void accountStats(obs::MetricsRegistry &R) const;

private:
  uint32_t findLoc(const HeapLoc &L) const { return LocIndex.find(L); }

  // SoA meta byte layout.
  static constexpr uint8_t kReadsHeap = 1u << 0;
  static constexpr uint8_t kWritesHeap = 1u << 1;
  static constexpr uint8_t kIsAlloc = 1u << 2;
  static constexpr uint8_t kStoredRef = 1u << 3;
  static constexpr unsigned kConsumerShift = 4;
  static constexpr unsigned kEffectShift = 6;

  // Node columns.
  std::vector<InstrId> Instrs;
  std::vector<uint32_t> Domains;
  std::vector<uint64_t> Freqs;
  std::vector<uint8_t> Meta;
  std::vector<uint64_t> EffectTags;
  std::vector<FieldSlot> EffectSlots;

  // CSR adjacency.
  std::vector<uint32_t> OutOffsets, InOffsets;
  std::vector<NodeId> OutTargets, InTargets;
  std::vector<std::pair<NodeId, NodeId>> RefEdges;

  // Frozen node-key table: Eytzinger over (Instr<<32)|Domain, payload is
  // the key's sorted rank into NodeByRank.
  EytzingerIndex NodeIndex;
  std::vector<NodeId> NodeByRank;

  // Frozen allocation-tag table.
  EytzingerIndex AllocIndex;
  std::vector<std::pair<uint64_t, NodeId>> AllocEntries;

  // Heap-location universe, sorted by (Tag, Slot).
  std::vector<uint64_t> LocTags;
  std::vector<FieldSlot> LocSlots;
  LocEytzingerIndex LocIndex;
  std::vector<uint32_t> WriterOffsets, ReaderOffsets, RefChildOffsets;
  std::vector<NodeId> WriterVals, ReaderVals;
  std::vector<uint64_t> RefChildVals;

  uint64_t TotalFreq = 0;
  uint32_t ContextSlots = 1;
};

} // namespace lud

#endif // LUD_PROFILING_FROZENGRAPH_H
