//===- profiling/FrozenGraph.cpp - Sealed immutable Gcost ------------------===//

#include "profiling/FrozenGraph.h"

#include "obs/Metrics.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <unordered_set>

using namespace lud;

namespace {

/// Appends \p V to \p Out keeping the first occurrence of each element, in
/// order — exactly the sequence the build phase's historical exact-dedup
/// insertUnique produced, so the canonical serialization is unchanged.
/// (Since the O(n^2) interning fix, build-phase vectors may carry
/// duplicates past the recent-entry window; this is where they go away.)
template <typename T>
void appendFirstOccurrences(const std::vector<T> &V, std::vector<T> &Out) {
  if (V.size() <= 16) {
    const size_t Start = Out.size();
    for (const T &X : V) {
      bool Seen = false;
      for (size_t I = Start; I != Out.size(); ++I)
        if (Out[I] == X) {
          Seen = true;
          break;
        }
      if (!Seen)
        Out.push_back(X);
    }
    return;
  }
  std::unordered_set<T> Seen;
  Seen.reserve(V.size());
  for (const T &X : V)
    if (Seen.insert(X).second)
      Out.push_back(X);
}

bool locLess(const HeapLoc &A, const HeapLoc &B) {
  return A.Tag != B.Tag ? A.Tag < B.Tag : A.Slot < B.Slot;
}

} // namespace

FrozenGraph::FrozenGraph(const DepGraph &G) {
  const size_t N = G.numNodes();
  if (N >= size_t(kNoNode))
    lud_unreachable("graph too large to seal");
  ContextSlots = G.contextSlots();

  // SoA node columns.
  Instrs.resize(N);
  Domains.resize(N);
  Freqs.resize(N);
  Meta.resize(N);
  EffectTags.resize(N);
  EffectSlots.resize(N);
  for (NodeId I = 0; I != NodeId(N); ++I) {
    const DepGraph::Node &Node = G.node(I);
    Instrs[I] = Node.Instr;
    Domains[I] = Node.Domain;
    Freqs[I] = G.freq(I);
    uint8_t M = 0;
    M |= Node.ReadsHeap ? kReadsHeap : 0;
    M |= Node.WritesHeap ? kWritesHeap : 0;
    M |= Node.IsAlloc ? kIsAlloc : 0;
    M |= Node.StoredRef ? kStoredRef : 0;
    M |= uint8_t(Node.Consumer) << kConsumerShift;
    M |= uint8_t(Node.Effect) << kEffectShift;
    Meta[I] = M;
    EffectTags[I] = Node.EffectLoc.Tag;
    EffectSlots[I] = Node.EffectLoc.Slot;
    TotalFreq += G.freq(I);
  }

  // CSR adjacency, preserving per-node insertion order.
  size_t TotalOut = 0, TotalIn = 0;
  for (NodeId I = 0; I != NodeId(N); ++I) {
    TotalOut += G.node(I).Out.size();
    TotalIn += G.node(I).In.size();
  }
  if (TotalOut > 0xFFFFFFFFull || TotalIn > 0xFFFFFFFFull)
    lud_unreachable("edge count exceeds CSR offset range");
  OutOffsets.resize(N + 1);
  InOffsets.resize(N + 1);
  OutTargets.reserve(TotalOut);
  InTargets.reserve(TotalIn);
  for (NodeId I = 0; I != NodeId(N); ++I) {
    OutOffsets[I] = uint32_t(OutTargets.size());
    InOffsets[I] = uint32_t(InTargets.size());
    const DepGraph::Node &Node = G.node(I);
    OutTargets.insert(OutTargets.end(), Node.Out.begin(), Node.Out.end());
    InTargets.insert(InTargets.end(), Node.In.begin(), Node.In.end());
  }
  OutOffsets[N] = uint32_t(OutTargets.size());
  InOffsets[N] = uint32_t(InTargets.size());
  RefEdges = G.refEdges();

  // Frozen node-key table.
  {
    std::vector<std::pair<uint64_t, NodeId>> Pairs;
    Pairs.reserve(N);
    for (NodeId I = 0; I != NodeId(N); ++I)
      Pairs.emplace_back((uint64_t(Instrs[I]) << 32) | Domains[I], I);
    std::sort(Pairs.begin(), Pairs.end());
    std::vector<uint64_t> Keys;
    Keys.reserve(N);
    NodeByRank.resize(N);
    for (size_t I = 0; I != Pairs.size(); ++I) {
      Keys.push_back(Pairs[I].first);
      NodeByRank[I] = Pairs[I].second;
    }
    NodeIndex = EytzingerIndex(Keys);
  }

  // Frozen allocation-tag table.
  {
    AllocEntries.reserve(G.allocNodes().size());
    for (const auto &Entry : G.allocNodes())
      AllocEntries.push_back(Entry);
    std::sort(AllocEntries.begin(), AllocEntries.end());
    std::vector<uint64_t> Tags;
    Tags.reserve(AllocEntries.size());
    for (const auto &[Tag, Node] : AllocEntries)
      Tags.push_back(Tag);
    AllocIndex = EytzingerIndex(Tags);
  }

  // Heap-location universe: union of the three maps' keys, sorted by
  // (Tag, Slot). Presence in a map is "non-empty span": the build phase
  // only materializes a vector when it inserts into it.
  {
    std::vector<HeapLoc> Universe;
    Universe.reserve(G.writers().size() + G.readers().size() +
                     G.refChildren().size());
    for (const auto &[Loc, Vals] : G.writers())
      Universe.push_back(Loc);
    for (const auto &[Loc, Vals] : G.readers())
      Universe.push_back(Loc);
    for (const auto &[Loc, Vals] : G.refChildren())
      Universe.push_back(Loc);
    std::sort(Universe.begin(), Universe.end(), locLess);
    Universe.erase(std::unique(Universe.begin(), Universe.end()),
                   Universe.end());

    const size_t L = Universe.size();
    LocTags.resize(L);
    LocSlots.resize(L);
    for (size_t I = 0; I != L; ++I) {
      LocTags[I] = Universe[I].Tag;
      LocSlots[I] = Universe[I].Slot;
    }
    LocIndex = LocEytzingerIndex(LocTags, LocSlots);

    WriterOffsets.resize(L + 1);
    ReaderOffsets.resize(L + 1);
    RefChildOffsets.resize(L + 1);
    for (size_t I = 0; I != L; ++I) {
      WriterOffsets[I] = uint32_t(WriterVals.size());
      ReaderOffsets[I] = uint32_t(ReaderVals.size());
      RefChildOffsets[I] = uint32_t(RefChildVals.size());
      const HeapLoc &Loc = Universe[I];
      if (auto It = G.writers().find(Loc); It != G.writers().end())
        appendFirstOccurrences(It->second, WriterVals);
      if (auto It = G.readers().find(Loc); It != G.readers().end())
        appendFirstOccurrences(It->second, ReaderVals);
      if (auto It = G.refChildren().find(Loc); It != G.refChildren().end())
        appendFirstOccurrences(It->second, RefChildVals);
    }
    WriterOffsets[L] = uint32_t(WriterVals.size());
    ReaderOffsets[L] = uint32_t(ReaderVals.size());
    RefChildOffsets[L] = uint32_t(RefChildVals.size());
    WriterVals.shrink_to_fit();
    ReaderVals.shrink_to_fit();
    RefChildVals.shrink_to_fit();
  }
}

FrozenGraph::MemoryFootprint FrozenGraph::memoryFootprint() const {
  MemoryFootprint FP;
  FP.NodeBytes = Instrs.capacity() * sizeof(InstrId) +
                 Domains.capacity() * sizeof(uint32_t) +
                 Freqs.capacity() * sizeof(uint64_t) +
                 Meta.capacity() * sizeof(uint8_t) +
                 EffectTags.capacity() * sizeof(uint64_t) +
                 EffectSlots.capacity() * sizeof(FieldSlot);
  FP.EdgeBytes = (OutOffsets.capacity() + InOffsets.capacity()) *
                     sizeof(uint32_t) +
                 (OutTargets.capacity() + InTargets.capacity()) *
                     sizeof(NodeId) +
                 RefEdges.capacity() * sizeof(std::pair<NodeId, NodeId>);
  FP.LocBytes = LocTags.capacity() * sizeof(uint64_t) +
                LocSlots.capacity() * sizeof(FieldSlot) +
                (WriterOffsets.capacity() + ReaderOffsets.capacity() +
                 RefChildOffsets.capacity()) *
                    sizeof(uint32_t) +
                (WriterVals.capacity() + ReaderVals.capacity()) *
                    sizeof(NodeId) +
                RefChildVals.capacity() * sizeof(uint64_t);
  FP.IndexBytes = NodeIndex.memoryBytes() +
                  NodeByRank.capacity() * sizeof(NodeId) +
                  AllocIndex.memoryBytes() +
                  AllocEntries.capacity() * sizeof(std::pair<uint64_t, NodeId>) +
                  LocIndex.memoryBytes();
  return FP;
}

void FrozenGraph::accountStats(obs::MetricsRegistry &R) const {
  using obs::Unit;
  MemoryFootprint FP = memoryFootprint();
  R.set(R.gauge("mem.frozen.node_bytes", Unit::Bytes), FP.NodeBytes);
  R.set(R.gauge("mem.frozen.edge_bytes", Unit::Bytes), FP.EdgeBytes);
  R.set(R.gauge("mem.frozen.locmap_bytes", Unit::Bytes), FP.LocBytes);
  R.set(R.gauge("mem.frozen.index_bytes", Unit::Bytes), FP.IndexBytes);
  R.set(R.gauge("mem.frozen.total_bytes", Unit::Bytes), FP.total());
}
