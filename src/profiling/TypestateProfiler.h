//===- profiling/TypestateProfiler.h - Typestate history client *- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typestate-history client of Section 2.1 / Figure 2(b), modeled on
/// QVM's summarized histories: abstract slicing over the domain
/// O x S (allocation sites of tracked objects x typestates). Each virtual
/// call that can change a tracked object's state becomes a node annotated
/// with (allocation site, state before the call); "next event" edges link
/// consecutive events on the same object. Protocol violations are recorded
/// with the abstract node, so the merged history (a DFA-like graph) can be
/// inspected afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_TYPESTATEPROFILER_H
#define LUD_PROFILING_TYPESTATEPROFILER_H

#include "profiling/DepGraph.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

class Module;

/// A typestate protocol: states are small integers, transitions are keyed
/// by (state, method name). Missing transitions are protocol violations.
struct TypestateSpec {
  /// Classes whose instances are tracked.
  std::vector<ClassId> TrackedClasses;
  uint32_t NumStates = 0;
  uint32_t InitialState = 0;
  /// (state, interned method name) -> next state.
  std::unordered_map<uint64_t, uint32_t> Transitions;

  static uint64_t key(uint32_t State, MethodNameId Method) {
    return (uint64_t(State) << 32) | Method;
  }
  void addTransition(uint32_t From, MethodNameId Method, uint32_t To) {
    Transitions[key(From, Method)] = To;
  }
  bool tracks(ClassId C) const {
    for (ClassId T : TrackedClasses)
      if (T == C)
        return true;
    return false;
  }
};

/// One protocol violation: the event that had no legal transition.
struct TypestateViolation {
  InstrId Instr = kNoInstr;
  AllocSiteId Site = kNoAllocSite;
  uint32_t StateBefore = 0;
  MethodNameId Method = kNoMethodName;
};

class TypestateProfiler : public NoopProfiler {
public:
  explicit TypestateProfiler(TypestateSpec Spec) : Spec(std::move(Spec)) {}

  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }
  const std::vector<TypestateViolation> &violations() const {
    return Violations;
  }

  /// Next-event edges (the dashed arrows of Figure 2(b)): consecutive
  /// events observed on the same object, labeled with the method invoked
  /// at the target event.
  struct EventEdge {
    NodeId From;
    NodeId To;
    MethodNameId Method;
  };
  const std::vector<EventEdge> &eventEdges() const { return Events; }

  /// Domain element for (site, state).
  uint32_t domainOf(AllocSiteId Site, uint32_t State) const {
    return Site * Spec.NumStates + State;
  }

  // Hook overrides (the rest stay no-ops).
  void onRunStart(const Module &Mod, Heap &H);
  void onAlloc(const AllocInst &I, ObjId O);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);

  /// Renders the merged history as "site:state -method-> site:state" lines.
  std::string describeHistory(const Module &M) const;

private:
  TypestateSpec Spec;
  DepGraph G;
  Heap *H = nullptr;
  const Module *M = nullptr;
  std::vector<uint32_t> StateOf;        // per ObjId
  std::vector<AllocSiteId> SiteOf;      // per ObjId (kNoAllocSite untracked)
  std::vector<NodeId> LastEvent;        // per ObjId
  std::vector<TypestateViolation> Violations;
  std::vector<EventEdge> Events;

  void ensure(ObjId O);
};

} // namespace lud

#endif // LUD_PROFILING_TYPESTATEPROFILER_H
