//===- profiling/TypestateProfiler.h - Typestate history client *- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typestate-history client of Section 2.1 / Figure 2(b), modeled on
/// QVM's summarized histories: abstract slicing over the domain
/// O x S (allocation sites of tracked objects x typestates). Each virtual
/// call that can change a tracked object's state becomes a node annotated
/// with (allocation site, state before the call); "next event" edges link
/// consecutive events on the same object. Protocol violations are recorded
/// with the abstract node, so the merged history (a DFA-like graph) can be
/// inspected afterwards.
///
/// A pipeline stage attached to the SlicingProfiler substrate: the
/// receiver's allocation site comes from the heap tag the substrate's
/// ALLOC rule wrote, and trackedness from the heap object's class — no
/// duplicate per-object site table. Compose it after the substrate
/// (runtime/ComposedProfiler.h); untagged objects (allocated while the
/// substrate had tracking gated off) produce no events.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_TYPESTATEPROFILER_H
#define LUD_PROFILING_TYPESTATEPROFILER_H

#include "profiling/DepGraph.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lud {

class Module;

/// A typestate protocol: states are small integers, transitions are keyed
/// by (state, method name). Missing transitions are protocol violations.
struct TypestateSpec {
  /// Classes whose instances are tracked.
  std::vector<ClassId> TrackedClasses;
  uint32_t NumStates = 0;
  uint32_t InitialState = 0;
  /// (state, interned method name) -> next state.
  std::unordered_map<uint64_t, uint32_t> Transitions;

  static uint64_t key(uint32_t State, MethodNameId Method) {
    return (uint64_t(State) << 32) | Method;
  }
  void addTransition(uint32_t From, MethodNameId Method, uint32_t To) {
    Transitions[key(From, Method)] = To;
  }
  bool tracks(ClassId C) const {
    for (ClassId T : TrackedClasses)
      if (T == C)
        return true;
    return false;
  }
};

/// Derives a generic resource-lifecycle protocol from the module, for use
/// when no hand-written spec is supplied (the CLI's typestate client):
/// every class with a closer method (close/dispose/free/release) is
/// tracked through fresh(0) -> in-use(1) -> closed(2), where any method
/// moves fresh/in-use to in-use, a closer moves them to closed, and no
/// transition leaves closed — so every call on a closed object (QVM's
/// use-after-close) is a violation. Returns an empty spec (NumStates 0)
/// when no class has a closer method.
TypestateSpec lifecycleSpec(const Module &M);

/// One protocol violation: the event that had no legal transition.
struct TypestateViolation {
  InstrId Instr = kNoInstr;
  AllocSiteId Site = kNoAllocSite;
  uint32_t StateBefore = 0;
  MethodNameId Method = kNoMethodName;
};

class TypestateProfiler : public NoopProfiler {
public:
  /// \p Substrate is the slicing profiler whose heap tags provide the
  /// receivers' allocation sites; it must run in the same pipeline, before
  /// this stage.
  TypestateProfiler(TypestateSpec Spec, const SlicingProfiler &Substrate)
      : Spec(std::move(Spec)), Sub(&Substrate) {}

  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }
  const TypestateSpec &spec() const { return Spec; }
  const std::vector<TypestateViolation> &violations() const {
    return Violations;
  }

  /// Next-event edges (the dashed arrows of Figure 2(b)): consecutive
  /// events observed on the same object, labeled with the method invoked
  /// at the target event.
  struct EventEdge {
    NodeId From;
    NodeId To;
    MethodNameId Method;
  };
  const std::vector<EventEdge> &eventEdges() const { return Events; }

  /// Domain element for (site, state).
  uint32_t domainOf(AllocSiteId Site, uint32_t State) const {
    return Site * Spec.NumStates + State;
  }

  /// Merges another profiler's results into this one, treating \p O as the
  /// later of two sequential runs: graphs fold via DepGraph::mergeFrom,
  /// \p O's violations append in order, and its next-event edges are
  /// inserted (renumbered, deduplicated) after the existing ones. Both
  /// profilers must use the same spec.
  void mergeFrom(const TypestateProfiler &O);

  /// Writes this client's state-derived telemetry (`typestate.*` gauges)
  /// into \p R. Idempotent set()s; see SlicingProfiler::accountStats.
  void accountStats(obs::MetricsRegistry &R) const;

  // Hook overrides (the rest stay no-ops).
  void onRunStart(const Module &Mod, Heap &H);
  void onAlloc(const AllocInst &I, ObjId O);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);

  /// Renders the merged history as "site:state -method-> site:state" lines.
  std::string describeHistory(const Module &M) const;

private:
  TypestateSpec Spec;
  const SlicingProfiler *Sub = nullptr;
  DepGraph G;
  Heap *H = nullptr;
  std::vector<uint32_t> StateOf;        // per ObjId
  std::vector<NodeId> LastEvent;        // per ObjId
  std::vector<TypestateViolation> Violations;
  std::vector<EventEdge> Events;

  void ensure(ObjId O);
  /// Receiver's allocation site from its substrate-written heap tag
  /// (kNoAllocSite when untagged — allocated before tracking).
  AllocSiteId siteOf(ObjId O) const {
    uint64_t Tag = H->obj(O).Tag;
    if (Tag == kNoTag || DepGraph::isStaticTag(Tag))
      return kNoAllocSite;
    return Sub->graph().tagSite(Tag);
  }
};

} // namespace lud

#endif // LUD_PROFILING_TYPESTATEPROFILER_H
