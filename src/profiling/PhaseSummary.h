//===- profiling/PhaseSummary.h - Per-location phase summaries -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-heap-location lifecycle summaries off the sealed graph: the raw
/// write/read/overwrite counters the substrate keeps per abstract location
/// (SlicingProfiler::locationActivity), joined against the FrozenGraph's
/// sorted location universe so every consumer sees locations in one
/// canonical order. The ReadsAfterLastWrite tail distinguishes a
/// build-phase structure (reads ≈ tail reads: built once, then only
/// consulted) from a churning one (tail ≈ 0: every read preceded a later
/// write). analysis/Evidence.h folds these into per-structure records.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_PHASESUMMARY_H
#define LUD_PROFILING_PHASESUMMARY_H

#include "profiling/FrozenGraph.h"
#include "profiling/SlicingProfiler.h"

#include <vector>

namespace lud {

/// One abstract heap location's lifecycle counters.
struct LocPhaseSummary {
  HeapLoc Loc;
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  /// Stores that clobbered a value no load observed (Section 3.2).
  uint64_t Overwrites = 0;
  /// Reads after the location's final write — its read-only tail.
  uint64_t ReadsAfterLastWrite = 0;
};

/// Joins the profiler's activity counters against \p G's sealed location
/// universe, in the universe's sorted order. Locations the graph knows but
/// the activity map does not (pure spine locations) appear with zero
/// counters; activity on locations outside the universe cannot happen by
/// construction (both derive from the same noteStore/noteLoad stream).
std::vector<LocPhaseSummary>
buildPhaseSummaries(const FrozenGraph &G,
                    const HeapLocMap<LocationActivity> &Activity);

} // namespace lud

#endif // LUD_PROFILING_PHASESUMMARY_H
