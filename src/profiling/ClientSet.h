//===- profiling/ClientSet.h - Typed client-analysis selection -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ClientSet: which client analyses (copy, nullness, typestate) ride the
/// slicing substrate in a profiling session. The value type replaces the
/// raw `uint32_t Clients` bitmask + loose `kClient*` enum that used to live
/// in workloads/Driver.h, keeping the exact bit layout (copy = bit 0,
/// nullness = bit 1, typestate = bit 2) so recorded configurations and
/// fuzzer repro lines stay meaningful across the migration.
/// SessionConfig, the cli option parsing, the Report printers, and the
/// service's per-session client selection all speak this one type.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_CLIENTSET_H
#define LUD_PROFILING_CLIENTSET_H

#include <cstdint>
#include <string>

namespace lud {

class ClientSet {
public:
  /// The three client analyses, as single-bit values.
  enum class Client : uint32_t {
    Copy = 1u << 0,
    Nullness = 1u << 1,
    Typestate = 1u << 2,
  };

  constexpr ClientSet() = default;
  constexpr ClientSet(Client C) : Mask(uint32_t(C)) {}
  /// Bridge from the raw bitmask encoding (same bit values as the wire
  /// and CLI forms); unknown bits are dropped so every ClientSet is
  /// canonical. Explicit: the deprecated kClient* aliases that needed the
  /// implicit bridge are gone.
  constexpr explicit ClientSet(uint32_t Bits) : Mask(Bits & kAllBits) {}

  static constexpr ClientSet none() { return ClientSet(); }
  static constexpr ClientSet copy() { return Client::Copy; }
  static constexpr ClientSet nullness() { return Client::Nullness; }
  static constexpr ClientSet typestate() { return Client::Typestate; }
  static constexpr ClientSet all() { return ClientSet(kAllBits); }

  /// The underlying bits — the wire/CLI-stable encoding.
  constexpr uint32_t bits() const { return Mask; }
  constexpr bool empty() const { return Mask == 0; }
  constexpr bool any() const { return Mask != 0; }
  constexpr explicit operator bool() const { return any(); }

  constexpr bool has(Client C) const { return (Mask & uint32_t(C)) != 0; }
  constexpr bool hasCopy() const { return has(Client::Copy); }
  constexpr bool hasNullness() const { return has(Client::Nullness); }
  constexpr bool hasTypestate() const { return has(Client::Typestate); }

  constexpr ClientSet &operator|=(ClientSet O) {
    Mask |= O.Mask;
    return *this;
  }
  friend constexpr ClientSet operator|(ClientSet A, ClientSet B) {
    return ClientSet(A.Mask | B.Mask);
  }
  friend constexpr ClientSet operator&(ClientSet A, ClientSet B) {
    return ClientSet(A.Mask & B.Mask);
  }
  friend constexpr bool operator==(ClientSet A, ClientSet B) {
    return A.Mask == B.Mask;
  }
  friend constexpr bool operator!=(ClientSet A, ClientSet B) {
    return A.Mask != B.Mask;
  }

private:
  static constexpr uint32_t kAllBits = 0x7;
  uint32_t Mask = 0;
};

/// Parses a --clients specification — "all" or a comma-separated list of
/// copy, nullness, typestate — OR-ing the named clients into \p Set.
/// Returns false with \p Err set on an unknown name.
inline bool parseClientSet(const std::string &List, ClientSet &Set,
                           std::string &Err) {
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Name = List.substr(Pos, Comma - Pos);
    if (Name == "copy")
      Set |= ClientSet::copy();
    else if (Name == "nullness")
      Set |= ClientSet::nullness();
    else if (Name == "typestate")
      Set |= ClientSet::typestate();
    else if (Name == "all")
      Set |= ClientSet::all();
    else {
      Err = "unknown client '" + Name +
            "' (valid: copy, nullness, typestate, all)";
      return false;
    }
    Pos = Comma + 1;
  }
  return true;
}

/// Renders \p Set in the spelling parseClientSet accepts: "none", "all",
/// or a comma-separated subset — so a printed configuration (fuzzer repro
/// lines, daemon session listings) round-trips through --clients=.
inline std::string clientSetName(ClientSet Set) {
  if (Set.empty())
    return "none";
  if (Set == ClientSet::all())
    return "all";
  std::string Out;
  auto Append = [&Out](const char *Name) {
    if (!Out.empty())
      Out += ',';
    Out += Name;
  };
  if (Set.hasCopy())
    Append("copy");
  if (Set.hasNullness())
    Append("nullness");
  if (Set.hasTypestate())
    Append("typestate");
  return Out;
}

} // namespace lud

#endif // LUD_PROFILING_CLIENTSET_H
