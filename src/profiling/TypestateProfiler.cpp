//===- profiling/TypestateProfiler.cpp - Typestate history client ----------===//

#include "profiling/TypestateProfiler.h"

#include "ir/Module.h"

using namespace lud;

void TypestateProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  M = &Mod;
  H = &Heap_;
}

void TypestateProfiler::ensure(ObjId O) {
  if (StateOf.size() <= O) {
    StateOf.resize(H->idBound(), Spec.InitialState);
    SiteOf.resize(H->idBound(), kNoAllocSite);
    LastEvent.resize(H->idBound(), kNoNode);
  }
}

void TypestateProfiler::onAlloc(const AllocInst &I, ObjId O) {
  ensure(O);
  if (!Spec.tracks(I.Class))
    return;
  SiteOf[O] = I.Site;
  StateOf[O] = Spec.InitialState;
}

void TypestateProfiler::onCallEnter(const CallInst &I, const Function &,
                                    ObjId Receiver) {
  if (Receiver == kNullObj || !I.isVirtual())
    return;
  ensure(Receiver);
  if (SiteOf[Receiver] == kNoAllocSite)
    return;
  // Only events in the protocol's alphabet are state-changing.
  uint32_t State = StateOf[Receiver];
  bool InAlphabet = false;
  for (uint32_t S = 0; S != Spec.NumStates && !InAlphabet; ++S)
    InAlphabet = Spec.Transitions.count(TypestateSpec::key(S, I.Method)) != 0;
  if (!InAlphabet)
    return;

  NodeId N = G.getOrCreate(I.getId(), domainOf(SiteOf[Receiver], State));
  ++G.freq(N);
  if (LastEvent[Receiver] != kNoNode &&
      (Events.empty() || Events.back().From != LastEvent[Receiver] ||
       Events.back().To != N || Events.back().Method != I.Method)) {
    // Memorize the last event per object (Section 2.1); deduplicate the
    // common repeat case cheaply, the full set below.
    bool Seen = false;
    for (const EventEdge &E : Events)
      if (E.From == LastEvent[Receiver] && E.To == N &&
          E.Method == I.Method) {
        Seen = true;
        break;
      }
    if (!Seen)
      Events.push_back({LastEvent[Receiver], N, I.Method});
  }
  LastEvent[Receiver] = N;

  auto It = Spec.Transitions.find(TypestateSpec::key(State, I.Method));
  if (It == Spec.Transitions.end()) {
    Violations.push_back({I.getId(), SiteOf[Receiver], State, I.Method});
    return; // State unchanged after a violation.
  }
  StateOf[Receiver] = It->second;
}

std::string TypestateProfiler::describeHistory(const Module &Mod) const {
  std::string Out;
  for (const EventEdge &E : Events) {
    const DepGraph::Node &From = G.node(E.From);
    const DepGraph::Node &To = G.node(E.To);
    auto Render = [&](const DepGraph::Node &N) {
      AllocSiteId Site = N.Domain / Spec.NumStates;
      uint32_t State = N.Domain % Spec.NumStates;
      return Mod.describeAllocSite(Site) + ":s" + std::to_string(State);
    };
    Out += Render(From) + " -" + Mod.methodNames()[E.Method] + "-> " +
           Render(To) + "\n";
  }
  return Out;
}
