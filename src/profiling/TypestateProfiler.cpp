//===- profiling/TypestateProfiler.cpp - Typestate history client ----------===//

#include "profiling/TypestateProfiler.h"

#include "ir/Module.h"
#include "obs/Metrics.h"

using namespace lud;

void TypestateProfiler::onRunStart(const Module &, Heap &Heap_) {
  H = &Heap_;
}

void TypestateProfiler::ensure(ObjId O) {
  if (StateOf.size() <= O) {
    StateOf.resize(H->idBound(), Spec.InitialState);
    LastEvent.resize(H->idBound(), kNoNode);
  }
}

void TypestateProfiler::onAlloc(const AllocInst &I, ObjId O) {
  ensure(O);
  if (!Spec.tracks(I.Class))
    return;
  StateOf[O] = Spec.InitialState;
}

void TypestateProfiler::onCallEnter(const CallInst &I, const Function &,
                                    ObjId Receiver) {
  if (Receiver == kNullObj || !I.isVirtual())
    return;
  if (!Spec.tracks(H->obj(Receiver).Class))
    return;
  AllocSiteId Site = siteOf(Receiver);
  if (Site == kNoAllocSite)
    return;
  ensure(Receiver);
  // Only events in the protocol's alphabet are state-changing.
  uint32_t State = StateOf[Receiver];
  bool InAlphabet = false;
  for (uint32_t S = 0; S != Spec.NumStates && !InAlphabet; ++S)
    InAlphabet = Spec.Transitions.count(TypestateSpec::key(S, I.Method)) != 0;
  if (!InAlphabet)
    return;

  NodeId N = G.getOrCreate(I.getId(), domainOf(Site, State));
  ++G.freq(N);
  if (LastEvent[Receiver] != kNoNode &&
      (Events.empty() || Events.back().From != LastEvent[Receiver] ||
       Events.back().To != N || Events.back().Method != I.Method)) {
    // Memorize the last event per object (Section 2.1); deduplicate the
    // common repeat case cheaply, the full set below.
    bool Seen = false;
    for (const EventEdge &E : Events)
      if (E.From == LastEvent[Receiver] && E.To == N &&
          E.Method == I.Method) {
        Seen = true;
        break;
      }
    if (!Seen)
      Events.push_back({LastEvent[Receiver], N, I.Method});
  }
  LastEvent[Receiver] = N;

  auto It = Spec.Transitions.find(TypestateSpec::key(State, I.Method));
  if (It == Spec.Transitions.end()) {
    Violations.push_back({I.getId(), Site, State, I.Method});
    return; // State unchanged after a violation.
  }
  StateOf[Receiver] = It->second;
}

void TypestateProfiler::accountStats(obs::MetricsRegistry &R) const {
  R.set(R.gauge("typestate.events"), Events.size());
  R.set(R.gauge("typestate.violations"), Violations.size());
  R.set(R.gauge("typestate.graph.nodes"), G.numNodes());
  R.set(R.gauge("typestate.graph.edges"), G.numEdges());
  R.set(R.gauge("mem.typestate.graph_bytes", obs::Unit::Bytes),
        G.memoryFootprint().total() + G.internTableBytes());
}

void TypestateProfiler::mergeFrom(const TypestateProfiler &O) {
  std::vector<NodeId> Remap = G.mergeFrom(O.G);
  for (const TypestateViolation &V : O.Violations)
    Violations.push_back(V);
  for (const EventEdge &E : O.Events) {
    EventEdge R{Remap[E.From], Remap[E.To], E.Method};
    bool Seen = false;
    for (const EventEdge &X : Events)
      if (X.From == R.From && X.To == R.To && X.Method == R.Method) {
        Seen = true;
        break;
      }
    if (!Seen)
      Events.push_back(R);
  }
}

std::string TypestateProfiler::describeHistory(const Module &Mod) const {
  std::string Out;
  for (const EventEdge &E : Events) {
    const DepGraph::Node &From = G.node(E.From);
    const DepGraph::Node &To = G.node(E.To);
    auto Render = [&](const DepGraph::Node &N) {
      AllocSiteId Site = N.Domain / Spec.NumStates;
      uint32_t State = N.Domain % Spec.NumStates;
      return Mod.describeAllocSite(Site) + ":s" + std::to_string(State);
    };
    Out += Render(From) + " -" + Mod.methodNames()[E.Method] + "-> " +
           Render(To) + "\n";
  }
  return Out;
}

TypestateSpec lud::lifecycleSpec(const Module &M) {
  auto IsCloser = [&](MethodNameId Id) {
    const std::string &Name = M.methodNames()[Id];
    return Name == "close" || Name == "dispose" || Name == "free" ||
           Name == "release";
  };
  TypestateSpec Spec;
  for (const std::unique_ptr<ClassDecl> &C : M.classes()) {
    bool HasCloser = false;
    for (const auto &[Method, Func] : C->Vtable)
      HasCloser |= IsCloser(Method);
    if (!HasCloser)
      continue;
    Spec.TrackedClasses.push_back(C->getId());
    // Closer-ness depends only on the method name, so classes sharing
    // method names write identical transitions: the spec is deterministic
    // whatever the vtable iteration order.
    for (const auto &[Method, Func] : C->Vtable) {
      uint32_t To = IsCloser(Method) ? 2 : 1;
      Spec.addTransition(0, Method, To);
      Spec.addTransition(1, Method, To);
    }
  }
  if (Spec.TrackedClasses.empty())
    return Spec;
  Spec.NumStates = 3; // 0 fresh, 1 in use, 2 closed (terminal).
  Spec.InitialState = 0;
  return Spec;
}
