//===- profiling/DepGraph.cpp - Abstract thin data dependence graph --------===//

#include "profiling/DepGraph.h"

#include <cassert>

using namespace lud;

std::vector<NodeId> DepGraph::mergeFrom(const DepGraph &O) {
  assert((Nodes.empty() || ContextSlots == O.ContextSlots) &&
         "merging graphs built with different context-slot counts");
  if (Nodes.empty())
    ContextSlots = O.ContextSlots;
  Nodes.reserve(Nodes.size() + O.Nodes.size());

  // Re-intern O's nodes in id order (O's creation order, i.e. first-use
  // order of its run), so a merge into an empty graph reproduces O's
  // numbering exactly.
  std::vector<NodeId> Remap(O.Nodes.size(), kNoNode);
  for (NodeId N = 0, E = NodeId(O.Nodes.size()); N != E; ++N) {
    const Node &Src = O.Nodes[N];
    NodeId Mine = getOrCreate(Src.Instr, Src.Domain);
    Remap[N] = Mine;
    Node &Dst = Nodes[Mine];
    Freqs[Mine] += O.Freqs[N];
    Dst.ReadsHeap |= Src.ReadsHeap;
    Dst.WritesHeap |= Src.WritesHeap;
    Dst.IsAlloc |= Src.IsAlloc;
    Dst.StoredRef |= Src.StoredRef;
    // Last-writer-wins fields: O plays the part of the later run.
    if (Src.Consumer != ConsumerKind::None)
      Dst.Consumer = Src.Consumer;
    if (Src.Effect != EffectKind::None) {
      Dst.Effect = Src.Effect;
      Dst.EffectLoc = Src.EffectLoc;
    }
  }

  for (NodeId N = 0, E = NodeId(O.Nodes.size()); N != E; ++N)
    for (NodeId S : O.Nodes[N].Out)
      addEdge(Remap[N], Remap[S]);
  for (auto [Store, Alloc] : O.RefEdges)
    addRefEdge(Remap[Store], Remap[Alloc]);

  for (const auto &[Tag, N] : O.AllocNodeByTag)
    noteAlloc(Tag, Remap[N]);
  for (const auto &[Loc, Ns] : O.Writers)
    for (NodeId N : Ns)
      noteWriter(Loc, Remap[N]);
  for (const auto &[Loc, Ns] : O.Readers)
    for (NodeId N : Ns)
      noteReader(Loc, Remap[N]);
  for (const auto &[Loc, Children] : O.RefChildren)
    for (uint64_t C : Children)
      noteRefChild(Loc, C);
  return Remap;
}

DepGraph::MemoryFootprint DepGraph::memoryFootprint() const {
  MemoryFootprint F;
  F.NodeBytes = Nodes.capacity() * sizeof(Node) +
                Freqs.capacity() * sizeof(uint64_t);
  for (const Node &N : Nodes)
    F.NodeBytes += (N.In.capacity() + N.Out.capacity()) * sizeof(NodeId);
  F.NodeBytes += NodeByKey.memoryBytes();
  F.EdgeBytes = EdgeSet.memoryBytes() + RefEdgeSet.memoryBytes() +
                RefEdges.capacity() * sizeof(std::pair<NodeId, NodeId>);
  F.LocMapBytes = Writers.memoryBytes() + Readers.memoryBytes() +
                  RefChildren.memoryBytes() + AllocNodeByTag.memoryBytes();
  for (const auto &[L, V] : Writers)
    F.LocMapBytes += V.capacity() * sizeof(NodeId);
  for (const auto &[L, V] : Readers)
    F.LocMapBytes += V.capacity() * sizeof(NodeId);
  for (const auto &[L, V] : RefChildren)
    F.LocMapBytes += V.capacity() * sizeof(uint64_t);
  return F;
}
