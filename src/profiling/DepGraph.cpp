//===- profiling/DepGraph.cpp - Abstract thin data dependence graph --------===//

#include "profiling/DepGraph.h"

using namespace lud;

DepGraph::MemoryFootprint DepGraph::memoryFootprint() const {
  MemoryFootprint F;
  F.NodeBytes = Nodes.capacity() * sizeof(Node);
  for (const Node &N : Nodes)
    F.NodeBytes += (N.In.capacity() + N.Out.capacity()) * sizeof(NodeId);
  // Key map + dedup sets: estimate with typical per-entry bucket overheads.
  F.NodeBytes += NodeByKey.size() * (sizeof(uint64_t) + sizeof(NodeId) + 16);
  F.EdgeBytes = EdgeSet.size() * (sizeof(uint64_t) + 16) +
                RefEdgeSet.size() * (sizeof(uint64_t) + 16) +
                RefEdges.capacity() * sizeof(std::pair<NodeId, NodeId>);
  size_t LocEntries = 0;
  for (const auto &[L, V] : Writers)
    LocEntries += 1 + V.capacity();
  for (const auto &[L, V] : Readers)
    LocEntries += 1 + V.capacity();
  for (const auto &[L, V] : RefChildren)
    LocEntries += 1 + V.capacity();
  F.LocMapBytes = LocEntries * (sizeof(HeapLoc) + 16) +
                  AllocNodeByTag.size() * (sizeof(uint64_t) + 16);
  return F;
}
