//===- profiling/DepGraph.h - Abstract thin data dependence graph *- C++ -*===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract thin data dependence graph of Definition 2: nodes are
/// (static instruction, abstract domain element) pairs; an edge a->b means
/// an instance of a wrote a location that an instance of b then used. The
/// domain element is a context slot for Gcost, a client-specific id for the
/// other abstractions (nullness, typestate, copy chains), or kNoDomain for
/// the paper's context-free predicate and native consumer nodes.
///
/// The graph also carries the Gcost decorations of Section 2.2: execution
/// frequencies, heap-effect triples (U/B/C), reference edges, and the
/// per-abstract-heap-location writer/reader/points-to maps the relative
/// cost-benefit analysis aggregates over.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_DEPGRAPH_H
#define LUD_PROFILING_DEPGRAPH_H

#include "ir/Ids.h"

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lud {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFF;

/// Domain element for context-free nodes (predicates, natives).
inline constexpr uint32_t kNoDomain = 0xFFFFFFFF;

/// Abstract heap location: a context-annotated allocation-site tag plus a
/// field slot (kElemSlot / kLenSlot for arrays, or a static pseudo-tag).
struct HeapLoc {
  uint64_t Tag = 0;
  FieldSlot Slot = 0;

  bool operator==(const HeapLoc &O) const {
    return Tag == O.Tag && Slot == O.Slot;
  }
};

struct HeapLocHash {
  size_t operator()(const HeapLoc &L) const {
    uint64_t H = L.Tag * 0x9E3779B97F4A7C15ULL + L.Slot;
    H ^= H >> 29;
    return size_t(H * 0xBF58476D1CE4E5B9ULL);
  }
};

/// The paper's heap-effect kinds: 'U' (underlined, allocation), 'B' (boxed,
/// heap store), 'C' (circled, heap load).
enum class EffectKind : uint8_t { None, Alloc, Store, Load };

enum class ConsumerKind : uint8_t { None, Predicate, Native };

/// Static-location pseudo-tags live above this base so they can share the
/// HeapLoc machinery with object fields.
inline constexpr uint64_t kStaticTagBase = uint64_t(1) << 62;

class DepGraph {
public:
  struct Node {
    InstrId Instr = kNoInstr;
    uint32_t Domain = kNoDomain;
    uint64_t Freq = 0;
    ConsumerKind Consumer = ConsumerKind::None;
    EffectKind Effect = EffectKind::None;
    /// Most recent heap effect location (last-writer-wins, as in the
    /// paper's H environment; the multimaps below keep the full history).
    HeapLoc EffectLoc;
    // Node classification mirrored from the instruction, so traversals do
    // not need the Module.
    bool ReadsHeap = false;
    bool WritesHeap = false;
    bool IsAlloc = false;
    /// A heap store that (at least once) stored a reference: it builds
    /// data-structure spine, which thin slicing deliberately keeps out of
    /// value flow — consumers of this fact: the optimizer must not treat
    /// such stores as removable dead values.
    bool StoredRef = false;
    std::vector<NodeId> In;
    std::vector<NodeId> Out;
  };

  /// Returns the node for (Instr, Domain), creating it on first use.
  NodeId getOrCreate(InstrId Instr, uint32_t Domain) {
    uint64_t Key = (uint64_t(Instr) << 32) | Domain;
    auto [It, Inserted] = NodeByKey.try_emplace(Key, NodeId(Nodes.size()));
    if (Inserted) {
      Nodes.emplace_back();
      Nodes.back().Instr = Instr;
      Nodes.back().Domain = Domain;
    }
    return It->second;
  }

  /// Returns the node for (Instr, Domain) or kNoNode.
  NodeId lookup(InstrId Instr, uint32_t Domain) const {
    auto It = NodeByKey.find((uint64_t(Instr) << 32) | Domain);
    return It == NodeByKey.end() ? kNoNode : It->second;
  }

  Node &node(NodeId N) { return Nodes[N]; }
  const Node &node(NodeId N) const { return Nodes[N]; }
  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return EdgeSet.size(); }
  size_t numRefEdges() const { return RefEdgeSet.size(); }

  /// Records a def-use edge From -> To (dedup'd).
  void addEdge(NodeId From, NodeId To) {
    if (From == To)
      return;
    if (!EdgeSet.insert(edgeKey(From, To)).second)
      return;
    Nodes[From].Out.push_back(To);
    Nodes[To].In.push_back(From);
  }

  /// Records a reference edge: heap-store node -> allocation node of the
  /// object whose field was written (Figure 3's dashed arrows).
  void addRefEdge(NodeId Store, NodeId Alloc) {
    if (RefEdgeSet.insert(edgeKey(Store, Alloc)).second)
      RefEdges.emplace_back(Store, Alloc);
  }
  const std::vector<std::pair<NodeId, NodeId>> &refEdges() const {
    return RefEdges;
  }

  //===--------------------------------------------------------------------===
  // Abstract heap location bookkeeping (drives Definitions 5-7).
  //===--------------------------------------------------------------------===

  /// Allocation node that created objects with \p Tag.
  void noteAlloc(uint64_t Tag, NodeId N) { AllocNodeByTag[Tag] = N; }
  NodeId allocNodeFor(uint64_t Tag) const {
    auto It = AllocNodeByTag.find(Tag);
    return It == AllocNodeByTag.end() ? kNoNode : It->second;
  }
  const std::unordered_map<uint64_t, NodeId> &allocNodes() const {
    return AllocNodeByTag;
  }

  /// Store node \p N wrote abstract location \p L.
  void noteWriter(const HeapLoc &L, NodeId N) { insertUnique(Writers[L], N); }
  /// Load node \p N read abstract location \p L.
  void noteReader(const HeapLoc &L, NodeId N) { insertUnique(Readers[L], N); }
  /// A store into \p L put a reference to an object tagged \p ChildTag
  /// there (object reference tree edges of Definition 7).
  void noteRefChild(const HeapLoc &L, uint64_t ChildTag) {
    insertUnique(RefChildren[L], ChildTag);
  }

  const std::unordered_map<HeapLoc, std::vector<NodeId>, HeapLocHash> &
  writers() const {
    return Writers;
  }
  const std::unordered_map<HeapLoc, std::vector<NodeId>, HeapLocHash> &
  readers() const {
    return Readers;
  }
  const std::unordered_map<HeapLoc, std::vector<uint64_t>, HeapLocHash> &
  refChildren() const {
    return RefChildren;
  }

  //===--------------------------------------------------------------------===
  // Tag codec. Object tags are (allocation site, context slot) pairs; the
  // encoder needs the slot count used during profiling.
  //===--------------------------------------------------------------------===

  void setContextSlots(uint32_t S) { ContextSlots = S; }
  uint32_t contextSlots() const { return ContextSlots; }

  uint64_t makeTag(AllocSiteId Site, uint32_t Slot) const {
    return uint64_t(Site) * ContextSlots + Slot;
  }
  static uint64_t makeStaticTag(GlobalId G) { return kStaticTagBase + G; }
  static bool isStaticTag(uint64_t Tag) { return Tag >= kStaticTagBase; }
  AllocSiteId tagSite(uint64_t Tag) const {
    return AllocSiteId(Tag / ContextSlots);
  }
  uint32_t tagSlot(uint64_t Tag) const {
    return uint32_t(Tag % ContextSlots);
  }

  /// Sum of node frequencies: the instruction instances the graph covers.
  uint64_t totalFreq() const {
    uint64_t Sum = 0;
    for (const Node &N : Nodes)
      Sum += N.Freq;
    return Sum;
  }

  /// Approximate resident bytes of the retained graph (Table 1's M column:
  /// nodes, edges, location maps; excludes the shadow heap, as the paper's
  /// M column does).
  struct MemoryFootprint {
    size_t NodeBytes = 0;
    size_t EdgeBytes = 0;
    size_t LocMapBytes = 0;
    size_t total() const { return NodeBytes + EdgeBytes + LocMapBytes; }
  };
  MemoryFootprint memoryFootprint() const;

private:
  static uint64_t edgeKey(NodeId A, NodeId B) {
    return (uint64_t(A) << 32) | B;
  }
  template <typename T>
  static void insertUnique(std::vector<T> &V, const T &X) {
    for (const T &E : V)
      if (E == X)
        return;
    V.push_back(X);
  }

  std::vector<Node> Nodes;
  std::unordered_map<uint64_t, NodeId> NodeByKey;
  std::unordered_set<uint64_t> EdgeSet;
  std::unordered_set<uint64_t> RefEdgeSet;
  std::vector<std::pair<NodeId, NodeId>> RefEdges;
  std::unordered_map<uint64_t, NodeId> AllocNodeByTag;
  std::unordered_map<HeapLoc, std::vector<NodeId>, HeapLocHash> Writers;
  std::unordered_map<HeapLoc, std::vector<NodeId>, HeapLocHash> Readers;
  std::unordered_map<HeapLoc, std::vector<uint64_t>, HeapLocHash> RefChildren;
  uint32_t ContextSlots = 1;
};

} // namespace lud

#endif // LUD_PROFILING_DEPGRAPH_H
