//===- profiling/DepGraph.h - Abstract thin data dependence graph *- C++ -*===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract thin data dependence graph of Definition 2: nodes are
/// (static instruction, abstract domain element) pairs; an edge a->b means
/// an instance of a wrote a location that an instance of b then used. The
/// domain element is a context slot for Gcost, a client-specific id for the
/// other abstractions (nullness, typestate, copy chains), or kNoDomain for
/// the paper's context-free predicate and native consumer nodes.
///
/// The graph also carries the Gcost decorations of Section 2.2: execution
/// frequencies, heap-effect triples (U/B/C), reference edges, and the
/// per-abstract-heap-location writer/reader/points-to maps the relative
/// cost-benefit analysis aggregates over.
///
/// All interning tables are flat open-addressing tables (support/FlatMap.h)
/// rather than node-based std containers: Definition 2 bounds the node set
/// by |I| x s, so the tables can be sized up front and every profiling
/// event resolves its node and edge membership in O(1) probes on
/// contiguous memory. addEdge additionally memoizes the last inserted edge
/// key, because consecutive dynamic instances of the same static
/// instruction pair produce the same abstract edge (see docs/PERFORMANCE.md).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_DEPGRAPH_H
#define LUD_PROFILING_DEPGRAPH_H

#include "ir/Ids.h"
#include "support/FlatMap.h"
#include "support/FlatSet.h"

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lud {

using NodeId = uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFF;

/// Domain element for context-free nodes (predicates, natives).
inline constexpr uint32_t kNoDomain = 0xFFFFFFFF;

/// Abstract heap location: a context-annotated allocation-site tag plus a
/// field slot (kElemSlot / kLenSlot for arrays, or a static pseudo-tag).
struct HeapLoc {
  uint64_t Tag = 0;
  FieldSlot Slot = 0;

  bool operator==(const HeapLoc &O) const {
    return Tag == O.Tag && Slot == O.Slot;
  }
};

struct HeapLocHash {
  size_t operator()(const HeapLoc &L) const {
    uint64_t H = L.Tag * 0x9E3779B97F4A7C15ULL + L.Slot;
    H ^= H >> 29;
    return size_t(H * 0xBF58476D1CE4E5B9ULL);
  }
};

/// Vacant-slot marker for HeapLoc-keyed flat tables. The tag is kNoTag,
/// which every noteStore/noteReader call site filters out before insertion.
struct HeapLocEmpty {
  static HeapLoc value() { return HeapLoc{~uint64_t(0), ~FieldSlot(0)}; }
};

template <typename ValueT>
using HeapLocMap = FlatMap<HeapLoc, ValueT, HeapLocHash, HeapLocEmpty>;

/// The paper's heap-effect kinds: 'U' (underlined, allocation), 'B' (boxed,
/// heap store), 'C' (circled, heap load).
enum class EffectKind : uint8_t { None, Alloc, Store, Load };

enum class ConsumerKind : uint8_t { None, Predicate, Native };

/// Static-location pseudo-tags live above this base so they can share the
/// HeapLoc machinery with object fields.
inline constexpr uint64_t kStaticTagBase = uint64_t(1) << 62;

class DepGraph {
public:
  /// Per-node decorations. Execution frequencies live in a dense parallel
  /// array (freq()) rather than here: the frequency bump is the single
  /// hottest graph touch (once per tracked instruction instance), and at
  /// 8 bytes per node the counters of a whole loop body stay in L1, where
  /// the ~100-byte Node records would not.
  struct Node {
    InstrId Instr = kNoInstr;
    uint32_t Domain = kNoDomain;
    ConsumerKind Consumer = ConsumerKind::None;
    EffectKind Effect = EffectKind::None;
    /// Most recent heap effect location (last-writer-wins, as in the
    /// paper's H environment; the multimaps below keep the full history).
    HeapLoc EffectLoc;
    // Node classification mirrored from the instruction, so traversals do
    // not need the Module.
    bool ReadsHeap = false;
    bool WritesHeap = false;
    bool IsAlloc = false;
    /// A heap store that (at least once) stored a reference: it builds
    /// data-structure spine, which thin slicing deliberately keeps out of
    /// value flow — consumers of this fact: the optimizer must not treat
    /// such stores as removable dead values.
    bool StoredRef = false;
    std::vector<NodeId> In;
    std::vector<NodeId> Out;
  };

  /// Returns the node for (Instr, Domain), creating it on first use.
  NodeId getOrCreate(InstrId Instr, uint32_t Domain) {
    uint64_t Key = (uint64_t(Instr) << 32) | Domain;
    auto [Id, Inserted] = NodeByKey.insert(Key, NodeId(Nodes.size()));
    if (Inserted) {
      Nodes.emplace_back();
      Nodes.back().Instr = Instr;
      Nodes.back().Domain = Domain;
      Freqs.push_back(0);
    }
    return Id;
  }

  /// Returns the node for (Instr, Domain) or kNoNode.
  NodeId lookup(InstrId Instr, uint32_t Domain) const {
    auto It = NodeByKey.find((uint64_t(Instr) << 32) | Domain);
    return It == NodeByKey.end() ? kNoNode : It->second;
  }

  Node &node(NodeId N) { return Nodes[N]; }
  const Node &node(NodeId N) const { return Nodes[N]; }
  /// Execution frequency of node \p N (instances covered by the node).
  uint64_t &freq(NodeId N) { return Freqs[N]; }
  uint64_t freq(NodeId N) const { return Freqs[N]; }
  size_t numNodes() const { return Nodes.size(); }
  size_t numEdges() const { return EdgeSet.size(); }
  size_t numRefEdges() const { return RefEdgeSet.size(); }

  /// Records a def-use edge From -> To (dedup'd). The direct-mapped memo of
  /// recently seen edge keys short-circuits the duplicate case: a hot loop
  /// re-executes the same static def-use pairs cyclically with the same
  /// domain elements millions of times, and the loop body's edge working
  /// set is tiny, so nearly every event hits the memo and skips the
  /// interning table entirely.
  void addEdge(NodeId From, NodeId To) {
    if (From == To)
      return;
    uint64_t Key = edgeKey(From, To);
    uint64_t &Memo = RecentEdges[(Key * 0x9E3779B97F4A7C15ULL) >>
                                 (64 - kRecentEdgeBits)];
    if (HotPathMemo && Memo == Key)
      return;
    Memo = Key;
    if (!EdgeSet.insert(Key))
      return;
    Nodes[From].Out.push_back(To);
    Nodes[To].In.push_back(From);
  }

  /// Records a reference edge: heap-store node -> allocation node of the
  /// object whose field was written (Figure 3's dashed arrows).
  void addRefEdge(NodeId Store, NodeId Alloc) {
    uint64_t Key = edgeKey(Store, Alloc);
    if (HotPathMemo && Key == LastRefEdgeKey)
      return;
    LastRefEdgeKey = Key;
    if (RefEdgeSet.insert(Key))
      RefEdges.emplace_back(Store, Alloc);
  }
  const std::vector<std::pair<NodeId, NodeId>> &refEdges() const {
    return RefEdges;
  }

  /// Enables/disables the edge memos (on by default; the cache-free
  /// reference path of the equivalence tests turns them off).
  void setHotPathMemo(bool On) {
    HotPathMemo = On;
    RecentEdges.fill(~uint64_t(0));
    LastRefEdgeKey = ~uint64_t(0);
  }

  /// Pre-sizes the interning tables for a module with \p NumInstrs static
  /// instructions. Definition 2 bounds nodes by |I| x s, but CR ~ 0 means
  /// most instructions see one context slot, so the expected node count is
  /// ~|I|; edges are a small multiple of that.
  void reserveForRun(uint32_t NumInstrs) {
    Nodes.reserve(NumInstrs);
    Freqs.reserve(NumInstrs);
    NodeByKey.reserve(NumInstrs);
    EdgeSet.reserve(size_t(NumInstrs) * 2);
  }

  //===--------------------------------------------------------------------===
  // Abstract heap location bookkeeping (drives Definitions 5-7).
  //===--------------------------------------------------------------------===

  /// Allocation node that created objects with \p Tag.
  void noteAlloc(uint64_t Tag, NodeId N) { AllocNodeByTag[Tag] = N; }
  NodeId allocNodeFor(uint64_t Tag) const {
    auto It = AllocNodeByTag.find(Tag);
    return It == AllocNodeByTag.end() ? kNoNode : It->second;
  }
  const FlatMap<uint64_t, NodeId> &allocNodes() const {
    return AllocNodeByTag;
  }

  /// Store node \p N wrote abstract location \p L.
  void noteWriter(const HeapLoc &L, NodeId N) { insertUnique(Writers[L], N); }
  /// Load node \p N read abstract location \p L.
  void noteReader(const HeapLoc &L, NodeId N) { insertUnique(Readers[L], N); }
  /// A store into \p L put a reference to an object tagged \p ChildTag
  /// there (object reference tree edges of Definition 7).
  void noteRefChild(const HeapLoc &L, uint64_t ChildTag) {
    insertUnique(RefChildren[L], ChildTag);
  }

  const HeapLocMap<std::vector<NodeId>> &writers() const { return Writers; }
  const HeapLocMap<std::vector<NodeId>> &readers() const { return Readers; }
  const HeapLocMap<std::vector<uint64_t>> &refChildren() const {
    return RefChildren;
  }

  //===--------------------------------------------------------------------===
  // Tag codec. Object tags are (allocation site, context slot) pairs; the
  // encoder needs the slot count used during profiling.
  //===--------------------------------------------------------------------===

  void setContextSlots(uint32_t S) { ContextSlots = S; }
  uint32_t contextSlots() const { return ContextSlots; }

  uint64_t makeTag(AllocSiteId Site, uint32_t Slot) const {
    uint64_t Tag = uint64_t(Site) * ContextSlots + Slot;
    // site x slots must stay below the static pseudo-tag range: a
    // collision would silently alias an object field with a global.
    // 2^62 / 2^32 leaves 2^30 context slots before this can trip.
    assert(!isStaticTag(Tag) &&
           "allocation tag collides with the static-tag range");
    return Tag;
  }
  static uint64_t makeStaticTag(GlobalId G) { return kStaticTagBase + G; }
  static bool isStaticTag(uint64_t Tag) { return Tag >= kStaticTagBase; }
  AllocSiteId tagSite(uint64_t Tag) const {
    return AllocSiteId(Tag / ContextSlots);
  }
  uint32_t tagSlot(uint64_t Tag) const {
    return uint32_t(Tag % ContextSlots);
  }

  /// Sum of node frequencies: the instruction instances the graph covers.
  uint64_t totalFreq() const {
    uint64_t Sum = 0;
    for (uint64_t F : Freqs)
      Sum += F;
    return Sum;
  }

  /// Merges \p O into this graph: nodes are re-interned by their
  /// (instruction, domain) key, frequencies are summed, edges and the
  /// location/decoration maps are unioned, and last-writer-wins fields
  /// (Effect, EffectLoc, allocation nodes) take \p O's value, treating \p O
  /// as the later of two sequential runs. Returns the node renumbering
  /// (O's NodeId -> this graph's NodeId) so profiler-level per-node state
  /// can be merged too. Both graphs must use the same context-slot count.
  std::vector<NodeId> mergeFrom(const DepGraph &O);

  /// Approximate resident bytes of the retained graph (Table 1's M column:
  /// nodes, edges, location maps; excludes the shadow heap, as the paper's
  /// M column does).
  struct MemoryFootprint {
    size_t NodeBytes = 0;
    size_t EdgeBytes = 0;
    size_t LocMapBytes = 0;
    size_t total() const { return NodeBytes + EdgeBytes + LocMapBytes; }
  };
  MemoryFootprint memoryFootprint() const;

  /// Bytes held by the interning tables (node key map, edge dedup sets,
  /// alloc-node map). Kept separate from memoryFootprint(): the paper's M
  /// column counts the retained graph, while these tables are construction
  /// overhead the telemetry accounts on its own line.
  size_t internTableBytes() const {
    return NodeByKey.memoryBytes() + EdgeSet.memoryBytes() +
           RefEdgeSet.memoryBytes() + AllocNodeByTag.memoryBytes();
  }

private:
  static uint64_t edgeKey(NodeId A, NodeId B) {
    return (uint64_t(A) << 32) | B;
  }
  template <typename T>
  static void insertUnique(std::vector<T> &V, const T &X) {
    // Fast path: the profiler notes the same (location, node) pair on
    // every dynamic instance, so the duplicate is almost always among the
    // entries appended last. Only a bounded window is checked — a full
    // scan made many-writer locations quadratic in the number of distinct
    // writers, which paper-scale composed workloads hit hard. A duplicate
    // older than the window is appended again; FrozenGraph::seal performs
    // the exact first-occurrence dedup once, after profiling, so every
    // observable consumer (serialization, analyses, reports) still sees
    // the historical exact-dedup sequence.
    size_t Stop = V.size() > kDedupWindow ? V.size() - kDedupWindow : 0;
    for (size_t I = V.size(); I != Stop; --I)
      if (V[I - 1] == X)
        return;
    V.push_back(X);
  }
  static constexpr size_t kDedupWindow = 8;

  std::vector<Node> Nodes;
  /// Execution frequencies, parallel to Nodes (see the Node doc comment).
  std::vector<uint64_t> Freqs;
  FlatMap<uint64_t, NodeId> NodeByKey;
  FlatSet<uint64_t> EdgeSet;
  FlatSet<uint64_t> RefEdgeSet;
  std::vector<std::pair<NodeId, NodeId>> RefEdges;
  FlatMap<uint64_t, NodeId> AllocNodeByTag;
  HeapLocMap<std::vector<NodeId>> Writers;
  HeapLocMap<std::vector<NodeId>> Readers;
  HeapLocMap<std::vector<uint64_t>> RefChildren;
  /// Direct-mapped cache of recently inserted edge keys. ~0 doubles as the
  /// vacant marker; it is never a real key (kNoNode is filtered upstream).
  /// 512 entries (4 KiB) covers the loop-body edge working set without
  /// crowding L1 — the duplicate-edge rate is ~10^5:1, so conflict misses
  /// here are the dominant residual cost of addEdge.
  static constexpr unsigned kRecentEdgeBits = 9;
  std::array<uint64_t, 1u << kRecentEdgeBits> RecentEdges = makeVacantMemo();
  uint64_t LastRefEdgeKey = ~uint64_t(0);
  bool HotPathMemo = true;
  uint32_t ContextSlots = 1;

  static std::array<uint64_t, 1u << kRecentEdgeBits> makeVacantMemo() {
    std::array<uint64_t, 1u << kRecentEdgeBits> A;
    A.fill(~uint64_t(0));
    return A;
  }
};

} // namespace lud

#endif // LUD_PROFILING_DEPGRAPH_H
