//===- profiling/PhaseSummary.cpp - Per-location phase summaries -----------===//

#include "profiling/PhaseSummary.h"

using namespace lud;

std::vector<LocPhaseSummary>
lud::buildPhaseSummaries(const FrozenGraph &G,
                         const HeapLocMap<LocationActivity> &Activity) {
  std::vector<LocPhaseSummary> Out;
  Out.reserve(G.numLocs());
  for (size_t I = 0; I != G.numLocs(); ++I) {
    LocPhaseSummary S;
    S.Loc = G.loc(I);
    if (auto It = Activity.find(S.Loc); It != Activity.end()) {
      const LocationActivity &A = It->second;
      S.Writes = A.Writes;
      S.Reads = A.Reads;
      S.Overwrites = A.Overwrites;
      S.ReadsAfterLastWrite = A.ReadsAfterLastWrite;
    }
    Out.push_back(S);
  }
  return Out;
}
