//===- profiling/GraphIO.cpp - Gcost serialization --------------------------===//

#include "profiling/GraphIO.h"

#include "profiling/DepGraph.h"
#include "profiling/FrozenGraph.h"
#include "support/OutStream.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace lud;

void lud::writeGraph(const FrozenGraph &G, OutStream &OS) {
  OS << "ludgraph 1\n";
  OS << "slots " << uint64_t(G.contextSlots()) << "\n";
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N) {
    HeapLoc EL = G.effectLoc(N);
    char Buf[192];
    std::snprintf(
        Buf, sizeof(Buf),
        "node %u %u %u %" PRIu64 " %u %u %" PRIu64 " %u %d %d %d %d\n", N,
        G.instr(N), G.domain(N), G.freq(N), unsigned(G.consumer(N)),
        unsigned(G.effect(N)), EL.Tag, EL.Slot, int(G.readsHeap(N)),
        int(G.writesHeap(N)), int(G.isAlloc(N)), int(G.storedRef(N)));
    OS << Buf;
  }
  for (NodeId N = 0; N != NodeId(G.numNodes()); ++N)
    for (NodeId S : G.out(N))
      OS << "edge " << uint64_t(N) << " " << uint64_t(S) << "\n";
  for (auto [Store, Alloc] : G.refEdges())
    OS << "refedge " << uint64_t(Store) << " " << uint64_t(Alloc) << "\n";
  // The frozen representation already holds the map-backed records in the
  // canonical order the format requires: allocation entries and the
  // location universe are sorted at seal time, and per-location value
  // sequences are the first-occurrence dedup of the build phase's inserts,
  // so serialize -> parse -> seal -> serialize is byte-stable.
  for (const auto &[Tag, N] : G.allocEntries())
    OS << "allocnode " << Tag << " " << uint64_t(N) << "\n";
  auto WriteLocMap = [&](const char *Kind, auto ValuesAt) {
    for (size_t I = 0; I != G.numLocs(); ++I) {
      auto Vals = ValuesAt(I);
      if (Vals.empty())
        continue;
      HeapLoc Loc = G.loc(I);
      OS << Kind << " " << Loc.Tag << " " << uint64_t(Loc.Slot);
      for (const auto &Item : Vals)
        OS << " " << uint64_t(Item);
      OS << "\n";
    }
  };
  WriteLocMap("writer", [&](size_t I) { return G.writersAt(I); });
  WriteLocMap("reader", [&](size_t I) { return G.readersAt(I); });
  WriteLocMap("refchild", [&](size_t I) { return G.refChildrenAt(I); });
  OS << "end\n";
}

void lud::writeGraph(const DepGraph &G, OutStream &OS) {
  writeGraph(FrozenGraph(G), OS);
}

std::unique_ptr<DepGraph> lud::readGraph(std::string_view Text,
                                         std::vector<std::string> &Errors) {
  auto Fail = [&](unsigned Line, const std::string &Msg) {
    Errors.push_back("graph line " + std::to_string(Line) + ": " + Msg);
    return nullptr;
  };

  auto G = std::make_unique<DepGraph>();
  std::istringstream In{std::string(Text)};
  std::string LineStr;
  unsigned LineNo = 0;
  bool SawHeader = false, SawEnd = false;
  // Fixed-arity records must end where their last field does — trailing
  // tokens mean a corrupted or mis-spliced line, not extra data to ignore.
  auto AtLineEnd = [](std::istringstream &L) {
    std::string Rest;
    return !(L >> Rest);
  };
  while (std::getline(In, LineStr)) {
    ++LineNo;
    if (LineStr.empty())
      continue;
    std::istringstream L(LineStr);
    std::string Kind;
    L >> Kind;
    if (!SawHeader) {
      unsigned Version = 0;
      if (Kind != "ludgraph" || !(L >> Version) || Version != 1)
        return Fail(LineNo, "expected 'ludgraph 1' header");
      SawHeader = true;
      continue;
    }
    if (Kind == "slots") {
      uint32_t S = 0;
      if (!(L >> S) || S == 0 || !AtLineEnd(L))
        return Fail(LineNo, "bad slot count");
      G->setContextSlots(S);
    } else if (Kind == "node") {
      uint64_t Id, Instr, Domain, Freq, Consumer, Effect, Tag, Slot;
      int Reads, Writes, Alloc, StoredRef;
      if (!(L >> Id >> Instr >> Domain >> Freq >> Consumer >> Effect >>
            Tag >> Slot >> Reads >> Writes >> Alloc >> StoredRef) ||
          !AtLineEnd(L))
        return Fail(LineNo, "malformed node");
      // Every narrowing cast below is validated first: a clipped or
      // bit-flipped dump must fail with a diagnostic, never wrap into a
      // silently different graph.
      if (Instr > 0xFFFFFFFFull || Domain > 0xFFFFFFFFull ||
          Slot > 0xFFFFFFFFull)
        return Fail(LineNo, "node field out of 32-bit range");
      if (Consumer > uint64_t(ConsumerKind::Native))
        return Fail(LineNo, "bad consumer kind " + std::to_string(Consumer));
      if (Effect > uint64_t(EffectKind::Load))
        return Fail(LineNo, "bad effect kind " + std::to_string(Effect));
      auto IsBool = [](int V) { return V == 0 || V == 1; };
      if (!IsBool(Reads) || !IsBool(Writes) || !IsBool(Alloc) ||
          !IsBool(StoredRef))
        return Fail(LineNo, "node flag out of range");
      NodeId N = G->getOrCreate(InstrId(Instr), uint32_t(Domain));
      if (N != NodeId(Id))
        return Fail(LineNo, "node ids out of order");
      DepGraph::Node &Node = G->node(N);
      G->freq(N) = Freq;
      Node.Consumer = ConsumerKind(Consumer);
      Node.Effect = EffectKind(Effect);
      Node.EffectLoc = {Tag, FieldSlot(Slot)};
      Node.ReadsHeap = Reads;
      Node.WritesHeap = Writes;
      Node.IsAlloc = Alloc;
      Node.StoredRef = StoredRef;
    } else if (Kind == "edge" || Kind == "refedge") {
      uint64_t From, To;
      if (!(L >> From >> To) || From >= G->numNodes() ||
          To >= G->numNodes() || !AtLineEnd(L))
        return Fail(LineNo, "malformed edge");
      if (Kind == "edge")
        G->addEdge(NodeId(From), NodeId(To));
      else
        G->addRefEdge(NodeId(From), NodeId(To));
    } else if (Kind == "allocnode") {
      uint64_t Tag, N;
      if (!(L >> Tag >> N) || N >= G->numNodes() || !AtLineEnd(L))
        return Fail(LineNo, "malformed allocnode");
      G->noteAlloc(Tag, NodeId(N));
    } else if (Kind == "writer" || Kind == "reader") {
      uint64_t Tag, Slot, N;
      if (!(L >> Tag >> Slot) || Slot > 0xFFFFFFFFull)
        return Fail(LineNo, "malformed location");
      HeapLoc Loc{Tag, FieldSlot(Slot)};
      while (L >> N) {
        if (N >= G->numNodes())
          return Fail(LineNo, "bad node in location map");
        if (Kind == "writer")
          G->noteWriter(Loc, NodeId(N));
        else
          G->noteReader(Loc, NodeId(N));
      }
      if (!L.eof())
        return Fail(LineNo, "junk token in location map");
    } else if (Kind == "refchild") {
      uint64_t Tag, Slot, Child;
      if (!(L >> Tag >> Slot) || Slot > 0xFFFFFFFFull)
        return Fail(LineNo, "malformed refchild");
      HeapLoc Loc{Tag, FieldSlot(Slot)};
      while (L >> Child)
        G->noteRefChild(Loc, Child);
      if (!L.eof())
        return Fail(LineNo, "junk token in refchild");
    } else if (Kind == "end") {
      if (!AtLineEnd(L))
        return Fail(LineNo, "junk after 'end'");
      SawEnd = true;
      break;
    } else {
      return Fail(LineNo, "unknown record '" + Kind + "'");
    }
  }
  if (!SawHeader)
    return Fail(LineNo, "missing header");
  if (!SawEnd)
    return Fail(LineNo, "missing 'end' record");
  return G;
}
