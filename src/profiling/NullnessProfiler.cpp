//===- profiling/NullnessProfiler.cpp - Null propagation client ------------===//

#include "profiling/NullnessProfiler.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <unordered_map>

using namespace lud;

NodeId NullnessProfiler::hit(const Instruction &I, bool IsNull) {
  NodeId N = G.getOrCreate(I.getId(), IsNull ? kNullDom : kNotNullDom);
  ++G.freq(N);
  return N;
}

void NullnessProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  Sh.startRun(Heap_, Mod.globals().size());
}

void NullnessProfiler::onEntryFrame(const Function &F) {
  Sh.enterEntry(F.getNumRegs());
}

void NullnessProfiler::onConst(const ConstInst &I) {
  regs()[I.Dst] = hit(I, I.Lit == ConstInst::LitKind::Null);
}

void NullnessProfiler::onAssign(const AssignInst &I) {
  NodeId Src = regs()[I.Src];
  bool IsNull = Src != kNoNode && G.node(Src).Domain == kNullDom;
  NodeId N = hit(I, IsNull);
  edgeFrom(Src, N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onBin(const BinInst &I) {
  NodeId N = hit(I, /*IsNull=*/false);
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onUn(const UnInst &I) {
  NodeId N = hit(I, /*IsNull=*/false);
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onAlloc(const AllocInst &I, ObjId O) {
  regs()[I.Dst] = hit(I, /*IsNull=*/false);
  Sh.objShadow(O);
}

void NullnessProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  NodeId N = hit(I, /*IsNull=*/false);
  edgeFrom(regs()[I.Len], N);
  regs()[I.Dst] = N;
  Sh.objShadow(O);
}

void NullnessProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                                   const Value &Loaded) {
  NodeId N = hit(I, Loaded.isNullRef());
  edgeFrom(Sh.objShadow(Base)[I.Slot], N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                    const Value &Stored) {
  NodeId N = hit(I, Stored.isNullRef());
  edgeFrom(regs()[I.Src], N);
  Sh.objShadow(Base)[I.Slot] = N;
}

void NullnessProfiler::onLoadStatic(const LoadStaticInst &I,
                                    const Value &Loaded) {
  NodeId N = hit(I, Loaded.isNullRef());
  edgeFrom(Sh.staticAt(I.Global), N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onStoreStatic(const StoreStaticInst &I,
                                     const Value &Stored) {
  NodeId N = hit(I, Stored.isNullRef());
  edgeFrom(regs()[I.Src], N);
  Sh.staticAt(I.Global) = N;
}

void NullnessProfiler::onLoadElem(const LoadElemInst &I, ObjId Base,
                                  uint32_t Index, const Value &Loaded) {
  NodeId N = hit(I, Loaded.isNullRef());
  edgeFrom(Sh.objShadow(Base)[Index], N);
  edgeFrom(regs()[I.Index], N);
  regs()[I.Dst] = N;
}

void NullnessProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                                   uint32_t Index, const Value &Stored) {
  NodeId N = hit(I, Stored.isNullRef());
  edgeFrom(regs()[I.Src], N);
  edgeFrom(regs()[I.Index], N);
  Sh.objShadow(Base)[Index] = N;
}

void NullnessProfiler::onArrayLen(const ArrayLenInst &I, ObjId) {
  regs()[I.Dst] = hit(I, /*IsNull=*/false);
}

void NullnessProfiler::onPredicate(const CondBrInst &I, bool) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Predicate;
  ++G.freq(N);
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
}

void NullnessProfiler::onNativeCall(const NativeCallInst &I) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Native;
  ++G.freq(N);
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = N;
}

void NullnessProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                                   ObjId) {
  Sh.pushFrame(I, Callee.getNumRegs());
}

void NullnessProfiler::onReturn(const ReturnInst &I) {
  Sh.Pending = kNoNode;
  if (I.Src != kNoReg) {
    NodeId Src = regs()[I.Src];
    bool IsNull = Src != kNoNode && G.node(Src).Domain == kNullDom;
    NodeId N = hit(I, IsNull);
    edgeFrom(Src, N);
    Sh.Pending = N;
  }
  Sh.popFrame();
}

void NullnessProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = Sh.Pending;
  Sh.Pending = kNoNode;
}

void NullnessProfiler::onTrap(const Instruction &I, TrapKind K, Reg FaultReg) {
  if (K != TrapKind::NullDeref || FaultReg == kNoReg)
    return;
  Fault = regs()[FaultReg];
  FaultInstr = I.getId();
}

void NullnessProfiler::accountStats(obs::MetricsRegistry &R) const {
  R.set(R.gauge("nullness.graph.nodes"), G.numNodes());
  R.set(R.gauge("nullness.graph.edges"), G.numEdges());
  R.set(R.gauge("nullness.fault"), Fault != kNoNode ? 1 : 0);
  R.set(R.gauge("mem.nullness.graph_bytes", obs::Unit::Bytes),
        G.memoryFootprint().total() + G.internTableBytes());
}

void NullnessProfiler::mergeFrom(const NullnessProfiler &O) {
  std::vector<NodeId> Remap = G.mergeFrom(O.G);
  if (O.Fault != kNoNode) {
    Fault = Remap[O.Fault];
    FaultInstr = O.FaultInstr;
  }
}

NullTrace lud::traceNullOrigin(const NullnessProfiler &P) {
  NullTrace Trace;
  const DepGraph &G = P.graph();
  NodeId Fault = P.faultNode();
  if (Fault == kNoNode || G.node(Fault).Domain != kNullDom)
    return Trace;

  // Backward BFS restricted to null-annotated nodes, recording parents so
  // a shortest propagation path can be reconstructed.
  std::unordered_map<NodeId, NodeId> Parent;
  std::vector<NodeId> Queue{Fault};
  Parent[Fault] = kNoNode;
  NodeId Origin = kNoNode;
  for (size_t Head = 0; Head != Queue.size(); ++Head) {
    NodeId N = Queue[Head];
    bool HasNullPred = false;
    for (NodeId M : G.node(N).In) {
      if (G.node(M).Domain != kNullDom)
        continue;
      HasNullPred = true;
      if (!Parent.count(M)) {
        Parent[M] = N;
        Queue.push_back(M);
      }
    }
    if (!HasNullPred && Origin == kNoNode)
      Origin = N; // First (closest) node with no null predecessor.
  }
  if (Origin == kNoNode)
    return Trace;

  Trace.Origin = G.node(Origin).Instr;
  for (NodeId N = Origin; N != kNoNode; N = Parent[N])
    Trace.Flow.push_back(G.node(N).Instr);
  return Trace;
}
