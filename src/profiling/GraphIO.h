//===- profiling/GraphIO.h - Gcost serialization ---------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of the abstract dependence graph. Section 3.2 notes
/// the analyses "could be easily migrated to an offline heap analysis tool
/// ... the JVM only needs to write Gcost to external storage": this is
/// that hand-off. The format is line-oriented and versioned:
///
///   ludgraph 1
///   slots <s>
///   node <id> <instr> <domain> <freq> <consumer> <effect> <tag> <slot>
///        <reads> <writes> <alloc> <storedref>     (one line per node)
///   edge <from> <to>
///   refedge <store> <alloc>
///   allocnode <tag> <node>
///   writer <tag> <slot> <node...>
///   reader <tag> <slot> <node...>
///   refchild <tag> <slot> <childtag...>
///   end
///
/// Everything the offline analyses (CostModel, DeadValues, Report) need is
/// preserved; node ids are stable across a round trip.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_GRAPHIO_H
#define LUD_PROFILING_GRAPHIO_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lud {

class DepGraph;
class FrozenGraph;
class OutStream;

/// Writes \p G in the versioned text format. The frozen overload is the
/// primary writer — the sealed representation already holds every record
/// in canonical order.
void writeGraph(const FrozenGraph &G, OutStream &OS);

/// Convenience for build-phase graphs: seals a copy of \p G and writes
/// that. Byte-identical to sealing at the call site.
void writeGraph(const DepGraph &G, OutStream &OS);

/// Parses a graph written by writeGraph. Returns null and fills \p Errors
/// on malformed input.
std::unique_ptr<DepGraph> readGraph(std::string_view Text,
                                    std::vector<std::string> &Errors);

} // namespace lud

#endif // LUD_PROFILING_GRAPHIO_H
