//===- profiling/SlicingProfiler.h - Gcost construction --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online profiler that builds Gcost: an implementation of every
/// inference rule of Figure 4. Shadow locations map each runtime storage
/// location (register, heap slot, static) to the graph node that last wrote
/// it; a tracking stack passes shadows and receiver-object chains across
/// calls; object tags (environment P) live in the heap object headers.
///
/// Phase markers (the `phase` pseudo-native) gate tracking so the paper's
/// selective-phase overhead experiment (Section 4.1) can be reproduced:
/// shadow stacks stay aligned while tracking is off, but no graph updates
/// happen.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_SLICINGPROFILER_H
#define LUD_PROFILING_SLICINGPROFILER_H

#include "profiling/Context.h"
#include "profiling/DepGraph.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <unordered_map>
#include <unordered_set>

namespace lud {

class Module;

struct SlicingConfig {
  /// The paper's s: number of context slots per instruction.
  uint32_t ContextSlots = 16;
  /// Bit i set => instructions executed in phase i are tracked. Phase 0 is
  /// active from entry until the first `phase` marker.
  uint64_t TrackedPhaseMask = ~uint64_t(0);
  /// Thin slicing (Definition 2): base-pointer values are not uses. Setting
  /// this false adds base-pointer edges, approximating traditional dynamic
  /// slicing for the ablation benchmark.
  bool ThinSlicing = true;
  /// Object-sensitive contexts; false collapses the domain to one slot
  /// (context-insensitive ablation).
  bool ContextSensitive = true;
  /// Record distinct encoded contexts per function for CR (Table 1).
  bool TrackCR = true;
};

/// Write/read/overwrite counters per abstract heap location, feeding the
/// "rewritten before read" client (Section 3.2, derby case study).
struct LocationActivity {
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  /// Stores that clobbered a value no load ever observed.
  uint64_t Overwrites = 0;
};

class SlicingProfiler {
public:
  explicit SlicingProfiler(SlicingConfig Cfg = {});

  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }
  const SlicingConfig &config() const { return Cfg; }
  const Module *module() const { return M; }

  /// Per-predicate-node outcome counts (always-true detection).
  struct PredicateOutcome {
    uint64_t TakenCount = 0;
    uint64_t NotTakenCount = 0;
  };
  const std::unordered_map<NodeId, PredicateOutcome> &
  predicateOutcomes() const {
    return PredOutcomes;
  }

  const std::unordered_map<HeapLoc, LocationActivity, HeapLocHash> &
  locationActivity() const {
    return Activity;
  }

  /// Instruction-weighted average context conflict ratio over the graph
  /// (Table 1's CR column). Per function f with C distinct contexts hashed
  /// into U occupied slots: CR(f) = 0 if C <= 1, else (C - U) / (C - 1);
  /// each static instruction of f present in the graph contributes one
  /// sample.
  double averageCR() const;

  /// Total distinct dynamic contexts observed (all functions).
  uint64_t distinctContexts() const;

  //===--------------------------------------------------------------------===
  // Profiler hooks (see runtime/ProfilerConcept.h for the contract).
  //===--------------------------------------------------------------------===

  void onRunStart(const Module &Mod, Heap &H);
  void onRunEnd();
  void onEntryFrame(const Function &F);
  void onPhase(int64_t Phase);

  void onConst(const ConstInst &I);
  void onAssign(const AssignInst &I);
  void onBin(const BinInst &I);
  void onUn(const UnInst &I);
  void onAlloc(const AllocInst &I, ObjId O);
  void onAllocArray(const AllocArrayInst &I, ObjId O);
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded);
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored);
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded);
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored);
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded);
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored);
  void onArrayLen(const ArrayLenInst &I, ObjId Base);
  void onPredicate(const CondBrInst &I, bool Taken);
  void onNativeCall(const NativeCallInst &I);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);
  void onReturn(const ReturnInst &I);
  void onReturnBound(Reg Dst);
  void onTrap(const Instruction &I, TrapKind K, Reg FaultReg);

private:
  /// Per-slot write/read state for overwrite detection.
  enum SlotState : uint8_t { Virgin = 0, WrittenUnread = 1, WrittenRead = 2 };

  struct ShadowObject {
    NodeId Len = kNoNode;
    std::vector<NodeId> Slots;
    std::vector<uint8_t> States;
  };

  std::vector<NodeId> &regs() { return RegShadow.back(); }

  uint32_t dom() const { return Cfg.ContextSensitive ? Ctx.slot() : 0; }

  /// Node for (I, Domain), with flags initialized and frequency bumped.
  NodeId hit(const Instruction &I, uint32_t Domain);

  void edgeFrom(NodeId Src, NodeId To) {
    if (Src != kNoNode)
      G.addEdge(Src, To);
  }

  ShadowObject &ensureShadow(ObjId O);

  /// Store-side bookkeeping shared by field/elem/static stores: activity
  /// counters, writer map, reference edges, reference-tree children.
  void noteStore(NodeId N, uint64_t Tag, FieldSlot Slot, const Value &Stored);

  SlicingConfig Cfg;
  DepGraph G;
  ContextEncoder Ctx;
  const Module *M = nullptr;
  Heap *H = nullptr;
  bool Enabled = true;

  std::vector<std::vector<NodeId>> RegShadow;
  std::vector<ShadowObject> HeapShadow;
  std::vector<NodeId> StaticShadow;
  std::vector<uint8_t> StaticStates;
  NodeId PendingRet = kNoNode;

  std::vector<FuncId> FuncStack;
  std::unordered_map<FuncId, std::unordered_set<uint64_t>> SeenContexts;
  std::unordered_map<NodeId, PredicateOutcome> PredOutcomes;
  std::unordered_map<HeapLoc, LocationActivity, HeapLocHash> Activity;
};

} // namespace lud

#endif // LUD_PROFILING_SLICINGPROFILER_H
