//===- profiling/SlicingProfiler.h - Gcost construction --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online profiler that builds Gcost: an implementation of every
/// inference rule of Figure 4. Shadow locations map each runtime storage
/// location (register, heap slot, static) to the graph node that last wrote
/// it; a tracking stack passes shadows and receiver-object chains across
/// calls; object tags (environment P) live in the heap object headers.
///
/// Phase markers (the `phase` pseudo-native) gate tracking so the paper's
/// selective-phase overhead experiment (Section 4.1) can be reproduced:
/// shadow stacks stay aligned while tracking is off, but no graph updates
/// happen.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_SLICINGPROFILER_H
#define LUD_PROFILING_SLICINGPROFILER_H

#include "profiling/Context.h"
#include "profiling/DepGraph.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"
#include "support/FlatMap.h"
#include "support/FlatSet.h"

namespace lud {

class Module;
namespace obs {
class MetricsRegistry;
}

struct SlicingConfig {
  /// The paper's s: number of context slots per instruction.
  uint32_t ContextSlots = 16;
  /// Bit i set => instructions executed in phase i are tracked. Phase 0 is
  /// active from entry until the first `phase` marker.
  uint64_t TrackedPhaseMask = ~uint64_t(0);
  /// Thin slicing (Definition 2): base-pointer values are not uses. Setting
  /// this false adds base-pointer edges, approximating traditional dynamic
  /// slicing for the ablation benchmark.
  bool ThinSlicing = true;
  /// Object-sensitive contexts; false collapses the domain to one slot
  /// (context-insensitive ablation).
  bool ContextSensitive = true;
  /// Record distinct encoded contexts per function for CR (Table 1).
  bool TrackCR = true;
  /// Hot-path memo caches: the per-instruction (domain -> node) memo, the
  /// last-edge memo, and table pre-sizing from the module. Results are
  /// bit-identical either way; turning this off selects the cache-free
  /// reference path the equivalence tests compare against.
  bool HotPathCaches = true;
};

/// Write/read/overwrite counters per abstract heap location, feeding the
/// "rewritten before read" client (Section 3.2, derby case study).
struct LocationActivity {
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  /// Stores that clobbered a value no load ever observed.
  uint64_t Overwrites = 0;
  /// Reads since the location's most recent write — the build/read phase
  /// split the evidence layer classifies on: a build-once-read-many
  /// structure keeps Reads ≈ ReadsAfterLastWrite, an overwrite-dominated
  /// one keeps it near zero.
  uint64_t ReadsAfterLastWrite = 0;
};

class SlicingProfiler {
public:
  explicit SlicingProfiler(SlicingConfig Cfg = {});

  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }
  const SlicingConfig &config() const { return Cfg; }
  const Module *module() const { return M; }

  /// Per-predicate-node outcome counts (always-true detection).
  struct PredicateOutcome {
    uint64_t TakenCount = 0;
    uint64_t NotTakenCount = 0;
  };
  const FlatMap<NodeId, PredicateOutcome> &predicateOutcomes() const {
    return PredOutcomes;
  }

  const HeapLocMap<LocationActivity> &locationActivity() const {
    return Activity;
  }

  /// Instruction-weighted average context conflict ratio over the graph
  /// (Table 1's CR column). Per function f with C distinct contexts hashed
  /// into U occupied slots: CR(f) = 0 if C <= 1, else (C - U) / (C - 1);
  /// each static instruction of f present in the graph contributes one
  /// sample.
  double averageCR() const;

  /// Total distinct dynamic contexts observed (all functions).
  uint64_t distinctContexts() const;

  /// Merges another profiler's results into this one: the dependence graph
  /// (DepGraph::mergeFrom), the per-node predicate outcomes (renumbered),
  /// the location activity counters, and the per-function context sets.
  /// Both profilers must share the module and configuration; \p O is
  /// treated as the later of two sequential runs. This is how the parallel
  /// workload driver folds its per-thread shards back into one profile.
  void mergeFrom(const SlicingProfiler &O);

  /// Writes the substrate's state-derived telemetry into \p R: Gcost
  /// growth gauges (`gcost.*`), heap-activity totals (`heap.*`), and the
  /// shadow-memory accounting (`mem.*`) for the shadow heap, interning
  /// tables, and graph arenas. Gauges are set(), the node-frequency
  /// histogram is cleared and refilled, so the call is idempotent — the
  /// session re-invokes it after every run and every merge. Everything
  /// recorded here is deterministic for a deterministic workload (see
  /// docs/OBSERVABILITY.md).
  void accountStats(obs::MetricsRegistry &R) const;

  //===--------------------------------------------------------------------===
  // Profiler hooks (see runtime/ProfilerConcept.h for the contract).
  //===--------------------------------------------------------------------===

  void onRunStart(const Module &Mod, Heap &H);
  void onRunEnd();
  void onEntryFrame(const Function &F);
  void onPhase(int64_t Phase);

  void onConst(const ConstInst &I);
  void onAssign(const AssignInst &I);
  void onBin(const BinInst &I);
  void onUn(const UnInst &I);
  void onAlloc(const AllocInst &I, ObjId O);
  void onAllocArray(const AllocArrayInst &I, ObjId O);
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded);
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored);
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded);
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored);
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded);
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored);
  void onArrayLen(const ArrayLenInst &I, ObjId Base);
  void onPredicate(const CondBrInst &I, bool Taken);
  void onNativeCall(const NativeCallInst &I);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);
  void onReturn(const ReturnInst &I);
  void onReturnBound(Reg Dst);
  void onTrap(const Instruction &I, TrapKind K, Reg FaultReg);

private:
  /// Per-slot write/read state for overwrite detection.
  enum SlotState : uint8_t { Virgin = 0, WrittenUnread = 1, WrittenRead = 2 };

  /// A shadow heap slot packs the last writer node (low half) with its
  /// SlotState (high half): one array, one malloc per object, and one
  /// cache touch per load/store event instead of two.
  static constexpr uint64_t packSlot(NodeId N, uint8_t S) {
    return (uint64_t(S) << 32) | N;
  }
  static constexpr NodeId slotNode(uint64_t E) { return NodeId(E); }
  static constexpr uint8_t slotState(uint64_t E) { return uint8_t(E >> 32); }

  struct ShadowObject {
    NodeId Len = kNoNode;
    std::vector<uint64_t> Slots;
  };

  /// Shadow register frames are a depth-indexed stack over a reused pool:
  /// returning pops the logical depth but keeps the vector's buffer, so a
  /// call re-entering that depth assigns in place instead of mallocing a
  /// fresh frame (calls are the second-hottest event after loads). CurRegs
  /// caches the current frame's buffer, refreshed at every frame
  /// transition; inner buffers stay put when the outer pool grows because
  /// vector moves steal them.
  NodeId *regs() { return CurRegs; }

  uint32_t dom() const { return Cfg.ContextSensitive ? Ctx.slot() : 0; }

  /// Node for (I, Domain), with flags initialized and frequency bumped.
  /// The common case — this static instruction re-executing under the
  /// domain element it was last seen with — is answered from HitMemo, a
  /// dense vector indexed by InstrId, without touching the interning table.
  NodeId hit(const Instruction &I, uint32_t Domain);

  void edgeFrom(NodeId Src, NodeId To) {
    if (Src != kNoNode)
      G.addEdge(Src, To);
  }

  ShadowObject &ensureShadow(ObjId O);

  /// Store-side bookkeeping shared by field/elem/static stores: activity
  /// counters, writer map, reference edges, reference-tree children.
  void noteStore(NodeId N, uint64_t Tag, FieldSlot Slot, const Value &Stored);

  /// Load-side bookkeeping shared by field/elem/static/arraylen loads:
  /// effect decoration, reader map, activity counters.
  void noteLoad(NodeId N, uint64_t Tag, FieldSlot Slot);

  /// Activity counters for location \p L as read/written by node \p N.
  /// \p LocUnchanged means N's effect location already was \p L, so the
  /// per-node slot memo can answer without hashing.
  LocationActivity &activityRef(NodeId N, const HeapLoc &L, bool LocUnchanged);

  /// Outcome counters for predicate node \p N, memoized per node the same
  /// way activityRef is (the key is the node itself, so the memo never
  /// goes stale short of a rehash).
  PredicateOutcome &predRef(NodeId N);

  SlicingConfig Cfg;
  DepGraph G;
  ContextEncoder Ctx;
  const Module *M = nullptr;
  Heap *H = nullptr;
  bool Enabled = true;

  std::vector<std::vector<NodeId>> RegShadow;
  size_t FrameDepth = 0;
  NodeId *CurRegs = nullptr;
  std::vector<ShadowObject> HeapShadow;
  std::vector<NodeId> StaticShadow;
  std::vector<uint8_t> StaticStates;
  NodeId PendingRet = kNoNode;

  std::vector<FuncId> FuncStack;
  /// Distinct encoded contexts per function, indexed by FuncId (dense).
  std::vector<FlatSet<uint64_t>> SeenContexts;
  FlatMap<NodeId, PredicateOutcome> PredOutcomes;
  HeapLocMap<LocationActivity> Activity;

  /// Last (domain -> node) resolved per static instruction; Node==kNoNode
  /// means no memo. Empty when Cfg.HotPathCaches is off.
  struct InstrMemo {
    uint32_t Domain = kNoDomain;
    NodeId Node = kNoNode;
  };
  std::vector<InstrMemo> HitMemo;

  /// Per-node memo of the Activity slot for the node's current effect
  /// location, valid while the map generation matches (raw-slot API of
  /// FlatMap). Saves the HeapLoc hash + probe on every steady-state event.
  struct ActMemo {
    uint64_t Gen = 0;
    uint32_t Slot = 0;
    bool Valid = false;
  };
  std::vector<ActMemo> NodeAct;
  std::vector<ActMemo> NodePred;

  /// Last (callee, encoded context) recorded in SeenContexts: a loop
  /// calling the same method on the same receiver chain re-inserts the
  /// same pair every iteration, and the set probe can be skipped. Inserts
  /// are idempotent, so this is pure common-subexpression caching.
  FuncId LastCtxFunc = ~FuncId(0);
  uint64_t LastCtxVal = ~uint64_t(0);

  FlatSet<uint64_t> &seenContextsFor(FuncId F) {
    if (SeenContexts.size() <= F)
      SeenContexts.resize(F + 1);
    return SeenContexts[F];
  }
};

} // namespace lud

#endif // LUD_PROFILING_SLICINGPROFILER_H
