//===- profiling/ConcreteProfiler.cpp - Definition 1 graphs ----------------===//

#include "profiling/ConcreteProfiler.h"

#include "ir/Module.h"

using namespace lud;

CNodeId ConcreteProfiler::fresh(const Instruction &I, uint32_t AbsDomain) {
  if (Nodes.size() >= MaxNodes) {
    Overflowed = true;
    return kNoCNode;
  }
  CNodeId N = CNodeId(Nodes.size());
  Nodes.emplace_back();
  Nodes.back().Instr = I.getId();
  Nodes.back().Occurrence = ++OccurrenceCount[I.getId()];
  Nodes.back().AbsDomain = AbsDomain;
  return N;
}

std::vector<CNodeId> &ConcreteProfiler::objShadow(ObjId O) {
  if (HeapShadow.size() <= O) {
    HeapShadow.resize(H->idBound());
    LenShadow.resize(H->idBound(), kNoCNode);
    SiteOf.resize(H->idBound(), kNoAllocSite);
  }
  std::vector<CNodeId> &S = HeapShadow[O];
  size_t Need = H->obj(O).Slots.size();
  if (S.size() < Need)
    S.resize(Need, kNoCNode);
  return S;
}

void ConcreteProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  H = &Heap_;
  OccurrenceCount.assign(Mod.getNumInstrs(), 0);
  StaticShadow.assign(Mod.globals().size(), kNoCNode);
}

void ConcreteProfiler::onEntryFrame(const Function &F) {
  Ctx.reset();
  RegShadow.clear();
  RegShadow.emplace_back(F.getNumRegs(), kNoCNode);
}

void ConcreteProfiler::onConst(const ConstInst &I) {
  regs()[I.Dst] = fresh(I, Ctx.slot());
}

void ConcreteProfiler::onAssign(const AssignInst &I) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onBin(const BinInst &I) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onUn(const UnInst &I) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onAlloc(const AllocInst &I, ObjId O) {
  CNodeId N = fresh(I, Ctx.slot());
  regs()[I.Dst] = N;
  objShadow(O);
  SiteOf[O] = I.Site;
}

void ConcreteProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Len], N);
  regs()[I.Dst] = N;
  objShadow(O);
  LenShadow[O] = N;
  SiteOf[O] = I.Site;
}

void ConcreteProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                                   const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(objShadow(Base)[I.Slot], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                    const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Src], N);
  objShadow(Base)[I.Slot] = N;
}

void ConcreteProfiler::onLoadStatic(const LoadStaticInst &I, const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(StaticShadow[I.Global], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onStoreStatic(const StoreStaticInst &I,
                                     const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Src], N);
  StaticShadow[I.Global] = N;
}

void ConcreteProfiler::onLoadElem(const LoadElemInst &I, ObjId Base,
                                  uint32_t Index, const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(objShadow(Base)[Index], N);
  edgeFrom(regs()[I.Index], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                                   uint32_t Index, const Value &) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Src], N);
  edgeFrom(regs()[I.Index], N);
  objShadow(Base)[Index] = N;
}

void ConcreteProfiler::onArrayLen(const ArrayLenInst &I, ObjId Base) {
  CNodeId N = fresh(I, Ctx.slot());
  if (N == kNoCNode)
    return;
  // The length behaves like a field the allocation wrote.
  objShadow(Base);
  edgeFrom(LenShadow[Base], N);
  regs()[I.Dst] = N;
}

void ConcreteProfiler::onPredicate(const CondBrInst &I, bool) {
  CNodeId N = fresh(I, kNoDomain);
  if (N == kNoCNode)
    return;
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
}

void ConcreteProfiler::onNativeCall(const NativeCallInst &I) {
  CNodeId N = fresh(I, kNoDomain);
  if (N == kNoCNode)
    return;
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = N;
}

void ConcreteProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                                   ObjId Receiver) {
  bool Extends = Callee.isMethod() && Receiver != kNullObj;
  AllocSiteId Site = 0;
  if (Extends) {
    objShadow(Receiver);
    Site = SiteOf[Receiver] == kNoAllocSite ? 0 : SiteOf[Receiver];
  }
  Ctx.pushCall(Extends, Site);
  std::vector<CNodeId> Params(Callee.getNumRegs(), kNoCNode);
  const std::vector<CNodeId> &Caller = regs();
  for (size_t A = 0, E = I.Args.size(); A != E; ++A)
    Params[A] = Caller[I.Args[A]];
  RegShadow.push_back(std::move(Params));
}

void ConcreteProfiler::onReturn(const ReturnInst &I) {
  PendingRet = kNoCNode;
  if (I.Src != kNoReg) {
    CNodeId N = fresh(I, Ctx.slot());
    if (N != kNoCNode) {
      edgeFrom(regs()[I.Src], N);
      PendingRet = N;
    }
  }
  if (RegShadow.size() > 1) {
    RegShadow.pop_back();
    Ctx.popCall();
  }
}

void ConcreteProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = PendingRet;
  PendingRet = kNoCNode;
}

uint64_t ConcreteProfiler::absoluteCost(CNodeId N) const {
  std::vector<bool> Seen(Nodes.size(), false);
  std::vector<CNodeId> Work{N};
  Seen[N] = true;
  uint64_t Count = 0;
  while (!Work.empty()) {
    CNodeId X = Work.back();
    Work.pop_back();
    ++Count;
    for (CNodeId P : Nodes[X].In)
      if (!Seen[P]) {
        Seen[P] = true;
        Work.push_back(P);
      }
  }
  return Count;
}

std::vector<CNodeId> ConcreteProfiler::instancesOf(InstrId I) const {
  std::vector<CNodeId> Out;
  for (CNodeId N = 0; N != CNodeId(Nodes.size()); ++N)
    if (Nodes[N].Instr == I)
      Out.push_back(N);
  return Out;
}
