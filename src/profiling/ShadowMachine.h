//===- profiling/ShadowMachine.h - Shared client shadow state --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shadow-location machinery every abstract-slicing client needs
/// (Figure 4's environments, minus the graph): per-register shadows with a
/// call stack, per-object per-slot heap shadows, per-global static shadows,
/// and the in-flight return shadow. Before the pipeline refactor each
/// client profiler carried its own copy of this; now CopyProfiler and
/// NullnessProfiler instantiate ShadowMachine over their shadow value type
/// and keep only the domain logic.
///
/// The register stack uses the SlicingProfiler frame-pool idiom: returning
/// pops the logical depth but keeps the frame vector's buffer, so a call
/// re-entering that depth assigns in place instead of mallocing a fresh
/// frame. Inner buffers stay put when the outer pool grows because vector
/// moves steal them, so the cached current-frame pointer stays valid across
/// pushes at already-visited depths.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_SHADOWMACHINE_H
#define LUD_PROFILING_SHADOWMACHINE_H

#include "ir/Instruction.h"
#include "runtime/Heap.h"

#include <vector>

namespace lud {

class Function;

template <typename ShadowT> class ShadowMachine {
public:
  explicit ShadowMachine(ShadowT NullVal = ShadowT()) : Null(NullVal) {}

  /// Binds the run's heap and resets the static shadows (onRunStart).
  void startRun(Heap &Heap_, size_t NumGlobals) {
    H = &Heap_;
    Statics.assign(NumGlobals, Null);
    Objects.clear();
    Pending = Null;
  }

  /// Resets the register stack to one frame for the entry function
  /// (onEntryFrame).
  void enterEntry(uint32_t NumRegs) {
    if (Frames.empty())
      Frames.emplace_back();
    Frames[0].assign(NumRegs, Null);
    Depth = 1;
    CurRegs = Frames[0].data();
  }

  /// Current frame's register shadows.
  ShadowT *regs() { return CurRegs; }
  const ShadowT *regs() const { return CurRegs; }

  /// Pushes the callee frame, copying the actuals' shadows into the leading
  /// parameter registers and nulling the rest (onCallEnter: fires while the
  /// caller frame is still current).
  void pushFrame(const CallInst &I, uint32_t CalleeRegs) {
    if (Frames.size() <= Depth)
      Frames.emplace_back();
    std::vector<ShadowT> &Callee = Frames[Depth];
    Callee.assign(CalleeRegs, Null);
    const ShadowT *Caller = CurRegs;
    for (size_t A = 0, E = I.Args.size(); A != E; ++A)
      Callee[A] = Caller[I.Args[A]];
    ++Depth;
    CurRegs = Callee.data();
  }

  /// Pops back to the caller frame (onReturn; the entry frame stays).
  void popFrame() {
    if (Depth > 1) {
      --Depth;
      CurRegs = Frames[Depth - 1].data();
    }
  }

  ShadowT &staticAt(GlobalId G) { return Statics[G]; }

  /// Per-slot shadows of object \p O, grown on demand to the object's slot
  /// count (arrays included).
  std::vector<ShadowT> &objShadow(ObjId O) {
    if (Objects.size() <= O)
      Objects.resize(H->idBound());
    std::vector<ShadowT> &S = Objects[O];
    size_t Need = H->obj(O).Slots.size();
    if (S.size() < Need)
      S.resize(Need, Null);
    return S;
  }

  /// The return value's shadow, in flight between onReturn (callee side)
  /// and onReturnBound (caller side).
  ShadowT Pending;

private:
  ShadowT Null;
  Heap *H = nullptr;
  std::vector<std::vector<ShadowT>> Frames;
  size_t Depth = 0;
  ShadowT *CurRegs = nullptr;
  std::vector<std::vector<ShadowT>> Objects;
  std::vector<ShadowT> Statics;
};

} // namespace lud

#endif // LUD_PROFILING_SHADOWMACHINE_H
