//===- profiling/SlicingProfiler.cpp - Gcost construction ------------------===//

#include "profiling/SlicingProfiler.h"

#include "ir/Module.h"

using namespace lud;

SlicingProfiler::SlicingProfiler(SlicingConfig Cfg)
    : Cfg(Cfg), Ctx(Cfg.ContextSlots) {
  G.setContextSlots(Cfg.ContextSlots);
  Ctx.reset();
}

NodeId SlicingProfiler::hit(const Instruction &I, uint32_t Domain) {
  NodeId Id = G.getOrCreate(I.getId(), Domain);
  DepGraph::Node &N = G.node(Id);
  if (N.Freq == 0) {
    N.ReadsHeap = I.readsHeap();
    N.WritesHeap = I.writesHeap();
    N.IsAlloc = I.isAlloc();
  }
  ++N.Freq;
  return Id;
}

SlicingProfiler::ShadowObject &SlicingProfiler::ensureShadow(ObjId O) {
  if (HeapShadow.size() <= O)
    HeapShadow.resize(H->idBound());
  ShadowObject &SO = HeapShadow[O];
  size_t Need = H->obj(O).Slots.size();
  if (SO.Slots.size() < Need) {
    SO.Slots.resize(Need, kNoNode);
    SO.States.resize(Need, Virgin);
  }
  return SO;
}

void SlicingProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  M = &Mod;
  H = &Heap_;
  StaticShadow.assign(Mod.globals().size(), kNoNode);
  StaticStates.assign(Mod.globals().size(), Virgin);
  Enabled = (Cfg.TrackedPhaseMask & 1) != 0;
}

void SlicingProfiler::onRunEnd() {}

void SlicingProfiler::onEntryFrame(const Function &F) {
  Ctx.reset();
  RegShadow.clear();
  RegShadow.emplace_back(F.getNumRegs(), kNoNode);
  FuncStack.assign(1, F.getId());
  if (Enabled && Cfg.TrackCR)
    SeenContexts[F.getId()].insert(Ctx.current());
}

void SlicingProfiler::onPhase(int64_t Phase) {
  if (Phase < 0 || Phase >= 64) {
    Enabled = true;
    return;
  }
  Enabled = (Cfg.TrackedPhaseMask >> Phase) & 1;
}

void SlicingProfiler::onConst(const ConstInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  regs()[I.Dst] = hit(I, dom());
}

void SlicingProfiler::onAssign(const AssignInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onBin(const BinInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onUn(const UnInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onAlloc(const AllocInst &I, ObjId O) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  uint64_t Tag = G.makeTag(I.Site, dom());
  H->obj(O).Tag = Tag;
  G.noteAlloc(Tag, N);
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Alloc;
  Node.EffectLoc = {Tag, 0};
  ensureShadow(O);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Len], N);
  uint64_t Tag = G.makeTag(I.Site, dom());
  H->obj(O).Tag = Tag;
  G.noteAlloc(Tag, N);
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Alloc;
  Node.EffectLoc = {Tag, 0};
  ShadowObject &SO = ensureShadow(O);
  SO.Len = N;
  G.noteWriter({Tag, kLenSlot}, N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                                  const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  edgeFrom(SO.Slots[I.Slot], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  if (SO.States[I.Slot] == WrittenUnread)
    SO.States[I.Slot] = WrittenRead;
  regs()[I.Dst] = N;
  uint64_t Tag = H->obj(Base).Tag;
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Load;
  Node.EffectLoc = {Tag, I.Slot};
  G.noteReader(Node.EffectLoc, N);
  ++Activity[Node.EffectLoc].Reads;
}

void SlicingProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                   const Value &Stored) {
  if (!Enabled) {
    ensureShadow(Base).Slots[I.Slot] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  ShadowObject &SO = ensureShadow(Base);
  if (SO.States[I.Slot] == WrittenUnread) {
    uint64_t Tag = H->obj(Base).Tag;
    if (Tag != kNoTag)
      ++Activity[HeapLoc{Tag, I.Slot}].Overwrites;
  }
  SO.Slots[I.Slot] = N;
  SO.States[I.Slot] = WrittenUnread;
  noteStore(N, H->obj(Base).Tag, I.Slot, Stored);
}

void SlicingProfiler::noteStore(NodeId N, uint64_t Tag, FieldSlot Slot,
                                const Value &Stored) {
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Store;
  Node.EffectLoc = {Tag, Slot};
  G.noteWriter(Node.EffectLoc, N);
  ++Activity[Node.EffectLoc].Writes;
  if (!DepGraph::isStaticTag(Tag)) {
    NodeId Alloc = G.allocNodeFor(Tag);
    if (Alloc != kNoNode)
      G.addRefEdge(N, Alloc);
  }
  if (Stored.isRef()) {
    Node.StoredRef = true;
    if (!Stored.isNullRef()) {
      uint64_t ChildTag = H->obj(Stored.R).Tag;
      if (ChildTag != kNoTag)
        G.noteRefChild(Node.EffectLoc, ChildTag);
    }
  }
}

void SlicingProfiler::onLoadStatic(const LoadStaticInst &I, const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(StaticShadow[I.Global], N);
  if (StaticStates[I.Global] == WrittenUnread)
    StaticStates[I.Global] = WrittenRead;
  regs()[I.Dst] = N;
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Load;
  Node.EffectLoc = {DepGraph::makeStaticTag(I.Global), 0};
  G.noteReader(Node.EffectLoc, N);
  ++Activity[Node.EffectLoc].Reads;
}

void SlicingProfiler::onStoreStatic(const StoreStaticInst &I,
                                    const Value &Stored) {
  if (!Enabled) {
    StaticShadow[I.Global] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  if (StaticStates[I.Global] == WrittenUnread)
    ++Activity[HeapLoc{DepGraph::makeStaticTag(I.Global), 0}].Overwrites;
  StaticShadow[I.Global] = N;
  StaticStates[I.Global] = WrittenUnread;
  noteStore(N, DepGraph::makeStaticTag(I.Global), 0, Stored);
}

void SlicingProfiler::onLoadElem(const LoadElemInst &I, ObjId Base,
                                 uint32_t Index, const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  edgeFrom(SO.Slots[Index], N);
  // The element index is a use even under thin slicing (Section 2.1).
  edgeFrom(regs()[I.Index], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  if (SO.States[Index] == WrittenUnread)
    SO.States[Index] = WrittenRead;
  regs()[I.Dst] = N;
  uint64_t Tag = H->obj(Base).Tag;
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Load;
  Node.EffectLoc = {Tag, kElemSlot};
  G.noteReader(Node.EffectLoc, N);
  ++Activity[Node.EffectLoc].Reads;
}

void SlicingProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                                  uint32_t Index, const Value &Stored) {
  if (!Enabled) {
    ensureShadow(Base).Slots[Index] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  edgeFrom(regs()[I.Index], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  ShadowObject &SO = ensureShadow(Base);
  if (SO.States[Index] == WrittenUnread) {
    uint64_t Tag = H->obj(Base).Tag;
    if (Tag != kNoTag)
      ++Activity[HeapLoc{Tag, kElemSlot}].Overwrites;
  }
  SO.Slots[Index] = N;
  SO.States[Index] = WrittenUnread;
  noteStore(N, H->obj(Base).Tag, kElemSlot, Stored);
}

void SlicingProfiler::onArrayLen(const ArrayLenInst &I, ObjId Base) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  edgeFrom(SO.Len, N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  regs()[I.Dst] = N;
  uint64_t Tag = H->obj(Base).Tag;
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Load;
  Node.EffectLoc = {Tag, kLenSlot};
  G.noteReader(Node.EffectLoc, N);
  ++Activity[Node.EffectLoc].Reads;
}

void SlicingProfiler::onPredicate(const CondBrInst &I, bool Taken) {
  if (!Enabled)
    return;
  NodeId N = hit(I, kNoDomain);
  G.node(N).Consumer = ConsumerKind::Predicate;
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  PredicateOutcome &O = PredOutcomes[N];
  if (Taken)
    ++O.TakenCount;
  else
    ++O.NotTakenCount;
}

void SlicingProfiler::onNativeCall(const NativeCallInst &I) {
  if (!Enabled) {
    if (I.Dst != kNoReg)
      regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, kNoDomain);
  G.node(N).Consumer = ConsumerKind::Native;
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = N;
}

void SlicingProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                                  ObjId Receiver) {
  bool Extends = Callee.isMethod() && Receiver != kNullObj;
  AllocSiteId Site = 0;
  if (Extends) {
    uint64_t Tag = H->obj(Receiver).Tag;
    // ALLOCID strips the context annotation, leaving the allocation site.
    Site = Tag == kNoTag ? 0 : G.tagSite(Tag);
  }
  Ctx.pushCall(Extends, Site);
  // Tracking stack: formal parameters receive the actuals' shadows (rule
  // METHOD ENTRY).
  std::vector<NodeId> Params(Callee.getNumRegs(), kNoNode);
  const std::vector<NodeId> &Caller = regs();
  for (size_t A = 0, E = I.Args.size(); A != E; ++A)
    Params[A] = Caller[I.Args[A]];
  RegShadow.push_back(std::move(Params));
  FuncStack.push_back(Callee.getId());
  if (Enabled && Cfg.TrackCR)
    SeenContexts[Callee.getId()].insert(Ctx.current());
}

void SlicingProfiler::onReturn(const ReturnInst &I) {
  PendingRet = kNoNode;
  if (Enabled && I.Src != kNoReg) {
    NodeId N = hit(I, dom());
    edgeFrom(regs()[I.Src], N);
    PendingRet = N;
  }
  if (RegShadow.size() > 1) {
    RegShadow.pop_back();
    Ctx.popCall();
    FuncStack.pop_back();
  }
}

void SlicingProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = PendingRet;
  PendingRet = kNoNode;
}

void SlicingProfiler::onTrap(const Instruction &, TrapKind, Reg) {}

double SlicingProfiler::averageCR() const {
  if (!M)
    return 0;
  // Distinct static instructions present in the graph, per function.
  std::unordered_map<FuncId, std::unordered_set<InstrId>> InstrsByFunc;
  for (NodeId N = 0, E = NodeId(G.numNodes()); N != E; ++N) {
    InstrId I = G.node(N).Instr;
    InstrsByFunc[M->getInstrFunction(I)->getId()].insert(I);
  }
  double WeightedSum = 0;
  uint64_t TotalInstrs = 0;
  for (const auto &[Func, Instrs] : InstrsByFunc) {
    double CR = 0;
    auto It = SeenContexts.find(Func);
    if (It != SeenContexts.end() && It->second.size() > 1) {
      std::unordered_set<uint32_t> UsedSlots;
      for (uint64_t C : It->second)
        UsedSlots.insert(Ctx.slotOf(C));
      double NumCtx = double(It->second.size());
      CR = (NumCtx - double(UsedSlots.size())) / (NumCtx - 1);
    }
    WeightedSum += CR * double(Instrs.size());
    TotalInstrs += Instrs.size();
  }
  return TotalInstrs == 0 ? 0 : WeightedSum / double(TotalInstrs);
}

uint64_t SlicingProfiler::distinctContexts() const {
  uint64_t Sum = 0;
  for (const auto &[Func, Ctxs] : SeenContexts)
    Sum += Ctxs.size();
  return Sum;
}
