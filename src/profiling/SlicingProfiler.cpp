//===- profiling/SlicingProfiler.cpp - Gcost construction ------------------===//

#include "profiling/SlicingProfiler.h"

#include "ir/Module.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace lud;

SlicingProfiler::SlicingProfiler(SlicingConfig Cfg)
    : Cfg(Cfg), Ctx(Cfg.ContextSlots) {
  G.setContextSlots(Cfg.ContextSlots);
  G.setHotPathMemo(Cfg.HotPathCaches);
  Ctx.reset();
}

NodeId SlicingProfiler::hit(const Instruction &I, uint32_t Domain) {
  InstrId Instr = I.getId();
  if (Instr < HitMemo.size()) {
    InstrMemo &Memo = HitMemo[Instr];
    if (Memo.Node != kNoNode && Memo.Domain == Domain) {
      ++G.freq(Memo.Node);
      return Memo.Node;
    }
  }
  NodeId Id = G.getOrCreate(Instr, Domain);
  uint64_t &F = G.freq(Id);
  if (F == 0) {
    DepGraph::Node &N = G.node(Id);
    N.ReadsHeap = I.readsHeap();
    N.WritesHeap = I.writesHeap();
    N.IsAlloc = I.isAlloc();
  }
  ++F;
  if (Instr < HitMemo.size())
    HitMemo[Instr] = {Domain, Id};
  return Id;
}

SlicingProfiler::ShadowObject &SlicingProfiler::ensureShadow(ObjId O) {
  if (HeapShadow.size() <= O)
    HeapShadow.resize(H->idBound());
  ShadowObject &SO = HeapShadow[O];
  size_t Need = H->obj(O).Slots.size();
  if (SO.Slots.size() < Need)
    SO.Slots.resize(Need, packSlot(kNoNode, Virgin));
  return SO;
}

void SlicingProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  M = &Mod;
  H = &Heap_;
  StaticShadow.assign(Mod.globals().size(), kNoNode);
  StaticStates.assign(Mod.globals().size(), Virgin);
  // Per-run shadow state resets so a profiler can be reused across runs
  // (accumulating one graph), matching a merge of single-run profilers.
  HeapShadow.clear();
  PendingRet = kNoNode;
  if (Cfg.HotPathCaches) {
    if (HitMemo.size() != Mod.getNumInstrs())
      HitMemo.assign(Mod.getNumInstrs(), InstrMemo{});
    G.reserveForRun(Mod.getNumInstrs());
  }
  Enabled = (Cfg.TrackedPhaseMask & 1) != 0;
}

void SlicingProfiler::onRunEnd() {}

void SlicingProfiler::onEntryFrame(const Function &F) {
  Ctx.reset();
  if (RegShadow.empty())
    RegShadow.emplace_back();
  RegShadow[0].assign(F.getNumRegs(), kNoNode);
  FrameDepth = 1;
  CurRegs = RegShadow[0].data();
  FuncStack.assign(1, F.getId());
  if (Enabled && Cfg.TrackCR) {
    seenContextsFor(F.getId()).insert(Ctx.current());
    LastCtxFunc = F.getId();
    LastCtxVal = Ctx.current();
  }
}

void SlicingProfiler::onPhase(int64_t Phase) {
  if (Phase < 0 || Phase >= 64) {
    Enabled = true;
    return;
  }
  Enabled = (Cfg.TrackedPhaseMask >> Phase) & 1;
}

void SlicingProfiler::onConst(const ConstInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  regs()[I.Dst] = hit(I, dom());
}

void SlicingProfiler::onAssign(const AssignInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onBin(const BinInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onUn(const UnInst &I) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onAlloc(const AllocInst &I, ObjId O) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  uint64_t Tag = G.makeTag(I.Site, dom());
  H->obj(O).Tag = Tag;
  G.noteAlloc(Tag, N);
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Alloc;
  Node.EffectLoc = {Tag, 0};
  ensureShadow(O);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Len], N);
  uint64_t Tag = G.makeTag(I.Site, dom());
  H->obj(O).Tag = Tag;
  G.noteAlloc(Tag, N);
  DepGraph::Node &Node = G.node(N);
  Node.Effect = EffectKind::Alloc;
  Node.EffectLoc = {Tag, 0};
  ShadowObject &SO = ensureShadow(O);
  SO.Len = N;
  G.noteWriter({Tag, kLenSlot}, N);
  regs()[I.Dst] = N;
}

void SlicingProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                                  const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  uint64_t &E = SO.Slots[I.Slot];
  edgeFrom(slotNode(E), N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  if (slotState(E) == WrittenUnread)
    E = packSlot(slotNode(E), WrittenRead);
  regs()[I.Dst] = N;
  noteLoad(N, H->obj(Base).Tag, I.Slot);
}

void SlicingProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                   const Value &Stored) {
  if (!Enabled) {
    uint64_t &E = ensureShadow(Base).Slots[I.Slot];
    E = packSlot(kNoNode, slotState(E));
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  ShadowObject &SO = ensureShadow(Base);
  uint64_t &E = SO.Slots[I.Slot];
  if (slotState(E) == WrittenUnread) {
    uint64_t Tag = H->obj(Base).Tag;
    if (Tag != kNoTag)
      ++Activity[HeapLoc{Tag, I.Slot}].Overwrites;
  }
  E = packSlot(N, WrittenUnread);
  noteStore(N, H->obj(Base).Tag, I.Slot, Stored);
}

void SlicingProfiler::noteStore(NodeId N, uint64_t Tag, FieldSlot Slot,
                                const Value &Stored) {
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  HeapLoc L{Tag, Slot};
  // Steady state: this node stored to this abstract location before, so
  // the writer map and reference edge are already recorded (the abstract
  // location's allocation node is stable for a given tag) — only the
  // activity counter and the reference-child set can change per event.
  bool Same = Cfg.HotPathCaches && Node.Effect == EffectKind::Store &&
              Node.EffectLoc == L;
  if (!Same) {
    Node.Effect = EffectKind::Store;
    Node.EffectLoc = L;
    G.noteWriter(L, N);
    if (!DepGraph::isStaticTag(Tag)) {
      NodeId Alloc = G.allocNodeFor(Tag);
      if (Alloc != kNoNode)
        G.addRefEdge(N, Alloc);
    }
  }
  LocationActivity &A = activityRef(N, L, Same);
  ++A.Writes;
  A.ReadsAfterLastWrite = 0;
  if (Stored.isRef()) {
    Node.StoredRef = true;
    if (!Stored.isNullRef()) {
      uint64_t ChildTag = H->obj(Stored.R).Tag;
      if (ChildTag != kNoTag)
        G.noteRefChild(L, ChildTag);
    }
  }
}

void SlicingProfiler::noteLoad(NodeId N, uint64_t Tag, FieldSlot Slot) {
  if (Tag == kNoTag)
    return;
  DepGraph::Node &Node = G.node(N);
  HeapLoc L{Tag, Slot};
  bool Same = Cfg.HotPathCaches && Node.Effect == EffectKind::Load &&
              Node.EffectLoc == L;
  if (!Same) {
    Node.Effect = EffectKind::Load;
    Node.EffectLoc = L;
    G.noteReader(L, N);
  }
  LocationActivity &A = activityRef(N, L, Same);
  ++A.Reads;
  ++A.ReadsAfterLastWrite;
}

LocationActivity &SlicingProfiler::activityRef(NodeId N, const HeapLoc &L,
                                               bool LocUnchanged) {
  if (!Cfg.HotPathCaches)
    return Activity[L];
  if (NodeAct.size() <= N)
    NodeAct.resize(std::max(G.numNodes(), size_t(N) + 1));
  ActMemo &M = NodeAct[N];
  if (LocUnchanged && M.Valid && M.Gen == Activity.generation())
    return Activity.valueAt(M.Slot);
  size_t Idx = Activity.insertSlot(L).first;
  M = {Activity.generation(), uint32_t(Idx), true};
  return Activity.valueAt(Idx);
}

SlicingProfiler::PredicateOutcome &SlicingProfiler::predRef(NodeId N) {
  if (!Cfg.HotPathCaches)
    return PredOutcomes[N];
  if (NodePred.size() <= N)
    NodePred.resize(std::max(G.numNodes(), size_t(N) + 1));
  ActMemo &M = NodePred[N];
  if (M.Valid && M.Gen == PredOutcomes.generation())
    return PredOutcomes.valueAt(M.Slot);
  size_t Idx = PredOutcomes.insertSlot(N).first;
  M = {PredOutcomes.generation(), uint32_t(Idx), true};
  return PredOutcomes.valueAt(Idx);
}

void SlicingProfiler::onLoadStatic(const LoadStaticInst &I, const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(StaticShadow[I.Global], N);
  if (StaticStates[I.Global] == WrittenUnread)
    StaticStates[I.Global] = WrittenRead;
  regs()[I.Dst] = N;
  noteLoad(N, DepGraph::makeStaticTag(I.Global), 0);
}

void SlicingProfiler::onStoreStatic(const StoreStaticInst &I,
                                    const Value &Stored) {
  if (!Enabled) {
    StaticShadow[I.Global] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  if (StaticStates[I.Global] == WrittenUnread)
    ++Activity[HeapLoc{DepGraph::makeStaticTag(I.Global), 0}].Overwrites;
  StaticShadow[I.Global] = N;
  StaticStates[I.Global] = WrittenUnread;
  noteStore(N, DepGraph::makeStaticTag(I.Global), 0, Stored);
}

void SlicingProfiler::onLoadElem(const LoadElemInst &I, ObjId Base,
                                 uint32_t Index, const Value &) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  uint64_t &E = SO.Slots[Index];
  edgeFrom(slotNode(E), N);
  // The element index is a use even under thin slicing (Section 2.1).
  edgeFrom(regs()[I.Index], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  if (slotState(E) == WrittenUnread)
    E = packSlot(slotNode(E), WrittenRead);
  regs()[I.Dst] = N;
  noteLoad(N, H->obj(Base).Tag, kElemSlot);
}

void SlicingProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                                  uint32_t Index, const Value &Stored) {
  if (!Enabled) {
    uint64_t &E = ensureShadow(Base).Slots[Index];
    E = packSlot(kNoNode, slotState(E));
    return;
  }
  NodeId N = hit(I, dom());
  edgeFrom(regs()[I.Src], N);
  edgeFrom(regs()[I.Index], N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  ShadowObject &SO = ensureShadow(Base);
  uint64_t &E = SO.Slots[Index];
  if (slotState(E) == WrittenUnread) {
    uint64_t Tag = H->obj(Base).Tag;
    if (Tag != kNoTag)
      ++Activity[HeapLoc{Tag, kElemSlot}].Overwrites;
  }
  E = packSlot(N, WrittenUnread);
  noteStore(N, H->obj(Base).Tag, kElemSlot, Stored);
}

void SlicingProfiler::onArrayLen(const ArrayLenInst &I, ObjId Base) {
  if (!Enabled) {
    regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, dom());
  ShadowObject &SO = ensureShadow(Base);
  edgeFrom(SO.Len, N);
  if (!Cfg.ThinSlicing)
    edgeFrom(regs()[I.Base], N);
  regs()[I.Dst] = N;
  noteLoad(N, H->obj(Base).Tag, kLenSlot);
}

void SlicingProfiler::onPredicate(const CondBrInst &I, bool Taken) {
  if (!Enabled)
    return;
  NodeId N = hit(I, kNoDomain);
  G.node(N).Consumer = ConsumerKind::Predicate;
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
  PredicateOutcome &O = predRef(N);
  if (Taken)
    ++O.TakenCount;
  else
    ++O.NotTakenCount;
}

void SlicingProfiler::onNativeCall(const NativeCallInst &I) {
  if (!Enabled) {
    if (I.Dst != kNoReg)
      regs()[I.Dst] = kNoNode;
    return;
  }
  NodeId N = hit(I, kNoDomain);
  G.node(N).Consumer = ConsumerKind::Native;
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = N;
}

void SlicingProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                                  ObjId Receiver) {
  bool Extends = Callee.isMethod() && Receiver != kNullObj;
  AllocSiteId Site = 0;
  if (Extends) {
    uint64_t Tag = H->obj(Receiver).Tag;
    // ALLOCID strips the context annotation, leaving the allocation site.
    Site = Tag == kNoTag ? 0 : G.tagSite(Tag);
  }
  Ctx.pushCall(Extends, Site);
  // Tracking stack: formal parameters receive the actuals' shadows (rule
  // METHOD ENTRY). The frame buffer at this depth is reused across calls.
  if (RegShadow.size() <= FrameDepth)
    RegShadow.emplace_back();
  std::vector<NodeId> &Params = RegShadow[FrameDepth];
  size_t NumArgs = I.Args.size();
  Params.resize(Callee.getNumRegs());
  const std::vector<NodeId> &Caller = RegShadow[FrameDepth - 1];
  for (size_t A = 0; A != NumArgs; ++A)
    Params[A] = Caller[I.Args[A]];
  // Only the non-parameter registers need clearing; the first NumArgs
  // were just overwritten with the actuals' shadows.
  std::fill(Params.begin() + NumArgs, Params.end(), kNoNode);
  ++FrameDepth;
  CurRegs = Params.data();
  FuncStack.push_back(Callee.getId());
  if (Enabled && Cfg.TrackCR) {
    uint64_t C = Ctx.current();
    FuncId F = Callee.getId();
    if (F != LastCtxFunc || C != LastCtxVal) {
      seenContextsFor(F).insert(C);
      LastCtxFunc = F;
      LastCtxVal = C;
    }
  }
}

void SlicingProfiler::onReturn(const ReturnInst &I) {
  PendingRet = kNoNode;
  if (Enabled && I.Src != kNoReg) {
    NodeId N = hit(I, dom());
    edgeFrom(regs()[I.Src], N);
    PendingRet = N;
  }
  if (FrameDepth > 1) {
    --FrameDepth;
    CurRegs = RegShadow[FrameDepth - 1].data();
    Ctx.popCall();
    FuncStack.pop_back();
  }
}

void SlicingProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = PendingRet;
  PendingRet = kNoNode;
}

void SlicingProfiler::onTrap(const Instruction &, TrapKind, Reg) {}

double SlicingProfiler::averageCR() const {
  if (!M)
    return 0;
  // Distinct static instructions present in the graph, per function.
  std::unordered_map<FuncId, std::unordered_set<InstrId>> InstrsByFunc;
  for (NodeId N = 0, E = NodeId(G.numNodes()); N != E; ++N) {
    InstrId I = G.node(N).Instr;
    InstrsByFunc[M->getInstrFunction(I)->getId()].insert(I);
  }
  double WeightedSum = 0;
  uint64_t TotalInstrs = 0;
  for (const auto &[Func, Instrs] : InstrsByFunc) {
    double CR = 0;
    if (Func < SeenContexts.size() && SeenContexts[Func].size() > 1) {
      const FlatSet<uint64_t> &Ctxs = SeenContexts[Func];
      std::unordered_set<uint32_t> UsedSlots;
      for (uint64_t C : Ctxs)
        UsedSlots.insert(Ctx.slotOf(C));
      double NumCtx = double(Ctxs.size());
      CR = (NumCtx - double(UsedSlots.size())) / (NumCtx - 1);
    }
    WeightedSum += CR * double(Instrs.size());
    TotalInstrs += Instrs.size();
  }
  return TotalInstrs == 0 ? 0 : WeightedSum / double(TotalInstrs);
}

uint64_t SlicingProfiler::distinctContexts() const {
  uint64_t Sum = 0;
  for (const FlatSet<uint64_t> &Ctxs : SeenContexts)
    Sum += Ctxs.size();
  return Sum;
}

void SlicingProfiler::accountStats(obs::MetricsRegistry &R) const {
  using obs::Unit;

  // Gcost growth (Table 1's N and M columns, live).
  R.set(R.gauge("gcost.nodes"), G.numNodes());
  R.set(R.gauge("gcost.edges"), G.numEdges());
  R.set(R.gauge("gcost.ref_edges"), G.numRefEdges());
  R.set(R.gauge("gcost.tracked_instances"), G.totalFreq());
  R.set(R.gauge("gcost.distinct_contexts"), distinctContexts());
  // CR is a [0,1] ratio; exported in parts per million so the registry
  // stays integral.
  R.set(R.gauge("gcost.cr_ppm"), uint64_t(averageCR() * 1e6));

  // Heap-activity totals (the overwrite client's raw feed).
  uint64_t Writes = 0, Reads = 0, Overwrites = 0;
  for (const auto &Entry : Activity) {
    Writes += Entry.second.Writes;
    Reads += Entry.second.Reads;
    Overwrites += Entry.second.Overwrites;
  }
  R.set(R.gauge("heap.writes"), Writes);
  R.set(R.gauge("heap.reads"), Reads);
  R.set(R.gauge("heap.overwrites"), Overwrites);
  R.set(R.gauge("heap.tracked_locations"), Activity.size());

  uint64_t Taken = 0, NotTaken = 0;
  for (const auto &Entry : PredOutcomes) {
    Taken += Entry.second.TakenCount;
    NotTaken += Entry.second.NotTakenCount;
  }
  R.set(R.gauge("predicates.taken"), Taken);
  R.set(R.gauge("predicates.not_taken"), NotTaken);

  // Memory accounting: retained graph vs. interning tables vs. shadow
  // structures vs. hot-path memos — each its own line, because they have
  // different owners and different scaling behavior.
  DepGraph::MemoryFootprint FP = G.memoryFootprint();
  R.set(R.gauge("mem.gcost.node_bytes", Unit::Bytes), FP.NodeBytes);
  R.set(R.gauge("mem.gcost.edge_bytes", Unit::Bytes), FP.EdgeBytes);
  R.set(R.gauge("mem.gcost.locmap_bytes", Unit::Bytes), FP.LocMapBytes);
  R.set(R.gauge("mem.gcost.intern_bytes", Unit::Bytes),
        G.internTableBytes());

  size_t HeapBytes = HeapShadow.capacity() * sizeof(ShadowObject);
  uint64_t ShadowSlots = 0;
  obs::MetricId SlotsHist = R.histogram("shadow.object_slots");
  R.clear(SlotsHist);
  for (const ShadowObject &SO : HeapShadow) {
    HeapBytes += SO.Slots.capacity() * sizeof(uint64_t);
    ShadowSlots += SO.Slots.size();
    if (!SO.Slots.empty())
      R.observe(SlotsHist, SO.Slots.size());
  }
  R.set(R.gauge("mem.shadow.heap_bytes", Unit::Bytes), HeapBytes);
  R.set(R.gauge("shadow.heap_objects"), HeapShadow.size());
  R.set(R.gauge("shadow.heap_slots"), ShadowSlots);

  size_t RegBytes = RegShadow.capacity() * sizeof(std::vector<NodeId>);
  for (const std::vector<NodeId> &F : RegShadow)
    RegBytes += F.capacity() * sizeof(NodeId);
  R.set(R.gauge("mem.shadow.reg_bytes", Unit::Bytes), RegBytes);
  R.set(R.gauge("mem.shadow.static_bytes", Unit::Bytes),
        StaticShadow.capacity() * sizeof(NodeId) +
            StaticStates.capacity() * sizeof(uint8_t));

  size_t MemoBytes = HitMemo.capacity() * sizeof(InstrMemo) +
                     NodeAct.capacity() * sizeof(ActMemo) +
                     NodePred.capacity() * sizeof(ActMemo);
  size_t CtxBytes = SeenContexts.capacity() * sizeof(FlatSet<uint64_t>);
  for (const FlatSet<uint64_t> &S : SeenContexts)
    CtxBytes += S.memoryBytes();
  R.set(R.gauge("mem.profiler.memo_bytes", Unit::Bytes), MemoBytes);
  R.set(R.gauge("mem.profiler.context_bytes", Unit::Bytes), CtxBytes);
  R.set(R.gauge("mem.profiler.activity_bytes", Unit::Bytes),
        Activity.memoryBytes() + PredOutcomes.memoryBytes());

  // Node-frequency distribution: how skewed the coverage is (log2 buckets).
  obs::MetricId FreqHist = R.histogram("gcost.node_freq");
  R.clear(FreqHist);
  for (NodeId N = 0, E = NodeId(G.numNodes()); N != E; ++N)
    R.observe(FreqHist, G.freq(N));
}

void SlicingProfiler::mergeFrom(const SlicingProfiler &O) {
  assert(Cfg.ContextSlots == O.Cfg.ContextSlots &&
         "merging profiles built with different context-slot counts");
  std::vector<NodeId> Remap = G.mergeFrom(O.G);
  for (const auto &[Node, Outcome] : O.PredOutcomes) {
    PredicateOutcome &Mine = PredOutcomes[Remap[Node]];
    Mine.TakenCount += Outcome.TakenCount;
    Mine.NotTakenCount += Outcome.NotTakenCount;
  }
  for (const auto &[Loc, Act] : O.Activity) {
    LocationActivity &Mine = Activity[Loc];
    // Sequential-concatenation semantics: a write in the later shard
    // resets the tail-read counter, so its tail count stands alone.
    Mine.ReadsAfterLastWrite =
        Act.Writes != 0 ? Act.ReadsAfterLastWrite
                        : Mine.ReadsAfterLastWrite + Act.ReadsAfterLastWrite;
    Mine.Writes += Act.Writes;
    Mine.Reads += Act.Reads;
    Mine.Overwrites += Act.Overwrites;
  }
  if (SeenContexts.size() < O.SeenContexts.size())
    SeenContexts.resize(O.SeenContexts.size());
  for (FuncId F = 0; F != FuncId(O.SeenContexts.size()); ++F)
    for (uint64_t C : O.SeenContexts[F])
      SeenContexts[F].insert(C);
  if (!M)
    M = O.M;
  // The hit memo refers to this graph's node ids, which a merge never
  // renumbers, so it stays valid.
}
