//===- profiling/CopyProfiler.h - Extended copy profiling ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended copy profiling client of Section 2.1 / Figure 2(c):
/// abstract slicing over the domain O x P (allocation site x field) plus a
/// bottom element for values that did not originate from a field. Copy
/// instructions are annotated with the field their value came from, so a
/// chain O1.f -> stack copies -> O3.f can be recovered *including* the
/// intermediate stack hops (unlike the flat copy-graph of prior work).
///
/// A pipeline stage attached to the SlicingProfiler substrate: allocation
/// sites are read from the heap object tags the substrate writes
/// (environment P), instead of a duplicate per-object site table, and the
/// shadow-location machinery is the shared ShadowMachine. Compose it after
/// the substrate (runtime/ComposedProfiler.h) so tags exist by the time a
/// load or store touches the object. Objects allocated while the substrate
/// had tracking gated off carry no tag and take no part in chains.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_COPYPROFILER_H
#define LUD_PROFILING_COPYPROFILER_H

#include "profiling/DepGraph.h"
#include "profiling/ShadowMachine.h"
#include "profiling/SlicingProfiler.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <unordered_map>
#include <vector>

namespace lud {

class Module;

/// Interned origin: the ⊥ element is 0 ("not from any field").
using OriginId = uint32_t;
inline constexpr OriginId kBottomOrigin = 0;

class CopyProfiler {
public:
  /// \p Substrate is the slicing profiler whose heap tags provide the
  /// allocation sites; it must run in the same pipeline, before this stage.
  explicit CopyProfiler(const SlicingProfiler &Substrate) : Sub(&Substrate) {}

  DepGraph &graph() { return G; }
  const DepGraph &graph() const { return G; }

  /// A completed heap-to-heap copy: data read from From was stored,
  /// unmodified, into To. Count is the number of such element copies.
  struct CopyChain {
    HeapLoc From;
    HeapLoc To;
    uint64_t Count = 0;
    /// Node performing the final store (entry point for walking the
    /// intermediate stack hops backward).
    NodeId StoreNode = kNoNode;
  };
  const std::vector<CopyChain> &chains() const { return Chains; }

  /// Total executed copy-instruction instances (assigns + loads + stores
  /// moving field-originated data without computation).
  uint64_t copyInstances() const { return CopyCount; }

  /// Abstract location for the origin id (inverse of interning);
  /// kBottomOrigin maps to a zero location.
  HeapLoc originLoc(OriginId O) const {
    return O == kBottomOrigin ? HeapLoc{0, 0} : OriginTable[O - 1];
  }

  /// Walks backward from a chain's store node through nodes with the same
  /// origin annotation, returning the intermediate copy instructions
  /// (store first, the load that started the chain last).
  std::vector<InstrId> stackHops(const CopyChain &Chain) const;

  /// Writes this client's state-derived telemetry (`copy.*` gauges) into
  /// \p R. Idempotent set()s; see SlicingProfiler::accountStats.
  void accountStats(obs::MetricsRegistry &R) const;

  /// Merges another profiler's results into this one, treating \p O as the
  /// later of two sequential runs: graphs fold via DepGraph::mergeFrom,
  /// copy-instance counts sum, and chains merge by (from, to) with counts
  /// summed. Both profilers must come from runs of the same module under
  /// the same configuration (the parallel driver's shards), so that origin
  /// interning — which node domains embed — agrees between them.
  void mergeFrom(const CopyProfiler &O);

  // Profiler hooks.
  void onRunStart(const Module &Mod, Heap &H);
  void onRunEnd() {}
  void onEntryFrame(const Function &F);
  void onPhase(int64_t) {}
  void onConst(const ConstInst &I);
  void onAssign(const AssignInst &I);
  void onBin(const BinInst &I);
  void onUn(const UnInst &I);
  void onAlloc(const AllocInst &I, ObjId O);
  void onAllocArray(const AllocArrayInst &I, ObjId O);
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded);
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored);
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded);
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored);
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded);
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored);
  void onArrayLen(const ArrayLenInst &I, ObjId Base);
  void onPredicate(const CondBrInst &I, bool Taken);
  void onNativeCall(const NativeCallInst &I);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);
  void onReturn(const ReturnInst &I);
  void onReturnBound(Reg Dst);
  void onTrap(const Instruction &, TrapKind, Reg) {}

private:
  /// Shadow payload: the copy-graph node that produced the location's
  /// value plus the field the value originated from.
  struct ShadowVal {
    NodeId N = kNoNode;
    OriginId Origin = kBottomOrigin;
  };

  ShadowVal *regs() { return Sh.regs(); }

  OriginId intern(const HeapLoc &L);
  NodeId hit(const Instruction &I, OriginId Origin);
  void edgeFrom(const ShadowVal &Src, NodeId To) {
    if (Src.N != kNoNode)
      G.addEdge(Src.N, To);
  }
  /// Produces a non-copy (bottom) value into Dst, consuming Srcs.
  template <typename... Srcs>
  void compute(const Instruction &I, Reg Dst, Srcs... Ss) {
    NodeId N = hit(I, kBottomOrigin);
    (edgeFrom(regs()[Ss], N), ...);
    regs()[Dst] = {N, kBottomOrigin};
  }

  /// Site of the object's allocation, recovered from the heap tag the
  /// substrate's ALLOC rule wrote (kNoAllocSite when the object was
  /// allocated untracked).
  AllocSiteId siteOf(ObjId O) const {
    uint64_t Tag = H->obj(O).Tag;
    if (Tag == kNoTag || DepGraph::isStaticTag(Tag))
      return kNoAllocSite;
    return Sub->graph().tagSite(Tag);
  }

  static uint64_t chainKey(const HeapLoc &From, const HeapLoc &To) {
    return (From.Tag * 4096 + From.Slot % 4096) * 2654435761ULL ^
           (To.Tag * 4096 + To.Slot % 4096);
  }
  void recordChain(OriginId From, const HeapLoc &To, NodeId Store);

  const SlicingProfiler *Sub = nullptr;
  DepGraph G;
  Heap *H = nullptr;
  ShadowMachine<ShadowVal> Sh;
  uint64_t CopyCount = 0;

  std::vector<HeapLoc> OriginTable;
  std::unordered_map<uint64_t, OriginId> OriginIds;
  std::vector<CopyChain> Chains;
  std::unordered_map<uint64_t, size_t> ChainIndex;
};

} // namespace lud

#endif // LUD_PROFILING_COPYPROFILER_H
