//===- profiling/FlatProfiler.h - Lightweight method profiler --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lightweight first-stage profiler of Section 4.1's tuning workflow
/// ("it is possible for a programmer to identify suspicious program
/// components using lightweight profiling tools such as a method execution
/// time profiler or an object allocation profiler, and run our tool on the
/// selected components"): per-method invocation and instruction counts plus
/// per-site allocation counts, at a small fraction of the slicing
/// profiler's cost. Its output picks the phases/components worth deep
/// cost-benefit tracking.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_FLATPROFILER_H
#define LUD_PROFILING_FLATPROFILER_H

#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <cstddef>
#include <string>
#include <vector>

namespace lud {

class Module;

class FlatProfiler : public NoopProfiler {
public:
  struct MethodRow {
    FuncId Func = kNoFunc;
    std::string Name;
    uint64_t Invocations = 0;
    /// Instructions executed in the method's own frames (callees
    /// excluded).
    uint64_t OwnInstrs = 0;
  };
  struct AllocRow {
    AllocSiteId Site = kNoAllocSite;
    std::string Description;
    uint64_t Objects = 0;
  };

  /// Methods sorted by own instruction count, descending.
  std::vector<MethodRow> hotMethods(const Module &M) const;
  /// Allocation sites sorted by object count, descending.
  std::vector<AllocRow> hotAllocSites(const Module &M) const;
  /// Per-phase executed instruction counts (index = phase id; phases >= 64
  /// are clamped into the last bucket).
  const std::vector<uint64_t> &phaseInstrs() const { return PhaseCounts; }

  // Hook overrides: one counter bump per event; everything else stays a
  // no-op from NoopProfiler. The per-instruction hooks below cover every
  // instruction kind that produces or moves a value; control flow is
  // charged through onPredicate.
  void onRunStart(const Module &Mod, Heap &H);
  void onEntryFrame(const Function &F);
  void onPhase(int64_t Phase);
  void onConst(const ConstInst &) { bump(); }
  void onAssign(const AssignInst &) { bump(); }
  void onBin(const BinInst &) { bump(); }
  void onUn(const UnInst &) { bump(); }
  void onAlloc(const AllocInst &I, ObjId) {
    bump();
    ++AllocCounts[I.Site];
  }
  void onAllocArray(const AllocArrayInst &I, ObjId) {
    bump();
    ++AllocCounts[I.Site];
  }
  void onLoadField(const LoadFieldInst &, ObjId, const Value &) { bump(); }
  void onStoreField(const StoreFieldInst &, ObjId, const Value &) { bump(); }
  void onLoadStatic(const LoadStaticInst &, const Value &) { bump(); }
  void onStoreStatic(const StoreStaticInst &, const Value &) { bump(); }
  void onLoadElem(const LoadElemInst &, ObjId, uint32_t, const Value &) {
    bump();
  }
  void onStoreElem(const StoreElemInst &, ObjId, uint32_t, const Value &) {
    bump();
  }
  void onArrayLen(const ArrayLenInst &, ObjId) { bump(); }
  void onPredicate(const CondBrInst &, bool) { bump(); }
  void onNativeCall(const NativeCallInst &) { bump(); }
  void onCallEnter(const CallInst &, const Function &Callee, ObjId);
  void onReturn(const ReturnInst &);

private:
  void bump() {
    ++InstrCounts[FuncStack.back()];
    ++PhaseCounts[CurPhase];
  }

  std::vector<uint64_t> InstrCounts; // per FuncId
  std::vector<uint64_t> InvokeCounts;
  std::vector<uint64_t> AllocCounts; // per AllocSiteId
  std::vector<uint64_t> PhaseCounts;
  std::vector<FuncId> FuncStack;
  size_t CurPhase = 0;
};

} // namespace lud

#endif // LUD_PROFILING_FLATPROFILER_H
