//===- profiling/Context.h - Object-sensitive dynamic contexts -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic calling contexts for Gcost (Section 2.2): the chain of receiver
/// allocation sites on the call stack, encoded probabilistically with the
/// Bond-McKinley recurrence g_i = 3*g_{i-1} + o_i and mapped into s slots
/// with a mod. The full encoded value g is kept per frame so the conflict
/// ratio CR can be measured afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_CONTEXT_H
#define LUD_PROFILING_CONTEXT_H

#include "ir/Ids.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lud {

class ContextEncoder {
public:
  explicit ContextEncoder(uint32_t Slots) : Slots(Slots) {
    assert(Slots > 0 && "need at least one context slot");
  }

  /// Starts a run: the entry frame has the empty chain.
  void reset() {
    Stack.clear();
    Stack.push_back(0);
    SlotStack.clear();
    SlotStack.push_back(0);
  }

  /// Enters a callee. Instance methods extend the chain with the receiver's
  /// allocation site; static calls keep the caller's chain (Figure 4,
  /// METHOD ENTRY: the empty string is concatenated). Allocation sites are
  /// offset by one so the empty chain (g = 0) is distinguishable from a
  /// chain of site 0.
  void pushCall(bool ExtendsChain, AllocSiteId ReceiverSite) {
    uint64_t G = Stack.back();
    uint32_t S = SlotStack.back();
    if (ExtendsChain) {
      G = 3 * G + uint64_t(ReceiverSite) + 1;
      S = uint32_t(G % Slots);
    }
    Stack.push_back(G);
    SlotStack.push_back(S);
  }

  void popCall() {
    assert(Stack.size() > 1 && "context stack underflow");
    Stack.pop_back();
    SlotStack.pop_back();
  }

  /// Encoded context value g of the current frame.
  uint64_t current() const { return Stack.back(); }
  /// h(c): the bounded-domain element, i.e. g mod s. The slots are carried
  /// on a parallel stack so the (non-power-of-two in general) modulo is
  /// paid once per chain-extending call, not once per profiler event.
  uint32_t slot() const { return SlotStack.back(); }
  uint32_t numSlots() const { return Slots; }
  size_t depth() const { return Stack.size(); }

  /// Slot for an arbitrary encoded value (CR reporting).
  uint32_t slotOf(uint64_t G) const { return uint32_t(G % Slots); }

private:
  uint32_t Slots;
  std::vector<uint64_t> Stack;
  std::vector<uint32_t> SlotStack;
};

} // namespace lud

#endif // LUD_PROFILING_CONTEXT_H
