//===- profiling/CopyProfiler.cpp - Extended copy profiling ----------------===//

#include "profiling/CopyProfiler.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "obs/Metrics.h"

#include <cassert>

using namespace lud;

OriginId CopyProfiler::intern(const HeapLoc &L) {
  uint64_t Key = L.Tag * 4096 + L.Slot % 4096;
  auto [It, Inserted] = OriginIds.try_emplace(Key, OriginId(0));
  if (Inserted) {
    OriginTable.push_back(L);
    It->second = OriginId(OriginTable.size()); // 1-based; 0 is bottom.
  }
  return It->second;
}

NodeId CopyProfiler::hit(const Instruction &I, OriginId Origin) {
  NodeId N = G.getOrCreate(I.getId(), Origin);
  ++G.freq(N);
  return N;
}

void CopyProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  H = &Heap_;
  Sh.startRun(Heap_, Mod.globals().size());
}

void CopyProfiler::onEntryFrame(const Function &F) {
  Sh.enterEntry(F.getNumRegs());
}

void CopyProfiler::onConst(const ConstInst &I) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
}

void CopyProfiler::onAssign(const AssignInst &I) {
  // A register copy keeps the origin alive: this is an intermediate stack
  // hop of a copy chain.
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  regs()[I.Dst] = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onBin(const BinInst &I) { compute(I, I.Dst, I.Lhs, I.Rhs); }

void CopyProfiler::onUn(const UnInst &I) { compute(I, I.Dst, I.Src); }

void CopyProfiler::onAlloc(const AllocInst &I, ObjId O) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
  Sh.objShadow(O);
}

void CopyProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  NodeId N = hit(I, kBottomOrigin);
  edgeFrom(regs()[I.Len], N);
  regs()[I.Dst] = {N, kBottomOrigin};
  Sh.objShadow(O);
}

void CopyProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                               const Value &) {
  // The loaded value originates from this field: a chain starts here.
  AllocSiteId Site = siteOf(Base);
  OriginId Origin =
      Site == kNoAllocSite ? kBottomOrigin : intern(HeapLoc{Site, I.Slot});
  NodeId N = hit(I, Origin);
  edgeFrom(Sh.objShadow(Base)[I.Slot], N);
  regs()[I.Dst] = {N, Origin};
  if (Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  Sh.objShadow(Base)[I.Slot] = {N, Src.Origin};
  AllocSiteId Site = siteOf(Base);
  if (Src.Origin != kBottomOrigin && Site != kNoAllocSite) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{Site, I.Slot}, N);
  }
}

void CopyProfiler::onLoadStatic(const LoadStaticInst &I, const Value &) {
  OriginId Origin = intern(HeapLoc{kStaticTagBase + I.Global, 0});
  NodeId N = hit(I, Origin);
  edgeFrom(Sh.staticAt(I.Global), N);
  regs()[I.Dst] = {N, Origin};
  ++CopyCount;
}

void CopyProfiler::onStoreStatic(const StoreStaticInst &I, const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  Sh.staticAt(I.Global) = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{kStaticTagBase + I.Global, 0}, N);
  }
}

void CopyProfiler::onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                              const Value &) {
  AllocSiteId Site = siteOf(Base);
  OriginId Origin =
      Site == kNoAllocSite ? kBottomOrigin : intern(HeapLoc{Site, kElemSlot});
  NodeId N = hit(I, Origin);
  edgeFrom(Sh.objShadow(Base)[Index], N);
  regs()[I.Dst] = {N, Origin};
  if (Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                               uint32_t Index, const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  Sh.objShadow(Base)[Index] = {N, Src.Origin};
  AllocSiteId Site = siteOf(Base);
  if (Src.Origin != kBottomOrigin && Site != kNoAllocSite) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{Site, kElemSlot}, N);
  }
}

void CopyProfiler::onArrayLen(const ArrayLenInst &I, ObjId) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
}

void CopyProfiler::onPredicate(const CondBrInst &I, bool) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Predicate;
  ++G.freq(N);
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
}

void CopyProfiler::onNativeCall(const NativeCallInst &I) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Native;
  ++G.freq(N);
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = {N, kBottomOrigin};
}

void CopyProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                               ObjId) {
  Sh.pushFrame(I, Callee.getNumRegs());
}

void CopyProfiler::onReturn(const ReturnInst &I) {
  Sh.Pending = ShadowVal();
  if (I.Src != kNoReg) {
    ShadowVal Src = regs()[I.Src];
    NodeId N = hit(I, Src.Origin);
    edgeFrom(Src, N);
    Sh.Pending = {N, Src.Origin};
    if (Src.Origin != kBottomOrigin)
      ++CopyCount;
  }
  Sh.popFrame();
}

void CopyProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = Sh.Pending;
  Sh.Pending = ShadowVal();
}

void CopyProfiler::recordChain(OriginId From, const HeapLoc &To,
                               NodeId Store) {
  const HeapLoc &FromLoc = originLoc(From);
  auto [It, Inserted] = ChainIndex.try_emplace(chainKey(FromLoc, To),
                                               Chains.size());
  if (Inserted)
    Chains.push_back({FromLoc, To, 0, Store});
  ++Chains[It->second].Count;
}

void CopyProfiler::accountStats(obs::MetricsRegistry &R) const {
  R.set(R.gauge("copy.instances"), CopyCount);
  R.set(R.gauge("copy.chains"), Chains.size());
  uint64_t ChainCopies = 0;
  for (const CopyChain &C : Chains)
    ChainCopies += C.Count;
  R.set(R.gauge("copy.chain_copies"), ChainCopies);
  R.set(R.gauge("copy.origins"), OriginTable.size());
  R.set(R.gauge("copy.graph.nodes"), G.numNodes());
  R.set(R.gauge("copy.graph.edges"), G.numEdges());
  R.set(R.gauge("mem.copy.graph_bytes", obs::Unit::Bytes),
        G.memoryFootprint().total() + G.internTableBytes());
}

void CopyProfiler::mergeFrom(const CopyProfiler &O) {
  std::vector<NodeId> Remap = G.mergeFrom(O.G);
  CopyCount += O.CopyCount;
  // Origins must intern to the same ids here as in O: node domains embed
  // them. Deterministic shards of one module intern in the same order, so
  // this re-interning is the identity (checked), merely extending this
  // table with origins O saw first.
  for (size_t I = 0; I != O.OriginTable.size(); ++I) {
    OriginId R = intern(O.OriginTable[I]);
    assert(R == OriginId(I + 1) &&
           "merged profilers interned origins in different orders");
    (void)R;
  }
  for (const CopyChain &C : O.Chains) {
    auto [It, Inserted] = ChainIndex.try_emplace(chainKey(C.From, C.To),
                                                 Chains.size());
    if (Inserted)
      Chains.push_back({C.From, C.To, 0, Remap[C.StoreNode]});
    Chains[It->second].Count += C.Count;
  }
}

std::vector<InstrId> CopyProfiler::stackHops(const CopyChain &Chain) const {
  std::vector<InstrId> Hops;
  // Follow same-origin predecessors from the final store back to the load
  // that started the chain.
  OriginId Origin = G.node(Chain.StoreNode).Domain;
  NodeId N = Chain.StoreNode;
  std::vector<bool> Seen(G.numNodes(), false);
  while (N != kNoNode && !Seen[N]) {
    Seen[N] = true;
    Hops.push_back(G.node(N).Instr);
    NodeId Next = kNoNode;
    for (NodeId P : G.node(N).In) {
      if (G.node(P).Domain == Origin) {
        Next = P;
        break;
      }
    }
    N = Next;
  }
  return Hops;
}
