//===- profiling/CopyProfiler.cpp - Extended copy profiling ----------------===//

#include "profiling/CopyProfiler.h"

#include "ir/Module.h"

using namespace lud;

OriginId CopyProfiler::intern(const HeapLoc &L) {
  uint64_t Key = L.Tag * 4096 + L.Slot % 4096;
  auto [It, Inserted] = OriginIds.try_emplace(Key, OriginId(0));
  if (Inserted) {
    OriginTable.push_back(L);
    It->second = OriginId(OriginTable.size()); // 1-based; 0 is bottom.
  }
  return It->second;
}

NodeId CopyProfiler::hit(const Instruction &I, OriginId Origin) {
  NodeId N = G.getOrCreate(I.getId(), Origin);
  ++G.freq(N);
  return N;
}

std::vector<CopyProfiler::ShadowVal> &CopyProfiler::objShadow(ObjId O) {
  if (HeapShadow.size() <= O) {
    HeapShadow.resize(H->idBound());
    Sites.resize(H->idBound(), kNoAllocSite);
  }
  std::vector<ShadowVal> &S = HeapShadow[O];
  size_t Need = H->obj(O).Slots.size();
  if (S.size() < Need)
    S.resize(Need);
  return S;
}

void CopyProfiler::onRunStart(const Module &Mod, Heap &Heap_) {
  H = &Heap_;
  StaticShadow.assign(Mod.globals().size(), ShadowVal());
}

void CopyProfiler::onEntryFrame(const Function &F) {
  RegShadow.clear();
  RegShadow.emplace_back(F.getNumRegs());
}

void CopyProfiler::onConst(const ConstInst &I) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
}

void CopyProfiler::onAssign(const AssignInst &I) {
  // A register copy keeps the origin alive: this is an intermediate stack
  // hop of a copy chain.
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  regs()[I.Dst] = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onBin(const BinInst &I) { compute(I, I.Dst, I.Lhs, I.Rhs); }

void CopyProfiler::onUn(const UnInst &I) { compute(I, I.Dst, I.Src); }

void CopyProfiler::onAlloc(const AllocInst &I, ObjId O) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
  objShadow(O);
  Sites[O] = I.Site;
}

void CopyProfiler::onAllocArray(const AllocArrayInst &I, ObjId O) {
  NodeId N = hit(I, kBottomOrigin);
  edgeFrom(regs()[I.Len], N);
  regs()[I.Dst] = {N, kBottomOrigin};
  objShadow(O);
  Sites[O] = I.Site;
}

void CopyProfiler::onLoadField(const LoadFieldInst &I, ObjId Base,
                               const Value &) {
  // The loaded value originates from this field: a chain starts here.
  OriginId Origin = siteOf(Base) == kNoAllocSite
                        ? kBottomOrigin
                        : intern(HeapLoc{siteOf(Base), I.Slot});
  NodeId N = hit(I, Origin);
  edgeFrom(objShadow(Base)[I.Slot], N);
  regs()[I.Dst] = {N, Origin};
  if (Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onStoreField(const StoreFieldInst &I, ObjId Base,
                                const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  objShadow(Base)[I.Slot] = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin && siteOf(Base) != kNoAllocSite) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{siteOf(Base), I.Slot}, N);
  }
}

void CopyProfiler::onLoadStatic(const LoadStaticInst &I, const Value &) {
  OriginId Origin = intern(HeapLoc{kStaticTagBase + I.Global, 0});
  NodeId N = hit(I, Origin);
  edgeFrom(StaticShadow[I.Global], N);
  regs()[I.Dst] = {N, Origin};
  ++CopyCount;
}

void CopyProfiler::onStoreStatic(const StoreStaticInst &I, const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  StaticShadow[I.Global] = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{kStaticTagBase + I.Global, 0}, N);
  }
}

void CopyProfiler::onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                              const Value &) {
  OriginId Origin = siteOf(Base) == kNoAllocSite
                        ? kBottomOrigin
                        : intern(HeapLoc{siteOf(Base), kElemSlot});
  NodeId N = hit(I, Origin);
  edgeFrom(objShadow(Base)[Index], N);
  regs()[I.Dst] = {N, Origin};
  if (Origin != kBottomOrigin)
    ++CopyCount;
}

void CopyProfiler::onStoreElem(const StoreElemInst &I, ObjId Base,
                               uint32_t Index, const Value &) {
  ShadowVal Src = regs()[I.Src];
  NodeId N = hit(I, Src.Origin);
  edgeFrom(Src, N);
  objShadow(Base)[Index] = {N, Src.Origin};
  if (Src.Origin != kBottomOrigin && siteOf(Base) != kNoAllocSite) {
    ++CopyCount;
    recordChain(Src.Origin, HeapLoc{siteOf(Base), kElemSlot}, N);
  }
}

void CopyProfiler::onArrayLen(const ArrayLenInst &I, ObjId) {
  regs()[I.Dst] = {hit(I, kBottomOrigin), kBottomOrigin};
}

void CopyProfiler::onPredicate(const CondBrInst &I, bool) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Predicate;
  ++G.freq(N);
  edgeFrom(regs()[I.Lhs], N);
  edgeFrom(regs()[I.Rhs], N);
}

void CopyProfiler::onNativeCall(const NativeCallInst &I) {
  NodeId N = G.getOrCreate(I.getId(), kNoDomain);
  DepGraph::Node &Node = G.node(N);
  Node.Consumer = ConsumerKind::Native;
  ++G.freq(N);
  for (Reg A : I.Args)
    edgeFrom(regs()[A], N);
  if (I.Dst != kNoReg)
    regs()[I.Dst] = {N, kBottomOrigin};
}

void CopyProfiler::onCallEnter(const CallInst &I, const Function &Callee,
                               ObjId) {
  std::vector<ShadowVal> Params(Callee.getNumRegs());
  const std::vector<ShadowVal> &Caller = regs();
  for (size_t A = 0, E = I.Args.size(); A != E; ++A)
    Params[A] = Caller[I.Args[A]];
  RegShadow.push_back(std::move(Params));
}

void CopyProfiler::onReturn(const ReturnInst &I) {
  PendingRet = ShadowVal();
  if (I.Src != kNoReg) {
    ShadowVal Src = regs()[I.Src];
    NodeId N = hit(I, Src.Origin);
    edgeFrom(Src, N);
    PendingRet = {N, Src.Origin};
    if (Src.Origin != kBottomOrigin)
      ++CopyCount;
  }
  if (RegShadow.size() > 1)
    RegShadow.pop_back();
}

void CopyProfiler::onReturnBound(Reg Dst) {
  if (Dst != kNoReg)
    regs()[Dst] = PendingRet;
  PendingRet = ShadowVal();
}

void CopyProfiler::recordChain(OriginId From, const HeapLoc &To,
                               NodeId Store) {
  const HeapLoc &FromLoc = originLoc(From);
  uint64_t Key = (FromLoc.Tag * 4096 + FromLoc.Slot % 4096) * 2654435761ULL ^
                 (To.Tag * 4096 + To.Slot % 4096);
  auto [It, Inserted] = ChainIndex.try_emplace(Key, Chains.size());
  if (Inserted)
    Chains.push_back({FromLoc, To, 0, Store});
  ++Chains[It->second].Count;
}

std::vector<InstrId> CopyProfiler::stackHops(const CopyChain &Chain) const {
  std::vector<InstrId> Hops;
  // Follow same-origin predecessors from the final store back to the load
  // that started the chain.
  OriginId Origin = G.node(Chain.StoreNode).Domain;
  NodeId N = Chain.StoreNode;
  std::vector<bool> Seen(G.numNodes(), false);
  while (N != kNoNode && !Seen[N]) {
    Seen[N] = true;
    Hops.push_back(G.node(N).Instr);
    NodeId Next = kNoNode;
    for (NodeId P : G.node(N).In) {
      if (G.node(P).Domain == Origin) {
        Next = P;
        break;
      }
    }
    N = Next;
  }
  return Hops;
}
