//===- profiling/FlatProfiler.cpp - Lightweight method profiler ------------===//

#include "profiling/FlatProfiler.h"

#include "ir/Module.h"

#include <algorithm>

using namespace lud;

namespace {
constexpr size_t kPhaseBuckets = 64;
} // namespace

void FlatProfiler::onRunStart(const Module &Mod, Heap &) {
  InstrCounts.assign(Mod.functions().size(), 0);
  InvokeCounts.assign(Mod.functions().size(), 0);
  AllocCounts.assign(Mod.getNumAllocSites(), 0);
  PhaseCounts.assign(kPhaseBuckets, 0);
  CurPhase = 0;
}

void FlatProfiler::onEntryFrame(const Function &F) {
  FuncStack.assign(1, F.getId());
  ++InvokeCounts[F.getId()];
}

void FlatProfiler::onPhase(int64_t Phase) {
  CurPhase = Phase < 0 ? 0
                       : std::min(size_t(Phase), kPhaseBuckets - 1);
}

void FlatProfiler::onCallEnter(const CallInst &, const Function &Callee,
                               ObjId) {
  // The call instruction itself is charged to the caller.
  bump();
  FuncStack.push_back(Callee.getId());
  ++InvokeCounts[Callee.getId()];
}

void FlatProfiler::onReturn(const ReturnInst &) {
  bump();
  if (FuncStack.size() > 1)
    FuncStack.pop_back();
}

std::vector<FlatProfiler::MethodRow>
FlatProfiler::hotMethods(const Module &M) const {
  std::vector<MethodRow> Rows;
  for (FuncId F = 0; F != FuncId(InstrCounts.size()); ++F) {
    if (InvokeCounts[F] == 0)
      continue;
    Rows.push_back({F, M.getFunction(F)->getName(), InvokeCounts[F],
                    InstrCounts[F]});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const MethodRow &A, const MethodRow &B) {
              if (A.OwnInstrs != B.OwnInstrs)
                return A.OwnInstrs > B.OwnInstrs;
              return A.Func < B.Func;
            });
  return Rows;
}

std::vector<FlatProfiler::AllocRow>
FlatProfiler::hotAllocSites(const Module &M) const {
  std::vector<AllocRow> Rows;
  for (AllocSiteId S = 0; S != AllocSiteId(AllocCounts.size()); ++S) {
    if (AllocCounts[S] == 0)
      continue;
    Rows.push_back({S, M.describeAllocSite(S), AllocCounts[S]});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const AllocRow &A, const AllocRow &B) {
              if (A.Objects != B.Objects)
                return A.Objects > B.Objects;
              return A.Site < B.Site;
            });
  return Rows;
}
