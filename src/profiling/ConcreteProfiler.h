//===- profiling/ConcreteProfiler.h - Definition 1 graphs ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *concrete* dynamic thin data dependence graph of Definition 1: one
/// node per instruction instance, so memory grows with the execution — the
/// very scaling problem abstract slicing (Definition 2) solves. It exists
/// here for two purposes:
///
///  1. Definition 3's absolute cost is defined on this graph; and
///  2. the soundness tests check the abstract graph is a quotient of this
///     one: every concrete node maps to the abstract node of its
///     (instruction, domain) class with matching frequencies, and every
///     concrete edge maps to an abstract edge.
///
/// Each node also records the context slot the abstract profiler would
/// have assigned, so the quotient is checkable without re-deriving
/// contexts. A hard node cap guards against runaway memory; use small
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_PROFILING_CONCRETEPROFILER_H
#define LUD_PROFILING_CONCRETEPROFILER_H

#include "profiling/Context.h"
#include "profiling/DepGraph.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"

#include <vector>

namespace lud {

class Module;

using CNodeId = uint32_t;
inline constexpr CNodeId kNoCNode = 0xFFFFFFFF;

class ConcreteProfiler {
public:
  struct CNode {
    InstrId Instr = kNoInstr;
    /// Which occurrence of the instruction this is (1-based, the paper's
    /// j in a^j).
    uint64_t Occurrence = 0;
    /// Abstract domain element the slicing profiler would assign (context
    /// slot, or kNoDomain for predicate/native consumer nodes).
    uint32_t AbsDomain = 0;
    std::vector<CNodeId> In;
    std::vector<CNodeId> Out;
  };

  explicit ConcreteProfiler(uint32_t ContextSlots = 16,
                            size_t MaxNodes = 1u << 22)
      : Ctx(ContextSlots), MaxNodes(MaxNodes) {
    Ctx.reset();
  }

  const std::vector<CNode> &nodes() const { return Nodes; }
  size_t numEdges() const { return EdgeCount; }
  /// True if the run outgrew MaxNodes (results are then partial).
  bool overflowed() const { return Overflowed; }

  /// Definition 3: number of nodes that can reach \p N (including N).
  uint64_t absoluteCost(CNodeId N) const;

  /// All concrete instances of instruction \p I.
  std::vector<CNodeId> instancesOf(InstrId I) const;

  // Profiler hooks.
  void onRunStart(const Module &Mod, Heap &H);
  void onRunEnd() {}
  void onEntryFrame(const Function &F);
  void onPhase(int64_t) {}
  void onConst(const ConstInst &I);
  void onAssign(const AssignInst &I);
  void onBin(const BinInst &I);
  void onUn(const UnInst &I);
  void onAlloc(const AllocInst &I, ObjId O);
  void onAllocArray(const AllocArrayInst &I, ObjId O);
  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded);
  void onStoreField(const StoreFieldInst &I, ObjId Base, const Value &Stored);
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded);
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored);
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded);
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored);
  void onArrayLen(const ArrayLenInst &I, ObjId Base);
  void onPredicate(const CondBrInst &I, bool Taken);
  void onNativeCall(const NativeCallInst &I);
  void onCallEnter(const CallInst &I, const Function &Callee, ObjId Receiver);
  void onReturn(const ReturnInst &I);
  void onReturnBound(Reg Dst);
  void onTrap(const Instruction &, TrapKind, Reg) {}

private:
  std::vector<CNodeId> &regs() { return RegShadow.back(); }
  std::vector<CNodeId> &objShadow(ObjId O);

  /// New concrete node for this instance of \p I.
  CNodeId fresh(const Instruction &I, uint32_t AbsDomain);
  void edgeFrom(CNodeId Src, CNodeId To) {
    if (Src == kNoCNode || Src == To)
      return;
    Nodes[Src].Out.push_back(To);
    Nodes[To].In.push_back(Src);
    ++EdgeCount;
  }

  ContextEncoder Ctx;
  size_t MaxNodes;
  bool Overflowed = false;
  Heap *H = nullptr;
  std::vector<CNode> Nodes;
  size_t EdgeCount = 0;
  std::vector<uint64_t> OccurrenceCount; // per InstrId
  std::vector<std::vector<CNodeId>> RegShadow;
  std::vector<std::vector<CNodeId>> HeapShadow;
  std::vector<CNodeId> LenShadow; // per ObjId: the allocating node
  std::vector<CNodeId> StaticShadow;
  std::vector<AllocSiteId> SiteOf; // per ObjId (for receiver chains)
  CNodeId PendingRet = kNoCNode;
};

} // namespace lud

#endif // LUD_PROFILING_CONCRETEPROFILER_H
