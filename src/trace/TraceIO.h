//===- trace/TraceIO.h - lud.trace.v1 encode/decode ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire layer of the trace format: a buffered varint writer the
/// TraceRecorder drives from profiler hooks, and a bounds-checked reader the
/// TraceReplayer decodes events from. The reader never asserts on bad input
/// — truncated, bit-flipped or mismatched streams produce a diagnostic
/// through error(), mirroring GraphIO::readGraph's contract for the text
/// format.
///
/// Encoding: LEB128 varints for unsigned fields, zigzag varints for the
/// signed phase id, doubles as 8 explicit little-endian bytes (host-order
/// independent), one kind byte per event. A segment is the magic line, a
/// varint module fingerprint (instruction/function/global counts), the
/// events, and an End event; segments concatenate, one per run().
///
//===----------------------------------------------------------------------===//

#ifndef LUD_TRACE_TRACEIO_H
#define LUD_TRACE_TRACEIO_H

#include "trace/Event.h"

#include <string>
#include <string_view>

namespace lud {

class Module;
class OutStream;

namespace trace {

/// Buffered encoder over a borrowed OutStream. Hooks append to an internal
/// buffer; the buffer drains to the sink when full and at endTrace(), so
/// file-backed recording does not pay one fwrite per event.
class TraceWriter {
public:
  explicit TraceWriter(OutStream &Sink) : Sink(&Sink) {}
  ~TraceWriter() { flush(); }

  /// Opens a segment: magic plus the module fingerprint the reader checks
  /// before replaying against a module.
  void beginTrace(const Module &M);
  /// Terminates the segment with an End event and drains the buffer.
  void endTrace();

  void u8(uint8_t B) {
    Buf.push_back(char(B));
    maybeFlush();
  }
  void varint(uint64_t V);
  void svarint(int64_t V) {
    varint((uint64_t(V) << 1) ^ uint64_t(V >> 63));
  }
  void f64(double D);
  void value(const Value &V);

  void flush();

  /// Bytes encoded so far (flushed or not).
  uint64_t bytes() const { return Bytes; }

private:
  void maybeFlush() {
    ++Bytes;
    if (Buf.size() >= kFlushAt)
      flush();
  }

  static constexpr size_t kFlushAt = 64 * 1024;
  OutStream *Sink;
  std::string Buf;
  uint64_t Bytes = 0;
};

/// Decoder over an in-memory trace. All reads are bounds-checked; the first
/// failure latches an error message and makes every later call fail, so the
/// replay loop can check once per event.
class TraceReader {
public:
  explicit TraceReader(std::string_view Bytes) : Buf(Bytes) {}

  /// True once every byte has been consumed (more segments may follow until
  /// then).
  bool atEnd() const { return Pos >= Buf.size(); }

  /// Reads and validates a segment header. Fails with a diagnostic when the
  /// magic is wrong or the fingerprint does not match \p M — replaying a
  /// trace against a different program would violate every invariant
  /// downstream.
  bool readHeader(const Module &M);

  /// Module-free header read: validates the magic and consumes the
  /// fingerprint without checking it against a module. For framing scans
  /// (the service client splitting a stream into whole segments) that must
  /// locate segment boundaries before any module is in hand; replay always
  /// uses the module-checked overload.
  bool readHeader();

  /// Decodes the next event into \p E. Returns false with error() set on
  /// malformed input; E.Kind == EventKind::End signals the segment
  /// terminator. Payload ids are validated against the header fingerprint
  /// (instruction and function ids in range); object-id and register
  /// validation is the replayer's job, since only it knows the heap state.
  bool next(TraceEvent &E);

  const std::string &error() const { return Err; }
  bool hasError() const { return !Err.empty(); }
  /// Byte offset of the read cursor, for diagnostics.
  size_t offset() const { return Pos; }

  // Primitive decoders, public for the wire-format tests.
  bool u8(uint8_t &B);
  bool varint(uint64_t &V);
  bool svarint(int64_t &V);
  bool f64(double &D);
  bool value(Value &V);

private:
  bool fail(const std::string &Msg);
  bool varint32(uint32_t &V, const char *What);

  std::string_view Buf;
  size_t Pos = 0;
  std::string Err;
  uint64_t NumInstrs = 0;
  uint64_t NumFuncs = 0;
  uint64_t NumGlobals = 0;
};

/// Reads a whole file into \p Out. Returns false (leaving \p Out untouched
/// on the failure path's partial reads notwithstanding) when the file
/// cannot be opened.
bool readFileBytes(const std::string &Path, std::string &Out);

} // namespace trace
} // namespace lud

#endif // LUD_TRACE_TRACEIO_H
