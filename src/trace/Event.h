//===- trace/Event.h - The profiler event vocabulary, as data --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary event vocabulary of the `lud.trace.v1` format: one event kind
/// per profiler hook (runtime/ProfilerConcept.h), so a recorded trace is the
/// hook stream reified as data. Replaying a trace re-fires the same hooks in
/// the same order with the same arguments, which is why any profiler
/// composition driven from a trace reproduces its live-run state exactly
/// (docs/TRACING.md spells out the determinism argument).
///
/// Events that need no payload beyond the instruction id (Const, Assign, ...)
/// carry just that; heap events add the base object and the transferred
/// Value; allocations add the object id and its slot count so the replayer
/// can rebuild a structurally identical heap without interpreting anything.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_TRACE_EVENT_H
#define LUD_TRACE_EVENT_H

#include "ir/Ids.h"
#include "runtime/Value.h"

#include <cstddef>
#include <cstdint>

namespace lud {
namespace trace {

/// Magic line opening every trace segment. The trailing newline keeps the
/// header greppable in a hexdump; everything after it is binary.
inline constexpr char kTraceMagic[] = "lud.trace.v1\n";
inline constexpr size_t kTraceMagicLen = sizeof(kTraceMagic) - 1;

/// One byte per event. Kind 0 is deliberately invalid so a zero-filled or
/// truncated stream fails loudly instead of decoding as events.
enum class EventKind : uint8_t {
  Invalid = 0,
  EntryFrame,        // func
  Phase,             // svarint phase id
  Const,             // instr
  Assign,            // instr
  Bin,               // instr
  Un,                // instr
  Alloc,             // instr, obj, slots
  AllocArray,        // instr, obj, len
  LoadField,         // instr, base, value
  StoreField,        // instr, base, value
  LoadStatic,        // instr, value
  StoreStatic,       // instr, value
  LoadElem,          // instr, base, index, value
  StoreElem,         // instr, base, index, value
  ArrayLen,          // instr, base
  PredicateTaken,    // instr
  PredicateNotTaken, // instr
  NativeCall,        // instr
  CallEnter,         // instr, callee func, receiver
  Return,            // instr
  ReturnBound,       // dst reg (kNoReg when discarded)
  Trap,              // instr, trap kind byte, fault reg
  End,               // segment terminator (written by onRunEnd)
};

inline constexpr unsigned kNumEventKinds = unsigned(EventKind::End) + 1;

/// Printable name for diagnostics and the obs per-kind counters.
const char *eventKindName(EventKind K);

/// Bytes the event would occupy in a naive fixed-width record (kind byte,
/// 32-bit ids, 9-byte tagged value). The obs `trace.compression_ppm` gauge
/// reports encoded bytes relative to this reference.
unsigned nominalEventBytes(EventKind K);

/// A decoded event. Only the fields the kind's payload lists are
/// meaningful; the rest keep their defaults.
struct TraceEvent {
  EventKind Kind = EventKind::Invalid;
  InstrId Instr = kNoInstr;
  /// EntryFrame's function / CallEnter's callee.
  FuncId Func = kNoFunc;
  /// Allocated object, heap base, or CallEnter receiver.
  ObjId Obj = kNullObj;
  /// Element index, alloc slot count, or array length.
  uint32_t Index = 0;
  /// ReturnBound destination / Trap fault register.
  Reg R = kNoReg;
  /// Trap kind byte.
  uint8_t Byte = 0;
  /// Phase marker id.
  int64_t Phase = 0;
  /// Loaded/stored value.
  Value Val;
};

} // namespace trace
} // namespace lud

#endif // LUD_TRACE_EVENT_H
