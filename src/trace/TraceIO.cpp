//===- trace/TraceIO.cpp - lud.trace.v1 encode/decode ----------------------===//

#include "trace/TraceIO.h"

#include "ir/Module.h"
#include "support/OutStream.h"

#include <cstdio>
#include <cstring>

using namespace lud;
using namespace lud::trace;

const char *lud::trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Invalid:
    return "invalid";
  case EventKind::EntryFrame:
    return "entry_frame";
  case EventKind::Phase:
    return "phase";
  case EventKind::Const:
    return "const";
  case EventKind::Assign:
    return "assign";
  case EventKind::Bin:
    return "bin";
  case EventKind::Un:
    return "un";
  case EventKind::Alloc:
    return "alloc";
  case EventKind::AllocArray:
    return "alloc_array";
  case EventKind::LoadField:
    return "load_field";
  case EventKind::StoreField:
    return "store_field";
  case EventKind::LoadStatic:
    return "load_static";
  case EventKind::StoreStatic:
    return "store_static";
  case EventKind::LoadElem:
    return "load_elem";
  case EventKind::StoreElem:
    return "store_elem";
  case EventKind::ArrayLen:
    return "array_len";
  case EventKind::PredicateTaken:
    return "predicate_taken";
  case EventKind::PredicateNotTaken:
    return "predicate_not_taken";
  case EventKind::NativeCall:
    return "native_call";
  case EventKind::CallEnter:
    return "call_enter";
  case EventKind::Return:
    return "return";
  case EventKind::ReturnBound:
    return "return_bound";
  case EventKind::Trap:
    return "trap";
  case EventKind::End:
    return "end";
  }
  return "unknown";
}

unsigned lud::trace::nominalEventBytes(EventKind K) {
  // Reference record: 1 kind byte, 4 bytes per id/index field, 2 per
  // register, 9 per tagged value (kind byte + 8 payload bytes).
  switch (K) {
  case EventKind::Invalid:
    return 1;
  case EventKind::EntryFrame:
    return 1 + 4;
  case EventKind::Phase:
    return 1 + 8;
  case EventKind::Const:
  case EventKind::Assign:
  case EventKind::Bin:
  case EventKind::Un:
  case EventKind::NativeCall:
  case EventKind::Return:
  case EventKind::PredicateTaken:
  case EventKind::PredicateNotTaken:
    return 1 + 4;
  case EventKind::Alloc:
  case EventKind::AllocArray:
  case EventKind::CallEnter:
    return 1 + 4 + 4 + 4;
  case EventKind::LoadField:
  case EventKind::StoreField:
    return 1 + 4 + 4 + 9;
  case EventKind::LoadStatic:
  case EventKind::StoreStatic:
    return 1 + 4 + 9;
  case EventKind::LoadElem:
  case EventKind::StoreElem:
    return 1 + 4 + 4 + 4 + 9;
  case EventKind::ArrayLen:
    return 1 + 4 + 4;
  case EventKind::ReturnBound:
    return 1 + 2;
  case EventKind::Trap:
    return 1 + 4 + 1 + 2;
  case EventKind::End:
    return 1;
  }
  return 1;
}

//===----------------------------------------------------------------------===//
// TraceWriter
//===----------------------------------------------------------------------===//

void TraceWriter::varint(uint64_t V) {
  while (V >= 0x80) {
    Buf.push_back(char(uint8_t(V) | 0x80));
    ++Bytes;
    V >>= 7;
  }
  Buf.push_back(char(uint8_t(V)));
  maybeFlush();
}

void TraceWriter::f64(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  for (int I = 0; I != 8; ++I) {
    Buf.push_back(char(uint8_t(Bits >> (8 * I))));
    ++Bytes;
  }
  if (Buf.size() >= kFlushAt)
    flush();
}

void TraceWriter::value(const Value &V) {
  u8(uint8_t(V.Kind));
  switch (V.Kind) {
  case ValueKind::Int:
    svarint(V.I);
    break;
  case ValueKind::Float:
    f64(V.F);
    break;
  case ValueKind::Ref:
    varint(V.R);
    break;
  }
}

void TraceWriter::beginTrace(const Module &M) {
  Buf.append(kTraceMagic, kTraceMagicLen);
  Bytes += kTraceMagicLen;
  varint(M.getNumInstrs());
  varint(M.functions().size());
  varint(M.globals().size());
}

void TraceWriter::endTrace() {
  u8(uint8_t(EventKind::End));
  flush();
}

void TraceWriter::flush() {
  if (Buf.empty())
    return;
  *Sink << std::string_view(Buf);
  Buf.clear();
}

//===----------------------------------------------------------------------===//
// TraceReader
//===----------------------------------------------------------------------===//

bool TraceReader::fail(const std::string &Msg) {
  if (Err.empty())
    Err = "trace offset " + std::to_string(Pos) + ": " + Msg;
  return false;
}

bool TraceReader::u8(uint8_t &B) {
  if (!Err.empty())
    return false;
  if (Pos >= Buf.size())
    return fail("unexpected end of trace");
  B = uint8_t(Buf[Pos++]);
  return true;
}

bool TraceReader::varint(uint64_t &V) {
  if (!Err.empty())
    return false;
  V = 0;
  unsigned Shift = 0;
  for (unsigned I = 0; I != 10; ++I) {
    if (Pos >= Buf.size())
      return fail("truncated varint");
    uint8_t B = uint8_t(Buf[Pos++]);
    // The 10th byte carries bit 63 only; a larger payload there would
    // silently shift out of the 64-bit result, making two different byte
    // sequences decode to the same value. Reject instead of truncating.
    if (Shift == 63 && (B & 0x7E))
      return fail("varint overflows 64 bits");
    V |= uint64_t(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return true;
    Shift += 7;
  }
  return fail("varint longer than 10 bytes");
}

bool TraceReader::svarint(int64_t &V) {
  uint64_t U;
  if (!varint(U))
    return false;
  V = int64_t((U >> 1) ^ (~(U & 1) + 1));
  return true;
}

bool TraceReader::f64(double &D) {
  if (!Err.empty())
    return false;
  if (Buf.size() - Pos < 8)
    return fail("truncated float");
  uint64_t Bits = 0;
  for (int I = 0; I != 8; ++I)
    Bits |= uint64_t(uint8_t(Buf[Pos + I])) << (8 * I);
  Pos += 8;
  std::memcpy(&D, &Bits, sizeof(D));
  return true;
}

bool TraceReader::value(Value &V) {
  uint8_t Kind;
  if (!u8(Kind))
    return false;
  switch (Kind) {
  case uint8_t(ValueKind::Int): {
    int64_t I;
    if (!svarint(I))
      return false;
    V = Value::makeInt(I);
    return true;
  }
  case uint8_t(ValueKind::Float): {
    double D;
    if (!f64(D))
      return false;
    V = Value::makeFloat(D);
    return true;
  }
  case uint8_t(ValueKind::Ref): {
    uint64_t R;
    if (!varint(R))
      return false;
    if (R > 0xFFFFFFFFull)
      return fail("object id out of range in value");
    V = Value::makeRef(ObjId(R));
    return true;
  }
  }
  return fail("bad value kind byte " + std::to_string(Kind));
}

bool TraceReader::varint32(uint32_t &V, const char *What) {
  uint64_t U;
  if (!varint(U))
    return false;
  if (U > 0xFFFFFFFFull)
    return fail(std::string(What) + " out of 32-bit range");
  V = uint32_t(U);
  return true;
}

bool TraceReader::readHeader() {
  if (!Err.empty())
    return false;
  if (Buf.size() - Pos < kTraceMagicLen ||
      Buf.compare(Pos, kTraceMagicLen, kTraceMagic) != 0)
    return fail("missing 'lud.trace.v1' header");
  Pos += kTraceMagicLen;
  if (!varint(NumInstrs) || !varint(NumFuncs))
    return false;
  return varint(NumGlobals);
}

bool TraceReader::readHeader(const Module &M) {
  if (!readHeader())
    return false;
  if (NumInstrs != M.getNumInstrs() || NumFuncs != M.functions().size() ||
      NumGlobals != M.globals().size())
    return fail("trace does not match the module (recorded against a "
                "different program?)");
  return true;
}

bool TraceReader::next(TraceEvent &E) {
  E = TraceEvent();
  uint8_t KindByte;
  if (!u8(KindByte))
    return false;
  if (KindByte == 0 || KindByte >= kNumEventKinds)
    return fail("bad event kind byte " + std::to_string(KindByte));
  E.Kind = EventKind(KindByte);

  auto ReadInstr = [&] {
    uint64_t Id;
    if (!varint(Id))
      return false;
    if (Id >= NumInstrs)
      return fail("instruction id " + std::to_string(Id) + " out of range");
    E.Instr = InstrId(Id);
    return true;
  };
  auto ReadFunc = [&] {
    uint64_t Id;
    if (!varint(Id))
      return false;
    if (Id >= NumFuncs)
      return fail("function id " + std::to_string(Id) + " out of range");
    E.Func = FuncId(Id);
    return true;
  };
  auto ReadObj = [&] { return varint32(E.Obj, "object id"); };
  auto ReadReg = [&] {
    uint64_t R;
    if (!varint(R))
      return false;
    if (R > kNoReg)
      return fail("register out of range");
    E.R = Reg(R);
    return true;
  };

  switch (E.Kind) {
  case EventKind::Invalid:
    return fail("invalid event kind");
  case EventKind::EntryFrame:
    return ReadFunc();
  case EventKind::Phase:
    return svarint(E.Phase);
  case EventKind::Const:
  case EventKind::Assign:
  case EventKind::Bin:
  case EventKind::Un:
  case EventKind::NativeCall:
  case EventKind::Return:
  case EventKind::PredicateTaken:
  case EventKind::PredicateNotTaken:
    return ReadInstr();
  case EventKind::Alloc:
  case EventKind::AllocArray:
    return ReadInstr() && ReadObj() && varint32(E.Index, "slot count");
  case EventKind::LoadField:
  case EventKind::StoreField:
    return ReadInstr() && ReadObj() && value(E.Val);
  case EventKind::LoadStatic:
  case EventKind::StoreStatic:
    return ReadInstr() && value(E.Val);
  case EventKind::LoadElem:
  case EventKind::StoreElem:
    return ReadInstr() && ReadObj() && varint32(E.Index, "element index") &&
           value(E.Val);
  case EventKind::ArrayLen:
    return ReadInstr() && ReadObj();
  case EventKind::CallEnter:
    return ReadInstr() && ReadFunc() && ReadObj();
  case EventKind::ReturnBound:
    return ReadReg();
  case EventKind::Trap:
    return ReadInstr() && u8(E.Byte) && ReadReg();
  case EventKind::End:
    return true;
  }
  return fail("unhandled event kind");
}

//===----------------------------------------------------------------------===//
// File helper
//===----------------------------------------------------------------------===//

bool lud::trace::readFileBytes(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}
