//===- trace/TraceRecorder.h - Recording profiler stage --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A profiler stage that serializes the hook stream as a `lud.trace.v1`
/// segment. It composes through ComposedProfiler like any client — beside
/// live analyses or alone on an otherwise uninstrumented run — and because
/// hooks receive the same arguments at every pipeline position, the recorded
/// bytes are identical wherever the recorder sits and whatever else runs
/// (tests/trace/RecordReplayTest.cpp pins this).
///
/// The recorder is phase-agnostic: it records every event, including the
/// phase markers themselves, and leaves selective-tracking decisions to the
/// substrate that replays the trace. It reads the heap only to capture each
/// allocation's slot count (hooks fire after the operation, so the object
/// exists), which is what lets the replayer rebuild an equivalent heap.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_TRACE_TRACERECORDER_H
#define LUD_TRACE_TRACERECORDER_H

#include "ir/Function.h"
#include "obs/Metrics.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"
#include "trace/TraceIO.h"

namespace lud {
namespace trace {

class TraceRecorder {
public:
  /// \p Sink receives the encoded segments; it must outlive the recorder.
  explicit TraceRecorder(OutStream &Sink) : W(Sink) {}

  uint64_t events() const { return Events; }
  uint64_t bytes() const { return W.bytes(); }

  /// Writes the recorder's telemetry (`trace.*`) into \p R: total events
  /// and bytes, per-kind event counts, per-phase event/byte attribution,
  /// and the encoded-vs-nominal compression ratio. Idempotent set()s, like
  /// the client profilers' accountStats.
  void accountStats(obs::MetricsRegistry &R) const {
    R.set(R.gauge("trace.events", obs::Unit::Count, obs::Merge::Sum), Events);
    R.set(R.gauge("trace.bytes", obs::Unit::Bytes, obs::Merge::Sum),
          W.bytes());
    R.set(R.gauge("trace.segments", obs::Unit::Count, obs::Merge::Sum),
          Segments);
    for (unsigned K = 1; K != kNumEventKinds; ++K)
      if (KindCount[K])
        R.set(R.gauge(std::string("trace.events.") +
                          eventKindName(EventKind(K)),
                      obs::Unit::Count, obs::Merge::Sum),
              KindCount[K]);
    for (unsigned P = 0; P != kPhaseBuckets; ++P) {
      if (!PhaseEvents[P])
        continue;
      std::string Name = P + 1 == kPhaseBuckets
                             ? std::string("other")
                             : std::to_string(P);
      R.set(R.gauge("trace.phase." + Name + ".events", obs::Unit::Count,
                    obs::Merge::Sum),
            PhaseEvents[P]);
      R.set(R.gauge("trace.phase." + Name + ".bytes", obs::Unit::Bytes,
                    obs::Merge::Sum),
            PhaseBytes[P]);
    }
    // Encoded bytes per million nominal bytes: < 1e6 means the varint
    // encoding beats the fixed-width reference record.
    if (Nominal)
      R.set(R.gauge("trace.compression_ppm", obs::Unit::Count,
                    obs::Merge::Last),
            W.bytes() * 1000000 / Nominal);
  }

  // Profiler hooks.
  void onRunStart(const Module &Mod, Heap &H) {
    this->H = &H;
    ++Segments;
    W.beginTrace(Mod);
  }
  void onRunEnd() { W.endTrace(); }
  void onEntryFrame(const Function &F) {
    begin(EventKind::EntryFrame);
    W.varint(F.getId());
    finish(EventKind::EntryFrame);
  }
  void onPhase(int64_t P) {
    begin(EventKind::Phase);
    W.svarint(P);
    finish(EventKind::Phase);
    Bucket = P >= 0 && P < int64_t(kPhaseBuckets) - 1 ? unsigned(P)
                                                      : kPhaseBuckets - 1;
  }

  void onConst(const ConstInst &I) { instrOnly(EventKind::Const, I); }
  void onAssign(const AssignInst &I) { instrOnly(EventKind::Assign, I); }
  void onBin(const BinInst &I) { instrOnly(EventKind::Bin, I); }
  void onUn(const UnInst &I) { instrOnly(EventKind::Un, I); }

  void onAlloc(const AllocInst &I, ObjId O) {
    begin(EventKind::Alloc);
    W.varint(I.getId());
    W.varint(O);
    W.varint(uint32_t(H->obj(O).Slots.size()));
    finish(EventKind::Alloc);
  }
  void onAllocArray(const AllocArrayInst &I, ObjId O) {
    begin(EventKind::AllocArray);
    W.varint(I.getId());
    W.varint(O);
    W.varint(uint32_t(H->obj(O).Slots.size()));
    finish(EventKind::AllocArray);
  }

  void onLoadField(const LoadFieldInst &I, ObjId Base, const Value &Loaded) {
    heapAccess(EventKind::LoadField, I.getId(), Base, Loaded);
  }
  void onStoreField(const StoreFieldInst &I, ObjId Base,
                    const Value &Stored) {
    heapAccess(EventKind::StoreField, I.getId(), Base, Stored);
  }
  void onLoadStatic(const LoadStaticInst &I, const Value &Loaded) {
    begin(EventKind::LoadStatic);
    W.varint(I.getId());
    W.value(Loaded);
    finish(EventKind::LoadStatic);
  }
  void onStoreStatic(const StoreStaticInst &I, const Value &Stored) {
    begin(EventKind::StoreStatic);
    W.varint(I.getId());
    W.value(Stored);
    finish(EventKind::StoreStatic);
  }
  void onLoadElem(const LoadElemInst &I, ObjId Base, uint32_t Index,
                  const Value &Loaded) {
    elemAccess(EventKind::LoadElem, I.getId(), Base, Index, Loaded);
  }
  void onStoreElem(const StoreElemInst &I, ObjId Base, uint32_t Index,
                   const Value &Stored) {
    elemAccess(EventKind::StoreElem, I.getId(), Base, Index, Stored);
  }
  void onArrayLen(const ArrayLenInst &I, ObjId Base) {
    begin(EventKind::ArrayLen);
    W.varint(I.getId());
    W.varint(Base);
    finish(EventKind::ArrayLen);
  }

  void onPredicate(const CondBrInst &I, bool Taken) {
    EventKind K =
        Taken ? EventKind::PredicateTaken : EventKind::PredicateNotTaken;
    instrOnly(K, I);
  }
  void onNativeCall(const NativeCallInst &I) {
    instrOnly(EventKind::NativeCall, I);
  }
  void onCallEnter(const CallInst &I, const Function &Callee,
                   ObjId Receiver) {
    begin(EventKind::CallEnter);
    W.varint(I.getId());
    W.varint(Callee.getId());
    W.varint(Receiver);
    finish(EventKind::CallEnter);
  }
  void onReturn(const ReturnInst &I) { instrOnly(EventKind::Return, I); }
  void onReturnBound(Reg Dst) {
    begin(EventKind::ReturnBound);
    W.varint(Dst);
    finish(EventKind::ReturnBound);
  }
  void onTrap(const Instruction &I, TrapKind K, Reg FaultReg) {
    begin(EventKind::Trap);
    W.varint(I.getId());
    W.u8(uint8_t(K));
    W.varint(FaultReg);
    finish(EventKind::Trap);
  }

private:
  /// Phase-attribution buckets: phase ids 0..6 get their own bucket,
  /// everything else lands in "other".
  static constexpr unsigned kPhaseBuckets = 8;

  void begin(EventKind K) {
    EventStart = W.bytes();
    W.u8(uint8_t(K));
  }
  void finish(EventKind K) {
    ++Events;
    ++KindCount[unsigned(K)];
    ++PhaseEvents[Bucket];
    PhaseBytes[Bucket] += W.bytes() - EventStart;
    Nominal += nominalEventBytes(K);
  }
  void instrOnly(EventKind K, const Instruction &I) {
    begin(K);
    W.varint(I.getId());
    finish(K);
  }
  void heapAccess(EventKind K, InstrId I, ObjId Base, const Value &V) {
    begin(K);
    W.varint(I);
    W.varint(Base);
    W.value(V);
    finish(K);
  }
  void elemAccess(EventKind K, InstrId I, ObjId Base, uint32_t Index,
                  const Value &V) {
    begin(K);
    W.varint(I);
    W.varint(Base);
    W.varint(Index);
    W.value(V);
    finish(K);
  }

  TraceWriter W;
  Heap *H = nullptr;
  uint64_t Events = 0;
  uint64_t Segments = 0;
  uint64_t Nominal = 0;
  uint64_t EventStart = 0;
  unsigned Bucket = 0;
  uint64_t KindCount[kNumEventKinds] = {};
  uint64_t PhaseEvents[kPhaseBuckets] = {};
  uint64_t PhaseBytes[kPhaseBuckets] = {};
};

} // namespace trace
} // namespace lud

#endif // LUD_TRACE_TRACERECORDER_H
