//===- trace/TraceReplayer.h - Re-drive profilers from a trace -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// replayTrace: feeds a recorded `lud.trace.v1` stream back through any
/// profiler composition — the same hook calls, in the same order, with the
/// same arguments as the live run, but with no interpreter in sight. The
/// profilers cannot tell the difference: every input they consume (hook
/// arguments, the Module's static tables, and the heap's structural state —
/// tags, classes, slot counts) is reproduced, because the replayer rebuilds
/// a heap by re-allocating in event order, which on a dense-id heap yields
/// the exact object ids of the live run. Hence a replayed substrate builds a
/// byte-identical canonical Gcost (docs/TRACING.md).
///
/// Like the trace reader it drives, the replayer diagnoses instead of
/// asserting: id bounds, event-vs-instruction kind agreement, and the
/// alloc-id cross-check all fail with an error message on corrupt input.
/// A failed replay leaves the profiler partially updated — discard it.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_TRACE_TRACEREPLAYER_H
#define LUD_TRACE_TRACEREPLAYER_H

#include "ir/Module.h"
#include "runtime/Heap.h"
#include "runtime/ProfilerConcept.h"
#include "trace/TraceIO.h"

#include <string>

namespace lud {
namespace trace {

struct ReplayOptions {
  /// Upper bound on a replayed allocation's slot count. Object allocations
  /// are validated against the class layout instead; this guards array
  /// lengths, which only the trace knows — a corrupt varint must not turn
  /// into a multi-gigabyte allocation.
  uint64_t MaxArraySlots = uint64_t(1) << 28;
};

struct ReplayStats {
  uint64_t Events = 0;
  uint64_t Segments = 0;
};

/// Replays every segment of \p Bytes through \p P. Returns false with
/// \p Error set on malformed or mismatched input. On success the profiler
/// saw exactly the live run's hook sequence (onRunStart/onRunEnd per
/// segment included).
template <typename ProfilerT>
bool replayTrace(const Module &M, std::string_view Bytes, ProfilerT &P,
                 std::string &Error, ReplayStats *Stats = nullptr,
                 ReplayOptions Opts = {}) {
  TraceReader R(Bytes);
  auto Fail = [&](const std::string &Msg) {
    Error = R.hasError() ? R.error()
                         : "trace offset " + std::to_string(R.offset()) +
                               ": " + Msg;
    return false;
  };
  if (R.atEnd())
    return Fail("empty trace");

  // One instruction-kind-checked cast per event: the reader bounded the id,
  // this binds it to the class the hook signature needs.
  auto InstrAs = [&](InstrId Id, auto *&Out) {
    Out = dyn_cast<std::remove_reference_t<decltype(*Out)>>(M.getInstr(Id));
    return Out != nullptr;
  };

  while (!R.atEnd()) {
    if (!R.readHeader(M))
      return Fail("bad header");
    Heap H;
    P.onRunStart(M, H);
    if (Stats)
      ++Stats->Segments;
    bool SawEnd = false;
    TraceEvent E;
    while (!SawEnd) {
      if (!R.next(E))
        return Fail("truncated segment (no 'end' event)");
      // Count what the recorder counted: hook events, not the segment's
      // 'end' terminator (the recorder emits it from onRunEnd without
      // ticking its event counter).
      if (Stats && E.Kind != EventKind::End)
        ++Stats->Events;
      auto CheckBase = [&] {
        if (E.Obj == kNullObj || E.Obj >= H.idBound())
          return Fail("object id " + std::to_string(E.Obj) +
                      " not allocated at this point");
        return true;
      };
      auto CheckVal = [&] {
        if (E.Val.isRef() && E.Val.R != kNullObj && E.Val.R >= H.idBound())
          return Fail("value references unallocated object " +
                      std::to_string(E.Val.R));
        return true;
      };
      switch (E.Kind) {
      case EventKind::Invalid:
        return Fail("invalid event");
      case EventKind::EntryFrame:
        P.onEntryFrame(*M.getFunction(E.Func));
        break;
      case EventKind::Phase:
        P.onPhase(E.Phase);
        break;
      case EventKind::Const: {
        const ConstInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("const event on a non-const instruction");
        P.onConst(*I);
        break;
      }
      case EventKind::Assign: {
        const AssignInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("assign event on a non-assign instruction");
        P.onAssign(*I);
        break;
      }
      case EventKind::Bin: {
        const BinInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("bin event on a non-bin instruction");
        P.onBin(*I);
        break;
      }
      case EventKind::Un: {
        const UnInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("un event on a non-un instruction");
        P.onUn(*I);
        break;
      }
      case EventKind::Alloc: {
        const AllocInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("alloc event on a non-alloc instruction");
        if (E.Index != M.getClass(I->Class)->NumSlots)
          return Fail("alloc slot count disagrees with the class layout");
        ObjId O = H.allocObject(I->Class, E.Index);
        if (O != E.Obj)
          return Fail("allocation order diverged (expected object " +
                      std::to_string(E.Obj) + ", heap produced " +
                      std::to_string(O) + ")");
        P.onAlloc(*I, O);
        break;
      }
      case EventKind::AllocArray: {
        const AllocArrayInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("alloc_array event on a non-alloc-array instruction");
        if (E.Index > Opts.MaxArraySlots)
          return Fail("array length " + std::to_string(E.Index) +
                      " exceeds the replay limit");
        ObjId O = H.allocArray(I->Elem, E.Index);
        if (O != E.Obj)
          return Fail("allocation order diverged (expected object " +
                      std::to_string(E.Obj) + ", heap produced " +
                      std::to_string(O) + ")");
        P.onAllocArray(*I, O);
        break;
      }
      case EventKind::LoadField: {
        const LoadFieldInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("load_field event on a non-load-field instruction");
        if (!CheckBase() || !CheckVal())
          return false;
        P.onLoadField(*I, E.Obj, E.Val);
        break;
      }
      case EventKind::StoreField: {
        const StoreFieldInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("store_field event on a non-store-field instruction");
        if (!CheckBase() || !CheckVal())
          return false;
        P.onStoreField(*I, E.Obj, E.Val);
        break;
      }
      case EventKind::LoadStatic: {
        const LoadStaticInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("load_static event on a non-load-static instruction");
        if (!CheckVal())
          return false;
        P.onLoadStatic(*I, E.Val);
        break;
      }
      case EventKind::StoreStatic: {
        const StoreStaticInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("store_static event on a non-store-static "
                      "instruction");
        if (!CheckVal())
          return false;
        P.onStoreStatic(*I, E.Val);
        break;
      }
      case EventKind::LoadElem: {
        const LoadElemInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("load_elem event on a non-load-elem instruction");
        if (!CheckBase() || !CheckVal())
          return false;
        P.onLoadElem(*I, E.Obj, E.Index, E.Val);
        break;
      }
      case EventKind::StoreElem: {
        const StoreElemInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("store_elem event on a non-store-elem instruction");
        if (!CheckBase() || !CheckVal())
          return false;
        P.onStoreElem(*I, E.Obj, E.Index, E.Val);
        break;
      }
      case EventKind::ArrayLen: {
        const ArrayLenInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("array_len event on a non-array-len instruction");
        if (!CheckBase())
          return false;
        P.onArrayLen(*I, E.Obj);
        break;
      }
      case EventKind::PredicateTaken:
      case EventKind::PredicateNotTaken: {
        const CondBrInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("predicate event on a non-condbr instruction");
        P.onPredicate(*I, E.Kind == EventKind::PredicateTaken);
        break;
      }
      case EventKind::NativeCall: {
        const NativeCallInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("native_call event on a non-native-call instruction");
        P.onNativeCall(*I);
        break;
      }
      case EventKind::CallEnter: {
        const CallInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("call_enter event on a non-call instruction");
        if (E.Obj != kNullObj && E.Obj >= H.idBound())
          return Fail("call receiver " + std::to_string(E.Obj) +
                      " not allocated at this point");
        P.onCallEnter(*I, *M.getFunction(E.Func), E.Obj);
        break;
      }
      case EventKind::Return: {
        const ReturnInst *I;
        if (!InstrAs(E.Instr, I))
          return Fail("return event on a non-return instruction");
        P.onReturn(*I);
        break;
      }
      case EventKind::ReturnBound:
        P.onReturnBound(E.R);
        break;
      case EventKind::Trap:
        if (E.Byte > uint8_t(TrapKind::UnknownNative))
          return Fail("bad trap kind byte");
        P.onTrap(*M.getInstr(E.Instr), TrapKind(E.Byte), E.R);
        break;
      case EventKind::End:
        SawEnd = true;
        break;
      }
    }
    P.onRunEnd();
  }
  return true;
}

} // namespace trace
} // namespace lud

#endif // LUD_TRACE_TRACEREPLAYER_H
