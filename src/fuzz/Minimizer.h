//===- fuzz/Minimizer.h - ddmin program reduction --------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging reduction of failing .lud programs (Zeller &
/// Hildebrandt's ddmin over instruction sets). The reduction state is an
/// alive-set over the ORIGINAL module's instruction ids; every trial
/// clones the original with ir::cloneModule, dropping dead non-terminator
/// instructions, and re-runs the caller's failure predicate on the clone.
/// Terminators are never dropped, so every candidate is structurally
/// well-formed; registers read without a surviving definition hold the
/// default Int 0, so candidates execute (possibly trapping — traps are
/// ordinary, deterministic outcomes the oracle cross-checks like any
/// other).
///
/// Three granularity passes — whole function bodies, whole blocks, single
/// instructions — each run the classic ddmin loop (reduce-to-chunk, then
/// reduce-to-complement, doubling granularity when stuck), and the
/// instruction pass repeats to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_FUZZ_MINIMIZER_H
#define LUD_FUZZ_MINIMIZER_H

#include <cstdint>
#include <functional>
#include <memory>

namespace lud {

class Module;

namespace fuzz {

/// Returns true when the candidate still exhibits the failure being
/// chased. The minimizer keeps an instruction only if removing it makes
/// the predicate return false.
using FailurePredicate = std::function<bool(const Module &)>;

struct MinimizerOptions {
  /// Cap on predicate evaluations; reduction stops (keeping the best
  /// candidate so far) when exhausted.
  uint64_t MaxTrials = 4096;
};

struct MinimizeResult {
  /// The smallest failing module found; a plain clone of the input when
  /// the failure did not reproduce.
  std::unique_ptr<Module> M;
  /// Whether the predicate held on (a clone of) the unmodified input.
  bool Reproduced = false;
  /// Droppable (non-terminator) instruction counts before and after.
  uint32_t OriginalInstrs = 0;
  uint32_t FinalInstrs = 0;
  /// Predicate evaluations spent.
  uint64_t Trials = 0;
};

/// Shrinks \p M while \p Fails keeps returning true on the candidate.
MinimizeResult minimizeModule(const Module &M, const FailurePredicate &Fails,
                              MinimizerOptions Opts = {});

} // namespace fuzz
} // namespace lud

#endif // LUD_FUZZ_MINIMIZER_H
