//===- fuzz/Fuzzer.cpp - Randomized differential fuzzing loop --------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/OutStream.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

using namespace lud;
using namespace lud::fuzz;

namespace {

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return true;
}

bool writeModuleFile(const std::string &Path, const Module &M) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  {
    FileOutStream OS(F);
    printModule(M, OS);
  }
  std::fclose(F);
  return true;
}

std::string describeObfuscation(const RandomProgramOptions &P) {
  std::string S;
  if (P.ObfJunk)
    S += "junk,";
  if (P.ObfOpaque)
    S += "opaque,";
  if (P.ObfStrings)
    S += "strings,";
  if (S.empty())
    return "none";
  S.pop_back();
  return S;
}

std::string describeProgram(const RandomProgramOptions &P) {
  return "seed=" + std::to_string(P.Seed) +
         " classes=" + std::to_string(P.NumClasses) +
         " functions=" + std::to_string(P.NumFunctions) +
         " ops=" + std::to_string(P.OpsPerFunction) +
         " trip=" + std::to_string(P.MaxTrip) +
         " globals=" + std::to_string(P.NumGlobals) +
         " recursion=" + std::to_string(int(P.Recursion)) +
         " aliasing=" + std::to_string(int(P.Aliasing)) +
         " nullflows=" + std::to_string(int(P.NullFlows)) +
         " deadstores=" + std::to_string(int(P.DeadStores)) +
         " obf=" + describeObfuscation(P);
}

} // namespace

OracleConfig fuzz::randomOracleConfig(RNG &R) {
  OracleConfig C;
  static const uint32_t Slots[] = {1, 2, 4, 8, 16, 32};
  C.Slicing.ContextSlots = Slots[R.nextBelow(std::size(Slots))];
  C.Slicing.ThinSlicing = R.nextBelow(2) != 0;
  C.Slicing.ContextSensitive = R.nextBelow(2) != 0;
  C.Slicing.TrackCR = R.nextBelow(2) != 0;
  C.Slicing.HotPathCaches = R.nextBelow(2) != 0;
  C.Clients = ClientSet(uint32_t(R.nextBelow(8)));
  // Either backend may be the reference; the engines mode always runs the
  // other one, so both orderings of the cross-check get fuzzed.
  C.Engine = R.nextBelow(2) != 0 ? EngineKind::Threaded : EngineKind::Interp;
  // The optimize mode re-profiles per committed rewrite, so it rides on a
  // quarter of the runs rather than all of them.
  C.CheckOptimize = R.nextBelow(4) == 0;
  return C;
}

RandomProgramOptions fuzz::randomProgramOptions(RNG &R) {
  RandomProgramOptions P;
  P.Seed = R.next();
  P.NumClasses = 1 + unsigned(R.nextBelow(4));
  P.NumFunctions = 2 + unsigned(R.nextBelow(6));
  P.OpsPerFunction = 10 + unsigned(R.nextBelow(51));
  P.MaxTrip = 2 + unsigned(R.nextBelow(5));
  P.NumGlobals = unsigned(R.nextBelow(4));
  P.Recursion = R.nextBelow(2) != 0;
  P.Aliasing = R.nextBelow(2) != 0;
  P.NullFlows = R.nextBelow(2) != 0;
  P.DeadStores = R.nextBelow(2) != 0;
  // Obfuscated shapes ride on a quarter of the runs. Both values are drawn
  // unconditionally so the stream position (and thus every later draw) is
  // stable whether or not the shape is enabled.
  bool Obf = R.nextBelow(4) == 0;
  uint64_t Bits = R.nextBelow(8);
  P.ObfJunk = Obf && (Bits & 1) != 0;
  P.ObfOpaque = Obf && (Bits & 2) != 0;
  P.ObfStrings = Obf && (Bits & 4) != 0;
  return P;
}

FuzzReport fuzz::runFuzz(const FuzzOptions &Opts) {
  FuzzReport Report;
  std::error_code EC;
  std::filesystem::create_directories(Opts.CorpusDir, EC);
  auto Path = [&](const std::string &Name) {
    return Opts.CorpusDir + "/" + Name;
  };
  auto Log = [&](const std::string &Line) {
    if (Opts.Log)
      *Opts.Log << Line << "\n";
  };

  RNG Base(Opts.Seed);
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t Run = 0; Run != Opts.Runs; ++Run) {
    if (Opts.TimeBudgetSeconds > 0) {
      double Elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - T0)
                           .count();
      if (Elapsed >= Opts.TimeBudgetSeconds) {
        Log("time budget exhausted after " + std::to_string(Run) + " runs");
        break;
      }
    }

    RNG R = Base.split(Run);
    RandomProgramOptions P = randomProgramOptions(R);
    OracleConfig OC = randomOracleConfig(R);
    // Obfuscated shapes exist to exercise the strip path: always run the
    // optimize oracle on them so every junk/opaque/strings program checks
    // that rewriting preserves observables.
    if (P.ObfJunk || P.ObfOpaque || P.ObfStrings)
      OC.CheckOptimize = true;
    std::unique_ptr<Module> M = generateRandomProgram(P);

    std::string Tag =
        "s" + std::to_string(Opts.Seed) + "-r" + std::to_string(Run);
    std::string Pending = Path("pending-" + Tag + ".lud");

    auto Record = [&](const std::string &Mode, const std::string &Detail) {
      FuzzFailure &F = Report.Failures.emplace_back();
      F.RunIndex = Run;
      F.Mode = Mode;
      F.Detail = Detail;
      F.Config = OC;

      std::string OrigPath = Path("repro-" + Tag + ".orig.lud");
      std::string MinPath = Path("repro-" + Tag + ".lud");
      writeModuleFile(OrigPath, *M);
      F.ReproPath = OrigPath;

      std::string Note = "lud-fuzz differential failure\n";
      Note += "base-seed: " + std::to_string(Opts.Seed) +
              "  run: " + std::to_string(Run) + "\n";
      Note += "program: " + describeProgram(P) + "\n";
      Note += "mode: " + Mode + "\n";
      Note += "detail: " + Detail + "\n";

      if (Opts.Minimize) {
        MinimizerOptions MO;
        MO.MaxTrials = Opts.MinimizerMaxTrials;
        MinimizeResult Min = minimizeModule(
            *M, [&](const Module &C) { return !runOracle(C, OC).Ok; }, MO);
        if (Min.Reproduced) {
          writeModuleFile(MinPath, *Min.M);
          F.ReproPath = MinPath;
          Note += "minimized: " + std::to_string(Min.OriginalInstrs) +
                  " -> " + std::to_string(Min.FinalInstrs) +
                  " droppable instructions in " +
                  std::to_string(Min.Trials) + " trials\n";
        } else {
          Note += "minimized: failure did not survive re-cloning; original "
                  "kept\n";
        }
      }
      Note += "reproduce: lud-fuzz --check " + F.ReproPath + " " +
              configFlags(OC) + "\n";
      Note += "original:  lud-fuzz --check " + OrigPath + " " +
              configFlags(OC) + "\n";
      writeTextFile(Path("repro-" + Tag + ".txt"), Note);
      Log("run " + std::to_string(Run) + ": " + Mode + " divergence -> " +
          F.ReproPath);
    };

    // Persist the candidate before the oracle touches it: a crash or
    // sanitizer abort must leave the input behind.
    writeModuleFile(Pending, *M);

    std::vector<std::string> VerifyErrors;
    if (!verifyGeneratedModule(*M, VerifyErrors)) {
      std::string Detail;
      for (const std::string &E : VerifyErrors)
        Detail += E + "\n";
      Record("verifier", Detail);
    } else if (OracleResult O = runOracle(*M, OC); !O.Ok) {
      Record(O.Mode, O.Detail);
    }

    std::filesystem::remove(Pending, EC);
    ++Report.RunsDone;
    if (Opts.Log && (Run + 1) % 100 == 0)
      Log("  " + std::to_string(Run + 1) + "/" +
          std::to_string(Opts.Runs) + " runs, " +
          std::to_string(Report.Failures.size()) + " failure(s)");
  }
  return Report;
}
