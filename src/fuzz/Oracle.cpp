//===- fuzz/Oracle.cpp - Differential execution-mode oracle ----------------===//

#include "fuzz/Oracle.h"

#include "analysis/PassManager.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "profiling/GraphIO.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"
#include "support/OutStream.h"
#include "workloads/ParallelDriver.h"

#include <cstring>

using namespace lud;
using namespace lud::fuzz;

namespace {

std::string graphBytes(const ProfileSession &S) {
  StringOutStream OS;
  if (S.slicing())
    writeGraph(S.slicing()->graph(), OS);
  return OS.str();
}

std::string clientReports(const ProfileSession &S, const Module &M) {
  StringOutStream OS;
  S.printClientReports(M, OS);
  return OS.str();
}

/// Everything one mode produces that another mode must reproduce.
struct Snapshot {
  RunResult Run;
  std::string Graph;
  std::string Reports;
};

Snapshot snapshot(const ProfileSession &S, const Module &M,
                  const RunResult &Run) {
  return {Run, graphBytes(S), clientReports(S, M)};
}

/// Locates the first differing byte and shows both sides around it.
std::string firstDiff(const std::string &What, const std::string &Ref,
                      const std::string &Got) {
  size_t N = std::min(Ref.size(), Got.size());
  size_t At = 0;
  while (At != N && Ref[At] == Got[At])
    ++At;
  auto Excerpt = [&](const std::string &S) {
    size_t Lo = At > 24 ? At - 24 : 0;
    std::string E = S.substr(Lo, 48);
    for (char &C : E)
      if (C == '\n')
        C = ' ';
    return E;
  };
  std::string Out = What + " differs at byte " + std::to_string(At) +
                    " (sizes " + std::to_string(Ref.size()) + " vs " +
                    std::to_string(Got.size()) + ")";
  if (At != Ref.size() || At != Got.size())
    Out += "\n  reference: ..." + Excerpt(Ref) + "...\n  candidate: ..." +
           Excerpt(Got) + "...";
  return Out;
}

/// Compares the deterministic RunResult facts; timing fields are excluded.
std::string diffRuns(const RunResult &Ref, const RunResult &Got) {
  auto Field = [](const char *Name, uint64_t A, uint64_t B) -> std::string {
    if (A == B)
      return "";
    return std::string(Name) + " " + std::to_string(A) + " vs " +
           std::to_string(B);
  };
  if (Ref.Status != Got.Status)
    return "status " + std::to_string(int(Ref.Status)) + " vs " +
           std::to_string(int(Got.Status));
  for (std::string D :
       {Field("executed-instrs", Ref.ExecutedInstrs, Got.ExecutedInstrs),
        Field("calls", Ref.Calls, Got.Calls),
        Field("objects-allocated", Ref.ObjectsAllocated,
              Got.ObjectsAllocated),
        Field("peak-frame-depth", Ref.PeakFrameDepth, Got.PeakFrameDepth),
        Field("sink-hash", Ref.SinkHash, Got.SinkHash)})
    if (!D.empty())
      return D;
  return "";
}

std::string diffSnapshots(const Snapshot &Ref, const Snapshot &Got) {
  if (std::string D = diffRuns(Ref.Run, Got.Run); !D.empty())
    return D;
  if (Ref.Graph != Got.Graph)
    return firstDiff("Gcost serialization", Ref.Graph, Got.Graph);
  if (Ref.Reports != Got.Reports)
    return firstDiff("client reports", Ref.Reports, Got.Reports);
  return "";
}

/// Bit pattern of a return value for exact comparison (floats bitwise).
uint64_t valueBits(const Value &V) {
  switch (V.Kind) {
  case ValueKind::Int:
    return uint64_t(V.I);
  case ValueKind::Float: {
    uint64_t B;
    std::memcpy(&B, &V.F, sizeof B);
    return B;
  }
  case ValueKind::Ref:
    return V.R;
  }
  return 0;
}

SessionConfig sessionConfig(const OracleConfig &Cfg) {
  SessionConfig SC;
  SC.Engine = Cfg.Engine;
  SC.Instrument = true;
  SC.Clients = Cfg.Clients;
  SC.Slicing = Cfg.Slicing;
  SC.Run.MaxInstructions = Cfg.MaxInstructions;
  return SC;
}

} // namespace

OracleResult fuzz::runOracle(const Module &M, const OracleConfig &Cfg) {
  OracleResult Out;
  auto Fail = [&](const std::string &Mode, const std::string &Detail) {
    Out.Ok = false;
    Out.Mode = Mode;
    Out.Detail = Detail;
    return Out;
  };

  // Reference: one live session, recording the hook stream on the side so
  // the replay mode consumes exactly this execution.
  StringOutStream Sink;
  SessionConfig RefCfg = sessionConfig(Cfg);
  if (Cfg.CheckReplay)
    RefCfg.RecordSink = &Sink;
  ProfileSession Ref(RefCfg);
  TimedRun RefRun = Ref.run(M);
  if (!Ref.recordError().empty())
    return Fail("record", Ref.recordError());
  Snapshot RefSnap = snapshot(Ref, M, RefRun.Run);

  // Mode 1: hot-path caches flipped. The caches must be observation-free.
  if (Cfg.CheckCachesFlip) {
    OracleConfig Flip = Cfg;
    Flip.Slicing.HotPathCaches = !Cfg.Slicing.HotPathCaches;
    ProfileSession S(sessionConfig(Flip));
    TimedRun R = S.run(M);
    if (std::string D = diffSnapshots(RefSnap, snapshot(S, M, R.Run));
        !D.empty())
      return Fail("caches-flip", D);
  }

  // Mode 2: the other execution engine. The threaded backend promises the
  // interpreter's exact hook stream, trap ordering and budget accounting,
  // so every artifact — run facts included — must be byte-identical.
  if (Cfg.CheckEngines) {
    EngineKind Other = Cfg.Engine == EngineKind::Threaded
                           ? EngineKind::Interp
                           : EngineKind::Threaded;
    SessionConfig SC = sessionConfig(Cfg);
    SC.Engine = Other;
    ProfileSession S(SC);
    TimedRun R = S.run(M);
    if (std::string D = diffSnapshots(RefSnap, snapshot(S, M, R.Run));
        !D.empty())
      return Fail(std::string("engines(") + engineKindName(Other) + ")", D);
  }

  // Mode 3: record -> replay. Replaying the reference's trace into a fresh
  // session must rebuild identical profiler state.
  if (Cfg.CheckReplay) {
    ProfileSession S(sessionConfig(Cfg));
    ReplayRun R = S.replay(M, Sink.str());
    if (!R.Ok)
      return Fail("replay", R.Error);
    Snapshot Got = snapshot(S, M, RefSnap.Run); // replay has no RunResult
    if (std::string D = diffSnapshots(RefSnap, Got); !D.empty())
      return Fail("replay", D);
  }

  // Mode 4: sharded runs. For every shard count S the fold must equal one
  // session running the module S times sequentially, at any thread count.
  if (Cfg.CheckSharded) {
    for (unsigned Shards : Cfg.ShardCounts) {
      ProfileSession Seq(sessionConfig(Cfg));
      TimedRun SeqRun{};
      for (unsigned I = 0; I != Shards; ++I)
        SeqRun = Seq.run(M);
      Snapshot SeqSnap = snapshot(Seq, M, SeqRun.Run);
      // A repeated run is deterministic, so the sequential reference's
      // last RunResult must itself match the single-run reference.
      if (std::string D = diffRuns(RefSnap.Run, SeqSnap.Run); !D.empty())
        return Fail("sequential-reuse(" + std::to_string(Shards) + ")", D);
      for (unsigned Threads : Cfg.ThreadCounts) {
        ShardedSession Sh =
            runShardedSession(M, Shards, sessionConfig(Cfg), Threads);
        std::string Mode = "sharded(" + std::to_string(Shards) +
                           ", threads=" + std::to_string(Threads) + ")";
        if (!Sh.Error.empty())
          return Fail(Mode, Sh.Error);
        if (!Sh.Session)
          return Fail(Mode, "sharded session missing");
        if (Sh.TotalInstrs != uint64_t(Shards) * RefSnap.Run.ExecutedInstrs)
          return Fail(Mode,
                      "total-instrs " + std::to_string(Sh.TotalInstrs) +
                          " != shards * " +
                          std::to_string(RefSnap.Run.ExecutedInstrs));
        Snapshot Got = snapshot(*Sh.Session, M, Sh.Run);
        if (std::string D = diffSnapshots(SeqSnap, Got); !D.empty())
          return Fail(Mode, D);
      }
    }
  }

  // Mode 5: GraphIO round trip — parse the canonical serialization and
  // re-serialize; the bytes must be reproduced exactly.
  if (Cfg.CheckGraphIO && !RefSnap.Graph.empty()) {
    std::vector<std::string> Errors;
    std::unique_ptr<DepGraph> G = readGraph(RefSnap.Graph, Errors);
    if (!G) {
      std::string D = "readGraph rejected writeGraph output";
      for (const std::string &E : Errors)
        D += "\n  " + E;
      return Fail("graphio-roundtrip", D);
    }
    StringOutStream OS;
    writeGraph(*G, OS);
    if (OS.str() != RefSnap.Graph)
      return Fail("graphio-roundtrip",
                  firstDiff("re-serialized graph", RefSnap.Graph, OS.str()));
  }

  // Mode 6: the rewrite-pass pipeline. The pipeline promises that every
  // committed rewrite preserves the observable contract; re-check it from
  // the outside so a broken commit/rollback path (not just a broken pass)
  // is caught. The rewritten module must also still verify.
  if (Cfg.CheckOptimize) {
    opt::PipelineOptions PO;
    PO.Engine = Cfg.Engine;
    PO.Slicing = Cfg.Slicing;
    PO.Run.MaxInstructions = Cfg.MaxInstructions;
    opt::PassManager PM(PO);
    opt::PipelineResult PR = PM.run(M);
    if (PR.Changed) {
      if (!PR.M)
        return Fail("optimize", "pipeline reported Changed without a module");
      std::vector<std::string> Errors;
      if (!verifyModule(*PR.M, Errors)) {
        std::string D = "rewritten module failed the verifier";
        for (const std::string &E : Errors)
          D += "\n  " + E;
        return Fail("optimize", D);
      }
      RunConfig RC;
      RC.MaxInstructions = Cfg.MaxInstructions;
      for (EngineKind E : {EngineKind::Interp, EngineKind::Threaded}) {
        Heap HA, HB;
        ComposedProfiler<> PA, PB;
        RunResult A = runWithEngine(E, M, HA, PA, RC);
        RunResult B = runWithEngine(E, *PR.M, HB, PB, RC);
        std::string Mode = std::string("optimize(") + engineKindName(E) + ")";
        if (A.Status != B.Status)
          return Fail(Mode, "status " + std::to_string(int(A.Status)) +
                                " vs " + std::to_string(int(B.Status)));
        if (A.SinkHash != B.SinkHash)
          return Fail(Mode, "sink-hash " + std::to_string(A.SinkHash) +
                                " vs " + std::to_string(B.SinkHash));
        if (A.ReturnValue.Kind != B.ReturnValue.Kind ||
            valueBits(A.ReturnValue) != valueBits(B.ReturnValue))
          return Fail(Mode, "return value diverged");
      }
    }
  }

  return Out;
}

std::string fuzz::configFlags(const OracleConfig &Cfg) {
  std::string Out = "--slots=" + std::to_string(Cfg.Slicing.ContextSlots);
  Out += " --clients=" + clientSetName(Cfg.Clients);
  Out += " --thin-slicing=" + std::to_string(int(Cfg.Slicing.ThinSlicing));
  Out += " --context-sensitive=" +
         std::to_string(int(Cfg.Slicing.ContextSensitive));
  Out += " --caches=" + std::to_string(int(Cfg.Slicing.HotPathCaches));
  Out += std::string(" --engine=") + engineKindName(Cfg.Engine);
  Out += " --engines=" + std::to_string(int(Cfg.CheckEngines));
  Out += " --optimize=" + std::to_string(int(Cfg.CheckOptimize));
  return Out;
}
