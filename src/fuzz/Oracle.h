//===- fuzz/Oracle.h - Differential execution-mode oracle ------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind lud-fuzz: one module, every execution
/// mode, byte-for-byte agreement. The reference is a live single-thread
/// ProfileSession; against it the oracle checks
///
///   - the same session with SlicingConfig::HotPathCaches flipped (the
///     caches promise to be observation-free),
///   - the same session on the other execution engine (threaded vs
///     interpreted — runtime/ThreadedEngine.h promises a byte-identical
///     hook stream, so Gcost, reports and run facts must agree),
///   - record -> replay through an in-memory trace sink,
///   - sharded runs (runShardedSession) at each configured shard count and
///     thread count, against a sequential-reuse reference session that
///     run()s the module Shards times — the fold invariant the parallel
///     driver documents,
///   - a GraphIO round trip: writeGraph -> readGraph -> writeGraph must
///     reproduce the exact bytes,
///   - the rewrite-pass pipeline (analysis/PassManager.h): when it commits
///     rewrites, the rewritten module must verify and reproduce the
///     original's observables (status, sink hash, return value) on both
///     engines — an independent re-check of the validation the pipeline
///     already performed internally.
///
/// Compared artifacts: the canonical Gcost serialization, every client
/// report section, and the RunResult facts of the execution (status,
/// executed instructions, calls, allocations, sink hash). Any mismatch is
/// reported with the failing mode and a first-difference diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_FUZZ_ORACLE_H
#define LUD_FUZZ_ORACLE_H

#include "profiling/SlicingProfiler.h"
#include "workloads/Driver.h"

#include <string>
#include <vector>

namespace lud {

class Module;

namespace fuzz {

struct OracleConfig {
  /// Base slicing knobs; the caches-flip mode toggles HotPathCaches.
  SlicingConfig Slicing;
  /// Engine the reference session (and every non-engine mode) runs on; the
  /// engines mode runs the *other* backend and diffs against the reference.
  EngineKind Engine = defaultEngineKind();
  /// Client analyses driven through every mode.
  ClientSet Clients = ClientSet::all();
  /// Shard counts the sharded mode exercises.
  std::vector<unsigned> ShardCounts = {2, 4, 8};
  /// Thread counts per shard count (1 is the sequential reference pool).
  std::vector<unsigned> ThreadCounts = {1, 4};
  /// Interpreter budget safety valve for runaway candidates. Budget
  /// exhaustion is deterministic, so it cross-checks like any other run.
  uint64_t MaxInstructions = 50'000'000;
  bool CheckCachesFlip = true;
  bool CheckEngines = true;
  bool CheckReplay = true;
  bool CheckSharded = true;
  bool CheckGraphIO = true;
  /// Run the rewrite-pass pipeline and re-check its output-preservation
  /// contract. Costs several extra executions per candidate, so the
  /// fuzzing loop enables it on a fraction of runs.
  bool CheckOptimize = false;
};

struct OracleResult {
  bool Ok = true;
  /// The cross-check that diverged, e.g. "caches-flip", "engines(threaded)",
  /// "replay", "sharded(4, threads=4)", "graphio-roundtrip", "verifier",
  /// "optimize(interp)".
  std::string Mode;
  /// First-difference diagnostic: artifact, byte offset, excerpts.
  std::string Detail;
};

/// Drives \p M through every enabled mode and cross-checks the results.
OracleResult runOracle(const Module &M, const OracleConfig &Cfg);

/// Renders \p Cfg as the `lud-fuzz --check` flags that reproduce it, e.g.
/// "--slots=8 --clients=copy,nullness --thin-slicing=1 ...".
std::string configFlags(const OracleConfig &Cfg);

} // namespace fuzz
} // namespace lud

#endif // LUD_FUZZ_ORACLE_H
