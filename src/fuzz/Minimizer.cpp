//===- fuzz/Minimizer.cpp - ddmin program reduction ------------------------===//

#include "fuzz/Minimizer.h"

#include "ir/Clone.h"
#include "ir/Module.h"

#include <algorithm>
#include <vector>

using namespace lud;
using namespace lud::fuzz;

namespace {

/// One reduction: the alive-set over original instruction ids plus the
/// trial budget. Units are groups of instruction ids removed together.
class Shrinker {
public:
  Shrinker(const Module &M, const FailurePredicate &Fails,
           MinimizerOptions Opts)
      : Orig(M), Fails(Fails), Opts(Opts), Alive(M.getNumInstrs(), true) {}

  std::unique_ptr<Module> build(const std::vector<bool> &A) const {
    return cloneModule(Orig,
                       [&](const Instruction &I) { return A[I.getId()]; });
  }

  bool failsWith(const std::vector<bool> &A) {
    if (Trials >= Opts.MaxTrials)
      return false;
    ++Trials;
    std::unique_ptr<Module> Candidate = build(A);
    return Fails(*Candidate);
  }

  /// Droppable = non-terminator and still alive.
  uint32_t aliveCount() const {
    uint32_t N = 0;
    for (uint32_t Id = 0; Id != Orig.getNumInstrs(); ++Id)
      if (Alive[Id] && !Orig.getInstr(InstrId(Id))->isTerminator())
        ++N;
    return N;
  }

  enum class Granularity { Function, Block, Instruction };

  /// Groups the currently-alive droppable instructions into removal units.
  std::vector<std::vector<uint32_t>> units(Granularity G) const {
    std::vector<std::vector<uint32_t>> Units;
    for (const auto &F : Orig.functions()) {
      if (G == Granularity::Function)
        Units.emplace_back();
      for (const auto &BB : F->blocks()) {
        if (G == Granularity::Block)
          Units.emplace_back();
        for (const auto &IPtr : BB->insts()) {
          const Instruction &I = *IPtr;
          if (I.isTerminator() || !Alive[I.getId()])
            continue;
          if (G == Granularity::Instruction)
            Units.emplace_back();
          Units.back().push_back(uint32_t(I.getId()));
        }
        if (G == Granularity::Block && Units.back().empty())
          Units.pop_back();
      }
      if (G == Granularity::Function && Units.back().empty())
        Units.pop_back();
    }
    return Units;
  }

  /// Classic ddmin over \p Units: try keeping only one chunk, then try
  /// removing one chunk (complement), doubling the number of chunks when
  /// neither makes progress. The alive-set shrinks monotonically.
  void ddmin(std::vector<std::vector<uint32_t>> Units) {
    size_t N = std::min<size_t>(2, std::max<size_t>(Units.size(), 1));
    while (!Units.empty() && Trials < Opts.MaxTrials) {
      size_t ChunkLen = (Units.size() + N - 1) / N;
      bool Progress = false;

      auto Without = [&](size_t Lo, size_t Hi) {
        // Candidate alive-set with units [Lo, Hi) removed.
        std::vector<bool> A = Alive;
        for (size_t U = Lo; U != Hi; ++U)
          for (uint32_t Id : Units[U])
            A[Id] = false;
        return A;
      };
      auto Adopt = [&](size_t Lo, size_t Hi, std::vector<bool> A) {
        Alive = std::move(A);
        Units.erase(Units.begin() + long(Lo), Units.begin() + long(Hi));
      };

      // Reduce to chunk: drop everything but chunk C in one step.
      for (size_t C = 0; C * ChunkLen < Units.size(); ++C) {
        size_t Lo = C * ChunkLen, Hi = std::min(Lo + ChunkLen, Units.size());
        if (Lo == 0 && Hi == Units.size())
          continue; // that is the current state, not a reduction
        std::vector<bool> A = Without(0, Lo);
        for (size_t U = Hi; U != Units.size(); ++U)
          for (uint32_t Id : Units[U])
            A[Id] = false;
        if (failsWith(A)) {
          Alive = std::move(A);
          std::vector<std::vector<uint32_t>> Kept(
              Units.begin() + long(Lo), Units.begin() + long(Hi));
          Units = std::move(Kept);
          N = 2;
          Progress = true;
          break;
        }
      }
      if (Progress)
        continue;

      // Reduce to complement: drop chunk C, keep the rest.
      for (size_t C = 0; C * ChunkLen < Units.size(); ++C) {
        size_t Lo = C * ChunkLen, Hi = std::min(Lo + ChunkLen, Units.size());
        std::vector<bool> A = Without(Lo, Hi);
        if (failsWith(A)) {
          Adopt(Lo, Hi, std::move(A));
          N = std::max<size_t>(N - 1, 2);
          Progress = true;
          break;
        }
      }
      if (Progress)
        continue;

      if (N >= Units.size())
        break;
      N = std::min(N * 2, Units.size());
    }
  }

  const Module &Orig;
  const FailurePredicate &Fails;
  MinimizerOptions Opts;
  std::vector<bool> Alive;
  uint64_t Trials = 0;
};

} // namespace

MinimizeResult fuzz::minimizeModule(const Module &M,
                                    const FailurePredicate &Fails,
                                    MinimizerOptions Opts) {
  Shrinker S(M, Fails, Opts);
  MinimizeResult Out;
  Out.OriginalInstrs = S.aliveCount();

  // The failure must survive a plain clone (cloning renumbers instruction
  // ids); if it does not, minimizing would chase a phantom.
  Out.Reproduced = S.failsWith(S.Alive);
  if (Out.Reproduced) {
    S.ddmin(S.units(Shrinker::Granularity::Function));
    S.ddmin(S.units(Shrinker::Granularity::Block));
    // Instruction-granularity passes repeat to a fixpoint: removing one
    // instruction often unblocks removing another.
    for (;;) {
      uint32_t Before = S.aliveCount();
      S.ddmin(S.units(Shrinker::Granularity::Instruction));
      if (S.aliveCount() == Before || S.Trials >= Opts.MaxTrials)
        break;
    }
  }

  Out.FinalInstrs = S.aliveCount();
  Out.Trials = S.Trials;
  Out.M = S.build(S.Alive);
  return Out;
}
