//===- fuzz/Fuzzer.h - Randomized differential fuzzing loop ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lud-fuzz driving loop: per run, derive an independent RNG stream
/// (RNG::split, so run k is reproducible in isolation), draw a random
/// program shape and a random analysis configuration, generate a
/// verifier-clean module, and hand it to the differential oracle. The
/// candidate program is written to the corpus directory BEFORE the oracle
/// runs, so a crash or sanitizer abort always leaves the offending input
/// on disk. On divergence the ddmin minimizer shrinks the program and the
/// corpus gains a minimized repro, the original, and a .txt note carrying
/// the exact `lud-fuzz --check` command line that reproduces the failure.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_FUZZ_FUZZER_H
#define LUD_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"
#include "support/RNG.h"
#include "workloads/RandomProgram.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lud {

class OutStream;

namespace fuzz {

struct FuzzOptions {
  /// Base seed; run k draws from split stream k, so any single run can be
  /// re-derived without replaying the runs before it.
  uint64_t Seed = 1;
  uint64_t Runs = 100;
  /// Stop early after this much wall time (0 = no time budget).
  double TimeBudgetSeconds = 0;
  /// Where candidates and repros are written.
  std::string CorpusDir = "fuzz-corpus";
  /// Shrink failures with ddmin before emitting the repro.
  bool Minimize = true;
  uint64_t MinimizerMaxTrials = 4096;
  /// Progress and failure lines (null = silent).
  OutStream *Log = nullptr;
};

struct FuzzFailure {
  uint64_t RunIndex = 0;
  std::string Mode;
  std::string Detail;
  /// Path of the minimized .lud repro (the original when minimization was
  /// off or the failure did not survive re-cloning).
  std::string ReproPath;
  OracleConfig Config;
};

struct FuzzReport {
  uint64_t RunsDone = 0;
  std::vector<FuzzFailure> Failures;
};

/// Runs the fuzzing loop; returns what it found.
FuzzReport runFuzz(const FuzzOptions &Opts);

/// The per-run knob derivations, exposed so deterministic tests can sweep
/// the same configurations the fuzzer explores.
OracleConfig randomOracleConfig(RNG &R);
RandomProgramOptions randomProgramOptions(RNG &R);

} // namespace fuzz
} // namespace lud

#endif // LUD_FUZZ_FUZZER_H
