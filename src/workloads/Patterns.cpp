//===- workloads/Patterns.cpp - Reusable bloat-pattern emitters ------------===//

#include "workloads/Patterns.h"

#include "workloads/EmitUtil.h"

using namespace lud;

namespace {

/// Emits `<P>_mkstr(len, seed) -> Str`: a pattern-local string factory so
/// the pattern's strings have their own allocation site (attribution in
/// the ranked report). Honors the module's CachedStrHash option so
/// Str.hashCode works on these strings.
FuncId emitLocalMakeStr(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  B.beginFunction(P + "_mkstr", 2); // (len, seed)
  Reg S = C.allocPlanted(L.Str);
  Reg Chars = B.allocArray(TypeKind::Int, 0);
  Reg H = B.iconst(0);
  Reg C7 = B.iconst(7);
  Reg C31 = B.iconst(31);
  Reg Mask = B.iconst(127);
  Reg HashMask = B.iconst(0x7FFFFFFF);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg T1 = B.mul(I, C7);
    Reg T2 = B.add(T1, 1); // + seed
    Reg Ch = B.bin(BinOp::And, T2, Mask);
    B.storeElem(Chars, I, Ch);
    Reg HM = B.mul(H, C31);
    Reg HA = B.add(HM, Ch);
    B.binInto(H, BinOp::And, HA, HashMask);
  });
  B.storeField(S, L.Str, "chars", Chars);
  B.storeField(S, L.Str, "len", 0);
  if (L.Opts.CachedStrHash)
    B.storeField(S, L.Str, "hash", H);
  B.ret(S);
  B.endFunction();
  return C.module().findFunction(P + "_mkstr");
}

} // namespace

FuncId lud::emitListSizeOnly(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();
  ClassDecl *Entry = M.addClass(P + "_Entry");
  Entry->addField("v", Type::makeInt());

  B.beginFunction(P + "_fill", 1); // (n) -> size
  Reg RV = B.alloc(L.RefVec);
  Reg C4 = B.iconst(4);
  B.callVoid("RefVec.init", {RV, C4});
  Reg C17 = B.iconst(17);
  emitCountedLoop(B, 0, [&](Reg I) {
    // Expensively computed value...
    Reg V1 = B.mul(I, I);
    Reg V2 = B.add(V1, C17);
    Reg V3 = B.mul(V2, V2);
    Reg V4 = B.bin(BinOp::Xor, V3, V1);
    // ...boxed and appended, never to be read again.
    Reg E = C.allocPlanted(Entry->getId());
    B.storeField(E, Entry->getId(), "v", V4);
    B.callVoid("RefVec.add", {RV, E});
  });
  Reg Sz = B.call(L.RefVecSize, {RV});
  B.ret(Sz);
  B.endFunction();
  return M.findFunction(P + "_fill");
}

FuncId lud::emitStringChurn(PatternContext &C, const std::string &P,
                            bool Optimized) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();

  B.beginFunction(P + "_strchurn", 2); // (n, flag) -> int
  Reg Acc = B.iconst(0);
  Reg One = B.iconst(1);
  Reg C16 = B.iconst(16);
  Reg C7 = B.iconst(7);
  Reg Mask = B.iconst(127);
  auto BuildAndUse = [&](Reg I) {
    // Build the debug string (a toString analogue)...
    Reg S = C.allocPlanted(L.Str);
    Reg Chars = B.allocArray(TypeKind::Int, C16);
    emitCountedLoop(B, C16, [&](Reg J) {
      Reg T1 = B.mul(I, C7);
      Reg T2 = B.add(T1, J);
      Reg Ch = B.bin(BinOp::And, T2, Mask);
      B.storeElem(Chars, J, Ch);
    });
    B.storeField(S, L.Str, "chars", Chars);
    B.storeField(S, L.Str, "len", C16);
    if (L.Opts.CachedStrHash) {
      Reg Z = B.iconst(0);
      B.storeField(S, L.Str, "hash", Z);
    }
    return S;
  };
  emitCountedLoop(B, 0, [&](Reg I) {
    if (!Optimized) {
      // bloat's bug: strings built unconditionally, consumed only when the
      // (production-false) debug flag is set.
      Reg S = BuildAndUse(I);
      emitIf(B, CmpOp::Eq, 1, One, [&] {
        Reg H = B.call(L.StrHash, {S});
        B.binInto(Acc, BinOp::Add, Acc, H);
      });
    } else {
      // Fix: the guard dominates the construction.
      emitIf(B, CmpOp::Eq, 1, One, [&] {
        Reg S = BuildAndUse(I);
        Reg H = B.call(L.StrHash, {S});
        B.binInto(Acc, BinOp::Add, Acc, H);
      });
    }
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_strchurn");
}

FuncId lud::emitVisitorChurn(PatternContext &C, const std::string &P,
                             bool Optimized) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Cmp = M.addClass(P + "_Cmp");
  Cmp->addField("depth", Type::makeInt());

  // The comparison logic itself.
  B.beginMethod(Cmp->getId(), "cmpv", 3); // (this, a, b) -> int
  Reg T = B.sub(1, 2);
  Reg T2 = B.mul(T, T);
  Reg One = B.iconst(1);
  Reg R = B.add(T2, One);
  B.ret(R);
  B.endFunction();
  FuncId CmpV = M.findFunction(P + "_Cmp.cmpv");

  B.beginFunction(P + "_cmpstatic", 2); // (a, b) -> int
  Reg ST = B.sub(0, 1);
  Reg ST2 = B.mul(ST, ST);
  Reg SOne = B.iconst(1);
  Reg SR = B.add(ST2, SOne);
  B.ret(SR);
  B.endFunction();
  FuncId CmpStatic = M.findFunction(P + "_cmpstatic");

  B.beginFunction(P + "_visit", 1); // (n) -> int
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg Bv = B.sub(0, I); // n - i
    Reg Res;
    if (!Optimized) {
      // A fresh comparator per comparison: its only field is written and
      // never read (the comparator carries no useful data).
      Reg CO = C.allocPlanted(Cmp->getId());
      B.storeField(CO, Cmp->getId(), "depth", I);
      Res = B.call(CmpV, {CO, I, Bv});
    } else {
      Res = B.call(CmpStatic, {I, Bv});
    }
    B.binInto(Acc, BinOp::Add, Acc, Res);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_visit");
}

FuncId lud::emitClonePerOp(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();

  // Attribute the churn to Matrix.clone's allocation (where the paper's
  // report pointed): record it as planted.
  Function *CloneFn = M.getFunction(L.MatrixClone);
  for (const auto &BB : CloneFn->blocks())
    for (const auto &I : BB->insts())
      if (const auto *A = dyn_cast<AllocInst>(I.get()))
        if (A->Class == L.Matrix)
          C.Planted.push_back(A);

  B.beginFunction(P + "_render", 2); // (n, msize) -> float as int
  Reg Seed = B.iconst(3);
  Reg Mx = B.call(L.MatrixMake, {Reg(1), Seed});
  Reg FAcc = B.fconst(0.0);
  Reg Factor = B.fconst(1.00001);
  emitCountedLoop(B, 0, [&](Reg) {
    Reg M2 = B.call(L.MatrixScale, {Mx, Factor});
    Reg M3 = B.call(L.MatrixTranspose, {M2});
    Reg S = B.call(L.MatrixSum, {M3});
    B.binInto(FAcc, BinOp::Add, FAcc, S);
  });
  Reg Out = B.un(UnOp::F2I, FAcc);
  B.ret(Out);
  B.endFunction();
  return M.findFunction(P + "_render");
}

FuncId lud::emitBitsRoundTrip(PatternContext &C, const std::string &P,
                              bool Optimized) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_bits", 1); // (n) -> int
  Reg Arr = B.allocArray(Optimized ? TypeKind::Float : TypeKind::Int, 0);
  C.Planted.push_back(B.block()->insts().back().get());
  Reg Half = B.fconst(0.5);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg F0 = B.un(UnOp::I2F, I);
    Reg F = B.mul(F0, Half);
    if (!Optimized) {
      // Encode the float into the int array (sunflow's
      // Float.floatToIntBits slot packing)...
      Reg Bits = B.un(UnOp::FBits, F);
      B.storeElem(Arr, I, Bits);
    } else {
      B.storeElem(Arr, I, F);
    }
  });
  Reg FAcc = B.fconst(0.0);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg V = B.loadElem(Arr, I);
    Reg F = Optimized ? V : B.un(UnOp::BitsF, V); // ...and decode it back.
    B.binInto(FAcc, BinOp::Add, FAcc, F);
  });
  Reg Out = B.un(UnOp::F2I, FAcc);
  B.ret(Out);
  B.endFunction();
  return M.findFunction(P + "_bits");
}

FuncId lud::emitRewriteBeforeRead(PatternContext &C, const std::string &P,
                                  bool Optimized) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *FC = M.addClass(P + "_FileContainer");
  FC->addField("meta", Type::makeArray(TypeKind::Int));

  B.beginFunction(P + "_meta", 1); // (n) -> int
  Reg Cont = B.alloc(FC->getId());
  Reg C8 = B.iconst(8);
  Reg Meta = B.allocArray(TypeKind::Int, C8);
  C.Planted.push_back(B.block()->insts().back().get());
  B.storeField(Cont, FC->getId(), "meta", Meta);
  Reg C31 = B.iconst(31);
  Reg Acc = B.iconst(0);
  Reg One = B.iconst(1);
  emitCountedLoop(B, 0, [&](Reg I) {
    if (!Optimized) {
      // derby's bug: the container metadata array is refreshed on every
      // page write with (mostly) the same data...
      emitCountedLoop(B, C8, [&](Reg J) {
        Reg T1 = B.mul(I, C31);
        Reg T2 = B.add(T1, J);
        B.storeElem(Meta, J, T2);
      });
    }
    // ...amid genuinely useful page work.
    Reg W1 = B.mul(I, C31);
    Reg W2 = B.add(W1, One);
    B.binInto(Acc, BinOp::Add, Acc, W2);
  });
  if (Optimized) {
    // Fix: update the metadata only before it is read.
    emitCountedLoop(B, C8, [&](Reg J) {
      Reg T1 = B.mul(0, C31);
      Reg T2 = B.add(T1, J);
      B.storeElem(Meta, J, T2);
    });
  }
  Reg Meta2 = B.loadField(Cont, FC->getId(), "meta");
  emitCountedLoop(B, C8, [&](Reg J) {
    Reg V = B.loadElem(Meta2, J);
    B.binInto(Acc, BinOp::Add, Acc, V);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_meta");
}

FuncId lud::emitStringKeyLookup(PatternContext &C, const std::string &P,
                                bool Optimized) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();
  FuncId MkStr = Optimized ? kNoFunc : emitLocalMakeStr(C, P);

  B.beginFunction(P + "_lookup", 1); // (n) -> int
  Reg K = B.iconst(32);
  Reg C12 = B.iconst(12);
  Reg Acc = B.iconst(0);
  if (!Optimized) {
    // derby's bug: ContextManager ids are strings used as map keys; every
    // query builds a fresh key string.
    Reg Map = B.alloc(L.StrMap);
    Reg C64 = B.iconst(64);
    B.callVoid("StrMap.init", {Map, C64});
    emitCountedLoop(B, K, [&](Reg I) {
      Reg S = B.call(MkStr, {C12, I});
      B.callVoid("StrMap.put", {Map, S, I});
    });
    emitCountedLoop(B, 0, [&](Reg I) {
      Reg Idx = B.bin(BinOp::Rem, I, K);
      Reg Key = B.call(MkStr, {C12, Idx});
      Reg V = B.call(L.StrMapGet, {Map, Key});
      B.binInto(Acc, BinOp::Add, Acc, V);
    });
  } else {
    // Fix: dense integer ids index a plain array.
    Reg Vals = B.allocArray(TypeKind::Int, K);
    emitCountedLoop(B, K, [&](Reg I) { B.storeElem(Vals, I, I); });
    emitCountedLoop(B, 0, [&](Reg I) {
      Reg Idx = B.bin(BinOp::Rem, I, K);
      Reg V = B.loadElem(Vals, Idx);
      B.binInto(Acc, BinOp::Add, Acc, V);
    });
  }
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_lookup");
}

FuncId lud::emitRehashGrowth(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();
  FuncId MkStr = emitLocalMakeStr(C, P);

  B.beginFunction(P + "_index", 1); // (n) -> int
  Reg Map = B.alloc(L.StrMap);
  Reg C4 = B.iconst(4);
  B.callVoid("StrMap.init", {Map, C4}); // Tiny: forces repeated rehashes.
  Reg C24 = B.iconst(24);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg S = B.call(MkStr, {C24, I});
    B.callVoid("StrMap.put", {Map, S, I});
  });
  Reg Acc = B.iconst(0);
  Reg Quarter = B.bin(BinOp::Shr, 0, B.iconst(2));
  emitCountedLoop(B, Quarter, [&](Reg I) {
    Reg Key = B.call(MkStr, {C24, I});
    Reg V = B.call(L.StrMapGet, {Map, Key});
    B.binInto(Acc, BinOp::Add, Acc, V);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_index");
}

FuncId lud::emitDirectoryList(PatternContext &C, const std::string &P,
                              bool Optimized) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();
  ClassDecl *File = M.addClass(P + "_File");
  File->addField("sz", Type::makeInt());
  File->addField("flags", Type::makeInt());

  // isPackage(seed) -> 0/1 (Figure 6's ClasspathDirectory.isPackage).
  B.beginFunction(P + "_ispkg1", 1);
  Reg C3 = B.iconst(3);
  Reg Zero = B.iconst(0);
  Reg Out = B.iconst(0);
  Reg Exists = B.bin(BinOp::Rem, 0, C3);
  if (!Optimized) {
    // Bug: directoryList builds the whole list up front...
    Reg Ret = C.allocPlanted(L.RefVec);
    Reg C4 = B.iconst(4);
    B.callVoid("RefVec.init", {Ret, C4});
    Reg C8 = B.iconst(8);
    Reg C13 = B.iconst(13);
    emitCountedLoop(B, C8, [&](Reg J) {
      Reg F = C.allocPlanted(File->getId());
      Reg S1 = B.mul(J, C13);
      Reg S2 = B.add(S1, 0);
      Reg S3 = B.mul(S2, S2);
      B.storeField(F, File->getId(), "sz", S3);
      Reg Fl = B.bin(BinOp::And, S2, C8);
      B.storeField(F, File->getId(), "flags", Fl);
      B.callVoid("RefVec.add", {Ret, F});
    });
    // ...only for isPackage to null-check the result. Model "returns null
    // when nothing found" by consulting Exists; the list contents are
    // never read either way.
    emitIfElse(
        B, CmpOp::Eq, Exists, Zero,
        [&] {
          Reg One = B.iconst(1);
          B.moveInto(Out, One);
        },
        [&] {
          Reg Z2 = B.iconst(0);
          B.moveInto(Out, Z2);
        });
  } else {
    // Fix: the specialized directoryList answers without building a list.
    emitIf(B, CmpOp::Eq, Exists, Zero, [&] {
      Reg One = B.iconst(1);
      B.moveInto(Out, One);
    });
  }
  B.ret(Out);
  B.endFunction();
  FuncId IsPkg = M.findFunction(P + "_ispkg1");

  B.beginFunction(P + "_ispkg", 1); // (n) -> hit count
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg R = B.call(IsPkg, {I});
    B.binInto(Acc, BinOp::Add, Acc, R);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_ispkg");
}

FuncId lud::emitArrayCopyUpdate(PatternContext &C, const std::string &P,
                                bool Optimized) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Mapper = M.addClass(P + "_Mapper");
  Mapper->addField("carr", Type::makeArray(TypeKind::Ref));
  Mapper->addField("cnt", Type::makeInt());
  ClassDecl *Ctx = M.addClass(P + "_Ctx");
  Ctx->addField("id", Type::makeInt());

  B.beginFunction(P + "_mapper", 1); // (n) -> int
  Reg Mp = B.alloc(Mapper->getId());
  Reg Zero = B.iconst(0);
  Reg One = B.iconst(1);
  if (!Optimized) {
    Reg Empty = B.allocArray(TypeKind::Ref, Zero);
    B.storeField(Mp, Mapper->getId(), "carr", Empty);
  } else {
    // Fix: one array preallocated and reused.
    Reg Arr = B.allocArray(TypeKind::Ref, 0);
    B.storeField(Mp, Mapper->getId(), "carr", Arr);
  }
  B.storeField(Mp, Mapper->getId(), "cnt", Zero);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg NewCtx = B.alloc(Ctx->getId());
    B.storeField(NewCtx, Ctx->getId(), "id", I);
    Reg Cnt = B.loadField(Mp, Mapper->getId(), "cnt");
    Reg Old = B.loadField(Mp, Mapper->getId(), "carr");
    if (!Optimized) {
      // tomcat's bug: a fresh array per update, full copy, old discarded.
      Reg NCnt = B.add(Cnt, One);
      Reg NArr = B.allocArray(TypeKind::Ref, NCnt);
      C.Planted.push_back(B.block()->insts().back().get());
      emitCountedLoop(B, Cnt, [&](Reg J) {
        Reg E = B.loadElem(Old, J);
        B.storeElem(NArr, J, E);
      });
      B.storeElem(NArr, Cnt, NewCtx);
      B.storeField(Mp, Mapper->getId(), "carr", NArr);
      B.storeField(Mp, Mapper->getId(), "cnt", NCnt);
    } else {
      B.storeElem(Old, Cnt, NewCtx);
      Reg NCnt = B.add(Cnt, One);
      B.storeField(Mp, Mapper->getId(), "cnt", NCnt);
    }
  });
  // Lookup phase: scan for one context id.
  Reg Acc = B.iconst(0);
  Reg Target = B.bin(BinOp::Shr, 0, One);
  Reg Arr2 = B.loadField(Mp, Mapper->getId(), "carr");
  Reg Cnt2 = B.loadField(Mp, Mapper->getId(), "cnt");
  emitCountedLoop(B, Cnt2, [&](Reg J) {
    Reg E = B.loadElem(Arr2, J);
    Reg Id = B.loadField(E, Ctx->getId(), "id");
    emitIf(B, CmpOp::Eq, Id, Target,
           [&] { B.binInto(Acc, BinOp::Add, Acc, Id); });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_mapper");
}

FuncId lud::emitStringCompareDispatch(PatternContext &C, const std::string &P,
                                      bool Optimized) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();
  FuncId MkStr = Optimized ? kNoFunc : emitLocalMakeStr(C, P);

  B.beginFunction(P + "_dispatch", 1); // (n) -> int
  Reg C3 = B.iconst(3);
  Reg C8 = B.iconst(8);
  Reg One = B.iconst(1);
  Reg Two = B.iconst(2);
  Reg Acc = B.iconst(0);
  Reg TInt = kNoReg, TBool = kNoReg;
  if (!Optimized) {
    // The embedded type-name strings compared against.
    TInt = B.call(MkStr, {C8, One});
    TBool = B.call(MkStr, {C8, Two});
  }
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg Code = B.bin(BinOp::Rem, I, C3);
    if (!Optimized) {
      // tomcat's bug: getProperty re-derives the type name string and
      // string-compares it against the embedded names.
      Reg CodeP1 = B.add(Code, One);
      Reg Name = B.call(MkStr, {C8, CodeP1});
      Reg E1 = B.call(L.StrEquals, {Name, TInt});
      emitIfElse(
          B, CmpOp::Eq, E1, One,
          [&] { B.binInto(Acc, BinOp::Add, Acc, One); },
          [&] {
            Reg E2 = B.call(L.StrEquals, {Name, TBool});
            emitIfElse(
                B, CmpOp::Eq, E2, One,
                [&] { B.binInto(Acc, BinOp::Add, Acc, Two); },
                [&] { B.binInto(Acc, BinOp::Add, Acc, C3); });
          });
    } else {
      // Fix: compare the Class objects (here: integer tags) directly.
      Reg Zero = B.iconst(0);
      emitIfElse(
          B, CmpOp::Eq, Code, Zero,
          [&] { B.binInto(Acc, BinOp::Add, Acc, One); },
          [&] {
            emitIfElse(
                B, CmpOp::Eq, Code, One,
                [&] { B.binInto(Acc, BinOp::Add, Acc, Two); },
                [&] { B.binInto(Acc, BinOp::Add, Acc, C3); });
          });
    }
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_dispatch");
}

FuncId lud::emitWrapperIterator(PatternContext &C, const std::string &P,
                                bool Optimized) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *KB = M.addClass(P + "_KeyBlock");
  KB->addField("lo", Type::makeInt());
  KB->addField("hi", Type::makeInt());
  KB->addField("cur", Type::makeInt());
  ClassDecl *KI = M.addClass(P + "_KeyIter");
  KI->addField("blk", Type::makeRef(KB->getId()));

  B.beginFunction(P + "_ids", 1); // (n) -> int
  Reg Acc = B.iconst(0);
  if (!Optimized) {
    Reg C16 = B.iconst(16);
    Reg C31 = B.iconst(31);
    Reg NBlocks = B.bin(BinOp::Shr, 0, B.iconst(4)); // n / 16
    emitCountedLoop(B, NBlocks, [&](Reg Bk) {
      // tradebeans' bug: a KeyBlock + iterator pair wraps a plain integer
      // range, and the range bounds are redundantly re-derived ("database
      // queries") before use.
      Reg Blk = C.allocPlanted(KB->getId());
      Reg Lo1 = B.mul(Bk, C16);
      B.storeField(Blk, KB->getId(), "lo", Lo1);
      // Redundant re-query: recompute and overwrite lo and hi.
      Reg LoA = B.mul(Bk, C31);
      Reg LoB = B.sub(LoA, Bk);
      Reg LoC = B.mul(Bk, C16);
      Reg LoD = B.bin(BinOp::Or, LoC, B.bin(BinOp::And, LoB, B.iconst(0)));
      B.storeField(Blk, KB->getId(), "lo", LoD);
      Reg Hi = B.add(LoD, C16);
      B.storeField(Blk, KB->getId(), "hi", Hi);
      B.storeField(Blk, KB->getId(), "cur", LoD);
      Reg It = C.allocPlanted(KI->getId());
      B.storeField(It, KI->getId(), "blk", Blk);
      emitCountedLoop(B, C16, [&](Reg) {
        Reg Blk2 = B.loadField(It, KI->getId(), "blk");
        Reg Cur = B.loadField(Blk2, KB->getId(), "cur");
        B.binInto(Acc, BinOp::Add, Acc, Cur);
        Reg One = B.iconst(1);
        Reg Next = B.add(Cur, One);
        B.storeField(Blk2, KB->getId(), "cur", Next);
      });
    });
  } else {
    // Fix: ids are consecutive integers; just count.
    emitCountedLoop(B, 0, [&](Reg I) { B.binInto(Acc, BinOp::Add, Acc, I); });
  }
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_ids");
}

FuncId lud::emitBeanCopy(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *BeanA = M.addClass(P + "_BeanA");
  ClassDecl *BeanB = M.addClass(P + "_BeanB");
  for (const char *F : {"fa", "fb", "fc", "fd"}) {
    BeanA->addField(F, Type::makeInt());
    BeanB->addField(F, Type::makeInt());
  }

  B.beginFunction(P + "_convert", 1); // (n) -> int
  Reg Acc = B.iconst(0);
  Reg C5 = B.iconst(5);
  Reg C9 = B.iconst(9);
  emitCountedLoop(B, 0, [&](Reg I) {
    // Inbound representation...
    Reg A = B.alloc(BeanA->getId());
    Reg V1 = B.mul(I, C5);
    B.storeField(A, BeanA->getId(), "fa", V1);
    Reg V2 = B.add(V1, C9);
    B.storeField(A, BeanA->getId(), "fb", V2);
    Reg V3 = B.bin(BinOp::Xor, V1, V2);
    B.storeField(A, BeanA->getId(), "fc", V3);
    Reg V4 = B.sub(V3, I);
    B.storeField(A, BeanA->getId(), "fd", V4);
    // ...converted field by field into the SOAP-side bean...
    Reg Bb = C.allocPlanted(BeanB->getId());
    for (const char *F : {"fa", "fb", "fc", "fd"}) {
      Reg V = B.loadField(A, BeanA->getId(), F);
      B.storeField(Bb, BeanB->getId(), F, V);
    }
    // ...and back into a fresh inbound bean on the response path.
    Reg A2 = C.allocPlanted(BeanA->getId());
    for (const char *F : {"fa", "fb", "fc", "fd"}) {
      Reg V = B.loadField(Bb, BeanB->getId(), F);
      B.storeField(A2, BeanA->getId(), F, V);
    }
    Reg Out = B.loadField(A2, BeanA->getId(), "fa");
    B.binInto(Acc, BinOp::Add, Acc, Out);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_convert");
}

FuncId lud::emitTempBoxes(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Box = M.addClass(P + "_Box");
  Box->addField("v", Type::makeInt());

  B.beginFunction(P + "_box", 1); // (n) -> int
  Reg Acc = B.iconst(0);
  Reg C3 = B.iconst(3);
  Reg One = B.iconst(1);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg V1 = B.mul(I, C3);
    Reg V2 = B.add(V1, One);
    Reg Bx = C.allocPlanted(Box->getId());
    B.storeField(Bx, Box->getId(), "v", V2);
    Reg T = B.loadField(Bx, Box->getId(), "v");
    B.binInto(Acc, BinOp::Add, Acc, T);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_box");
}

FuncId lud::emitBufferCopy(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_copybuf", 1); // (n rounds) -> int
  Reg C256 = B.iconst(256);
  Reg Src = B.allocArray(TypeKind::Int, C256);
  Reg ChanA = B.allocArray(TypeKind::Int, C256);
  Reg ChanB = B.allocArray(TypeKind::Int, C256);
  C.Planted.push_back(B.block()->insts().back().get());
  Reg ChanC = B.allocArray(TypeKind::Int, C256);
  C.Planted.push_back(B.block()->insts().back().get());
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg R) {
    emitCountedLoop(B, C256, [&](Reg J) {
      Reg T1 = B.mul(R, J);
      Reg T2 = B.bin(BinOp::Xor, T1, R);
      B.storeElem(Src, J, T2);
    });
    // The transformation result is fanned out into three output channels
    // with plain copies (xalan's representation shuffling)...
    emitCountedLoop(B, C256, [&](Reg J) {
      Reg V = B.loadElem(Src, J);
      B.storeElem(ChanA, J, V);
    });
    emitCountedLoop(B, C256, [&](Reg J) {
      Reg V = B.loadElem(Src, J);
      Reg W = B.bin(BinOp::Or, V, R);
      B.storeElem(ChanB, J, W);
    });
    emitCountedLoop(B, C256, [&](Reg J) {
      Reg V = B.loadElem(Src, J);
      Reg W = B.bin(BinOp::Xor, V, J);
      B.storeElem(ChanC, J, W);
    });
    // ...but only the first channel is ever consumed.
    emitCountedLoop(B, C256, [&](Reg J) {
      Reg V = B.loadElem(ChanA, J);
      B.binInto(Acc, BinOp::Add, Acc, V);
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_copybuf");
}

FuncId lud::emitCacheRarelyRead(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Row = M.addClass(P + "_Row");
  Row->addField("k", Type::makeInt());
  Row->addField("v", Type::makeInt());

  B.beginFunction(P + "_cache", 1); // (n) -> int
  Reg Cache = C.allocPlanted(Row->getId());
  Reg C100 = B.iconst(100);
  Reg C7 = B.iconst(7);
  Reg Zero = B.iconst(0);
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg I) {
    // Refresh the cached row on every transaction...
    B.storeField(Cache, Row->getId(), "k", I);
    Reg V1 = B.mul(I, I);
    Reg V2 = B.add(V1, C7);
    B.storeField(Cache, Row->getId(), "v", V2);
    // ...but read it once per hundred.
    Reg Rm = B.bin(BinOp::Rem, I, C100);
    emitIf(B, CmpOp::Eq, Rm, Zero, [&] {
      Reg V = B.loadField(Cache, Row->getId(), "v");
      B.binInto(Acc, BinOp::Add, Acc, V);
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_cache");
}

FuncId lud::emitPredicateHeavy(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_guards", 1); // (n) -> int
  Reg C7 = B.iconst(7);
  Reg C3 = B.iconst(3);
  Reg Zero = B.iconst(0);
  Reg Huge = B.iconst(int64_t(1) << 40);
  Reg One = B.iconst(1);
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg V1 = B.mul(I, C7);
    Reg V = B.add(V1, C3);
    // Over-protective guard cascade: every check always passes.
    emitIf(B, CmpOp::Ge, V, Zero, [&] {
      emitIf(B, CmpOp::Lt, V, Huge, [&] {
        emitIf(B, CmpOp::Ge, 0, Zero, [&] {
          B.binInto(Acc, BinOp::Add, Acc, One);
        });
      });
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_guards");
}

FuncId lud::emitScoreTopOne(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_score", 1); // (n) -> int
  Reg Best = B.iconst(-1);
  Reg C13 = B.iconst(13);
  Reg C255 = B.iconst(255);
  emitCountedLoop(B, 0, [&](Reg I) {
    // Per-document score: several instructions of ranking math whose
    // result usually ends its life in the comparison below.
    Reg S1 = B.mul(I, C13);
    Reg S2 = B.bin(BinOp::Xor, S1, I);
    Reg S3 = B.bin(BinOp::And, S2, C255);
    Reg S4 = B.mul(S3, S3);
    emitIf(B, CmpOp::Gt, S4, Best, [&] { B.moveInto(Best, S4); });
  });
  B.ret(Best);
  B.endFunction();
  return M.findFunction(P + "_score");
}

FuncId lud::emitUsefulWork(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();

  B.beginFunction(P + "_work", 1); // (n) -> int
  Reg V = B.alloc(L.IntVec);
  Reg C8 = B.iconst(8);
  B.callVoid("IntVec.init", {V, C8});
  Reg C2654435761 = B.iconst(2654435761LL);
  Reg C15 = B.iconst(15);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg T1 = B.mul(I, C2654435761);
    Reg T2 = B.bin(BinOp::Shr, T1, C15);
    Reg T3 = B.bin(BinOp::Xor, T1, T2);
    B.callVoid("IntVec.add", {V, T3});
  });
  Reg Acc = B.iconst(0);
  Reg Sz = B.call(L.IntVecSize, {V});
  emitCountedLoop(B, Sz, [&](Reg J) {
    Reg E = B.call(L.IntVecGet, {V, J});
    B.binInto(Acc, BinOp::Add, Acc, E);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_work");
}
