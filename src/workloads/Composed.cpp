//===- workloads/Composed.cpp - Paper-scale composed workload --------------===//

#include "workloads/Composed.h"

#include "workloads/Recipes.h"

using namespace lud;
using namespace lud::recipes;

Workload lud::buildComposedWorkload(int64_t Scale, int64_t Tiles) {
  const std::vector<std::string> &Names = dacapoNames();
  if (Tiles <= 0)
    Tiles = atLeast(Scale / 2, int64_t(Names.size()));

  Assembler A("composed", Scale, /*Optimized=*/false, StdLibOptions{});
  // Every tile runs the same small dynamic scale: the knob grows code, not
  // per-tile work, so wall clock stays linear in the tile count.
  const int64_t TileScale = 16;
  for (int64_t T = 0; T != Tiles; ++T)
    scheduleRecipe(A, Names[size_t(T % int64_t(Names.size()))], TileScale,
                   /*Optimized=*/false, "_t" + std::to_string(T));
  return A.finish();
}
