//===- workloads/StdLib.h - IR-level runtime library -----------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small class library written in the interpreted IR: growable int/ref
/// vectors, immutable strings with hashing/equality/concatenation, square
/// float matrices, and a string-keyed open-addressing hash map. The DaCapo
/// workload generators compose these the way the paper's Java programs use
/// the JDK collections, so the profiler sees realistic layered data flow
/// (method receivers extend object-sensitive contexts, collection
/// internals produce reference trees of depth >= 3).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_STDLIB_H
#define LUD_WORKLOADS_STDLIB_H

#include "ir/IRBuilder.h"

namespace lud {

struct StdLibOptions {
  /// Strings memoize their hash code and StrMap.rehash reuses stored
  /// hashes instead of recomputing them — the eclipse case-study fix.
  bool CachedStrHash = false;
  /// Matrix.scale/transpose mutate in place instead of cloning per
  /// operation — the sunflow case-study fix.
  bool InPlaceMatrixOps = false;
};

/// Emits the library into a module and exposes handles. Construct exactly
/// once per module, before user code that references the classes.
class StdLib {
public:
  StdLib(Module &M, StdLibOptions Opts = {});

  Module &M;
  StdLibOptions Opts;

  // class IntVec { arr: int[]; size: int }
  ClassId IntVec;
  FuncId IntVecInit;  // IntVec.init(this, cap)
  FuncId IntVecAdd;   // IntVec.add(this, v)     (grows 2x when full)
  FuncId IntVecGet;   // IntVec.get(this, i) -> int
  FuncId IntVecSet;   // IntVec.set(this, i, v)
  FuncId IntVecSize;  // IntVec.size(this) -> int

  // class RefVec { arr: ref[]; size: int }
  ClassId RefVec;
  FuncId RefVecInit;
  FuncId RefVecAdd;
  FuncId RefVecGet;
  FuncId RefVecSize;

  // class Str { chars: int[]; len: int; hash: int }
  ClassId Str;
  FuncId StrMake;   // makeStr(n, seed) -> Str
  FuncId StrHash;   // Str.hashCode(this) -> int
  FuncId StrEquals; // Str.equals(this, o) -> 0/1
  FuncId StrConcat; // Str.concat(this, o) -> Str

  // class Matrix { cells: float[]; n: int }
  ClassId Matrix;
  FuncId MatrixMake;      // makeMatrix(n, seed) -> Matrix
  FuncId MatrixClone;     // Matrix.clone(this) -> Matrix
  FuncId MatrixScale;     // Matrix.scale(this, f) -> Matrix (clone or this)
  FuncId MatrixTranspose; // Matrix.transpose(this) -> Matrix
  FuncId MatrixSum;       // Matrix.sum(this) -> float

  // class StrMap { keys: ref[]; vals: int[]; hashes: int[]; cap; size }
  ClassId StrMap;
  FuncId StrMapInit; // StrMap.init(this, cap)
  FuncId StrMapPut;  // StrMap.put(this, k, v)    (rehashes at 50% load)
  FuncId StrMapGet;  // StrMap.get(this, k) -> int (0 if absent)
};

} // namespace lud

#endif // LUD_WORKLOADS_STDLIB_H
