//===- workloads/Patterns.h - Reusable bloat-pattern emitters --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emitters for the inefficiency patterns the paper's case studies report
/// (Section 4.2), plus useful-work baselines. Each emitter generates one IR
/// function (named from a prefix) and records the allocation instructions
/// of the *planted* low-utility structures so benchmarks can assert the
/// tool ranks them. Most emitters take an `Optimized` flag that generates
/// the case study's fixed version instead.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_PATTERNS_H
#define LUD_WORKLOADS_PATTERNS_H

#include "workloads/StdLib.h"

#include <string>
#include <vector>

namespace lud {

/// Shared emitter state: the module's stdlib, a builder, and the planted
/// allocation instructions collected so far (translated to AllocSiteIds
/// after Module::finalize()).
struct PatternContext {
  StdLib &L;
  IRBuilder &B;
  std::vector<const Instruction *> Planted;

  Module &module() { return L.M; }
  /// Emits an allocation and records it as a planted low-utility site.
  Reg allocPlanted(ClassId C) {
    Reg R = B.alloc(C);
    Planted.push_back(B.block()->insts().back().get());
    return R;
  }
};

/// chart (and the paper's introduction): expensively computed entries are
/// boxed and appended to a list whose only observed property is its size.
/// Generated: `<P>_fill(n) -> int` (the size). Planted: the entry boxes.
FuncId emitListSizeOnly(PatternContext &C, const std::string &P);

/// bloat: debug strings are built eagerly and then discarded because the
/// guard flag is false in production. Optimized: build under the guard.
/// Generated: `<P>_strchurn(n, flag) -> int`.
FuncId emitStringChurn(PatternContext &C, const std::string &P,
                       bool Optimized);

/// bloat/eclipse: a data-free comparator/visitor object is allocated per
/// comparison. Optimized: a static compare function (worklist style).
/// Generated: `<P>_visit(n) -> int`.
FuncId emitVisitorChurn(PatternContext &C, const std::string &P,
                        bool Optimized);

/// sunflow: every matrix operation clones its receiver to carry the result
/// across the call (the clone sites live in Matrix.clone; the planted site
/// is the chain driver's scratch matrix). Whether operations clone or
/// mutate in place is the *module-level* StdLibOptions::InPlaceMatrixOps.
/// Generated: `<P>_render(n, msize) -> float`.
FuncId emitClonePerOp(PatternContext &C, const std::string &P);

/// sunflow/batik: floats are bit-encoded into an int array and decoded
/// right back in the hot loop. Optimized: a float array, no conversions.
/// Generated: `<P>_bits(n) -> float`.
FuncId emitBitsRoundTrip(PatternContext &C, const std::string &P,
                         bool Optimized);

/// derby: a container's metadata array is rewritten on every page write
/// and read once at the end. Optimized: written once before the read.
/// Generated: `<P>_meta(n) -> int`.
FuncId emitRewriteBeforeRead(PatternContext &C, const std::string &P,
                             bool Optimized);

/// derby: context lookups build a fresh string key per query. Optimized:
/// dense integer ids indexing an array.
/// Generated: `<P>_lookup(n) -> int`.
FuncId emitStringKeyLookup(PatternContext &C, const std::string &P,
                           bool Optimized);

/// eclipse: populate a string-keyed map through its growth rehashes (hash
/// recomputation cost is governed by StdLibOptions::CachedStrHash), then
/// query it. Generated: `<P>_index(n) -> int`.
FuncId emitRehashGrowth(PatternContext &C, const std::string &P);

/// eclipse Figure 6: isPackage builds the whole directory list only to
/// null-check it. Optimized: computes the boolean directly.
/// Generated: `<P>_ispkg(n) -> int` (count of hits over n queries).
FuncId emitDirectoryList(PatternContext &C, const std::string &P,
                         bool Optimized);

/// tomcat: the mapper's sorted context array is reallocated and copied on
/// every update. Optimized: two arrays reused back and forth.
/// Generated: `<P>_mapper(n) -> int`.
FuncId emitArrayCopyUpdate(PatternContext &C, const std::string &P,
                           bool Optimized);

/// tomcat: property dispatch compares freshly built type-name strings.
/// Optimized: integer type tags. Generated: `<P>_dispatch(n) -> int`.
FuncId emitStringCompareDispatch(PatternContext &C, const std::string &P,
                                 bool Optimized);

/// tradebeans: id ranges are wrapped in KeyBlock + iterator objects (and
/// re-queried redundantly). Optimized: a plain int counter.
/// Generated: `<P>_ids(n) -> int`.
FuncId emitWrapperIterator(PatternContext &C, const std::string &P,
                           bool Optimized);

/// tradesoap: the same bean data is copied across representations for
/// every request. Generated: `<P>_convert(n) -> int`.
FuncId emitBeanCopy(PatternContext &C, const std::string &P);

/// jython: primitive values are boxed into temporaries that die right
/// after one read. Generated: `<P>_box(n) -> int`.
FuncId emitTempBoxes(PatternContext &C, const std::string &P);

/// xalan: data migrates through a chain of buffers with plain copies; only
/// a fraction of the final buffer is consumed.
/// Generated: `<P>_copybuf(n) -> int`.
FuncId emitBufferCopy(PatternContext &C, const std::string &P);

/// hsqldb: a row cache is refreshed every transaction but read rarely.
/// Generated: `<P>_cache(n) -> int`.
FuncId emitCacheRarelyRead(PatternContext &C, const std::string &P);

/// fop: a cascade of always-true guard predicates dominates the work
/// (high IPP, near-zero IPD). Generated: `<P>_guards(n) -> int`.
FuncId emitPredicateHeavy(PatternContext &C, const std::string &P);

/// lusearch: per-document scores feed only the running-max comparison;
/// most score data ends in predicates. Generated: `<P>_score(n) -> int`.
FuncId emitScoreTopOne(PatternContext &C, const std::string &P);

/// Useful-work baseline: accumulates arithmetic over an IntVec it also
/// reads back, sinking the result. Generated: `<P>_work(n) -> int`.
FuncId emitUsefulWork(PatternContext &C, const std::string &P);

//===----------------------------------------------------------------------===
// Application-substance patterns (AppPatterns.cpp): the useful machinery
// each DaCapo analogue is "about", so the planted inefficiencies sit inside
// realistic layered computation rather than bare ballast.
//===----------------------------------------------------------------------===

/// antlr: a table-driven token scanner over a synthetic character stream;
/// every recognized token is boxed into a (short-lived) Token object.
/// Generated: `<P>_scan(n) -> int` (token count + checksum).
FuncId emitTokenScanner(PatternContext &C, const std::string &P);

/// pmd: builds a binary AST of the given size and folds it with a
/// recursive traversal (deep receiver-object context chains).
/// Generated: `<P>_ast(n) -> int`.
FuncId emitAstBuildTraverse(PatternContext &C, const std::string &P);

/// avrora: a fixed-capacity event ring; producers enqueue timestamped
/// events, the simulation loop dequeues and dispatches them.
/// Generated: `<P>_events(n) -> int`.
FuncId emitEventRing(PatternContext &C, const std::string &P);

/// luindex: term postings — terms interned into a map, per-term posting
/// vectors appended during indexing, then intersected for queries.
/// Generated: `<P>_postings(n) -> int`.
FuncId emitPostings(PatternContext &C, const std::string &P);

/// hsqldb: a sorted page index with binary-search lookups and in-place
/// sorted inserts. Generated: `<P>_pages(n) -> int`.
FuncId emitPageIndex(PatternContext &C, const std::string &P);

/// jython: a bytecode dispatch loop interpreting a synthetic opcode stream
/// against an operand stack. Generated: `<P>_dispatch2(n) -> int`.
FuncId emitDispatchLoop(PatternContext &C, const std::string &P);

/// xalan: a template rule table matched against a stream of input nodes;
/// matching rules fire actions. Generated: `<P>_templates(n) -> int`.
FuncId emitTemplateTable(PatternContext &C, const std::string &P);

/// lusearch: top-K selection over scored documents with an insertion
/// "heap". Generated: `<P>_topk(n) -> int`.
FuncId emitTopK(PatternContext &C, const std::string &P);

} // namespace lud

#endif // LUD_WORKLOADS_PATTERNS_H
