//===- workloads/Composed.h - Paper-scale composed workload ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper-scale workload tier. The 18 standalone DaCapo analogues grow
/// their *dynamic* work with scale but keep a fixed, small static shape —
/// a few dozen functions — so their Gcosts top out far below the paper's
/// 139K-860K nodes (Table 1): graph nodes are (instruction, context)
/// pairs, and the node count is bounded by static code size times the
/// context-slot count.
///
/// The composed workload grows the static dimension instead: it tiles
/// many tagged instances of the 18 recipes into one module ("the
/// application plus every framework it links"), each tile a distinct set
/// of functions and allocation sites running at a small fixed dynamic
/// scale. Graph nodes then scale linearly with the tile count while the
/// run stays short enough for CI — the shape the FrozenGraph read path is
/// sized for.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_COMPOSED_H
#define LUD_WORKLOADS_COMPOSED_H

#include "workloads/DaCapo.h"

namespace lud {

/// Builds the composed workload. \p Scale drives the number of recipe
/// tiles (static code growth): tiles = max(Scale / 2, 18), cycling the 18
/// recipes round-robin, each instance at a small fixed dynamic scale.
/// Pass \p Tiles > 0 to pin the tile count directly (Scale is then only
/// recorded as metadata). At the default bench scale (LUD_SCALE = 2000,
/// 1000 tiles) the sealed graph exceeds 100K nodes with 16 context slots.
Workload buildComposedWorkload(int64_t Scale, int64_t Tiles = 0);

} // namespace lud

#endif // LUD_WORKLOADS_COMPOSED_H
