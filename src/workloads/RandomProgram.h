//===- workloads/RandomProgram.h - Random well-formed programs -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of random, verifier-clean, trap-free, terminating IR
/// programs. Used by the property-based test sweeps to check analysis
/// invariants (graph boundedness, baseline/profiled equivalence, printer/
/// parser round trips, cost-model monotonicity) over program shapes no one
/// wrote by hand.
///
/// Guarantees, by construction:
///   - every loop has a constant trip count (termination);
///   - the call graph is acyclic except for bounded self-recursion on a
///     strictly decreasing masked argument (termination);
///   - references are allocated before use and dereferenced only when
///     known non-null; null constants flow into fields but are never
///     loaded back as bases (no NPE traps);
///   - array indices are masked into range (no bounds traps);
///   - no integer division (no div-by-zero traps).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_RANDOMPROGRAM_H
#define LUD_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <memory>

namespace lud {

struct RandomProgramOptions {
  uint64_t Seed = 1;
  unsigned NumClasses = 3;
  unsigned NumFunctions = 5;
  unsigned OpsPerFunction = 30;
  /// Loop trip counts are drawn from [2, MaxTrip].
  unsigned MaxTrip = 6;
  /// Int globals available for static load/store shapes.
  unsigned NumGlobals = 2;
  /// Bounded self-recursion: a function may call itself on a masked,
  /// strictly decreasing argument (depth <= 8).
  bool Recursion = true;
  /// Aliasing shapes the copy client consumes: register-to-register ref
  /// moves, and a ref field store immediately loaded back.
  bool Aliasing = true;
  /// Null constants stored into ref fields (never dereferenced) — the
  /// flows the nullness client consumes.
  bool NullFlows = true;
  /// Immediately-overwritten field/global stores — dead writes the cost
  /// model should discount.
  bool DeadStores = true;
  /// Post-generation obfuscation passes (ir/Obfuscate.h), applied to the
  /// finished program with a seed derived from Seed. The fuzzer flips
  /// these to explore adversarial shapes: junk structures the report must
  /// rank top and the optimizer must strip, opaque predicates the
  /// constant-predicate client must prove, rewrite-per-read string
  /// tables. The obfuscated module is re-verified before return.
  bool ObfJunk = false;
  bool ObfOpaque = false;
  bool ObfStrings = false;
};

/// Generates a finalized module whose entry runs to completion. The result
/// always passes ir::verifyGeneratedModule (the strict def-before-use
/// post-condition), which the generator asserts before returning.
std::unique_ptr<Module> generateRandomProgram(RandomProgramOptions Opts);

} // namespace lud

#endif // LUD_WORKLOADS_RANDOMPROGRAM_H
