//===- workloads/RandomProgram.h - Random well-formed programs -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of random, verifier-clean, trap-free, terminating IR
/// programs. Used by the property-based test sweeps to check analysis
/// invariants (graph boundedness, baseline/profiled equivalence, printer/
/// parser round trips, cost-model monotonicity) over program shapes no one
/// wrote by hand.
///
/// Guarantees, by construction:
///   - every loop has a constant trip count (termination);
///   - the call graph is acyclic (termination);
///   - references are allocated before use and never null (no NPE traps);
///   - array indices are masked into range (no bounds traps);
///   - no integer division (no div-by-zero traps).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_RANDOMPROGRAM_H
#define LUD_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <memory>

namespace lud {

struct RandomProgramOptions {
  uint64_t Seed = 1;
  unsigned NumClasses = 3;
  unsigned NumFunctions = 5;
  unsigned OpsPerFunction = 30;
  /// Loop trip counts are drawn from [2, MaxTrip].
  unsigned MaxTrip = 6;
};

/// Generates a finalized, verified module whose entry runs to completion.
std::unique_ptr<Module> generateRandomProgram(RandomProgramOptions Opts);

} // namespace lud

#endif // LUD_WORKLOADS_RANDOMPROGRAM_H
