//===- workloads/DaCapo.cpp - Synthetic DaCapo-style workloads -------------===//

#include "workloads/DaCapo.h"

#include "workloads/Recipes.h"

#include <cassert>

using namespace lud;
using namespace lud::recipes;

const std::vector<std::string> &lud::dacapoNames() {
  static const std::vector<std::string> Names = {
      "antlr",   "bloat",    "chart",   "fop",        "pmd",     "jython",
      "xalan",   "hsqldb",   "luindex", "lusearch",   "eclipse", "avrora",
      "batik",   "derby",    "sunflow", "tomcat",     "tradebeans",
      "tradesoap"};
  return Names;
}

bool lud::hasOptimizedVariant(const std::string &Name) {
  return Name == "bloat" || Name == "eclipse" || Name == "sunflow" ||
         Name == "derby" || Name == "tomcat" || Name == "tradebeans";
}

Workload lud::buildWorkload(const std::string &Name, int64_t Scale,
                            bool Optimized) {
  assert((!Optimized || hasOptimizedVariant(Name)) &&
         "no optimized variant for this workload");
  const int64_t S = atLeast(Scale, 16);

  StdLibOptions LibOpts;
  if (Optimized && Name == "eclipse")
    LibOpts.CachedStrHash = true; // The hashCode-caching fix.
  if (Optimized && Name == "sunflow")
    LibOpts.InPlaceMatrixOps = true; // The clone-elimination fix.

  Assembler A(Name, S, Optimized, LibOpts);
  scheduleRecipe(A, Name, S, Optimized, /*Tag=*/"");
  return A.finish();
}
