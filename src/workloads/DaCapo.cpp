//===- workloads/DaCapo.cpp - Synthetic DaCapo-style workloads -------------===//

#include "workloads/DaCapo.h"

#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "workloads/EmitUtil.h"
#include "workloads/Patterns.h"

#include <algorithm>

using namespace lud;

namespace {

/// Assembly state for one workload: module, stdlib, builder, patterns.
class Assembler {
public:
  Assembler(const std::string &Name, int64_t Scale, bool Optimized,
            StdLibOptions LibOpts)
      : Scale(Scale), Optimized(Optimized), M(std::make_unique<Module>()),
        Lib(*M, LibOpts), B(*M), Ctx{Lib, B, {}} {
    W.Name = Name;
    W.Scale = Scale;
    W.Optimized = Optimized;
  }

  int64_t Scale;
  bool Optimized;
  std::unique_ptr<Module> M;
  StdLib Lib;
  IRBuilder B;
  PatternContext Ctx;
  Workload W;

  /// Pattern calls queued for each phase: (function, scale arguments).
  struct Call {
    FuncId Fn;
    std::vector<int64_t> Args;
  };
  std::vector<Call> Startup, Load, Shutdown;

  void inStartup(FuncId Fn, std::vector<int64_t> Args) {
    Startup.push_back({Fn, std::move(Args)});
  }
  void inLoad(FuncId Fn, std::vector<int64_t> Args) {
    Load.push_back({Fn, std::move(Args)});
  }
  void inShutdown(FuncId Fn, std::vector<int64_t> Args) {
    Shutdown.push_back({Fn, std::move(Args)});
  }

  /// Emits main with the three-phase structure, finalizes and verifies.
  Workload finish() {
    B.beginFunction("main", 0);
    Reg Acc = B.iconst(0);
    auto EmitPhase = [&](int64_t Phase, const std::vector<Call> &Calls) {
      Reg Ph = B.iconst(Phase);
      B.ncallVoid("phase", {Ph});
      for (const Call &C : Calls) {
        std::vector<Reg> Args;
        Args.reserve(C.Args.size());
        for (int64_t A : C.Args)
          Args.push_back(B.iconst(A));
        Reg R = B.call(C.Fn, std::move(Args));
        B.binInto(Acc, BinOp::Add, Acc, R);
      }
    };
    EmitPhase(0, Startup);
    EmitPhase(1, Load);
    EmitPhase(2, Shutdown);
    B.ncallVoid("sink", {Acc});
    B.ret(Acc);
    B.endFunction();

    M->finalize();
    std::vector<std::string> Errors;
    if (!verifyModule(*M, Errors))
      lud_unreachable("generated workload failed verification");
    for (const Instruction *I : Ctx.Planted) {
      if (const auto *A = dyn_cast<AllocInst>(I))
        W.PlantedSites.push_back(A->Site);
      else if (const auto *AA = dyn_cast<AllocArrayInst>(I))
        W.PlantedSites.push_back(AA->Site);
    }
    W.M = std::move(M);
    return std::move(W);
  }
};

int64_t atLeast(int64_t V, int64_t Lo) { return std::max(V, Lo); }

} // namespace

const std::vector<std::string> &lud::dacapoNames() {
  static const std::vector<std::string> Names = {
      "antlr",   "bloat",    "chart",   "fop",        "pmd",     "jython",
      "xalan",   "hsqldb",   "luindex", "lusearch",   "eclipse", "avrora",
      "batik",   "derby",    "sunflow", "tomcat",     "tradebeans",
      "tradesoap"};
  return Names;
}

bool lud::hasOptimizedVariant(const std::string &Name) {
  return Name == "bloat" || Name == "eclipse" || Name == "sunflow" ||
         Name == "derby" || Name == "tomcat" || Name == "tradebeans";
}

Workload lud::buildWorkload(const std::string &Name, int64_t Scale,
                            bool Optimized) {
  assert((!Optimized || hasOptimizedVariant(Name)) &&
         "no optimized variant for this workload");
  const int64_t S = atLeast(Scale, 16);

  StdLibOptions LibOpts;
  if (Optimized && Name == "eclipse")
    LibOpts.CachedStrHash = true; // The hashCode-caching fix.
  if (Optimized && Name == "sunflow")
    LibOpts.InPlaceMatrixOps = true; // The clone-elimination fix.

  Assembler A(Name, S, Optimized, LibOpts);
  PatternContext &C = A.Ctx;

  if (Name == "antlr") {
    A.inStartup(emitUsefulWork(C, "an_init"), {S / 8});
    A.inLoad(emitTokenScanner(C, "an"), {S});
    A.inLoad(emitTempBoxes(C, "an"), {S / 2});
    A.inLoad(emitScoreTopOne(C, "an"), {S / 4});
    A.inLoad(emitUsefulWork(C, "an"), {S / 2});
    A.inShutdown(emitUsefulWork(C, "an_fini"), {S / 8});
  } else if (Name == "bloat") {
    // Case study: debug-string churn + per-comparison visitor objects.
    A.inStartup(emitUsefulWork(C, "bl_init"), {S / 8});
    A.inLoad(emitStringChurn(C, "bl", Optimized), {S, /*flag=*/0});
    A.inLoad(emitVisitorChurn(C, "bl", Optimized), {S});
    // The rest of the application (an AST-processing tool), sized so the
    // fix wins roughly the paper's 37%.
    A.inLoad(emitAstBuildTraverse(C, "bl"), {S / 40});
    A.inLoad(emitUsefulWork(C, "bl"), {4 * S});
    A.inShutdown(emitUsefulWork(C, "bl_fini"), {S / 8});
  } else if (Name == "chart") {
    // The introduction's example: lists filled only to be size-checked.
    A.inStartup(emitUsefulWork(C, "ch_init"), {S / 8});
    A.inLoad(emitListSizeOnly(C, "ch"), {S});
    A.inLoad(emitUsefulWork(C, "ch"), {S / 2});
    A.inShutdown(emitUsefulWork(C, "ch_fini"), {S / 8});
  } else if (Name == "fop") {
    A.inStartup(emitUsefulWork(C, "fo_init"), {S / 8});
    A.inLoad(emitPredicateHeavy(C, "fo"), {2 * S});
    A.inLoad(emitTemplateTable(C, "fo"), {S / 4});
    A.inLoad(emitUsefulWork(C, "fo"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "fo_fini"), {S / 8});
  } else if (Name == "pmd") {
    A.inStartup(emitUsefulWork(C, "pm_init"), {S / 8});
    A.inLoad(emitAstBuildTraverse(C, "pm"), {atLeast(S / 16, 2)});
    A.inLoad(emitVisitorChurn(C, "pm", false), {S / 2});
    A.inLoad(emitTempBoxes(C, "pm"), {S / 2});
    A.inLoad(emitUsefulWork(C, "pm"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "pm_fini"), {S / 8});
  } else if (Name == "jython") {
    A.inStartup(emitUsefulWork(C, "jy_init"), {S / 8});
    A.inLoad(emitDispatchLoop(C, "jy"), {S});
    A.inLoad(emitTempBoxes(C, "jy"), {2 * S});
    A.inLoad(emitUsefulWork(C, "jy"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "jy_fini"), {S / 8});
  } else if (Name == "xalan") {
    A.inStartup(emitUsefulWork(C, "xa_init"), {S / 8});
    A.inLoad(emitBufferCopy(C, "xa"), {atLeast(S / 16, 4)});
    A.inLoad(emitTemplateTable(C, "xa"), {S / 2});
    A.inLoad(emitUsefulWork(C, "xa"), {S / 8});
    A.inShutdown(emitUsefulWork(C, "xa_fini"), {S / 8});
  } else if (Name == "hsqldb") {
    A.inStartup(emitUsefulWork(C, "hs_init"), {S / 4});
    A.inLoad(emitPageIndex(C, "hs"), {S / 4});
    A.inLoad(emitCacheRarelyRead(C, "hs"), {S});
    A.inLoad(emitUsefulWork(C, "hs"), {S / 2});
    A.inShutdown(emitUsefulWork(C, "hs_fini"), {S / 8});
  } else if (Name == "luindex") {
    A.inStartup(emitUsefulWork(C, "li_init"), {S / 8});
    A.inLoad(emitPostings(C, "li"), {S});
    A.inLoad(emitUsefulWork(C, "li"), {S});
    A.inLoad(emitTempBoxes(C, "li"), {S / 8});
    A.inShutdown(emitUsefulWork(C, "li_fini"), {S / 8});
  } else if (Name == "lusearch") {
    A.inStartup(emitUsefulWork(C, "lu_init"), {S / 8});
    A.inLoad(emitTopK(C, "lu"), {S});
    A.inLoad(emitScoreTopOne(C, "lu"), {2 * S});
    A.inLoad(emitUsefulWork(C, "lu"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "lu_fini"), {S / 8});
  } else if (Name == "eclipse") {
    // Case study: Figure 6's directoryList + hashtable rehash churn.
    A.inStartup(emitUsefulWork(C, "ec_init"), {S / 8});
    A.inLoad(emitDirectoryList(C, "ec", Optimized), {S / 4});
    A.inLoad(emitRehashGrowth(C, "ec"), {S / 2});
    A.inLoad(emitVisitorChurn(C, "ec", Optimized), {S / 2});
    // The surrounding IDE machinery, sized for the paper's ~14.5% win.
    A.inLoad(emitAstBuildTraverse(C, "ec"), {S / 8});
    A.inLoad(emitUsefulWork(C, "ec"), {24 * S});
    A.inShutdown(emitUsefulWork(C, "ec_fini"), {S / 8});
  } else if (Name == "avrora") {
    A.inStartup(emitUsefulWork(C, "av_init"), {S / 8});
    A.inLoad(emitEventRing(C, "av"), {2 * S});
    A.inLoad(emitUsefulWork(C, "av"), {S / 2});
    A.inLoad(emitCacheRarelyRead(C, "av"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "av_fini"), {S / 8});
  } else if (Name == "batik") {
    A.inStartup(emitUsefulWork(C, "ba_init"), {S / 8});
    A.inLoad(emitBitsRoundTrip(C, "ba", false), {S});
    A.inLoad(emitUsefulWork(C, "ba"), {S / 2});
    A.inShutdown(emitUsefulWork(C, "ba_fini"), {S / 8});
  } else if (Name == "derby") {
    // Case study: metadata rewritten before read + string context ids.
    A.inStartup(emitUsefulWork(C, "de_init"), {S / 8});
    A.inLoad(emitRewriteBeforeRead(C, "de", Optimized), {S / 6});
    A.inLoad(emitStringKeyLookup(C, "de", Optimized), {S / 6});
    // The surrounding database engine, sized for the paper's ~6% win.
    A.inLoad(emitPageIndex(C, "de"), {S});
    A.inLoad(emitUsefulWork(C, "de"), {27 * S});
    A.inShutdown(emitUsefulWork(C, "de_fini"), {S / 8});
  } else if (Name == "sunflow") {
    // Case study: clone-per-op matrices + float<->int bit round trips.
    A.inStartup(emitUsefulWork(C, "su_init"), {S / 8});
    A.inLoad(emitClonePerOp(C, "su"), {atLeast(S / 8, 8), /*msize=*/12});
    A.inLoad(emitBitsRoundTrip(C, "su", Optimized), {S});
    // The surrounding renderer, sized for the paper's 9-15% win.
    A.inLoad(emitTopK(C, "su"), {S / 2});
    A.inLoad(emitUsefulWork(C, "su"), {29 * S});
    A.inShutdown(emitUsefulWork(C, "su_fini"), {S / 8});
  } else if (Name == "tomcat") {
    // Case study: mapper array copied per update + string-compare
    // property dispatch.
    A.inStartup(emitUsefulWork(C, "to_init"), {S / 8});
    A.inLoad(emitArrayCopyUpdate(C, "to", Optimized),
             {std::min<int64_t>(atLeast(S / 16, 8), 200)});
    A.inLoad(emitStringCompareDispatch(C, "to", Optimized), {S / 8});
    // The surrounding servlet container, sized for the paper's ~2% win.
    A.inLoad(emitTemplateTable(C, "to"), {S});
    A.inLoad(emitUsefulWork(C, "to"), {30 * S});
    A.inShutdown(emitUsefulWork(C, "to_fini"), {S / 8});
  } else if (Name == "tradebeans") {
    // Case study: KeyBlock wrappers. Heavy startup/shutdown phases make
    // this (with tradesoap) the selective-tracking experiment's subject.
    // Server startup and shutdown dominate the run (they are what the
    // paper's selective tracking skips); the ballast lives there so the
    // fix's win stays near the paper's ~2.5%.
    A.inStartup(emitUsefulWork(C, "tb_init"), {4 * S});
    A.inLoad(emitWrapperIterator(C, "tb", Optimized), {S});
    A.inLoad(emitEventRing(C, "tb"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "tb_fini"), {3 * S});
  } else if (Name == "tradesoap") {
    A.inStartup(emitUsefulWork(C, "ts_init"), {4 * S});
    A.inLoad(emitBeanCopy(C, "ts"), {S / 2});
    A.inLoad(emitWrapperIterator(C, "ts", false), {S / 4});
    A.inLoad(emitEventRing(C, "ts"), {S / 4});
    A.inShutdown(emitUsefulWork(C, "ts_fini"), {4 * S});
  } else {
    lud_unreachable("unknown workload name");
  }

  return A.finish();
}
