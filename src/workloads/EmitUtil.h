//===- workloads/EmitUtil.h - Small IR emission helpers --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured-control-flow helpers over IRBuilder used by the stdlib and
/// pattern emitters.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_EMITUTIL_H
#define LUD_WORKLOADS_EMITUTIL_H

#include "ir/IRBuilder.h"

#include <functional>

namespace lud {

/// Emits `for (i = 0; i < Bound; ++i) Body(i)`; leaves the builder in the
/// exit block. \p Bound must not be written inside the body; the body may
/// branch internally as long as it converges to the current block.
inline void emitCountedLoop(IRBuilder &B, Reg Bound,
                            const std::function<void(Reg)> &Body) {
  Reg I = B.iconst(0);
  Reg One = B.iconst(1);
  BasicBlock *Header = B.newBlock();
  BasicBlock *BodyBB = B.newBlock();
  BasicBlock *Exit = B.newBlock();
  B.br(Header);
  B.setBlock(Header);
  B.condBr(CmpOp::Lt, I, Bound, BodyBB, Exit);
  B.setBlock(BodyBB);
  Body(I);
  B.binInto(I, BinOp::Add, I, One);
  B.br(Header);
  B.setBlock(Exit);
}

/// Emits `if (L cmp R) Then()`; both arms converge after the construct.
inline void emitIf(IRBuilder &B, CmpOp Cmp, Reg L, Reg R,
                   const std::function<void()> &Then) {
  BasicBlock *ThenBB = B.newBlock();
  BasicBlock *Join = B.newBlock();
  B.condBr(Cmp, L, R, ThenBB, Join);
  B.setBlock(ThenBB);
  Then();
  B.br(Join);
  B.setBlock(Join);
}

/// Emits `if (L cmp R) Then() else Else()`.
inline void emitIfElse(IRBuilder &B, CmpOp Cmp, Reg L, Reg R,
                       const std::function<void()> &Then,
                       const std::function<void()> &Else) {
  BasicBlock *ThenBB = B.newBlock();
  BasicBlock *ElseBB = B.newBlock();
  BasicBlock *Join = B.newBlock();
  B.condBr(Cmp, L, R, ThenBB, ElseBB);
  B.setBlock(ThenBB);
  Then();
  B.br(Join);
  B.setBlock(ElseBB);
  Else();
  B.br(Join);
  B.setBlock(Join);
}

} // namespace lud

#endif // LUD_WORKLOADS_EMITUTIL_H
