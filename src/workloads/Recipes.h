//===- workloads/Recipes.h - Shared workload assembly ----------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assembly machinery behind the generated workloads: an Assembler
/// that queues pattern calls into the three DaCapo phases and emits the
/// final main, plus the 18 benchmark recipes as a reusable schedule.
/// DaCapo.cpp instantiates one recipe per workload (empty tag, so function
/// names are unchanged); Composed.cpp tiles many tagged recipe instances
/// into one module to grow the static code — and with it the dependence
/// graph — to paper scale.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_RECIPES_H
#define LUD_WORKLOADS_RECIPES_H

#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "workloads/DaCapo.h"
#include "workloads/EmitUtil.h"
#include "workloads/Patterns.h"

#include <algorithm>
#include <string>
#include <vector>

namespace lud {
namespace recipes {

/// Assembly state for one workload: module, stdlib, builder, patterns.
class Assembler {
public:
  Assembler(const std::string &Name, int64_t Scale, bool Optimized,
            StdLibOptions LibOpts)
      : Scale(Scale), Optimized(Optimized), M(std::make_unique<Module>()),
        Lib(*M, LibOpts), B(*M), Ctx{Lib, B, {}} {
    W.Name = Name;
    W.Scale = Scale;
    W.Optimized = Optimized;
  }

  int64_t Scale;
  bool Optimized;
  std::unique_ptr<Module> M;
  StdLib Lib;
  IRBuilder B;
  PatternContext Ctx;
  Workload W;

  /// Pattern calls queued for each phase: (function, scale arguments).
  struct Call {
    FuncId Fn;
    std::vector<int64_t> Args;
  };
  std::vector<Call> Startup, Load, Shutdown;

  void inStartup(FuncId Fn, std::vector<int64_t> Args) {
    Startup.push_back({Fn, std::move(Args)});
  }
  void inLoad(FuncId Fn, std::vector<int64_t> Args) {
    Load.push_back({Fn, std::move(Args)});
  }
  void inShutdown(FuncId Fn, std::vector<int64_t> Args) {
    Shutdown.push_back({Fn, std::move(Args)});
  }

  /// Emits main with the three-phase structure, finalizes and verifies.
  Workload finish() {
    B.beginFunction("main", 0);
    Reg Acc = B.iconst(0);
    auto EmitPhase = [&](int64_t Phase, const std::vector<Call> &Calls) {
      Reg Ph = B.iconst(Phase);
      B.ncallVoid("phase", {Ph});
      for (const Call &C : Calls) {
        std::vector<Reg> Args;
        Args.reserve(C.Args.size());
        for (int64_t A : C.Args)
          Args.push_back(B.iconst(A));
        Reg R = B.call(C.Fn, std::move(Args));
        B.binInto(Acc, BinOp::Add, Acc, R);
      }
    };
    EmitPhase(0, Startup);
    EmitPhase(1, Load);
    EmitPhase(2, Shutdown);
    B.ncallVoid("sink", {Acc});
    B.ret(Acc);
    B.endFunction();

    M->finalize();
    std::vector<std::string> Errors;
    if (!verifyModule(*M, Errors))
      lud_unreachable("generated workload failed verification");
    for (const Instruction *I : Ctx.Planted) {
      if (const auto *A = dyn_cast<AllocInst>(I))
        W.PlantedSites.push_back(A->Site);
      else if (const auto *AA = dyn_cast<AllocArrayInst>(I))
        W.PlantedSites.push_back(AA->Site);
    }
    W.M = std::move(M);
    return std::move(W);
  }
};

inline int64_t atLeast(int64_t V, int64_t Lo) { return std::max(V, Lo); }

/// Queues the named benchmark's pattern schedule into \p A's phases at
/// scale \p S. \p Tag is appended to every emitted function's name prefix
/// ("" reproduces the standalone workloads byte for byte; Composed uses a
/// per-tile tag so each instance gets distinct functions and with them
/// distinct allocation sites). Asserts on unknown names.
inline void scheduleRecipe(Assembler &A, const std::string &Name, int64_t S,
                           bool Optimized, const std::string &Tag) {
  PatternContext &C = A.Ctx;

  if (Name == "antlr") {
    const std::string P = "an" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitTokenScanner(C, P), {S});
    A.inLoad(emitTempBoxes(C, P), {S / 2});
    A.inLoad(emitScoreTopOne(C, P), {S / 4});
    A.inLoad(emitUsefulWork(C, P), {S / 2});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "bloat") {
    // Case study: debug-string churn + per-comparison visitor objects.
    const std::string P = "bl" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitStringChurn(C, P, Optimized), {S, /*flag=*/0});
    A.inLoad(emitVisitorChurn(C, P, Optimized), {S});
    // The rest of the application (an AST-processing tool), sized so the
    // fix wins roughly the paper's 37%.
    A.inLoad(emitAstBuildTraverse(C, P), {S / 40});
    A.inLoad(emitUsefulWork(C, P), {4 * S});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "chart") {
    // The introduction's example: lists filled only to be size-checked.
    const std::string P = "ch" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitListSizeOnly(C, P), {S});
    A.inLoad(emitUsefulWork(C, P), {S / 2});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "fop") {
    const std::string P = "fo" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitPredicateHeavy(C, P), {2 * S});
    A.inLoad(emitTemplateTable(C, P), {S / 4});
    A.inLoad(emitUsefulWork(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "pmd") {
    const std::string P = "pm" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitAstBuildTraverse(C, P), {atLeast(S / 16, 2)});
    A.inLoad(emitVisitorChurn(C, P, false), {S / 2});
    A.inLoad(emitTempBoxes(C, P), {S / 2});
    A.inLoad(emitUsefulWork(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "jython") {
    const std::string P = "jy" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitDispatchLoop(C, P), {S});
    A.inLoad(emitTempBoxes(C, P), {2 * S});
    A.inLoad(emitUsefulWork(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "xalan") {
    const std::string P = "xa" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitBufferCopy(C, P), {atLeast(S / 16, 4)});
    A.inLoad(emitTemplateTable(C, P), {S / 2});
    A.inLoad(emitUsefulWork(C, P), {S / 8});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "hsqldb") {
    const std::string P = "hs" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 4});
    A.inLoad(emitPageIndex(C, P), {S / 4});
    A.inLoad(emitCacheRarelyRead(C, P), {S});
    A.inLoad(emitUsefulWork(C, P), {S / 2});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "luindex") {
    const std::string P = "li" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitPostings(C, P), {S});
    A.inLoad(emitUsefulWork(C, P), {S});
    A.inLoad(emitTempBoxes(C, P), {S / 8});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "lusearch") {
    const std::string P = "lu" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitTopK(C, P), {S});
    A.inLoad(emitScoreTopOne(C, P), {2 * S});
    A.inLoad(emitUsefulWork(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "eclipse") {
    // Case study: Figure 6's directoryList + hashtable rehash churn.
    const std::string P = "ec" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitDirectoryList(C, P, Optimized), {S / 4});
    A.inLoad(emitRehashGrowth(C, P), {S / 2});
    A.inLoad(emitVisitorChurn(C, P, Optimized), {S / 2});
    // The surrounding IDE machinery, sized for the paper's ~14.5% win.
    A.inLoad(emitAstBuildTraverse(C, P), {S / 8});
    A.inLoad(emitUsefulWork(C, P), {24 * S});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "avrora") {
    const std::string P = "av" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitEventRing(C, P), {2 * S});
    A.inLoad(emitUsefulWork(C, P), {S / 2});
    A.inLoad(emitCacheRarelyRead(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "batik") {
    const std::string P = "ba" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitBitsRoundTrip(C, P, false), {S});
    A.inLoad(emitUsefulWork(C, P), {S / 2});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "derby") {
    // Case study: metadata rewritten before read + string context ids.
    const std::string P = "de" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitRewriteBeforeRead(C, P, Optimized), {S / 6});
    A.inLoad(emitStringKeyLookup(C, P, Optimized), {S / 6});
    // The surrounding database engine, sized for the paper's ~6% win.
    A.inLoad(emitPageIndex(C, P), {S});
    A.inLoad(emitUsefulWork(C, P), {27 * S});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "sunflow") {
    // Case study: clone-per-op matrices + float<->int bit round trips.
    const std::string P = "su" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitClonePerOp(C, P), {atLeast(S / 8, 8), /*msize=*/12});
    A.inLoad(emitBitsRoundTrip(C, P, Optimized), {S});
    // The surrounding renderer, sized for the paper's 9-15% win.
    A.inLoad(emitTopK(C, P), {S / 2});
    A.inLoad(emitUsefulWork(C, P), {29 * S});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "tomcat") {
    // Case study: mapper array copied per update + string-compare
    // property dispatch.
    const std::string P = "to" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {S / 8});
    A.inLoad(emitArrayCopyUpdate(C, P, Optimized),
             {std::min<int64_t>(atLeast(S / 16, 8), 200)});
    A.inLoad(emitStringCompareDispatch(C, P, Optimized), {S / 8});
    // The surrounding servlet container, sized for the paper's ~2% win.
    A.inLoad(emitTemplateTable(C, P), {S});
    A.inLoad(emitUsefulWork(C, P), {30 * S});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {S / 8});
  } else if (Name == "tradebeans") {
    // Case study: KeyBlock wrappers. Heavy startup/shutdown phases make
    // this (with tradesoap) the selective-tracking experiment's subject.
    // Server startup and shutdown dominate the run (they are what the
    // paper's selective tracking skips); the ballast lives there so the
    // fix's win stays near the paper's ~2.5%.
    const std::string P = "tb" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {4 * S});
    A.inLoad(emitWrapperIterator(C, P, Optimized), {S});
    A.inLoad(emitEventRing(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {3 * S});
  } else if (Name == "tradesoap") {
    const std::string P = "ts" + Tag;
    A.inStartup(emitUsefulWork(C, P + "_init"), {4 * S});
    A.inLoad(emitBeanCopy(C, P), {S / 2});
    A.inLoad(emitWrapperIterator(C, P, false), {S / 4});
    A.inLoad(emitEventRing(C, P), {S / 4});
    A.inShutdown(emitUsefulWork(C, P + "_fini"), {4 * S});
  } else {
    lud_unreachable("unknown workload name");
  }
}

} // namespace recipes
} // namespace lud

#endif // LUD_WORKLOADS_RECIPES_H
