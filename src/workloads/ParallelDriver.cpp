//===- workloads/ParallelDriver.cpp - Sharded profiling driver -------------===//

#include "workloads/ParallelDriver.h"

#include "obs/PhaseTimer.h"
#include "support/WorkerPool.h"
#include "trace/TraceRecorder.h"

#include <chrono>

using namespace lud;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

std::string lud::shardTracePath(const std::string &Path, unsigned Shard,
                                unsigned Shards) {
  return Shards <= 1 ? Path : Path + ".shard" + std::to_string(Shard);
}

ShardedSession lud::runShardedSession(const Module &M, unsigned Shards,
                                      SessionConfig Cfg, unsigned Threads) {
  ShardedSession Out;
  if (Shards == 0)
    return Out;
  std::vector<std::unique_ptr<ProfileSession>> Sessions(Shards);
  std::vector<RunResult> Results(Shards);
  auto T0 = std::chrono::steady_clock::now();
  forEachJob(Shards, Threads, [&](unsigned S) {
    SessionConfig SC = Cfg;
    if (!SC.RecordPath.empty() && !SC.RecordSink)
      SC.RecordPath = shardTracePath(Cfg.RecordPath, S, Shards);
    Sessions[S] = std::make_unique<ProfileSession>(std::move(SC));
    Results[S] = Sessions[S]->run(M).Run;
  });
  for (const auto &S : Sessions) {
    if (Out.Error.empty() && !S->recordError().empty())
      Out.Error = S->recordError();
    if (const trace::TraceRecorder *R = S->recorder())
      Out.Events += R->events();
  }
  // Fold in shard-index order: mergeFrom treats its argument as the later
  // of two sequential runs, so this reproduces one session observing the
  // shards back to back — for the substrate and every client alike.
  Out.Session = std::move(Sessions[0]);
  {
    obs::PhaseTimer Span(Out.Session->stats(), "merge");
    for (unsigned S = 1; S != Shards; ++S)
      Out.Session->mergeFrom(*Sessions[S]);
  }
  Out.Seconds = secondsSince(T0);
  Out.Run = Results[0];
  for (const RunResult &R : Results)
    Out.TotalInstrs += R.ExecutedInstrs;
  return Out;
}

ShardedRun lud::runShardedProfiled(const Module &M, unsigned Shards,
                                   ParallelConfig Cfg) {
  SessionConfig SC;
  SC.Slicing = Cfg.Slicing;
  SC.Run = Cfg.Run;
  ShardedSession S = runShardedSession(M, Shards, std::move(SC), Cfg.Threads);
  ShardedRun Out;
  Out.Run = S.Run;
  Out.TotalInstrs = S.TotalInstrs;
  Out.Seconds = S.Seconds;
  if (S.Session)
    Out.Prof = S.Session->takeSlicing();
  return Out;
}

ParallelResult lud::runParallel(const std::vector<const Module *> &Mods,
                                ParallelConfig Cfg) {
  ParallelResult Out;
  Out.Runs.resize(Mods.size());
  auto T0 = std::chrono::steady_clock::now();
  forEachJob(unsigned(Mods.size()), Cfg.Threads, [&](unsigned J) {
    ProfiledRun &R = Out.Runs[J];
    R.Prof = std::make_unique<SlicingProfiler>(Cfg.Slicing);
    Heap H;
    Interpreter<SlicingProfiler> Interp(*Mods[J], H, *R.Prof, Cfg.Run);
    auto J0 = std::chrono::steady_clock::now();
    R.Run = Interp.run();
    R.Seconds = secondsSince(J0);
  });
  Out.Seconds = secondsSince(T0);
  return Out;
}
