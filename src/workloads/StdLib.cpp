//===- workloads/StdLib.cpp - IR-level runtime library ---------------------===//

#include "workloads/StdLib.h"

#include "workloads/EmitUtil.h"

using namespace lud;

StdLib::StdLib(Module &Mod, StdLibOptions Options) : M(Mod), Opts(Options) {
  IRBuilder B(M);

  //===------------------------------------------------------------------===//
  // Class declarations first so methods can cross-reference them.
  //===------------------------------------------------------------------===//
  ClassDecl *IntVecC = M.addClass("IntVec");
  IntVecC->addField("arr", Type::makeArray(TypeKind::Int));
  IntVecC->addField("size", Type::makeInt());
  IntVec = IntVecC->getId();

  ClassDecl *RefVecC = M.addClass("RefVec");
  RefVecC->addField("arr", Type::makeArray(TypeKind::Ref));
  RefVecC->addField("size", Type::makeInt());
  RefVec = RefVecC->getId();

  ClassDecl *StrC = M.addClass("Str");
  StrC->addField("chars", Type::makeArray(TypeKind::Int));
  StrC->addField("len", Type::makeInt());
  StrC->addField("hash", Type::makeInt());
  Str = StrC->getId();

  ClassDecl *MatrixC = M.addClass("Matrix");
  MatrixC->addField("cells", Type::makeArray(TypeKind::Float));
  MatrixC->addField("n", Type::makeInt());
  Matrix = MatrixC->getId();

  ClassDecl *StrMapC = M.addClass("StrMap");
  StrMapC->addField("keys", Type::makeArray(TypeKind::Ref, Str));
  StrMapC->addField("vals", Type::makeArray(TypeKind::Int));
  StrMapC->addField("hashes", Type::makeArray(TypeKind::Int));
  StrMapC->addField("cap", Type::makeInt());
  StrMapC->addField("msize", Type::makeInt());
  StrMap = StrMapC->getId();

  //===------------------------------------------------------------------===//
  // IntVec.
  //===------------------------------------------------------------------===//
  {
    B.beginMethod(IntVec, "init", 2); // (this, cap)
    Reg Arr = B.allocArray(TypeKind::Int, 1);
    B.storeField(0, IntVec, "arr", Arr);
    Reg Z = B.iconst(0);
    B.storeField(0, IntVec, "size", Z);
    B.ret();
    B.endFunction();
    IntVecInit = M.findFunction("IntVec.init");
  }
  {
    B.beginMethod(IntVec, "add", 2); // (this, v)
    Reg Size = B.loadField(0, IntVec, "size");
    Reg Arr = B.loadField(0, IntVec, "arr");
    Reg Cap = B.arrayLen(Arr);
    BasicBlock *Grow = B.newBlock();
    BasicBlock *Store = B.newBlock();
    B.condBr(CmpOp::Lt, Size, Cap, Store, Grow);

    B.setBlock(Grow);
    Reg Two = B.iconst(2);
    Reg NCap0 = B.mul(Cap, Two);
    Reg One = B.iconst(1);
    Reg NCap = B.add(NCap0, One);
    Reg NArr = B.allocArray(TypeKind::Int, NCap);
    emitCountedLoop(B, Size, [&](Reg J) {
      Reg T = B.loadElem(Arr, J);
      B.storeElem(NArr, J, T);
    });
    B.storeField(0, IntVec, "arr", NArr);
    B.moveInto(Arr, NArr);
    B.br(Store);

    B.setBlock(Store);
    B.storeElem(Arr, Size, 1); // arr[size] = v
    Reg One2 = B.iconst(1);
    Reg NSize = B.add(Size, One2);
    B.storeField(0, IntVec, "size", NSize);
    B.ret();
    B.endFunction();
    IntVecAdd = M.findFunction("IntVec.add");
  }
  {
    B.beginMethod(IntVec, "get", 2); // (this, i)
    Reg Arr = B.loadField(0, IntVec, "arr");
    Reg V = B.loadElem(Arr, 1);
    B.ret(V);
    B.endFunction();
    IntVecGet = M.findFunction("IntVec.get");
  }
  {
    B.beginMethod(IntVec, "set", 3); // (this, i, v)
    Reg Arr = B.loadField(0, IntVec, "arr");
    B.storeElem(Arr, 1, 2);
    B.ret();
    B.endFunction();
    IntVecSet = M.findFunction("IntVec.set");
  }
  {
    B.beginMethod(IntVec, "size", 1);
    Reg S = B.loadField(0, IntVec, "size");
    B.ret(S);
    B.endFunction();
    IntVecSize = M.findFunction("IntVec.size");
  }

  //===------------------------------------------------------------------===//
  // RefVec.
  //===------------------------------------------------------------------===//
  {
    B.beginMethod(RefVec, "init", 2);
    Reg Arr = B.allocArray(TypeKind::Ref, 1);
    B.storeField(0, RefVec, "arr", Arr);
    Reg Z = B.iconst(0);
    B.storeField(0, RefVec, "size", Z);
    B.ret();
    B.endFunction();
    RefVecInit = M.findFunction("RefVec.init");
  }
  {
    B.beginMethod(RefVec, "add", 2); // (this, ref)
    Reg Size = B.loadField(0, RefVec, "size");
    Reg Arr = B.loadField(0, RefVec, "arr");
    Reg Cap = B.arrayLen(Arr);
    BasicBlock *Grow = B.newBlock();
    BasicBlock *Store = B.newBlock();
    B.condBr(CmpOp::Lt, Size, Cap, Store, Grow);

    B.setBlock(Grow);
    Reg Two = B.iconst(2);
    Reg NCap0 = B.mul(Cap, Two);
    Reg One = B.iconst(1);
    Reg NCap = B.add(NCap0, One);
    Reg NArr = B.allocArray(TypeKind::Ref, NCap);
    emitCountedLoop(B, Size, [&](Reg J) {
      Reg T = B.loadElem(Arr, J);
      B.storeElem(NArr, J, T);
    });
    B.storeField(0, RefVec, "arr", NArr);
    B.moveInto(Arr, NArr);
    B.br(Store);

    B.setBlock(Store);
    B.storeElem(Arr, Size, 1);
    Reg One2 = B.iconst(1);
    Reg NSize = B.add(Size, One2);
    B.storeField(0, RefVec, "size", NSize);
    B.ret();
    B.endFunction();
    RefVecAdd = M.findFunction("RefVec.add");
  }
  {
    B.beginMethod(RefVec, "get", 2);
    Reg Arr = B.loadField(0, RefVec, "arr");
    Reg V = B.loadElem(Arr, 1);
    B.ret(V);
    B.endFunction();
    RefVecGet = M.findFunction("RefVec.get");
  }
  {
    B.beginMethod(RefVec, "size", 1);
    Reg S = B.loadField(0, RefVec, "size");
    B.ret(S);
    B.endFunction();
    RefVecSize = M.findFunction("RefVec.size");
  }

  //===------------------------------------------------------------------===//
  // Str.
  //===------------------------------------------------------------------===//
  {
    B.beginFunction("makeStr", 2); // (n, seed) -> Str
    Reg S = B.alloc(this->Str);
    Reg Chars = B.allocArray(TypeKind::Int, 0);
    Reg H = B.iconst(0);
    Reg C31 = B.iconst(31);
    Reg C7 = B.iconst(7);
    Reg Mask = B.iconst(127);
    Reg HashMask = B.iconst(0x7FFFFFFF);
    emitCountedLoop(B, 0, [&](Reg I) {
      Reg T1 = B.mul(I, C7);
      Reg T2 = B.add(T1, 1); // + seed
      Reg Ch = B.bin(BinOp::And, T2, Mask);
      B.storeElem(Chars, I, Ch);
      Reg HM = B.mul(H, C31);
      Reg HA = B.add(HM, Ch);
      B.binInto(H, BinOp::And, HA, HashMask);
    });
    B.storeField(S, this->Str, "chars", Chars);
    B.storeField(S, this->Str, "len", 0);
    if (Opts.CachedStrHash)
      B.storeField(S, this->Str, "hash", H);
    B.ret(S);
    B.endFunction();
    StrMake = M.findFunction("makeStr");
  }
  {
    B.beginMethod(this->Str, "hashCode", 1);
    if (Opts.CachedStrHash) {
      Reg H = B.loadField(0, this->Str, "hash");
      B.ret(H);
    } else {
      Reg Chars = B.loadField(0, this->Str, "chars");
      Reg N = B.loadField(0, this->Str, "len");
      Reg H = B.iconst(0);
      Reg C31 = B.iconst(31);
      Reg HashMask = B.iconst(0x7FFFFFFF);
      emitCountedLoop(B, N, [&](Reg I) {
        Reg Ch = B.loadElem(Chars, I);
        Reg HM = B.mul(H, C31);
        Reg HA = B.add(HM, Ch);
        B.binInto(H, BinOp::And, HA, HashMask);
      });
      B.ret(H);
    }
    B.endFunction();
    StrHash = M.findFunction("Str.hashCode");
  }
  {
    B.beginMethod(this->Str, "equals", 2); // (this, o) -> 0/1
    Reg La = B.loadField(0, this->Str, "len");
    Reg Lb = B.loadField(1, this->Str, "len");
    BasicBlock *LenEq = B.newBlock();
    BasicBlock *RetNo = B.newBlock();
    B.condBr(CmpOp::Eq, La, Lb, LenEq, RetNo);

    B.setBlock(RetNo);
    Reg Zero = B.iconst(0);
    B.ret(Zero);

    B.setBlock(LenEq);
    Reg Ca = B.loadField(0, this->Str, "chars");
    Reg Cb = B.loadField(1, this->Str, "chars");
    Reg I = B.iconst(0);
    Reg One = B.iconst(1);
    BasicBlock *Header = B.newBlock();
    BasicBlock *Body = B.newBlock();
    BasicBlock *RetYes = B.newBlock();
    BasicBlock *Mismatch = B.newBlock();
    B.br(Header);
    B.setBlock(Header);
    B.condBr(CmpOp::Lt, I, La, Body, RetYes);
    B.setBlock(Body);
    Reg A = B.loadElem(Ca, I);
    Reg Bv = B.loadElem(Cb, I);
    BasicBlock *Next = B.newBlock();
    B.condBr(CmpOp::Eq, A, Bv, Next, Mismatch);
    B.setBlock(Next);
    B.binInto(I, BinOp::Add, I, One);
    B.br(Header);
    B.setBlock(Mismatch);
    Reg Zero2 = B.iconst(0);
    B.ret(Zero2);
    B.setBlock(RetYes);
    Reg One2 = B.iconst(1);
    B.ret(One2);
    B.endFunction();
    StrEquals = M.findFunction("Str.equals");
  }
  {
    B.beginMethod(this->Str, "concat", 2); // (this, o) -> Str
    Reg La = B.loadField(0, this->Str, "len");
    Reg Lb = B.loadField(1, this->Str, "len");
    Reg N = B.add(La, Lb);
    Reg S = B.alloc(this->Str);
    Reg Chars = B.allocArray(TypeKind::Int, N);
    Reg Ca = B.loadField(0, this->Str, "chars");
    Reg Cb = B.loadField(1, this->Str, "chars");
    emitCountedLoop(B, La, [&](Reg I) {
      Reg Ch = B.loadElem(Ca, I);
      B.storeElem(Chars, I, Ch);
    });
    emitCountedLoop(B, Lb, [&](Reg I) {
      Reg Ch = B.loadElem(Cb, I);
      Reg Pos = B.add(La, I);
      B.storeElem(Chars, Pos, Ch);
    });
    B.storeField(S, this->Str, "chars", Chars);
    B.storeField(S, this->Str, "len", N);
    if (Opts.CachedStrHash) {
      Reg H = B.iconst(0);
      Reg C31 = B.iconst(31);
      Reg HashMask = B.iconst(0x7FFFFFFF);
      emitCountedLoop(B, N, [&](Reg I) {
        Reg Ch = B.loadElem(Chars, I);
        Reg HM = B.mul(H, C31);
        Reg HA = B.add(HM, Ch);
        B.binInto(H, BinOp::And, HA, HashMask);
      });
      B.storeField(S, this->Str, "hash", H);
    }
    B.ret(S);
    B.endFunction();
    StrConcat = M.findFunction("Str.concat");
  }

  //===------------------------------------------------------------------===//
  // Matrix.
  //===------------------------------------------------------------------===//
  {
    B.beginFunction("makeMatrix", 2); // (n, seed) -> Matrix
    Reg Mx = B.alloc(this->Matrix);
    Reg Sz = B.mul(0, 0);
    Reg Cells = B.allocArray(TypeKind::Float, Sz);
    Reg Half = B.fconst(0.5);
    emitCountedLoop(B, Sz, [&](Reg I) {
      Reg T = B.add(1, I); // seed + i
      Reg F = B.un(UnOp::I2F, T);
      Reg V = B.mul(F, Half);
      B.storeElem(Cells, I, V);
    });
    B.storeField(Mx, this->Matrix, "cells", Cells);
    B.storeField(Mx, this->Matrix, "n", 0);
    B.ret(Mx);
    B.endFunction();
    MatrixMake = M.findFunction("makeMatrix");
  }
  {
    B.beginMethod(this->Matrix, "clone", 1);
    Reg Cells = B.loadField(0, this->Matrix, "cells");
    Reg N = B.loadField(0, this->Matrix, "n");
    Reg Sz = B.arrayLen(Cells);
    Reg C = B.alloc(this->Matrix);
    Reg NCells = B.allocArray(TypeKind::Float, Sz);
    emitCountedLoop(B, Sz, [&](Reg I) {
      Reg V = B.loadElem(Cells, I);
      B.storeElem(NCells, I, V);
    });
    B.storeField(C, this->Matrix, "cells", NCells);
    B.storeField(C, this->Matrix, "n", N);
    B.ret(C);
    B.endFunction();
    MatrixClone = M.findFunction("Matrix.clone");
  }
  {
    B.beginMethod(this->Matrix, "scale", 2); // (this, f) -> Matrix
    Reg Target = Opts.InPlaceMatrixOps ? Reg(0)
                                       : B.call(MatrixClone, {Reg(0)});
    Reg Cells = B.loadField(Target, this->Matrix, "cells");
    Reg Sz = B.arrayLen(Cells);
    emitCountedLoop(B, Sz, [&](Reg I) {
      Reg V = B.loadElem(Cells, I);
      Reg W = B.mul(V, 1);
      B.storeElem(Cells, I, W);
    });
    B.ret(Target);
    B.endFunction();
    MatrixScale = M.findFunction("Matrix.scale");
  }
  {
    B.beginMethod(this->Matrix, "transpose", 1); // -> Matrix
    Reg N = B.loadField(0, this->Matrix, "n");
    if (Opts.InPlaceMatrixOps) {
      Reg Cells = B.loadField(0, this->Matrix, "cells");
      // In place: swap (i, j) with (j, i) for j > i.
      emitCountedLoop(B, N, [&](Reg I) {
        emitCountedLoop(B, N, [&](Reg J) {
          BasicBlock *Swap = B.newBlock();
          BasicBlock *Skip = B.newBlock();
          B.condBr(CmpOp::Lt, I, J, Swap, Skip);
          B.setBlock(Swap);
          Reg IJ0 = B.mul(I, N);
          Reg IJ = B.add(IJ0, J);
          Reg JI0 = B.mul(J, N);
          Reg JI = B.add(JI0, I);
          Reg A = B.loadElem(Cells, IJ);
          Reg Bv = B.loadElem(Cells, JI);
          B.storeElem(Cells, IJ, Bv);
          B.storeElem(Cells, JI, A);
          B.br(Skip);
          B.setBlock(Skip);
        });
      });
      B.ret(0);
    } else {
      Reg C = B.call(MatrixClone, {Reg(0)});
      Reg Cells = B.loadField(0, this->Matrix, "cells");
      Reg NCells = B.loadField(C, this->Matrix, "cells");
      emitCountedLoop(B, N, [&](Reg I) {
        emitCountedLoop(B, N, [&](Reg J) {
          Reg IJ0 = B.mul(I, N);
          Reg IJ = B.add(IJ0, J);
          Reg JI0 = B.mul(J, N);
          Reg JI = B.add(JI0, I);
          Reg V = B.loadElem(Cells, JI);
          B.storeElem(NCells, IJ, V);
        });
      });
      B.ret(C);
    }
    B.endFunction();
    MatrixTranspose = M.findFunction("Matrix.transpose");
  }
  {
    B.beginMethod(this->Matrix, "sum", 1); // -> float
    Reg Cells = B.loadField(0, this->Matrix, "cells");
    Reg Sz = B.arrayLen(Cells);
    Reg S = B.fconst(0.0);
    emitCountedLoop(B, Sz, [&](Reg I) {
      Reg V = B.loadElem(Cells, I);
      B.binInto(S, BinOp::Add, S, V);
    });
    B.ret(S);
    B.endFunction();
    MatrixSum = M.findFunction("Matrix.sum");
  }

  //===------------------------------------------------------------------===//
  // StrMap: open addressing, linear probing, growth at 50% load. The
  // uncached variant recomputes every key's hash during rehash — the
  // eclipse HashtableOfArrayToObject bloat the paper's case study fixes by
  // caching hash codes.
  //===------------------------------------------------------------------===//
  {
    B.beginMethod(this->StrMap, "init", 2); // (this, cap)
    Reg Keys = B.allocArray(TypeKind::Ref, 1);
    Reg Vals = B.allocArray(TypeKind::Int, 1);
    Reg Hashes = B.allocArray(TypeKind::Int, 1);
    B.storeField(0, this->StrMap, "keys", Keys);
    B.storeField(0, this->StrMap, "vals", Vals);
    B.storeField(0, this->StrMap, "hashes", Hashes);
    B.storeField(0, this->StrMap, "cap", 1);
    Reg Z = B.iconst(0);
    B.storeField(0, this->StrMap, "msize", Z);
    B.ret();
    B.endFunction();
    StrMapInit = M.findFunction("StrMap.init");
  }
  {
    // Internal: probe-insert into (keys, vals, hashes) of capacity cap,
    // assuming a free slot exists; no size update, no rehash.
    B.beginFunction("strmapRawPut", 6); // (keys, vals, hashes, cap, k, v)
    Reg H = B.call(StrHash, {Reg(4)});
    Reg Idx = B.bin(BinOp::Rem, H, 3);
    Reg Null = B.nullconst();
    Reg One = B.iconst(1);
    BasicBlock *Probe = B.newBlock();
    BasicBlock *CheckKey = B.newBlock();
    BasicBlock *Insert = B.newBlock();
    BasicBlock *Bump = B.newBlock();
    B.br(Probe);
    B.setBlock(Probe);
    Reg Key = B.loadElem(0, Idx);
    B.condBr(CmpOp::Eq, Key, Null, Insert, CheckKey);
    B.setBlock(CheckKey);
    Reg Eq = B.call(StrEquals, {Key, Reg(4)});
    B.condBr(CmpOp::Eq, Eq, One, Insert, Bump);
    B.setBlock(Bump);
    Reg Idx2 = B.add(Idx, One);
    Reg Idx3 = B.bin(BinOp::Rem, Idx2, 3);
    B.moveInto(Idx, Idx3);
    B.br(Probe);
    B.setBlock(Insert);
    B.storeElem(0, Idx, 4);
    B.storeElem(1, Idx, 5);
    B.storeElem(2, Idx, H);
    B.ret();
    B.endFunction();
  }
  {
    B.beginMethod(this->StrMap, "put", 3); // (this, k, v)
    Reg Size = B.loadField(0, this->StrMap, "msize");
    Reg Cap = B.loadField(0, this->StrMap, "cap");
    Reg Two = B.iconst(2);
    Reg One = B.iconst(1);
    Reg SizeP1 = B.add(Size, One);
    Reg Need = B.mul(SizeP1, Two);
    BasicBlock *Rehash = B.newBlock();
    BasicBlock *DoPut = B.newBlock();
    B.condBr(CmpOp::Ge, Need, Cap, Rehash, DoPut);

    B.setBlock(Rehash);
    Reg NCap0 = B.mul(Cap, Two);
    Reg NCap = B.add(NCap0, Two);
    Reg NKeys = B.allocArray(TypeKind::Ref, NCap);
    Reg NVals = B.allocArray(TypeKind::Int, NCap);
    Reg NHashes = B.allocArray(TypeKind::Int, NCap);
    Reg OKeys = B.loadField(0, this->StrMap, "keys");
    Reg OVals = B.loadField(0, this->StrMap, "vals");
    Reg OHashes = B.loadField(0, this->StrMap, "hashes");
    Reg Null = B.nullconst();
    emitCountedLoop(B, Cap, [&](Reg J) {
      BasicBlock *Live = B.newBlock();
      BasicBlock *Skip = B.newBlock();
      Reg KK = B.loadElem(OKeys, J);
      B.condBr(CmpOp::Ne, KK, Null, Live, Skip);
      B.setBlock(Live);
      Reg HH = Opts.CachedStrHash ? B.loadElem(OHashes, J)
                                  : B.call(StrHash, {KK});
      // Re-probe into the new arrays.
      Reg Idx = B.bin(BinOp::Rem, HH, NCap);
      BasicBlock *Probe = B.newBlock();
      BasicBlock *Put = B.newBlock();
      BasicBlock *Bump = B.newBlock();
      B.br(Probe);
      B.setBlock(Probe);
      Reg Slot = B.loadElem(NKeys, Idx);
      B.condBr(CmpOp::Eq, Slot, Null, Put, Bump);
      B.setBlock(Bump);
      Reg One2 = B.iconst(1);
      Reg I2 = B.add(Idx, One2);
      Reg I3 = B.bin(BinOp::Rem, I2, NCap);
      B.moveInto(Idx, I3);
      B.br(Probe);
      B.setBlock(Put);
      B.storeElem(NKeys, Idx, KK);
      Reg VV = B.loadElem(OVals, J);
      B.storeElem(NVals, Idx, VV);
      B.storeElem(NHashes, Idx, HH);
      B.br(Skip);
      B.setBlock(Skip);
    });
    B.storeField(0, this->StrMap, "keys", NKeys);
    B.storeField(0, this->StrMap, "vals", NVals);
    B.storeField(0, this->StrMap, "hashes", NHashes);
    B.storeField(0, this->StrMap, "cap", NCap);
    B.br(DoPut);

    B.setBlock(DoPut);
    Reg Keys = B.loadField(0, this->StrMap, "keys");
    Reg Vals = B.loadField(0, this->StrMap, "vals");
    Reg Hashes = B.loadField(0, this->StrMap, "hashes");
    Reg Cap2 = B.loadField(0, this->StrMap, "cap");
    B.callVoid("strmapRawPut", {Keys, Vals, Hashes, Cap2, 1, 2});
    Reg NSize = B.add(Size, One);
    B.storeField(0, this->StrMap, "msize", NSize);
    B.ret();
    B.endFunction();
    StrMapPut = M.findFunction("StrMap.put");
  }
  {
    B.beginMethod(this->StrMap, "get", 2); // (this, k) -> int
    Reg Keys = B.loadField(0, this->StrMap, "keys");
    Reg Vals = B.loadField(0, this->StrMap, "vals");
    Reg Cap = B.loadField(0, this->StrMap, "cap");
    Reg H = B.call(StrHash, {Reg(1)});
    Reg Idx = B.bin(BinOp::Rem, H, Cap);
    Reg Null = B.nullconst();
    Reg One = B.iconst(1);
    BasicBlock *Probe = B.newBlock();
    BasicBlock *CheckKey = B.newBlock();
    BasicBlock *Miss = B.newBlock();
    BasicBlock *HitBB = B.newBlock();
    BasicBlock *Bump = B.newBlock();
    B.br(Probe);
    B.setBlock(Probe);
    Reg Key = B.loadElem(Keys, Idx);
    B.condBr(CmpOp::Eq, Key, Null, Miss, CheckKey);
    B.setBlock(CheckKey);
    Reg Eq = B.call(StrEquals, {Key, Reg(1)});
    B.condBr(CmpOp::Eq, Eq, One, HitBB, Bump);
    B.setBlock(Bump);
    Reg I2 = B.add(Idx, One);
    Reg I3 = B.bin(BinOp::Rem, I2, Cap);
    B.moveInto(Idx, I3);
    B.br(Probe);
    B.setBlock(Miss);
    Reg Z = B.iconst(0);
    B.ret(Z);
    B.setBlock(HitBB);
    Reg V = B.loadElem(Vals, Idx);
    B.ret(V);
    B.endFunction();
    StrMapGet = M.findFunction("StrMap.get");
  }
}
