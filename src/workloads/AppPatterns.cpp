//===- workloads/AppPatterns.cpp - Application-substance patterns ----------===//
//
// The "what the application actually does" layer of each DaCapo analogue:
// scanners, ASTs, event queues, postings, page indexes, dispatch loops,
// template tables, top-K selection. These are genuinely useful computations
// (their results reach the sink), so the planted inefficiency patterns of
// Patterns.cpp compete against realistic layered data flow — as they do in
// the paper's real applications.
//
//===----------------------------------------------------------------------===//

#include "workloads/Patterns.h"

#include "workloads/EmitUtil.h"

using namespace lud;

FuncId lud::emitTokenScanner(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Token = M.addClass(P + "_Token");
  Token->addField("kind", Type::makeInt());
  Token->addField("start", Type::makeInt());

  B.beginFunction(P + "_scan", 1); // (n chars) -> int
  // DFA transition table: 4 states x 8 character classes.
  Reg C32 = B.iconst(32);
  Reg Table = B.allocArray(TypeKind::Int, C32);
  Reg C4 = B.iconst(4);
  Reg C8 = B.iconst(8);
  Reg Mask7 = B.iconst(7);
  Reg Zero = B.iconst(0);
  Reg One = B.iconst(1);
  // table[s*8 + c] = (s + c) % 4  — an arbitrary but fixed automaton.
  emitCountedLoop(B, C4, [&](Reg S) {
    emitCountedLoop(B, C8, [&](Reg Ch) {
      Reg Idx0 = B.mul(S, C8);
      Reg Idx = B.add(Idx0, Ch);
      Reg Sum = B.add(S, Ch);
      Reg Next = B.bin(BinOp::Rem, Sum, C4);
      B.storeElem(Table, Idx, Next);
    });
  });
  // Scan: state 0 is "token boundary"; each boundary emits a Token.
  Reg State = B.iconst(0);
  Reg Count = B.iconst(0);
  Reg Check = B.iconst(0);
  Reg C13 = B.iconst(13);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg Raw = B.mul(I, C13);
    Reg Ch = B.bin(BinOp::And, Raw, Mask7);
    Reg Idx0 = B.mul(State, C8);
    Reg Idx = B.add(Idx0, Ch);
    Reg Next = B.loadElem(Table, Idx);
    B.moveInto(State, Next);
    emitIf(B, CmpOp::Eq, State, Zero, [&] {
      // Token recognized: box it, use it once, drop it.
      Reg T = B.alloc(Token->getId());
      B.storeField(T, Token->getId(), "kind", Ch);
      B.storeField(T, Token->getId(), "start", I);
      Reg K = B.loadField(T, Token->getId(), "kind");
      Reg Mix = B.bin(BinOp::Xor, Check, K);
      B.moveInto(Check, Mix);
      B.binInto(Count, BinOp::Add, Count, One);
    });
  });
  Reg Out = B.add(Count, Check);
  B.ret(Out);
  B.endFunction();
  return M.findFunction(P + "_scan");
}

FuncId lud::emitAstBuildTraverse(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Node = M.addClass(P + "_Ast");
  Node->addField("val", Type::makeInt());
  Node->addField("lhs", Type::makeRef(Node->getId()));
  Node->addField("rhs", Type::makeRef(Node->getId()));

  // build(depth, seed) -> Ast: a full binary tree.
  B.beginFunction(P + "_build", 2);
  Reg N = B.alloc(Node->getId());
  Reg C31 = B.iconst(31);
  Reg V0 = B.mul(1, C31);
  Reg V = B.add(V0, 0);
  B.storeField(N, Node->getId(), "val", V);
  Reg Zero = B.iconst(0);
  BasicBlock *Recurse = B.newBlock();
  BasicBlock *Done = B.newBlock();
  B.condBr(CmpOp::Gt, 0, Zero, Recurse, Done);
  B.setBlock(Recurse);
  Reg One = B.iconst(1);
  Reg DM1 = B.sub(0, One);
  Reg SL = B.add(1, One);
  Reg L = B.call(P + "_build", {DM1, SL});
  B.storeField(N, Node->getId(), "lhs", L);
  Reg Two = B.iconst(2);
  Reg SR = B.add(1, Two);
  Reg R = B.call(P + "_build", {DM1, SR});
  B.storeField(N, Node->getId(), "rhs", R);
  B.br(Done);
  B.setBlock(Done);
  B.ret(N);
  B.endFunction();

  // Ast.fold(this) -> int: recursive sum (virtual, so receiver chains
  // extend through the recursion).
  B.beginMethod(Node->getId(), "fold", 1);
  Reg Sum = B.loadField(0, Node->getId(), "val");
  Reg Lhs = B.loadField(0, Node->getId(), "lhs");
  Reg Null = B.nullconst();
  BasicBlock *HasKids = B.newBlock();
  BasicBlock *Leaf = B.newBlock();
  B.condBr(CmpOp::Ne, Lhs, Null, HasKids, Leaf);
  B.setBlock(HasKids);
  Reg LV = B.vcall("fold", {Lhs});
  B.binInto(Sum, BinOp::Add, Sum, LV);
  Reg Rhs = B.loadField(0, Node->getId(), "rhs");
  Reg RV = B.vcall("fold", {Rhs});
  B.binInto(Sum, BinOp::Add, Sum, RV);
  B.ret(Sum);
  B.setBlock(Leaf);
  B.ret(Sum);
  B.endFunction();

  B.beginFunction(P + "_ast", 1); // (n trees) -> int
  Reg Acc = B.iconst(0);
  Reg Depth = B.iconst(6); // 127 nodes per tree.
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg Root = B.call(P + "_build", {Depth, I});
    Reg V = B.vcall("fold", {Root});
    B.binInto(Acc, BinOp::Add, Acc, V);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_ast");
}

FuncId lud::emitEventRing(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_events", 1); // (n events) -> int
  Reg Cap = B.iconst(64);
  Reg Times = B.allocArray(TypeKind::Int, Cap);
  Reg Kinds = B.allocArray(TypeKind::Int, Cap);
  Reg Head = B.iconst(0);
  Reg Tail = B.iconst(0);
  Reg Clock = B.iconst(0);
  Reg Acc = B.iconst(0);
  Reg One = B.iconst(1);
  Reg Mask = B.iconst(63);
  Reg C5 = B.iconst(5);
  Reg C3 = B.iconst(3);
  emitCountedLoop(B, 0, [&](Reg I) {
    // Enqueue one event...
    Reg Slot = B.bin(BinOp::And, Tail, Mask);
    Reg T0 = B.mul(I, C5);
    Reg T = B.add(T0, Clock);
    B.storeElem(Times, Slot, T);
    Reg K = B.bin(BinOp::And, I, C3);
    B.storeElem(Kinds, Slot, K);
    B.binInto(Tail, BinOp::Add, Tail, One);
    // ...and drain one when the ring holds at least two.
    Reg Fill = B.sub(Tail, Head);
    emitIf(B, CmpOp::Gt, Fill, One, [&] {
      Reg HSlot = B.bin(BinOp::And, Head, Mask);
      Reg ET = B.loadElem(Times, HSlot);
      Reg EK = B.loadElem(Kinds, HSlot);
      B.moveInto(Clock, ET);
      // Dispatch on kind.
      Reg Zero = B.iconst(0);
      emitIfElse(
          B, CmpOp::Eq, EK, Zero,
          [&] { B.binInto(Acc, BinOp::Add, Acc, ET); },
          [&] { B.binInto(Acc, BinOp::Xor, Acc, ET); });
      B.binInto(Head, BinOp::Add, Head, One);
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_events");
}

FuncId lud::emitPostings(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();

  B.beginFunction(P + "_postings", 1); // (n docs) -> int
  // 16 terms, postings as IntVecs held in a RefVec.
  Reg NTerms = B.iconst(16);
  Reg Lists = B.alloc(L.RefVec);
  B.callVoid("RefVec.init", {Lists, NTerms});
  Reg C4 = B.iconst(4);
  emitCountedLoop(B, NTerms, [&](Reg) {
    Reg PL = B.alloc(L.IntVec);
    B.callVoid("IntVec.init", {PL, C4});
    B.callVoid("RefVec.add", {Lists, PL});
  });
  // Index: each doc mentions 3 pseudo-random terms.
  Reg C13 = B.iconst(13);
  Reg Mask15 = B.iconst(15);
  Reg C3 = B.iconst(3);
  emitCountedLoop(B, 0, [&](Reg Doc) {
    emitCountedLoop(B, C3, [&](Reg J) {
      Reg T0 = B.mul(Doc, C13);
      Reg T1 = B.add(T0, J);
      Reg Term = B.bin(BinOp::And, T1, Mask15);
      Reg PL = B.call(L.RefVecGet, {Lists, Term});
      B.callVoid("IntVec.add", {PL, Doc});
    });
  });
  // Query: total postings volume over all terms.
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, NTerms, [&](Reg Term) {
    Reg PL = B.call(L.RefVecGet, {Lists, Term});
    Reg Sz = B.call(L.IntVecSize, {PL});
    emitCountedLoop(B, Sz, [&](Reg K) {
      Reg DocId = B.call(L.IntVecGet, {PL, K});
      B.binInto(Acc, BinOp::Add, Acc, DocId);
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_postings");
}

FuncId lud::emitPageIndex(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_pages", 1); // (n ops) -> int
  Reg Cap = B.iconst(128);
  Reg Keys = B.allocArray(TypeKind::Int, Cap);
  Reg Size = B.iconst(0);
  Reg One = B.iconst(1);
  Reg C127 = B.iconst(127);
  Reg C2654435761 = B.iconst(2654435761LL);
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, 0, [&](Reg I) {
    Reg H0 = B.mul(I, C2654435761);
    Reg Key = B.bin(BinOp::And, H0, C127);
    // Binary-ish search: linear scan to the insertion point (sorted array,
    // bounded 128) — finds either the key or where it belongs.
    Reg Pos = B.iconst(0);
    BasicBlock *SH = B.newBlock();
    BasicBlock *SB = B.newBlock();
    BasicBlock *SX = B.newBlock();
    B.br(SH);
    B.setBlock(SH);
    B.condBr(CmpOp::Lt, Pos, Size, SB, SX);
    B.setBlock(SB);
    Reg At = B.loadElem(Keys, Pos);
    BasicBlock *Next = B.newBlock();
    B.condBr(CmpOp::Lt, At, Key, Next, SX);
    B.setBlock(Next);
    B.binInto(Pos, BinOp::Add, Pos, One);
    B.br(SH);
    B.setBlock(SX);
    // Insert if absent and not full: shift the tail right.
    Reg Full = B.bin(BinOp::CmpGe, Size, C127);
    Reg Zero = B.iconst(0);
    emitIf(B, CmpOp::Eq, Full, Zero, [&] {
      Reg J = B.move(Size);
      BasicBlock *MH = B.newBlock();
      BasicBlock *MB = B.newBlock();
      BasicBlock *MX = B.newBlock();
      B.br(MH);
      B.setBlock(MH);
      B.condBr(CmpOp::Gt, J, Pos, MB, MX);
      B.setBlock(MB);
      Reg JM1 = B.sub(J, One);
      Reg V = B.loadElem(Keys, JM1);
      B.storeElem(Keys, J, V);
      B.moveInto(J, JM1);
      B.br(MH);
      B.setBlock(MX);
      B.storeElem(Keys, Pos, Key);
      B.binInto(Size, BinOp::Add, Size, One);
    });
    // Lookup the median page as the "current" page.
    Reg Mid = B.bin(BinOp::Shr, Size, One);
    Reg MidKey = B.loadElem(Keys, Mid);
    B.binInto(Acc, BinOp::Add, Acc, MidKey);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_pages");
}

FuncId lud::emitDispatchLoop(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  StdLib &L = C.L;
  Module &M = C.module();

  B.beginFunction(P + "_dispatch2", 1); // (n ops) -> int
  // Synthetic opcode stream and an operand stack.
  Reg Stack = B.alloc(L.IntVec);
  Reg C8 = B.iconst(8);
  B.callVoid("IntVec.init", {Stack, C8});
  Reg Top = B.iconst(0); // cached "stack top" value
  Reg C7 = B.iconst(7);
  Reg C3 = B.iconst(3);
  Reg Zero = B.iconst(0);
  Reg One = B.iconst(1);
  Reg Two = B.iconst(2);
  emitCountedLoop(B, 0, [&](Reg Pc) {
    Reg Raw = B.mul(Pc, C7);
    Reg Op = B.bin(BinOp::And, Raw, C3);
    emitIfElse(
        B, CmpOp::Eq, Op, Zero,
        [&] { // PUSH pc
          B.callVoid("IntVec.add", {Stack, Pc});
          B.moveInto(Top, Pc);
        },
        [&] {
          emitIfElse(
              B, CmpOp::Eq, Op, One,
              [&] { // ADD top, pc
                Reg S = B.add(Top, Pc);
                B.moveInto(Top, S);
              },
              [&] {
                emitIfElse(
                    B, CmpOp::Eq, Op, Two,
                    [&] { // XOR
                      Reg S = B.bin(BinOp::Xor, Top, Pc);
                      B.moveInto(Top, S);
                    },
                    [&] { // DUP-ish: re-add the top
                      B.callVoid("IntVec.add", {Stack, Top});
                    });
              });
        });
  });
  Reg Sz = B.call(L.IntVecSize, {Stack});
  Reg Out = B.add(Top, Sz);
  B.ret(Out);
  B.endFunction();
  return M.findFunction(P + "_dispatch2");
}

FuncId lud::emitTemplateTable(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();
  ClassDecl *Rule = M.addClass(P + "_Rule");
  Rule->addField("match", Type::makeInt());
  Rule->addField("action", Type::makeInt());

  B.beginFunction(P + "_templates", 1); // (n nodes) -> int
  // Eight template rules.
  Reg C8 = B.iconst(8);
  Reg Rules = B.allocArray(TypeKind::Ref, C8);
  Reg C5 = B.iconst(5);
  Reg Mask7 = B.iconst(7);
  emitCountedLoop(B, C8, [&](Reg I) {
    Reg R = B.alloc(Rule->getId());
    B.storeField(R, Rule->getId(), "match", I);
    Reg A0 = B.mul(I, C5);
    Reg A = B.add(A0, I);
    B.storeField(R, Rule->getId(), "action", A);
    B.storeElem(Rules, I, R);
  });
  // Match each input node against the table (first hit fires).
  Reg Acc = B.iconst(0);
  Reg C11 = B.iconst(11);
  emitCountedLoop(B, 0, [&](Reg NodeI) {
    Reg Kind0 = B.mul(NodeI, C11);
    Reg Kind = B.bin(BinOp::And, Kind0, Mask7);
    emitCountedLoop(B, C8, [&](Reg RI) {
      Reg R = B.loadElem(Rules, RI);
      Reg Match = B.loadField(R, Rule->getId(), "match");
      emitIf(B, CmpOp::Eq, Match, Kind, [&] {
        Reg Act = B.loadField(R, Rule->getId(), "action");
        B.binInto(Acc, BinOp::Add, Acc, Act);
      });
    });
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_templates");
}

FuncId lud::emitTopK(PatternContext &C, const std::string &P) {
  IRBuilder &B = C.B;
  Module &M = C.module();

  B.beginFunction(P + "_topk", 1); // (n docs) -> int
  Reg K = B.iconst(8);
  Reg Best = B.allocArray(TypeKind::Int, K);
  Reg C13 = B.iconst(13);
  Reg C255 = B.iconst(255);
  Reg One = B.iconst(1);
  emitCountedLoop(B, 0, [&](Reg Doc) {
    Reg S0 = B.mul(Doc, C13);
    Reg S1 = B.bin(BinOp::Xor, S0, Doc);
    Reg Score = B.bin(BinOp::And, S1, C255);
    // Insertion into the sorted top-K array (ascending, slot 0 smallest).
    Reg Min = B.loadElem(Best, B.iconst(0));
    emitIf(B, CmpOp::Gt, Score, Min, [&] {
      // Replace the minimum, then bubble it toward its position.
      Reg Zero = B.iconst(0);
      B.storeElem(Best, Zero, Score);
      Reg J = B.iconst(0);
      BasicBlock *BH = B.newBlock();
      BasicBlock *BB = B.newBlock();
      BasicBlock *BX = B.newBlock();
      B.br(BH);
      B.setBlock(BH);
      Reg JP1 = B.add(J, One);
      BasicBlock *Check = B.newBlock();
      B.condBr(CmpOp::Lt, JP1, K, Check, BX);
      B.setBlock(Check);
      Reg A = B.loadElem(Best, J);
      Reg Bv = B.loadElem(Best, JP1);
      B.condBr(CmpOp::Gt, A, Bv, BB, BX);
      B.setBlock(BB);
      B.storeElem(Best, J, Bv);
      B.storeElem(Best, JP1, A);
      B.moveInto(J, JP1);
      B.br(BH);
      B.setBlock(BX);
    });
  });
  Reg Acc = B.iconst(0);
  emitCountedLoop(B, K, [&](Reg I) {
    Reg V = B.loadElem(Best, I);
    B.binInto(Acc, BinOp::Add, Acc, V);
  });
  B.ret(Acc);
  B.endFunction();
  return M.findFunction(P + "_topk");
}
