//===- workloads/Driver.h - Run workloads, collect metrics -----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProfileSession: one interpretation pass, every requested analysis. A
/// session owns the slicing substrate and any enabled client profilers
/// (copy, nullness, typestate), composes them into one pipeline
/// (runtime/ComposedProfiler.h), and runs the module once — the paper's
/// framework claim made executable: clients are pipeline stages, not extra
/// passes. Sessions merge (mergeFrom) so the parallel driver's sharded fold
/// covers client state, and render their clients' report sections through
/// the uniform analysis/Report printers.
///
/// The session lifecycle is open (prepare) → feed (run/replay) → fold
/// (mergeFrom) → report; every frontend — single batch run, the sharded
/// drivers, lud-replay, and the lud-serve daemon's streamed sessions —
/// composes those same verbs rather than owning a parallel code path.
/// The overhead factors of Table 1 are profiled-time / baseline-time on
/// the identical engine (SessionConfig::profiled vs ::baseline).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_DRIVER_H
#define LUD_WORKLOADS_DRIVER_H

#include "obs/Metrics.h"
#include "profiling/ClientSet.h"
#include "profiling/CopyProfiler.h"
#include "profiling/NullnessProfiler.h"
#include "profiling/SlicingProfiler.h"
#include "profiling/TypestateProfiler.h"
#include "runtime/Engine.h"
#include "runtime/Interpreter.h"

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

namespace lud {

class OutStream;
class FileOutStream;

namespace trace {
class TraceRecorder;
}

/// Wall-clock seconds plus the run outcome.
struct TimedRun {
  RunResult Run;
  double Seconds = 0;
};

struct SessionConfig {
  /// Execution backend for live runs: the reference interpreter or the
  /// direct-threaded engine (runtime/ThreadedEngine.h). Both drive the same
  /// profiler pipelines with an identical hook stream, so Gcost, client
  /// reports and run facts are byte-identical either way; only the speed
  /// differs. Defaults from the LUD_ENGINE environment variable. Replays
  /// never execute code, so this knob does not affect them.
  EngineKind Engine = defaultEngineKind();
  /// Build Gcost (the slicing substrate). False with no clients is the
  /// uninstrumented baseline; any enabled client forces the substrate on,
  /// since clients read the heap tags it writes.
  bool Instrument = true;
  /// Client analyses to run in the same pass.
  ClientSet Clients;
  SlicingConfig Slicing;
  RunConfig Run;
  /// Protocol for the typestate client; when empty (NumStates == 0) the
  /// session derives lifecycleSpec(M) from the module at run time.
  TypestateSpec Typestate;
  /// Own a MetricsRegistry and keep it current: per-phase spans, run.*
  /// counters from every run(), and the profilers' state-derived gauges
  /// refreshed after each run and merge. Off by default — the off state is
  /// one pointer test per phase boundary, nothing on the event hot path.
  bool CollectStats = false;
  /// When non-empty, record the hook stream of every run() to this file as
  /// `lud.trace.v1` segments (trace/TraceRecorder.h). Recording composes a
  /// TraceRecorder ahead of whatever pipeline the session would run anyway;
  /// with recording off the pipeline instantiations are exactly the
  /// pre-trace ones, so the feature costs nothing when unused.
  std::string RecordPath;
  /// Record into a caller-owned stream instead of RecordPath (tests; takes
  /// precedence). Must outlive the session.
  OutStream *RecordSink = nullptr;

  /// The uninstrumented stock-JVM baseline configuration: empty pipeline,
  /// nothing measured but the run itself.
  static SessionConfig baseline(RunConfig RC = {});
  /// The substrate-only profiled configuration (Gcost, no clients).
  static SessionConfig profiled(SlicingConfig SCfg = {}, RunConfig RC = {});
};

/// Outcome of re-driving the session's profilers from a recorded trace.
struct ReplayRun {
  bool Ok = false;
  /// Diagnostic when !Ok (corrupt trace, module mismatch, unreadable file).
  std::string Error;
  /// Events replayed and segments (one per recorded run()) consumed.
  uint64_t Events = 0;
  uint64_t Segments = 0;
  double Seconds = 0;
};

/// One profiling session: configure, run (one pass), consume the
/// profilers. Repeated run() calls accumulate into the same profilers,
/// matching the sequential-reuse semantics mergeFrom reproduces.
class ProfileSession {
public:
  explicit ProfileSession(SessionConfig Cfg = {});
  ~ProfileSession();

  /// Instantiates the configured profilers against \p M without running
  /// anything — the lifecycle's "open" step. run() and replay() prepare
  /// implicitly; explicit preparation exists for sessions that only ever
  /// mergeFrom() others (the service's report fold target) and must have
  /// live profilers for the fold to land in.
  void prepare(const Module &M) { ensureProfilers(M); }

  /// Executes \p M once with every enabled profiler attached to the single
  /// interpreter pass.
  TimedRun run(const Module &M);

  /// Re-drives the enabled profilers from an in-memory `lud.trace.v1`
  /// stream instead of interpreting: same hooks, same order, same
  /// arguments, so the resulting profiler state — Gcost and client state
  /// alike — is identical to the live run's. On failure the profilers are
  /// partially updated; discard the session.
  ReplayRun replay(const Module &M, std::string_view Bytes);
  /// replay() over the contents of \p Path.
  ReplayRun replayFile(const Module &M, const std::string &Path);

  /// The recording stage, when Cfg requested one and its sink opened.
  trace::TraceRecorder *recorder() { return Recorder.get(); }
  const trace::TraceRecorder *recorder() const { return Recorder.get(); }
  /// Non-empty when the record sink could not be opened (the run itself
  /// still proceeds, unrecorded).
  const std::string &recordError() const { return RecordErr; }

  const SessionConfig &config() const { return Cfg; }

  /// Enabled profilers (null when not enabled / not yet run).
  SlicingProfiler *slicing() { return Slicing.get(); }
  const SlicingProfiler *slicing() const { return Slicing.get(); }
  CopyProfiler *copy() { return Copy.get(); }
  const CopyProfiler *copy() const { return Copy.get(); }
  NullnessProfiler *nullness() { return Null.get(); }
  const NullnessProfiler *nullness() const { return Null.get(); }
  TypestateProfiler *typestate() { return Type.get(); }
  const TypestateProfiler *typestate() const { return Type.get(); }

  /// The session's telemetry registry (null unless Cfg.CollectStats).
  /// Event counters (run.*, phase.*) accumulate across runs and merges;
  /// state-derived gauges and histograms (gcost.*, heap.*, mem.*, client
  /// metrics) always describe the profilers' current — possibly merged —
  /// state, so after the sharded fold they are identical at any thread
  /// count (docs/OBSERVABILITY.md).
  obs::MetricsRegistry *stats() { return Stats.get(); }
  const obs::MetricsRegistry *stats() const { return Stats.get(); }

  /// Folds another session's profilers into this one, client state
  /// included, treating \p O as the later of two sequential runs. Both
  /// sessions must share the configuration and module (the parallel
  /// driver's shards); profiler sets must match. Telemetry registries fold
  /// too, and the state-derived metrics are re-derived from the merged
  /// profilers afterwards.
  void mergeFrom(const ProfileSession &O);

  /// Renders the enabled clients' report sections ("=== ... ===" headed),
  /// via the analysis/Report printers. No-op when no client is enabled.
  void printClientReports(const Module &M, OutStream &OS,
                          size_t TopK = 15) const;

  /// Releases the substrate to a caller that outlives the session (the
  /// parallel driver's per-shard ProfiledRun results).
  std::unique_ptr<SlicingProfiler> takeSlicing() { return std::move(Slicing); }

private:
  void ensureProfilers(const Module &M);
  /// Re-derives every state-based metric from the profilers (idempotent
  /// set()s). Called after each run and each merge.
  void refreshDerivedStats();

  SessionConfig Cfg;
  std::unique_ptr<SlicingProfiler> Slicing;
  std::unique_ptr<CopyProfiler> Copy;
  std::unique_ptr<NullnessProfiler> Null;
  std::unique_ptr<TypestateProfiler> Type;
  std::unique_ptr<obs::MetricsRegistry> Stats;
  std::unique_ptr<trace::TraceRecorder> Recorder;
  std::unique_ptr<FileOutStream> RecordStream;
  std::FILE *RecordFile = nullptr;
  std::string RecordErr;
};

/// A substrate-only run's outcome plus its profiler (holding Gcost),
/// released from the session that produced it (takeSlicing) — the
/// parallel driver's per-shard result shape.
struct ProfiledRun {
  RunResult Run;
  double Seconds = 0;
  std::unique_ptr<SlicingProfiler> Prof;
};

} // namespace lud

#endif // LUD_WORKLOADS_DRIVER_H
