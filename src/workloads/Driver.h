//===- workloads/Driver.h - Run workloads, collect metrics -----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by benchmarks, tests and examples: execute a module under
/// the uninstrumented baseline or under the slicing profiler, with wall
/// time. The overhead factors of Table 1 are profiled-time / baseline-time
/// on the identical engine.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_DRIVER_H
#define LUD_WORKLOADS_DRIVER_H

#include "profiling/SlicingProfiler.h"
#include "runtime/Interpreter.h"

#include <memory>

namespace lud {

/// Wall-clock seconds plus the run outcome.
struct TimedRun {
  RunResult Run;
  double Seconds = 0;
};

/// Executes with NoopProfiler (the stock-JVM stand-in).
TimedRun runBaseline(const Module &M, RunConfig Cfg = {});

/// Executes under a SlicingProfiler; the profiler (holding Gcost) is
/// returned for analysis.
struct ProfiledRun {
  RunResult Run;
  double Seconds = 0;
  std::unique_ptr<SlicingProfiler> Prof;
};
ProfiledRun runProfiled(const Module &M, SlicingConfig SCfg = {},
                        RunConfig Cfg = {});

} // namespace lud

#endif // LUD_WORKLOADS_DRIVER_H
