//===- workloads/RandomProgram.cpp - Random well-formed programs -----------===//

#include "workloads/RandomProgram.h"

#include "ir/IRBuilder.h"
#include "ir/Obfuscate.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "support/RNG.h"
#include "workloads/EmitUtil.h"

#include <vector>

using namespace lud;

namespace {

/// Per-function generation state: pools of registers with known rough
/// types so every emitted instruction is safe.
class FunctionGen {
public:
  FunctionGen(IRBuilder &B, Module &M, RNG &R,
              const std::vector<FuncId> &Callees,
              const RandomProgramOptions &Opts, FuncId Self = kNoFunc)
      : B(B), M(M), R(R), Callees(Callees), Opts(Opts), Self(Self) {}

  /// Emits OpsPerFunction random operations followed by `ret <int>`.
  void emitBody() {
    // Seed pools: a couple of constants and one object per class.
    IntRegs.push_back(B.iconst(int64_t(R.nextInRange(-8, 100))));
    IntRegs.push_back(B.iconst(int64_t(R.nextInRange(1, 9))));
    for (const auto &C : M.classes())
      if (R.nextBelow(2) == 0)
        allocObject(C->getId());
    if (RefRegs.empty() && !M.classes().empty())
      allocObject(M.classes()[R.nextBelow(M.classes().size())]->getId());

    maybeEmitRecursion();
    for (unsigned I = 0; I != Opts.OpsPerFunction; ++I)
      emitRandomOp(/*Depth=*/0);
    B.ret(anyInt());
  }

private:
  struct RefInfo {
    Reg R;
    ClassId Class;
  };

  Reg anyInt() {
    assert(!IntRegs.empty() && "int pool is never empty");
    return IntRegs[R.nextBelow(IntRegs.size())];
  }

  void allocObject(ClassId C) {
    Reg O = B.alloc(C);
    RefRegs.push_back({O, C});
  }

  /// A random field of \p C (searching the inheritance chain); returns
  /// false when the class has no fields.
  bool pickField(ClassId C, FieldSlot &SlotOut, Type &TyOut) {
    std::vector<std::pair<FieldSlot, Type>> Fields;
    for (ClassId Cur = C; Cur != kNoClass;
         Cur = M.getClass(Cur)->getSuper()) {
      const ClassDecl *D = M.getClass(Cur);
      for (size_t I = 0; I != D->ownFields().size(); ++I) {
        FieldSlot Slot;
        if (M.resolveField(Cur, D->ownFields()[I].Name, Slot))
          Fields.push_back({Slot, D->ownFields()[I].Ty});
      }
    }
    if (Fields.empty())
      return false;
    auto &[Slot, Ty] = Fields[R.nextBelow(Fields.size())];
    SlotOut = Slot;
    TyOut = Ty;
    return true;
  }

  /// Bounded self-recursion: recurse on (r0 & 7) - 1 while positive, so
  /// the first argument strictly decreases and the depth is at most 8
  /// whatever the caller passed. Emitted ahead of the op loop so every
  /// recursion level runs the full body.
  void maybeEmitRecursion() {
    if (!Opts.Recursion || Self == kNoFunc ||
        M.getFunction(Self)->getNumParams() == 0 || R.nextBelow(2))
      return;
    Reg Mask = B.iconst(7);
    Reg Bounded = B.bin(BinOp::And, /*r0=*/Reg(0), Mask);
    Reg Zero = B.iconst(0);
    emitIf(B, CmpOp::Lt, Zero, Bounded, [&] {
      Reg One = B.iconst(1);
      Reg Dec = B.bin(BinOp::Sub, Bounded, One);
      std::vector<Reg> Args{Dec};
      for (unsigned A = 1; A != M.getFunction(Self)->getNumParams(); ++A)
        Args.push_back(anyInt());
      IntRegs.push_back(B.call(Self, std::move(Args)));
    });
  }

  void emitRandomOp(unsigned Depth) {
    switch (R.nextBelow(16)) {
    case 0: { // fresh constant
      IntRegs.push_back(B.iconst(int64_t(R.nextInRange(-50, 200))));
      break;
    }
    case 1: { // arithmetic (trap-free subset)
      static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                  BinOp::And, BinOp::Or,  BinOp::Xor,
                                  BinOp::Shr};
      IntRegs.push_back(
          B.bin(Ops[R.nextBelow(std::size(Ops))], anyInt(), anyInt()));
      break;
    }
    case 2: { // allocation
      if (!M.classes().empty())
        allocObject(M.classes()[R.nextBelow(M.classes().size())]->getId());
      break;
    }
    case 3: { // field store
      if (RefRegs.empty())
        break;
      const RefInfo &RI = RefRegs[R.nextBelow(RefRegs.size())];
      FieldSlot Slot;
      Type Ty;
      if (!pickField(RI.Class, Slot, Ty))
        break;
      if (Ty.Kind == TypeKind::Int) {
        B.append(new StoreFieldInst(RI.R, RI.Class, Slot, anyInt()));
      } else if (Ty.Kind == TypeKind::Ref && Ty.Class != kNoClass) {
        // Store a compatible object (exact class only: simple and safe).
        for (const RefInfo &Cand : RefRegs)
          if (Cand.Class == Ty.Class) {
            B.append(new StoreFieldInst(RI.R, RI.Class, Slot, Cand.R));
            break;
          }
      }
      break;
    }
    case 4: { // field load
      if (RefRegs.empty())
        break;
      const RefInfo &RI = RefRegs[R.nextBelow(RefRegs.size())];
      FieldSlot Slot;
      Type Ty;
      if (!pickField(RI.Class, Slot, Ty))
        break;
      if (Ty.Kind == TypeKind::Int) {
        Reg Dst = B.newReg();
        B.append(new LoadFieldInst(Dst, RI.R, RI.Class, Slot));
        IntRegs.push_back(Dst);
      }
      // Ref loads skipped: the loaded object may be null.
      break;
    }
    case 5: { // array allocate (power-of-two length for safe masking)
      Reg Len = B.iconst(8);
      Arrays.push_back(B.allocArray(TypeKind::Int, Len));
      break;
    }
    case 6: { // array store with masked index
      if (Arrays.empty())
        break;
      Reg Arr = Arrays[R.nextBelow(Arrays.size())];
      Reg Mask = B.iconst(7);
      Reg Idx = B.bin(BinOp::And, anyInt(), Mask);
      B.storeElem(Arr, Idx, anyInt());
      break;
    }
    case 7: { // array load with masked index
      if (Arrays.empty())
        break;
      Reg Arr = Arrays[R.nextBelow(Arrays.size())];
      Reg Mask = B.iconst(7);
      Reg Idx = B.bin(BinOp::And, anyInt(), Mask);
      IntRegs.push_back(B.loadElem(Arr, Idx));
      break;
    }
    case 8: { // call an earlier function (acyclic)
      if (Callees.empty())
        break;
      FuncId Callee = Callees[R.nextBelow(Callees.size())];
      std::vector<Reg> Args;
      for (unsigned A = 0; A != M.getFunction(Callee)->getNumParams(); ++A)
        Args.push_back(anyInt());
      IntRegs.push_back(B.call(Callee, std::move(Args)));
      break;
    }
    case 9: { // guarded block
      if (Depth >= 1)
        break;
      // Refs/arrays allocated under a condition may be skipped at run
      // time; scope them to the branch so later code never dereferences
      // an unassigned register.
      size_t RefMark = RefRegs.size(), ArrMark = Arrays.size();
      emitIf(B, R.nextBelow(2) ? CmpOp::Lt : CmpOp::Ne, anyInt(), anyInt(),
             [&] { emitRandomOp(Depth + 1); });
      RefRegs.resize(RefMark);
      Arrays.resize(ArrMark);
      break;
    }
    case 10: { // bounded loop
      if (Depth >= 1)
        break;
      Reg Trip = B.iconst(int64_t(2 + R.nextBelow(Opts.MaxTrip - 1)));
      unsigned BodyOps = 1 + unsigned(R.nextBelow(3));
      emitCountedLoop(B, Trip, [&](Reg) {
        for (unsigned K = 0; K != BodyOps; ++K)
          emitRandomOp(Depth + 1);
      });
      break;
    }
    case 11: { // occasionally observe a value
      if (R.nextBelow(3) == 0)
        B.ncallVoid("sink", {anyInt()});
      break;
    }
    case 12: { // global store / load
      if (M.globals().empty())
        break;
      GlobalId G = GlobalId(R.nextBelow(M.globals().size()));
      if (R.nextBelow(2))
        B.storeStatic(G, anyInt());
      else
        IntRegs.push_back(B.loadStatic(G));
      break;
    }
    case 13: { // dead store: the same location written twice in a row
      if (!Opts.DeadStores)
        break;
      if (!M.globals().empty() && R.nextBelow(2) == 0) {
        GlobalId G = GlobalId(R.nextBelow(M.globals().size()));
        B.storeStatic(G, anyInt());
        B.storeStatic(G, anyInt());
        break;
      }
      if (RefRegs.empty())
        break;
      const RefInfo &RI = RefRegs[R.nextBelow(RefRegs.size())];
      FieldSlot Slot;
      Type Ty;
      if (!pickField(RI.Class, Slot, Ty) || Ty.Kind != TypeKind::Int)
        break;
      B.append(new StoreFieldInst(RI.R, RI.Class, Slot, anyInt()));
      B.append(new StoreFieldInst(RI.R, RI.Class, Slot, anyInt()));
      break;
    }
    case 14: { // aliasing: ref move, or field store loaded straight back
      if (!Opts.Aliasing || RefRegs.empty())
        break;
      const RefInfo &RI = RefRegs[R.nextBelow(RefRegs.size())];
      if (R.nextBelow(2)) {
        RefRegs.push_back({B.move(RI.R), RI.Class});
        break;
      }
      FieldSlot Slot;
      Type Ty;
      if (!pickField(RI.Class, Slot, Ty) || Ty.Kind != TypeKind::Ref ||
          Ty.Class == kNoClass)
        break;
      // Store a known-non-null object, then load it back: the loaded ref
      // aliases the stored one and is safe to dereference later.
      for (const RefInfo &Cand : RefRegs)
        if (Cand.Class == Ty.Class) {
          B.append(new StoreFieldInst(RI.R, RI.Class, Slot, Cand.R));
          Reg Dst = B.newReg();
          B.append(new LoadFieldInst(Dst, RI.R, RI.Class, Slot));
          RefRegs.push_back({Dst, Ty.Class});
          break;
        }
      break;
    }
    case 15: { // null flow: a null constant stored into a ref field
      if (!Opts.NullFlows || RefRegs.empty())
        break;
      const RefInfo &RI = RefRegs[R.nextBelow(RefRegs.size())];
      FieldSlot Slot;
      Type Ty;
      if (!pickField(RI.Class, Slot, Ty) || Ty.Kind != TypeKind::Ref)
        break;
      // The field is never loaded back as a base unless case 14 re-stores
      // a non-null object into it first, so the null never traps.
      B.append(new StoreFieldInst(RI.R, RI.Class, Slot, B.nullconst()));
      break;
    }
    }
  }

  IRBuilder &B;
  Module &M;
  RNG &R;
  const std::vector<FuncId> &Callees;
  const RandomProgramOptions &Opts;
  FuncId Self = kNoFunc;
  std::vector<Reg> IntRegs;
  std::vector<RefInfo> RefRegs;
  std::vector<Reg> Arrays;
};

} // namespace

std::unique_ptr<Module> lud::generateRandomProgram(RandomProgramOptions O) {
  RNG R(O.Seed * 0x9E3779B97F4A7C15ULL + 1);
  auto M = std::make_unique<Module>();
  IRBuilder B(*M);

  // Classes with a random mixture of int and (earlier-class) ref fields.
  for (unsigned C = 0; C != O.NumClasses; ++C) {
    ClassId Super = kNoClass;
    if (C > 0 && R.nextBelow(3) == 0)
      Super = ClassId(R.nextBelow(C));
    ClassDecl *D = M->addClass("C" + std::to_string(C), Super);
    unsigned NumFields = 1 + unsigned(R.nextBelow(3));
    for (unsigned F = 0; F != NumFields; ++F) {
      std::string Name = "f" + std::to_string(C) + "_" + std::to_string(F);
      if (C > 0 && R.nextBelow(4) == 0)
        D->addField(Name, Type::makeRef(ClassId(R.nextBelow(C))));
      else
        D->addField(Name, Type::makeInt());
    }
  }

  // Int globals shared by every function's static load/store shapes.
  for (unsigned G = 0; G != O.NumGlobals; ++G)
    M->addGlobal("g" + std::to_string(G), Type::makeInt());

  // Functions in call-DAG order (plus bounded self-recursion).
  std::vector<FuncId> Funcs;
  for (unsigned F = 0; F != O.NumFunctions; ++F) {
    unsigned NumParams = unsigned(R.nextBelow(3));
    Function *Fn =
        B.beginFunction("fn" + std::to_string(F), NumParams);
    FunctionGen Gen(B, *M, R, Funcs, O, Fn->getId());
    Gen.emitBody();
    B.endFunction();
    Funcs.push_back(Fn->getId());
  }

  // main: call every function a couple of times and sink the results.
  B.beginFunction("main", 0);
  Reg Acc = B.iconst(0);
  for (FuncId F : Funcs) {
    unsigned Calls = 1 + unsigned(R.nextBelow(2));
    for (unsigned K = 0; K != Calls; ++K) {
      std::vector<Reg> Args;
      for (unsigned A = 0; A != M->getFunction(F)->getNumParams(); ++A)
        Args.push_back(B.iconst(int64_t(R.nextInRange(0, 20))));
      Reg V = B.call(F, std::move(Args));
      B.binInto(Acc, BinOp::Add, Acc, V);
    }
  }
  B.ncallVoid("sink", {Acc});
  B.ret(Acc);
  B.endFunction();

  M->finalize();
  std::vector<std::string> Errors;
  if (!verifyGeneratedModule(*M, Errors))
    lud_unreachable("random program failed verification");

  if (O.ObfJunk || O.ObfOpaque || O.ObfStrings) {
    ObfuscateOptions Obf;
    // Decorrelate from the generator's own draws without widening the
    // options surface: any fixed mix works, it just must be deterministic.
    Obf.Seed = O.Seed ^ 0x0bf5caf3ull;
    Obf.Junk = O.ObfJunk;
    Obf.Opaque = O.ObfOpaque;
    Obf.Strings = O.ObfStrings;
    ObfuscationResult Res = obfuscateModule(*M, Obf);
    M = std::move(Res.M);
    Errors.clear();
    if (!verifyGeneratedModule(*M, Errors))
      lud_unreachable("obfuscated random program failed verification");
  }
  return M;
}
