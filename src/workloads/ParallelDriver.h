//===- workloads/ParallelDriver.h - Sharded profiling driver ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-workload profiling driver: runs are sharded over a small thread
/// pool with one SlicingProfiler (and one Heap and Interpreter) per shard,
/// and the per-shard profiles are folded back into a single Gcost with
/// SlicingProfiler::mergeFrom. Nothing is shared between in-flight shards,
/// so no locks sit on the event hot path; the fold happens once, after the
/// pool drains, in shard-index order. Because the fold order is fixed and
/// mergeFrom re-interns nodes in the source graph's creation order, the
/// merged profile is identical whatever Threads is set to — Threads = 1
/// reproduces the sequential result bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_PARALLELDRIVER_H
#define LUD_WORKLOADS_PARALLELDRIVER_H

#include "workloads/Driver.h"

#include <vector>

namespace lud {

struct ParallelConfig {
  /// Worker threads; clamped to the number of jobs. 1 runs the whole batch
  /// on the calling thread (no pool), which is the reference the merged
  /// results are tested against.
  unsigned Threads = 4;
  SlicingConfig Slicing;
  RunConfig Run;
};

/// Result of profiling one module \p Shards times (e.g. repeated steady
/// -state iterations of a DaCapo harness) with the shards' graphs merged.
struct ShardedRun {
  /// Outcome of shard 0. Workload modules are deterministic, so every
  /// shard's RunResult is identical; this is the canonical copy.
  RunResult Run;
  /// Executed instructions summed over all shards.
  uint64_t TotalInstrs = 0;
  /// Wall time for the whole batch, pool included.
  double Seconds = 0;
  /// The merged profile: shard 0's profiler after folding shards 1..N-1
  /// into it in index order.
  std::unique_ptr<SlicingProfiler> Prof;
};

/// Runs \p M under the slicing profiler \p Shards times, at most
/// Cfg.Threads at once, and merges the per-shard profiles.
ShardedRun runShardedProfiled(const Module &M, unsigned Shards,
                              ParallelConfig Cfg = {});

/// Sharded run of a full profile session: like runShardedProfiled, but each
/// shard is a ProfileSession (substrate plus any enabled client analyses,
/// one pass per shard), and the fold covers client state too via
/// ProfileSession::mergeFrom. The deterministic-fold property carries over:
/// shard-index order plus order-preserving client merges make the result
/// independent of Threads.
struct ShardedSession {
  /// Outcome of shard 0 (shards are deterministic replicas).
  RunResult Run;
  /// Executed instructions summed over all shards.
  uint64_t TotalInstrs = 0;
  /// Wall time for the whole batch, pool included.
  double Seconds = 0;
  /// Trace events recorded (live + record) or replayed, summed over shards.
  uint64_t Events = 0;
  /// First record/replay failure across the shards ("" when all succeeded).
  /// Live runs always leave this empty.
  std::string Error;
  /// Shard 0's session after folding shards 1..N-1 into it in index order;
  /// null when Shards == 0, or when a sharded replay failed (a partially
  /// replayed session must not be consumed).
  std::unique_ptr<ProfileSession> Session;
};

/// Runs \p Shards sessions configured by \p Cfg over \p M, at most
/// \p Threads at once, and folds them into one. When Cfg.RecordPath is set
/// each shard records to its own file, shardTracePath(RecordPath, S,
/// Shards); a caller-provided Cfg.RecordSink is handed to every shard
/// unchanged, which interleaves segments unless Shards == 1 or Threads ==
/// 1 (sequential shards append whole segments, which replays as the merged
/// session).
ShardedSession runShardedSession(const Module &M, unsigned Shards,
                                 SessionConfig Cfg = {}, unsigned Threads = 4);

// replayShardedSession — the replay twin of runShardedSession — lives in
// service/SessionManager.h now: it is a batch frontend over the service's
// SessionManager, so the sharded replay, lud-replay, and the lud-serve
// daemon all fold through one session-lifecycle API.

/// Per-shard trace file name: \p Path itself for a single shard, otherwise
/// "<Path>.shardN". Both the recording and replaying sides derive names
/// through this, so a record/replay pair only shares the base path.
std::string shardTracePath(const std::string &Path, unsigned Shard,
                           unsigned Shards);

/// Result of profiling a batch of distinct workload modules in parallel.
struct ParallelResult {
  /// One profiled run per input module, in input order (not completion
  /// order); each holds its own Gcost. Graphs of distinct modules are not
  /// merged — node identity is per-module static-instruction ids.
  std::vector<ProfiledRun> Runs;
  /// Wall time for the whole batch.
  double Seconds = 0;
};

/// Profiles each module in \p Mods on the pool, Cfg.Threads at a time.
ParallelResult runParallel(const std::vector<const Module *> &Mods,
                           ParallelConfig Cfg = {});

} // namespace lud

#endif // LUD_WORKLOADS_PARALLELDRIVER_H
