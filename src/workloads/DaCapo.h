//===- workloads/DaCapo.h - Synthetic DaCapo-style workloads ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eighteen synthetic programs named after the DaCapo benchmarks of
/// Table 1, each composed from the bloat patterns the paper attributes to
/// that program (Section 4.2) plus useful-work ballast. The six case-study
/// programs (bloat, eclipse, sunflow, derby, tomcat, tradebeans) also have
/// an Optimized variant with the paper's fixes applied; the case-study
/// benchmark measures the speedup and checks the tool ranks the planted
/// structures. Every program runs in three phases (0 = startup, 1 = load,
/// 2 = shutdown) so the selective-tracking experiment of Section 4.1 can
/// be reproduced.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_WORKLOADS_DACAPO_H
#define LUD_WORKLOADS_DACAPO_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace lud {

/// A generated program plus the metadata benchmarks need.
struct Workload {
  std::string Name;
  int64_t Scale = 0;
  bool Optimized = false;
  std::unique_ptr<Module> M;
  /// Allocation sites of the planted low-utility structures (empty for
  /// workloads without a dominant planted structure).
  std::vector<AllocSiteId> PlantedSites;
};

/// The 18 benchmark names, in Table 1 order (antlr .. tradesoap).
const std::vector<std::string> &dacapoNames();

/// True for the six case-study programs with an Optimized variant.
bool hasOptimizedVariant(const std::string &Name);

/// Builds the named workload. \p Scale is the paper's "large workload"
/// knob; 1000 yields runs of roughly 1-20 M instructions. Asserts on
/// unknown names (check dacapoNames()).
Workload buildWorkload(const std::string &Name, int64_t Scale,
                       bool Optimized = false);

} // namespace lud

#endif // LUD_WORKLOADS_DACAPO_H
