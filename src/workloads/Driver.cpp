//===- workloads/Driver.cpp - Run workloads, collect metrics ---------------===//

#include "workloads/Driver.h"

#include "analysis/Report.h"
#include "obs/PhaseTimer.h"
#include "runtime/ComposedProfiler.h"
#include "runtime/ThreadedEngine.h"
#include "support/OutStream.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

using namespace lud;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

ProfileSession::ProfileSession(SessionConfig Cfg) : Cfg(std::move(Cfg)) {}

ProfileSession::~ProfileSession() {
  // Flush order matters: the recorder's writer drains into the stream,
  // which writes into the file.
  Recorder.reset();
  RecordStream.reset();
  if (RecordFile)
    std::fclose(RecordFile);
}

void ProfileSession::ensureProfilers(const Module &M) {
  if (Cfg.CollectStats && !Stats)
    Stats = std::make_unique<obs::MetricsRegistry>();
  if ((Cfg.RecordSink || !Cfg.RecordPath.empty()) && !Recorder &&
      RecordErr.empty()) {
    OutStream *Sink = Cfg.RecordSink;
    if (!Sink) {
      RecordFile = std::fopen(Cfg.RecordPath.c_str(), "wb");
      if (!RecordFile) {
        RecordErr = "cannot write '" + Cfg.RecordPath + "'";
      } else {
        RecordStream = std::make_unique<FileOutStream>(RecordFile);
        Sink = RecordStream.get();
      }
    }
    if (Sink)
      Recorder = std::make_unique<trace::TraceRecorder>(*Sink);
  }
  if (Cfg.Clients.any())
    Cfg.Instrument = true; // Clients read the substrate's heap tags.
  if (Cfg.Instrument && !Slicing)
    Slicing = std::make_unique<SlicingProfiler>(Cfg.Slicing);
  if (Cfg.Clients.hasCopy() && !Copy)
    Copy = std::make_unique<CopyProfiler>(*Slicing);
  if (Cfg.Clients.hasNullness() && !Null)
    Null = std::make_unique<NullnessProfiler>();
  if (Cfg.Clients.hasTypestate() && !Type) {
    TypestateSpec Spec =
        Cfg.Typestate.NumStates ? Cfg.Typestate : lifecycleSpec(M);
    Type = std::make_unique<TypestateProfiler>(std::move(Spec), *Slicing);
  }
}

TimedRun ProfileSession::run(const Module &M) {
  ensureProfilers(M);
  Heap H;
  TimedRun Out;
  obs::PhaseTimer Span(Stats.get(), "interpret");
  auto T0 = std::chrono::steady_clock::now();
  if (Recorder) {
    // Recording run: the recorder leads the pipeline so the trace captures
    // the hook stream regardless of which analyses ride along (a hook's
    // arguments are identical at every stage position; the order is only a
    // convention). Null stages are skipped, so this one instantiation
    // covers recorded baselines, substrate-only runs and full client sets.
    using Pipeline =
        ComposedProfiler<trace::TraceRecorder, SlicingProfiler, CopyProfiler,
                         NullnessProfiler, TypestateProfiler>;
    Pipeline P(Recorder.get(), Slicing.get(), Copy.get(), Null.get(),
               Type.get());
    Out.Run = runWithEngine(Cfg.Engine, M, H, P, Cfg.Run);
  } else if (!Slicing) {
    // Empty pipeline: the stock-JVM baseline, bit-identical in behavior to
    // the old NoopProfiler path.
    ComposedProfiler<> P;
    Out.Run = runWithEngine(Cfg.Engine, M, H, P, Cfg.Run);
  } else if (Cfg.Clients.empty()) {
    // Substrate only: keep the single-profiler instantiation so Table 1
    // overhead numbers measure the substrate, not pipeline dispatch.
    Out.Run = runWithEngine(Cfg.Engine, M, H, *Slicing, Cfg.Run);
  } else {
    // One pass, every client: substrate first (it writes the heap tags the
    // clients read), then the clients; disabled stages are null and skipped.
    using Pipeline = ComposedProfiler<SlicingProfiler, CopyProfiler,
                                      NullnessProfiler, TypestateProfiler>;
    Pipeline P(Slicing.get(), Copy.get(), Null.get(), Type.get());
    Out.Run = runWithEngine(Cfg.Engine, M, H, P, Cfg.Run);
  }
  Out.Seconds = secondsSince(T0);
  Span.stop();
  // The recorder's TraceWriter drained into the stream at endTrace, but a
  // file sink still has stdio buffering between it and the disk. Flush so
  // the trace is replayable as soon as run() returns, not only when the
  // session dies — the sharded driver keeps shard 0 alive as the fold
  // target while its trace file is already being consumed.
  if (RecordFile)
    std::fflush(RecordFile);
  if (Stats) {
    obs::MetricsRegistry &R = *Stats;
    R.add(R.counter("run.count"), 1);
    R.add(R.counter("run.instructions"), Out.Run.ExecutedInstrs);
    R.add(R.counter("run.calls"), Out.Run.Calls);
    R.add(R.counter("run.objects_allocated"), Out.Run.ObjectsAllocated);
    R.setMax(R.gauge("run.peak_frame_depth", obs::Unit::Count,
                     obs::Merge::Max),
             Out.Run.PeakFrameDepth);
    refreshDerivedStats();
  }
  return Out;
}

ReplayRun ProfileSession::replay(const Module &M, std::string_view Bytes) {
  ensureProfilers(M);
  ReplayRun Out;
  obs::PhaseTimer Span(Stats.get(), "replay");
  auto T0 = std::chrono::steady_clock::now();
  trace::ReplayStats RS;
  // Same pipeline shapes as run(), minus the recorder: replay feeds the
  // analyses, it does not transcode the trace.
  if (!Slicing) {
    ComposedProfiler<> P;
    Out.Ok = trace::replayTrace(M, Bytes, P, Out.Error, &RS);
  } else if (Cfg.Clients.empty()) {
    Out.Ok = trace::replayTrace(M, Bytes, *Slicing, Out.Error, &RS);
  } else {
    using Pipeline = ComposedProfiler<SlicingProfiler, CopyProfiler,
                                      NullnessProfiler, TypestateProfiler>;
    Pipeline P(Slicing.get(), Copy.get(), Null.get(), Type.get());
    Out.Ok = trace::replayTrace(M, Bytes, P, Out.Error, &RS);
  }
  Out.Events = RS.Events;
  Out.Segments = RS.Segments;
  Out.Seconds = secondsSince(T0);
  Span.stop();
  if (Stats) {
    obs::MetricsRegistry &R = *Stats;
    R.add(R.counter("replay.count"), 1);
    R.add(R.counter("replay.events"), RS.Events);
    R.add(R.counter("replay.segments"), RS.Segments);
    R.add(R.counter("replay.bytes"), Bytes.size());
    refreshDerivedStats();
  }
  return Out;
}

ReplayRun ProfileSession::replayFile(const Module &M,
                                     const std::string &Path) {
  std::string Bytes;
  if (!trace::readFileBytes(Path, Bytes)) {
    ReplayRun Out;
    Out.Error = "cannot read '" + Path + "': " +
                (errno ? std::strerror(errno) : "unknown error");
    return Out;
  }
  return replay(M, Bytes);
}

void ProfileSession::refreshDerivedStats() {
  if (!Stats)
    return;
  obs::PhaseTimer Span(Stats.get(), "collect");
  if (Recorder)
    Recorder->accountStats(*Stats);
  if (Slicing)
    Slicing->accountStats(*Stats);
  if (Copy)
    Copy->accountStats(*Stats);
  if (Null)
    Null->accountStats(*Stats);
  if (Type)
    Type->accountStats(*Stats);
}

void ProfileSession::mergeFrom(const ProfileSession &O) {
  if (Slicing && O.Slicing)
    Slicing->mergeFrom(*O.Slicing);
  if (Copy && O.Copy)
    Copy->mergeFrom(*O.Copy);
  if (Null && O.Null)
    Null->mergeFrom(*O.Null);
  if (Type && O.Type)
    Type->mergeFrom(*O.Type);
  if (Stats && O.Stats) {
    Stats->mergeFrom(*O.Stats);
    // Gauges and histograms must describe the *merged* profilers, not a
    // fold of per-shard snapshots; re-derive them now.
    refreshDerivedStats();
  }
}

void ProfileSession::printClientReports(const Module &M, OutStream &OS,
                                        size_t TopK) const {
  printClientSections(Cfg.Clients, Copy.get(), Null.get(), Type.get(), M, OS,
                      TopK);
}

SessionConfig SessionConfig::baseline(RunConfig RC) {
  SessionConfig SC;
  SC.Instrument = false;
  SC.Run = RC;
  return SC;
}

SessionConfig SessionConfig::profiled(SlicingConfig SCfg, RunConfig RC) {
  SessionConfig SC;
  SC.Slicing = SCfg;
  SC.Run = RC;
  return SC;
}

