//===- workloads/Driver.cpp - Run workloads, collect metrics ---------------===//

#include "workloads/Driver.h"

#include "analysis/Report.h"
#include "obs/PhaseTimer.h"
#include "runtime/ComposedProfiler.h"
#include "support/OutStream.h"

#include <chrono>

using namespace lud;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

void ProfileSession::ensureProfilers(const Module &M) {
  if (Cfg.CollectStats && !Stats)
    Stats = std::make_unique<obs::MetricsRegistry>();
  if (Cfg.Clients)
    Cfg.Instrument = true; // Clients read the substrate's heap tags.
  if (Cfg.Instrument && !Slicing)
    Slicing = std::make_unique<SlicingProfiler>(Cfg.Slicing);
  if ((Cfg.Clients & kClientCopy) && !Copy)
    Copy = std::make_unique<CopyProfiler>(*Slicing);
  if ((Cfg.Clients & kClientNullness) && !Null)
    Null = std::make_unique<NullnessProfiler>();
  if ((Cfg.Clients & kClientTypestate) && !Type) {
    TypestateSpec Spec =
        Cfg.Typestate.NumStates ? Cfg.Typestate : lifecycleSpec(M);
    Type = std::make_unique<TypestateProfiler>(std::move(Spec), *Slicing);
  }
}

TimedRun ProfileSession::run(const Module &M) {
  ensureProfilers(M);
  Heap H;
  TimedRun Out;
  obs::PhaseTimer Span(Stats.get(), "interpret");
  auto T0 = std::chrono::steady_clock::now();
  if (!Slicing) {
    // Empty pipeline: the stock-JVM baseline, bit-identical in behavior to
    // the old NoopProfiler path.
    ComposedProfiler<> P;
    Interpreter<ComposedProfiler<>> Interp(M, H, P, Cfg.Run);
    Out.Run = Interp.run();
  } else if (!Cfg.Clients) {
    // Substrate only: keep the single-profiler instantiation so Table 1
    // overhead numbers measure the substrate, not pipeline dispatch.
    Interpreter<SlicingProfiler> Interp(M, H, *Slicing, Cfg.Run);
    Out.Run = Interp.run();
  } else {
    // One pass, every client: substrate first (it writes the heap tags the
    // clients read), then the clients; disabled stages are null and skipped.
    using Pipeline = ComposedProfiler<SlicingProfiler, CopyProfiler,
                                      NullnessProfiler, TypestateProfiler>;
    Pipeline P(Slicing.get(), Copy.get(), Null.get(), Type.get());
    Interpreter<Pipeline> Interp(M, H, P, Cfg.Run);
    Out.Run = Interp.run();
  }
  Out.Seconds = secondsSince(T0);
  Span.stop();
  if (Stats) {
    obs::MetricsRegistry &R = *Stats;
    R.add(R.counter("run.count"), 1);
    R.add(R.counter("run.instructions"), Out.Run.ExecutedInstrs);
    R.add(R.counter("run.calls"), Out.Run.Calls);
    R.add(R.counter("run.objects_allocated"), Out.Run.ObjectsAllocated);
    R.setMax(R.gauge("run.peak_frame_depth", obs::Unit::Count,
                     obs::Merge::Max),
             Out.Run.PeakFrameDepth);
    refreshDerivedStats();
  }
  return Out;
}

void ProfileSession::refreshDerivedStats() {
  if (!Stats)
    return;
  obs::PhaseTimer Span(Stats.get(), "collect");
  if (Slicing)
    Slicing->accountStats(*Stats);
  if (Copy)
    Copy->accountStats(*Stats);
  if (Null)
    Null->accountStats(*Stats);
  if (Type)
    Type->accountStats(*Stats);
}

void ProfileSession::mergeFrom(const ProfileSession &O) {
  if (Slicing && O.Slicing)
    Slicing->mergeFrom(*O.Slicing);
  if (Copy && O.Copy)
    Copy->mergeFrom(*O.Copy);
  if (Null && O.Null)
    Null->mergeFrom(*O.Null);
  if (Type && O.Type)
    Type->mergeFrom(*O.Type);
  if (Stats && O.Stats) {
    Stats->mergeFrom(*O.Stats);
    // Gauges and histograms must describe the *merged* profilers, not a
    // fold of per-shard snapshots; re-derive them now.
    refreshDerivedStats();
  }
}

void ProfileSession::printClientReports(const Module &M, OutStream &OS,
                                        size_t TopK) const {
  if (Copy) {
    OS << "\n=== copy chains ===\n";
    printCopyChains(*Copy, M, OS, TopK);
  }
  if (Null) {
    OS << "\n=== null propagation ===\n";
    printNullPropagation(*Null, M, OS);
  }
  if (Type) {
    OS << "\n=== typestate history ===\n";
    printTypestateFindings(*Type, M, OS, TopK);
  }
}

TimedRun lud::runBaseline(const Module &M, RunConfig Cfg) {
  SessionConfig SC;
  SC.Instrument = false;
  SC.Run = Cfg;
  ProfileSession S(std::move(SC));
  return S.run(M);
}

ProfiledRun lud::runProfiled(const Module &M, SlicingConfig SCfg,
                             RunConfig Cfg) {
  SessionConfig SC;
  SC.Slicing = SCfg;
  SC.Run = Cfg;
  ProfileSession S(std::move(SC));
  TimedRun T = S.run(M);
  ProfiledRun Out;
  Out.Run = T.Run;
  Out.Seconds = T.Seconds;
  Out.Prof = S.takeSlicing();
  return Out;
}
