//===- workloads/Driver.cpp - Run workloads, collect metrics ---------------===//

#include "workloads/Driver.h"

#include <chrono>

using namespace lud;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

} // namespace

TimedRun lud::runBaseline(const Module &M, RunConfig Cfg) {
  NoopProfiler P;
  Heap H;
  Interpreter<NoopProfiler> Interp(M, H, P, Cfg);
  auto T0 = std::chrono::steady_clock::now();
  TimedRun Out;
  Out.Run = Interp.run();
  Out.Seconds = secondsSince(T0);
  return Out;
}

ProfiledRun lud::runProfiled(const Module &M, SlicingConfig SCfg,
                             RunConfig Cfg) {
  ProfiledRun Out;
  Out.Prof = std::make_unique<SlicingProfiler>(SCfg);
  Heap H;
  Interpreter<SlicingProfiler> Interp(M, H, *Out.Prof, Cfg);
  auto T0 = std::chrono::steady_clock::now();
  Out.Run = Interp.run();
  Out.Seconds = secondsSince(T0);
  return Out;
}
