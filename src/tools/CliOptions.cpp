//===- tools/CliOptions.cpp - Declarative command-line options -------------===//

#include "tools/CliOptions.h"

#include "support/OutStream.h"

#include <charconv>
#include <system_error>

using namespace lud;
using namespace lud::cli;

void OptionSet::flag(std::string Name, bool &B, std::string Help) {
  Options.push_back({std::move(Name), std::move(Help), ValueMode::None,
                     [&B](const std::string &) {
                       B = true;
                       return true;
                     }});
}

void OptionSet::str(std::string Name, std::string &V, std::string Help) {
  Options.push_back({std::move(Name), std::move(Help), ValueMode::Required,
                     [&V](const std::string &S) {
                       V = S;
                       return true;
                     }});
}

void OptionSet::custom(std::string Name, ValueMode Mode, std::string Help,
                       std::function<bool(const std::string &)> Fn) {
  Options.push_back({std::move(Name), std::move(Help), Mode, std::move(Fn)});
}

void OptionSet::addNumber(std::string Name, std::string Help, int64_t Min,
                          std::function<void(int64_t)> Store) {
  std::string N = Name;
  Options.push_back(
      {std::move(Name), std::move(Help), ValueMode::Required,
       [N, Min, Store = std::move(Store)](const std::string &S) {
         // Full-consumption parse: "12abc", "abc", and "" are errors, not
         // silent prefixes, and out-of-range values are diagnosed rather
         // than saturated.
         int64_t V = 0;
         auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), V);
         if (Ec == std::errc::result_out_of_range) {
           errs() << "option '" << N << "' value '" << S
                  << "' is out of range\n";
           return false;
         }
         if (Ec != std::errc() || Ptr != S.data() + S.size()) {
           errs() << "option '" << N << "' wants an integer, got '" << S
                  << "'\n";
           return false;
         }
         if (V < Min) {
           if (Min == 1)
             errs() << "option '" << N << "' requires a positive value\n";
           else
             errs() << "option '" << N << "' requires a value >= " << Min
                    << "\n";
           return false;
         }
         Store(V);
         return true;
       }});
}

const OptionSet::Option *OptionSet::findOption(const std::string &Name) const {
  for (const Option &O : Options)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

bool OptionSet::parse(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.size() < 2 || A[0] != '-') {
      Positional.push_back(std::move(A));
      continue;
    }
    // Built-in informational options, shared by every tool. Exact-match
    // only: `--help=x` falls through to the unknown-option diagnostic.
    if (A == "--help") {
      usage(outs());
      ExitNow = true;
      return true;
    }
    if (A == "--version") {
      outs() << Tool << " (lud) " << kVersionString << "\n";
      ExitNow = true;
      return true;
    }
    size_t Eq = A.find('=');
    bool HasEq = Eq != std::string::npos;
    std::string Name = HasEq ? A.substr(0, Eq) : A;
    const Option *O = findOption(Name);
    if (!O) {
      errs() << "unknown option '" << Name << "'\n";
      return false;
    }
    std::string Value;
    switch (O->Mode) {
    case ValueMode::None:
      if (HasEq) {
        errs() << "option '" << Name << "' does not take a value\n";
        return false;
      }
      break;
    case ValueMode::Required:
      if (HasEq) {
        Value = A.substr(Eq + 1);
      } else if (I + 1 < argc) {
        Value = argv[++I];
      } else {
        errs() << "option '" << Name << "' requires an argument\n";
        return false;
      }
      break;
    case ValueMode::Optional:
      if (HasEq)
        Value = A.substr(Eq + 1);
      break;
    }
    if (!O->Fn(Value))
      return false;
  }
  return true;
}

void cli::clientsOption(OptionSet &P, ClientSet &Set, std::string Help) {
  P.custom("--clients", ValueMode::Required, std::move(Help),
           [&Set](const std::string &List) {
             std::string Err;
             if (parseClientSet(List, Set, Err))
               return true;
             errs() << Err << "\n";
             return false;
           });
}

void cli::engineOption(OptionSet &P, EngineKind &E, std::string Help) {
  P.custom("--engine", ValueMode::Required, std::move(Help),
           [&E](const std::string &V) {
             if (parseEngineKind(V, E))
               return true;
             errs() << "unknown engine '" << V
                    << "' (valid: " << validEngineNames() << ")\n";
             return false;
           });
}

void OptionSet::usage() const { usage(errs()); }

void OptionSet::usage(OutStream &OS) const {
  OS << "usage: " << Tool << " [options] " << Operands << "\n";
  size_t Width = sizeof("--version") - 1;
  for (const Option &O : Options)
    Width = O.Name.size() > Width ? O.Name.size() : Width;
  auto Line = [&](const std::string &Name, std::string_view Help) {
    OS << "  " << Name;
    for (size_t P = Name.size(); P != Width + 2; ++P)
      OS << " ";
    OS << Help << "\n";
  };
  for (const Option &O : Options)
    Line(O.Name, O.Help);
  Line("--help", "print this help and exit");
  Line("--version", "print the version and exit");
}
