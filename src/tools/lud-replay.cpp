//===- tools/lud-replay.cpp - Re-drive analyses from a trace ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline twin of `lud-run --record`: replays one or more
/// `lud.trace.v1` files through a fresh profiling session and prints the
/// same reports the live run would have, without interpreting a single
/// instruction. Multiple traces fold in argument order, exactly like the
/// recording run's shards:
///
///   lud-run --record=p.trace --clients=all p.lud
///   lud-replay --clients=all --report p.lud p.trace
///
///   lud-run --record=p.trace --shards 8 p.lud
///   lud-replay p.lud p.trace.shard0 ... p.trace.shard7
///
//===----------------------------------------------------------------------===//

#include "analysis/Clients.h"
#include "ir/Parser.h"
#include "profiling/FrozenGraph.h"
#include "profiling/GraphIO.h"
#include "service/Render.h"
#include "service/SessionManager.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace lud;

namespace {

enum class StatsMode { Off, Text, Json, Csv };

struct Options {
  std::string Program;
  std::vector<std::string> Traces;
  bool Report = false;
  bool Dead = false;
  bool Caches = false;
  ClientSet Clients;
  int64_t Slots = 16;
  int64_t Threads = 1;
  ClientOptions Client;
  std::string DumpGraph;
  StatsMode Stats = StatsMode::Off;
  std::string StatsOut;
  EngineKind Engine = defaultEngineKind();
};

void declareOptions(cli::OptionSet &P, Options &O) {
  P.flag("--report", O.Report, "rank data structures by cost/benefit");
  P.flag("--dead", O.Dead, "print IPD/IPP/NLD bloat metrics");
  P.flag("--caches", O.Caches, "rank structures by cache effectiveness");
  cli::clientsOption(P, O.Clients,
                     "LIST  client analyses to re-drive from the trace: "
                     "copy, nullness, typestate, or all");
  P.number("--slots", O.Slots, "N  context slots s (default 16)", /*Min=*/1);
  cli::engineOption(P, O.Engine,
                    "E  execution backend name (validated for symmetry "
                    "with lud-run; replay never executes code, so the "
                    "replayed results are engine-independent)");
  P.number("--depth", O.Client.Depth,
           "N  reference-tree height n (default 4)");
  P.number("--top", O.Client.TopK, "K  rows per report (default 15)");
  P.number("--threads", O.Threads, "N  worker threads for multiple traces",
           /*Min=*/1);
  P.str("--dump-graph", O.DumpGraph,
        "F  serialize the replayed Gcost to file F");
  P.custom("--stats", cli::ValueMode::Optional,
           "[=json|csv]  emit the session's telemetry (default: text)",
           [&O](const std::string &V) {
             if (V.empty())
               O.Stats = StatsMode::Text;
             else if (V == "json")
               O.Stats = StatsMode::Json;
             else if (V == "csv")
               O.Stats = StatsMode::Csv;
             else {
               errs() << "option '--stats' expects 'json' or 'csv'\n";
               return false;
             }
             return true;
           });
  P.str("--stats-out", O.StatsOut,
        "F  write the telemetry to file F instead of stdout");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

bool emitStats(const ProfileSession &S, const Options &O) {
  const obs::MetricsRegistry *R = S.stats();
  if (!R)
    return true;
  std::FILE *F = nullptr;
  if (!O.StatsOut.empty()) {
    F = std::fopen(O.StatsOut.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.StatsOut << "'\n";
      return false;
    }
  }
  {
    FileOutStream FOS(F ? F : stdout);
    switch (O.Stats) {
    case StatsMode::Off:
      break;
    case StatsMode::Text:
      R->writeText(FOS);
      break;
    case StatsMode::Json:
      R->writeJson(FOS);
      break;
    case StatsMode::Csv:
      R->writeCsv(FOS);
      break;
    }
  }
  if (F)
    std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  cli::OptionSet Cli("lud-replay", "<program.lud> <trace>...");
  declareOptions(Cli, O);
  if (!Cli.parse(argc, argv)) {
    Cli.usage();
    return 2;
  }
  if (Cli.exitRequested())
    return 0;
  if (Cli.positionals().size() < 2) {
    errs() << "expected a program and at least one trace\n";
    Cli.usage();
    return 2;
  }
  O.Program = Cli.positionals()[0];
  O.Traces.assign(Cli.positionals().begin() + 1, Cli.positionals().end());

  std::string Text;
  if (!readFile(O.Program, Text)) {
    errs() << "cannot read '" << O.Program << "'\n";
    return 1;
  }
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(Text, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      errs() << O.Program << ": " << E << "\n";
    return 1;
  }

  SessionConfig SCfg;
  SCfg.Slicing.ContextSlots = uint32_t(O.Slots);
  SCfg.Clients = O.Clients;
  SCfg.CollectStats = O.Stats != StatsMode::Off;
  ShardedSession SR =
      replayShardedSession(*M, O.Traces, std::move(SCfg),
                           unsigned(O.Threads));
  if (!SR.Error.empty()) {
    errs() << SR.Error << "\n";
    return 1;
  }

  OutStream &OS = outs();
  ProfileSession &Session = *SR.Session;
  // Replay is done mutating the graph: seal once for every read path —
  // the summary line included, so the printed footprint is the sealed
  // form's, same as the daemon serves for the same streams.
  FrozenGraph FG(Session.slicing()->graph());
  if (obs::MetricsRegistry *Stats = Session.stats())
    FG.accountStats(*Stats);

  serve::renderReplaySummary(Session, FG, SR.Events,
                             uint64_t(O.Traces.size()), OS);

  if (!O.DumpGraph.empty()) {
    std::FILE *F = std::fopen(O.DumpGraph.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.DumpGraph << "'\n";
      return 1;
    }
    FileOutStream FOS(F);
    writeGraph(FG, FOS);
    std::fclose(F);
    OS << "Gcost written to " << O.DumpGraph << "\n";
  }

  serve::ReportSpec Spec;
  Spec.Report = O.Report;
  Spec.Dead = O.Dead;
  Spec.Caches = O.Caches;
  Spec.Client = O.Client;
  serve::renderReportSections(*M, Session, FG, Spec, OS);
  if (!emitStats(Session, O))
    return 1;
  return 0;
}
