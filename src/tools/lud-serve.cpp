//===- tools/lud-serve.cpp - Always-on profiling service -------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling daemon and its command-line client, in one binary:
///
///   # Serve: accept streamed lud.trace.v1 sessions for program.lud over
///   # a unix socket, answer reports over local HTTP.
///   lud-serve --socket=/tmp/lud.sock --report --clients=all program.lud
///   lud-serve --workload=composed --scale=60 --workers=4
///
///   # Stream recorded traces into a running daemon, one session per
///   # trace, frames interleaved round-robin across the sessions.
///   lud-serve --send --socket=/tmp/lud.sock a.trace b.trace
///
///   # Fetch a report / telemetry from a running daemon.
///   lud-serve --get=/report --http-port=8844
///
/// GET /report is byte-identical to `lud-replay <flags> program.lud
/// a.trace b.trace` with the matching report flags — the daemon folds its
/// closed sessions with the same deterministic merge, whatever the worker
/// count or frame interleaving. Protocol details: docs/SERVICE.md.
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"
#include "trace/TraceIO.h"
#include "workloads/Composed.h"
#include "workloads/DaCapo.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace lud;

namespace {

struct Options {
  std::string File;
  std::string WorkloadName;
  int64_t WorkloadScale = 2000;
  std::string SocketPath = "/tmp/lud-serve.sock";
  int64_t HttpPort = 0;
  int64_t Workers = 4;
  bool Report = false;
  bool Dead = false;
  bool Caches = false;
  bool Optimize = false;
  ClientSet Clients;
  int64_t Slots = 16;
  ClientOptions Client;
  int64_t MaxSessionBytes = int64_t(serve::SessionLimits().MaxSessionBytes);
  int64_t MaxPendingBytes = int64_t(serve::SessionLimits().MaxPendingBytes);
  int64_t IdleTimeout = 0;
  bool Send = false;
  std::string GetPath;
};

void declareOptions(cli::OptionSet &P, Options &O) {
  P.str("--socket", O.SocketPath,
        "PATH  unix socket for trace ingest (default /tmp/lud-serve.sock)");
  P.number("--http-port", O.HttpPort,
           "N  HTTP port on 127.0.0.1 (default 0 = pick a free port)",
           /*Min=*/0);
  P.number("--workers", O.Workers, "N  replay worker threads (default 4)",
           /*Min=*/1);
  P.flag("--report", O.Report, "serve the cost/benefit ranking in /report");
  P.flag("--dead", O.Dead, "serve IPD/IPP/NLD bloat metrics in /report");
  P.flag("--caches", O.Caches, "serve cache effectiveness in /report");
  P.flag("--optimize", O.Optimize,
         "run the rewrite-pass pipeline at startup; /report gains the "
         "optimizer section and /stats the opt.* metrics");
  cli::clientsOption(P, O.Clients,
                     "LIST  default client analyses per session: copy, "
                     "nullness, typestate, or all");
  P.number("--slots", O.Slots, "N  context slots s (default 16)", /*Min=*/1);
  P.number("--depth", O.Client.Depth,
           "N  reference-tree height n (default 4)");
  P.number("--top", O.Client.TopK, "K  rows per report (default 15)");
  P.number("--max-session-bytes", O.MaxSessionBytes,
           "N  per-session ingest quota in bytes", /*Min=*/1);
  P.number("--max-pending-bytes", O.MaxPendingBytes,
           "N  per-session backpressure watermark in bytes", /*Min=*/1);
  P.number("--idle-timeout", O.IdleTimeout,
           "SEC  evict sessions idle this long (default 0 = never)",
           /*Min=*/0);
  P.str("--workload", O.WorkloadName,
        "NAME  serve a generated workload instead of a program file");
  P.number("--scale", O.WorkloadScale,
           "N  scale for --workload (default 2000)", /*Min=*/1);
  P.flag("--send", O.Send,
         "stream the trace operands into a running daemon and exit");
  P.str("--get", O.GetPath,
        "PATH  fetch PATH (e.g. /report) from a running daemon and exit");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

/// --send: one session per trace operand, whole-segment frames fed
/// round-robin across the sessions so the daemon demonstrably does not
/// care about interleaving.
int sendMain(const Options &O, const std::vector<std::string> &Traces) {
  struct Stream {
    std::string Path;
    std::vector<std::string> Segments;
    size_t Next = 0;
    serve::ServeClient Client;
    bool Dead = false;
    std::string Err;
  };
  std::vector<Stream> Streams(Traces.size());
  for (size_t I = 0; I != Traces.size(); ++I) {
    Stream &S = Streams[I];
    S.Path = Traces[I];
    std::string Bytes;
    if (!readFile(S.Path, Bytes)) {
      errs() << "cannot read '" << S.Path << "'\n";
      return 1;
    }
    std::string Err;
    serve::splitSegments(Bytes, S.Segments, Err);
    if (!S.Client.connect(O.SocketPath, Err) ||
        (O.Clients.any() ? !S.Client.open(O.Clients, Err)
                         : !S.Client.open(Err))) {
      errs() << S.Path << ": " << Err << "\n";
      return 1;
    }
  }
  // Round-robin until every stream has shipped all its segments; a
  // session the daemon failed stops eating frames but the others
  // continue — per-session isolation, observed from the client side.
  for (bool Progress = true; Progress;) {
    Progress = false;
    for (Stream &S : Streams) {
      if (S.Dead || S.Next >= S.Segments.size())
        continue;
      Progress = true;
      if (!S.Client.feed(S.Segments[S.Next++], S.Err))
        S.Dead = true;
    }
  }
  int Rc = 0;
  for (Stream &S : Streams) {
    std::string Err;
    if (!S.Dead && S.Client.done(Err)) {
      outs() << S.Path << ": session " << S.Client.id() << " closed, "
             << S.Client.events() << " events, " << S.Client.segments()
             << " segments\n";
    } else {
      errs() << S.Path << ": " << (S.Dead ? S.Err : Err) << "\n";
      Rc = 1;
    }
    S.Client.close();
  }
  return Rc;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  cli::OptionSet Cli("lud-serve", "<program.lud> | --send <trace>...");
  declareOptions(Cli, O);
  if (!Cli.parse(argc, argv)) {
    Cli.usage();
    return 2;
  }
  if (Cli.exitRequested())
    return 0;

  if (!O.GetPath.empty()) {
    if (O.HttpPort == 0) {
      errs() << "--get needs --http-port\n";
      return 2;
    }
    std::string Body, Err;
    if (!serve::httpGet(uint16_t(O.HttpPort), O.GetPath, Body, Err)) {
      errs() << "lud-serve: " << Err << "\n";
      return 1;
    }
    outs() << Body;
    return 0;
  }

  if (O.Send) {
    if (Cli.positionals().empty()) {
      errs() << "--send expects at least one trace file\n";
      return 2;
    }
    return sendMain(O, Cli.positionals());
  }

  // Daemon mode: the module every session replays against.
  std::unique_ptr<Module> M;
  if (!O.WorkloadName.empty()) {
    if (!Cli.positionals().empty()) {
      errs() << "--workload generates the program; it cannot be combined "
                "with an input file\n";
      return 2;
    }
    const std::vector<std::string> &Names = dacapoNames();
    if (O.WorkloadName == "composed") {
      M = std::move(buildComposedWorkload(O.WorkloadScale).M);
    } else if (std::find(Names.begin(), Names.end(), O.WorkloadName) !=
               Names.end()) {
      M = std::move(buildWorkload(O.WorkloadName, O.WorkloadScale).M);
    } else {
      errs() << "unknown workload '" << O.WorkloadName
             << "' (expected a DaCapo analogue or 'composed')\n";
      return 2;
    }
  } else {
    if (Cli.positionals().size() != 1) {
      errs() << "expected exactly one program file (or --workload)\n";
      Cli.usage();
      return 2;
    }
    O.File = Cli.positionals()[0];
    std::string Text;
    if (!readFile(O.File, Text)) {
      errs() << "cannot read '" << O.File << "'\n";
      return 1;
    }
    std::vector<std::string> Errors;
    M = parseModule(Text, Errors);
    if (!M) {
      for (const std::string &E : Errors)
        errs() << O.File << ": " << E << "\n";
      return 1;
    }
  }

  serve::DaemonConfig DCfg;
  DCfg.SocketPath = O.SocketPath;
  DCfg.HttpPort = uint16_t(O.HttpPort);
  DCfg.Workers = unsigned(O.Workers);
  DCfg.Base.Clients = O.Clients;
  DCfg.Base.Slicing.ContextSlots = uint32_t(O.Slots);
  DCfg.Limits.MaxSessionBytes = uint64_t(O.MaxSessionBytes);
  DCfg.Limits.MaxPendingBytes = uint64_t(O.MaxPendingBytes);
  DCfg.Limits.IdleEvictSeconds = double(O.IdleTimeout);
  DCfg.Spec.Report = O.Report;
  DCfg.Spec.Dead = O.Dead;
  DCfg.Spec.Caches = O.Caches;
  DCfg.Spec.Client = O.Client;
  DCfg.Optimize = O.Optimize;

  serve::Daemon D(*M, std::move(DCfg));
  std::string Err;
  if (!D.start(Err)) {
    errs() << "lud-serve: " << Err << "\n";
    return 1;
  }
  outs() << "lud-serve: ingest on " << D.socketPath() << "\n";
  outs() << "lud-serve: http on 127.0.0.1:" << uint64_t(D.httpPort())
         << "\n";
  std::fflush(stdout); // Smoke scripts tail the log for these lines.
  if (!D.serveForever(Err)) {
    errs() << "lud-serve: " << Err << "\n";
    return 1;
  }
  outs() << "lud-serve: shutting down\n";
  return 0;
}
