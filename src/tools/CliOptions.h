//===- tools/CliOptions.h - Declarative command-line options ---*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one option parser behind every lud tool. A tool declares its options
/// once — name, storage, help line — and gets parsing of both `--name V`
/// and `--name=V` spellings, shared diagnostics ("option '--x' requires an
/// argument", "unknown option '--y'"), integer range validation, and a
/// usage() rendered from the same declarations, so the help text can never
/// drift from what parse() accepts.
///
/// Non-dash arguments are collected as positionals in order; each tool
/// validates their count itself (lud-run wants exactly one program,
/// lud-analyze a program and a graph).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_TOOLS_CLIOPTIONS_H
#define LUD_TOOLS_CLIOPTIONS_H

#include "profiling/ClientSet.h"
#include "runtime/Engine.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace lud {

class OutStream;

namespace cli {

/// One version string for every lud tool; --version prints it.
inline constexpr char kVersionString[] = "0.5.0";

/// Whether and how an option consumes a value.
enum class ValueMode : uint8_t {
  /// Plain switch; `--name=V` is rejected.
  None,
  /// Value required: `--name V` or `--name=V`; a missing value is the
  /// "requires an argument" diagnostic, not an unknown option.
  Required,
  /// Value optional and attached only (`--name` or `--name=V`); the next
  /// argv slot is never consumed, so a trailing bare spelling stays legal.
  Optional,
};

class OptionSet {
public:
  /// \p Tool names the binary in usage(); \p Operands is the positional
  /// part of the usage line (e.g. "<program.lud>").
  OptionSet(std::string Tool, std::string Operands)
      : Tool(std::move(Tool)), Operands(std::move(Operands)) {}

  /// Switch: presence sets \p B to true.
  void flag(std::string Name, bool &B, std::string Help);

  /// Integer option. Values below \p Min are rejected; Min == 1 produces
  /// the "requires a positive value" diagnostic.
  template <typename T>
  void number(std::string Name, T &V, std::string Help,
              int64_t Min = std::numeric_limits<int64_t>::min()) {
    addNumber(std::move(Name), std::move(Help), Min,
              [&V](int64_t X) { V = T(X); });
  }

  /// String option, stored verbatim (required value).
  void str(std::string Name, std::string &V, std::string Help);

  /// Option with a caller-supplied handler; \p Fn receives the value ("",
  /// for ValueMode::None and bare Optional) and returns false — after
  /// printing its own diagnostic — to abort the parse.
  void custom(std::string Name, ValueMode Mode, std::string Help,
              std::function<bool(const std::string &)> Fn);

  /// Parses \p argv. Returns false after printing a diagnostic to errs();
  /// the caller then prints usage() and exits. `--help` and `--version` are
  /// built in: both print to stdout, set exitRequested(), and return true —
  /// the caller exits 0 without running.
  bool parse(int argc, char **argv);

  /// True after parse() handled a built-in informational option (--help,
  /// --version); the tool should exit 0 immediately.
  bool exitRequested() const { return ExitNow; }

  /// Non-dash arguments, in command-line order.
  const std::vector<std::string> &positionals() const { return Positional; }

  /// "usage: <tool> [options] <operands>" plus one aligned line per option,
  /// in declaration order, written to errs().
  void usage() const;
  /// Same, to an arbitrary stream (--help routes this to stdout).
  void usage(OutStream &OS) const;

private:
  struct Option {
    std::string Name;
    std::string Help;
    ValueMode Mode;
    std::function<bool(const std::string &)> Fn;
  };

  void addNumber(std::string Name, std::string Help, int64_t Min,
                 std::function<void(int64_t)> Store);
  const Option *findOption(const std::string &Name) const;

  std::string Tool;
  std::string Operands;
  std::vector<Option> Options;
  std::vector<std::string> Positional;
  bool ExitNow = false;
};

/// Declares the shared `--engine` option on \p P: parses the value with
/// parseEngineKind into \p E and rejects anything else with a diagnostic
/// listing the valid engine names. Every executing tool (and lud-replay,
/// where the knob is accepted-but-inert) declares it through this helper so
/// the spelling, validation and diagnostic never drift between tools.
void engineOption(OptionSet &P, EngineKind &E,
                  std::string Help = "E  execution backend: interp "
                                     "(reference) or threaded (fast; "
                                     "default from LUD_ENGINE)");

/// Declares the shared `--clients` option on \p P: parses the value with
/// parseClientSet (grammar: "all" or a comma list of copy, nullness,
/// typestate), OR-ing into \p Set. Every tool that selects client
/// analyses — lud-run, lud-replay, lud-fuzz, lud-serve — declares it
/// through this helper.
void clientsOption(OptionSet &P, ClientSet &Set,
                   std::string Help = "LIST  client analyses, "
                                      "comma-separated: copy, nullness, "
                                      "typestate, or all");

} // namespace cli
} // namespace lud

#endif // LUD_TOOLS_CLIOPTIONS_H
