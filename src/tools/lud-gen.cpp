//===- tools/lud-gen.cpp - Emit workloads as textual IR --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints one of the built-in programs as textual .lud IR on stdout, so it
/// can be inspected, edited, and fed back through lud-run:
///
///   lud-gen chart 500 > chart.lud
///   lud-gen --random 42 > fuzz.lud
///   lud-run --report chart.lud
///
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"
#include "workloads/DaCapo.h"
#include "workloads/RandomProgram.h"

#include <charconv>
#include <cstdlib>
#include <string>

using namespace lud;

namespace {

void listWorkloads() {
  errs() << "  workloads:";
  for (const std::string &N : dacapoNames())
    errs() << " " << N;
  errs() << "\n";
}

} // namespace

int main(int argc, char **argv) {
  bool Random = false;
  uint64_t Seed = 0;
  bool Optimized = false;
  cli::OptionSet P("lud-gen", "<workload> [scale]");
  P.custom("--random", cli::ValueMode::Required,
           "SEED  generate a random program from SEED instead",
           [&](const std::string &S) {
             // strtoull would silently accept "12abc" and wrap values past
             // 2^64; both made "the same seed" mean different programs.
             auto [Ptr, Ec] =
                 std::from_chars(S.data(), S.data() + S.size(), Seed, 10);
             if (Ec == std::errc::result_out_of_range) {
               errs() << "option '--random' seed '" << S
                      << "' does not fit in 64 bits\n";
               return false;
             }
             if (Ec != std::errc() || Ptr != S.data() + S.size() ||
                 S.empty()) {
               errs() << "option '--random' wants a non-negative integer "
                         "seed, got '"
                      << S << "'\n";
               return false;
             }
             Random = true;
             return true;
           });
  P.flag("--optimized", Optimized,
         "emit the workload's hand-optimized variant");
  if (!P.parse(argc, argv)) {
    P.usage();
    listWorkloads();
    return 2;
  }
  if (P.exitRequested())
    return 0;

  if (Random) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed;
    std::unique_ptr<Module> M = generateRandomProgram(Opts);
    printModule(*M, outs());
    return 0;
  }

  if (P.positionals().empty()) {
    P.usage();
    listWorkloads();
    return 2;
  }
  const std::string &Name = P.positionals()[0];
  bool Known = false;
  for (const std::string &N : dacapoNames())
    Known |= N == Name;
  if (!Known) {
    errs() << "unknown workload '" << Name << "'\n";
    return 2;
  }
  int64_t Scale = P.positionals().size() > 1
                      ? std::strtoll(P.positionals()[1].c_str(), nullptr, 10)
                      : 500;
  if (Optimized && !hasOptimizedVariant(Name)) {
    errs() << "'" << Name << "' has no optimized variant\n";
    return 2;
  }
  Workload W = buildWorkload(Name, Scale, Optimized);
  printModule(*W.M, outs());
  return 0;
}
