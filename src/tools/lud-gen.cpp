//===- tools/lud-gen.cpp - Emit workloads as textual IR --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints one of the built-in programs as textual .lud IR on stdout, so it
/// can be inspected, edited, and fed back through lud-run:
///
///   lud-gen chart 500 > chart.lud
///   lud-gen --random 42 > fuzz.lud
///   lud-gen --obfuscate=junk,opaque --obfuscate-seed=7 chart 400 > adv.lud
///   lud-run --report chart.lud
///
//===----------------------------------------------------------------------===//

#include "ir/Obfuscate.h"
#include "ir/Printer.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"
#include "workloads/DaCapo.h"
#include "workloads/RandomProgram.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lud;

namespace {

void listWorkloads() {
  errs() << "  workloads:";
  for (const std::string &N : dacapoNames())
    errs() << " " << N;
  errs() << "\n";
}

/// Obfuscates *M in place per Opts, writing the manifest (one
/// "<kind>\t<description>" line per injected site) to ManifestPath when
/// non-empty. Returns false on a manifest-file error.
bool applyObfuscation(std::unique_ptr<Module> &M, const ObfuscateOptions &Opts,
                      const std::string &ManifestPath) {
  ObfuscationResult Res = obfuscateModule(*M, Opts);
  if (!ManifestPath.empty()) {
    std::FILE *F = std::fopen(ManifestPath.c_str(), "w");
    if (!F) {
      errs() << "cannot write manifest file '" << ManifestPath << "'\n";
      return false;
    }
    FileOutStream OS(F);
    for (const ObfSiteTag &T : Res.Manifest)
      OS << obfKindName(T.Kind) << "\t" << T.Description << "\n";
    std::fclose(F);
  }
  M = std::move(Res.M);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  bool Random = false;
  uint64_t Seed = 0;
  bool Optimized = false;
  bool Obfuscate = false;
  ObfuscateOptions ObfOpts;
  std::string ObfManifest;
  cli::OptionSet P("lud-gen", "<workload> [scale]");
  P.custom("--random", cli::ValueMode::Required,
           "SEED  generate a random program from SEED instead",
           [&](const std::string &S) {
             // strtoull would silently accept "12abc" and wrap values past
             // 2^64; both made "the same seed" mean different programs.
             auto [Ptr, Ec] =
                 std::from_chars(S.data(), S.data() + S.size(), Seed, 10);
             if (Ec == std::errc::result_out_of_range) {
               errs() << "option '--random' seed '" << S
                      << "' does not fit in 64 bits\n";
               return false;
             }
             if (Ec != std::errc() || Ptr != S.data() + S.size() ||
                 S.empty()) {
               errs() << "option '--random' wants a non-negative integer "
                         "seed, got '"
                      << S << "'\n";
               return false;
             }
             Random = true;
             return true;
           });
  P.flag("--optimized", Optimized,
         "emit the workload's hand-optimized variant");
  P.custom("--obfuscate", cli::ValueMode::Optional,
           "[PASSES]  apply obfuscation passes (junk,opaque,strings or all; "
           "default all)",
           [&](const std::string &S) {
             Obfuscate = true;
             if (S.empty()) {
               ObfOpts.Junk = ObfOpts.Opaque = ObfOpts.Strings = true;
               return true;
             }
             std::string Err;
             if (parseObfuscatePasses(S, ObfOpts, Err))
               return true;
             errs() << Err << "\n";
             return false;
           });
  P.number("--obfuscate-seed", ObfOpts.Seed,
           "N  seed of the obfuscation transform stream (default 1)", 0);
  P.str("--obfuscate-manifest", ObfManifest,
        "FILE  write injected-site manifest to FILE");
  if (!P.parse(argc, argv)) {
    P.usage();
    listWorkloads();
    return 2;
  }
  if (P.exitRequested())
    return 0;
  if (!ObfManifest.empty() && !Obfuscate) {
    errs() << "--obfuscate-manifest requires --obfuscate\n";
    return 2;
  }

  if (Random) {
    RandomProgramOptions Opts;
    Opts.Seed = Seed;
    std::unique_ptr<Module> M = generateRandomProgram(Opts);
    if (Obfuscate && !applyObfuscation(M, ObfOpts, ObfManifest))
      return 2;
    printModule(*M, outs());
    return 0;
  }

  if (P.positionals().empty()) {
    P.usage();
    listWorkloads();
    return 2;
  }
  const std::string &Name = P.positionals()[0];
  bool Known = false;
  for (const std::string &N : dacapoNames())
    Known |= N == Name;
  if (!Known) {
    errs() << "unknown workload '" << Name << "'\n";
    return 2;
  }
  int64_t Scale = 500;
  if (P.positionals().size() > 1) {
    // Same full-consumption contract as every numeric option: a mistyped
    // scale is an error, not a silently truncated prefix.
    const std::string &S = P.positionals()[1];
    auto [Ptr, Ec] = std::from_chars(S.data(), S.data() + S.size(), Scale);
    if (Ec == std::errc::result_out_of_range) {
      errs() << "scale '" << S << "' is out of range\n";
      return 2;
    }
    if (Ec != std::errc() || Ptr != S.data() + S.size() || Scale < 1) {
      errs() << "scale wants a positive integer, got '" << S << "'\n";
      return 2;
    }
  }
  if (Optimized && !hasOptimizedVariant(Name)) {
    errs() << "'" << Name << "' has no optimized variant\n";
    return 2;
  }
  Workload W = buildWorkload(Name, Scale, Optimized);
  if (Obfuscate && !applyObfuscation(W.M, ObfOpts, ObfManifest))
    return 2;
  printModule(*W.M, outs());
  return 0;
}
