//===- tools/lud-gen.cpp - Emit workloads as textual IR --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints one of the built-in programs as textual .lud IR on stdout, so it
/// can be inspected, edited, and fed back through lud-run:
///
///   lud-gen chart 500 > chart.lud
///   lud-gen --random 42 > fuzz.lud
///   lud-run --report chart.lud
///
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "support/OutStream.h"
#include "workloads/DaCapo.h"
#include "workloads/RandomProgram.h"

#include <cstdlib>
#include <cstring>
#include <string>

using namespace lud;

int main(int argc, char **argv) {
  if (argc < 2) {
    errs() << "usage: lud-gen <workload|--random SEED> [scale] "
              "[--optimized]\n  workloads:";
    for (const std::string &N : dacapoNames())
      errs() << " " << N;
    errs() << "\n";
    return 2;
  }

  if (std::strcmp(argv[1], "--random") == 0) {
    RandomProgramOptions Opts;
    if (argc > 2)
      Opts.Seed = std::strtoull(argv[2], nullptr, 10);
    std::unique_ptr<Module> M = generateRandomProgram(Opts);
    printModule(*M, outs());
    return 0;
  }

  std::string Name = argv[1];
  bool Known = false;
  for (const std::string &N : dacapoNames())
    Known |= N == Name;
  if (!Known) {
    errs() << "unknown workload '" << Name << "'\n";
    return 2;
  }
  int64_t Scale = argc > 2 ? std::strtoll(argv[2], nullptr, 10) : 500;
  bool Optimized = false;
  for (int I = 2; I < argc; ++I)
    Optimized |= std::strcmp(argv[I], "--optimized") == 0;
  if (Optimized && !hasOptimizedVariant(Name)) {
    errs() << "'" << Name << "' has no optimized variant\n";
    return 2;
  }
  Workload W = buildWorkload(Name, Scale, Optimized);
  printModule(*W.M, outs());
  return 0;
}
