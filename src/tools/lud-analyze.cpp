//===- tools/lud-analyze.cpp - Offline graph analysis ----------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline half of the Section 3.2 hand-off: given a program and a
/// Gcost previously serialized by `lud-run --dump-graph`, re-runs the
/// analyses without executing anything ("the JVM only needs to write Gcost
/// to external storage").
///
///   lud-run --dump-graph prog.graph prog.lud
///   lud-analyze prog.lud prog.graph [--depth N] [--top K]
///
//===----------------------------------------------------------------------===//

#include "analysis/CacheCost.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace lud;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ClientOptions CO;
  cli::OptionSet P("lud-analyze", "<program.lud> <gcost.graph>");
  P.number("--depth", CO.Depth, "N  reference-tree height n (default 4)");
  P.number("--top", CO.TopK, "K  rows per report (default 15)");
  if (!P.parse(argc, argv)) {
    P.usage();
    return 2;
  }
  if (P.exitRequested())
    return 0;
  if (P.positionals().size() != 2) {
    P.usage();
    return 2;
  }
  const std::string &ProgPath = P.positionals()[0];
  const std::string &GraphPath = P.positionals()[1];
  unsigned Depth = CO.Depth;
  size_t TopK = CO.TopK;

  std::string ProgText, GraphText;
  if (!readFile(ProgPath, ProgText) || !readFile(GraphPath, GraphText)) {
    errs() << "cannot read inputs\n";
    return 1;
  }
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(ProgText, Errors);
  std::unique_ptr<DepGraph> G =
      M ? readGraph(GraphText, Errors) : nullptr;
  if (!M || !G) {
    for (const std::string &E : Errors)
      errs() << E << "\n";
    return 1;
  }

  // The build-phase graph is done mutating: seal it and analyze the packed
  // representation only.
  FrozenGraph FG = FrozenGraph::seal(std::move(*G));
  G.reset();

  OutStream &OS = outs();
  OS << "offline Gcost: " << uint64_t(FG.numNodes()) << " nodes, "
     << uint64_t(FG.numEdges()) << " edges, covering " << FG.totalFreq()
     << " instruction instances\n";

  CostModel CM(FG);
  ReportOptions Opts;
  Opts.Depth = Depth;
  LowUtilityReport Report(CM, *M, Opts);
  OS << "\n=== low-utility data structures ===\n";
  Report.print(OS, TopK);

  OS << "\n=== cache effectiveness (least effective first) ===\n";
  printCacheScores(rankCacheEffectiveness(CM, *M), OS, TopK);

  DeadValueAnalysis DV = computeDeadValues(FG, FG.totalFreq());
  OS << "\n=== bloat metrics (relative to covered instances) ===\nIPD ";
  OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
  OS << "%   IPP ";
  OS.printFixed(100.0 * DV.Metrics.ipp(), 1);
  OS << "%   NLD ";
  OS.printFixed(100.0 * DV.Metrics.nld(), 1);
  OS << "%\n";
  return 0;
}
