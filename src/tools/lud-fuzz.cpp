//===- tools/lud-fuzz.cpp - Differential fuzzing harness -------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential testing of every execution mode: live
/// single-thread, HotPathCaches flipped, threaded vs interpreted execution,
/// sharded at 2/4/8 shards and several thread counts, record -> replay, the
/// GraphIO round trip, and (on a fraction of runs) the rewrite-pass
/// pipeline's output-preservation contract, all cross-checked for
/// byte-identical Gcost and client reports.
///
///   lud-fuzz --runs=500 --seed=1                     # fuzz, exit 1 on bug
///   lud-fuzz --runs=200 --time-budget=120s           # bounded nightly job
///   lud-fuzz --check corpus/repro-s1-r37.lud --slots=8 --clients=copy
///                                                    # re-run one repro
///
/// Failures land in the corpus directory as a minimized .lud, the original
/// program, and a .txt note with the exact --check command line.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "ir/Parser.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"
#include "trace/TraceIO.h"

#include <charconv>
#include <string>

using namespace lud;

namespace {

/// Parses "90", "90s", or "2m" into seconds; returns false on anything
/// else.
bool parseTimeBudget(const std::string &S, double &Seconds) {
  if (S.empty())
    return false;
  std::string Num = S;
  double Scale = 1;
  char Last = S.back();
  if (Last == 's' || Last == 'm' || Last == 'h') {
    Num = S.substr(0, S.size() - 1);
    Scale = Last == 's' ? 1 : Last == 'm' ? 60 : 3600;
  }
  if (Num.empty())
    return false;
  uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(Num.data(), Num.data() + Num.size(), V);
  if (Ec != std::errc() || Ptr != Num.data() + Num.size())
    return false;
  Seconds = double(V) * Scale;
  return true;
}

/// Parses "0"/"1" for the boolean knob flags.
bool parseBool(const std::string &Name, const std::string &S, bool &Out) {
  if (S == "0" || S == "1") {
    Out = S == "1";
    return true;
  }
  errs() << "option '" << Name << "' takes 0 or 1\n";
  return false;
}

} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions Opts;
  fuzz::OracleConfig Check;
  std::string CheckFile;
  bool NoMinimize = false;
  bool Quiet = false;
  std::string ClientsSpec;

  cli::OptionSet P("lud-fuzz", "[--check <repro.lud>]");
  P.number("--runs", Opts.Runs, "N  fuzzing runs to attempt (default 100)",
           1);
  P.number("--seed", Opts.Seed, "N  base seed; run k uses split stream k",
           0);
  P.custom("--time-budget", cli::ValueMode::Required,
           "T  stop after T wall time (e.g. 120s, 2m)",
           [&](const std::string &S) {
             if (parseTimeBudget(S, Opts.TimeBudgetSeconds))
               return true;
             errs() << "option '--time-budget' wants a duration like 120s "
                       "or 2m, got '"
                    << S << "'\n";
             return false;
           });
  P.str("--corpus", Opts.CorpusDir,
        "DIR  where candidates and repros are written (default "
        "fuzz-corpus)");
  P.flag("--no-minimize", NoMinimize,
         "emit failures without ddmin reduction");
  P.flag("--quiet", Quiet, "suppress progress lines");
  P.custom("--check", cli::ValueMode::Required,
           "FILE  run the differential oracle once on FILE and exit",
           [&](const std::string &S) {
             CheckFile = S;
             return true;
           });
  P.number("--slots", Check.Slicing.ContextSlots,
           "N  context slots for --check (default 16)", 1);
  P.str("--clients", ClientsSpec,
        "LIST  clients for --check: copy,nullness,typestate|all|none");
  P.custom("--thin-slicing", cli::ValueMode::Required,
           "0|1  thin slicing for --check (default 1)",
           [&](const std::string &S) {
             return parseBool("--thin-slicing", S, Check.Slicing.ThinSlicing);
           });
  P.custom("--context-sensitive", cli::ValueMode::Required,
           "0|1  context sensitivity for --check (default 1)",
           [&](const std::string &S) {
             return parseBool("--context-sensitive", S,
                              Check.Slicing.ContextSensitive);
           });
  P.custom("--caches", cli::ValueMode::Required,
           "0|1  base HotPathCaches setting for --check (default 1)",
           [&](const std::string &S) {
             return parseBool("--caches", S, Check.Slicing.HotPathCaches);
           });
  cli::engineOption(P, Check.Engine,
                    "E  reference engine for --check: interp or threaded "
                    "(the engines mode cross-checks the other one)");
  P.custom("--engines", cli::ValueMode::Required,
           "0|1  cross-check threaded vs interpreted execution (default 1)",
           [&](const std::string &S) {
             return parseBool("--engines", S, Check.CheckEngines);
           });
  P.custom("--optimize", cli::ValueMode::Required,
           "0|1  re-check the rewrite-pass pipeline's output preservation "
           "(default 0 for --check; fuzzing enables it on 1/4 of runs)",
           [&](const std::string &S) {
             return parseBool("--optimize", S, Check.CheckOptimize);
           });
  if (!P.parse(argc, argv)) {
    P.usage();
    return 2;
  }
  if (P.exitRequested())
    return 0;
  if (!P.positionals().empty()) {
    errs() << "lud-fuzz takes no positional arguments (use --check FILE)\n";
    P.usage();
    return 2;
  }

  if (!ClientsSpec.empty() && ClientsSpec != "none") {
    ClientSet Set;
    std::string Err;
    if (!parseClientSet(ClientsSpec, Set, Err)) {
      errs() << Err << "\n";
      return 2;
    }
    Check.Clients = Set;
  } else if (ClientsSpec == "none") {
    Check.Clients = ClientSet::none();
  }

  if (!CheckFile.empty()) {
    std::string Text;
    if (!trace::readFileBytes(CheckFile, Text)) {
      errs() << "cannot read '" << CheckFile << "'\n";
      return 2;
    }
    std::vector<std::string> Errors;
    std::unique_ptr<Module> M = parseModule(Text, Errors);
    if (!M) {
      errs() << "cannot parse '" << CheckFile << "':\n";
      for (const std::string &E : Errors)
        errs() << "  " << E << "\n";
      return 2;
    }
    fuzz::OracleResult R = fuzz::runOracle(*M, Check);
    if (R.Ok) {
      outs() << "ok: all execution modes agree (" << fuzz::configFlags(Check)
             << ")\n";
      return 0;
    }
    outs() << "DIVERGENCE in mode " << R.Mode << ":\n" << R.Detail << "\n";
    return 1;
  }

  Opts.Minimize = !NoMinimize;
  Opts.Log = Quiet ? nullptr : &errs();
  fuzz::FuzzReport Report = fuzz::runFuzz(Opts);
  outs() << "lud-fuzz: " << Report.RunsDone << " runs, "
         << Report.Failures.size() << " divergence(s)";
  if (!Report.Failures.empty())
    outs() << " — repros in " << Opts.CorpusDir;
  outs() << "\n";
  return Report.Failures.empty() ? 0 : 1;
}
