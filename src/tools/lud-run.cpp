//===- tools/lud-run.cpp - Command-line driver -----------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing driver: loads a textual .lud program, executes it (with
/// or without profiling), and prints the requested diagnoses. All requested
/// analyses — the Gcost-based reports and any --clients client profilers —
/// come out of ONE interpretation pass over a composed profiler pipeline.
///
///   lud-run program.lud                       # just run it
///   lud-run --report program.lud              # low-utility ranking
///   lud-run --all --slots 32 program.lud      # every Gcost analysis
///   lud-run --clients=copy,nullness,typestate --report program.lud
///   lud-run --stats=json --stats-out=s.json --report program.lud
///   lud-run --record=p.trace program.lud      # record the hook stream
///   lud-run --replay=p.trace --report program.lud  # same reports, no run
///   lud-run --optimize --optimize-out=o.lud program.lud
///                                             # rewrite-pass pipeline
///
//===----------------------------------------------------------------------===//

#include "analysis/CacheCost.h"
#include "analysis/Optimizer.h"
#include "analysis/PassManager.h"
#include "analysis/Clients.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/Obfuscate.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "profiling/GraphIO.h"
#include "service/SessionManager.h"
#include "support/OutStream.h"
#include "tools/CliOptions.h"
#include "workloads/Composed.h"
#include "workloads/ParallelDriver.h"

#include <algorithm>

#include <cstdio>
#include <string>
#include <vector>

using namespace lud;

namespace {

enum class StatsMode { Off, Text, Json, Csv };

struct Options {
  std::string File;
  std::string WorkloadName;
  int64_t WorkloadScale = 2000;
  bool Report = false;
  bool Dead = false;
  bool Overwrites = false;
  bool Predicates = false;
  bool Methods = false;
  bool Caches = false;
  bool PrintIR = false;
  bool Baseline = false;
  ClientSet Clients;
  int64_t Slots = 16;
  ClientOptions Client;
  std::string DumpGraph;
  bool Obfuscate = false;
  ObfuscateOptions Obf;
  std::string ObfManifest;
  bool Optimize = false;
  std::vector<std::string> OptimizePasses;
  std::string OptimizeOut;
  std::string RecordPath;
  std::string ReplayPath;
  StatsMode Stats = StatsMode::Off;
  std::string StatsOut;
  int64_t Shards = 1;
  int64_t Threads = 1;
  EngineKind Engine = defaultEngineKind();
};

bool isPowerOfTwo(uint32_t N) { return N != 0 && (N & (N - 1)) == 0; }

void declareOptions(cli::OptionSet &P, Options &O) {
  P.flag("--report", O.Report, "rank data structures by cost/benefit");
  P.flag("--dead", O.Dead, "print IPD/IPP/NLD bloat metrics");
  P.flag("--overwrites", O.Overwrites,
         "rank locations rewritten before read");
  P.flag("--predicates", O.Predicates, "list always-constant predicates");
  P.flag("--methods", O.Methods, "rank methods by return-value cost");
  P.flag("--caches", O.Caches, "rank structures by cache effectiveness");
  P.custom("--all", cli::ValueMode::None, "everything above",
           [&O](const std::string &) {
             O.Report = O.Dead = O.Overwrites = O.Predicates = O.Methods =
                 O.Caches = true;
             return true;
           });
  cli::clientsOption(P, O.Clients,
                     "LIST  client analyses to run in the same pass, "
                     "comma-separated: copy, nullness, typestate, or all");
  P.flag("--baseline", O.Baseline, "run without instrumentation (timing)");
  cli::engineOption(P, O.Engine);
  P.str("--record", O.RecordPath,
        "F  record the hook stream to trace file F (one file per shard)");
  P.str("--replay", O.ReplayPath,
        "F  re-drive the analyses from trace F instead of interpreting");
  P.flag("--print-ir", O.PrintIR, "echo the parsed program and exit");
  P.str("--workload", O.WorkloadName,
        "NAME  run a generated workload instead of a program file: one of "
        "the 18 DaCapo analogues, or 'composed' (the paper-scale tier)");
  P.number("--scale", O.WorkloadScale,
           "N  scale for --workload (default 2000)", /*Min=*/1);
  P.str("--dump-graph", O.DumpGraph,
        "F  serialize Gcost to file F (offline use)");
  P.custom("--obfuscate", cli::ValueMode::Optional,
           "[=LIST]  obfuscate the program before running (junk, opaque, "
           "strings, or all; default all)",
           [&O](const std::string &V) {
             O.Obfuscate = true;
             if (V.empty()) {
               O.Obf.Junk = O.Obf.Opaque = O.Obf.Strings = true;
               return true;
             }
             std::string Err;
             if (parseObfuscatePasses(V, O.Obf, Err))
               return true;
             errs() << Err << "\n";
             return false;
           });
  P.number("--obfuscate-seed", O.Obf.Seed,
           "N  seed of the obfuscation transform stream (default 1)",
           /*Min=*/0);
  P.str("--obfuscate-manifest", O.ObfManifest,
        "F  write the injected-site manifest to F (implies --obfuscate)");
  P.custom("--optimize", cli::ValueMode::Optional,
           "[=LIST]  run the rewrite-pass pipeline (dead-stores, "
           "map-to-array, clone-per-op, once-read-memo, dead-stores-final) "
           "and print its report; LIST restricts to those passes, in order",
           [&O](const std::string &V) {
             O.Optimize = true;
             std::string Cur;
             for (size_t I = 0; I <= V.size(); ++I) {
               if (I == V.size() || V[I] == ',') {
                 if (!Cur.empty()) {
                   if (!opt::isKnownPassName(Cur)) {
                     errs() << "unknown pass '" << Cur
                            << "' (expected dead-stores, map-to-array, "
                               "clone-per-op, once-read-memo, or "
                               "dead-stores-final)\n";
                     return false;
                   }
                   O.OptimizePasses.push_back(Cur);
                   Cur.clear();
                 }
               } else {
                 Cur += V[I];
               }
             }
             return true;
           });
  P.str("--optimize-out", O.OptimizeOut,
        "F  write the rewritten program to F (implies --optimize)");
  P.number("--slots", O.Slots, "N  context slots s (default 16)", /*Min=*/1);
  P.number("--depth", O.Client.Depth,
           "N  reference-tree height n (default 4)");
  P.number("--top", O.Client.TopK, "K  rows per report (default 15)");
  P.number("--shards", O.Shards,
           "N  profile N sharded runs and merge them (default 1)",
           /*Min=*/1);
  P.number("--threads", O.Threads, "N  worker threads for --shards",
           /*Min=*/1);
  P.custom("--stats", cli::ValueMode::Optional,
           "[=json|csv]  emit the profiler's own telemetry (default: text)",
           [&O](const std::string &V) {
             if (V.empty())
               O.Stats = StatsMode::Text;
             else if (V == "json")
               O.Stats = StatsMode::Json;
             else if (V == "csv")
               O.Stats = StatsMode::Csv;
             else {
               errs() << "option '--stats' expects 'json' or 'csv'\n";
               return false;
             }
             return true;
           });
  P.str("--stats-out", O.StatsOut,
        "F  write the telemetry to file F instead of stdout");
}

bool parseArgs(cli::OptionSet &P, int argc, char **argv, Options &O) {
  if (!P.parse(argc, argv))
    return false;
  if (P.exitRequested())
    return true; // --help/--version already printed; skip validation.
  if (P.positionals().size() > 1) {
    errs() << "multiple input files\n";
    return false;
  }
  if (!P.positionals().empty())
    O.File = P.positionals()[0];
  if (!isPowerOfTwo(uint32_t(O.Slots)))
    errs() << "warning: --slots " << uint64_t(O.Slots)
           << " is not a power of two; contexts fold by modulo either "
              "way, but results won't line up with the paper's s = 2^k "
              "sweeps\n";
  if (O.Baseline && O.Clients.any()) {
    errs() << "--baseline runs without instrumentation; it cannot be "
              "combined with --clients\n";
    return false;
  }
  if (!O.OptimizeOut.empty())
    O.Optimize = true;
  if (!O.ObfManifest.empty() && !O.Obfuscate) {
    O.Obfuscate = true;
    O.Obf.Junk = O.Obf.Opaque = O.Obf.Strings = true;
  }
  if (!O.ReplayPath.empty()) {
    if (O.Baseline || !O.RecordPath.empty()) {
      errs() << "--replay re-drives a recorded run; it cannot be combined "
                "with --baseline or --record\n";
      return false;
    }
    if (O.Optimize) {
      errs() << "--optimize validates against the live run's output; it "
                "cannot be combined with --replay\n";
      return false;
    }
  }
  if (!O.WorkloadName.empty() && !O.File.empty()) {
    errs() << "--workload generates the program; it cannot be combined "
              "with an input file\n";
    return false;
  }
  return !O.File.empty() || !O.WorkloadName.empty();
}

/// Writes the session's registry in the requested format, to --stats-out
/// or stdout. Timing metrics are included — this is the human/CI surface,
/// not the determinism-test surface.
bool emitStats(const ProfileSession &S, const Options &O) {
  const obs::MetricsRegistry *R = S.stats();
  if (!R)
    return true;
  std::FILE *F = nullptr;
  if (!O.StatsOut.empty()) {
    F = std::fopen(O.StatsOut.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.StatsOut << "'\n";
      return false;
    }
  }
  {
    FileOutStream FOS(F ? F : stdout);
    switch (O.Stats) {
    case StatsMode::Off:
      break;
    case StatsMode::Text:
      R->writeText(FOS);
      break;
    case StatsMode::Json:
      R->writeJson(FOS);
      break;
    case StatsMode::Csv:
      R->writeCsv(FOS);
      break;
    }
  }
  if (F)
    std::fclose(F);
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  cli::OptionSet Cli("lud-run", "<program.lud>");
  declareOptions(Cli, O);
  if (!parseArgs(Cli, argc, argv, O)) {
    Cli.usage();
    return 2;
  }
  if (Cli.exitRequested())
    return 0;

  std::unique_ptr<Module> M;
  if (!O.WorkloadName.empty()) {
    const std::vector<std::string> &Names = dacapoNames();
    if (O.WorkloadName == "composed") {
      M = std::move(buildComposedWorkload(O.WorkloadScale).M);
    } else if (std::find(Names.begin(), Names.end(), O.WorkloadName) !=
               Names.end()) {
      M = std::move(buildWorkload(O.WorkloadName, O.WorkloadScale).M);
    } else {
      errs() << "unknown workload '" << O.WorkloadName
             << "' (expected a DaCapo analogue or 'composed')\n";
      return 2;
    }
  } else {
    std::string Text;
    if (!readFile(O.File, Text)) {
      errs() << "cannot read '" << O.File << "'\n";
      return 1;
    }
    std::vector<std::string> Errors;
    M = parseModule(Text, Errors);
    if (!M) {
      for (const std::string &E : Errors)
        errs() << O.File << ": " << E << "\n";
      return 1;
    }
  }

  if (O.Obfuscate) {
    // Obfuscation happens before anything looks at the module, so
    // --print-ir shows the obfuscated program and every analysis below
    // sees the adversarial shapes. The summary goes to stderr to keep the
    // report streams stable.
    ObfuscationResult Res = obfuscateModule(*M, O.Obf);
    size_t NumJunk = 0, NumOpaque = 0, NumTables = 0;
    for (const ObfSiteTag &T : Res.Manifest) {
      NumJunk += T.Kind == ObfKind::Junk;
      NumOpaque += T.Kind == ObfKind::Opaque;
      NumTables += T.Kind == ObfKind::StringTable;
    }
    errs() << "obfuscated: " << uint64_t(NumJunk) << " junk sites, "
           << uint64_t(NumOpaque) << " opaque predicates, "
           << uint64_t(NumTables) << " string tables (seed "
           << O.Obf.Seed << ")\n";
    if (!O.ObfManifest.empty()) {
      std::FILE *F = std::fopen(O.ObfManifest.c_str(), "w");
      if (!F) {
        errs() << "cannot write manifest file '" << O.ObfManifest << "'\n";
        return 1;
      }
      FileOutStream FOS(F);
      for (const ObfSiteTag &T : Res.Manifest)
        FOS << obfKindName(T.Kind) << "\t" << T.Description << "\n";
      std::fclose(F);
    }
    M = std::move(Res.M);
  }

  OutStream &OS = outs();
  if (O.PrintIR) {
    printModule(*M, OS);
    return 0;
  }

  RunConfig RCfg;
  RCfg.PrintStream = &OS;

  if (O.Baseline) {
    SessionConfig BCfg;
    BCfg.Engine = O.Engine;
    BCfg.Instrument = false;
    BCfg.Run = RCfg;
    BCfg.CollectStats = O.Stats != StatsMode::Off;
    BCfg.RecordPath = O.RecordPath;
    ProfileSession Session(std::move(BCfg));
    TimedRun R = Session.run(*M);
    if (!Session.recordError().empty()) {
      errs() << Session.recordError() << "\n";
      return 1;
    }
    OS << "status: "
       << (R.Run.Status == RunStatus::Finished ? "finished"
                                               : trapKindName(R.Run.Trap))
       << ", " << R.Run.ExecutedInstrs << " instructions, ";
    OS.printFixed(R.Seconds * 1e3, 2);
    OS << " ms, result " << R.Run.ReturnValue.asInt() << ", sink "
       << R.Run.SinkHash << "\n";
    if (!emitStats(Session, O))
      return 1;
    return R.Run.Status == RunStatus::Finished ? 0 : 1;
  }

  // One interpretation pass per shard: the slicing substrate plus every
  // requested client rides the same composed pipeline. --shards 1 (the
  // default) is a plain single session.
  SessionConfig SCfg;
  SCfg.Engine = O.Engine;
  SCfg.Slicing.ContextSlots = uint32_t(O.Slots);
  SCfg.Clients = O.Clients;
  SCfg.Run = RCfg;
  SCfg.CollectStats = O.Stats != StatsMode::Off;
  SCfg.RecordPath = O.RecordPath;
  ShardedSession SR;
  if (!O.ReplayPath.empty()) {
    // Re-drive the same analyses from the recorded hook stream; shard N
    // reads the file shard N of the recording run wrote.
    std::vector<std::string> Paths;
    for (unsigned S = 0; S != unsigned(O.Shards); ++S)
      Paths.push_back(shardTracePath(O.ReplayPath, S, unsigned(O.Shards)));
    SR = replayShardedSession(*M, Paths, std::move(SCfg),
                              unsigned(O.Threads));
  } else {
    SR = runShardedSession(*M, unsigned(O.Shards), std::move(SCfg),
                           unsigned(O.Threads));
  }
  if (!SR.Error.empty()) {
    errs() << SR.Error << "\n";
    return 1;
  }
  ProfileSession &Session = *SR.Session;
  TimedRun P{SR.Run, SR.Seconds};
  if (!O.ReplayPath.empty()) {
    OS << "replayed " << SR.Events << " events from " << uint64_t(O.Shards)
       << (O.Shards == 1 ? " trace\n" : " traces\n");
  } else {
    OS << "status: "
       << (P.Run.Status == RunStatus::Finished ? "finished"
                                               : trapKindName(P.Run.Trap))
       << ", " << P.Run.ExecutedInstrs << " instructions, result "
       << P.Run.ReturnValue.asInt() << "\n";
    if (!O.RecordPath.empty())
      OS << "trace written to " << O.RecordPath
         << (O.Shards > 1 ? " (one .shardN file per shard)\n" : "\n");
  }
  const SlicingProfiler &Prof = *Session.slicing();
  const DepGraph &G = Prof.graph();
  OS << "Gcost: " << uint64_t(G.numNodes()) << " nodes, "
     << uint64_t(G.numEdges()) << " edges, ";
  OS.printFixed(double(G.memoryFootprint().total()) / 1024.0, 1);
  OS << " KB, CR ";
  OS.printFixed(Prof.averageCR(), 3);
  OS << "\n";

  // Profiling is over: seal once, and every read path below — serializer,
  // cost model, dead-value sweep, optimizer — consumes the packed form.
  // (The profiler keeps its build graph for non-graph state such as
  // location activity; serialization and reports are byte-identical
  // either way.)
  FrozenGraph FG(G);
  if (obs::MetricsRegistry *Stats = Session.stats())
    FG.accountStats(*Stats);

  if (!O.DumpGraph.empty()) {
    std::FILE *F = std::fopen(O.DumpGraph.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.DumpGraph << "'\n";
      return 1;
    }
    FileOutStream FOS(F);
    writeGraph(FG, FOS);
    std::fclose(F);
    OS << "Gcost written to " << O.DumpGraph << "\n";
  }

  CostModel CM(FG);
  if (O.Report) {
    ReportOptions Opts;
    Opts.Depth = O.Client.Depth;
    LowUtilityReport Report(CM, *M, Opts);
    OS << "\n=== low-utility data structures ===\n";
    Report.print(OS, O.Client.TopK);
  }
  if (O.Overwrites) {
    OS << "\n=== locations rewritten before read ===\n";
    printOverwrites(rankOverwrites(Prof, *M, O.Client), OS, O.Client.TopK);
  }
  if (O.Predicates) {
    OS << "\n=== always-constant predicates ===\n";
    printConstantPredicates(findConstantPredicates(Prof, CM, *M, O.Client),
                            OS, O.Client.TopK);
  }
  if (O.Methods) {
    OS << "\n=== costliest method return values ===\n";
    printMethodCosts(computeMethodCosts(CM, *M), OS, O.Client.TopK);
  }
  if (O.Caches) {
    OS << "\n=== cache effectiveness (least effective first) ===\n";
    printCacheScores(rankCacheEffectiveness(CM, *M), OS, O.Client.TopK);
  }
  Session.printClientReports(*M, OS, O.Client.TopK);
  if (O.Optimize) {
    // The pipeline profiles, proposes, validates (both engines) and
    // commits or rolls back each candidate on its own; the session above
    // only supplied the human-facing reports.
    opt::PipelineOptions PO;
    PO.Engine = O.Engine;
    PO.Slicing.ContextSlots = uint32_t(O.Slots);
    PO.Passes = O.OptimizePasses;
    opt::PassManager PM(std::move(PO));
    opt::PipelineResult R = PM.run(*M);
    OS << "\n";
    opt::renderOptimizeReport(R, OS);
    if (obs::MetricsRegistry *Stats = Session.stats())
      opt::PassManager::accountStats(R, *Stats);
    if (!O.OptimizeOut.empty()) {
      const Module &Out = R.M ? *R.M : *M;
      std::FILE *F = std::fopen(O.OptimizeOut.c_str(), "wb");
      if (!F) {
        errs() << "cannot write '" << O.OptimizeOut << "'\n";
        return 1;
      }
      FileOutStream FOS(F);
      printModule(Out, FOS);
      std::fclose(F);
      OS << "rewritten program written to " << O.OptimizeOut << "\n";
    }
  }
  if (O.Dead) {
    // Under --replay there is no RunResult; the graph's own frequency total
    // is the denominator, as in offline lud-analyze.
    uint64_t ExecInstrs =
        O.ReplayPath.empty() ? P.Run.ExecutedInstrs : FG.totalFreq();
    DeadValueAnalysis DV = computeDeadValues(FG, ExecInstrs);
    OS << "\n=== bloat metrics ===\nIPD ";
    OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
    OS << "%   IPP ";
    OS.printFixed(100.0 * DV.Metrics.ipp(), 1);
    OS << "%   NLD ";
    OS.printFixed(100.0 * DV.Metrics.nld(), 1);
    OS << "%\n";
  }
  if (!emitStats(Session, O))
    return 1;
  if (!O.ReplayPath.empty())
    return 0; // Replay has no run status of its own.
  return P.Run.Status == RunStatus::Finished ? 0 : 1;
}
