//===- tools/lud-run.cpp - Command-line driver -----------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing driver: loads a textual .lud program, executes it (with
/// or without profiling), and prints the requested diagnoses. All requested
/// analyses — the Gcost-based reports and any --clients client profilers —
/// come out of ONE interpretation pass over a composed profiler pipeline.
///
///   lud-run program.lud                       # just run it
///   lud-run --report program.lud              # low-utility ranking
///   lud-run --all --slots 32 program.lud      # every Gcost analysis
///   lud-run --clients=copy,nullness,typestate --report program.lud
///
//===----------------------------------------------------------------------===//

#include "analysis/CacheCost.h"
#include "analysis/Optimizer.h"
#include "analysis/Clients.h"
#include "analysis/DeadValues.h"
#include "analysis/Report.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "profiling/GraphIO.h"
#include "support/OutStream.h"
#include "workloads/Driver.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace lud;

namespace {

struct Options {
  std::string File;
  bool Report = false;
  bool Dead = false;
  bool Overwrites = false;
  bool Predicates = false;
  bool Methods = false;
  bool Caches = false;
  bool PrintIR = false;
  bool Baseline = false;
  uint32_t Clients = 0;
  uint32_t Slots = 16;
  unsigned Depth = 4;
  size_t TopK = 15;
  std::string DumpGraph;
  std::string OptimizeOut;
};

void usage() {
  errs() << "usage: lud-run [options] <program.lud>\n"
            "  --report        rank data structures by cost/benefit\n"
            "  --dead          print IPD/IPP/NLD bloat metrics\n"
            "  --overwrites    rank locations rewritten before read\n"
            "  --predicates    list always-constant predicates\n"
            "  --methods       rank methods by return-value cost\n"
            "  --caches        rank structures by cache effectiveness\n"
            "  --all           everything above\n"
            "  --clients LIST  client analyses to run in the same pass,\n"
            "                  comma-separated: copy, nullness, typestate,\n"
            "                  or all\n"
            "  --baseline      run without instrumentation (timing)\n"
            "  --print-ir      echo the parsed program and exit\n"
            "  --dump-graph F  serialize Gcost to file F (offline use)\n"
            "  --optimize F    write a profile-optimized program to F\n"
            "  --slots N       context slots s (default 16)\n"
            "  --depth N       reference-tree height n (default 4)\n"
            "  --top K         rows per report (default 15)\n";
}

bool parseClients(const std::string &List, uint32_t &Mask) {
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Name = List.substr(Pos, Comma - Pos);
    if (Name == "copy")
      Mask |= kClientCopy;
    else if (Name == "nullness")
      Mask |= kClientNullness;
    else if (Name == "typestate")
      Mask |= kClientTypestate;
    else if (Name == "all")
      Mask |= kClientCopy | kClientNullness | kClientTypestate;
    else {
      errs() << "unknown client '" << Name
             << "' (valid: copy, nullness, typestate, all)\n";
      return false;
    }
    Pos = Comma + 1;
  }
  return true;
}

bool isPowerOfTwo(uint32_t N) { return N != 0 && (N & (N - 1)) == 0; }

bool parseArgs(int argc, char **argv, Options &O) {
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    // Options below take a value in the next argv slot; a missing value is
    // its own diagnostic, not an "unknown option".
    auto NextArg = [&]() -> const char * {
      if (I + 1 >= argc) {
        errs() << "option '" << A << "' requires an argument\n";
        return nullptr;
      }
      return argv[++I];
    };
    auto NextInt = [&](int64_t &Out) {
      const char *V = NextArg();
      if (!V)
        return false;
      Out = std::strtoll(V, nullptr, 10);
      return true;
    };
    int64_t V = 0;
    if (A == "--report") {
      O.Report = true;
    } else if (A == "--dead") {
      O.Dead = true;
    } else if (A == "--overwrites") {
      O.Overwrites = true;
    } else if (A == "--predicates") {
      O.Predicates = true;
    } else if (A == "--methods") {
      O.Methods = true;
    } else if (A == "--caches") {
      O.Caches = true;
    } else if (A == "--all") {
      O.Report = O.Dead = O.Overwrites = O.Predicates = O.Methods =
          O.Caches = true;
    } else if (A == "--baseline") {
      O.Baseline = true;
    } else if (A == "--print-ir") {
      O.PrintIR = true;
    } else if (A == "--clients" || A.rfind("--clients=", 0) == 0) {
      std::string List;
      if (A == "--clients") {
        const char *Arg = NextArg();
        if (!Arg)
          return false;
        List = Arg;
      } else {
        List = A.substr(std::strlen("--clients="));
      }
      if (!parseClients(List, O.Clients))
        return false;
    } else if (A == "--dump-graph") {
      const char *Arg = NextArg();
      if (!Arg)
        return false;
      O.DumpGraph = Arg;
    } else if (A == "--optimize") {
      const char *Arg = NextArg();
      if (!Arg)
        return false;
      O.OptimizeOut = Arg;
    } else if (A == "--slots") {
      if (!NextInt(V))
        return false;
      if (V <= 0) {
        errs() << "option '--slots' requires a positive value\n";
        return false;
      }
      O.Slots = uint32_t(V);
      if (!isPowerOfTwo(O.Slots))
        errs() << "warning: --slots " << O.Slots
               << " is not a power of two; contexts fold by modulo either "
                  "way, but results won't line up with the paper's s = 2^k "
                  "sweeps\n";
    } else if (A == "--depth") {
      if (!NextInt(V))
        return false;
      O.Depth = unsigned(V);
    } else if (A == "--top") {
      if (!NextInt(V))
        return false;
      O.TopK = size_t(V);
    } else if (!A.empty() && A[0] == '-') {
      errs() << "unknown option '" << A << "'\n";
      return false;
    } else if (O.File.empty()) {
      O.File = A;
    } else {
      errs() << "multiple input files\n";
      return false;
    }
  }
  if (O.Baseline && O.Clients) {
    errs() << "--baseline runs without instrumentation; it cannot be "
              "combined with --clients\n";
    return false;
  }
  return !O.File.empty();
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  if (!parseArgs(argc, argv, O)) {
    usage();
    return 2;
  }

  std::string Text;
  if (!readFile(O.File, Text)) {
    errs() << "cannot read '" << O.File << "'\n";
    return 1;
  }
  std::vector<std::string> Errors;
  std::unique_ptr<Module> M = parseModule(Text, Errors);
  if (!M) {
    for (const std::string &E : Errors)
      errs() << O.File << ": " << E << "\n";
    return 1;
  }

  OutStream &OS = outs();
  if (O.PrintIR) {
    printModule(*M, OS);
    return 0;
  }

  RunConfig RCfg;
  RCfg.PrintStream = &OS;

  if (O.Baseline) {
    TimedRun R = runBaseline(*M, RCfg);
    OS << "status: "
       << (R.Run.Status == RunStatus::Finished ? "finished"
                                               : trapKindName(R.Run.Trap))
       << ", " << R.Run.ExecutedInstrs << " instructions, ";
    OS.printFixed(R.Seconds * 1e3, 2);
    OS << " ms, result " << R.Run.ReturnValue.asInt() << "\n";
    return R.Run.Status == RunStatus::Finished ? 0 : 1;
  }

  // One interpretation pass: the slicing substrate plus every requested
  // client rides the same composed pipeline.
  SessionConfig SCfg;
  SCfg.Slicing.ContextSlots = O.Slots;
  SCfg.Clients = O.Clients;
  SCfg.Run = RCfg;
  ProfileSession Session(std::move(SCfg));
  TimedRun P = Session.run(*M);
  OS << "status: "
     << (P.Run.Status == RunStatus::Finished ? "finished"
                                             : trapKindName(P.Run.Trap))
     << ", " << P.Run.ExecutedInstrs << " instructions, result "
     << P.Run.ReturnValue.asInt() << "\n";
  const SlicingProfiler &Prof = *Session.slicing();
  const DepGraph &G = Prof.graph();
  OS << "Gcost: " << uint64_t(G.numNodes()) << " nodes, "
     << uint64_t(G.numEdges()) << " edges, ";
  OS.printFixed(double(G.memoryFootprint().total()) / 1024.0, 1);
  OS << " KB, CR ";
  OS.printFixed(Prof.averageCR(), 3);
  OS << "\n";

  if (!O.DumpGraph.empty()) {
    std::FILE *F = std::fopen(O.DumpGraph.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.DumpGraph << "'\n";
      return 1;
    }
    FileOutStream FOS(F);
    writeGraph(G, FOS);
    std::fclose(F);
    OS << "Gcost written to " << O.DumpGraph << "\n";
  }

  CostModel CM(G);
  if (O.Report) {
    ReportOptions Opts;
    Opts.Depth = O.Depth;
    LowUtilityReport Report(CM, *M, Opts);
    OS << "\n=== low-utility data structures ===\n";
    Report.print(OS, O.TopK);
  }
  if (O.Overwrites) {
    OS << "\n=== locations rewritten before read ===\n";
    printOverwrites(rankOverwrites(Prof, *M), OS, O.TopK);
  }
  if (O.Predicates) {
    OS << "\n=== always-constant predicates ===\n";
    std::vector<ConstantPredicateRow> Rows =
        findConstantPredicates(Prof, CM, *M);
    for (size_t I = 0; I != Rows.size() && I != O.TopK; ++I)
      OS << "  " << (Rows[I].AlwaysTrue ? "always-true " : "always-false")
         << " x" << Rows[I].Executions << "  " << Rows[I].Text << "\n";
    if (Rows.empty())
      OS << "  (none)\n";
  }
  if (O.Methods) {
    OS << "\n=== costliest method return values ===\n";
    std::vector<MethodCostRow> Rows = computeMethodCosts(CM, *M);
    for (size_t I = 0; I != Rows.size() && I != O.TopK; ++I) {
      OS << "  ";
      OS.printFixed(Rows[I].ReturnCost, 1);
      OS << "  " << Rows[I].Name << "\n";
    }
  }
  if (O.Caches) {
    OS << "\n=== cache effectiveness (least effective first) ===\n";
    printCacheScores(rankCacheEffectiveness(CM, *M), OS, O.TopK);
  }
  Session.printClientReports(*M, OS, O.TopK);
  if (!O.OptimizeOut.empty()) {
    DeadValueAnalysis DV = computeDeadValues(G, P.Run.ExecutedInstrs);
    OptimizeResult R = removeProfiledDeadCode(*M, G, DV);
    TimedRun Check = runBaseline(*R.M);
    std::FILE *F = std::fopen(O.OptimizeOut.c_str(), "wb");
    if (!F) {
      errs() << "cannot write '" << O.OptimizeOut << "'\n";
      return 1;
    }
    FileOutStream FOS(F);
    printModule(*R.M, FOS);
    std::fclose(F);
    OS << "\noptimized program written to " << O.OptimizeOut << ": removed "
       << uint64_t(R.Stats.RemovedStores) << " dead stores + "
       << uint64_t(R.Stats.RemovedPure) << " feeding instructions ("
       << P.Run.ExecutedInstrs << " -> " << Check.Run.ExecutedInstrs
       << " executed instances; output "
       << (Check.Run.SinkHash == P.Run.SinkHash ? "preserved" : "CHANGED")
       << ")\n";
  }
  if (O.Dead) {
    DeadValueAnalysis DV = computeDeadValues(G, P.Run.ExecutedInstrs);
    OS << "\n=== bloat metrics ===\nIPD ";
    OS.printFixed(100.0 * DV.Metrics.ipd(), 1);
    OS << "%   IPP ";
    OS.printFixed(100.0 * DV.Metrics.ipp(), 1);
    OS << "%   NLD ";
    OS.printFixed(100.0 * DV.Metrics.nld(), 1);
    OS << "%\n";
  }
  return P.Run.Status == RunStatus::Finished ? 0 : 1;
}
