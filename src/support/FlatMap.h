//===- support/FlatMap.h - Open-addressing hash map ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash map tuned for the profiler's event hot path:
/// power-of-two capacity, linear probing, no tombstones (the profiler only
/// ever inserts), and contiguous std::pair<Key, Value> slots so a probe is
/// one cache line touch in the common case. One key value is reserved as
/// the vacant-slot marker; inserting that exact key is still legal — it is
/// routed to a dedicated side slot — so the full key space remains usable.
///
/// Supports the subset of the std::unordered_map interface the analyses
/// consume (find/count/at/operator[]/range-for) plus an insert() that
/// reports whether the key was new, which is what DepGraph::getOrCreate
/// needs.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_FLATMAP_H
#define LUD_SUPPORT_FLATMAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lud {

/// Default bit-mixing hash for integer keys. Linear probing over a
/// power-of-two table needs avalanche in the low bits; this is the
/// splitmix64 finalizer.
struct FlatIntHash {
  size_t operator()(uint64_t K) const {
    K += 0x9E3779B97F4A7C15ULL;
    K = (K ^ (K >> 30)) * 0xBF58476D1CE4E5B9ULL;
    K = (K ^ (K >> 27)) * 0x94D049BB133111EBULL;
    return size_t(K ^ (K >> 31));
  }
};

/// Default vacant-slot marker: all-ones, which the profiler's id spaces
/// already reserve as their "absent" sentinel.
template <typename KeyT> struct FlatEmptyKey {
  static KeyT value() { return KeyT(~uint64_t(0)); }
};

template <typename KeyT, typename ValueT, typename HashT = FlatIntHash,
          typename EmptyT = FlatEmptyKey<KeyT>>
class FlatMap {
  using Slot = std::pair<KeyT, ValueT>;

public:
  FlatMap() = default;

  size_t size() const { return Count + (HasEmptyKey ? 1 : 0); }
  bool empty() const { return size() == 0; }

  void clear() {
    Slots.clear();
    Mask = 0;
    Count = 0;
    ++Gen;
    HasEmptyKey = false;
    EmptySlot.second = ValueT();
  }

  /// Ensures \p N keys fit without rehashing.
  void reserve(size_t N) {
    size_t Cap = capacityFor(N);
    if (Cap > Slots.size())
      rehash(Cap);
  }

  /// Inserts (K, V) if K is absent. Returns the mapped value and whether
  /// the key was newly inserted (std::map-style, minus the iterator).
  std::pair<ValueT &, bool> insert(const KeyT &K, ValueT V = ValueT()) {
    if (K == EmptyT::value()) {
      bool Fresh = !HasEmptyKey;
      if (Fresh) {
        HasEmptyKey = true;
        EmptySlot = {K, std::move(V)};
      }
      return {EmptySlot.second, Fresh};
    }
    growIfNeeded();
    size_t Idx = probe(K);
    if (Slots[Idx].first == K)
      return {Slots[Idx].second, false};
    Slots[Idx] = {K, std::move(V)};
    ++Count;
    return {Slots[Idx].second, true};
  }

  ValueT &operator[](const KeyT &K) { return insert(K).first; }

  //===--------------------------------------------------------------------===
  // Raw-slot API: callers on a hot path can memoize the slot index of a key
  // and re-access it without hashing, as long as the generation (bumped on
  // every rehash and clear) still matches.
  //===--------------------------------------------------------------------===

  uint64_t generation() const { return Gen; }

  /// Like insert(), but returns the raw slot index for use with valueAt().
  std::pair<size_t, bool> insertSlot(const KeyT &K, ValueT V = ValueT()) {
    if (K == EmptyT::value()) {
      bool Fresh = !HasEmptyKey;
      if (Fresh) {
        HasEmptyKey = true;
        EmptySlot = {K, std::move(V)};
      }
      return {Slots.size(), Fresh};
    }
    growIfNeeded();
    size_t Idx = probe(K);
    if (Slots[Idx].first == K)
      return {Idx, false};
    Slots[Idx] = {K, std::move(V)};
    ++Count;
    return {Idx, true};
  }

  /// The value in slot \p RawIdx; only valid for an index obtained from
  /// insertSlot() in the current generation.
  ValueT &valueAt(size_t RawIdx) { return slotAt(RawIdx).second; }

  //===--------------------------------------------------------------------===
  // Iteration: normal slots are indices [0, Slots.size()); the reserved-key
  // side slot is the pseudo-index Slots.size(); end() is one past that.
  //===--------------------------------------------------------------------===

  template <typename MapT, typename SlotT> class IterImpl {
  public:
    IterImpl(MapT *M, size_t I) : M(M), Idx(I) { skipVacant(); }
    SlotT &operator*() const { return M->slotAt(Idx); }
    SlotT *operator->() const { return &M->slotAt(Idx); }
    IterImpl &operator++() {
      ++Idx;
      skipVacant();
      return *this;
    }
    bool operator==(const IterImpl &O) const { return Idx == O.Idx; }
    bool operator!=(const IterImpl &O) const { return Idx != O.Idx; }

  private:
    void skipVacant() {
      size_t N = M->Slots.size();
      while (Idx < N && M->Slots[Idx].first == EmptyT::value())
        ++Idx;
      if (Idx == N && !M->HasEmptyKey)
        ++Idx;
    }
    MapT *M;
    size_t Idx;
  };
  using iterator = IterImpl<FlatMap, Slot>;
  using const_iterator = IterImpl<const FlatMap, const Slot>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, Slots.size() + 1}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Slots.size() + 1}; }

  iterator find(const KeyT &K) { return {this, findIndex(K)}; }
  const_iterator find(const KeyT &K) const { return {this, findIndex(K)}; }

  size_t count(const KeyT &K) const {
    return findIndex(K) != Slots.size() + 1 ? 1 : 0;
  }
  const ValueT &at(const KeyT &K) const {
    size_t Idx = findIndex(K);
    assert(Idx != Slots.size() + 1 && "FlatMap::at: key not present");
    return slotAt(Idx).second;
  }

  /// Bytes held by the table itself (for memory-footprint accounting; the
  /// values' own heap allocations are the caller's to add).
  size_t memoryBytes() const { return Slots.capacity() * sizeof(Slot); }

  /// Smallest power-of-two capacity holding \p N keys at 3/4 load. Pure and
  /// public so the overflow boundary is unit-testable without allocating.
  static size_t capacityFor(size_t N) {
    // Max load factor 3/4: grow while N > 3*Cap/4, phrased so neither
    // side can overflow — the old `Cap * 3 < N * 4` form wrapped for
    // N > SIZE_MAX / 4 and spun forever at a stuck capacity.
    size_t Cap = 8;
    while (N > Cap - Cap / 4 && Cap <= (SIZE_MAX >> 1))
      Cap <<= 1;
    return Cap;
  }

private:
  friend iterator;
  friend const_iterator;

  Slot &slotAt(size_t Idx) {
    return Idx == Slots.size() ? EmptySlot : Slots[Idx];
  }
  const Slot &slotAt(size_t Idx) const {
    return Idx == Slots.size() ? EmptySlot : Slots[Idx];
  }

  /// Index of the slot holding K, or of the vacant slot where it belongs.
  size_t probe(const KeyT &K) const {
    size_t Idx = HashT{}(K)&Mask;
    while (!(Slots[Idx].first == EmptyT::value()) &&
           !(Slots[Idx].first == K))
      Idx = (Idx + 1) & Mask;
    return Idx;
  }

  /// end()-style index of K, for find/count/at.
  size_t findIndex(const KeyT &K) const {
    size_t End = Slots.size() + 1;
    if (K == EmptyT::value())
      return HasEmptyKey ? Slots.size() : End;
    if (Slots.empty())
      return End;
    size_t Idx = probe(K);
    return Slots[Idx].first == K ? Idx : End;
  }

  void growIfNeeded() {
    if (Slots.empty())
      rehash(8);
    else if (Count + 1 > Slots.size() - Slots.size() / 4)
      rehash(Slots.size() * 2);
  }

  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && "capacity must be a power of two");
    ++Gen;
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewCap, Slot{EmptyT::value(), ValueT()});
    Mask = NewCap - 1;
    for (Slot &S : Old) {
      if (S.first == EmptyT::value())
        continue;
      size_t Idx = HashT{}(S.first) & Mask;
      while (!(Slots[Idx].first == EmptyT::value()))
        Idx = (Idx + 1) & Mask;
      Slots[Idx] = std::move(S);
    }
  }

  std::vector<Slot> Slots;
  size_t Mask = 0;
  size_t Count = 0;
  uint64_t Gen = 0;
  bool HasEmptyKey = false;
  Slot EmptySlot{EmptyT::value(), ValueT()};
};

} // namespace lud

#endif // LUD_SUPPORT_FLATMAP_H
