//===- support/WorkerPool.h - Persistent worker-thread pool ----*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one worker pool behind both the batch drivers and the profiling
/// service, generalized from the ad-hoc claim-counter loop that
/// workloads/ParallelDriver used to spawn per call. A WorkerPool owns N
/// long-lived threads draining a FIFO queue of type-erased jobs; batch
/// callers use the forEachJob() wrapper, which keeps the old contract
/// exactly (indexed jobs, arbitrary completion order, Threads <= 1 runs
/// inline on the calling thread — the reference every merged result is
/// tested against), while the service submits open-ended per-session
/// drain jobs and relies on FIFO start order.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_WORKERPOOL_H
#define LUD_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lud {

class WorkerPool {
public:
  /// Spawns max(1, Threads) worker threads immediately.
  explicit WorkerPool(unsigned Threads);
  /// stop()s: running jobs finish, queued jobs are discarded.
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues \p Job; jobs start in FIFO order. After stop() the job is
  /// silently dropped — the pool is shutting down and its owner has
  /// already unwound whatever the job would have updated.
  void submit(std::function<void()> Job);

  /// Blocks until the queue is empty and no job is running.
  void waitIdle();

  /// Discards queued jobs, waits for running jobs, joins the workers.
  /// Idempotent.
  void stop();

  unsigned threads() const { return NumThreads; }

private:
  void workerMain();

  std::mutex Mu;
  std::condition_variable WorkCV; // workers wait here for jobs
  std::condition_variable IdleCV; // waitIdle() waits here for the drain
  std::deque<std::function<void()>> Queue;
  unsigned Running = 0;
  unsigned NumThreads = 0;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Runs \p Body(Job) for every Job in [0, Jobs), at most \p Threads at a
/// time. Jobs complete in arbitrary order — callers index results by job
/// id to stay deterministic. Threads <= 1 (or a single job) runs the whole
/// batch inline on the calling thread, with no pool.
template <class Fn> void forEachJob(unsigned Jobs, unsigned Threads, Fn Body) {
  if (Threads <= 1 || Jobs <= 1) {
    for (unsigned J = 0; J != Jobs; ++J)
      Body(J);
    return;
  }
  WorkerPool Pool(Threads < Jobs ? Threads : Jobs);
  for (unsigned J = 0; J != Jobs; ++J)
    Pool.submit([&Body, J] { Body(J); });
  Pool.waitIdle();
}

} // namespace lud

#endif // LUD_SUPPORT_WORKERPOOL_H
