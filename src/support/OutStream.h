//===- support/OutStream.h - Lightweight output streams --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A raw_ostream-style output abstraction so library code never includes
/// <iostream> (which injects static constructors). Two concrete sinks are
/// provided: an in-memory string stream and a FILE*-backed stream.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_OUTSTREAM_H
#define LUD_SUPPORT_OUTSTREAM_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace lud {

/// Abstract byte sink with formatting operators for the types the library
/// prints. Subclasses implement writeBytes.
class OutStream {
public:
  virtual ~OutStream();

  OutStream &operator<<(std::string_view Str) {
    writeBytes(Str.data(), Str.size());
    return *this;
  }
  OutStream &operator<<(const char *Str) {
    return *this << std::string_view(Str);
  }
  OutStream &operator<<(const std::string &Str) {
    return *this << std::string_view(Str);
  }
  OutStream &operator<<(char C) {
    writeBytes(&C, 1);
    return *this;
  }
  OutStream &operator<<(bool B) { return *this << (B ? "true" : "false"); }
  OutStream &operator<<(int64_t N);
  OutStream &operator<<(uint64_t N);
  OutStream &operator<<(int32_t N) { return *this << int64_t(N); }
  OutStream &operator<<(uint32_t N) { return *this << uint64_t(N); }
  OutStream &operator<<(double D);

  /// Writes \p D with \p Digits digits after the decimal point.
  OutStream &printFixed(double D, unsigned Digits);

  /// Writes \p Str left-padded with spaces to at least \p Width columns.
  OutStream &padded(std::string_view Str, unsigned Width);

private:
  virtual void writeBytes(const char *Data, size_t Size) = 0;
};

/// OutStream that appends to an owned std::string.
class StringOutStream : public OutStream {
public:
  const std::string &str() const { return Buffer; }
  void clear() { Buffer.clear(); }

private:
  void writeBytes(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

  std::string Buffer;
};

/// OutStream over a borrowed FILE*. Does not close the file.
class FileOutStream : public OutStream {
public:
  explicit FileOutStream(std::FILE *F) : File(F) {}

private:
  void writeBytes(const char *Data, size_t Size) override {
    std::fwrite(Data, 1, Size, File);
  }

  std::FILE *File;
};

/// Returns a stream writing to stdout. Safe to call from tools and tests.
OutStream &outs();

/// Returns a stream writing to stderr.
OutStream &errs();

} // namespace lud

#endif // LUD_SUPPORT_OUTSTREAM_H
