//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's hand-rolled RTTI templates. A class
/// hierarchy opts in by providing a static `classof(const Base *)` predicate
/// (typically implemented over a kind discriminator).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_CASTING_H
#define LUD_SUPPORT_CASTING_H

#include <cassert>

namespace lud {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace lud

#endif // LUD_SUPPORT_CASTING_H
