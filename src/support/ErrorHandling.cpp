//===- support/ErrorHandling.cpp - Fatal error reporting ------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace lud;

void lud::reportFatalError(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "lud fatal error: %s (at %s:%u)\n", Msg, File, Line);
  std::fflush(stderr);
  std::abort();
}
