//===- support/WorkerPool.cpp - Persistent worker-thread pool --------------===//

#include "support/WorkerPool.h"

using namespace lud;

WorkerPool::WorkerPool(unsigned Threads) {
  NumThreads = Threads ? Threads : 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lk(Mu);
    if (Stopping)
      return;
    Queue.push_back(std::move(Job));
  }
  WorkCV.notify_one();
}

void WorkerPool::waitIdle() {
  std::unique_lock<std::mutex> Lk(Mu);
  IdleCV.wait(Lk, [this] { return Queue.empty() && Running == 0; });
}

void WorkerPool::stop() {
  {
    std::lock_guard<std::mutex> Lk(Mu);
    Stopping = true;
    Queue.clear();
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  IdleCV.notify_all();
}

void WorkerPool::workerMain() {
  std::unique_lock<std::mutex> Lk(Mu);
  for (;;) {
    WorkCV.wait(Lk, [this] { return Stopping || !Queue.empty(); });
    if (Stopping)
      return;
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    ++Running;
    Lk.unlock();
    Job();
    Lk.lock();
    --Running;
    if (Queue.empty() && Running == 0)
      IdleCV.notify_all();
  }
}
