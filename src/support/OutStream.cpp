//===- support/OutStream.cpp - Lightweight output streams ----------------===//

#include "support/OutStream.h"

#include <cinttypes>
#include <cstring>

using namespace lud;

OutStream::~OutStream() = default;

OutStream &OutStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  writeBytes(Buf, Len);
  return *this;
}

OutStream &OutStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  writeBytes(Buf, Len);
  return *this;
}

OutStream &OutStream::operator<<(double D) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  writeBytes(Buf, Len);
  return *this;
}

OutStream &OutStream::printFixed(double D, unsigned Digits) {
  char Buf[64];
  int Len = std::snprintf(Buf, sizeof(Buf), "%.*f", int(Digits), D);
  writeBytes(Buf, Len);
  return *this;
}

OutStream &OutStream::padded(std::string_view Str, unsigned Width) {
  for (size_t I = Str.size(); I < Width; ++I)
    *this << ' ';
  return *this << Str;
}

OutStream &lud::outs() {
  static FileOutStream Stream(stdout);
  return Stream;
}

OutStream &lud::errs() {
  static FileOutStream Stream(stderr);
  return Stream;
}
