//===- support/FlatSet.h - Open-addressing hash set ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The set sibling of FlatMap.h: open addressing, power-of-two capacity,
/// linear probing, insert-only (no erase, hence no tombstones). Used for
/// the profiler's edge-dedup tables and the per-function context sets,
/// where every tracked event performs one membership insert. One key is
/// reserved as the vacant marker but remains insertable via a side flag.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_FLATSET_H
#define LUD_SUPPORT_FLATSET_H

#include "support/FlatMap.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lud {

template <typename KeyT, typename HashT = FlatIntHash,
          typename EmptyT = FlatEmptyKey<KeyT>>
class FlatSet {
public:
  FlatSet() = default;

  size_t size() const { return Count + (HasEmptyKey ? 1 : 0); }
  bool empty() const { return size() == 0; }

  void clear() {
    Keys.clear();
    Mask = 0;
    Count = 0;
    HasEmptyKey = false;
  }

  void reserve(size_t N) {
    // Max load factor 3/4, phrased overflow-free (see FlatMap::capacityFor).
    size_t Cap = 8;
    while (N > Cap - Cap / 4 && Cap <= (SIZE_MAX >> 1))
      Cap <<= 1;
    if (Cap > Keys.size())
      rehash(Cap);
  }

  /// Returns true if \p K was newly inserted.
  bool insert(const KeyT &K) {
    if (K == EmptyT::value()) {
      bool Fresh = !HasEmptyKey;
      HasEmptyKey = true;
      return Fresh;
    }
    growIfNeeded();
    size_t Idx = probe(K);
    if (Keys[Idx] == K)
      return false;
    Keys[Idx] = K;
    ++Count;
    return true;
  }

  bool contains(const KeyT &K) const {
    if (K == EmptyT::value())
      return HasEmptyKey;
    if (Keys.empty())
      return false;
    return Keys[probe(K)] == K;
  }

  class const_iterator {
  public:
    const_iterator(const FlatSet *S, size_t I) : S(S), Idx(I) { skipVacant(); }
    const KeyT &operator*() const {
      return Idx == S->Keys.size() ? EmptySentinel() : S->Keys[Idx];
    }
    const_iterator &operator++() {
      ++Idx;
      skipVacant();
      return *this;
    }
    bool operator==(const const_iterator &O) const { return Idx == O.Idx; }
    bool operator!=(const const_iterator &O) const { return Idx != O.Idx; }

  private:
    static const KeyT &EmptySentinel() {
      static const KeyT K = EmptyT::value();
      return K;
    }
    void skipVacant() {
      size_t N = S->Keys.size();
      while (Idx < N && S->Keys[Idx] == EmptyT::value())
        ++Idx;
      if (Idx == N && !S->HasEmptyKey)
        ++Idx;
    }
    const FlatSet *S;
    size_t Idx;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Keys.size() + 1}; }

  size_t memoryBytes() const { return Keys.capacity() * sizeof(KeyT); }

private:
  friend const_iterator;

  size_t probe(const KeyT &K) const {
    size_t Idx = HashT{}(K)&Mask;
    while (!(Keys[Idx] == EmptyT::value()) && !(Keys[Idx] == K))
      Idx = (Idx + 1) & Mask;
    return Idx;
  }

  void growIfNeeded() {
    if (Keys.empty())
      rehash(8);
    else if (Count + 1 > Keys.size() - Keys.size() / 4)
      rehash(Keys.size() * 2);
  }

  void rehash(size_t NewCap) {
    assert((NewCap & (NewCap - 1)) == 0 && "capacity must be a power of two");
    std::vector<KeyT> Old = std::move(Keys);
    Keys.assign(NewCap, EmptyT::value());
    Mask = NewCap - 1;
    for (const KeyT &K : Old) {
      if (K == EmptyT::value())
        continue;
      size_t Idx = HashT{}(K)&Mask;
      while (!(Keys[Idx] == EmptyT::value()))
        Idx = (Idx + 1) & Mask;
      Keys[Idx] = K;
    }
  }

  std::vector<KeyT> Keys;
  size_t Mask = 0;
  size_t Count = 0;
  bool HasEmptyKey = false;
};

} // namespace lud

#endif // LUD_SUPPORT_FLATSET_H
