//===- support/ErrorHandling.h - Fatal error reporting ---------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting helpers used across the library in place of
/// exceptions. Programmatic errors abort with a message and source location.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_ERRORHANDLING_H
#define LUD_SUPPORT_ERRORHANDLING_H

namespace lud {

/// Prints \p Msg with the source location to stderr and aborts. Used for
/// invariant violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   unsigned Line);

} // namespace lud

/// Marks a point in code that should never be reached. Unlike assert, the
/// check survives NDEBUG builds.
#define lud_unreachable(MSG) ::lud::reportFatalError(MSG, __FILE__, __LINE__)

#endif // LUD_SUPPORT_ERRORHANDLING_H
