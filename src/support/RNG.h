//===- support/RNG.h - Deterministic random numbers ------------*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, seedable SplitMix64 generator. Workload generators use this so
/// every run of a benchmark executes the identical instruction stream; the
/// library core never draws randomness at all.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_SUPPORT_RNG_H
#define LUD_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace lud {

/// SplitMix64: tiny, fast, and statistically adequate for workload shaping.
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow bound must be positive");
    return next() % Bound;
  }

  /// Returns a value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "nextInRange requires Lo <= Hi");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  /// Derives an independent child generator for stream \p StreamId. Pure in
  /// (current state, StreamId): splitting the same parent with the same id
  /// yields the same child no matter how many draws other streams have
  /// taken, so a fuzzing run can hand stream k to run k and reproduce any
  /// single run in isolation.
  RNG split(uint64_t StreamId) const {
    uint64_t Z = State + (StreamId + 1) * 0x9E3779B97F4A7C15ULL;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return RNG(Z ^ (Z >> 31));
  }

private:
  uint64_t State;
};

} // namespace lud

#endif // LUD_SUPPORT_RNG_H
