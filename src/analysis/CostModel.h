//===- analysis/CostModel.h - Relative abstract costs/benefits -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost side of the paper (Section 2.2 and 3.1):
///   - abstract cost (Definition 4): total frequency of the backward slice;
///   - HRAC (Definition 5): single-hop heap-relative abstract cost — the
///     stack work since the last heap reads;
///   - HRAB (Definition 6): the forward dual — the stack work done with the
///     value before it is written back into the heap;
///   - RAC/RAB per abstract heap location (mean over its writers/readers);
///   - n-RAC / n-RAB (Definition 7): aggregation over an object reference
///     tree of bounded height (default n = 4, the HashSet chain length).
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_COSTMODEL_H
#define LUD_ANALYSIS_COSTMODEL_H

#include "profiling/DepGraph.h"

#include <unordered_map>
#include <vector>

namespace lud {

/// HRAB plus consumption flags (Section 3.1's "special treatment" inputs).
struct BenefitInfo {
  uint64_t Benefit = 0;
  /// The value can flow into a branch condition.
  bool ReachesPredicate = false;
  /// The value can flow into a native call (program output).
  bool ReachesNative = false;
};

/// Per-abstract-location relative cost/benefit (Definitions 5/6 averaged
/// over the location's writer/reader nodes).
struct LocCostBenefit {
  double Rac = 0;
  double Rab = 0;
  uint64_t NumWriters = 0;
  uint64_t NumReaders = 0;
  bool ReachesPredicate = false;
  bool ReachesNative = false;
};

/// Definition 7 aggregates over the reference tree.
struct ObjectCostBenefit {
  double NRac = 0;
  double NRab = 0;
  uint64_t FieldsCounted = 0;
  uint64_t TreeObjects = 0;
  bool ReachesPredicate = false;
  bool ReachesNative = false;
};

/// Query object over a finished Gcost. All traversal results are memoized;
/// the graph must not change afterwards.
class CostModel {
public:
  explicit CostModel(const DepGraph &G);

  const DepGraph &graph() const { return G; }

  /// Definition 4: sum of frequencies of all nodes that reach \p N
  /// (including N itself).
  uint64_t abstractCost(NodeId N) const;

  /// Definition 5: like abstractCost but traversal refuses to enter
  /// heap-reading nodes — one heap-to-heap hop of stack work.
  uint64_t hrac(NodeId N) const;

  /// Definition 6: forward dual of hrac; traversal refuses to enter
  /// heap-writing nodes. Also reports consumer reachability.
  const BenefitInfo &hrab(NodeId N) const;

  /// RAC/RAB for one abstract heap location.
  LocCostBenefit locCostBenefit(const HeapLoc &L) const;

  /// n-RAC and n-RAB for the object(s) tagged \p RootTag, aggregating field
  /// RAC/RABs over the reference tree of height \p Depth (cycles cut).
  ObjectCostBenefit objectCostBenefit(uint64_t RootTag, unsigned Depth) const;

  /// All field slots observed (written or read) on objects tagged \p Tag.
  const std::vector<FieldSlot> &fieldsOf(uint64_t Tag) const;

  /// Tags whose allocations the graph recorded, in deterministic order.
  std::vector<uint64_t> allTags() const;

private:
  const DepGraph &G;
  /// tag -> observed field slots (sorted).
  std::unordered_map<uint64_t, std::vector<FieldSlot>> FieldsByTag;
  mutable std::unordered_map<NodeId, uint64_t> HracCache;
  mutable std::unordered_map<NodeId, BenefitInfo> HrabCache;
};

} // namespace lud

#endif // LUD_ANALYSIS_COSTMODEL_H
