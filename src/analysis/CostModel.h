//===- analysis/CostModel.h - Relative abstract costs/benefits -*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost side of the paper (Section 2.2 and 3.1):
///   - abstract cost (Definition 4): total frequency of the backward slice;
///   - HRAC (Definition 5): single-hop heap-relative abstract cost — the
///     stack work since the last heap reads;
///   - HRAB (Definition 6): the forward dual — the stack work done with the
///     value before it is written back into the heap;
///   - RAC/RAB per abstract heap location (mean over its writers/readers);
///   - n-RAC / n-RAB (Definition 7): aggregation over an object reference
///     tree of bounded height (default n = 4, the HashSet chain length).
///
/// The model reads the sealed graph representation (profiling/FrozenGraph.h):
/// closures stream CSR adjacency and SoA attribute columns, and the
/// per-node memo/visited state is dense arrays indexed by NodeId, so the
/// traversals stay cache-resident at the paper's 139K-860K node scale.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_COSTMODEL_H
#define LUD_ANALYSIS_COSTMODEL_H

#include "profiling/FrozenGraph.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace lud {

/// HRAB plus consumption flags (Section 3.1's "special treatment" inputs).
struct BenefitInfo {
  uint64_t Benefit = 0;
  /// The value can flow into a branch condition.
  bool ReachesPredicate = false;
  /// The value can flow into a native call (program output).
  bool ReachesNative = false;
};

/// Per-abstract-location relative cost/benefit (Definitions 5/6 averaged
/// over the location's writer/reader nodes).
struct LocCostBenefit {
  double Rac = 0;
  double Rab = 0;
  uint64_t NumWriters = 0;
  uint64_t NumReaders = 0;
  bool ReachesPredicate = false;
  bool ReachesNative = false;
};

/// Definition 7 aggregates over the reference tree.
struct ObjectCostBenefit {
  double NRac = 0;
  double NRab = 0;
  uint64_t FieldsCounted = 0;
  uint64_t TreeObjects = 0;
  bool ReachesPredicate = false;
  bool ReachesNative = false;
};

/// Query object over a sealed Gcost. All traversal results are memoized;
/// the graph must outlive the model.
class CostModel {
public:
  /// Reads \p G directly — the seal-once pipeline the tools use.
  explicit CostModel(const FrozenGraph &G);

  /// Convenience: seals a copy of \p DG and owns the result. Analysis
  /// results and serialization are byte-identical to sealing at the call
  /// site; prefer the FrozenGraph overload when several consumers share
  /// one graph.
  explicit CostModel(const DepGraph &DG);

  const FrozenGraph &graph() const { return G; }

  /// Definition 4: sum of frequencies of all nodes that reach \p N
  /// (including N itself).
  uint64_t abstractCost(NodeId N) const;

  /// Definition 5: like abstractCost but traversal refuses to enter
  /// heap-reading nodes — one heap-to-heap hop of stack work.
  uint64_t hrac(NodeId N) const;

  /// Definition 6: forward dual of hrac; traversal refuses to enter
  /// heap-writing nodes. Also reports consumer reachability.
  const BenefitInfo &hrab(NodeId N) const;

  /// RAC/RAB for one abstract heap location.
  LocCostBenefit locCostBenefit(const HeapLoc &L) const;

  /// n-RAC and n-RAB for the object(s) tagged \p RootTag, aggregating field
  /// RAC/RABs over the reference tree of height \p Depth (cycles cut).
  ObjectCostBenefit objectCostBenefit(uint64_t RootTag, unsigned Depth) const;

  /// All field slots observed (written or read) on objects tagged \p Tag.
  const std::vector<FieldSlot> &fieldsOf(uint64_t Tag) const;

  /// Tags whose allocations the graph recorded, in deterministic order.
  std::vector<uint64_t> allTags() const;

private:
  void init();

  /// Set when this model sealed its own graph (DepGraph constructor).
  std::unique_ptr<FrozenGraph> Owned;
  const FrozenGraph &G;
  /// tag -> observed field slots (sorted).
  std::unordered_map<uint64_t, std::vector<FieldSlot>> FieldsByTag;
  /// Dense per-node memo columns; Valid bitmaps gate them (a saturated
  /// cost is a legal value, so no sentinel encoding).
  mutable std::vector<uint64_t> HracCache;
  mutable std::vector<uint8_t> HracValid;
  mutable std::vector<BenefitInfo> HrabCache;
  mutable std::vector<uint8_t> HrabValid;
  /// Epoch-stamped visited marks: a closure bumps the epoch instead of
  /// clearing N bytes per query.
  mutable std::vector<uint32_t> VisitMark;
  mutable uint32_t VisitEpoch = 0;
  mutable std::vector<NodeId> WorkScratch;
};

} // namespace lud

#endif // LUD_ANALYSIS_COSTMODEL_H
