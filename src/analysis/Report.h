//===- analysis/Report.h - Low-utility data structure ranking --*- C++ -*-===//
//
// Part of the lud project: a reproduction of "Finding Low-Utility Data
// Structures" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relative object cost-benefit analysis of Section 3: every allocation
/// site is scored with the n-RAC / n-RAB of its data structure (aggregated
/// over contexts), and sites are ranked by cost-benefit imbalance. This is
/// the report a programmer reads to find low-utility structures; the six
/// case-study benchmarks assert the planted structures rank at the top.
///
//===----------------------------------------------------------------------===//

#ifndef LUD_ANALYSIS_REPORT_H
#define LUD_ANALYSIS_REPORT_H

#include "analysis/Clients.h"
#include "analysis/CostModel.h"
#include "ir/Ids.h"
#include "profiling/ClientSet.h"

#include <string>
#include <vector>

namespace lud {

class Module;
class OutStream;

/// Weight applied to a field whose value reaches a consumer of the given
/// kind (Section 1's weighted benefit; Section 3.1's special treatment).
enum class ConsumerWeight : uint8_t {
  /// Consumer reachability adds no benefit.
  Zero,
  /// Adds ReportOptions::LargeBenefit to the structure's n-RAB.
  Large,
  /// The structure can never be low-utility (ratio forced to 0).
  Infinite,
};

struct ReportOptions {
  /// Reference-tree height n of Definition 7. The paper uses 4 (the chain
  /// length of the most complex JDK container, HashSet).
  unsigned Depth = 4;
  /// Benefit weight when a field's value reaches a branch condition.
  ConsumerWeight PredicateWeight = ConsumerWeight::Large;
  /// Benefit weight when a field's value reaches a native (program
  /// output). Section 1 assigns output-reaching values infinite weight;
  /// the default here is Large because the report aggregates per
  /// allocation site: one output-reaching instance would otherwise grant
  /// amnesty to thousands of wasted ones (e.g. the sunflow clone chain,
  /// whose final clone is rendered). Set to Infinite for strict Section 1
  /// weighting.
  ConsumerWeight NativeWeight = ConsumerWeight::Large;
  /// The "large RAB" constant used by ConsumerWeight::Large.
  double LargeBenefit = 1e4;
  /// Ignore sites whose total n-RAC is below this (noise floor).
  double MinCost = 1.0;
};

/// One ranked allocation site.
struct SiteScore {
  AllocSiteId Site = kNoAllocSite;
  std::string Description;
  /// Sums over this site's context-annotated tags.
  double NRac = 0;
  double NRab = 0;
  /// NRac / NRab after consumer weighting; the ranking key. Structures
  /// whose fields are never read score NRac / epsilon.
  double Ratio = 0;
  uint64_t Writes = 0;
  uint64_t Reads = 0;
  uint32_t NumContexts = 0;
  bool ReachesPredicate = false;
  bool ReachesNative = false;
};

/// The full ranking, most suspicious first.
class LowUtilityReport {
public:
  /// Builds the ranking from a finished cost model. \p M must be the module
  /// the graph was profiled from (for site descriptions and field names).
  LowUtilityReport(const CostModel &CM, const Module &M,
                   ReportOptions Opts = {});

  const std::vector<SiteScore> &sites() const { return Sites; }
  const ReportOptions &options() const { return Opts; }

  /// Rank (0-based) of \p Site in the report, or -1 if absent.
  int rankOf(AllocSiteId Site) const;

  /// Writes the top \p TopK rows as a table.
  void print(OutStream &OS, size_t TopK = 20) const;

  /// Restricts the ranking to sites allocating one of \p Classes — the
  /// "problematic collections" client of Section 3.2.
  std::vector<SiteScore>
  filterByClass(const Module &M, const std::vector<ClassId> &Classes) const;

private:
  ReportOptions Opts;
  std::vector<SiteScore> Sites;
};

//===----------------------------------------------------------------------===
// Per-client report sections (Section 3.2's diagnosis clients). These render
// the client profilers' findings uniformly for every consumer of a profile
// session — the CLI's --clients sections, examples, and tests compare their
// output byte for byte between single-pass and separate-pass runs.
//===----------------------------------------------------------------------===

class CopyProfiler;
class NullnessProfiler;
class TypestateProfiler;

/// Heap-to-heap copy chains with their intermediate stack hops, highest
/// copy count first (Figure 2(c)).
void printCopyChains(const CopyProfiler &P, const Module &M, OutStream &OS,
                     size_t TopK = 10);

/// The recorded null-propagation flow from origin to dereference, if a
/// null-dereference trap fired (Figure 2(a)).
void printNullPropagation(const NullnessProfiler &P, const Module &M,
                          OutStream &OS);

/// The merged typestate event history and protocol violations
/// (Figure 2(b)).
void printTypestateFindings(const TypestateProfiler &P, const Module &M,
                            OutStream &OS, size_t TopK = 10);

/// Overwrite ranking table (rankOverwrites rows), worst offender first.
void printOverwrites(const std::vector<OverwriteRow> &Rows, OutStream &OS,
                     size_t TopK = 10);

/// Always-constant predicates (findConstantPredicates rows); "(none)" when
/// empty.
void printConstantPredicates(const std::vector<ConstantPredicateRow> &Rows,
                             OutStream &OS, size_t TopK = 10);

/// Method return-value costs (computeMethodCosts rows), costliest first.
void printMethodCosts(const std::vector<MethodCostRow> &Rows, OutStream &OS,
                      size_t TopK = 10);

/// Renders the enabled clients' "=== ... ===" headed report sections in
/// the canonical order (copy, nullness, typestate). A client's section
/// prints only when its bit is set in \p Clients AND its profiler pointer
/// is live, so an unprepared or partially configured session degrades to
/// fewer sections rather than a crash. ProfileSession::printClientReports
/// and the service's report renderer both route through this — the one
/// place the section headers are spelled.
void printClientSections(ClientSet Clients, const CopyProfiler *Copy,
                         const NullnessProfiler *Null,
                         const TypestateProfiler *Type, const Module &M,
                         OutStream &OS, size_t TopK = 15);

} // namespace lud

#endif // LUD_ANALYSIS_REPORT_H
