//===- analysis/DeadValues.cpp - Ultimately-dead value metrics -------------===//

#include "analysis/DeadValues.h"

using namespace lud;

namespace {

/// Marks everything backward-reachable (via In edges) from the seed set.
void backwardMark(const FrozenGraph &G, const std::vector<NodeId> &Seeds,
                  std::vector<bool> &Mark) {
  std::vector<NodeId> Work(Seeds);
  for (NodeId S : Seeds)
    Mark[S] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    for (NodeId P : G.in(N)) {
      if (Mark[P])
        continue;
      Mark[P] = true;
      Work.push_back(P);
    }
  }
}

} // namespace

DeadValueAnalysis lud::computeDeadValues(const FrozenGraph &G,
                                         uint64_t ExecutedInstrs) {
  const size_t N = G.numNodes();
  DeadValueAnalysis Out;
  Out.Dead.assign(N, false);
  Out.PredicateOnly.assign(N, false);

  std::vector<NodeId> Predicates, Natives, DeadSinks;
  for (NodeId I = 0; I != NodeId(N); ++I) {
    switch (G.consumer(I)) {
    case ConsumerKind::Predicate:
      Predicates.push_back(I);
      break;
    case ConsumerKind::Native:
      Natives.push_back(I);
      break;
    case ConsumerKind::None:
      if (G.outDegree(I) == 0)
        DeadSinks.push_back(I); // The set D.
      break;
    }
  }

  std::vector<bool> ReachesPred(N, false), ReachesNative(N, false),
      ReachesDead(N, false);
  backwardMark(G, Predicates, ReachesPred);
  backwardMark(G, Natives, ReachesNative);
  backwardMark(G, DeadSinks, ReachesDead);

  Out.Metrics.TotalInstrInstances = ExecutedInstrs;
  Out.Metrics.TotalNodes = N;
  for (NodeId I = 0; I != NodeId(N); ++I) {
    bool IsConsumer = G.consumer(I) != ConsumerKind::None;
    // D*: leads only to dead sinks, i.e. reaches no consumer at all.
    if (!IsConsumer && !ReachesPred[I] && !ReachesNative[I]) {
      Out.Dead[I] = true;
      ++Out.Metrics.DeadNodes;
      Out.Metrics.DeadFreq += G.freq(I);
      continue;
    }
    // P*: every forward path ends at a predicate — it reaches predicates
    // and can reach neither a native nor a dead sink.
    if (!IsConsumer && ReachesPred[I] && !ReachesNative[I] &&
        !ReachesDead[I]) {
      Out.PredicateOnly[I] = true;
      Out.Metrics.PredOnlyFreq += G.freq(I);
    }
  }
  return Out;
}

DeadValueAnalysis lud::computeDeadValues(const DepGraph &G,
                                         uint64_t ExecutedInstrs) {
  return computeDeadValues(FrozenGraph(G), ExecutedInstrs);
}
