//===- analysis/Report.cpp - Low-utility data structure ranking ------------===//

#include "analysis/Report.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "profiling/CopyProfiler.h"
#include "profiling/NullnessProfiler.h"
#include "profiling/TypestateProfiler.h"
#include "support/OutStream.h"

#include <algorithm>
#include <map>
#include <numeric>

using namespace lud;

LowUtilityReport::LowUtilityReport(const CostModel &CM, const Module &M,
                                   ReportOptions Opts)
    : Opts(Opts) {
  const FrozenGraph &G = CM.graph();

  // Aggregate tag-level cost/benefit per allocation site.
  std::map<AllocSiteId, SiteScore> BySite;
  for (uint64_t Tag : CM.allTags()) {
    if (FrozenGraph::isStaticTag(Tag))
      continue;
    ObjectCostBenefit CB = CM.objectCostBenefit(Tag, Opts.Depth);
    AllocSiteId Site = G.tagSite(Tag);
    SiteScore &S = BySite[Site];
    S.Site = Site;
    if (S.Description.empty())
      S.Description = M.describeAllocSite(Site);
    S.NRac += CB.NRac;
    S.NRab += CB.NRab;
    S.ReachesPredicate |= CB.ReachesPredicate;
    S.ReachesNative |= CB.ReachesNative;
    ++S.NumContexts;
    // Raw activity for the report columns.
    for (FieldSlot Slot : CM.fieldsOf(Tag)) {
      for (NodeId W : G.writersOf(HeapLoc{Tag, Slot}))
        S.Writes += G.freq(W);
      for (NodeId R : G.readersOf(HeapLoc{Tag, Slot}))
        S.Reads += G.freq(R);
    }
  }

  for (auto &[Site, S] : BySite) {
    if (S.NRac < Opts.MinCost)
      continue;
    double Benefit = S.NRab;
    bool Infinite = false;
    auto Apply = [&](bool Reaches, ConsumerWeight W) {
      if (!Reaches)
        return;
      switch (W) {
      case ConsumerWeight::Zero:
        break;
      case ConsumerWeight::Large:
        Benefit += Opts.LargeBenefit;
        break;
      case ConsumerWeight::Infinite:
        Infinite = true;
        break;
      }
    };
    Apply(S.ReachesPredicate, Opts.PredicateWeight);
    Apply(S.ReachesNative, Opts.NativeWeight);
    if (Infinite)
      S.Ratio = 0;
    else
      S.Ratio = S.NRac / std::max(Benefit, 1e-9);
    Sites.push_back(S);
  }

  std::sort(Sites.begin(), Sites.end(),
            [](const SiteScore &A, const SiteScore &B) {
              if (A.Ratio != B.Ratio)
                return A.Ratio > B.Ratio;
              if (A.NRac != B.NRac)
                return A.NRac > B.NRac;
              return A.Site < B.Site;
            });
}

int LowUtilityReport::rankOf(AllocSiteId Site) const {
  for (size_t I = 0; I != Sites.size(); ++I)
    if (Sites[I].Site == Site)
      return int(I);
  return -1;
}

void LowUtilityReport::print(OutStream &OS, size_t TopK) const {
  OS << "rank  ratio        n-RAC        n-RAB   writes    reads  ctxs  "
        "flags  allocation site\n";
  size_t Limit = std::min(TopK, Sites.size());
  for (size_t I = 0; I != Limit; ++I) {
    const SiteScore &S = Sites[I];
    char Ratio[16];
    if (S.Ratio > 1e9) // Benefit is zero: the structure is never read.
      std::snprintf(Ratio, sizeof(Ratio), "%s", "dead");
    else
      std::snprintf(Ratio, sizeof(Ratio), "%.1f", S.Ratio);
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%4zu  %9s %12.1f %12.1f %8llu %8llu %5u",
                  I + 1, Ratio, S.NRac, S.NRab,
                  (unsigned long long)S.Writes, (unsigned long long)S.Reads,
                  S.NumContexts);
    OS << Buf << "  " << (S.ReachesNative ? 'N' : '-')
       << (S.ReachesPredicate ? 'P' : '-') << "    " << S.Description << "\n";
  }
}

std::vector<SiteScore>
LowUtilityReport::filterByClass(const Module &M,
                                const std::vector<ClassId> &Classes) const {
  std::vector<SiteScore> Out;
  for (const SiteScore &S : Sites) {
    const Instruction *I = M.getAllocSite(S.Site);
    const auto *A = dyn_cast<AllocInst>(I);
    if (!A)
      continue;
    if (std::find(Classes.begin(), Classes.end(), A->Class) != Classes.end())
      Out.push_back(S);
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Per-client report sections.
//===----------------------------------------------------------------------===

namespace {

std::string heapLocName(const Module &M, const HeapLoc &L) {
  if (DepGraph::isStaticTag(L.Tag))
    return "static#" + std::to_string(L.Tag - kStaticTagBase);
  if (L.Slot == kElemSlot)
    return M.describeAllocSite(AllocSiteId(L.Tag)) + ".ELM";
  ClassId C = cast<AllocInst>(M.getAllocSite(AllocSiteId(L.Tag)))->Class;
  return M.describeAllocSite(AllocSiteId(L.Tag)) + "." + M.fieldName(C, L.Slot);
}

std::string instrAt(const Module &M, InstrId I) {
  return M.getInstrFunction(I)->getName() + ": " +
         instToString(M, *M.getInstr(I));
}

} // namespace

void lud::printCopyChains(const CopyProfiler &P, const Module &M,
                          OutStream &OS, size_t TopK) {
  OS << "  " << P.copyInstances() << " copy-instruction instances\n";
  if (P.chains().empty()) {
    OS << "  (no heap-to-heap copy chains)\n";
    return;
  }
  std::vector<size_t> Order(P.chains().size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return P.chains()[A].Count > P.chains()[B].Count;
  });
  for (size_t I = 0; I != Order.size() && I != TopK; ++I) {
    const CopyProfiler::CopyChain &Chain = P.chains()[Order[I]];
    OS << "  " << heapLocName(M, Chain.From) << "  ->  "
       << heapLocName(M, Chain.To) << "   x" << Chain.Count << "\n";
    OS << "    via stack hops:\n";
    for (InstrId Hop : P.stackHops(Chain))
      OS << "      " << instrAt(M, Hop) << "\n";
  }
}

void lud::printNullPropagation(const NullnessProfiler &P, const Module &M,
                               OutStream &OS) {
  NullTrace T = traceNullOrigin(P);
  if (!T.found()) {
    OS << "  (no null dereference observed)\n";
    return;
  }
  OS << "  null created at: " << instrAt(M, T.Origin) << "\n";
  OS << "  propagation flow (origin -> dereference):\n";
  for (InstrId I : T.Flow)
    OS << "    " << instrAt(M, I) << "\n";
}

void lud::printTypestateFindings(const TypestateProfiler &P, const Module &M,
                                 OutStream &OS, size_t TopK) {
  if (P.eventEdges().empty() && P.violations().empty()) {
    OS << "  (no tracked typestate events)\n";
    return;
  }
  OS << "  merged event history (site:state -method-> site:state):\n";
  OS << P.describeHistory(M);
  for (size_t I = 0; I != P.violations().size() && I != TopK; ++I) {
    const TypestateViolation &V = P.violations()[I];
    OS << "  VIOLATION: method '" << M.methodNames()[V.Method]
       << "' invoked in state s" << V.StateBefore << " on objects from "
       << M.describeAllocSite(V.Site) << "\n    at: " << instrAt(M, V.Instr)
       << "\n";
  }
}

void lud::printOverwrites(const std::vector<OverwriteRow> &Rows,
                          OutStream &OS, size_t TopK) {
  OS << "rank  overwrites     writes      reads  waste  location\n";
  size_t Limit = std::min(TopK, Rows.size());
  for (size_t I = 0; I != Limit; ++I) {
    const OverwriteRow &R = Rows[I];
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "%4zu  %10llu %10llu %10llu  %4.0f%%",
                  I + 1, (unsigned long long)R.Overwrites,
                  (unsigned long long)R.Writes, (unsigned long long)R.Reads,
                  100.0 * R.WasteRatio);
    OS << Buf << "  " << R.Description << "\n";
  }
}

void lud::printConstantPredicates(
    const std::vector<ConstantPredicateRow> &Rows, OutStream &OS,
    size_t TopK) {
  for (size_t I = 0; I != Rows.size() && I != TopK; ++I)
    OS << "  " << (Rows[I].AlwaysTrue ? "always-true " : "always-false")
       << " x" << Rows[I].Executions << "  " << Rows[I].Text << "\n";
  if (Rows.empty())
    OS << "  (none)\n";
}

void lud::printMethodCosts(const std::vector<MethodCostRow> &Rows,
                           OutStream &OS, size_t TopK) {
  for (size_t I = 0; I != Rows.size() && I != TopK; ++I) {
    OS << "  ";
    OS.printFixed(Rows[I].ReturnCost, 1);
    OS << "  " << Rows[I].Name << "\n";
  }
}

void lud::printClientSections(ClientSet Clients, const CopyProfiler *Copy,
                              const NullnessProfiler *Null,
                              const TypestateProfiler *Type, const Module &M,
                              OutStream &OS, size_t TopK) {
  if (Clients.hasCopy() && Copy) {
    OS << "\n=== copy chains ===\n";
    printCopyChains(*Copy, M, OS, TopK);
  }
  if (Clients.hasNullness() && Null) {
    OS << "\n=== null propagation ===\n";
    printNullPropagation(*Null, M, OS);
  }
  if (Clients.hasTypestate() && Type) {
    OS << "\n=== typestate history ===\n";
    printTypestateFindings(*Type, M, OS, TopK);
  }
}
