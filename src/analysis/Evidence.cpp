//===- analysis/Evidence.cpp - Per-structure usage evidence ----------------===//

#include "analysis/Evidence.h"

#include "analysis/CacheCost.h"
#include "analysis/CostModel.h"
#include "ir/Module.h"

using namespace lud;

const char *lud::usageKindName(UsageKind K) {
  switch (K) {
  case UsageKind::WriteOnly:
    return "write-only";
  case UsageKind::OnceRead:
    return "once-read";
  case UsageKind::OverwriteDominated:
    return "overwrite-dominated";
  case UsageKind::BuildOnceReadMany:
    return "build-once-read-many";
  case UsageKind::ClonePerOp:
    return "clone-per-op";
  case UsageKind::Balanced:
    return "balanced";
  }
  return "unknown";
}

namespace {

/// Threshold classifier over the folded counters. Ordered from the
/// strongest signal down; every rule is documented in docs/OPTIMIZER.md
/// and pinned by tests/analysis/EvidenceTest.cpp on the DaCapo recipes.
UsageKind classify(const UsageSummary &S) {
  // Too few events to call a pattern.
  if (S.Writes + S.Reads < 16)
    return UsageKind::Balanced;
  if (S.Reads == 0)
    return UsageKind::WriteOnly;
  // Half or more of the stores clobbered unread values.
  if (2 * S.Overwrites >= S.Writes)
    return UsageKind::OverwriteDominated;
  // Many instances each built and consumed once: writes scale with
  // instances and read volume pairs with write volume (within 2x).
  if (S.Instances >= 8 && S.Writes >= 2 * S.Instances &&
      S.Reads <= 2 * S.Writes && S.Writes <= 2 * S.Reads)
    return UsageKind::ClonePerOp;
  if (S.Reads >= 4 * S.Writes)
    return UsageKind::BuildOnceReadMany;
  // Each stored value read at most about once (one read per write plus
  // per-instance slack for length probes).
  if (S.Reads <= S.Writes + S.Instances)
    return UsageKind::OnceRead;
  return UsageKind::Balanced;
}

} // namespace

UsageEvidence lud::summarizeUsage(const Module &M, const FrozenGraph &G,
                                  const HeapLocMap<LocationActivity> &Activity,
                                  const DeadValueAnalysis *DV) {
  UsageEvidence Out;
  Out.Sites.resize(M.getNumAllocSites());
  Out.Statics.resize(M.globals().size());
  for (AllocSiteId S = 0; S != AllocSiteId(Out.Sites.size()); ++S) {
    Out.Sites[S].Site = S;
    Out.Sites[S].Description = M.describeAllocSite(S);
  }
  for (GlobalId Gl = 0; Gl != GlobalId(Out.Statics.size()); ++Gl) {
    Out.Statics[Gl].IsStatic = true;
    Out.Statics[Gl].Global = Gl;
    Out.Statics[Gl].Description = "static " + M.globals()[Gl].Name;
  }

  // Resolves the structure a heap location belongs to, or null for tags
  // outside both universes (cannot happen for locations the profiler
  // recorded, but stay defensive about slot arithmetic).
  auto structureFor = [&](uint64_t Tag) -> UsageSummary * {
    if (FrozenGraph::isStaticTag(Tag)) {
      uint64_t Gl = Tag - kStaticTagBase;
      return Gl < Out.Statics.size() ? &Out.Statics[Gl] : nullptr;
    }
    AllocSiteId S = G.tagSite(Tag);
    return S < Out.Sites.size() ? &Out.Sites[S] : nullptr;
  };

  // Allocation instances per site (context tags of one site sum).
  for (const auto &[Tag, Node] : G.allocEntries())
    if (UsageSummary *S = structureFor(Tag); S && !S->IsStatic)
      S->Instances += G.freq(Node);

  // Phase counters per location, folded per structure, plus the
  // dead-write volume over each location's writer nodes.
  for (const LocPhaseSummary &P : buildPhaseSummaries(G, Activity)) {
    UsageSummary *S = structureFor(P.Loc.Tag);
    if (!S)
      continue;
    ++S->Locs;
    S->Writes += P.Writes;
    S->Reads += P.Reads;
    S->Overwrites += P.Overwrites;
    S->ReadsAfterLastWrite += P.ReadsAfterLastWrite;
    if (DV)
      for (NodeId W : G.writersOf(P.Loc))
        if (W < DV->Dead.size() && DV->Dead[W])
          S->DeadWriteFreq += G.freq(W);
  }

  // Cost-benefit (Definition 7 over the reference tree) and cache
  // effectiveness, both keyed per allocation site.
  CostModel CM(G);
  for (const auto &[Tag, Node] : G.allocEntries()) {
    (void)Node;
    UsageSummary *S = structureFor(Tag);
    if (!S || S->IsStatic)
      continue;
    ObjectCostBenefit OCB = CM.objectCostBenefit(Tag, /*Depth=*/4);
    S->Cost += OCB.NRac;
    S->Benefit += OCB.NRab;
  }
  for (const CacheScore &CS : rankCacheEffectiveness(CM, M))
    if (CS.Site < Out.Sites.size())
      Out.Sites[CS.Site].CacheEffectiveness = CS.Effectiveness;

  for (UsageSummary &S : Out.Sites)
    S.Kind = classify(S);
  for (UsageSummary &S : Out.Statics)
    S.Kind = classify(S);
  return Out;
}
