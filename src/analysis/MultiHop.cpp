//===- analysis/MultiHop.cpp - Multi-hop relative costs --------------------===//

#include "analysis/MultiHop.h"

#include <vector>

using namespace lud;

namespace {

/// Budgeted closure: from Start, follow In (backward) or Out (forward)
/// edges; entering a boundary node (heap read backward / heap write
/// forward) costs one hop of budget and boundary nodes are counted.
/// Revisits are allowed when they carry a larger remaining budget. The
/// per-node best-budget table is a dense column (budget+1 encoded, 0 =
/// unvisited) so paper-scale traversals skip hashing.
template <typename BoundaryFn, typename VisitFn>
uint64_t budgetedClosure(const FrozenGraph &G, NodeId Start, bool Forward,
                         unsigned Budget, BoundaryFn IsBoundary,
                         VisitFn OnVisit) {
  std::vector<unsigned> BestBudget(G.numNodes(), 0);
  std::vector<std::pair<NodeId, unsigned>> Work;
  BestBudget[Start] = Budget + 1;
  Work.push_back({Start, Budget});
  uint64_t Sum = G.freq(Start);
  OnVisit(Start);

  while (!Work.empty()) {
    auto [N, H] = Work.back();
    Work.pop_back();
    if (BestBudget[N] > H + 1)
      continue; // A better path already processed this node.
    for (NodeId M : Forward ? G.out(N) : G.in(N)) {
      unsigned NextBudget = H;
      if (IsBoundary(M)) {
        if (H == 0)
          continue;
        NextBudget = H - 1;
      }
      if (BestBudget[M] >= NextBudget + 1)
        continue;
      if (BestBudget[M] == 0) {
        Sum += G.freq(M);
        OnVisit(M);
      }
      BestBudget[M] = NextBudget + 1;
      Work.push_back({M, NextBudget});
    }
  }
  return Sum;
}

} // namespace

uint64_t lud::multiHopCost(const FrozenGraph &G, NodeId N, unsigned Hops) {
  unsigned Budget = Hops == 0 ? 0 : Hops - 1;
  return budgetedClosure(
      G, N, /*Forward=*/false, Budget,
      [&G](NodeId M) { return G.readsHeap(M); }, [](NodeId) {});
}

BenefitInfo lud::multiHopBenefit(const FrozenGraph &G, NodeId N,
                                 unsigned Hops) {
  unsigned Budget = Hops == 0 ? 0 : Hops - 1;
  BenefitInfo Info;
  Info.Benefit = budgetedClosure(
      G, N, /*Forward=*/true, Budget,
      [&G](NodeId M) { return G.writesHeap(M); },
      [&G, &Info](NodeId M) {
        ConsumerKind C = G.consumer(M);
        if (C == ConsumerKind::Predicate)
          Info.ReachesPredicate = true;
        else if (C == ConsumerKind::Native)
          Info.ReachesNative = true;
      });
  return Info;
}

LocCostBenefit lud::multiHopLocCostBenefit(const FrozenGraph &G,
                                           const HeapLoc &L, unsigned Hops) {
  LocCostBenefit CB;
  auto Writers = G.writersOf(L);
  if (!Writers.empty()) {
    uint64_t Sum = 0;
    for (NodeId W : Writers)
      Sum += multiHopCost(G, W, Hops);
    CB.NumWriters = Writers.size();
    CB.Rac = double(Sum) / double(CB.NumWriters);
  }
  auto Readers = G.readersOf(L);
  if (!Readers.empty()) {
    uint64_t Sum = 0;
    for (NodeId R : Readers) {
      BenefitInfo B = multiHopBenefit(G, R, Hops);
      Sum += B.Benefit;
      CB.ReachesPredicate |= B.ReachesPredicate;
      CB.ReachesNative |= B.ReachesNative;
    }
    CB.NumReaders = Readers.size();
    CB.Rab = double(Sum) / double(CB.NumReaders);
  }
  return CB;
}
