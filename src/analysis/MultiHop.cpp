//===- analysis/MultiHop.cpp - Multi-hop relative costs --------------------===//

#include "analysis/MultiHop.h"

#include <unordered_map>
#include <vector>

using namespace lud;

namespace {

/// Budgeted closure: from Start, follow In (backward) or Out (forward)
/// edges; entering a boundary node (heap read backward / heap write
/// forward) costs one hop of budget and boundary nodes are counted.
/// Revisits are allowed when they carry a larger remaining budget.
template <typename BoundaryFn, typename VisitFn>
uint64_t budgetedClosure(const DepGraph &G, NodeId Start, bool Forward,
                         unsigned Budget, BoundaryFn IsBoundary,
                         VisitFn OnVisit) {
  std::unordered_map<NodeId, unsigned> BestBudget;
  std::vector<std::pair<NodeId, unsigned>> Work;
  BestBudget[Start] = Budget;
  Work.push_back({Start, Budget});
  uint64_t Sum = G.freq(Start);
  OnVisit(G.node(Start));

  while (!Work.empty()) {
    auto [N, H] = Work.back();
    Work.pop_back();
    if (BestBudget[N] > H)
      continue; // A better path already processed this node.
    const std::vector<NodeId> &Next =
        Forward ? G.node(N).Out : G.node(N).In;
    for (NodeId M : Next) {
      unsigned NextBudget = H;
      if (IsBoundary(G.node(M))) {
        if (H == 0)
          continue;
        NextBudget = H - 1;
      }
      auto It = BestBudget.find(M);
      if (It != BestBudget.end() && It->second >= NextBudget)
        continue;
      if (It == BestBudget.end()) {
        Sum += G.freq(M);
        OnVisit(G.node(M));
        BestBudget.emplace(M, NextBudget);
      } else {
        It->second = NextBudget;
      }
      Work.push_back({M, NextBudget});
    }
  }
  return Sum;
}

} // namespace

uint64_t lud::multiHopCost(const DepGraph &G, NodeId N, unsigned Hops) {
  unsigned Budget = Hops == 0 ? 0 : Hops - 1;
  return budgetedClosure(
      G, N, /*Forward=*/false, Budget,
      [](const DepGraph::Node &M) { return M.ReadsHeap; },
      [](const DepGraph::Node &) {});
}

BenefitInfo lud::multiHopBenefit(const DepGraph &G, NodeId N, unsigned Hops) {
  unsigned Budget = Hops == 0 ? 0 : Hops - 1;
  BenefitInfo Info;
  Info.Benefit = budgetedClosure(
      G, N, /*Forward=*/true, Budget,
      [](const DepGraph::Node &M) { return M.WritesHeap; },
      [&Info](const DepGraph::Node &M) {
        if (M.Consumer == ConsumerKind::Predicate)
          Info.ReachesPredicate = true;
        else if (M.Consumer == ConsumerKind::Native)
          Info.ReachesNative = true;
      });
  return Info;
}

LocCostBenefit lud::multiHopLocCostBenefit(const DepGraph &G,
                                           const HeapLoc &L, unsigned Hops) {
  LocCostBenefit CB;
  auto WIt = G.writers().find(L);
  if (WIt != G.writers().end() && !WIt->second.empty()) {
    uint64_t Sum = 0;
    for (NodeId W : WIt->second)
      Sum += multiHopCost(G, W, Hops);
    CB.NumWriters = WIt->second.size();
    CB.Rac = double(Sum) / double(CB.NumWriters);
  }
  auto RIt = G.readers().find(L);
  if (RIt != G.readers().end() && !RIt->second.empty()) {
    uint64_t Sum = 0;
    for (NodeId R : RIt->second) {
      BenefitInfo B = multiHopBenefit(G, R, Hops);
      Sum += B.Benefit;
      CB.ReachesPredicate |= B.ReachesPredicate;
      CB.ReachesNative |= B.ReachesNative;
    }
    CB.NumReaders = RIt->second.size();
    CB.Rab = double(Sum) / double(CB.NumReaders);
  }
  return CB;
}
